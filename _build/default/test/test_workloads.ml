(* Workload tests: every benchmark program runs identically across the
   three ABIs at tiny scale, and the performance relationships that
   drive Figures 1-4 hold in the cycle model. Marked `Slow where the
   simulator runs take more than ~a second. *)

module W = Cheri_workloads
module Abi = Cheri_compiler.Abi

let tiny_olden = { W.Olden.scale = 1 }

let test_olden_outputs_agree () =
  List.iter
    (fun (k : W.Olden.kernel) ->
      let ms = W.Runner.run_all_abis (k.W.Olden.source tiny_olden) in
      Alcotest.(check int) (k.W.Olden.kname ^ " three runs") 3 (List.length ms);
      List.iter
        (fun (m : W.Runner.measurement) ->
          Alcotest.(check bool)
            (k.W.Olden.kname ^ " produced output")
            true
            (String.length m.W.Runner.output > 0))
        ms)
    W.Olden.kernels

let test_olden_capability_overhead () =
  (* pointer-heavy code must cost more cycles under capabilities: the
     mechanism behind Figure 1 *)
  let k = List.find (fun k -> k.W.Olden.kname = "TreeAdd") W.Olden.kernels in
  let ms = W.Runner.run_all_abis (k.W.Olden.source { W.Olden.scale = 2 }) in
  match ms with
  | [ mips; _v2; v3 ] ->
      Alcotest.(check bool) "v3 slower than MIPS on TreeAdd" true (v3.W.Runner.cycles > mips.W.Runner.cycles);
      Alcotest.(check bool) "v3 misses more in L1" true
        (v3.W.Runner.l1_misses > mips.W.Runner.l1_misses)
  | _ -> Alcotest.fail "expected three measurements"

let test_dhrystone_parity () =
  (* compute-bound code must be within a few percent: Figure 2 *)
  let src = W.Dhrystone.source { W.Dhrystone.iterations = 3_000 } in
  let ms = W.Runner.run_all_abis src in
  match ms with
  | [ mips; v2; v3 ] ->
      let ratio m = float_of_int m.W.Runner.cycles /. float_of_int mips.W.Runner.cycles in
      Alcotest.(check bool) "v2 within 10% of MIPS" true (ratio v2 < 1.10);
      Alcotest.(check bool) "v3 within 10% of MIPS" true (ratio v3 < 1.10)
  | _ -> Alcotest.fail "expected three measurements"

let test_tcpdump_variants_agree () =
  let params = { W.Tcpdump_sim.packets = 400; passes = 1 } in
  let natural = W.Runner.run Abi.Mips (W.Tcpdump_sim.source params) in
  let ported = W.Runner.run Abi.Mips (W.Tcpdump_sim.source_v2 params) in
  Alcotest.(check string) "v2 port preserves behaviour" natural.W.Runner.output
    ported.W.Runner.output;
  (* sanity: the dissector classified packets into several protocols *)
  Alcotest.(check bool) "parsed tcp" true
    (String.length natural.W.Runner.output > 10)

let test_tcpdump_small_overhead () =
  let params = { W.Tcpdump_sim.packets = 800; passes = 2 } in
  let ms = W.Runner.run_all_abis ~v2_source:(Some (W.Tcpdump_sim.source_v2 params))
      (W.Tcpdump_sim.source params)
  in
  match ms with
  | [ mips; _; v3 ] ->
      let ratio = float_of_int v3.W.Runner.cycles /. float_of_int mips.W.Runner.cycles in
      (* the paper reports 4% +- 3%; insist on single digits *)
      Alcotest.(check bool) "v3 tcpdump overhead < 10%" true (ratio < 1.10)
  | _ -> Alcotest.fail "expected three measurements"

let test_zlib_roundtrip_all_abis () =
  let src = W.Zlib_like.source { W.Zlib_like.input_size = 8192; boundary_copy = false } in
  let ms = W.Runner.run_all_abis src in
  List.iter
    (fun (m : W.Runner.measurement) ->
      Alcotest.(check bool)
        (Abi.name m.W.Runner.abi ^ " roundtrip ok")
        true
        (String.length m.W.Runner.output > 0
        && String.length m.W.Runner.output >= 12
        &&
        let out = m.W.Runner.output in
        (* output ends with "roundtrip=1\n" *)
        String.length out >= 12 && String.sub out (String.length out - 12) 12 = "roundtrip=1\n"))
    ms

let test_zlib_compresses () =
  let src = W.Zlib_like.source { W.Zlib_like.input_size = 16384; boundary_copy = false } in
  let m = W.Runner.run Abi.Mips src in
  (* "in=16384 out=NNN ..." — extract out and check compression happened *)
  let out = m.W.Runner.output in
  Alcotest.(check bool) "compressed smaller than input" true
    (try
       Scanf.sscanf out "in=%d out=%d" (fun n c -> c < n)
     with _ -> false)

let test_zlib_boundary_copy_costs () =
  let size = 16384 in
  let plain = W.Zlib_like.source { W.Zlib_like.input_size = size; boundary_copy = false } in
  let copying = W.Zlib_like.source { W.Zlib_like.input_size = size; boundary_copy = true } in
  let v3 = Abi.Cheri Cheri_core.Cap_ops.V3 in
  let base = W.Runner.run v3 plain in
  let copy = W.Runner.run v3 copying in
  let overhead =
    float_of_int (copy.W.Runner.cycles - base.W.Runner.cycles) /. float_of_int base.W.Runner.cycles
  in
  Alcotest.(check bool) "copying costs 5-40%" true (overhead > 0.05 && overhead < 0.40)

let test_port_audit_shape () =
  let rows = W.Port_audit.table4 () in
  let tcp = List.find (fun r -> r.W.Port_audit.program = "tcpdump") rows in
  let olden = List.find (fun r -> r.W.Port_audit.program = "Olden") rows in
  (* the Table 4 story: tcpdump needs far more semantic change for v2
     than for v3; Olden needs none for either *)
  Alcotest.(check bool) "tcpdump v2 semantic >> v3" true
    (tcp.W.Port_audit.semantic_v2 > 10 * tcp.W.Port_audit.semantic_v3);
  Alcotest.(check int) "olden v2 semantic" 0 olden.W.Port_audit.semantic_v2;
  Alcotest.(check int) "olden v3 semantic" 0 olden.W.Port_audit.semantic_v3;
  Alcotest.(check bool) "annotations counted" true (olden.W.Port_audit.annotation > 0)

let test_v2_compiles_all_workloads () =
  (* the workload sources (v2 variant for tcpdump) must COMPILE for
     CHERIv2 — the hybrid port exists *)
  let v2 = Abi.Cheri Cheri_core.Cap_ops.V2 in
  List.iter
    (fun (k : W.Olden.kernel) ->
      ignore (Cheri_compiler.Codegen.compile_source v2 (k.W.Olden.source tiny_olden)))
    W.Olden.kernels;
  ignore (Cheri_compiler.Codegen.compile_source v2 (W.Dhrystone.source { W.Dhrystone.iterations = 1 }));
  ignore
    (Cheri_compiler.Codegen.compile_source v2
       (W.Tcpdump_sim.source_v2 { W.Tcpdump_sim.packets = 1; passes = 1 }))

let test_v2_rejects_natural_tcpdump () =
  (* ... while the natural pointer-subtraction dissector does not compile *)
  match
    Cheri_compiler.Codegen.compile_source
      (Abi.Cheri Cheri_core.Cap_ops.V2)
      (W.Tcpdump_sim.source { W.Tcpdump_sim.packets = 1; passes = 1 })
  with
  | exception Abi.Unsupported _ -> ()
  | _ -> Alcotest.fail "CHERIv2 accepted pointer subtraction"

let suite =
  [
    Alcotest.test_case "olden runs on all ABIs" `Slow test_olden_outputs_agree;
    Alcotest.test_case "olden capability overhead" `Slow test_olden_capability_overhead;
    Alcotest.test_case "dhrystone parity" `Slow test_dhrystone_parity;
    Alcotest.test_case "tcpdump port behaves identically" `Quick test_tcpdump_variants_agree;
    Alcotest.test_case "tcpdump overhead small" `Slow test_tcpdump_small_overhead;
    Alcotest.test_case "zlib roundtrips on all ABIs" `Slow test_zlib_roundtrip_all_abis;
    Alcotest.test_case "zlib compresses" `Quick test_zlib_compresses;
    Alcotest.test_case "zlib boundary copies cost" `Slow test_zlib_boundary_copy_costs;
    Alcotest.test_case "Table 4 shape" `Quick test_port_audit_shape;
    Alcotest.test_case "v2 compiles all ports" `Quick test_v2_compiles_all_workloads;
    Alcotest.test_case "v2 rejects natural tcpdump" `Quick test_v2_rejects_natural_tcpdump;
  ]
