open Cheri_util

let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

let test_unsigned_compare () =
  check_bool "max_uint > 0" true (Bits.ugt (-1L) 0L);
  check_bool "0 < max_uint" true (Bits.ult 0L (-1L));
  check_bool "high bit set is large" true (Bits.ugt Int64.min_int Int64.max_int);
  check_i64 "umin" 3L (Bits.umin 3L (-1L));
  check_i64 "umax" (-1L) (Bits.umax 3L (-1L))

let test_extract_insert () =
  check_i64 "extract nibble" 0xcL (Bits.extract 0xabcdL ~lo:4 ~width:4);
  check_i64 "extract top" 1L (Bits.extract Int64.min_int ~lo:63 ~width:1);
  check_i64 "insert nibble" 0xa5cdL (Bits.insert 0xabcdL ~lo:8 ~width:4 5L);
  check_i64 "roundtrip" 0x7fL
    (Bits.extract (Bits.insert 0L ~lo:13 ~width:7 0xffL) ~lo:13 ~width:7)

let test_alignment () =
  check_bool "32-aligned" true (Bits.is_aligned 64L 32);
  check_bool "not aligned" false (Bits.is_aligned 65L 32);
  check_i64 "align down" 64L (Bits.align_down 95L 32);
  check_i64 "align up" 96L (Bits.align_up 65L 32);
  check_i64 "align up exact" 64L (Bits.align_up 64L 32)

let test_extension () =
  check_i64 "sign extend byte" (-1L) (Bits.sign_extend 0xffL ~width:8);
  check_i64 "sign extend positive" 0x7fL (Bits.sign_extend 0x7fL ~width:8);
  check_i64 "zero extend" 0xffL (Bits.zero_extend 0xffL ~width:8);
  check_i64 "truncate wraps" (-128L) (Bits.truncate_to_width 128L 8);
  check_i64 "truncate id" 100L (Bits.truncate_to_width 100L 8)

let prop_extract_insert =
  QCheck.Test.make ~name:"insert then extract returns inserted bits" ~count:500
    QCheck.(triple int64 (int_range 0 56) (int_range 1 8))
    (fun (x, lo, width) ->
      let v = Int64.of_int (Random.int (1 lsl width)) in
      Bits.extract (Bits.insert x ~lo ~width v) ~lo ~width = v)

let prop_align =
  QCheck.Test.make ~name:"align_down <= x <= align_up for non-negative x" ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_range 0 6))
    (fun (x, p) ->
      let n = 1 lsl p in
      let x = Int64.of_int x in
      Bits.ule (Bits.align_down x n) x && Bits.uge (Bits.align_up x n) x)

let suite =
  [
    Alcotest.test_case "unsigned compare" `Quick test_unsigned_compare;
    Alcotest.test_case "extract/insert" `Quick test_extract_insert;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "sign/zero extension" `Quick test_extension;
    QCheck_alcotest.to_alcotest prop_extract_insert;
    QCheck_alcotest.to_alcotest prop_align;
  ]
