module I = Cheri_isa.Insn
module Machine = Cheri_isa.Machine
module Asm = Cheri_asm.Asm
module Cap = Cheri_core.Capability
module Ops = Cheri_core.Cap_ops
module Perms = Cheri_core.Perms
module Fault = Cheri_core.Cap_fault

let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let imm v = I.Imm v

let exit_ok = function
  | Machine.Exit c -> c
  | o -> Alcotest.failf "expected exit, got %a" Machine.pp_outcome o

let trap_of = function
  | Machine.Trap { trap; _ } -> trap
  | o -> Alcotest.failf "expected trap, got %a" Machine.pp_outcome o

(* exit with the value currently in r4 *)
let exit_insns = [ I.Li (2, imm Machine.syscall_exit); I.Syscall ]

let run insns =
  let outcome, m = Asm.run_code (insns @ exit_insns) in
  (exit_ok outcome, m)

let test_alu () =
  let code = [ I.Li (8, imm 20L); I.Li (9, imm 22L); I.Alu (I.ADD, 4, 8, 9) ] in
  let v, _ = run code in
  check_i64 "20+22" 42L v

let test_r0_hardwired () =
  let code = [ I.Li (0, imm 99L); I.Alu (I.ADD, 4, 0, 0) ] in
  let v, _ = run code in
  check_i64 "r0 stays zero" 0L v

let test_mul_div () =
  let v, _ = run [ I.Li (8, imm 7L); I.Li (9, imm 6L); I.Alu (I.MUL, 4, 8, 9) ] in
  check_i64 "7*6" 42L v;
  let v, _ = run [ I.Li (8, imm (-85L)); I.Li (9, imm 2L); I.Alu (I.DIV, 4, 8, 9) ] in
  check_i64 "-85/2" (-42L) v;
  let outcome, _ = Asm.run_code [ I.Li (8, imm 1L); I.Alu (I.DIV, 4, 8, 0) ] in
  match trap_of outcome with
  | Machine.Div_by_zero -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let test_overflow_trap () =
  let code = [ I.Li (8, imm Int64.max_int); I.Li (9, imm 1L); I.Alu (I.ADDT, 4, 8, 9) ] in
  (* default config: ADDT behaves like ADD *)
  let v, _ = run code in
  check_i64 "wraps by default" Int64.min_int v;
  let config =
    { (Machine.default_config Cheri_core.Cap_ops.V3) with trap_on_signed_overflow = true }
  in
  let outcome, _ = Asm.run_code ~config code in
  match trap_of outcome with
  | Machine.Overflow_trap -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let test_legacy_load_store () =
  let code =
    [
      I.Li (8, imm 0x20000L);
      I.Li (9, imm 0x1234L);
      I.Store { w = I.D; rv = 9; rs = 8; off = 8 };
      I.Load { w = I.D; signed = false; rd = 4; rs = 8; off = 8 };
    ]
  in
  let v, _ = run code in
  check_i64 "store then load" 0x1234L v

let test_signed_byte_load () =
  let code =
    [
      I.Li (8, imm 0x20000L);
      I.Li (9, imm 0xffL);
      I.Store { w = I.B; rv = 9; rs = 8; off = 0 };
      I.Load { w = I.B; signed = true; rd = 4; rs = 8; off = 0 };
    ]
  in
  let v, _ = run code in
  check_i64 "sign extended" (-1L) v

let test_branch_loop () =
  (* sum 1..10 with a loop *)
  let b = Asm.Builder.create () in
  let e = Asm.Builder.emit b in
  e (I.Li (8, imm 0L));
  (* i *)
  e (I.Li (9, imm 0L));
  (* sum *)
  Asm.Builder.label b "loop";
  e (I.Alui (I.ADD, 8, 8, imm 1L));
  e (I.Alu (I.ADD, 9, 9, 8));
  e (I.Alui (I.SLT, 10, 8, imm 10L));
  e (I.Branchz (I.NEZ, 10, I.Sym "loop"));
  e (I.Alu (I.ADD, 4, 9, 0));
  List.iter e exit_insns;
  let outcome, _m = (fun l -> (Machine.run (Asm.make_machine l), l)) (Asm.link b) in
  check_i64 "sum 1..10" 55L (exit_ok outcome)

let test_jal_jr () =
  let b = Asm.Builder.create () in
  let e = Asm.Builder.emit b in
  e (I.Jal (I.Sym "fn"));
  e (I.Alu (I.ADD, 4, 2, 0));
  List.iter e exit_insns;
  Asm.Builder.label b "fn";
  e (I.Li (2, imm 77L));
  e (I.Jr 31);
  let l = Asm.link b in
  let m = Asm.make_machine l in
  check_i64 "function returned" 77L (exit_ok (Machine.run m))

let test_data_segment () =
  let b = Asm.Builder.create () in
  let e = Asm.Builder.emit b in
  Asm.Builder.data_label b "greeting";
  Asm.Builder.data_bytes b "hi!";
  e (I.Li (8, I.Sym_addr ("greeting", 0L)));
  e (I.Load { w = I.B; signed = false; rd = 4; rs = 8; off = 1 });
  List.iter e exit_insns;
  let l = Asm.link b in
  let m = Asm.make_machine l in
  check_i64 "read 'i' from data" (Int64.of_int (Char.code 'i')) (exit_ok (Machine.run m))

let test_syscall_print () =
  let code =
    [
      I.Li (2, imm Machine.syscall_print_int);
      I.Li (4, imm 42L);
      I.Syscall;
      I.Li (2, imm Machine.syscall_print_char);
      I.Li (4, imm 10L);
      I.Syscall;
    ]
  in
  let _, m = run code in
  check_string "printed" "42\n" (Machine.output m)

let test_malloc_returns_bounded_cap () =
  let code =
    [ I.Li (2, imm Machine.syscall_malloc); I.Li (4, imm 100L); I.Syscall; I.Alu (I.ADD, 4, 2, 0) ]
  in
  let addr, m = run code in
  check_bool "address in heap" true (addr >= Machine.heap_base m);
  let c = Machine.cap m 1 in
  check_bool "tagged" true (Ops.c_get_tag c);
  check_i64 "base is address" addr (Ops.c_get_base c);
  check_i64 "length is request" 100L (Ops.c_get_len c)

let test_malloc_free_reuse () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Alu (I.ADD, 16, 2, 0);
      I.Li (2, imm Machine.syscall_free);
      I.Alu (I.ADD, 4, 16, 0);
      I.Syscall;
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Alu (I.SEQ, 4, 2, 16);
    ]
  in
  let same, _ = run code in
  check_i64 "freed block reused" 1L same

let test_double_free_traps () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Alu (I.ADD, 4, 2, 0);
      I.Li (2, imm Machine.syscall_free);
      I.Syscall;
      I.Li (2, imm Machine.syscall_free);
      I.Syscall;
    ]
  in
  let outcome, _ = Asm.run_code code in
  match trap_of outcome with
  | Machine.Invalid_free _ -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let test_cap_load_store () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Li (8, imm 0x5aL);
      I.Cstore { w = I.D; rv = 8; cb = 1; roff = 0; off = 16 };
      I.Cload { w = I.D; signed = false; rd = 4; cb = 1; roff = 0; off = 16 };
    ]
  in
  let v, _ = run code in
  check_i64 "capability store/load" 0x5aL v

let test_cap_bounds_trap () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      (* store one byte past the end of the allocation *)
      I.Cstore { w = I.B; rv = 8; cb = 1; roff = 0; off = 64 };
    ]
  in
  let outcome, _ = Asm.run_code code in
  match trap_of outcome with
  | Machine.Cap_trap (Fault.Bounds_violation _) -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let test_cap_spill_roundtrip () =
  (* spill the malloc capability to memory, reload it, use it *)
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Cmove (2, 1);
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      (* store cap c2 into the second allocation (32-byte aligned) *)
      I.Csc { cs = 2; cb = 1; roff = 0; off = 0 };
      I.Clc { cd = 3; cb = 1; roff = 0; off = 0 };
      I.Li (8, imm 7L);
      I.Cstore { w = I.D; rv = 8; cb = 3; roff = 0; off = 0 };
      I.Cload { w = I.D; signed = false; rd = 4; cb = 3; roff = 0; off = 0 };
    ]
  in
  let v, _ = run code in
  check_i64 "reloaded capability works" 7L v

let test_data_overwrite_invalidates_spilled_cap () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Cmove (2, 1);
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Csc { cs = 2; cb = 1; roff = 0; off = 0 };
      (* corrupt one byte of the spilled capability through the data path *)
      I.Li (8, imm 0xffL);
      I.Cstore { w = I.B; rv = 8; cb = 1; roff = 0; off = 4 };
      I.Clc { cd = 3; cb = 1; roff = 0; off = 0 };
      (* dereferencing the detagged capability must trap *)
      I.Cload { w = I.D; signed = false; rd = 4; cb = 3; roff = 0; off = 0 };
    ]
  in
  let outcome, _ = Asm.run_code code in
  match trap_of outcome with
  | Machine.Cap_trap Fault.Tag_violation -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let test_candperm_enforced () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      (* drop the store permission: the __input qualifier *)
      I.Candperm (2, 1, Cheri_core.Perms.to_bits Cheri_core.Perms.read_only);
      I.Li (8, imm 1L);
      I.Cstore { w = I.D; rv = 8; cb = 2; roff = 0; off = 0 };
    ]
  in
  let outcome, _ = Asm.run_code code in
  match trap_of outcome with
  | Machine.Cap_trap (Fault.Perm_violation Perms.Store) -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let test_cincoffset_traps_on_v2 () =
  let config = Machine.default_config Cheri_core.Cap_ops.V2 in
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Cincoffsetimm (1, 1, 8L);
    ]
  in
  let outcome, _ = Asm.run_code ~config code in
  match trap_of outcome with
  | Machine.Cap_trap (Fault.Unsupported _) -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let test_cjalr () =
  let b = Asm.Builder.create () in
  let e = Asm.Builder.emit b in
  (* derive a code capability for "fn" from pcc-like bounds: build from
     the function-pointer symbol via cfromptr on an executable cap *)
  e (I.Li (8, I.Sym_addr ("fn", 0L)));
  e (I.Cfromptr (2, 0, 8));
  (* note: c0 has all perms incl. execute in this simulator *)
  e (I.Cjalr (17, 2));
  e (I.Alu (I.ADD, 4, 2, 0));
  List.iter e exit_insns;
  Asm.Builder.label b "fn";
  e (I.Li (2, imm 31L));
  e (I.Cjr 17);
  let l = Asm.link b in
  let m = Asm.make_machine l in
  check_i64 "cjalr call and return" 31L (exit_ok (Machine.run m))

let test_fuel () =
  let b = Asm.Builder.create () in
  Asm.Builder.label b "spin";
  Asm.Builder.emit b (I.J (I.Sym "spin"));
  let m = Asm.make_machine (Asm.link b) in
  match Machine.run ~fuel:1000 m with
  | Machine.Fuel_exhausted -> ()
  | o -> Alcotest.failf "expected fuel exhaustion, got %a" Machine.pp_outcome o

let test_cycle_accounting () =
  let _, m = run [ I.Li (8, imm 1L); I.Alu (I.ADD, 9, 8, 8) ] in
  check_bool "cycles counted" true (Machine.cycles m > 0);
  check_bool "cycles >= instret" true (Machine.cycles m >= Machine.instret m);
  let stats = Machine.stats m in
  check_bool "stats cycles match" true (stats.Machine.st_cycles = Machine.cycles m)

let test_pc_out_of_range () =
  let outcome, _ = Asm.run_code [ I.Nop ] in
  match trap_of outcome with
  | Machine.Pc_out_of_range _ -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let suite =
  [
    Alcotest.test_case "alu" `Quick test_alu;
    Alcotest.test_case "r0 hardwired to zero" `Quick test_r0_hardwired;
    Alcotest.test_case "mul/div" `Quick test_mul_div;
    Alcotest.test_case "overflow trap (ADDT)" `Quick test_overflow_trap;
    Alcotest.test_case "legacy load/store" `Quick test_legacy_load_store;
    Alcotest.test_case "signed byte load" `Quick test_signed_byte_load;
    Alcotest.test_case "branch loop" `Quick test_branch_loop;
    Alcotest.test_case "jal/jr" `Quick test_jal_jr;
    Alcotest.test_case "data segment" `Quick test_data_segment;
    Alcotest.test_case "print syscalls" `Quick test_syscall_print;
    Alcotest.test_case "malloc returns bounded cap" `Quick test_malloc_returns_bounded_cap;
    Alcotest.test_case "malloc/free reuse" `Quick test_malloc_free_reuse;
    Alcotest.test_case "double free traps" `Quick test_double_free_traps;
    Alcotest.test_case "capability load/store" `Quick test_cap_load_store;
    Alcotest.test_case "capability bounds trap" `Quick test_cap_bounds_trap;
    Alcotest.test_case "capability spill roundtrip" `Quick test_cap_spill_roundtrip;
    Alcotest.test_case "data overwrite detags spilled cap" `Quick
      test_data_overwrite_invalidates_spilled_cap;
    Alcotest.test_case "candperm enforces __input" `Quick test_candperm_enforced;
    Alcotest.test_case "CIncOffset traps on v2 hardware" `Quick test_cincoffset_traps_on_v2;
    Alcotest.test_case "cjalr/cjr" `Quick test_cjalr;
    Alcotest.test_case "fuel" `Quick test_fuel;
    Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
    Alcotest.test_case "pc out of range" `Quick test_pc_out_of_range;
  ]

(* -- sealing at the ISA level ------------------------------------------- *)

let test_cseal_cunseal () =
  (* malloc an object, build a sealing authority from the DDC with
     otype 7, seal, verify use traps, unseal, verify use works *)
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Li (8, imm 7L);
      (* authority = DDC with cursor at the otype *)
      I.Cfromptr (4, 0, 8);
      I.Cseal (5, 1, 4);
      (* sealed: dereference must trap after we unseal-check works *)
      I.Cunseal (6, 5, 4);
      I.Li (9, imm 123L);
      I.Cstore { w = I.D; rv = 9; cb = 6; roff = 0; off = 0 };
      I.Cload { w = I.D; signed = false; rd = 4; cb = 6; roff = 0; off = 0 };
    ]
  in
  let v, _ = run code in
  check_i64 "unsealed capability works" 123L v

let test_sealed_deref_traps () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Li (8, imm 7L);
      I.Cfromptr (4, 0, 8);
      I.Cseal (5, 1, 4);
      I.Cload { w = I.D; signed = false; rd = 4; cb = 5; roff = 0; off = 0 };
    ]
  in
  let outcome, _ = Asm.run_code code in
  match trap_of outcome with
  | Machine.Cap_trap (Fault.Seal_violation _) -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let test_unseal_wrong_authority_traps () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Li (8, imm 7L);
      I.Cfromptr (4, 0, 8);
      I.Cseal (5, 1, 4);
      (* wrong otype: 8 *)
      I.Li (8, imm 8L);
      I.Cfromptr (4, 0, 8);
      I.Cunseal (6, 5, 4);
    ]
  in
  let outcome, _ = Asm.run_code code in
  match trap_of outcome with
  | Machine.Cap_trap (Fault.Seal_violation _) -> ()
  | t -> Alcotest.failf "wrong trap %a" Machine.pp_trap t

let test_sealed_cap_survives_memory () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Cmove (2, 1);
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Li (8, imm 9L);
      I.Cfromptr (4, 0, 8);
      I.Cseal (5, 2, 4);
      (* spill the sealed cap and reload it *)
      I.Csc { cs = 5; cb = 1; roff = 0; off = 0 };
      I.Clc { cd = 6; cb = 1; roff = 0; off = 0 };
      (* unseal the reloaded copy and use it *)
      I.Cunseal (7, 6, 4);
      I.Li (9, imm 55L);
      I.Cstore { w = I.D; rv = 9; cb = 7; roff = 0; off = 8 };
      I.Cload { w = I.D; signed = false; rd = 4; cb = 7; roff = 0; off = 8 };
    ]
  in
  let v, _ = run code in
  check_i64 "sealed cap roundtripped through memory" 55L v

let seal_suite =
  [
    Alcotest.test_case "cseal/cunseal" `Quick test_cseal_cunseal;
    Alcotest.test_case "sealed deref traps" `Quick test_sealed_deref_traps;
    Alcotest.test_case "unseal wrong authority traps" `Quick test_unseal_wrong_authority_traps;
    Alcotest.test_case "sealed cap survives memory" `Quick test_sealed_cap_survives_memory;
  ]

let suite = suite @ seal_suite

(* -- hybrid interoperability (§4.2) -------------------------------------- *)

(* Capability code calls a "legacy" MIPS routine: the pointer crosses
   the boundary through CToPtr (cap -> integer address relative to the
   DDC) and comes back through CFromPtr. This is the hybrid environment
   the paper's CToPtr/CFromPtr instructions exist for. *)
let test_hybrid_ctoptr_roundtrip () =
  let b = Asm.Builder.create () in
  let e = Asm.Builder.emit b in
  (* capability world: allocate, write 77 at offset 8 through the cap *)
  e (I.Li (2, imm Machine.syscall_malloc));
  e (I.Li (4, imm 64L));
  e I.Syscall;
  e (I.Li (8, imm 77L));
  e (I.Cstore { w = I.D; rv = 8; cb = 1; roff = 0; off = 8 });
  (* convert to a legacy pointer relative to the DDC and call legacy code *)
  e (I.Ctoptr (4, 1, 0));
  e (I.Jal (I.Sym "legacy_read"));
  (* result comes back in r2; also rederive a capability and verify *)
  e (I.Alu (I.ADD, 16, 2, 0));
  e (I.Ctoptr (9, 1, 0));
  e (I.Cfromptr (3, 0, 9));
  e (I.Cload { w = I.D; signed = false; rd = 10; cb = 3; roff = 0; off = 8 });
  e (I.Alu (I.ADD, 4, 16, 10));
  List.iter e exit_insns;
  (* the legacy routine: plain MIPS loads through the DDC *)
  Asm.Builder.label b "legacy_read";
  e (I.Load { w = I.D; signed = false; rd = 2; rs = 4; off = 8 });
  e (I.Jr 31);
  let m = Asm.make_machine (Asm.link b) in
  check_i64 "both worlds read the same value" 154L (exit_ok (Machine.run m))

(* CToPtr yields 0 for an untagged capability: legacy code can
   null-check the result, per the paper's "must be used carefully". *)
let test_ctoptr_untagged_gives_zero () =
  let code =
    [
      I.Li (2, imm Machine.syscall_malloc);
      I.Li (4, imm 64L);
      I.Syscall;
      I.Ccleartag (2, 1);
      I.Ctoptr (4, 2, 0);
    ]
  in
  let v, _ = run code in
  check_i64 "untagged converts to null" 0L v

let hybrid_suite =
  [
    Alcotest.test_case "hybrid CToPtr/CFromPtr roundtrip" `Quick test_hybrid_ctoptr_roundtrip;
    Alcotest.test_case "CToPtr of untagged is 0" `Quick test_ctoptr_untagged_gives_zero;
  ]

let suite = suite @ hybrid_suite
