(* Differential fuzzing: randomly generated well-defined programs must
   behave identically under every pointer model (abstract machine) and
   every ABI (compiled to the softcore). This is the strongest
   cross-check in the repository: ten implementations of the C
   abstract machine executing the same program. *)

module I = Cheri_interp.Interp
module C = Cheri_compiler.Codegen
module Abi = Cheri_compiler.Abi
module Machine = Cheri_isa.Machine

type result = { who : string; code : int64; out : string }

let run_everywhere src : result list =
  let interp_results =
    List.map
      (fun m ->
        let module M = (val m : Cheri_models.Model.S) in
        match I.run_with m src with
        | I.Exit (code, out) -> { who = "interp/" ^ M.name; code; out }
        | I.Fault (f, _) ->
            Alcotest.failf "interp/%s faulted: %a\n---\n%s" M.name Cheri_models.Fault.pp f src
        | I.Stuck msg -> Alcotest.failf "interp/%s stuck: %s\n---\n%s" M.name msg src)
      Cheri_models.Registry.all
  in
  let compiled_results =
    List.map
      (fun abi ->
        match C.run abi src with
        | Machine.Exit code, m -> { who = "isa/" ^ Abi.name abi; code; out = Machine.output m }
        | o, _ -> Alcotest.failf "isa/%s: %a\n---\n%s" (Abi.name abi) Machine.pp_outcome o src)
      Abi.all
  in
  interp_results @ compiled_results

let check_seed seed =
  let src = Fuzz_gen.generate ~seed in
  match run_everywhere src with
  | [] -> ()
  | first :: rest ->
      List.iter
        (fun r ->
          if r.code <> first.code || r.out <> first.out then
            Alcotest.failf "seed %d: %s returned (%Ld, %S) but %s returned (%Ld, %S)\n---\n%s"
              seed first.who first.code first.out r.who r.code r.out src)
        rest

let test_fuzz_batch lo hi () =
  for seed = lo to hi do
    check_seed seed
  done

let suite =
  [
    Alcotest.test_case "differential fuzz (seeds 0-14)" `Slow (test_fuzz_batch 0 14);
    Alcotest.test_case "differential fuzz (seeds 15-29)" `Slow (test_fuzz_batch 15 29);
    Alcotest.test_case "differential fuzz (seeds 30-44)" `Slow (test_fuzz_batch 30 44);
  ]
