module Cap = Cheri_core.Capability
module Ops = Cheri_core.Cap_ops
module Perms = Cheri_core.Perms
module Fault = Cheri_core.Cap_fault

let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)

let ok = function
  | Ok v -> v
  | Error f -> Alcotest.failf "unexpected fault: %a" Fault.pp f

let err = function
  | Ok _ -> Alcotest.fail "expected a fault"
  | Error f -> f

let cap ?(base = 0x1000L) ?(length = 0x100L) () = Cap.make ~base ~length ~perms:Perms.all

(* -- CHERIv3 Table 2 instructions ------------------------------------- *)

let test_inc_offset_v3 () =
  let c = cap () in
  let c1 = ok (Ops.c_inc_offset V3 c 0x50L) in
  check_i64 "address moved" 0x1050L (Cap.address c1);
  check_i64 "base unchanged" 0x1000L (Ops.c_get_base c1);
  (* out-of-bounds cursors are legal in v3; only dereference traps *)
  let c2 = ok (Ops.c_inc_offset V3 c1 0x1000L) in
  check_bool "still tagged when out of bounds" true (Ops.c_get_tag c2);
  let below = ok (Ops.c_inc_offset V3 c (-0x800L)) in
  check_i64 "cursor below base representable" 0x800L (Cap.address below);
  match Ops.load_check c2 ~addr:(Cap.address c2) ~size:1 with
  | Error (Fault.Bounds_violation _) -> ()
  | _ -> Alcotest.fail "out-of-bounds dereference must fault"

let test_inc_offset_v2_unsupported () =
  match err (Ops.c_inc_offset V2 (cap ()) 8L) with
  | Fault.Unsupported _ -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f

let test_set_get_offset () =
  let c = ok (Ops.c_set_offset V3 (cap ()) 0x42L) in
  check_i64 "get after set" 0x42L (Ops.c_get_offset c);
  check_i64 "address" 0x1042L (Cap.address c)

let test_ptr_cmp () =
  let a = ok (Ops.c_set_offset V3 (cap ()) 0x10L) in
  let b = ok (Ops.c_set_offset V3 (cap ()) 0x20L) in
  check_bool "a < b" true (Ops.c_ptr_cmp a b < 0);
  check_bool "b > a" true (Ops.c_ptr_cmp b a > 0);
  check_int "a = a" 0 (Ops.c_ptr_cmp a a);
  (* tagged orders after untagged, so smuggled integers never equal pointers *)
  let int_in_cap = Ops.int_to_cap V3 (Cap.address a) in
  check_bool "integer with same address below tagged pointer" true
    (Ops.c_ptr_cmp int_in_cap a < 0)

let test_from_ptr () =
  let ddc = cap ~base:0L ~length:0x100000L () in
  let p = ok (Ops.c_from_ptr ~ddc 0x2000L) in
  check_i64 "derived address" 0x2000L (Cap.address p);
  check_bool "tagged" true (Ops.c_get_tag p);
  let n = ok (Ops.c_from_ptr ~ddc 0L) in
  check_bool "zero gives canonical null" true (Cap.is_null n);
  match err (Ops.c_from_ptr ~ddc:Cap.null 0x10L) with
  | Fault.Tag_violation -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f

let test_to_ptr () =
  let ddc = cap ~base:0x1000L ~length:0x10000L () in
  let c = ok (Ops.c_set_offset V3 (cap ~base:0x2000L ~length:0x80L ()) 0x10L) in
  check_i64 "address as ddc offset" 0x1010L (Ops.c_to_ptr c ~relative_to:ddc);
  check_i64 "untagged gives 0" 0L (Ops.c_to_ptr (Cap.clear_tag c) ~relative_to:ddc);
  let far = ok (Ops.c_set_offset V3 (cap ~base:0x100000L ~length:0x80L ()) 0L) in
  check_i64 "out of range gives 0" 0L (Ops.c_to_ptr far ~relative_to:ddc)

(* -- monotonic base/length ops ----------------------------------------- *)

let test_inc_base_v2 () =
  let c = cap () in
  let c1 = ok (Ops.c_inc_base V2 c 0x40L) in
  check_i64 "base grew" 0x1040L (Ops.c_get_base c1);
  check_i64 "length shrank" 0xc0L (Ops.c_get_len c1);
  check_i64 "v2 pointer moves with base" 0x1040L (Cap.address c1);
  match err (Ops.c_inc_base V2 c 0x101L) with
  | Fault.Length_violation -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f

let test_inc_base_v3_keeps_cursor () =
  (* paper §4.1: "we modified CIncBase to update the pointer such that
     the offset remained constant" — i.e. the *pointer value* stays *)
  let c = ok (Ops.c_set_offset V3 (cap ()) 0x80L) in
  let c1 = ok (Ops.c_inc_base V3 c 0x40L) in
  check_i64 "pointer value unchanged" (Cap.address c) (Cap.address c1);
  check_i64 "base grew" 0x1040L (Ops.c_get_base c1)

let test_set_len () =
  let c = cap () in
  let c1 = ok (Ops.c_set_len c 0x80L) in
  check_i64 "shrunk" 0x80L (Ops.c_get_len c1);
  match err (Ops.c_set_len c 0x101L) with
  | Fault.Length_violation -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f

(* -- pointer composites ------------------------------------------------ *)

let test_ptr_add_sub () =
  let c = cap () in
  let p = ok (Ops.ptr_add V3 c 0x30L) in
  let q = ok (Ops.ptr_add V3 p 0x10L) in
  check_i64 "v3 sub" 0x10L (ok (Ops.ptr_sub V3 q p));
  check_i64 "v3 sub negative" (-0x10L) (ok (Ops.ptr_sub V3 p q));
  (match err (Ops.ptr_sub V2 q p) with
  | Fault.Unsupported _ -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f);
  (* v2 addition only forward *)
  (match err (Ops.ptr_add V2 c (-8L)) with
  | Fault.Representation_violation -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f);
  let v2p = ok (Ops.ptr_add V2 c 0x30L) in
  check_i64 "v2 add shrinks" 0xd0L (Ops.c_get_len v2p)

let test_intcap () =
  let i = Ops.int_to_cap V3 1234L in
  check_bool "intcap untagged" false (Ops.c_get_tag i);
  check_i64 "roundtrip" 1234L (Ops.cap_to_int i);
  (* mmap-style -1 sentinel: arithmetic on null must work *)
  let minus1 = ok (Ops.c_inc_offset V3 Cap.null (-1L)) in
  check_i64 "null - 1" (-1L) (Ops.cap_to_int minus1);
  check_bool "still untagged" false (Ops.c_get_tag minus1)

(* -- properties --------------------------------------------------------- *)

let arbitrary_cap =
  QCheck.map
    (fun (base, len, off) ->
      Cap.with_offset_unchecked
        (Cap.make ~base:(Int64.of_int base) ~length:(Int64.of_int len) ~perms:Perms.all)
        (Int64.of_int off))
    QCheck.(triple (int_bound 1_000_000) (int_bound 100_000) (int_range (-1000) 1000))

let prop_v3_add_preserves_bounds =
  QCheck.Test.make ~name:"v3 pointer add never changes bounds or perms" ~count:300
    (QCheck.pair arbitrary_cap QCheck.(int_range (-100_000) 100_000))
    (fun (c, d) ->
      match Ops.ptr_add V3 c (Int64.of_int d) with
      | Error _ -> false
      | Ok c' ->
          Ops.c_get_base c' = Ops.c_get_base c
          && Ops.c_get_len c' = Ops.c_get_len c
          && Cap.subset_of c' c && Cap.subset_of c c')

let prop_v2_add_monotonic =
  QCheck.Test.make ~name:"v2 pointer add yields a subset capability" ~count:300
    (QCheck.pair arbitrary_cap QCheck.(int_bound 200_000))
    (fun (c, d) ->
      match Ops.ptr_add V2 c (Int64.of_int d) with
      | Error _ -> true (* faulting is always safe *)
      | Ok c' -> Cap.subset_of c' c)

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"v3 (p + n) - p = n" ~count:300
    (QCheck.pair arbitrary_cap QCheck.(int_range (-100_000) 100_000))
    (fun (c, d) ->
      let d64 = Int64.of_int d in
      match Ops.ptr_add V3 c d64 with
      | Error _ -> false
      | Ok c' -> Ops.ptr_sub V3 c' c = Ok d64)

let prop_ptr_cmp_total_order =
  QCheck.Test.make ~name:"CPtrCmp is antisymmetric" ~count:300
    (QCheck.pair arbitrary_cap arbitrary_cap)
    (fun (a, b) -> compare (Ops.c_ptr_cmp a b) 0 = compare 0 (Ops.c_ptr_cmp b a))

let suite =
  [
    Alcotest.test_case "CIncOffset v3" `Quick test_inc_offset_v3;
    Alcotest.test_case "CIncOffset unsupported on v2" `Quick test_inc_offset_v2_unsupported;
    Alcotest.test_case "CSetOffset/CGetOffset" `Quick test_set_get_offset;
    Alcotest.test_case "CPtrCmp" `Quick test_ptr_cmp;
    Alcotest.test_case "CFromPtr" `Quick test_from_ptr;
    Alcotest.test_case "CToPtr" `Quick test_to_ptr;
    Alcotest.test_case "CIncBase v2" `Quick test_inc_base_v2;
    Alcotest.test_case "CIncBase v3 keeps cursor" `Quick test_inc_base_v3_keeps_cursor;
    Alcotest.test_case "CSetLen" `Quick test_set_len;
    Alcotest.test_case "pointer add/sub" `Quick test_ptr_add_sub;
    Alcotest.test_case "intcap_t" `Quick test_intcap;
    QCheck_alcotest.to_alcotest prop_v3_add_preserves_bounds;
    QCheck_alcotest.to_alcotest prop_v2_add_monotonic;
    QCheck_alcotest.to_alcotest prop_add_sub_inverse;
    QCheck_alcotest.to_alcotest prop_ptr_cmp_total_order;
  ]

(* -- sealing ------------------------------------------------------------- *)

let sealing_authority ~otype =
  ok (Ops.c_set_offset V3 (Cap.make ~base:0L ~length:0x10000L ~perms:Perms.all) otype)

let test_seal_basics () =
  let c = cap () in
  let auth = sealing_authority ~otype:42L in
  let sealed = ok (Ops.c_seal ~authority:auth c) in
  check_bool "sealed" true sealed.Cap.sealed;
  check_i64 "otype recorded" 42L sealed.Cap.otype;
  check_bool "still tagged" true sealed.Cap.tag;
  (* sealed caps cannot be dereferenced *)
  (match Ops.load_check sealed ~addr:0x1000L ~size:1 with
  | Error (Fault.Seal_violation _) -> ()
  | _ -> Alcotest.fail "sealed capability dereference succeeded");
  (* ... or modified *)
  (match err (Ops.c_inc_offset V3 sealed 1L) with
  | Fault.Seal_violation _ -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f);
  (match err (Ops.c_set_len sealed 1L) with
  | Fault.Seal_violation _ -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f);
  (* unsealing with the right authority restores it fully *)
  let back = ok (Ops.c_unseal ~authority:auth sealed) in
  check_bool "roundtrip" true (Cap.equal back c)

let test_unseal_wrong_type () =
  let sealed = ok (Ops.c_seal ~authority:(sealing_authority ~otype:42L) (cap ())) in
  match err (Ops.c_unseal ~authority:(sealing_authority ~otype:43L) sealed) with
  | Fault.Seal_violation _ -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f

let test_seal_needs_permission () =
  let weak_auth = Cap.restrict_perms (sealing_authority ~otype:42L) Perms.data_rw in
  match err (Ops.c_seal ~authority:weak_auth (cap ())) with
  | Fault.Perm_violation Perms.Seal -> ()
  | f -> Alcotest.failf "wrong fault %a" Fault.pp f

let test_sealed_spill_roundtrip () =
  let sealed = ok (Ops.c_seal ~authority:(sealing_authority ~otype:7L) (cap ())) in
  let back = Cap.of_words ~tag:true (Cap.to_words sealed) in
  check_bool "sealed state survives memory" true (Cap.equal sealed back)

let seal_suite =
  [
    Alcotest.test_case "seal/unseal roundtrip" `Quick test_seal_basics;
    Alcotest.test_case "unseal with wrong otype" `Quick test_unseal_wrong_type;
    Alcotest.test_case "seal needs Seal permission" `Quick test_seal_needs_permission;
    Alcotest.test_case "sealed caps survive spills" `Quick test_sealed_spill_roundtrip;
  ]

let suite = suite @ seal_suite
