module Cap = Cheri_core.Capability
module Perms = Cheri_core.Perms
module Fault = Cheri_core.Cap_fault

let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let cap ?(base = 0x1000L) ?(length = 0x100L) ?(perms = Perms.all) () =
  Cap.make ~base ~length ~perms

let test_make () =
  let c = cap () in
  check_bool "tagged" true c.Cap.tag;
  check_i64 "address is base" 0x1000L (Cap.address c);
  check_i64 "top" 0x1100L (Cap.top c);
  Alcotest.check_raises "overflowing bounds rejected"
    (Invalid_argument "Capability.make: base + length overflows") (fun () ->
      ignore (Cap.make ~base:(-16L) ~length:32L ~perms:Perms.all))

let test_null () =
  check_bool "null untagged" false Cap.null.Cap.tag;
  check_bool "is_null" true (Cap.is_null Cap.null);
  check_bool "offset null not null" false
    (Cap.is_null (Cap.with_offset_unchecked Cap.null 1L))

let test_bounds () =
  let c = cap () in
  check_bool "first byte" true (Cap.in_bounds c ~addr:0x1000L ~size:1);
  check_bool "last byte" true (Cap.in_bounds c ~addr:0x10ffL ~size:1);
  check_bool "whole object" true (Cap.in_bounds c ~addr:0x1000L ~size:0x100);
  check_bool "one past end, zero size" true (Cap.in_bounds c ~addr:0x1100L ~size:0);
  check_bool "one past end, one byte" false (Cap.in_bounds c ~addr:0x1100L ~size:1);
  check_bool "below base" false (Cap.in_bounds c ~addr:0xfffL ~size:1);
  check_bool "straddles top" false (Cap.in_bounds c ~addr:0x10f9L ~size:8)

let test_check_access () =
  let c = cap ~perms:Perms.read_only () in
  (match Cap.check_access c ~addr:0x1000L ~size:8 ~perm:Perms.Load with
  | Ok () -> ()
  | Error f -> Alcotest.failf "expected ok, got %a" Fault.pp f);
  (match Cap.check_access c ~addr:0x1000L ~size:8 ~perm:Perms.Store with
  | Error (Fault.Perm_violation Perms.Store) -> ()
  | Ok () -> Alcotest.fail "store through read-only capability succeeded"
  | Error f -> Alcotest.failf "wrong fault %a" Fault.pp f);
  let untagged = Cap.clear_tag c in
  match Cap.check_access untagged ~addr:0x1000L ~size:8 ~perm:Perms.Load with
  | Error Fault.Tag_violation -> ()
  | _ -> Alcotest.fail "untagged capability dereference succeeded"

let test_spill_roundtrip () =
  let c =
    Cap.with_offset_unchecked (cap ~base:0xdead0000L ~length:0x4242L ~perms:Perms.read_only ()) 77L
  in
  let words = Cap.to_words c in
  let c' = Cap.of_words ~tag:true words in
  check_bool "roundtrip equal" true (Cap.equal c c');
  let c'' = Cap.of_words ~tag:false words in
  check_bool "tag travels out of band" false c''.Cap.tag

let test_subset () =
  let parent = cap () in
  let child = Cap.restrict_perms parent Perms.read_only in
  check_bool "restricted perms subset" true (Cap.subset_of child parent);
  check_bool "parent not subset of read-only child" false (Cap.subset_of parent child);
  let disjoint = cap ~base:0x8000L () in
  check_bool "disjoint not subset" false (Cap.subset_of disjoint parent);
  check_bool "untagged subset of anything" true (Cap.subset_of (Cap.clear_tag disjoint) parent)

let arbitrary_perms =
  QCheck.map
    (fun bits -> Perms.of_bits (Int64.of_int (bits land 0x7f)))
    QCheck.(int_bound 127)

let arbitrary_cap =
  QCheck.map
    (fun ((base, len), (off, perms)) ->
      let base = Int64.of_int base and len = Int64.of_int len in
      Cap.with_offset_unchecked (Cap.make ~base ~length:len ~perms) (Int64.of_int off))
    QCheck.(pair (pair (int_bound 1_000_000) (int_bound 100_000)) (pair (int_range (-500) 500) arbitrary_perms))

let prop_restrict_monotonic =
  QCheck.Test.make ~name:"restrict_perms result is always a subset" ~count:300
    (QCheck.pair arbitrary_cap arbitrary_perms)
    (fun (c, p) -> Cap.subset_of (Cap.restrict_perms c p) c)

let prop_spill_roundtrip =
  QCheck.Test.make ~name:"to_words/of_words roundtrip preserves capabilities" ~count:300
    arbitrary_cap
    (fun c -> Cap.equal c (Cap.of_words ~tag:c.Cap.tag (Cap.to_words c)))

let prop_address_decomposition =
  QCheck.Test.make ~name:"address = base + offset" ~count:300 arbitrary_cap (fun c ->
      Cap.address c = Int64.add c.Cap.base c.Cap.offset)

let suite =
  [
    Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "null" `Quick test_null;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "check_access" `Quick test_check_access;
    Alcotest.test_case "spill roundtrip" `Quick test_spill_roundtrip;
    Alcotest.test_case "subset relation" `Quick test_subset;
    QCheck_alcotest.to_alcotest prop_restrict_monotonic;
    QCheck_alcotest.to_alcotest prop_spill_roundtrip;
    QCheck_alcotest.to_alcotest prop_address_decomposition;
  ]
