(* Compiler tests: programs compiled to the simulated softcore under
   each ABI, plus the three-way differential against the abstract
   machine interpreter (compiled code and interpreter must agree). *)

module C = Cheri_compiler.Codegen
module Abi = Cheri_compiler.Abi
module Machine = Cheri_isa.Machine
module I = Cheri_interp.Interp
module R = Cheri_models.Registry

let abis = Abi.all

let run_abi abi src =
  match C.run abi src with
  | Machine.Exit code, m -> (code, Machine.output m)
  | outcome, _ -> Alcotest.failf "%s: %a" (Abi.name abi) Machine.pp_outcome outcome

let check_all_abis ?(output = "") expected src =
  List.iter
    (fun abi ->
      let code, out = run_abi abi src in
      Alcotest.(check int64) (Abi.name abi ^ " exit") expected code;
      Alcotest.(check string) (Abi.name abi ^ " output") output out)
    abis

let test_return_value () = check_all_abis 42L "int main(void) { return 6 * 7; }"

let test_locals_and_arith () =
  check_all_abis 21L
    {|
int main(void) {
  long a = 3;
  long b = 4;
  long c = a * b + 9;
  return c;
}
|}

let test_loops () =
  check_all_abis 55L
    {|
int main(void) {
  long s = 0;
  for (int i = 1; i <= 10; i++) s = s + i;
  return s;
}
|}

let test_functions_args () =
  check_all_abis 10L
    {|
long add3(long a, long b, long c) { return a + b + c; }
int main(void) { return add3(2, 3, 5); }
|}

let test_recursion () =
  check_all_abis 120L
    {|
long fact(long n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main(void) { return fact(5); }
|}

let test_pointers_malloc () =
  check_all_abis 9L
    {|
int main(void) {
  long *p = (long*)malloc(8 * sizeof(long));
  p[3] = 9;
  long v = p[3];
  free(p);
  return v;
}
|}

let test_structs_lists () =
  check_all_abis 6L
    {|
struct node { struct node *next; long v; };
int main(void) {
  struct node *head = (struct node*)0;
  for (long i = 1; i <= 3; i++) {
    struct node *n = (struct node*)malloc(sizeof(struct node));
    n->v = i;
    n->next = head;
    head = n;
  }
  long s = 0;
  while (head) { s = s + head->v; head = head->next; }
  return s;
}
|}

let test_locals_address () =
  check_all_abis 7L
    {|
void set(long *p, long v) { *p = v; }
int main(void) { long x = 0; set(&x, 7); return x; }
|}

let test_globals () =
  check_all_abis 15L
    {|
long counter = 5;
long table[4] = {1, 2, 3, 4};
int main(void) {
  long s = counter;
  for (int i = 0; i < 4; i++) s = s + table[i];
  return s;
}
|}

let test_string_output () =
  check_all_abis ~output:"hi 7\n" 0L
    {|
const char *greeting = "hi";
int main(void) {
  print_str(greeting);
  print_char(' ');
  print_int(7);
  print_char('\n');
  return 0;
}
|}

let test_struct_copy () =
  check_all_abis 3L
    {|
struct point { long x; long y; };
int main(void) {
  struct point a;
  struct point b;
  a.x = 1; a.y = 2;
  b = a;
  return b.x + b.y;
}
|}

let test_struct_copy_preserves_pointers () =
  (* a struct containing a pointer must survive assignment under the
     capability ABIs (field-wise copy uses the capability path) *)
  check_all_abis 5L
    {|
struct holder { long tag; long *p; };
int main(void) {
  long v = 5;
  struct holder a;
  a.tag = 1;
  a.p = &v;
  struct holder b;
  b = a;
  return *b.p;
}
|}

let test_sizeof_by_abi () =
  let src = "int main(void) { return sizeof(char*); }" in
  Alcotest.(check int64) "mips" 8L (fst (run_abi Abi.Mips src));
  Alcotest.(check int64) "v2" 32L (fst (run_abi (Abi.Cheri V2) src));
  Alcotest.(check int64) "v3" 32L (fst (run_abi (Abi.Cheri V3) src))

let test_bounds_trap_on_cheri () =
  let src =
    {|
int main(void) {
  char *p = (char*)malloc(8);
  p[9] = 'x';
  return 0;
}
|}
  in
  (* MIPS sails through (the allocator rounds to 32 bytes) *)
  (match C.run Abi.Mips src with
  | Machine.Exit 0L, _ -> ()
  | o, _ -> Alcotest.failf "MIPS should tolerate: %a" Machine.pp_outcome o);
  List.iter
    (fun abi ->
      match C.run abi src with
      | Machine.Trap { trap = Machine.Cap_trap _; _ }, _ -> ()
      | o, _ -> Alcotest.failf "%s should trap: %a" (Abi.name abi) Machine.pp_outcome o)
    [ Abi.Cheri V2; Abi.Cheri V3 ]

let test_v2_rejects_pointer_subtraction () =
  let src =
    {|
int main(void) {
  char *a = (char*)malloc(8);
  char *b = a + 4;
  return b - a;
}
|}
  in
  (match C.run (Abi.Cheri V2) src with
  | exception Abi.Unsupported _ -> ()
  | o, _ -> Alcotest.failf "v2 compiled pointer subtraction: %a" Machine.pp_outcome (fst (o, ())));
  Alcotest.(check int64) "v3 supports it" 4L (fst (run_abi (Abi.Cheri V3) src))

let test_v2_traps_on_backwards_arithmetic () =
  let src =
    {|
int main(void) {
  char *a = (char*)malloc(8);
  char *b = a + 4;
  char *c = b - 2;
  return *c;
}
|}
  in
  (match C.run (Abi.Cheri V2) src with
  | Machine.Trap { trap = Machine.Cap_trap _; _ }, _ -> ()
  | o, _ -> Alcotest.failf "v2 should trap on negative delta: %a" Machine.pp_outcome o);
  Alcotest.(check int64) "v3 fine" 0L (fst (run_abi (Abi.Cheri V3) src))

let test_intcap_on_v3 () =
  let src =
    {|
int main(void) {
  char *buf = (char*)malloc(16);
  buf[5] = 'z';
  intcap_t a = (intcap_t)buf;
  a = a + 5;
  char *p = (char*)a;
  return *p == 'z' ? 0 : 1;
}
|}
  in
  Alcotest.(check int64) "v3 intcap arith" 0L (fst (run_abi (Abi.Cheri V3) src));
  Alcotest.(check int64) "mips intcap arith" 0L (fst (run_abi Abi.Mips src));
  match C.run (Abi.Cheri V2) src with
  | exception Abi.Unsupported _ -> ()
  | o, _ -> Alcotest.failf "v2 compiled intcap arithmetic: %a" Machine.pp_outcome o

let test_conditional_expressions () =
  check_all_abis 5L "int main(void) { int x = 3; return x > 2 ? 5 : 9; }";
  check_all_abis 1L "int main(void) { return (1 && 2) + (0 || 0); }";
  check_all_abis 2L "int main(void) { int n = 0; if (n == 0 || 10 / n > 1) n = 2; return n; }"

let test_unsigned_ops () =
  check_all_abis 1L
    "int main(void) { unsigned long x = -1; return x / 2 > 0x7000000000000000 ? 1 : 0; }";
  check_all_abis 255L "int main(void) { unsigned char c = -1; return c; }"

let test_nested_calls_spill () =
  (* temps live across calls must be spilled and restored *)
  check_all_abis 30L
    {|
long f(long x) { return x * 2; }
int main(void) {
  long a = 3;
  return f(a) + f(a + 1) + f(f(a)) + a + 1;
}
|}

let test_cycle_counting_differs () =
  let src =
    {|
struct node { struct node *next; long v; };
int main(void) {
  struct node *head = (struct node*)0;
  for (long i = 0; i < 500; i++) {
    struct node *n = (struct node*)malloc(sizeof(struct node));
    n->v = i;
    n->next = head;
    head = n;
  }
  long s = 0;
  for (int pass = 0; pass < 20; pass++)
    for (struct node *p = head; p; p = p->next) s = s + p->v;
  return s % 256;
}
|}
  in
  let _, m_mips = C.run Abi.Mips src in
  let _, m_v3 = C.run (Abi.Cheri V3) src in
  let s_mips = Machine.stats m_mips and s_v3 = Machine.stats m_v3 in
  (* the pointer-heavy workload must show more cache misses under
     32-byte capabilities — the mechanism behind Figure 1 *)
  Alcotest.(check bool) "v3 has more L1 misses" true
    (s_v3.Machine.st_l1_misses > s_mips.Machine.st_l1_misses)

(* differential: compiled (each ABI) vs interpreter (matching model) *)
let battery =
  [
    ("gcd", {|
long gcd(long a, long b) { while (b) { long t = a % b; a = b; b = t; } return a; }
int main(void) { return gcd(252, 105); }
|});
    ( "sort",
      {|
int main(void) {
  long a[16];
  for (int i = 0; i < 16; i++) a[i] = (i * 37 + 11) % 100;
  for (int i = 0; i < 16; i++)
    for (int j = 0; j + 1 < 16 - i; j++)
      if (a[j] > a[j+1]) { long t = a[j]; a[j] = a[j+1]; a[j+1] = t; }
  return a[0] + a[15] * 2;
}
|} );
    ( "strings",
      {|
long my_strlen(const char *s) {
  long n = 0;
  while (s[n]) n++;
  return n;
}
int main(void) { return my_strlen("hello world"); }
|} );
    ( "tree",
      {|
struct t { struct t *l; struct t *r; long v; };
struct t *mk(long depth, long v) {
  struct t *n = (struct t*)malloc(sizeof(struct t));
  n->v = v;
  if (depth > 0) { n->l = mk(depth - 1, v * 2); n->r = mk(depth - 1, v * 2 + 1); }
  else { n->l = (struct t*)0; n->r = (struct t*)0; }
  return n;
}
long sum(struct t *n) {
  if (!n) return 0;
  return n->v + sum(n->l) + sum(n->r);
}
int main(void) { return sum(mk(4, 1)) % 251; }
|} );
  ]

let model_for_abi = function
  | Abi.Mips -> R.pdp11
  | Abi.Cheri Cheri_core.Cap_ops.V2 -> R.cheriv2
  | Abi.Cheri Cheri_core.Cap_ops.V3 -> R.cheriv3

let test_compiled_matches_interpreter () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun abi ->
          let compiled_code, compiled_out = run_abi abi src in
          match I.run_with (model_for_abi abi) src with
          | I.Exit (icode, iout) ->
              Alcotest.(check int64)
                (Printf.sprintf "%s/%s exit" name (Abi.name abi))
                icode compiled_code;
              Alcotest.(check string) (Printf.sprintf "%s/%s out" name (Abi.name abi)) iout compiled_out
          | o -> Alcotest.failf "%s interpreter failed: %a" name I.pp_outcome o)
        abis)
    battery

let suite =
  [
    Alcotest.test_case "return value" `Quick test_return_value;
    Alcotest.test_case "locals and arithmetic" `Quick test_locals_and_arith;
    Alcotest.test_case "loops" `Quick test_loops;
    Alcotest.test_case "function arguments" `Quick test_functions_args;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "pointers and malloc" `Quick test_pointers_malloc;
    Alcotest.test_case "linked lists" `Quick test_structs_lists;
    Alcotest.test_case "address of locals" `Quick test_locals_address;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "string output" `Quick test_string_output;
    Alcotest.test_case "struct copy" `Quick test_struct_copy;
    Alcotest.test_case "struct copy preserves pointers" `Quick test_struct_copy_preserves_pointers;
    Alcotest.test_case "sizeof by ABI" `Quick test_sizeof_by_abi;
    Alcotest.test_case "bounds trap on CHERI" `Quick test_bounds_trap_on_cheri;
    Alcotest.test_case "v2 rejects pointer subtraction" `Quick test_v2_rejects_pointer_subtraction;
    Alcotest.test_case "v2 traps on backwards arithmetic" `Quick test_v2_traps_on_backwards_arithmetic;
    Alcotest.test_case "intcap arithmetic" `Quick test_intcap_on_v3;
    Alcotest.test_case "conditionals and short-circuit" `Quick test_conditional_expressions;
    Alcotest.test_case "unsigned operations" `Quick test_unsigned_ops;
    Alcotest.test_case "spills around calls" `Quick test_nested_calls_spill;
    Alcotest.test_case "capability width shows in caches" `Quick test_cycle_counting_differs;
    Alcotest.test_case "compiled matches interpreter" `Quick test_compiled_matches_interpreter;
  ]

(* -- trap-on-overflow (-ftrapv style, paper §3.1.1) ------------------------ *)

let overflow_src =
  {|
int main(void) {
  long x = 9223372036854775807;
  long y = x + 1;            /* signed overflow: UB in C */
  return y < 0 ? 1 : 0;
}
|}

let test_trapv () =
  (* default: wraps, like every PDP-11-descendant implementation *)
  Alcotest.(check int64) "wraps without trapv" 1L (fst (run_abi Abi.Mips overflow_src));
  (* with -ftrapv, the hardware ADDT catches it *)
  (match C.run ~trapv:true Abi.Mips overflow_src with
  | Machine.Trap { trap = Machine.Overflow_trap; _ }, _ -> ()
  | o, _ -> Alcotest.failf "expected overflow trap, got %a" Machine.pp_outcome o);
  (* unsigned arithmetic must still wrap silently under trapv *)
  let unsigned_src =
    {|
int main(void) {
  unsigned long x = 18446744073709551615;
  unsigned long y = x + 1;
  return y == 0 ? 0 : 1;
}
|}
  in
  match C.run ~trapv:true Abi.Mips unsigned_src with
  | Machine.Exit 0L, _ -> ()
  | o, _ -> Alcotest.failf "unsigned wrap broke under trapv: %a" Machine.pp_outcome o

let test_trapv_does_not_change_correct_code () =
  List.iter
    (fun (name, src) ->
      let plain = run_abi Abi.Mips src in
      match C.run ~trapv:true Abi.Mips src with
      | Machine.Exit code, m ->
          Alcotest.(check int64) (name ^ " exit") (fst plain) code;
          Alcotest.(check string) (name ^ " out") (snd plain) (Machine.output m)
      | o, _ -> Alcotest.failf "%s trapped unexpectedly: %a" name Machine.pp_outcome o)
    battery

let trapv_suite =
  [
    Alcotest.test_case "trapv catches signed overflow" `Quick test_trapv;
    Alcotest.test_case "trapv transparent for correct code" `Quick test_trapv_does_not_change_correct_code;
  ]

let suite = suite @ trapv_suite

(* -- function pointers ------------------------------------------------------ *)

let funptr_battery =
  [
    ( "direct-assignment",
      {|
long twice(long x) { return 2 * x; }
long thrice(long x) { return 3 * x; }
int main(void) {
  long (*f)(long) = twice;
  long a = f(10);
  f = thrice;
  return a + f(10);
}
|},
      50L );
    ( "dispatch-table",
      {|
long add(long a, long b) { return a + b; }
long sub(long a, long b) { return a - b; }
long mul(long a, long b) { return a * b; }
struct op { long code; long (*fn)(long, long); };
int main(void) {
  struct op ops[3];
  ops[0].code = 1; ops[0].fn = add;
  ops[1].code = 2; ops[1].fn = sub;
  ops[2].code = 3; ops[2].fn = mul;
  long acc = 0;
  for (int i = 0; i < 3; i++) acc = acc + ops[i].fn(10, 3);
  return acc;
}
|},
      50L );
    ( "callback-argument",
      {|
long apply(long (*f)(long), long x) { return f(x); }
long inc(long x) { return x + 1; }
long dec(long x) { return x - 1; }
int main(void) { return apply(inc, 10) * apply(dec, 10); }
|},
      99L );
    ( "null-check",
      {|
long inc(long x) { return x + 1; }
int main(void) {
  long (*f)(long) = 0;
  if (f) return 1;
  f = inc;
  if (!(f != 0)) return 2;
  return f(41);
}
|},
      42L );
  ]

let test_function_pointers_all_backends () =
  List.iter
    (fun (name, src, expected) ->
      (* compiled, all three ABIs *)
      List.iter
        (fun abi ->
          Alcotest.(check int64)
            (Printf.sprintf "%s/isa-%s" name (Abi.name abi))
            expected (fst (run_abi abi src)))
        abis;
      (* interpreted, all seven models *)
      List.iter
        (fun m ->
          let module M = (val m : Cheri_models.Model.S) in
          match Cheri_interp.Interp.run_with m src with
          | Cheri_interp.Interp.Exit (code, _) ->
              Alcotest.(check int64) (Printf.sprintf "%s/interp-%s" name M.name) expected code
          | o -> Alcotest.failf "%s under %s: %a" name M.name Cheri_interp.Interp.pp_outcome o)
        R.all)
    funptr_battery

let test_null_funptr_call_faults () =
  let src =
    {|
int main(void) {
  long (*f)(long) = 0;
  return f(1);
}
|}
  in
  (* the interpreter reports a fault; the machine jumps to pc 0 (the
     startup stub) and eventually misbehaves — either way, not exit 1 *)
  (match Cheri_interp.Interp.run_with R.cheriv3 src with
  | Cheri_interp.Interp.Fault _ -> ()
  | o -> Alcotest.failf "expected fault, got %a" Cheri_interp.Interp.pp_outcome o);
  match Cheri_interp.Interp.run_with R.pdp11 src with
  | Cheri_interp.Interp.Fault _ -> ()
  | o -> Alcotest.failf "expected fault, got %a" Cheri_interp.Interp.pp_outcome o

let funptr_suite =
  [
    Alcotest.test_case "function pointers, all backends" `Quick test_function_pointers_all_backends;
    Alcotest.test_case "null function pointer faults" `Quick test_null_funptr_call_faults;
  ]

let suite = suite @ funptr_suite
