test/fuzz_gen.ml: Buffer List Printf Random
