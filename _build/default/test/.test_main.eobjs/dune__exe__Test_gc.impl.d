test/test_gc.ml: Alcotest Cheri_core Cheri_gc Cheri_tagmem Int64 QCheck QCheck_alcotest
