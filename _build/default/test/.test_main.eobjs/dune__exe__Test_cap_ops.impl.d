test/test_cap_ops.ml: Alcotest Cheri_core Int64 QCheck QCheck_alcotest
