test/test_analysis.ml: Alcotest Cheri_analysis List Minic Option Printf
