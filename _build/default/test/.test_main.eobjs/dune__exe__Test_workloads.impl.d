test/test_workloads.ml: Alcotest Cheri_compiler Cheri_core Cheri_workloads List Scanf String
