test/test_machine.ml: Alcotest Char Cheri_asm Cheri_core Cheri_isa Int64 List
