test/test_capability.ml: Alcotest Cheri_core Int64 QCheck QCheck_alcotest
