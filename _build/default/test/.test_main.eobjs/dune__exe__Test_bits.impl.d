test/test_bits.ml: Alcotest Bits Cheri_util Int64 QCheck QCheck_alcotest Random
