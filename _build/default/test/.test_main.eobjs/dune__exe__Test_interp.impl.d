test/test_interp.ml: Alcotest Cheri_interp Cheri_models List
