test/test_fuzz.ml: Alcotest Cheri_compiler Cheri_interp Cheri_isa Cheri_models Fuzz_gen List
