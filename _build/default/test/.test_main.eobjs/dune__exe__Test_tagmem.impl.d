test/test_tagmem.ml: Alcotest Array Cheri_core Cheri_tagmem Cheri_util Int64 List Printf QCheck QCheck_alcotest
