test/test_compiler.ml: Alcotest Cheri_compiler Cheri_core Cheri_interp Cheri_isa Cheri_models List Printf
