test/test_asm.ml: Alcotest Array Bytes Cheri_asm Cheri_core Cheri_isa Int64
