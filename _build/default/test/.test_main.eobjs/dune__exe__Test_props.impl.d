test/test_props.ml: Buffer Cheri_asm Cheri_compiler Cheri_core Cheri_isa Cheri_models Cheri_tagmem Gen Int64 List Printf QCheck QCheck_alcotest
