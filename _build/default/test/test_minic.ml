(* Front-end tests: lexer, parser, type checker, layout. *)

open Minic
module T = Typed

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile = Typecheck.compile

let type_errors src =
  match Typecheck.compile src with
  | exception Typecheck.Type_error _ -> true
  | _ -> false

(* -- lexer -------------------------------------------------------------- *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "int x = 0x2a; // comment\nchar c = 'a';" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  check_bool "hex literal" true (List.mem (Lexer.INT_LIT 42L) kinds);
  check_bool "char literal" true (List.mem (Lexer.CHAR_LIT 'a') kinds);
  check_bool "keyword" true (List.mem (Lexer.KW "int") kinds)

let test_lexer_strings () =
  let toks = Lexer.tokenize {|"a\nb"|} in
  match (List.hd toks).Lexer.tok with
  | Lexer.STR_LIT s -> Alcotest.(check string) "escape" "a\nb" s
  | _ -> Alcotest.fail "expected string literal"

let test_lexer_comments () =
  let toks = Lexer.tokenize "/* multi\nline */ 7" in
  check_int "only literal and eof" 2 (List.length toks)

let test_lexer_error () =
  match Lexer.tokenize "int @" with
  | exception Lexer.Lex_error (_, 1) -> ()
  | _ -> Alcotest.fail "expected lex error"

(* -- parser ------------------------------------------------------------- *)

let test_parse_precedence () =
  match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Ebinop (Ast.Add, Ast.Enum 1L, Ast.Ebinop (Ast.Mul, Ast.Enum 2L, Ast.Enum 3L)) -> ()
  | _ -> Alcotest.fail "wrong precedence"

let test_parse_cast_vs_parens () =
  (match Parser.parse_expr "(int)x" with
  | Ast.Ecast (t, Ast.Eident "x") when t = Ast.tint -> ()
  | _ -> Alcotest.fail "cast not recognized");
  match Parser.parse_expr "(x)" with
  | Ast.Eident "x" -> ()
  | _ -> Alcotest.fail "parenthesized expression broken"

let test_parse_declarators () =
  let p = compile "struct s { int a; }; int *g[4]; int main(void) { return 0; }" in
  match (List.hd p.T.globals).T.gty with
  | Ast.Tarray (Ast.Tptr _, 4) -> ()
  | t -> Alcotest.failf "expected int*[4], got %a" Ast.pp_ty t

let test_parse_for_while () =
  let p =
    compile
      {|
int main(void) {
  long s = 0;
  for (int i = 0; i < 10; i++) s += i;
  while (s > 40) s--;
  do { s++; } while (s < 41);
  return s;
}
|}
  in
  check_int "one function" 1 (List.length p.T.funcs)

let test_parse_error_position () =
  match Parser.parse "int main(void) {\n  return ;;\n}" with
  | exception Parser.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "expected parse error"

(* -- typechecking -------------------------------------------------------- *)

let test_undefined_variable () =
  check_bool "undefined var" true (type_errors "int main(void) { return nope; }")

let test_const_assignment_rejected () =
  check_bool "write through const" true
    (type_errors "int main(void) { const int x = 1; x = 2; return 0; }");
  check_bool "write through const pointer" true
    (type_errors "int main(void) { int y = 1; const int *p = &y; *p = 2; return 0; }")

let test_deconst_cast_accepted () =
  check_bool "deconst compiles" false
    (type_errors
       "int main(void) { int y = 1; const int *p = &y; int *q = (int*)p; *q = 2; return 0; }")

let test_incompatible_pointers_rejected () =
  check_bool "long* to int* implicit" true
    (type_errors "int main(void) { long x; int *p = &x; return 0; }");
  check_bool "void* laundering allowed" false
    (type_errors "int main(void) { long x; void *v = &x; int *p = v; return 0; }")

let test_pointer_arith_types () =
  let p =
    compile "int main(void) { char *c = (char*)malloc(4); long d = (c + 3) - c; return d; }"
  in
  ignore p

let test_no_main () =
  check_bool "missing main" true (type_errors "int f(void) { return 0; }")

let test_shadowing_renamed () =
  let p =
    compile
      {|
int main(void) {
  int x = 1;
  { int x = 2; x = x + 1; }
  return x;
}
|}
  in
  let names = ref [] in
  T.iter_program
    (fun _ -> ())
    (fun s -> match s with T.Decl { name; _ } -> names := name :: !names | _ -> ())
    p;
  check_int "two distinct locals" 2 (List.length (List.sort_uniq compare !names))

(* -- layout -------------------------------------------------------------- *)

let layout_prog =
  compile
    {|
struct mixed { char c; long l; short s; };
struct node { struct node *next; int v; };
union u { char bytes[12]; long l; };
int main(void) { return 0; }
|}

let test_struct_layout_mips () =
  let t = Layout.mips_target in
  check_int "mixed size" 24 (Layout.size_of layout_prog t (Ast.Tstruct "mixed"));
  check_int "c offset" 0 (Layout.field_offset layout_prog t (Ast.Tstruct "mixed") "c");
  check_int "l offset" 8 (Layout.field_offset layout_prog t (Ast.Tstruct "mixed") "l");
  check_int "s offset" 16 (Layout.field_offset layout_prog t (Ast.Tstruct "mixed") "s");
  check_int "node size (8-byte ptr)" 16 (Layout.size_of layout_prog t (Ast.Tstruct "node"))

let test_struct_layout_cheri () =
  let t = Layout.cheri_target in
  (* pointers blow up to 32 bytes with 32-byte alignment *)
  check_int "node size (32-byte cap)" 64 (Layout.size_of layout_prog t (Ast.Tstruct "node"));
  check_int "v offset" 32 (Layout.field_offset layout_prog t (Ast.Tstruct "node") "v");
  check_int "pointer size" 32 (Layout.size_of layout_prog t (Ast.ptr Ast.tint))

let test_union_layout () =
  let t = Layout.mips_target in
  check_int "union size" 16 (Layout.size_of layout_prog t (Ast.Tunion "u"));
  check_int "all members at 0" 0 (Layout.field_offset layout_prog t (Ast.Tunion "u") "l")

let test_array_layout () =
  let t = Layout.mips_target in
  check_int "int[10]" 40 (Layout.size_of layout_prog t (Ast.Tarray (Ast.tint, 10)));
  check_int "void scales by 1" 1 (Layout.elem_size layout_prog t Ast.Tvoid)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer strings" `Quick test_lexer_strings;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "cast vs parens" `Quick test_parse_cast_vs_parens;
    Alcotest.test_case "declarators" `Quick test_parse_declarators;
    Alcotest.test_case "for/while/do" `Quick test_parse_for_while;
    Alcotest.test_case "parse error" `Quick test_parse_error_position;
    Alcotest.test_case "undefined variable" `Quick test_undefined_variable;
    Alcotest.test_case "const assignment rejected" `Quick test_const_assignment_rejected;
    Alcotest.test_case "deconst cast accepted" `Quick test_deconst_cast_accepted;
    Alcotest.test_case "incompatible pointers" `Quick test_incompatible_pointers_rejected;
    Alcotest.test_case "pointer arithmetic types" `Quick test_pointer_arith_types;
    Alcotest.test_case "missing main" `Quick test_no_main;
    Alcotest.test_case "shadowing renamed" `Quick test_shadowing_renamed;
    Alcotest.test_case "struct layout (MIPS)" `Quick test_struct_layout_mips;
    Alcotest.test_case "struct layout (CHERI)" `Quick test_struct_layout_cheri;
    Alcotest.test_case "union layout" `Quick test_union_layout;
    Alcotest.test_case "array layout" `Quick test_array_layout;
  ]
