(* Random well-defined mini-C program generator for differential
   testing. Generated programs use only defined behaviour that every
   pointer model and every ABI must agree on:

   - all variables initialized before use;
   - array indices masked to power-of-two bounds;
   - division guarded against zero;
   - shifts by constant amounts in [0, 63];
   - pointer arithmetic forward and in bounds (CHERIv2-compatible);
   - bounded loops only.

   The program prints a running checksum, so divergence in any
   intermediate value is observable. *)

type ctx = {
  rng : Random.State.t;
  buf : Buffer.t;
  mutable n_locals : int;
  arr_size : int;  (* power of two *)
  heap_size : int;  (* power of two *)
  mutable depth : int;
  mutable in_loop : bool;  (* whether the loop variable i is in scope *)
}

let rand ctx n = Random.State.int ctx.rng n
let pick ctx l = List.nth l (rand ctx (List.length l))
let pr ctx fmt = Printf.ksprintf (Buffer.add_string ctx.buf) fmt

(* an expression of type long, using initialized locals x0..x{n-1} *)
let rec gen_expr ctx =
  ctx.depth <- ctx.depth + 1;
  let leaf () =
    match rand ctx 4 with
    | 0 -> string_of_int (rand ctx 1000 - 500)
    | 1 when ctx.n_locals > 0 -> Printf.sprintf "x%d" (rand ctx ctx.n_locals)
    | 2 -> Printf.sprintf "arr[%s & %d]" (gen_small ctx) (ctx.arr_size - 1)
    | _ -> Printf.sprintf "heap[%s & %d]" (gen_small ctx) (ctx.heap_size - 1)
  in
  let e =
    if ctx.depth > 4 then leaf ()
    else
      match rand ctx 8 with
      | 0 | 1 -> leaf ()
      | 2 -> Printf.sprintf "(%s %s %s)" (gen_expr ctx) (pick ctx [ "+"; "-"; "*" ]) (gen_expr ctx)
      | 3 -> Printf.sprintf "(%s %s (%s | 1))" (gen_expr ctx) (pick ctx [ "/"; "%" ]) (gen_expr ctx)
      | 4 ->
          Printf.sprintf "(%s %s %s)" (gen_expr ctx)
            (pick ctx [ "&"; "|"; "^" ])
            (gen_expr ctx)
      | 5 -> Printf.sprintf "(%s %s %d)" (gen_expr ctx) (pick ctx [ "<<"; ">>" ]) (rand ctx 8)
      | 6 ->
          Printf.sprintf "(%s %s %s ? %s : %s)" (gen_expr ctx)
            (pick ctx [ "<"; "<="; "=="; "!="; ">"; ">=" ])
            (gen_expr ctx) (gen_expr ctx) (gen_expr ctx)
      | _ -> Printf.sprintf "(*(p + (%s & %d)))" (gen_small ctx) (ctx.arr_size - 1)
  in
  ctx.depth <- ctx.depth - 1;
  e

and gen_small ctx =
  match rand ctx 3 with
  | 0 -> string_of_int (rand ctx 64)
  | 1 when ctx.n_locals > 0 -> Printf.sprintf "x%d" (rand ctx ctx.n_locals)
  | _ when ctx.in_loop -> Printf.sprintf "(i + %d)" (rand ctx 8)
  | _ -> string_of_int (rand ctx 32)

let gen_stmt ctx =
  match rand ctx 6 with
  | 0 when ctx.n_locals > 0 ->
      pr ctx "    x%d = %s;\n" (rand ctx ctx.n_locals) (gen_expr ctx)
  | 1 -> pr ctx "    arr[%s & %d] = %s;\n" (gen_small ctx) (ctx.arr_size - 1) (gen_expr ctx)
  | 2 -> pr ctx "    heap[%s & %d] = %s;\n" (gen_small ctx) (ctx.heap_size - 1) (gen_expr ctx)
  | 3 ->
      pr ctx "    if (%s %s %s) { %s; } else { %s; }\n" (gen_expr ctx)
        (pick ctx [ "<"; ">"; "==" ])
        (gen_expr ctx)
        (Printf.sprintf "sum = sum + %s" (gen_expr ctx))
        (Printf.sprintf "sum = sum ^ %s" (gen_expr ctx))
  | 4 -> pr ctx "    *(p + (%s & %d)) = %s;\n" (gen_small ctx) (ctx.arr_size - 1) (gen_expr ctx)
  | _ -> pr ctx "    sum = sum + %s;\n" (gen_expr ctx)

let generate ~seed : string =
  let ctx =
    {
      rng = Random.State.make [| seed |];
      buf = Buffer.create 1024;
      n_locals = 0;
      arr_size = 8 lsl Random.State.int (Random.State.make [| seed + 1 |]) 2;
      heap_size = 16;
      depth = 0;
      in_loop = false;
    }
  in
  pr ctx "int main(void) {\n";
  pr ctx "  long sum = 0;\n";
  pr ctx "  long arr[%d];\n" ctx.arr_size;
  pr ctx "  for (long i = 0; i < %d; i++) arr[i] = i * 7 + 3;\n" ctx.arr_size;
  pr ctx "  long *heap = (long *)malloc(%d * sizeof(long));\n" ctx.heap_size;
  pr ctx "  for (long i = 0; i < %d; i++) heap[i] = i * 13 + 1;\n" ctx.heap_size;
  pr ctx "  long *p = &arr[0];\n";
  let n_locals = 2 + rand ctx 4 in
  for k = 0 to n_locals - 1 do
    ctx.n_locals <- k;
    pr ctx "  long x%d = %s;\n" k (gen_expr ctx)
  done;
  ctx.n_locals <- n_locals;
  let iters = 2 + rand ctx 6 in
  pr ctx "  for (long i = 0; i < %d; i++) {\n" iters;
  ctx.in_loop <- true;
  let stmts = 2 + rand ctx 5 in
  for _ = 1 to stmts do
    gen_stmt ctx
  done;
  ctx.in_loop <- false;
  pr ctx "  }\n";
  pr ctx "  for (long i = 0; i < %d; i++) sum = sum * 31 + arr[i];\n" ctx.arr_size;
  pr ctx "  for (long i = 0; i < %d; i++) sum = sum * 31 + heap[i];\n" ctx.heap_size;
  (List.init n_locals (fun k -> k))
  |> List.iter (fun k -> pr ctx "  sum = sum * 31 + x%d;\n" k);
  pr ctx "  print_int(sum);\n";
  pr ctx "  print_char('\\n');\n";
  pr ctx "  return (sum & 127);\n";
  pr ctx "}\n";
  Buffer.contents ctx.buf
