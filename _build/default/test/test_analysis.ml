(* Static-analysis tests: idiom detection, optimizer behaviour, and
   the Table 1 corpus roundtrip. *)

module A = Cheri_analysis
module Idiom = A.Idiom
module Counts = A.Idiom.Counts

let analyze = A.Finder.analyze_source

let check_counts name expected src =
  let found = analyze src in
  List.iter
    (fun idiom ->
      let want = Option.value ~default:0 (List.assoc_opt idiom expected) in
      Alcotest.(check int)
        (Printf.sprintf "%s: %s" name (Idiom.name idiom))
        want (Counts.get found idiom))
    Idiom.all

let test_deconst () =
  check_counts "deconst"
    [ (Idiom.Deconst, 1) ]
    {|
int main(void) {
  int x = 1;
  const int *cp = &x;
  int *p = (int *)cp;
  *p = 2;
  return 0;
}
|}

let test_adding_const_not_counted () =
  check_counts "const-adding cast" []
    {|
int main(void) {
  int x = 1;
  const int *cp = (const int *)&x;
  return *cp;
}
|}

let test_container () =
  check_counts "container"
    [ (Idiom.Container, 1) ]
    {|
struct pair { long a; long b; };
long back(long *pb) {
  struct pair *p = (struct pair *)((char *)pb - sizeof(long));
  return p->a;
}
int main(void) { return 0; }
|}

let test_sub () =
  check_counts "sub"
    [ (Idiom.Sub, 2) ]
    {|
long f(char *a, char *b) {
  long d = a - b;          /* pointer difference */
  char *p = a - 4;         /* negative pointer arithmetic */
  return d + (long)*p;
}
int main(void) { return 0; }
|}

let test_ii () =
  check_counts "invalid intermediate"
    [ (Idiom.Ii, 1) ]
    {|
long f(long *a) { return *((a + 100) - 99); }
int main(void) { return 0; }
|}

let test_int () =
  check_counts "int"
    [ (Idiom.Int_, 1) ]
    {|
void f(long *p) {
  long v = (long)p;
  print_int(v);
}
int main(void) { return 0; }
|}

let test_ia () =
  check_counts "ia"
    [ (Idiom.Ia, 1) ]
    {|
long f(long *p) {
  long *q = (long *)((long)p + 8);
  return *q;
}
int main(void) { return 0; }
|}

let test_mask () =
  check_counts "mask"
    [ (Idiom.Mask, 1) ]
    {|
long f(long *p) {
  long *q = (long *)((long)p & ~7);
  return *q;
}
int main(void) { return 0; }
|}

let test_wide () =
  check_counts "wide"
    [ (Idiom.Wide, 1) ]
    {|
unsigned int f(long *p) { return (unsigned int)(long)p; }
int main(void) { return 0; }
|}

let test_taint_through_variables () =
  (* arithmetic on a variable that held a pointer is still IA *)
  check_counts "taint"
    [ (Idiom.Int_, 1); (Idiom.Ia, 1) ]
    {|
long f(long *p) {
  long v = (long)p;
  print_int(v);
  long w = v + 8;
  return w;
}
int main(void) { return 0; }
|}

let test_dead_code_not_counted () =
  check_counts "dead code" []
    {|
long f(long *p, long *q) {
  long unused = p - q;
  long also = (long)p;
  return 7;
}
int main(void) { return 0; }
|}

let test_optimizer_constant_folding () =
  let prog = Minic.Typecheck.compile "int main(void) { return 2 * 3 + 4; }" in
  let opt = A.Optimizer.optimize prog in
  let f = List.hd opt.Minic.Typed.funcs in
  match f.Minic.Typed.body with
  | [ Minic.Typed.Return (Some { Minic.Typed.e = Minic.Typed.Num 10L; _ }) ] -> ()
  | _ -> Alcotest.fail "constant expression not folded"

let test_optimizer_preserves_side_effects () =
  (* a dead local initialized by a call keeps the call *)
  let src =
    {|
long effect(void) { print_int(1); return 2; }
int main(void) {
  long dead = effect();
  return 0;
}
|}
  in
  let prog = A.Optimizer.optimize (Minic.Typecheck.compile src) in
  let main_f = Option.get (Minic.Typed.find_func prog "main") in
  let has_call = ref false in
  List.iter
    (Minic.Typed.iter_stmt
       (fun e -> match e.Minic.Typed.e with Minic.Typed.Call ("effect", _) -> has_call := true | _ -> ())
       (fun _ -> ()))
    main_f.Minic.Typed.body;
  Alcotest.(check bool) "call survives" true !has_call

let test_corpus_roundtrip () =
  List.iter
    (fun row ->
      let g = A.Corpus.generate ~scale:50 row in
      let found = analyze g.A.Corpus.source in
      List.iter
        (fun idiom ->
          Alcotest.(check int)
            (Printf.sprintf "%s/%s" row.A.Corpus.package (Idiom.name idiom))
            (Counts.get g.A.Corpus.planted idiom)
            (Counts.get found idiom))
        Idiom.all)
    A.Corpus.paper_table1

let test_corpus_shape_matches_paper () =
  (* scaled counts must be the ceiling of paper counts / scale *)
  let scale = 50 in
  let rows = A.Corpus.run ~scale () in
  List.iter
    (fun { A.Corpus.row; found; _ } ->
      let expected = A.Corpus.expected_counts row in
      List.iter
        (fun (idiom, paper_count) ->
          let want = (paper_count + scale - 1) / scale in
          Alcotest.(check int)
            (Printf.sprintf "%s %s" row.A.Corpus.package (Idiom.name idiom))
            want (Counts.get found idiom))
        expected)
    rows

let suite =
  [
    Alcotest.test_case "deconst detected" `Quick test_deconst;
    Alcotest.test_case "adding const not counted" `Quick test_adding_const_not_counted;
    Alcotest.test_case "container detected" `Quick test_container;
    Alcotest.test_case "sub detected" `Quick test_sub;
    Alcotest.test_case "invalid intermediate detected" `Quick test_ii;
    Alcotest.test_case "int detected" `Quick test_int;
    Alcotest.test_case "ia detected" `Quick test_ia;
    Alcotest.test_case "mask detected" `Quick test_mask;
    Alcotest.test_case "wide detected" `Quick test_wide;
    Alcotest.test_case "taint through variables" `Quick test_taint_through_variables;
    Alcotest.test_case "dead code not counted" `Quick test_dead_code_not_counted;
    Alcotest.test_case "constant folding" `Quick test_optimizer_constant_folding;
    Alcotest.test_case "side effects preserved" `Quick test_optimizer_preserves_side_effects;
    Alcotest.test_case "Table 1 corpus roundtrip" `Slow test_corpus_roundtrip;
    Alcotest.test_case "Table 1 shape matches paper" `Slow test_corpus_shape_matches_paper;
  ]
