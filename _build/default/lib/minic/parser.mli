(** Recursive-descent parser producing the untyped {!Ast}.

    Grammar notes: no typedefs (so cast disambiguation is purely
    syntactic), no floating point, prototypes are accepted and
    ignored, declarations may carry comma-separated declarator lists,
    and global arrays accept brace or string initializers. *)

exception Parse_error of string * int  (** message, line *)

val parse : string -> Ast.program
(** Parse a whole translation unit from source text. Raises
    {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests). *)
