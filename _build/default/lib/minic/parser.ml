open Ast

exception Parse_error of string * int

type state = { mutable toks : Lexer.t list }

let fail st msg =
  let line = match st.toks with { line; _ } :: _ -> line | [] -> 0 in
  raise (Parse_error (msg, line))

let peek st = match st.toks with { tok; _ } :: _ -> tok | [] -> Lexer.EOF
let peek2 st = match st.toks with _ :: { tok; _ } :: _ -> tok | _ -> Lexer.EOF

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect_punct st p =
  match next st with
  | Lexer.PUNCT q when q = p -> ()
  | t -> fail st (Format.asprintf "expected '%s', found %a" p Lexer.pp_token t)

let expect_ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> fail st (Format.asprintf "expected identifier, found %a" Lexer.pp_token t)

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p ->
      advance st;
      true
  | _ -> false

let accept_kw st k =
  match peek st with
  | Lexer.KW q when q = k ->
      advance st;
      true
  | _ -> false

(* -- types --------------------------------------------------------------- *)

let is_type_start = function
  | Lexer.KW
      ("void" | "char" | "short" | "int" | "long" | "unsigned" | "signed" | "const" | "struct"
      | "union" | "intcap_t") ->
      true
  | _ -> false

(* base type with leading const: returns (ty, const) *)
let parse_base_type st =
  let const = accept_kw st "const" in
  let base =
    match next st with
    | Lexer.KW "void" -> Tvoid
    | Lexer.KW "char" -> tchar
    | Lexer.KW "short" ->
        ignore (accept_kw st "int");
        tshort
    | Lexer.KW "int" -> tint
    | Lexer.KW "long" ->
        ignore (accept_kw st "long");
        ignore (accept_kw st "int");
        tlong
    | Lexer.KW "intcap_t" -> Tintcap
    | Lexer.KW "signed" -> (
        match peek st with
        | Lexer.KW "char" ->
            advance st;
            tchar
        | Lexer.KW "short" ->
            advance st;
            tshort
        | Lexer.KW "int" ->
            advance st;
            tint
        | Lexer.KW "long" ->
            advance st;
            ignore (accept_kw st "long");
            tlong
        | _ -> tint)
    | Lexer.KW "unsigned" -> (
        match peek st with
        | Lexer.KW "char" ->
            advance st;
            tuchar
        | Lexer.KW "short" ->
            advance st;
            tushort
        | Lexer.KW "int" ->
            advance st;
            tuint
        | Lexer.KW "long" ->
            advance st;
            ignore (accept_kw st "long");
            tulong
        | _ -> tuint)
    | Lexer.KW "struct" -> Tstruct (expect_ident st)
    | Lexer.KW "union" -> Tunion (expect_ident st)
    | t -> fail st (Format.asprintf "expected a type, found %a" Lexer.pp_token t)
  in
  (* allow trailing const: "char const" *)
  let const = accept_kw st "const" || const in
  (base, const)

(* pointer suffix: each '*' may be followed by const qualifying the pointer
   itself, which we ignore (pointer-to-const is what matters for the
   DECONST idiom) *)
let rec parse_pointers st (ty, const) =
  if accept_punct st "*" then begin
    ignore (accept_kw st "const");
    parse_pointers st (Tptr { pointee = ty; pointee_const = const }, false)
  end
  else (ty, const)

(* a full abstract type, e.g. in casts and sizeof *)
let parse_type st =
  let ty, const = parse_pointers st (parse_base_type st) in
  ignore const;
  ty

(* -- expressions ---------------------------------------------------------- *)

let rec parse_expr_st st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  match peek st with
  | Lexer.PUNCT "=" ->
      advance st;
      Eassign (lhs, parse_assign st)
  | Lexer.PUNCT "+=" ->
      advance st;
      Eassign_op (Add, lhs, parse_assign st)
  | Lexer.PUNCT "-=" ->
      advance st;
      Eassign_op (Sub, lhs, parse_assign st)
  | Lexer.PUNCT "*=" ->
      advance st;
      Eassign_op (Mul, lhs, parse_assign st)
  | Lexer.PUNCT "/=" ->
      advance st;
      Eassign_op (Div, lhs, parse_assign st)
  | Lexer.PUNCT "%=" ->
      advance st;
      Eassign_op (Mod, lhs, parse_assign st)
  | Lexer.PUNCT "&=" ->
      advance st;
      Eassign_op (Band, lhs, parse_assign st)
  | Lexer.PUNCT "|=" ->
      advance st;
      Eassign_op (Bor, lhs, parse_assign st)
  | Lexer.PUNCT "^=" ->
      advance st;
      Eassign_op (Bxor, lhs, parse_assign st)
  | Lexer.PUNCT "<<=" ->
      advance st;
      Eassign_op (Shl, lhs, parse_assign st)
  | Lexer.PUNCT ">>=" ->
      advance st;
      Eassign_op (Shr, lhs, parse_assign st)
  | _ -> lhs

and parse_cond st =
  let c = parse_lor st in
  if accept_punct st "?" then begin
    let t = parse_expr_st st in
    expect_punct st ":";
    let f = parse_cond st in
    Econd (c, t, f)
  end
  else c

and parse_binop_level st ops sub =
  let rec go lhs =
    match peek st with
    | Lexer.PUNCT p when List.mem_assoc p ops ->
        advance st;
        go (Ebinop (List.assoc p ops, lhs, sub st))
    | _ -> lhs
  in
  go (sub st)

and parse_lor st = parse_binop_level st [ ("||", Lor) ] parse_land
and parse_land st = parse_binop_level st [ ("&&", Land) ] parse_bor
and parse_bor st = parse_binop_level st [ ("|", Bor) ] parse_bxor
and parse_bxor st = parse_binop_level st [ ("^", Bxor) ] parse_band
and parse_band st = parse_binop_level st [ ("&", Band) ] parse_equality
and parse_equality st = parse_binop_level st [ ("==", Eq); ("!=", Ne) ] parse_relational

and parse_relational st =
  parse_binop_level st [ ("<", Lt); ("<=", Le); (">", Gt); (">=", Ge) ] parse_shift

and parse_shift st = parse_binop_level st [ ("<<", Shl); (">>", Shr) ] parse_additive
and parse_additive st = parse_binop_level st [ ("+", Add); ("-", Sub) ] parse_multiplicative

and parse_multiplicative st =
  parse_binop_level st [ ("*", Mul); ("/", Div); ("%", Mod) ] parse_unary

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
      advance st;
      Eunop (Neg, parse_unary st)
  | Lexer.PUNCT "~" ->
      advance st;
      Eunop (Bnot, parse_unary st)
  | Lexer.PUNCT "!" ->
      advance st;
      Eunop (Lnot, parse_unary st)
  | Lexer.PUNCT "*" ->
      advance st;
      Ederef (parse_unary st)
  | Lexer.PUNCT "&" ->
      advance st;
      Eaddr (parse_unary st)
  | Lexer.PUNCT "++" ->
      advance st;
      Eincdec (Preinc, parse_unary st)
  | Lexer.PUNCT "--" ->
      advance st;
      Eincdec (Predec, parse_unary st)
  | Lexer.PUNCT "(" when is_type_start (peek2 st) ->
      advance st;
      let ty = parse_type st in
      expect_punct st ")";
      Ecast (ty, parse_unary st)
  | Lexer.KW "sizeof" ->
      advance st;
      if peek st = Lexer.PUNCT "(" && is_type_start (peek2 st) then begin
        advance st;
        let ty = parse_type st in
        expect_punct st ")";
        Esizeof_ty ty
      end
      else Esizeof_expr (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek st with
    | Lexer.PUNCT "[" ->
        advance st;
        let idx = parse_expr_st st in
        expect_punct st "]";
        go (Eindex (e, idx))
    | Lexer.PUNCT "(" ->
        (* call through a computed function pointer, e.g. table[i](x) *)
        advance st;
        go (Ecall_ptr (e, parse_args st))
    | Lexer.PUNCT "." ->
        advance st;
        go (Efield (e, expect_ident st))
    | Lexer.PUNCT "->" ->
        advance st;
        go (Earrow (e, expect_ident st))
    | Lexer.PUNCT "++" ->
        advance st;
        go (Eincdec (Postinc, e))
    | Lexer.PUNCT "--" ->
        advance st;
        go (Eincdec (Postdec, e))
    | _ -> e
  in
  go (parse_primary st)

and parse_primary st =
  match next st with
  | Lexer.INT_LIT v -> Enum v
  | Lexer.CHAR_LIT c -> Enum (Int64.of_int (Char.code c))
  | Lexer.STR_LIT s -> Estr s
  | Lexer.IDENT name ->
      if accept_punct st "(" then begin
        let args = parse_args st in
        Ecall (name, args)
      end
      else Eident name
  | Lexer.PUNCT "(" ->
      let e = parse_expr_st st in
      expect_punct st ")";
      e
  | t -> fail st (Format.asprintf "expected an expression, found %a" Lexer.pp_token t)

and parse_args st =
  if accept_punct st ")" then []
  else
    let rec go acc =
      let e = parse_assign st in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []

(* -- statements ----------------------------------------------------------- *)

(* abstract parameter-type list for a function-pointer declarator *)
let parse_funptr_params st =
  if accept_punct st ")" then []
  else if peek st = Lexer.KW "void" && peek2 st = Lexer.PUNCT ")" then begin
    advance st;
    expect_punct st ")";
    []
  end
  else begin
    let rec go acc =
      let pty, _ = parse_pointers st (parse_base_type st) in
      (* parameter names are allowed and ignored *)
      (match peek st with Lexer.IDENT _ -> advance st | _ -> ());
      if accept_punct st "," then go (pty :: acc)
      else begin
        expect_punct st ")";
        List.rev (pty :: acc)
      end
    in
    go []
  end

(* one declarator after the base type: pointers, name, array suffixes,
   or the function-pointer form  ret ( *name )(params)  *)
let parse_declarator st (base_ty, base_const) =
  let ty, const = parse_pointers st (base_ty, base_const) in
  if peek st = Lexer.PUNCT "(" && peek2 st = Lexer.PUNCT "*" then begin
    advance st;
    advance st;
    let name = expect_ident st in
    expect_punct st ")";
    expect_punct st "(";
    let fparams = parse_funptr_params st in
    (Tfunptr { fret = ty; fparams }, const, name)
  end
  else
  let name = expect_ident st in
  let rec arrays ty =
    if accept_punct st "[" then begin
      let n =
        match next st with
        | Lexer.INT_LIT v -> Int64.to_int v
        | t -> fail st (Format.asprintf "expected array size, found %a" Lexer.pp_token t)
      in
      expect_punct st "]";
      (* dimensions apply outside-in: int a[2][3] is 2 arrays of 3 *)
      Tarray (arrays ty, n)
    end
    else ty
  in
  (arrays ty, const, name)

let rec parse_stmt st =
  match peek st with
  | Lexer.PUNCT "{" -> Sblock (parse_block st)
  | Lexer.KW "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr_st st in
      expect_punct st ")";
      let then_ = parse_stmt_as_block st in
      let else_ = if accept_kw st "else" then parse_stmt_as_block st else [] in
      Sif (c, then_, else_)
  | Lexer.KW "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr_st st in
      expect_punct st ")";
      Swhile (c, parse_stmt_as_block st)
  | Lexer.KW "do" ->
      advance st;
      let body = parse_stmt_as_block st in
      if not (accept_kw st "while") then fail st "expected 'while' after do-body";
      expect_punct st "(";
      let c = parse_expr_st st in
      expect_punct st ")";
      expect_punct st ";";
      Sdo (body, c)
  | Lexer.KW "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if accept_punct st ";" then None
        else if is_type_start (peek st) then begin
          let s = parse_decl_stmt st in
          Some s
        end
        else begin
          let e = parse_expr_st st in
          expect_punct st ";";
          Some (Sexpr e)
        end
      in
      let cond = if peek st = Lexer.PUNCT ";" then None else Some (parse_expr_st st) in
      expect_punct st ";";
      let step = if peek st = Lexer.PUNCT ")" then None else Some (parse_expr_st st) in
      expect_punct st ")";
      Sfor (init, cond, step, parse_stmt_as_block st)
  | Lexer.KW "return" ->
      advance st;
      if accept_punct st ";" then Sreturn None
      else begin
        let e = parse_expr_st st in
        expect_punct st ";";
        Sreturn (Some e)
      end
  | Lexer.KW "break" ->
      advance st;
      expect_punct st ";";
      Sbreak
  | Lexer.KW "continue" ->
      advance st;
      expect_punct st ";";
      Scontinue
  | t when is_type_start t -> parse_decl_stmt st
  | _ ->
      let e = parse_expr_st st in
      expect_punct st ";";
      Sexpr e

(* declaration statement, possibly with several comma-separated
   declarators; returns a single statement (block if several) *)
and parse_decl_stmt st =
  let base = parse_base_type st in
  let rec go acc =
    let ty, const, name = parse_declarator st base in
    let init = if accept_punct st "=" then Some (parse_assign st) else None in
    let decl = Sdecl { const; ty; name; init } in
    if accept_punct st "," then go (decl :: acc)
    else begin
      expect_punct st ";";
      List.rev (decl :: acc)
    end
  in
  match go [] with [ s ] -> s | ss -> Sblock ss

and parse_stmt_as_block st =
  match parse_stmt st with Sblock b -> b | s -> [ s ]

and parse_block st =
  expect_punct st "{";
  let rec go acc =
    if accept_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

(* -- top level ------------------------------------------------------------ *)

let parse_fields st =
  expect_punct st "{";
  let rec go acc =
    if accept_punct st "}" then List.rev acc
    else begin
      let base = parse_base_type st in
      let rec members acc =
        let ty, _const, name = parse_declarator st base in
        if accept_punct st "," then members ((ty, name) :: acc)
        else begin
          expect_punct st ";";
          List.rev ((ty, name) :: acc)
        end
      in
      go (List.rev_append (members []) acc)
    end
  in
  go []

let peek_third_is_brace st =
  match st.toks with _ :: _ :: { tok = Lexer.PUNCT "{"; _ } :: _ -> true | _ -> false

let parse_global_init st =
  if peek st = Lexer.PUNCT "{" then begin
    (* brace initializer encoded as a call to the pseudo-function
       __array_init, consumed by the type checker *)
    advance st;
    let rec go acc =
      if accept_punct st "}" then List.rev acc
      else begin
        let e = parse_assign st in
        if accept_punct st "," then go (e :: acc)
        else begin
          expect_punct st "}";
          List.rev (e :: acc)
        end
      end
    in
    Ecall ("__array_init", go [])
  end
  else parse_assign st

let parse_top st =
  match (peek st, peek2 st) with
  | Lexer.KW "struct", Lexer.IDENT name when peek_third_is_brace st ->
      advance st;
      advance st;
      let fields = parse_fields st in
      expect_punct st ";";
      Tstructdef (name, fields)
  | Lexer.KW "union", Lexer.IDENT name when peek_third_is_brace st ->
      advance st;
      advance st;
      let fields = parse_fields st in
      expect_punct st ";";
      Tuniondef (name, fields)
  | _ ->
      let base = parse_base_type st in
      let ty, const, name = parse_declarator st base in
      if accept_punct st "(" then begin
        (* function definition or prototype *)
        let params =
          if accept_punct st ")" then []
          else begin
            let rec go acc =
              if peek st = Lexer.KW "void" && peek2 st = Lexer.PUNCT ")" then begin
                advance st;
                expect_punct st ")";
                List.rev acc
              end
              else begin
                let pbase = parse_base_type st in
                let pty, _, pname = parse_declarator st pbase in
                (* array parameters decay to pointers *)
                let pty =
                  match pty with
                  | Tarray (elem, _) -> Tptr { pointee = elem; pointee_const = false }
                  | t -> t
                in
                let acc = { pty; pname } :: acc in
                if accept_punct st "," then go acc
                else begin
                  expect_punct st ")";
                  List.rev acc
                end
              end
            in
            go []
          end
        in
        if accept_punct st ";" then
          (* prototype: ignored *)
          Tglobal { const = true; ty = Tvoid; name = "__proto_" ^ name; init = None }
        else Tfunc { ret = ty; name; params; body = parse_block st }
      end
      else begin
        let init =
          if accept_punct st "=" then Some (parse_global_init st) else None
        in
        expect_punct st ";";
        Tglobal { const; ty; name; init }
      end

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rec go acc = if peek st = Lexer.EOF then List.rev acc else go (parse_top st :: acc) in
  let prog = go [] in
  (* drop ignored prototypes *)
  List.filter
    (function Tglobal { name; _ } -> not (String.length name > 8 && String.sub name 0 8 = "__proto_") | _ -> true)
    prog

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr_st st in
  match peek st with
  | Lexer.EOF -> e
  | t -> fail st (Format.asprintf "trailing tokens after expression: %a" Lexer.pp_token t)
