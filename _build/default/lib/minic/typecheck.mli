(** Type checker: untyped {!Ast} to {!Typed}.

    Beyond ordinary C checking, this pass performs the desugarings the
    backends rely on: array decay, pointer-arithmetic scaling (kept
    symbolic), logical-condition normalization (pointer conditions
    become comparisons against null), local-variable renaming so every
    local in a function body has a unique name, and classification of
    [intcap_t] arithmetic. Writing through a const lvalue is a
    compile-time error; writing through a *deconst-cast* pointer
    type-checks fine — whether it works at run time is exactly the
    DECONST row of Table 3. *)

exception Type_error of string

val check_program : Ast.program -> Typed.program
(** Raises {!Type_error} with a descriptive message. *)

val compile : string -> Typed.program
(** Parse and check source text in one step. *)
