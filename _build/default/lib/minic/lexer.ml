type token =
  | INT_LIT of int64
  | STR_LIT of string
  | CHAR_LIT of char
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type t = { tok : token; line : int }

exception Lex_error of string * int

let keywords =
  [
    "void"; "char"; "short"; "int"; "long"; "unsigned"; "signed"; "const"; "struct"; "union";
    "if"; "else"; "while"; "do"; "for"; "return"; "break"; "continue"; "sizeof"; "intcap_t";
  ]

(* Multi-character punctuation, longest first so greedy matching works. *)
let puncts =
  [
    "<<="; ">>="; "..."; "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "++"; "--"; "+="; "-=";
    "*="; "/="; "%="; "&="; "|="; "^="; "->"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "+"; "-";
    "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "="; "?"; ":"; ".";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let unescape_char line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> raise (Lex_error (Printf.sprintf "unknown escape \\%c" c, line))

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Lex_error ("unterminated comment", !line))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then push (KW word) else push (IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        i := !i + 2;
        while !i < n && is_hex_digit src.[!i] do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        match Int64.of_string_opt text with
        | Some v -> push (INT_LIT v)
        | None -> raise (Lex_error ("bad hex literal " ^ text, !line))
      end
      else begin
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        (* decimal literals above Int64.max_int are C unsigned
           constants: parse them with wraparound, like a compiler
           truncating to the 64-bit representation *)
        match Int64.of_string_opt text with
        | Some v -> push (INT_LIT v)
        | None -> (
            match Int64.of_string_opt ("0u" ^ text) with
            | Some v -> push (INT_LIT v)
            | None -> raise (Lex_error ("bad integer literal " ^ text, !line)))
      end;
      (* swallow C suffixes: 1UL, 2u, 3L *)
      while !i < n && (src.[!i] = 'u' || src.[!i] = 'U' || src.[!i] = 'l' || src.[!i] = 'L') do
        incr i
      done
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        match src.[!i] with
        | '"' ->
            closed := true;
            incr i
        | '\\' ->
            (match peek 1 with
            | Some e -> Buffer.add_char buf (unescape_char !line e)
            | None -> raise (Lex_error ("unterminated string", !line)));
            i := !i + 2
        | '\n' -> raise (Lex_error ("newline in string literal", !line))
        | ch ->
            Buffer.add_char buf ch;
            incr i
      done;
      if not !closed then raise (Lex_error ("unterminated string", !line));
      push (STR_LIT (Buffer.contents buf))
    end
    else if c = '\'' then begin
      incr i;
      let ch =
        match peek 0 with
        | Some '\\' -> (
            incr i;
            match peek 0 with
            | Some e ->
                incr i;
                unescape_char !line e
            | None -> raise (Lex_error ("unterminated char literal", !line)))
        | Some ch ->
            incr i;
            ch
        | None -> raise (Lex_error ("unterminated char literal", !line))
      in
      if peek 0 <> Some '\'' then raise (Lex_error ("unterminated char literal", !line));
      incr i;
      push (CHAR_LIT ch)
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let len = String.length p in
            !i + len <= n && String.sub src !i len = p)
          puncts
      in
      match matched with
      | Some p ->
          i := !i + String.length p;
          push (PUNCT p)
      | None -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  push EOF;
  List.rev !toks

let pp_token ppf = function
  | INT_LIT v -> Format.fprintf ppf "%Ld" v
  | STR_LIT s -> Format.fprintf ppf "%S" s
  | CHAR_LIT c -> Format.fprintf ppf "%C" c
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | PUNCT s -> Format.fprintf ppf "'%s'" s
  | EOF -> Format.pp_print_string ppf "<eof>"
