(** Data layout, parameterized by the target's pointer representation.

    The same typed program lays out differently per backend: a pointer
    (and an [intcap_t]) is 8 bytes with 8-byte alignment under the
    PDP-11-style models, but a 32-byte, 32-byte-aligned capability in
    the pure-capability ABIs — the paper's §4.1 observation that "an
    array of fat pointers … would use 64 bytes per pointer" is about
    exactly this pressure. *)

type target = { ptr_size : int; ptr_align : int }

val mips_target : target
(** 8-byte pointers: the PDP-11 / MIPS ABI and all non-CHERI models. *)

val cheri_target : target
(** 32-byte capabilities (256-bit, naturally aligned). *)

exception Unknown_tag of string
exception Unsized of Ast.ty

val size_of : Typed.program -> target -> Ast.ty -> int
(** sizeof. [void] has size 0 (GNU-style, only used by [void*]
    arithmetic, which scales by 1 — see {!elem_size}). Raises
    {!Unsized} for function-ish types. *)

val align_of : Typed.program -> target -> Ast.ty -> int

val elem_size : Typed.program -> target -> Ast.ty -> int
(** Pointer-arithmetic scale factor for a pointee type: like
    {!size_of} but [void] and incomplete types scale by 1. *)

val field_offset : Typed.program -> target -> Ast.ty -> string -> int
(** [field_offset p target aggregate_ty field] — byte offset of
    [field] in a struct (always 0 in a union). Raises {!Unknown_tag}
    or [Not_found]. *)

val field_type : Typed.program -> Ast.ty -> string -> Ast.ty
