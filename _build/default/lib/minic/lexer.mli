(** Hand-written lexer for the mini-C language. *)

type token =
  | INT_LIT of int64
  | STR_LIT of string
  | CHAR_LIT of char
  | IDENT of string
  | KW of string  (** keywords: int, char, struct, if, while, ... *)
  | PUNCT of string  (** operators and punctuation, longest-match *)
  | EOF

type t = { tok : token; line : int }

exception Lex_error of string * int  (** message, line *)

val tokenize : string -> t list
(** Tokenize a whole translation unit. Handles decimal, hex ([0x..])
    and character literals, string literals with the usual escapes,
    [//] and [/* */] comments. *)

val pp_token : Format.formatter -> token -> unit
