(* Typed abstract syntax, produced by {!Typecheck}.

   Every expression node carries its C type. Layout-dependent facts —
   sizeof, struct field offsets, pointer scaling — stay *symbolic*
   here, because the paper's whole point is that different
   interpretations of the abstract machine disagree on pointer
   representation: a pointer is 8 bytes under the PDP-11 model and 32
   bytes as a capability, so one typed program must lay out
   differently per backend (see {!Layout}). *)

type ty = Ast.ty

type builtin =
  | Bmalloc
  | Bfree
  | Bprint_int
  | Bprint_char
  | Bprint_str
  | Bclock
  | Bexit

let builtin_of_name = function
  | "malloc" -> Some Bmalloc
  | "free" -> Some Bfree
  | "print_int" -> Some Bprint_int
  | "print_char" -> Some Bprint_char
  | "print_str" -> Some Bprint_str
  | "clock" -> Some Bclock
  | "exit" -> Some Bexit
  | _ -> None

type expr = { e : expr_kind; ty : ty }

and expr_kind =
  | Num of int64
  | Str of string
  | Load of lvalue
  | Addr_of of lvalue
  | Unop of Ast.unop * expr
  | Binop of Ast.binop * expr * expr
      (* integer-only; Land/Lor are short-circuit in every backend *)
  | Ptr_add of { p : expr; i : expr; elem : ty }
      (* p + i, scaled by the backend's sizeof(elem); i may be negative *)
  | Ptr_diff of { a : expr; b : expr; elem : ty }
  | Ptr_cmp of Ast.binop * expr * expr  (* Eq/Ne/Lt/Le/Gt/Ge on pointers *)
  | Intcap_arith of Ast.binop * expr * expr
      (* arithmetic on intcap_t: left operand carries provenance *)
  | Assign of lvalue * expr  (* value is the assigned value *)
  | Call of string * expr list
  | Fun_addr of string  (* the address of a named function *)
  | Call_ptr of expr * expr list  (* indirect call through Tfunptr *)
  | Builtin of builtin * expr list
  | Cast of expr  (* target type is [ty] of this node *)
  | Cond of expr * expr * expr
  | Incdec of Ast.incdec * lvalue
  | Sizeof of ty  (* symbolic: backend-dependent *)

and lvalue = { l : lvalue_kind; lty : ty; lconst : bool }

and lvalue_kind =
  | Lvar of string  (* local or parameter *)
  | Lglobal of string
  | Lderef of expr  (* the expr has pointer type, pointee [lty] *)
  | Lfield of lvalue * string  (* aggregate lvalue, field name *)

type stmt =
  | Expr of expr
  | Decl of { name : string; ty : ty; const : bool; init : expr option }
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Dowhile of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list

type func = { fname : string; ret : ty; params : (string * ty) list; body : stmt list }

type ginit =
  | Izero
  | Iint of int64
  | Ilist of int64 list  (* array of integer constants *)
  | Istr of string  (* char array/pointer initializer *)

type global = { gname : string; gty : ty; gconst : bool; ginit : ginit }

type program = {
  structs : (string * (string * ty) list) list;
  unions : (string * (string * ty) list) list;
  globals : global list;
  funcs : func list;
}

let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs
let find_global p name = List.find_opt (fun g -> g.gname = name) p.globals

let fields_of p = function
  | Ast.Tstruct tag -> List.assoc_opt tag p.structs
  | Ast.Tunion tag -> List.assoc_opt tag p.unions
  | _ -> None

let rec is_pointer = function
  | Ast.Tptr _ -> true
  | Ast.Tarray (t, _) -> is_pointer t && false
  | _ -> false

let is_integer = function Ast.Tint _ -> true | _ -> false
let is_intcap = function Ast.Tintcap -> true | _ -> false

(* Iterators used by the static analyzer. *)

let rec iter_expr f (e : expr) =
  f e;
  match e.e with
  | Num _ | Str _ | Sizeof _ | Fun_addr _ -> ()
  | Load lv | Addr_of lv -> iter_lvalue f lv
  | Unop (_, a) | Cast a -> iter_expr f a
  | Binop (_, a, b) | Ptr_cmp (_, a, b) | Intcap_arith (_, a, b) ->
      iter_expr f a;
      iter_expr f b
  | Ptr_add { p; i; _ } ->
      iter_expr f p;
      iter_expr f i
  | Ptr_diff { a; b; _ } ->
      iter_expr f a;
      iter_expr f b
  | Assign (lv, v) ->
      iter_lvalue f lv;
      iter_expr f v
  | Call (_, args) | Builtin (_, args) -> List.iter (iter_expr f) args
  | Call_ptr (fn, args) ->
      iter_expr f fn;
      List.iter (iter_expr f) args
  | Cond (c, a, b) ->
      iter_expr f c;
      iter_expr f a;
      iter_expr f b
  | Incdec (_, lv) -> iter_lvalue f lv

and iter_lvalue f lv =
  match lv.l with
  | Lvar _ | Lglobal _ -> ()
  | Lderef e -> iter_expr f e
  | Lfield (base, _) -> iter_lvalue f base

let rec iter_stmt f_expr f_stmt (s : stmt) =
  f_stmt s;
  let iter_block = List.iter (iter_stmt f_expr f_stmt) in
  match s with
  | Expr e -> iter_expr f_expr e
  | Decl { init; _ } -> Option.iter (iter_expr f_expr) init
  | If (c, a, b) ->
      iter_expr f_expr c;
      iter_block a;
      iter_block b
  | While (c, body) ->
      iter_expr f_expr c;
      iter_block body
  | Dowhile (body, c) ->
      iter_block body;
      iter_expr f_expr c
  | For (init, cond, step, body) ->
      Option.iter (iter_stmt f_expr f_stmt) init;
      Option.iter (iter_expr f_expr) cond;
      Option.iter (iter_expr f_expr) step;
      iter_block body
  | Return e -> Option.iter (iter_expr f_expr) e
  | Break | Continue -> ()
  | Block b -> iter_block b

let iter_program f_expr f_stmt p =
  List.iter (fun fn -> List.iter (iter_stmt f_expr f_stmt) fn.body) p.funcs
