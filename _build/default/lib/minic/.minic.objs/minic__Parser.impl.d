lib/minic/parser.ml: Ast Char Format Int64 Lexer List String
