lib/minic/typecheck.mli: Ast Typed
