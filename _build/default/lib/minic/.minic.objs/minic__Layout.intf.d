lib/minic/layout.mli: Ast Typed
