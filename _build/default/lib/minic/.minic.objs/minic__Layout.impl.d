lib/minic/layout.ml: Ast List Typed
