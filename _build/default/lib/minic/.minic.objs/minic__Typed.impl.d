lib/minic/typed.ml: Ast List Option
