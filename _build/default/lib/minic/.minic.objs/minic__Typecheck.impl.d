lib/minic/typecheck.ml: Ast Format Int64 List Option Parser Printf String Typed
