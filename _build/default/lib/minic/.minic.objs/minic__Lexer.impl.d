lib/minic/lexer.ml: Buffer Format Int64 List Printf String
