type target = { ptr_size : int; ptr_align : int }

let mips_target = { ptr_size = 8; ptr_align = 8 }
let cheri_target = { ptr_size = 32; ptr_align = 32 }

exception Unknown_tag of string
exception Unsized of Ast.ty

let align_up n a = (n + a - 1) / a * a

let fields p ty =
  match Typed.fields_of p ty with
  | Some fs -> fs
  | None -> (
      match ty with
      | Ast.Tstruct tag | Ast.Tunion tag -> raise (Unknown_tag tag)
      | _ -> invalid_arg "Layout.fields: not an aggregate")

let rec size_of p target ty =
  match ty with
  | Ast.Tvoid -> 0
  | Ast.Tint { bits; _ } -> bits / 8
  | Ast.Tintcap | Ast.Tptr _ -> target.ptr_size
  | Ast.Tfunptr _ -> 8
  | Ast.Tarray (elem, n) -> size_of p target elem * n
  | Ast.Tstruct _ ->
      let size, align =
        List.fold_left
          (fun (off, align) (_, fty) ->
            let fa = align_of p target fty in
            (align_up off fa + size_of p target fty, max align fa))
          (0, 1) (fields p ty)
      in
      align_up (max size 1) align
  | Ast.Tunion _ ->
      let size, align =
        List.fold_left
          (fun (size, align) (_, fty) ->
            (max size (size_of p target fty), max align (align_of p target fty)))
          (1, 1) (fields p ty)
      in
      align_up size align

and align_of p target ty =
  match ty with
  | Ast.Tvoid -> 1
  | Ast.Tint { bits; _ } -> bits / 8
  | Ast.Tintcap | Ast.Tptr _ -> target.ptr_align
  | Ast.Tfunptr _ -> 8
  | Ast.Tarray (elem, _) -> align_of p target elem
  | Ast.Tstruct _ | Ast.Tunion _ ->
      List.fold_left (fun a (_, fty) -> max a (align_of p target fty)) 1 (fields p ty)

let elem_size p target ty =
  match ty with
  | Ast.Tvoid -> 1
  | _ -> ( match size_of p target ty with 0 -> 1 | n -> n)

let field_offset p target ty field =
  match ty with
  | Ast.Tunion _ ->
      if List.mem_assoc field (fields p ty) then 0 else raise Not_found
  | Ast.Tstruct _ ->
      let rec go off = function
        | [] -> raise Not_found
        | (name, fty) :: rest ->
            let off = align_up off (align_of p target fty) in
            if name = field then off else go (off + size_of p target fty) rest
      in
      go 0 (fields p ty)
  | _ -> invalid_arg "Layout.field_offset: not an aggregate"

let field_type p ty field =
  match Typed.fields_of p ty with
  | Some fs -> ( match List.assoc_opt field fs with Some t -> t | None -> raise Not_found)
  | None -> invalid_arg "Layout.field_type: not an aggregate"
