open Ast
module T = Typed

exception Type_error of string

let err fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type env = {
  structs : (string * (string * ty) list) list;
  unions : (string * (string * ty) list) list;
  globals : (string * (ty * bool)) list;  (* name -> ty, const *)
  funcs : (string * (ty * ty list)) list;  (* name -> ret, param types *)
  (* scopes: innermost first; each maps source name -> (unique name, ty, const) *)
  mutable scopes : (string * (string * ty * bool)) list list;
  mutable counter : int;
  current_ret : ty;
}

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let lookup_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match List.assoc_opt name scope with Some x -> Some x | None -> go rest)
  in
  go env.scopes

let declare_local env name ty const =
  let unique =
    if lookup_local env name = None && not (List.mem_assoc name env.globals) then name
    else begin
      env.counter <- env.counter + 1;
      Printf.sprintf "%s$%d" name env.counter
    end
  in
  (match env.scopes with
  | scope :: rest -> env.scopes <- ((name, (unique, ty, const)) :: scope) :: rest
  | [] -> err "internal: no scope");
  unique

(* -- type predicates and conversions ------------------------------------ *)

let is_void_ptr = function Tptr { pointee = Tvoid; _ } -> true | _ -> false

let promote ty =
  match ty with
  | Tint { bits; signed } when bits < 32 -> Tint { bits = 32; signed }
  | t -> t

(* usual arithmetic conversions on two promoted integer types *)
let common_int a b =
  let a = promote a and b = promote b in
  match (a, b) with
  | Tint ia, Tint ib ->
      if ia.bits = ib.bits then Tint { bits = ia.bits; signed = ia.signed && ib.signed }
      else if ia.bits > ib.bits then a
      else b
  | _ -> invalid_arg "common_int"

let rec decay (e : T.expr) =
  match e.ty with
  | Tarray (elem, _) -> (
      (* arrays decay to pointers to their first element *)
      match e.e with
      | T.Load lv -> { T.e = T.Addr_of { lv with lty = elem }; ty = ptr elem }
      | _ -> err "cannot decay non-lvalue array")
  | _ -> e

and coerce (e : T.expr) target =
  let e = decay e in
  if ty_equal e.ty target then e
  else
    match (e.ty, target) with
    | Tint _, Tint _ -> { T.e = T.Cast e; ty = target }
    | Tint _, Tintcap | Tintcap, Tint _ -> { T.e = T.Cast e; ty = target }
    | Tptr _, Tptr _ ->
        (* implicit pointer conversion: identical pointee, or either side
           void*; constness may be *added* implicitly *)
        let ok =
          is_void_ptr e.ty || is_void_ptr target
          ||
          match (e.ty, target) with
          | Tptr a, Tptr b -> ty_equal a.pointee b.pointee && ((not a.pointee_const) || b.pointee_const)
          | _ -> false
        in
        if ok then { T.e = T.Cast e; ty = target }
        else
          err "implicit conversion between incompatible pointer types %a and %a" pp_ty e.ty pp_ty
            target
    | Tint _, Tptr _ when e.e = T.Num 0L -> { T.e = T.Cast e; ty = target }
    | Tint _, Tfunptr _ when e.e = T.Num 0L -> { T.e = T.Cast e; ty = target }
    | Tintcap, Tptr _ | Tptr _, Tintcap -> { T.e = T.Cast e; ty = target }
    | _ -> err "cannot convert %a to %a" pp_ty e.ty pp_ty target

let null_of target = { T.e = T.Cast { T.e = T.Num 0L; ty = tint }; ty = target }

let to_long e = coerce e tlong

(* normalize an expression for use as a condition: integer-typed expr *)
let as_condition (e : T.expr) =
  let e = decay e in
  match e.ty with
  | Tint _ -> e
  | Tptr _ -> { T.e = T.Ptr_cmp (Ne, e, null_of e.ty); ty = tint }
  | Tintcap -> { T.e = T.Binop (Ne, to_long e, { T.e = T.Num 0L; ty = tlong }); ty = tint }
  | Tfunptr _ ->
      { T.e = T.Binop (Ne, { T.e = T.Cast e; ty = tlong }, { T.e = T.Num 0L; ty = tlong });
        ty = tint }
  | t -> err "%a cannot be used as a condition" pp_ty t

(* -- expression checking ------------------------------------------------- *)

let rec check_expr env (expr : Ast.expr) : T.expr =
  match expr with
  | Enum v ->
      let ty = if Int64.compare v 0x7fffffffL > 0 || Int64.compare v (-0x80000000L) < 0 then tlong else tint in
      { T.e = T.Num v; ty }
  | Estr s -> { T.e = T.Str s; ty = Tptr { pointee = tchar; pointee_const = true } }
  | Eident name
    when lookup_local env name = None
         && (not (List.mem_assoc name env.globals))
         && List.mem_assoc name env.funcs ->
      (* a bare function name decays to a pointer to the function *)
      let fret, fparams = List.assoc name env.funcs in
      { T.e = T.Fun_addr name; ty = Tfunptr { fret; fparams } }
  | Eaddr (Eident name)
    when lookup_local env name = None
         && (not (List.mem_assoc name env.globals))
         && List.mem_assoc name env.funcs ->
      let fret, fparams = List.assoc name env.funcs in
      { T.e = T.Fun_addr name; ty = Tfunptr { fret; fparams } }
  | Eident _ | Ederef _ | Eindex _ | Efield _ | Earrow _ ->
      let lv = check_lvalue env expr in
      (match lv.T.lty with
      | Tarray _ -> decay { T.e = T.Load lv; ty = lv.T.lty }
      | _ -> { T.e = T.Load lv; ty = lv.T.lty })
  | Eaddr e ->
      let lv = check_lvalue env e in
      let pointee =
        match lv.T.lty with
        | Tarray (elem, _) -> elem  (* &arr usable as pointer to first element *)
        | t -> t
      in
      { T.e = T.Addr_of lv; ty = Tptr { pointee; pointee_const = lv.T.lconst } }
  | Eunop (op, e) -> (
      let e' = decay (check_expr env e) in
      match op with
      | Lnot ->
          let c = as_condition e' in
          { T.e = T.Unop (Lnot, c); ty = tint }
      | Neg | Bnot -> (
          match e'.ty with
          | Tint _ ->
              let ty = promote e'.ty in
              { T.e = T.Unop (op, coerce e' ty); ty }
          | Tintcap ->
              (* unary ops on intcap_t lose provenance: computed as long
                 and converted back (matches a compiler materializing the
                 value in an integer register) *)
              let v = { T.e = T.Unop (op, to_long e'); ty = tlong } in
              { T.e = T.Cast v; ty = Tintcap }
          | t -> err "unary operator on %a" pp_ty t))
  | Eincdec (k, e) ->
      let lv = check_lvalue env e in
      if lv.T.lconst then err "increment of const lvalue";
      (match lv.T.lty with
      | Tint _ | Tptr _ | Tintcap -> ()
      | t -> err "cannot increment %a" pp_ty t);
      { T.e = T.Incdec (k, lv); ty = lv.T.lty }
  | Ebinop (op, a, b) -> check_binop env op a b
  | Eassign (lhs, rhs) -> check_assign env lhs rhs
  | Eassign_op (op, lhs, rhs) ->
      (* a op= b desugars to a = a op b, but the lvalue must be evaluated
         once; backends evaluate the Assign lvalue a single time, and the
         RHS re-checks the same lvalue (fine: our lvalues have no
         side-effecting subexpressions re-evaluated incorrectly in
         practice; C programs in this corpus use simple lvalues) *)
      check_expr env (Eassign (lhs, Ebinop (op, lhs, rhs)))
  | Ecall (name, args)
    when (match lookup_local env name with
         | Some (_, Tfunptr _, _) -> true
         | _ -> (
             match List.assoc_opt name env.globals with
             | Some (Tfunptr _, _) -> true
             | _ -> false)) ->
      check_call_ptr env (Eident name) args
  | Ecall (name, args) -> check_call env name args
  | Ecall_ptr (fn, args) -> check_call_ptr env fn args
  | Ecast (target, e) ->
      let e' = decay (check_expr env e) in
      check_cast e' target
  | Esizeof_ty ty -> { T.e = T.Sizeof ty; ty = tulong }
  | Esizeof_expr e ->
      let ty =
        match e with
        | Eident _ | Ederef _ | Eindex _ | Efield _ | Earrow _ -> (check_lvalue env e).T.lty
        | _ -> (check_expr env e).T.ty
      in
      { T.e = T.Sizeof ty; ty = tulong }
  | Econd (c, a, b) ->
      let c' = as_condition (check_expr env c) in
      let a' = decay (check_expr env a) in
      let b' = decay (check_expr env b) in
      let ty =
        if ty_equal a'.ty b'.ty then a'.ty
        else
          match (a'.ty, b'.ty) with
          | Tint _, Tint _ -> common_int a'.ty b'.ty
          | Tptr _, Tptr _ -> if is_void_ptr a'.ty then b'.ty else a'.ty
          | Tptr _, Tint _ -> a'.ty
          | Tint _, Tptr _ -> b'.ty
          | _ -> err "incompatible branches of ?:"
      in
      { T.e = T.Cond (c', coerce a' ty, coerce b' ty); ty }

and check_cast (e' : T.expr) target : T.expr =
  if ty_equal e'.ty target then e'
  else
    match (e'.ty, target) with
    | Tint _, Tint _
    | Tint _, Tintcap
    | Tintcap, Tint _
    | Tptr _, Tptr _
    | Tptr _, Tint _  (* ptr -> int: the INT idiom *)
    | Tint _, Tptr _  (* int -> ptr: the IA idiom *)
    | Tptr _, Tintcap
    | Tintcap, Tptr _ ->
        { T.e = T.Cast e'; ty = target }
    | Tvoid, _ | _, Tvoid ->
        if target = Tvoid then { T.e = T.Cast e'; ty = Tvoid }
        else err "cannot cast void to %a" pp_ty target
    | _ -> err "invalid cast from %a to %a" pp_ty e'.ty pp_ty target

and check_binop env op a b : T.expr =
  match op with
  | Land | Lor ->
      let a' = as_condition (check_expr env a) in
      let b' = as_condition (check_expr env b) in
      { T.e = T.Binop (op, a', b'); ty = tint }
  | Eq | Ne | Lt | Le | Gt | Ge -> (
      let a' = decay (check_expr env a) in
      let b' = decay (check_expr env b) in
      match (a'.ty, b'.ty) with
      | Tint _, Tint _ ->
          let c = common_int a'.ty b'.ty in
          { T.e = T.Binop (op, coerce a' c, coerce b' c); ty = tint }
      | Tptr _, Tptr _ -> { T.e = T.Ptr_cmp (op, a', coerce b' a'.ty); ty = tint }
      | Tptr _, Tint _ -> { T.e = T.Ptr_cmp (op, a', coerce b' a'.ty); ty = tint }
      | Tint _, Tptr _ -> { T.e = T.Ptr_cmp (op, coerce a' b'.ty, b'); ty = tint }
      | Tintcap, _ -> { T.e = T.Binop (op, to_long a', to_long b'); ty = tint }
      | _, Tintcap -> { T.e = T.Binop (op, to_long a', to_long b'); ty = tint }
      | Tfunptr _, _ | _, Tfunptr _ ->
          let as_long e =
            match e.T.ty with
            | Tfunptr _ -> { T.e = T.Cast e; ty = tlong }
            | _ -> to_long e
          in
          { T.e = T.Binop (op, as_long a', as_long b'); ty = tint }
      | _ -> err "invalid comparison between %a and %a" pp_ty a'.ty pp_ty b'.ty)
  | Add | Sub | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor -> (
      let a' = decay (check_expr env a) in
      let b' = decay (check_expr env b) in
      match (a'.ty, b'.ty, op) with
      | Tptr { pointee; _ }, Tint _, Add ->
          { T.e = T.Ptr_add { p = a'; i = to_long b'; elem = pointee }; ty = a'.ty }
      | Tint _, Tptr { pointee; _ }, Add ->
          { T.e = T.Ptr_add { p = b'; i = to_long a'; elem = pointee }; ty = b'.ty }
      | Tptr { pointee; _ }, Tint _, Sub ->
          let neg = { T.e = T.Unop (Neg, to_long b'); ty = tlong } in
          { T.e = T.Ptr_add { p = a'; i = neg; elem = pointee }; ty = a'.ty }
      | Tptr { pointee; _ }, Tptr _, Sub ->
          { T.e = T.Ptr_diff { a = a'; b = b'; elem = pointee }; ty = tlong }
      | Tintcap, _, _ -> { T.e = T.Intcap_arith (op, a', to_long b'); ty = Tintcap }
      | _, Tintcap, _ -> (
          (* provenance comes from the intcap side when meaningful *)
          match op with
          | Add | Band | Bor | Bxor | Mul ->
              { T.e = T.Intcap_arith (op, b', to_long a'); ty = Tintcap }
          | _ ->
              {
                T.e = T.Binop (op, to_long a', to_long b');
                ty = tlong;
              })
      | Tint _, Tint _, (Shl | Shr) ->
          let ty = promote a'.ty in
          { T.e = T.Binop (op, coerce a' ty, to_long b'); ty }
      | Tint _, Tint _, _ ->
          let c = common_int a'.ty b'.ty in
          { T.e = T.Binop (op, coerce a' c, coerce b' c); ty = c }
      | _ -> err "invalid operands %a and %a" pp_ty a'.ty pp_ty b'.ty)

and check_assign env lhs rhs : T.expr =
  let lv = check_lvalue env lhs in
  if lv.T.lconst then err "assignment to const lvalue";
  match lv.T.lty with
  | Tstruct _ | Tunion _ -> (
      let rhs' = check_expr env rhs in
      match rhs'.T.e with
      | T.Load _ when ty_equal rhs'.ty lv.T.lty -> { T.e = T.Assign (lv, rhs'); ty = lv.T.lty }
      | _ -> err "aggregate assignment requires an lvalue of the same type")
  | Tarray _ -> err "cannot assign to an array"
  | target ->
      let rhs' = coerce (check_expr env rhs) target in
      { T.e = T.Assign (lv, rhs'); ty = target }

and check_call env name args : T.expr =
  let args' = List.map (fun a -> decay (check_expr env a)) args in
  match T.builtin_of_name name with
  | Some b ->
      let expect tys ret =
        if List.length tys <> List.length args' then err "%s: wrong number of arguments" name;
        let coerced = List.map2 coerce args' tys in
        { T.e = T.Builtin (b, coerced); ty = ret }
      in
      (match b with
      | T.Bmalloc -> expect [ tulong ] (ptr Tvoid)
      | T.Bfree -> expect [ ptr Tvoid ] Tvoid
      | T.Bprint_int -> expect [ tlong ] Tvoid
      | T.Bprint_char -> expect [ tint ] Tvoid
      | T.Bprint_str -> expect [ Tptr { pointee = tchar; pointee_const = true } ] Tvoid
      | T.Bclock -> expect [] tlong
      | T.Bexit -> expect [ tint ] Tvoid)
  | None -> (
      match List.assoc_opt name env.funcs with
      | None -> err "call to undefined function %s" name
      | Some (ret, ptys) ->
          if List.length ptys <> List.length args' then err "%s: wrong number of arguments" name;
          { T.e = T.Call (name, List.map2 coerce args' ptys); ty = ret })

and check_call_ptr env fn args : T.expr =
  let fn' = decay (check_expr env fn) in
  match fn'.T.ty with
  | Tfunptr { fret; fparams } ->
      let args' = List.map (fun a -> decay (check_expr env a)) args in
      if List.length fparams <> List.length args' then
        err "indirect call: wrong number of arguments";
      { T.e = T.Call_ptr (fn', List.map2 coerce args' fparams); ty = fret }
  | t -> err "call through non-function-pointer %a" pp_ty t

and check_lvalue env (expr : Ast.expr) : T.lvalue =
  match expr with
  | Eident name -> (
      match lookup_local env name with
      | Some (unique, ty, const) -> { T.l = T.Lvar unique; lty = ty; lconst = const }
      | None -> (
          match List.assoc_opt name env.globals with
          | Some (ty, const) -> { T.l = T.Lglobal name; lty = ty; lconst = const }
          | None -> err "undefined variable %s" name))
  | Ederef e -> (
      let e' = decay (check_expr env e) in
      match e'.ty with
      | Tptr { pointee; pointee_const } ->
          if pointee = Tvoid then err "dereference of void*";
          { T.l = T.Lderef e'; lty = pointee; lconst = pointee_const }
      | Tintcap -> err "dereference of intcap_t without a cast"
      | t -> err "dereference of non-pointer %a" pp_ty t)
  | Eindex (a, i) -> check_lvalue env (Ederef (Ebinop (Add, a, i)))
  | Efield (base, field) -> (
      let blv = check_lvalue env base in
      match blv.T.lty with
      | (Tstruct _ | Tunion _) as agg ->
          let fty = find_field env agg field in
          { T.l = T.Lfield (blv, field); lty = fty; lconst = blv.T.lconst }
      | t -> err "field access on non-aggregate %a" pp_ty t)
  | Earrow (base, field) -> check_lvalue env (Efield (Ederef base, field))
  | _ -> err "expression is not an lvalue"

and find_field env agg field =
  let fields =
    match agg with
    | Tstruct tag -> (
        match List.assoc_opt tag env.structs with
        | Some fs -> fs
        | None -> err "unknown struct %s" tag)
    | Tunion tag -> (
        match List.assoc_opt tag env.unions with
        | Some fs -> fs
        | None -> err "unknown union %s" tag)
    | _ -> assert false
  in
  match List.assoc_opt field fields with
  | Some t -> t
  | None -> err "no field %s in %a" field pp_ty agg

(* -- statements ----------------------------------------------------------- *)

let rec check_stmt env (s : Ast.stmt) : T.stmt =
  match s with
  | Sexpr e -> T.Expr (check_expr env e)
  | Sdecl { const; ty; name; init } ->
      validate_ty env ty;
      let init' =
        Option.map
          (fun e ->
            match ty with
            | Tstruct _ | Tunion _ | Tarray _ -> err "aggregate local initializers unsupported"
            | _ -> coerce (check_expr env e) ty)
          init
      in
      let unique = declare_local env name ty const in
      T.Decl { name = unique; ty; const; init = init' }
  | Sif (c, a, b) ->
      let c' = as_condition (check_expr env c) in
      T.If (c', check_block env a, check_block env b)
  | Swhile (c, body) ->
      let c' = as_condition (check_expr env c) in
      T.While (c', check_block env body)
  | Sdo (body, c) ->
      let body' = check_block env body in
      T.Dowhile (body', as_condition (check_expr env c))
  | Sfor (init, cond, step, body) ->
      push_scope env;
      let init' = Option.map (check_stmt env) init in
      let cond' = Option.map (fun c -> as_condition (check_expr env c)) cond in
      let step' = Option.map (check_expr env) step in
      let body' = check_block env body in
      pop_scope env;
      T.For (init', cond', step', body')
  | Sreturn None ->
      if env.current_ret <> Tvoid then err "missing return value";
      T.Return None
  | Sreturn (Some e) ->
      if env.current_ret = Tvoid then err "return with a value in void function";
      T.Return (Some (coerce (check_expr env e) env.current_ret))
  | Sbreak -> T.Break
  | Scontinue -> T.Continue
  | Sblock b -> T.Block (check_block env b)

and check_block env stmts =
  push_scope env;
  let out = List.map (check_stmt env) stmts in
  pop_scope env;
  out

and validate_ty env = function
  | Tstruct tag -> if not (List.mem_assoc tag env.structs) then err "unknown struct %s" tag
  | Tunion tag -> if not (List.mem_assoc tag env.unions) then err "unknown union %s" tag
  | Tarray (t, n) ->
      if n <= 0 then err "array size must be positive";
      validate_ty env t
  | Tfunptr { fret; fparams } ->
      validate_ty env fret;
      List.iter (validate_ty env) fparams
  | Tptr _ | Tint _ | Tintcap | Tvoid -> ()

(* -- constant folding for global initializers ---------------------------- *)

let rec const_fold (e : Ast.expr) : int64 =
  match e with
  | Enum v -> v
  | Eunop (Neg, e) -> Int64.neg (const_fold e)
  | Eunop (Bnot, e) -> Int64.lognot (const_fold e)
  | Ebinop (op, a, b) -> (
      let a = const_fold a and b = const_fold b in
      match op with
      | Add -> Int64.add a b
      | Sub -> Int64.sub a b
      | Mul -> Int64.mul a b
      | Div -> if b = 0L then err "division by zero in constant" else Int64.div a b
      | Mod -> if b = 0L then err "division by zero in constant" else Int64.rem a b
      | Shl -> Int64.shift_left a (Int64.to_int b)
      | Shr -> Int64.shift_right a (Int64.to_int b)
      | Band -> Int64.logand a b
      | Bor -> Int64.logor a b
      | Bxor -> Int64.logxor a b
      | _ -> err "operator not allowed in constant initializer")
  | Ecast (_, e) -> const_fold e
  | _ -> err "global initializers must be constant expressions"

let check_ginit env ty init : T.ginit =
  ignore env;
  match init with
  | None -> T.Izero
  | Some (Estr s) -> (
      match ty with
      | Tarray (Tint { bits = 8; _ }, n) ->
          if String.length s + 1 > n then err "string initializer too long";
          T.Istr s
      | Tptr { pointee = Tint { bits = 8; _ }; _ } -> T.Istr s
      | _ -> err "string initializer for non-char type")
  | Some (Ecall ("__array_init", elems)) -> (
      match ty with
      | Tarray (Tint _, n) ->
          if List.length elems > n then err "too many initializers";
          T.Ilist (List.map const_fold elems)
      | _ -> err "brace initializer for non-array type")
  | Some e -> T.Iint (const_fold e)

(* -- program -------------------------------------------------------------- *)

let check_program (prog : Ast.program) : T.program =
  let structs =
    List.filter_map (function Tstructdef (n, fs) -> Some (n, List.map (fun (t, f) -> (f, t)) fs) | _ -> None) prog
  in
  let unions =
    List.filter_map (function Tuniondef (n, fs) -> Some (n, List.map (fun (t, f) -> (f, t)) fs) | _ -> None) prog
  in
  let globals_src =
    List.filter_map
      (function Tglobal { const; ty; name; init } -> Some (const, ty, name, init) | _ -> None)
      prog
  in
  let funcs_src =
    List.filter_map
      (function Tfunc { ret; name; params; body } -> Some (ret, name, params, body) | _ -> None)
      prog
  in
  let globals_env = List.map (fun (const, ty, name, _) -> (name, (ty, const))) globals_src in
  let funcs_env =
    List.map (fun (ret, name, params, _) -> (name, (ret, List.map (fun p -> p.pty) params))) funcs_src
  in
  List.iter
    (fun (_, name, _, _) ->
      if T.builtin_of_name name <> None then err "function %s shadows a builtin" name)
    funcs_src;
  let base_env =
    {
      structs;
      unions;
      globals = globals_env;
      funcs = funcs_env;
      scopes = [];
      counter = 0;
      current_ret = Tvoid;
    }
  in
  let globals =
    List.map
      (fun (const, ty, name, init) ->
        validate_ty base_env ty;
        { T.gname = name; gty = ty; gconst = const; ginit = check_ginit base_env ty init })
      globals_src
  in
  let funcs =
    List.map
      (fun (ret, name, params, fbody) ->
        let env = { base_env with current_ret = ret; scopes = []; counter = 0 } in
        push_scope env;
        List.iter
          (fun p ->
            validate_ty env p.pty;
            ignore (declare_local env p.pname p.pty false))
          params;
        let body = check_block env fbody in
        pop_scope env;
        { T.fname = name; ret; params = List.map (fun p -> (p.pname, p.pty)) params; body })
      funcs_src
  in
  let p = { T.structs; unions; globals; funcs } in
  if T.find_func p "main" = None then err "no main function";
  p

let compile src = check_program (Parser.parse src)
