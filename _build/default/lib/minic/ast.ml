(* Untyped parse tree for the mini-C language.

   The language covers the C subset the paper's evaluation needs:
   integers of all four widths (signed and unsigned), pointers with
   const-qualified pointees, arrays, structs, unions, the [intcap_t]
   type from the CHERI C dialect (§4.2: an integer type with pointer
   representation), and the usual statements and operators. *)

type ty =
  | Tvoid
  | Tint of { bits : int; signed : bool }
  | Tintcap  (** integer held in pointer representation (CHERI intcap_t) *)
  | Tptr of { pointee : ty; pointee_const : bool }
  | Tarray of ty * int
  | Tstruct of string
  | Tunion of string
  | Tfunptr of { fret : ty; fparams : ty list }
      (** pointer to function; represented as a code address (the paper
          notes per-function code capabilities need a whole new ABI) *)

let tchar = Tint { bits = 8; signed = true }
let tuchar = Tint { bits = 8; signed = false }
let tshort = Tint { bits = 16; signed = true }
let tushort = Tint { bits = 16; signed = false }
let tint = Tint { bits = 32; signed = true }
let tuint = Tint { bits = 32; signed = false }
let tlong = Tint { bits = 64; signed = true }
let tulong = Tint { bits = 64; signed = false }
let ptr ?(const = false) pointee = Tptr { pointee; pointee_const = const }

type unop = Neg | Bnot | Lnot
type incdec = Preinc | Predec | Postinc | Postdec

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Land
  | Lor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Enum of int64
  | Estr of string
  | Eident of string
  | Eunop of unop * expr
  | Eincdec of incdec * expr
  | Ebinop of binop * expr * expr
  | Eassign of expr * expr
  | Eassign_op of binop * expr * expr
  | Ecall of string * expr list
  | Ecall_ptr of expr * expr list  (** call through a function-pointer expression *)
  | Eindex of expr * expr
  | Efield of expr * string
  | Earrow of expr * string
  | Ederef of expr
  | Eaddr of expr
  | Ecast of ty * expr
  | Esizeof_ty of ty
  | Esizeof_expr of expr
  | Econd of expr * expr * expr

type stmt =
  | Sexpr of expr
  | Sdecl of { const : bool; ty : ty; name : string; init : expr option }
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sdo of block * expr
  | Sfor of stmt option * expr option * expr option * block
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of block

and block = stmt list

type param = { pty : ty; pname : string }

type top =
  | Tfunc of { ret : ty; name : string; params : param list; body : block }
  | Tglobal of { const : bool; ty : ty; name : string; init : expr option }
  | Tstructdef of string * (ty * string) list
  | Tuniondef of string * (ty * string) list

type program = top list

let rec pp_ty ppf = function
  | Tvoid -> Format.pp_print_string ppf "void"
  | Tint { bits; signed } ->
      Format.fprintf ppf "%s%s"
        (if signed then "" else "unsigned ")
        (match bits with 8 -> "char" | 16 -> "short" | 32 -> "int" | _ -> "long")
  | Tintcap -> Format.pp_print_string ppf "intcap_t"
  | Tptr { pointee; pointee_const } ->
      Format.fprintf ppf "%s%a*" (if pointee_const then "const " else "") pp_ty pointee
  | Tarray (t, n) -> Format.fprintf ppf "%a[%d]" pp_ty t n
  | Tstruct s -> Format.fprintf ppf "struct %s" s
  | Tunion s -> Format.fprintf ppf "union %s" s
  | Tfunptr { fret; fparams } ->
      Format.fprintf ppf "%a(*)(%s)" pp_ty fret
        (String.concat ", " (List.map (fun t -> Format.asprintf "%a" pp_ty t) fparams))

let ty_equal (a : ty) (b : ty) = a = b
