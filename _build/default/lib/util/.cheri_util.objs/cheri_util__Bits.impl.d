lib/util/bits.ml: Format Int64
