(** Bit-level helpers over [int64] words.

    All addresses and machine words in this project are unsigned 64-bit
    quantities carried in [int64]. These helpers centralise the unsigned
    comparisons and field extraction that OCaml's signed [Int64] does not
    provide directly. *)

val ucompare : int64 -> int64 -> int
(** [ucompare a b] compares [a] and [b] as unsigned 64-bit integers. *)

val ult : int64 -> int64 -> bool
(** Unsigned [<]. *)

val ule : int64 -> int64 -> bool
(** Unsigned [<=]. *)

val ugt : int64 -> int64 -> bool
(** Unsigned [>]. *)

val uge : int64 -> int64 -> bool
(** Unsigned [>=]. *)

val umin : int64 -> int64 -> int64
val umax : int64 -> int64 -> int64

val extract : int64 -> lo:int -> width:int -> int64
(** [extract x ~lo ~width] returns bits [lo .. lo+width-1] of [x],
    right-aligned. [width] must be in [1, 64]. *)

val insert : int64 -> lo:int -> width:int -> int64 -> int64
(** [insert x ~lo ~width v] overwrites bits [lo .. lo+width-1] of [x]
    with the low [width] bits of [v]. *)

val is_aligned : int64 -> int -> bool
(** [is_aligned a n] is true when address [a] is a multiple of [n]
    ([n] must be a power of two). *)

val align_down : int64 -> int -> int64
val align_up : int64 -> int -> int64

val sign_extend : int64 -> width:int -> int64
(** [sign_extend x ~width] treats the low [width] bits of [x] as a signed
    value and extends to 64 bits. *)

val zero_extend : int64 -> width:int -> int64
(** Keep only the low [width] bits. *)

val truncate_to_width : int64 -> int -> int64
(** [truncate_to_width x bits] wraps [x] to a [bits]-wide two's-complement
    value, sign-extended back into an [int64] (so 8-bit arithmetic on
    [0xFF] yields [-1L]). *)

val pp_hex : Format.formatter -> int64 -> unit
(** Prints as [0x%Lx]. *)
