lib/tagmem/tagmem.mli: Cheri_core
