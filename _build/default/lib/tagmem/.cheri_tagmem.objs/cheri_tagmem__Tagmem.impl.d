lib/tagmem/tagmem.ml: Array Bits Bytes Char Cheri_core Cheri_util Int64
