(** Symbolic assembler and loader for the CHERI softcore.

    Code is built through a mutable {!Builder}, using symbolic labels
    for control flow and data symbols for globals and literals.
    {!link} resolves everything to a {!linked} image; {!make_machine}
    instantiates a reset {!Cheri_isa.Machine} with the data segment
    loaded and reserved from the heap allocator. *)

module Insn = Cheri_isa.Insn
module Machine = Cheri_isa.Machine

module Builder : sig
  type t

  val create : unit -> t

  (** {2 Code section} *)

  val label : t -> string -> unit
  (** Define a code label at the current position. Raises
      [Invalid_argument] on redefinition. *)

  val fresh_label : t -> string -> string
  (** A unique label with the given prefix (for compiler temporaries). *)

  val emit : t -> Insn.t -> unit
  val here : t -> int
  (** Current code position (instruction index). *)

  (** {2 Data section} *)

  val data_label : t -> string -> unit
  val data_bytes : t -> string -> unit
  val data_word : t -> int64 -> unit
  (** An 8-byte little-endian word. *)

  val data_zeros : t -> int -> unit
  val data_align : t -> int -> unit
end

type linked = {
  code : Insn.t array;
  data : bytes;
  data_base : int64;
  code_symbols : (string * int) list;
  data_symbols : (string * int64) list;
}

exception Undefined_symbol of string

val link : ?data_base:int64 -> Builder.t -> linked
(** Resolve all symbolic targets and immediates. Branch targets resolve
    against code labels; [Sym_addr] immediates resolve against data
    symbols first, then against code labels (whose "address" is the
    instruction index — how function pointers are represented). *)

val code_symbol : linked -> string -> int
val data_symbol : linked -> string -> int64

val make_machine : ?config:Machine.config -> linked -> Machine.t
(** A machine at reset with the data segment copied into memory at
    [data_base] and removed from the malloc free list. The default
    config is [Machine.default_config V3]. *)

val run_code :
  ?config:Machine.config -> ?fuel:int -> Insn.t list -> Machine.outcome * Machine.t
(** Convenience for tests: assemble a list of pre-resolved instructions
    with no data and run it. *)
