lib/asm/asm.ml: Array Buffer Bytes Cheri_core Cheri_isa Cheri_tagmem Hashtbl Int64 List Printf String
