lib/asm/asm.mli: Cheri_isa
