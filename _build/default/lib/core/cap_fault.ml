type t =
  | Tag_violation
  | Bounds_violation of { addr : int64; base : int64; top : int64 }
  | Perm_violation of Perms.perm
  | Length_violation
  | Alignment_violation of { addr : int64; required : int }
  | Representation_violation
  | Seal_violation of string
  | Unsupported of string

let pp ppf = function
  | Tag_violation -> Format.fprintf ppf "tag violation"
  | Bounds_violation { addr; base; top } ->
      Format.fprintf ppf "bounds violation: 0x%Lx not in [0x%Lx, 0x%Lx)" addr base top
  | Perm_violation p -> Format.fprintf ppf "permission violation: %a" Perms.pp (Perms.of_list p [])
  | Length_violation -> Format.fprintf ppf "length violation"
  | Alignment_violation { addr; required } ->
      Format.fprintf ppf "alignment violation: 0x%Lx requires %d-byte alignment" addr required
  | Representation_violation -> Format.fprintf ppf "representation violation"
  | Seal_violation what -> Format.fprintf ppf "seal violation: %s" what
  | Unsupported what -> Format.fprintf ppf "unsupported operation: %s" what

let to_string t = Format.asprintf "%a" pp t
let equal (a : t) b = a = b
