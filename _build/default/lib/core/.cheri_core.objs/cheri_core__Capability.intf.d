lib/core/capability.mli: Cap_fault Format Perms
