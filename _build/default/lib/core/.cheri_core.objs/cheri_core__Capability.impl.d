lib/core/capability.ml: Array Bits Cap_fault Cheri_util Format Int64 Perms Printf
