lib/core/cap_ops.mli: Cap_fault Capability Format Perms
