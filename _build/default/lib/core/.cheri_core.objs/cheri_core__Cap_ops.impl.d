lib/core/cap_ops.ml: Bits Cap_fault Capability Cheri_util Format Int64 Perms
