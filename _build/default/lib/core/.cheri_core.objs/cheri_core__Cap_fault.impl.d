lib/core/cap_fault.ml: Format Perms
