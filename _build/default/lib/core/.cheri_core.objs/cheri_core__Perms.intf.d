lib/core/perms.mli: Format
