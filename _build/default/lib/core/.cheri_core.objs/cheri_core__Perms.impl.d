lib/core/perms.ml: Format Int64 List String
