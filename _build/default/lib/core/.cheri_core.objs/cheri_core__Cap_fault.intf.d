lib/core/cap_fault.mli: Format Perms
