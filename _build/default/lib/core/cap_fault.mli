(** Faults raised by capability-checked operations.

    These correspond to the hardware traps of the CHERI coprocessor:
    every memory access and every capability manipulation either
    succeeds or stops the machine with one of these causes. *)

type t =
  | Tag_violation  (** the capability's tag is clear — it is not valid *)
  | Bounds_violation of { addr : int64; base : int64; top : int64 }
      (** the access at [addr] fell outside [base, top) *)
  | Perm_violation of Perms.perm  (** the capability lacks this right *)
  | Length_violation
      (** an operation tried to grow a capability's bounds *)
  | Alignment_violation of { addr : int64; required : int }
  | Representation_violation
      (** CHERIv2 only: the requested pointer value cannot be encoded
          (e.g. a cursor before the base, which v2 cannot represent) *)
  | Seal_violation of string
      (** using, modifying, or wrongly (un)sealing a sealed capability *)
  | Unsupported of string
      (** the operation does not exist in this ISA revision, e.g.
          pointer subtraction under CHERIv2 *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
