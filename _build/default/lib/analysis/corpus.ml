(* Synthetic corpus generator for the Table 1 reproduction.

   The paper ran its modified Clang over ~1.9 MLoC of popular C
   packages; we do not ship that corpus, so we regenerate it: for each
   package row of Table 1, emit a mini-C "package" that plants the
   paper's per-idiom instance counts (scaled down) inside realistic
   filler code, then let {!Finder} recount them. The experiment
   validates the *analyzer* (counts in == counts out, including dead
   instances vanishing under optimization) and reproduces the table's
   shape; it cannot, of course, revalidate the paper's manual
   classification of third-party code — see DESIGN.md. *)

type package_row = {
  package : string;
  deconst : int;
  container : int;
  sub : int;
  ii : int;
  int_ : int;
  ia : int;
  mask : int;
  wide : int;
  loc : int;
}

(* Table 1 as printed in the paper *)
let paper_table1 : package_row list =
  [
    { package = "ffmpeg"; deconst = 150; container = 0; sub = 800; ii = 4; int_ = 0; ia = 0; mask = 4; wide = 0; loc = 693_010 };
    { package = "libX11"; deconst = 117; container = 0; sub = 19; ii = 9; int_ = 1; ia = 0; mask = 0; wide = 5; loc = 120_386 };
    { package = "FreeBSD libc"; deconst = 288; container = 0; sub = 216; ii = 2; int_ = 13; ia = 50; mask = 184; wide = 17; loc = 136_717 };
    { package = "bash"; deconst = 43; container = 0; sub = 207; ii = 11; int_ = 0; ia = 0; mask = 15; wide = 4; loc = 109_250 };
    { package = "libpng"; deconst = 20; container = 0; sub = 175; ii = 1; int_ = 0; ia = 0; mask = 0; wide = 0; loc = 50_071 };
    { package = "tcpdump"; deconst = 579; container = 0; sub = 9; ii = 1299; int_ = 0; ia = 0; mask = 0; wide = 0; loc = 66_555 };
    { package = "perf"; deconst = 575; container = 151; sub = 46; ii = 0; int_ = 53; ia = 151; mask = 31; wide = 4; loc = 52_033 };
    { package = "pmc"; deconst = 2; container = 0; sub = 0; ii = 0; int_ = 18; ia = 0; mask = 0; wide = 0; loc = 8_886 };
    { package = "pcre"; deconst = 98; container = 0; sub = 52; ii = 0; int_ = 0; ia = 0; mask = 0; wide = 0; loc = 70_447 };
    { package = "python"; deconst = 494; container = 0; sub = 358; ii = 1; int_ = 109; ia = 0; mask = 131; wide = 8; loc = 383_813 };
    { package = "wget"; deconst = 55; container = 0; sub = 61; ii = 0; int_ = 3; ia = 0; mask = 1; wide = 10; loc = 91_710 };
    { package = "zlib"; deconst = 4; container = 0; sub = 24; ii = 0; int_ = 0; ia = 0; mask = 0; wide = 0; loc = 21_090 };
    { package = "zsh"; deconst = 29; container = 0; sub = 267; ii = 0; int_ = 0; ia = 0; mask = 5; wide = 5; loc = 98_664 };
  ]

let expected_counts (r : package_row) : Idiom.Counts.t =
  [
    (Idiom.Deconst, r.deconst);
    (Idiom.Container, r.container);
    (Idiom.Sub, r.sub);
    (Idiom.Ii, r.ii);
    (Idiom.Int_, r.int_);
    (Idiom.Ia, r.ia);
    (Idiom.Mask, r.mask);
    (Idiom.Wide, r.wide);
  ]

(* -- idiom templates -------------------------------------------------------- *)

let template idiom n =
  match idiom with
  | Idiom.Deconst ->
      Printf.sprintf
        {|
long deconst_%d(const long *cp) {
  long *p = (long *)cp;
  *p = *p + 1;
  return *p;
}
|}
        n
  | Idiom.Container ->
      Printf.sprintf
        {|
long container_%d(long *pb) {
  struct box *r = (struct box *)((char *)pb - sizeof(long));
  return r->a;
}
|}
        n
  | Idiom.Sub ->
      Printf.sprintf {|
long sub_%d(long *a, long *b) { return a - b; }
|} n
  | Idiom.Ii ->
      Printf.sprintf {|
long ii_%d(long *a) { return *((a + 100) - 99); }
|} n
  | Idiom.Int_ ->
      Printf.sprintf
        {|
void int_%d(long *p) {
  long v = (long)p;
  print_int(v);
}
|}
        n
  | Idiom.Ia ->
      Printf.sprintf
        {|
long ia_%d(long *p) {
  long *q = (long *)((long)p + 8);
  return *q;
}
|}
        n
  | Idiom.Mask ->
      Printf.sprintf
        {|
long mask_%d(long *p) {
  long *q = (long *)((long)p & ~7);
  return *q;
}
|}
        n
  | Idiom.Wide ->
      Printf.sprintf {|
unsigned int wide_%d(long *p) { return (unsigned int)(long)p; }
|} n

(* an idiom planted in dead code: the analyzer must not count it *)
let dead_template n =
  Printf.sprintf
    {|
long dead_%d(long *p, long *q) {
  long unused = p - q;          /* dead pointer subtraction */
  long also_unused = (long)p;   /* dead pointer-to-int */
  return 7;
}
|}
    n

let filler n =
  Printf.sprintf
    {|
long filler_%d(long a, long b) {
  long acc = 0;
  for (long i = 0; i < 8; i++) acc = acc + ((a * i + b) ^ (i << 2));
  if (acc > 100) acc = acc - b;
  return acc;
}
|}
    n

let preamble = "struct box { long a; long b; };\n"
let epilogue = "int main(void) { return 0; }\n"

type generated = { source : string; planted : Idiom.Counts.t; dead_planted : int }

(* scale a paper row down by [scale] (instance counts and filler code) *)
let generate ?(scale = 50) ?(dead = 2) (r : package_row) : generated =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf preamble;
  let n = ref 0 in
  let planted = ref Idiom.Counts.zero in
  let scaled v = (v + scale - 1) / scale in
  List.iter
    (fun (idiom, count) ->
      let count = scaled count in
      for _ = 1 to count do
        incr n;
        Buffer.add_string buf (template idiom !n);
        planted := Idiom.Counts.bump !planted idiom
      done)
    (expected_counts r);
  for _ = 1 to dead do
    incr n;
    Buffer.add_string buf (dead_template !n)
  done;
  (* filler to approximate the scaled package size *)
  let current = List.length (String.split_on_char '\n' (Buffer.contents buf)) in
  let target = r.loc / scale in
  let fillers = max 0 ((target - current) / 7) in
  for _ = 1 to fillers do
    incr n;
    Buffer.add_string buf (filler !n)
  done;
  Buffer.add_string buf epilogue;
  { source = Buffer.contents buf; planted = !planted; dead_planted = dead }

(* -- the Table 1 run --------------------------------------------------------- *)

type result_row = { row : package_row; found : Idiom.Counts.t; analyzed_loc : int }

let run ?(scale = 50) () : result_row list =
  List.map
    (fun r ->
      let g = generate ~scale r in
      let found = Finder.analyze_source g.source in
      let analyzed_loc = List.length (String.split_on_char '\n' g.source) in
      { row = r; found; analyzed_loc })
    paper_table1

let print ?(scale = 50) ppf rows =
  Format.fprintf ppf
    "Table 1: idiom occurrences found in the synthetic corpus (paper counts scaled 1/%d)@." scale;
  Format.fprintf ppf "%-14s" "PACKAGE";
  List.iter (fun i -> Format.fprintf ppf "%10s" (Idiom.name i)) Idiom.all;
  Format.fprintf ppf "%10s@." "LOC";
  let totals = ref Idiom.Counts.zero in
  let total_loc = ref 0 in
  List.iter
    (fun { row; found; analyzed_loc } ->
      totals := Idiom.Counts.add !totals found;
      total_loc := !total_loc + analyzed_loc;
      Format.fprintf ppf "%-14s" row.package;
      List.iter (fun i -> Format.fprintf ppf "%10d" (Idiom.Counts.get found i)) Idiom.all;
      Format.fprintf ppf "%10d@." analyzed_loc)
    rows;
  Format.fprintf ppf "%-14s" "TOTAL";
  List.iter (fun i -> Format.fprintf ppf "%10d" (Idiom.Counts.get !totals i)) Idiom.all;
  Format.fprintf ppf "%10d@." !total_loc
