(* A small cleanup pass: constant folding plus dead-local elimination.

   The paper's analyzer only counts idiom instances "that survive
   optimization because [the rest] will have no effect on run-time
   enforcement" (§2). This pass plays the role of LLVM's -O2 for that
   purpose: an idiom planted in code whose result is never observable
   disappears before the finder runs. *)

module T = Minic.Typed
open Minic.Ast

let rec is_pure (e : T.expr) =
  match e.T.e with
  | T.Num _ | T.Str _ | T.Sizeof _ | T.Fun_addr _ -> true
  | T.Load lv | T.Addr_of lv -> pure_lvalue lv
  | T.Unop (_, a) | T.Cast a -> is_pure a
  | T.Binop (_, a, b) | T.Ptr_cmp (_, a, b) | T.Intcap_arith (_, a, b) -> is_pure a && is_pure b
  | T.Ptr_add { p; i; _ } -> is_pure p && is_pure i
  | T.Ptr_diff { a; b; _ } -> is_pure a && is_pure b
  | T.Cond (c, a, b) -> is_pure c && is_pure a && is_pure b
  | T.Assign _ | T.Call _ | T.Call_ptr _ | T.Builtin _ | T.Incdec _ -> false

and pure_lvalue (lv : T.lvalue) =
  match lv.T.l with
  | T.Lvar _ | T.Lglobal _ -> true
  | T.Lderef e -> is_pure e
  | T.Lfield (base, _) -> pure_lvalue base

(* -- constant folding ----------------------------------------------------- *)

let fold_binop op a b =
  match op with
  | Add -> Some (Int64.add a b)
  | Sub -> Some (Int64.sub a b)
  | Mul -> Some (Int64.mul a b)
  | Div -> if b = 0L then None else Some (Int64.div a b)
  | Mod -> if b = 0L then None else Some (Int64.rem a b)
  | Band -> Some (Int64.logand a b)
  | Bor -> Some (Int64.logor a b)
  | Bxor -> Some (Int64.logxor a b)
  | Shl -> Some (Int64.shift_left a (Int64.to_int b land 63))
  | Shr -> Some (Int64.shift_right a (Int64.to_int b land 63))
  | Eq -> Some (if a = b then 1L else 0L)
  | Ne -> Some (if a <> b then 1L else 0L)
  | Lt -> Some (if a < b then 1L else 0L)
  | Le -> Some (if a <= b then 1L else 0L)
  | Gt -> Some (if a > b then 1L else 0L)
  | Ge -> Some (if a >= b then 1L else 0L)
  | Land | Lor -> None

let rec fold_expr (e : T.expr) : T.expr =
  let mk kind = { e with T.e = kind } in
  match e.T.e with
  | T.Num _ | T.Str _ | T.Sizeof _ | T.Fun_addr _ -> e
  | T.Load lv -> mk (T.Load (fold_lvalue lv))
  | T.Addr_of lv -> mk (T.Addr_of (fold_lvalue lv))
  | T.Unop (op, a) -> (
      let a = fold_expr a in
      match (op, a.T.e) with
      | Neg, T.Num v -> mk (T.Num (Int64.neg v))
      | Bnot, T.Num v -> mk (T.Num (Int64.lognot v))
      | Lnot, T.Num v -> mk (T.Num (if v = 0L then 1L else 0L))
      | _ -> mk (T.Unop (op, a)))
  | T.Binop (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (a.T.e, b.T.e) with
      | T.Num x, T.Num y -> (
          match fold_binop op x y with Some v -> mk (T.Num v) | None -> mk (T.Binop (op, a, b)))
      | _ -> mk (T.Binop (op, a, b)))
  | T.Ptr_add { p; i; elem } -> mk (T.Ptr_add { p = fold_expr p; i = fold_expr i; elem })
  | T.Ptr_diff { a; b; elem } -> mk (T.Ptr_diff { a = fold_expr a; b = fold_expr b; elem })
  | T.Ptr_cmp (op, a, b) -> mk (T.Ptr_cmp (op, fold_expr a, fold_expr b))
  | T.Intcap_arith (op, a, b) -> mk (T.Intcap_arith (op, fold_expr a, fold_expr b))
  | T.Assign (lv, v) -> mk (T.Assign (fold_lvalue lv, fold_expr v))
  | T.Call (f, args) -> mk (T.Call (f, List.map fold_expr args))
  | T.Call_ptr (fn, args) -> mk (T.Call_ptr (fold_expr fn, List.map fold_expr args))
  | T.Builtin (b, args) -> mk (T.Builtin (b, List.map fold_expr args))
  | T.Cast a -> mk (T.Cast (fold_expr a))
  | T.Cond (c, a, b) -> (
      let c = fold_expr c in
      match c.T.e with
      | T.Num v -> if v <> 0L then fold_expr a else fold_expr b
      | _ -> mk (T.Cond (c, fold_expr a, fold_expr b)))
  | T.Incdec (k, lv) -> mk (T.Incdec (k, fold_lvalue lv))

and fold_lvalue (lv : T.lvalue) : T.lvalue =
  match lv.T.l with
  | T.Lvar _ | T.Lglobal _ -> lv
  | T.Lderef e -> { lv with T.l = T.Lderef (fold_expr e) }
  | T.Lfield (base, f) -> { lv with T.l = T.Lfield (fold_lvalue base, f) }

(* -- dead local elimination ------------------------------------------------ *)

(* locals that are read (loaded or address-taken) anywhere in the body *)
let used_locals (body : T.stmt list) =
  let used = Hashtbl.create 32 in
  let rec use_lvalue ?(write_target = false) (lv : T.lvalue) =
    match lv.T.l with
    | T.Lvar name -> if not write_target then Hashtbl.replace used name ()
    | T.Lglobal _ -> ()
    | T.Lderef e -> use_expr e
    | T.Lfield (base, _) ->
        (* writing through a field still needs the base address *)
        use_lvalue ~write_target:false base
  and use_expr (e : T.expr) =
    match e.T.e with
    | T.Num _ | T.Str _ | T.Sizeof _ | T.Fun_addr _ -> ()
    | T.Load lv | T.Addr_of lv -> use_lvalue lv
    | T.Unop (_, a) | T.Cast a -> use_expr a
    | T.Binop (_, a, b) | T.Ptr_cmp (_, a, b) | T.Intcap_arith (_, a, b) ->
        use_expr a;
        use_expr b
    | T.Ptr_add { p; i; _ } ->
        use_expr p;
        use_expr i
    | T.Ptr_diff { a; b; _ } ->
        use_expr a;
        use_expr b
    | T.Assign (lv, v) ->
        use_lvalue ~write_target:true lv;
        use_expr v
    | T.Call (_, args) | T.Builtin (_, args) -> List.iter use_expr args
    | T.Call_ptr (fn, args) ->
        use_expr fn;
        List.iter use_expr args
    | T.Cond (c, a, b) ->
        use_expr c;
        use_expr a;
        use_expr b
    | T.Incdec (_, lv) -> use_lvalue ~write_target:false lv
  in
  let rec use_stmt (s : T.stmt) =
    match s with
    | T.Expr e -> use_expr e
    | T.Decl { init; _ } -> Option.iter use_expr init
    | T.If (c, a, b) ->
        use_expr c;
        List.iter use_stmt a;
        List.iter use_stmt b
    | T.While (c, b) ->
        use_expr c;
        List.iter use_stmt b
    | T.Dowhile (b, c) ->
        List.iter use_stmt b;
        use_expr c
    | T.For (i, c, st, b) ->
        Option.iter use_stmt i;
        Option.iter use_expr c;
        Option.iter use_expr st;
        List.iter use_stmt b
    | T.Return e -> Option.iter use_expr e
    | T.Break | T.Continue -> ()
    | T.Block b -> List.iter use_stmt b
  in
  List.iter use_stmt body;
  used

let rec eliminate used (stmts : T.stmt list) : T.stmt list =
  List.filter_map
    (fun s ->
      match s with
      | T.Decl { name; init; _ } when not (Hashtbl.mem used name) -> (
          match init with
          | Some e when not (is_pure e) -> Some (T.Expr e)
          | _ -> None)
      | T.Expr { T.e = T.Assign ({ T.l = T.Lvar name; _ }, rhs); _ }
        when (not (Hashtbl.mem used name)) && is_pure rhs ->
          None
      | T.Expr e when is_pure e -> None
      | T.If (c, a, b) -> Some (T.If (c, eliminate used a, eliminate used b))
      | T.While (c, b) -> Some (T.While (c, eliminate used b))
      | T.Dowhile (b, c) -> Some (T.Dowhile (eliminate used b, c))
      | T.For (i, c, st, b) -> Some (T.For (i, c, st, eliminate used b))
      | T.Block b -> Some (T.Block (eliminate used b))
      | s -> Some s)
    stmts

let rec map_stmt_exprs f (s : T.stmt) : T.stmt =
  match s with
  | T.Expr e -> T.Expr (f e)
  | T.Decl { name; ty; const; init } -> T.Decl { name; ty; const; init = Option.map f init }
  | T.If (c, a, b) -> T.If (f c, List.map (map_stmt_exprs f) a, List.map (map_stmt_exprs f) b)
  | T.While (c, b) -> T.While (f c, List.map (map_stmt_exprs f) b)
  | T.Dowhile (b, c) -> T.Dowhile (List.map (map_stmt_exprs f) b, f c)
  | T.For (i, c, st, b) ->
      T.For
        (Option.map (map_stmt_exprs f) i, Option.map f c, Option.map f st,
         List.map (map_stmt_exprs f) b)
  | T.Return e -> T.Return (Option.map f e)
  | T.Break | T.Continue -> s
  | T.Block b -> T.Block (List.map (map_stmt_exprs f) b)

let optimize_func (f : T.func) : T.func =
  let body = List.map (map_stmt_exprs fold_expr) f.T.body in
  (* two rounds of elimination catch chains like a = ptr-int; b = a; *)
  let body = eliminate (used_locals body) body in
  let body = eliminate (used_locals body) body in
  { f with T.body }

let optimize (p : T.program) : T.program =
  { p with T.funcs = List.map optimize_func p.T.funcs }
