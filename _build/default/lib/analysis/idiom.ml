(* The idiom taxonomy of §2 / Table 1. *)

type t =
  | Deconst  (** const qualifier removed by a cast *)
  | Container  (** enclosing struct recovered from a member pointer *)
  | Sub  (** arbitrary pointer subtraction *)
  | Ii  (** out-of-bounds intermediate results *)
  | Int_  (** pointer stored in an integer variable *)
  | Ia  (** integer arithmetic on a pointer value *)
  | Mask  (** flag bits masked in/out of a pointer *)
  | Wide  (** pointer stored in a too-narrow integer *)

let all = [ Deconst; Container; Sub; Ii; Int_; Ia; Mask; Wide ]

let name = function
  | Deconst -> "DECONST"
  | Container -> "CONTAINER"
  | Sub -> "SUB"
  | Ii -> "II"
  | Int_ -> "INT"
  | Ia -> "IA"
  | Mask -> "MASK"
  | Wide -> "WIDE"

module Counts = struct
  type nonrec t = (t * int) list

  let zero = List.map (fun i -> (i, 0)) all
  let get counts i = Option.value ~default:0 (List.assoc_opt i counts)
  let bump counts i = List.map (fun (j, n) -> if i = j then (j, n + 1) else (j, n)) counts
  let add a b = List.map (fun (i, n) -> (i, n + get b i)) a
  let total t = List.fold_left (fun acc (_, n) -> acc + n) 0 t

  let pp ppf t =
    List.iter (fun (i, n) -> Format.fprintf ppf "%s=%d " (name i) n) t
end
