lib/analysis/corpus.ml: Buffer Finder Format Idiom List Printf String
