lib/analysis/idiom.ml: Format List Option
