lib/analysis/optimizer.ml: Hashtbl Int64 List Minic Option
