lib/analysis/finder.ml: Hashtbl Idiom Int64 List Minic Optimizer Option
