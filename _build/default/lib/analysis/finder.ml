(* The idiom finder: the reproduction of the paper's modified-Clang
   analysis (§2), retargeted from LLVM IR to our typed AST. The
   detection logic is the same in spirit: pointer-to-integer and
   integer-to-pointer conversion pairs, arithmetic between them,
   const-removing casts, backwards member arithmetic, and narrowing
   stores — counted only when they survive {!Optimizer}.

   Classification is single-label per site, mirroring the paper's
   machine-assisted manual classification: a ptr->int cast feeding
   arithmetic is IA (or MASK for and/or with a constant), feeding a
   narrower cast is WIDE, otherwise INT. *)

module T = Minic.Typed
open Minic.Ast

type state = { mutable counts : Idiom.Counts.t; taint : (string, unit) Hashtbl.t }

let bump st i = st.counts <- Idiom.Counts.bump st.counts i

(* strip value-preserving casts *)
let rec strip (e : T.expr) = match e.T.e with T.Cast inner -> strip inner | _ -> e

(* the literal value of an index expression, looking through casts and
   negation *)
let rec literal (e : T.expr) =
  match e.T.e with
  | T.Num v -> Some v
  | T.Cast inner -> literal inner
  | T.Unop (Neg, inner) -> Option.map Int64.neg (literal inner)
  | _ -> None

let is_negative_index e =
  match literal e with
  | Some v -> Int64.compare v 0L < 0
  | None -> ( match e.T.e with T.Unop (Neg, _) -> true | _ -> false)

let is_ptr = function Tptr _ -> true | _ -> false
let is_int = function Tint _ -> true | _ -> false
let narrow = function Tint { bits; _ } -> bits < 64 | _ -> false

(* does this expression carry a pointer-derived integer? *)
let rec derived st (e : T.expr) =
  match e.T.e with
  | T.Cast inner -> (is_ptr (strip inner).T.ty && is_int e.T.ty) || derived st inner
  | T.Load { T.l = T.Lvar name; _ } -> Hashtbl.mem st.taint name
  | T.Binop (_, a, b) -> derived st a || derived st b
  | T.Unop (_, a) -> derived st a
  | T.Cond (_, a, b) -> derived st a || derived st b
  | _ -> false

(* flow-insensitive taint: locals assigned pointer-derived integers *)
let compute_taint st (body : T.stmt list) =
  let changed = ref true in
  let note name rhs =
    if derived st rhs && not (Hashtbl.mem st.taint name) then begin
      Hashtbl.replace st.taint name ();
      changed := true
    end
  in
  let visit_expr (e : T.expr) =
    match e.T.e with
    | T.Assign ({ T.l = T.Lvar name; _ }, rhs) -> note name rhs
    | _ -> ()
  in
  let visit_stmt (s : T.stmt) =
    match s with T.Decl { name; init = Some rhs; _ } -> note name rhs | _ -> ()
  in
  while !changed do
    changed := false;
    List.iter (T.iter_stmt visit_expr visit_stmt) body
  done

(* main per-expression classification *)
let rec scan st (e : T.expr) =
  match e.T.e with
  | T.Num _ | T.Str _ | T.Sizeof _ | T.Fun_addr _ -> ()
  | T.Load lv | T.Addr_of lv -> scan_lvalue st lv
  | T.Unop (_, a) -> scan st a
  | T.Binop (op, a, b) ->
      (if derived st a || derived st b then
         match (op, literal (strip b), literal (strip a)) with
         | (Band | Bor | Bxor), Some _, _ | (Band | Bor | Bxor), _, Some _ -> bump st Idiom.Mask
         | (Add | Sub | Mul | Div | Mod | Shl | Shr), _, _ -> bump st Idiom.Ia
         | _ -> ());
      scan_operand st a;
      scan_operand st b
  | T.Intcap_arith (op, a, b) ->
      (match (op, literal (strip b)) with
      | (Band | Bor | Bxor), Some _ -> bump st Idiom.Mask
      | (Add | Sub | Mul | Div | Mod | Shl | Shr), _ -> bump st Idiom.Ia
      | _ -> ());
      scan_operand st a;
      scan_operand st b
  | T.Ptr_add { p; i; _ } ->
      (* nested adds with opposite-sign literal indices: an
         out-of-bounds intermediate brought back in bounds *)
      (match ((strip p).T.e, literal i, is_negative_index i) with
      | T.Ptr_add { i = i_inner; _ }, _, outer_neg -> (
          match (literal i_inner, is_negative_index i_inner) with
          | Some _, inner_neg when inner_neg <> outer_neg -> bump st Idiom.Ii
          | None, inner_neg when inner_neg <> outer_neg && literal i <> None -> bump st Idiom.Ii
          | _ -> if is_negative_index i then bump st Idiom.Sub)
      | _, _, true -> bump st Idiom.Sub
      | _ -> ());
      scan st p;
      scan st i
  | T.Ptr_diff { a; b; _ } ->
      bump st Idiom.Sub;
      scan st a;
      scan st b
  | T.Ptr_cmp (_, a, b) ->
      scan st a;
      scan st b
  | T.Assign (lv, rhs) ->
      (* a pointer-derived wide value stored into a narrow integer *)
      if narrow lv.T.lty && derived st rhs then bump st Idiom.Wide;
      scan_lvalue st lv;
      scan st rhs
  | T.Call (_, args) | T.Builtin (_, args) -> List.iter (scan st) args
  | T.Call_ptr (fn, args) ->
      scan st fn;
      List.iter (scan st) args
  | T.Cast inner -> scan_cast st e inner
  | T.Cond (c, a, b) ->
      scan st c;
      scan st a;
      scan st b
  | T.Incdec (_, lv) -> scan_lvalue st lv

(* an operand position of integer arithmetic: ptr->int casts here are
   already accounted to IA/MASK by the parent, so only recurse *)
and scan_operand st (e : T.expr) =
  match e.T.e with
  | T.Cast inner when is_ptr (strip inner).T.ty && is_int e.T.ty -> scan st (strip inner)
  | _ -> scan st e

and scan_cast st (node : T.expr) inner =
  let src = inner.T.ty and dst = node.T.ty in
  match (src, dst) with
  | Tptr a, Tptr b when a.pointee_const && not b.pointee_const ->
      bump st Idiom.Deconst;
      scan st inner
  | _, Tptr { pointee = Tstruct _ | Tunion _; _ }
    when (match (strip inner).T.e with
         | T.Ptr_add { i; _ } -> is_negative_index i
         | _ -> false) ->
      (* backwards arithmetic cast to an enclosing aggregate *)
      bump st Idiom.Container;
      (* consume the inner Ptr_add so it is not also counted as SUB *)
      let stripped = strip inner in
      (match stripped.T.e with
      | T.Ptr_add { p; i; _ } ->
          scan st p;
          scan st i
      | _ -> scan st inner)
  | Tptr _, Tint { bits; _ } ->
      if bits < 64 then bump st Idiom.Wide else bump st Idiom.Int_;
      scan st inner
  | Tptr _, Tintcap ->
      bump st Idiom.Int_;
      scan st inner
  | Tint _, Tint { bits; _ } when bits < 64 && derived st inner -> (
      (* narrowing a pointer-derived integer *)
      bump st Idiom.Wide;
      match (strip inner).T.ty with
      | Tptr _ -> scan st (strip inner) (* don't double-count the inner INT *)
      | _ -> scan st inner)
  | Tint _, Tint { bits; _ }
    when bits < 64 && is_ptr (strip inner).T.ty ->
      bump st Idiom.Wide;
      scan st (strip inner)
  | _ -> scan st inner

and scan_lvalue st (lv : T.lvalue) =
  match lv.T.l with
  | T.Lvar _ | T.Lglobal _ -> ()
  | T.Lderef e -> scan st e
  | T.Lfield (base, _) -> scan_lvalue st base

(* statement walker applying [scan] exactly once per top-level
   expression ([scan] recurses into subexpressions itself) *)
let rec walk st (s : T.stmt) =
  match s with
  | T.Expr e -> scan st e
  | T.Decl { init; _ } -> Option.iter (scan st) init
  | T.If (c, a, b) ->
      scan st c;
      List.iter (walk st) a;
      List.iter (walk st) b
  | T.While (c, b) ->
      scan st c;
      List.iter (walk st) b
  | T.Dowhile (b, c) ->
      List.iter (walk st) b;
      scan st c
  | T.For (i, c, step, b) ->
      Option.iter (walk st) i;
      Option.iter (scan st) c;
      Option.iter (scan st) step;
      List.iter (walk st) b
  | T.Return e -> Option.iter (scan st) e
  | T.Break | T.Continue -> ()
  | T.Block b -> List.iter (walk st) b

let analyze_function (f : T.func) : Idiom.Counts.t =
  let st = { counts = Idiom.Counts.zero; taint = Hashtbl.create 8 } in
  compute_taint st f.T.body;
  List.iter (walk st) f.T.body;
  st.counts

let analyze ?(optimize = true) (p : T.program) : Idiom.Counts.t =
  let p = if optimize then Optimizer.optimize p else p in
  List.fold_left
    (fun acc f -> Idiom.Counts.add acc (analyze_function f))
    Idiom.Counts.zero p.T.funcs

let analyze_source ?optimize src = analyze ?optimize (Minic.Typecheck.compile src)
