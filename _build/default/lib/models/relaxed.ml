(* The paper's "Relaxed interpreter": a pointer is a packed integer
   whose top 32 bits name an object and whose low 32 bits are an
   offset. Integers converted to pointers work as long as the object
   is still live — "best effort" reconstruction that tolerates
   arbitrary arithmetic on the low bits but gives only a weak memory
   model (accidental construction of valid-but-wrong pointers is
   possible). WIDE still breaks: truncation destroys the object id. *)

let name = "Relaxed"
let description = "object id in the top 32 bits, offset in the low 32"
let target = Minic.Layout.mips_target
let enforces_const = false

type ptr = int64
type heap = Flat_heap.t

let create () = Flat_heap.create ()
let null = 0L
let is_null _ p = p = 0L
let pp_ptr ppf p = Format.fprintf ppf "(obj %Ld, off %Ld)" (Int64.shift_right_logical p 32)
    (Cheri_util.Bits.sign_extend p ~width:32)

let pack ~id ~off =
  Int64.logor (Int64.shift_left (Int64.of_int id) 32) (Int64.logand off 0xffffffffL)

let obj_id p = Int64.to_int (Int64.shift_right_logical p 32)
let off_of p = Cheri_util.Bits.sign_extend p ~width:32

let alloc heap ~size ~const =
  let o = Flat_heap.alloc heap ~size ~const in
  Ok (pack ~id:o.Flat_heap.id ~off:0L)

let resolve heap p =
  match Flat_heap.by_id heap (obj_id p) with
  | None -> Error (Fault.Invalid_pointer "no such object")
  | Some o -> if o.Flat_heap.freed then Error Fault.Use_after_free else Ok (o, off_of p)

let free heap p =
  if off_of p <> 0L then Error (Fault.Invalid_pointer "free of interior pointer")
  else
    match resolve heap p with
    | Error e -> Error e
    | Ok (o, _) -> Flat_heap.free_obj heap o

let add _ p d = Ok (pack ~id:(obj_id p) ~off:(Int64.add (off_of p) d))

let diff _ a b =
  if obj_id a = obj_id b then Ok (Int64.sub (off_of a) (off_of b)) else Ok (Int64.sub a b)

let cmp _ a b = Ok (Cheri_util.Bits.ucompare a b)
let field heap p ~off ~size:_ = add heap p off
let to_int _ p = Ok p
let of_int _ ~modified:_ v = Ok v
let intcap_of_int _ v = v
let intcap_to_int _ p = p
let intcap_arith _ ~f p rhs = Ok (f p rhs)

let load heap p ~size =
  match resolve heap p with Error e -> Error e | Ok (o, off) -> Flat_heap.load o ~off ~size

let store heap p ~size v =
  match resolve heap p with Error e -> Error e | Ok (o, off) -> Flat_heap.store o ~off ~size v

let load_ptr heap p = load heap p ~size:8
let store_ptr heap p v = store heap p ~size:8 v

let copy heap ~dst ~src ~len =
  match (resolve heap dst, resolve heap src) with
  | Error e, _ | _, Error e -> Error e
  | Ok (dobj, doff), Ok (sobj, soff) -> (
      match Flat_heap.load_bytes sobj ~off:soff ~len:(Int64.to_int len) with
      | Error e -> Error e
      | Ok b -> Flat_heap.store_bytes dobj ~off:doff b)

let make_const p = p
