(* Intel MPX as characterized by the paper: compiler-visible bounds
   with a look-aside table, biased toward compatibility — when the
   pointer value no longer matches the tracked metadata, the check
   *fails open* and the access proceeds unchecked. Member derivation
   narrows the bounds to the member (the compiler "associated bounds
   with the inner pointer"), which is why CONTAINER breaks. *)

let name = "Intel MPX"
let description = "look-aside bounds, fail-open, member-narrowed"
let target = Minic.Layout.mips_target
let enforces_const = false

type ptr = Bounds_table.ptr
type heap = Bounds_table.heap

let create = Bounds_table.create
let null = Bounds_table.null
let is_null = Bounds_table.is_null
let pp_ptr = Bounds_table.pp_ptr
let alloc = Bounds_table.alloc
let free = Bounds_table.free
let add = Bounds_table.add
let diff = Bounds_table.diff
let cmp = Bounds_table.cmp

(* Bounds narrow to the member — intersected with whatever bounds the
   pointer already carries, since the compiler's bndcl/bndcu checks
   accumulate. A pointer that walked below its member bounds (the
   container_of pattern) ends up with an empty range and traps. *)
let field _heap (p : ptr) ~off ~size =
  let addr = Int64.add p.Bounds_table.addr off in
  let bounds =
    match p.Bounds_table.bounds with
    | Bounds_table.Unknown -> Bounds_table.Unknown
    | Bounds_table.Known { base; size = bsize } ->
        let lo = Cheri_util.Bits.umax base addr in
        let hi = Cheri_util.Bits.umin (Int64.add base bsize) (Int64.add addr size) in
        let isize = if Cheri_util.Bits.ult lo hi then Int64.sub hi lo else 0L in
        Bounds_table.Known { base = lo; size = isize }
  in
  Ok { Bounds_table.addr; bounds }

let to_int = Bounds_table.to_int
let of_int = Bounds_table.of_int
let intcap_of_int = Bounds_table.intcap_of_int
let intcap_to_int = Bounds_table.intcap_to_int
let intcap_arith = Bounds_table.intcap_arith
let load heap p ~size = Bounds_table.load heap ~fail_open:true p ~size
let store heap p ~size v = Bounds_table.store heap ~fail_open:true p ~size v
let load_ptr heap p = Bounds_table.load_ptr heap ~fail_open:true p
let store_ptr heap p v = Bounds_table.store_ptr heap ~fail_open:true p v
let copy heap ~dst ~src ~len = Bounds_table.copy heap ~fail_open:true ~dst ~src ~len
let make_const = Bounds_table.make_const
