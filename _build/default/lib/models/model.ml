(* The pointer-model interface: one implementation per row of Table 3.

   A model decides what a C pointer *is* — its in-register
   representation, its in-memory representation, what arithmetic and
   int conversions preserve, and what the dereference check consults.
   The abstract-machine interpreter ({!Cheri_interp}) is parameterized
   over this signature, so the idiom test programs run unchanged under
   every interpretation of the abstract machine. *)

module type S = sig
  val name : string
  val description : string

  val target : Minic.Layout.target
  (** Pointer size/alignment this model needs in data layout. *)

  val enforces_const : bool
  (** When true, the interpreter strips write permission from pointers
      the moment they become const-qualified (CHERIv2). *)

  type ptr
  type heap

  val create : unit -> heap
  val null : ptr
  val is_null : heap -> ptr -> bool
  val pp_ptr : Format.formatter -> ptr -> unit

  (** {2 Objects} *)

  val alloc : heap -> size:int64 -> const:bool -> (ptr, Fault.t) result
  val free : heap -> ptr -> (unit, Fault.t) result

  (** {2 Pointer arithmetic (byte-granularity)} *)

  val add : heap -> ptr -> int64 -> (ptr, Fault.t) result
  val diff : heap -> ptr -> ptr -> (int64, Fault.t) result
  val cmp : heap -> ptr -> ptr -> (int, Fault.t) result

  val field : heap -> ptr -> off:int64 -> size:int64 -> (ptr, Fault.t) result
  (** Derive a pointer to a member at [off] of size [size]. Models that
      associate bounds with the static type (Intel MPX) narrow here;
      everyone else treats it as [add]. *)

  (** {2 Integer conversions} *)

  val to_int : heap -> ptr -> (int64, Fault.t) result

  val of_int : heap -> modified:bool -> int64 -> (ptr, Fault.t) result
  (** Reconstruct a pointer from an integer. [modified] says whether
      the value went through arithmetic since it was derived from a
      pointer (the interpreter tracks this dynamically); schemes whose
      metadata propagation is compiler-driven (HardBound, MPX, Strict)
      lose the association exactly then, even if the arithmetic happens
      to restore the original value (the MASK idiom). [of_int] never
      checks liveness — invalid values yield poisoned pointers that
      fault at dereference, matching hardware. *)

  (** {2 intcap_t support} *)

  val intcap_of_int : heap -> int64 -> ptr
  val intcap_to_int : heap -> ptr -> int64

  val intcap_arith : heap -> f:(int64 -> int64 -> int64) -> ptr -> int64 -> (ptr, Fault.t) result
  (** Arithmetic on an [intcap_t]: apply [f] to the integer value and
      the right operand. CHERIv3 recomputes the offset and keeps the
      capability valid; CHERIv2 has no such operation; integer-backed
      models just compute. *)

  (** {2 Memory access} *)

  val load : heap -> ptr -> size:int -> (int64, Fault.t) result
  val store : heap -> ptr -> size:int -> int64 -> (unit, Fault.t) result
  val load_ptr : heap -> ptr -> (ptr, Fault.t) result
  val store_ptr : heap -> ptr -> ptr -> (unit, Fault.t) result
  val copy : heap -> dst:ptr -> src:ptr -> len:int64 -> (unit, Fault.t) result
  (** memcpy-like: must move pointers opaquely (preserving whatever
      shadow state makes them valid), like a capability-oblivious
      memcpy over tagged memory. *)

  val make_const : ptr -> ptr
  (** Strip write permission where representable; identity elsewhere. *)
end

type packed = (module S)
