(* Runtime faults of the abstract-machine interpreter.

   Each pointer model maps its protection violations onto these; a
   fault is the "no" of Table 3 — the idiom did not survive under that
   interpretation of the C abstract machine. *)

type t =
  | Out_of_bounds of { addr : int64; base : int64; size : int64 }
  | Use_after_free
  | Const_violation
  | Invalid_pointer of string
      (* dereference of a value with no live-object interpretation *)
  | Unrepresentable of string
      (* the pointer value exists but this model cannot encode it *)
  | Unsupported of string  (* operation absent from this model *)
  | Misaligned of int64
  | Cap of Cheri_core.Cap_fault.t
  | Out_of_memory

let pp ppf = function
  | Out_of_bounds { addr; base; size } ->
      Format.fprintf ppf "out of bounds: 0x%Lx not in [0x%Lx, 0x%Lx)" addr base
        (Int64.add base size)
  | Use_after_free -> Format.pp_print_string ppf "use after free"
  | Const_violation -> Format.pp_print_string ppf "write to const object"
  | Invalid_pointer why -> Format.fprintf ppf "invalid pointer: %s" why
  | Unrepresentable why -> Format.fprintf ppf "unrepresentable pointer: %s" why
  | Unsupported what -> Format.fprintf ppf "unsupported: %s" what
  | Misaligned a -> Format.fprintf ppf "misaligned access at 0x%Lx" a
  | Cap f -> Cheri_core.Cap_fault.pp ppf f
  | Out_of_memory -> Format.pp_print_string ppf "out of memory"

let to_string t = Format.asprintf "%a" pp t
