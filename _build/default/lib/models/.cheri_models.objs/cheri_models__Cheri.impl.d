lib/models/cheri.ml: Array Cheri_core Cheri_util Fault Flat_heap Hashtbl Int64 List Minic Model_util
