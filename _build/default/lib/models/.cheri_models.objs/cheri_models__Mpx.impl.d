lib/models/mpx.ml: Bounds_table Cheri_util Int64 Minic
