lib/models/pdp11.ml: Cheri_util Fault Flat_heap Format Int64 Minic Model_util
