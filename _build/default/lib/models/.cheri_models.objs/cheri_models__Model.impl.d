lib/models/model.ml: Fault Format Minic
