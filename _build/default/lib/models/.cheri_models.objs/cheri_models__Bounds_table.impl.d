lib/models/bounds_table.ml: Cheri_util Fault Flat_heap Format Hashtbl Int64 Model_util
