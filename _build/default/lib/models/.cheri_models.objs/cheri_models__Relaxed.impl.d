lib/models/relaxed.ml: Cheri_util Fault Flat_heap Format Int64 Minic
