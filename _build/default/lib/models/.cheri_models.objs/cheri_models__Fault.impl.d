lib/models/fault.ml: Cheri_core Format Int64
