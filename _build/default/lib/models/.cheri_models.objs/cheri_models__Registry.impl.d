lib/models/registry.ml: Cheri Hardbound List Model Mpx Pdp11 Relaxed Strict String
