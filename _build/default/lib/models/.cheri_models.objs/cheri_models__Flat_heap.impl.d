lib/models/flat_heap.ml: Array Bits Bytes Char Cheri_util Fault Hashtbl Int64
