lib/models/strict.ml: Fault Flat_heap Format Hashtbl Int64 Minic
