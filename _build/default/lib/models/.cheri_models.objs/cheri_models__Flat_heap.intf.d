lib/models/flat_heap.mli: Bytes Fault
