lib/models/model_util.ml: Fault Flat_heap Int64 Printf
