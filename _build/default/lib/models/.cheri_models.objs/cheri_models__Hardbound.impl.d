lib/models/hardbound.ml: Bounds_table Minic
