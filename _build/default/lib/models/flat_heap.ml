open Cheri_util

type obj = {
  id : int;
  vbase : int64;
  size : int64;
  data : Bytes.t;
  mutable freed : bool;
  const : bool;
}

type t = {
  mutable objects : obj array;  (* sorted by vbase; grows *)
  mutable count : int;
  by_id : (int, obj) Hashtbl.t;
  mutable next_base : int64;
  mutable next_id : int;
}

let initial_base = 0x1_0000_0000L (* 4 GiB: see interface *)
let guard_gap = 32L

let create () =
  {
    objects = [||];
    count = 0;
    by_id = Hashtbl.create 64;
    next_base = initial_base;
    next_id = 1;
  }

let push t o =
  if t.count = Array.length t.objects then begin
    let bigger = Array.make (max 16 (2 * t.count)) o in
    Array.blit t.objects 0 bigger 0 t.count;
    t.objects <- bigger
  end;
  t.objects.(t.count) <- o;
  t.count <- t.count + 1

let slack = 32
(* Objects carry [slack] bytes of extra storage past their nominal end,
   so that unchecked models can replicate the way small heap overruns
   silently "work" on conventional implementations. Checked models
   never look at it. *)

let alloc t ~size ~const =
  let size = Bits.umax size 1L in
  let o =
    {
      id = t.next_id;
      vbase = t.next_base;
      size;
      data = Bytes.make (Int64.to_int size + slack) '\000';
      freed = false;
      const;
    }
  in
  t.next_id <- t.next_id + 1;
  t.next_base <- Bits.align_up (Int64.add t.next_base (Int64.add size guard_gap)) 32;
  Hashtbl.replace t.by_id o.id o;
  push t o;
  o

let free_obj _t o =
  if o.freed then Error (Fault.Invalid_pointer "double free")
  else begin
    o.freed <- true;
    Ok ()
  end

(* binary search: objects are allocated with ascending vbase *)
let find t addr =
  let rec go lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let o = t.objects.(mid) in
      if Bits.ult addr o.vbase then go lo (mid - 1)
      else if Bits.uge addr (Int64.add o.vbase o.size) then go (mid + 1) hi
      else Some o
  in
  go 0 (t.count - 1)

let find_loose t addr =
  match find t addr with
  | Some _ as r -> r
  | None ->
      (* greatest vbase <= addr, accepting hits in the slack region *)
      let rec go lo hi best =
        if lo > hi then best
        else
          let mid = (lo + hi) / 2 in
          let o = t.objects.(mid) in
          if Bits.ule o.vbase addr then go (mid + 1) hi (Some o) else go lo (mid - 1) best
      in
      (match go 0 (t.count - 1) None with
      | Some o
        when Bits.ult addr (Int64.add o.vbase (Int64.add o.size (Int64.of_int slack))) ->
          Some o
      | _ -> None)

let by_id t id = Hashtbl.find_opt t.by_id id

let check ?(loose = false) o ~off ~len =
  let limit = if loose then Int64.add o.size (Int64.of_int slack) else o.size in
  if Int64.compare off 0L < 0 || Bits.ugt (Int64.add off (Int64.of_int len)) limit then
    Error (Fault.Out_of_bounds { addr = Int64.add o.vbase off; base = o.vbase; size = o.size })
  else Ok ()

let load ?loose o ~off ~size =
  match check ?loose o ~off ~len:size with
  | Error _ as e -> e
  | Ok () ->
      let i = Int64.to_int off in
      Ok
        (match size with
        | 1 -> Int64.of_int (Char.code (Bytes.get o.data i))
        | 2 -> Int64.of_int (Bytes.get_uint16_le o.data i)
        | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le o.data i)) 0xffffffffL
        | 8 -> Bytes.get_int64_le o.data i
        | _ -> invalid_arg "Flat_heap.load: bad size")

let store ?loose o ~off ~size v =
  if o.const then Error Fault.Const_violation
  else
    match check ?loose o ~off ~len:size with
    | Error _ as e -> e
    | Ok () ->
        let i = Int64.to_int off in
        (match size with
        | 1 -> Bytes.set o.data i (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
        | 2 -> Bytes.set_uint16_le o.data i (Int64.to_int (Int64.logand v 0xffffL))
        | 4 -> Bytes.set_int32_le o.data i (Int64.to_int32 v)
        | 8 -> Bytes.set_int64_le o.data i v
        | _ -> invalid_arg "Flat_heap.store: bad size");
        Ok ()

let load_bytes o ~off ~len =
  match check o ~off ~len with
  | Error e -> Error e
  | Ok () -> Ok (Bytes.sub o.data (Int64.to_int off) len)

let store_bytes o ~off b =
  if o.const then Error Fault.Const_violation
  else
    match check o ~off ~len:(Bytes.length b) with
    | Error e -> Error e
    | Ok () ->
        Bytes.blit b 0 o.data (Int64.to_int off) (Bytes.length b);
        Ok ()
