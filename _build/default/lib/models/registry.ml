(* All pointer models, in the row order of Table 3. *)

type entry = { model : Model.packed; name : string }

let pdp11 : Model.packed = (module Pdp11)
let hardbound : Model.packed = (module Hardbound)
let mpx : Model.packed = (module Mpx)
let relaxed : Model.packed = (module Relaxed)
let strict : Model.packed = (module Strict)
let cheriv2 : Model.packed = (module Cheri.V2)
let cheriv3 : Model.packed = (module Cheri.V3)

let all = [ pdp11; hardbound; mpx; relaxed; strict; cheriv2; cheriv3 ]

let name (m : Model.packed) =
  let module M = (val m) in
  M.name

let find n = List.find_opt (fun m -> String.lowercase_ascii (name m) = String.lowercase_ascii n) all

let by_key key =
  match String.lowercase_ascii key with
  | "pdp11" | "x86" | "mips" -> Some pdp11
  | "hardbound" -> Some hardbound
  | "mpx" -> Some mpx
  | "relaxed" -> Some relaxed
  | "strict" -> Some strict
  | "cheriv2" | "v2" -> Some cheriv2
  | "cheriv3" | "v3" -> Some cheriv3
  | _ -> None
