(* HardBound (Devietti et al., ASPLOS 2008) as characterized by the
   paper: bounds ride with every pointer, member derivation keeps the
   whole object's bounds, and any pointer whose provenance the scheme
   loses *fails closed* — a detectable trap rather than an unchecked
   access. IA and MASK therefore break; INT works as long as the
   integer is not modified. *)

let name = "HardBound"
let description = "per-pointer bounds, fail-closed on lost provenance"
let target = Minic.Layout.mips_target
let enforces_const = false

type ptr = Bounds_table.ptr
type heap = Bounds_table.heap

let create = Bounds_table.create
let null = Bounds_table.null
let is_null = Bounds_table.is_null
let pp_ptr = Bounds_table.pp_ptr
let alloc = Bounds_table.alloc
let free = Bounds_table.free
let add = Bounds_table.add
let diff = Bounds_table.diff
let cmp = Bounds_table.cmp

(* member derivation keeps the original object's bounds *)
let field heap p ~off ~size:_ = add heap p off
let to_int = Bounds_table.to_int
let of_int = Bounds_table.of_int
let intcap_of_int = Bounds_table.intcap_of_int
let intcap_to_int = Bounds_table.intcap_to_int
let intcap_arith = Bounds_table.intcap_arith
let load heap p ~size = Bounds_table.load heap ~fail_open:false p ~size
let store heap p ~size v = Bounds_table.store heap ~fail_open:false p ~size v
let load_ptr heap p = Bounds_table.load_ptr heap ~fail_open:false p
let store_ptr heap p v = Bounds_table.store_ptr heap ~fail_open:false p v
let copy heap ~dst ~src ~len = Bounds_table.copy heap ~fail_open:false ~dst ~src ~len
let make_const = Bounds_table.make_const
