(** Object store shared by every pointer model.

    Objects carry a virtual base address in a single 64-bit address
    space, but their storage is per-object — an access must land
    wholly inside one live-or-freed object. Virtual addresses start at
    4 GiB so that any model truncating a pointer to 32 bits (the WIDE
    idiom) produces an address with no object behind it, exactly as on
    a real 64-bit platform with high mappings. *)

type obj = {
  id : int;
  vbase : int64;
  size : int64;
  data : Bytes.t;
  mutable freed : bool;
  const : bool;
}

type t

val create : unit -> t

val alloc : t -> size:int64 -> const:bool -> obj
(** A fresh object at the next virtual address (32-byte aligned, with
    a guard gap so adjacent objects are never contiguous). *)

val free_obj : t -> obj -> (unit, Fault.t) result
(** Marks freed; double-free is a fault. The storage remains readable
    for models without temporal safety. *)

val find : t -> int64 -> obj option
(** The object whose [vbase, vbase+size) contains the address, live or
    freed. *)

val find_loose : t -> int64 -> obj option
(** Like {!find} but also accepts addresses in the slack region past an
    object's nominal end. *)

val by_id : t -> int -> obj option

val load : ?loose:bool -> obj -> off:int64 -> size:int -> (int64, Fault.t) result
(** Little-endian load within the object; bounds-checked against the
    object's extent (this is the physical access — models add their
    own checks before getting here). With [loose], the check extends
    into the object's slack storage, so unchecked models replicate the
    way small heap overruns silently succeed on real systems. *)

val store : ?loose:bool -> obj -> off:int64 -> size:int -> int64 -> (unit, Fault.t) result
(** Fails with [Const_violation] on const objects. *)

val load_bytes : obj -> off:int64 -> len:int -> (bytes, Fault.t) result
val store_bytes : obj -> off:int64 -> bytes -> (unit, Fault.t) result
