(* Helpers shared by the address-backed pointer models. *)

let resolve ?(loose = false) heap addr ~check_live =
  match (if loose then Flat_heap.find_loose heap addr else Flat_heap.find heap addr) with
  | None ->
      Error (Fault.Invalid_pointer (Printf.sprintf "no object at address 0x%Lx" addr))
  | Some o ->
      if check_live && o.Flat_heap.freed then Error Fault.Use_after_free
      else Ok (o, Int64.sub addr o.Flat_heap.vbase)

(* copy between two resolved ranges, preserving nothing but raw bytes *)
let raw_copy heap ~dst ~src ~len ~check_live =
  let len_i = Int64.to_int len in
  match (resolve heap dst ~check_live, resolve heap src ~check_live) with
  | Error e, _ | _, Error e -> Error e
  | Ok (dobj, doff), Ok (sobj, soff) -> (
      match Flat_heap.load_bytes sobj ~off:soff ~len:len_i with
      | Error e -> Error e
      | Ok b -> Flat_heap.store_bytes dobj ~off:doff b)

let find_base heap addr =
  match Flat_heap.find heap addr with
  | Some o when o.Flat_heap.vbase = addr -> Some o
  | _ -> None
