(* The two CHERI interpretations, as a functor over the ISA revision.

   Pointers are capabilities executed through {!Cheri_core.Cap_ops},
   the same semantics module the ISA simulator uses — so Table 3's
   CHERI rows and the whole-program runs of §5.2 share one definition
   of what the hardware permits. In-memory pointers live in a shadow
   keyed by their (32-byte aligned) storage address, mirroring tagged
   memory: any data store into the granule detags the capability. *)

module Cap = Cheri_core.Capability
module Ops = Cheri_core.Cap_ops
module Perms = Cheri_core.Perms

module type REVISION = sig
  val revision : Ops.revision
  val name : string
  val description : string
end

module Make (R : REVISION) = struct
  let name = R.name
  let description = R.description
  let target = Minic.Layout.cheri_target
  let enforces_const = R.revision = Ops.V2

  type ptr = Cap.t

  type heap = { flat : Flat_heap.t; cap_shadow : (int64, Cap.t) Hashtbl.t }

  let create () = { flat = Flat_heap.create (); cap_shadow = Hashtbl.create 64 }
  let null = Cap.null
  let is_null _ p = Ops.c_ptr_cmp p Cap.null = 0
  let pp_ptr = Cap.pp
  let cap_err f = Error (Fault.Cap f)
  let lift = function Ok v -> Ok v | Error f -> cap_err f

  let alloc heap ~size ~const =
    let o = Flat_heap.alloc heap.flat ~size ~const in
    let perms = if const then Perms.read_only else Perms.all in
    Ok (Cap.make ~base:o.Flat_heap.vbase ~length:size ~perms)

  let free heap p =
    if not (Ops.c_get_tag p) then cap_err Cheri_core.Cap_fault.Tag_violation
    else
      match Model_util.find_base heap.flat (Cap.address p) with
      | Some o -> Flat_heap.free_obj heap.flat o
      | None -> Error (Fault.Invalid_pointer "free of non-allocation address")

  let add _ p d = lift (Ops.ptr_add R.revision p d)
  let diff _ a b = lift (Ops.ptr_sub R.revision a b)
  let cmp _ a b = Ok (Ops.c_ptr_cmp a b)

  (* capabilities keep the bounds of the original object on member
     derivation — the property that makes CONTAINER safe to support *)
  let field heap p ~off ~size:_ = add heap p off
  let to_int _ p = Ok (Ops.cap_to_int p)

  (* a plain integer holds no capability: the reconstructed pointer is
     untagged and will trap on dereference *)
  let of_int _ ~modified:_ v = if v = 0L then Ok Cap.null else Ok (Ops.int_to_cap R.revision v)
  let intcap_of_int _ v = Ops.int_to_cap R.revision v
  let intcap_to_int _ p = Ops.cap_to_int p

  let intcap_arith _ ~f p rhs =
    match R.revision with
    | Ops.V2 -> Error (Fault.Unsupported "intcap_t arithmetic (CHERIv2 supports only store/load)")
    | Ops.V3 ->
        let v = f (Ops.cap_to_int p) rhs in
        lift (Ops.c_set_offset Ops.V3 p (Int64.sub v (Ops.c_get_base p)))

  let data_access heap p ~size ~perm k =
    let addr = Cap.address p in
    match Cap.check_access p ~addr ~size ~perm with
    | Error f -> cap_err f
    | Ok () -> (
        (* no temporal safety in this paper's CHERI: freed objects are
           still reachable through live capabilities *)
        match Model_util.resolve heap.flat addr ~check_live:false with
        | Error e -> Error e
        | Ok (o, off) -> k o off addr)

  let clear_shadow heap addr size =
    let first = Cheri_util.Bits.align_down addr 32 in
    let last = Cheri_util.Bits.align_down (Int64.add addr (Int64.of_int (size - 1))) 32 in
    let rec go a =
      Hashtbl.remove heap.cap_shadow a;
      if Cheri_util.Bits.ult a last then go (Int64.add a 32L)
    in
    go first

  let load heap p ~size =
    data_access heap p ~size ~perm:Perms.Load (fun o off _ -> Flat_heap.load o ~off ~size)

  let store heap p ~size v =
    data_access heap p ~size ~perm:Perms.Store (fun o off addr ->
        match Flat_heap.store o ~off ~size v with
        | Error e -> Error e
        | Ok () ->
            clear_shadow heap addr size;
            Ok ())

  let cap_width = Cap.byte_width

  let store_ptr heap loc v =
    let addr = Cap.address loc in
    if not (Cheri_util.Bits.is_aligned addr cap_width) then Error (Fault.Misaligned addr)
    else
      data_access heap loc ~size:cap_width ~perm:Perms.Store_cap (fun o off _ ->
          let words = Cap.to_words v in
          let rec write i =
            if i = 4 then Ok ()
            else
              match Flat_heap.store o ~off:(Int64.add off (Int64.of_int (8 * i))) ~size:8 words.(i) with
              | Error e -> Error e
              | Ok () -> write (i + 1)
          in
          match write 0 with
          | Error e -> Error e
          | Ok () ->
              clear_shadow heap addr cap_width;
              if Ops.c_get_tag v then Hashtbl.replace heap.cap_shadow addr v;
              Ok ())

  let load_ptr heap loc =
    let addr = Cap.address loc in
    if not (Cheri_util.Bits.is_aligned addr cap_width) then Error (Fault.Misaligned addr)
    else
      data_access heap loc ~size:cap_width ~perm:Perms.Load_cap (fun o off _ ->
          match Hashtbl.find_opt heap.cap_shadow addr with
          | Some c -> Ok c
          | None ->
              (* the granule lost its tag: reconstruct the untagged bit
                 pattern *)
              let rec read i acc =
                if i = 4 then Ok (List.rev acc)
                else
                  match Flat_heap.load o ~off:(Int64.add off (Int64.of_int (8 * i))) ~size:8 with
                  | Error e -> Error e
                  | Ok w -> read (i + 1) (w :: acc)
              in
              (match read 0 [] with
              | Error e -> Error e
              | Ok ws -> Ok (Cap.of_words ~tag:false (Array.of_list ws))))

  let copy heap ~dst ~src ~len =
    let len_i = Int64.to_int len in
    data_access heap src ~size:len_i ~perm:Perms.Load (fun sobj soff src_addr ->
        match Flat_heap.load_bytes sobj ~off:soff ~len:len_i with
        | Error e -> Error e
        | Ok b ->
            data_access heap dst ~size:len_i ~perm:Perms.Store (fun dobj doff dst_addr ->
                match Flat_heap.store_bytes dobj ~off:doff b with
                | Error e -> Error e
                | Ok () ->
                    clear_shadow heap dst_addr len_i;
                    (* tag-preserving copy: move whole, aligned granules *)
                    let rec go d =
                      if d + cap_width <= len_i then begin
                        let s_a = Int64.add src_addr (Int64.of_int d) in
                        let d_a = Int64.add dst_addr (Int64.of_int d) in
                        (if
                           Cheri_util.Bits.is_aligned s_a cap_width
                           && Cheri_util.Bits.is_aligned d_a cap_width
                         then
                           match Hashtbl.find_opt heap.cap_shadow s_a with
                           | Some c -> Hashtbl.replace heap.cap_shadow d_a c
                           | None -> ());
                        go (d + 1)
                      end
                    in
                    go 0;
                    Ok ()))

  let make_const p = Cap.restrict_perms p Perms.read_only
end

module V2 = Make (struct
  let revision = Ops.V2
  let name = "CHERIv2"
  let description = "capabilities without offsets; pointer add shrinks bounds"
end)

module V3 = Make (struct
  let revision = Ops.V3
  let name = "CHERIv3"
  let description = "fat capabilities: (base, bound, offset, permissions)"
end)
