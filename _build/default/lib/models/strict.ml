(* The paper's "Strict interpreter": close to the ideal reading of the
   C standard. Pointers are abstract (object, offset) pairs; they may
   be stored in integers and recovered *only if the integer value was
   not modified* — any arithmetic in integer representation poisons
   the value. Pointer arithmetic on the abstract form is fine
   (CONTAINER, SUB, II all work); IA and MASK do not. *)

let name = "Strict"
let description = "abstract (object, offset) pairs; int roundtrip only if unmodified"
let target = Minic.Layout.mips_target
let enforces_const = false

type ptr =
  | Null
  | Obj of { id : int; off : int64 }
  | Intval of int64  (* a plain integer living in intcap representation *)
  | Poison of string

type heap = { flat : Flat_heap.t; prov : (int64, int * int64) Hashtbl.t }

let create () = { flat = Flat_heap.create (); prov = Hashtbl.create 64 }
let null = Null
let is_null _ = function Null -> true | Intval 0L -> true | _ -> false

let pp_ptr ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Obj { id; off } -> Format.fprintf ppf "(obj %d, off %Ld)" id off
  | Intval v -> Format.fprintf ppf "int %Ld" v
  | Poison why -> Format.fprintf ppf "poison (%s)" why

let alloc heap ~size ~const =
  let o = Flat_heap.alloc heap.flat ~size ~const in
  Ok (Obj { id = o.Flat_heap.id; off = 0L })

let resolve heap = function
  | Obj { id; off } -> (
      match Flat_heap.by_id heap.flat id with
      | None -> Error (Fault.Invalid_pointer "no such object")
      | Some o -> if o.Flat_heap.freed then Error Fault.Use_after_free else Ok (o, off))
  | Null -> Error (Fault.Invalid_pointer "null dereference")
  | Intval _ -> Error (Fault.Invalid_pointer "dereference of integer value")
  | Poison why -> Error (Fault.Invalid_pointer why)

let free heap p =
  match resolve heap p with
  | Error e -> Error e
  | Ok (o, off) ->
      if off <> 0L then Error (Fault.Invalid_pointer "free of interior pointer")
      else Flat_heap.free_obj heap.flat o

let add _ p d =
  match p with
  | Obj { id; off } -> Ok (Obj { id; off = Int64.add off d })
  | Null -> Ok (Poison "arithmetic on null pointer")
  | Intval v -> Ok (Intval (Int64.add v d))
  | Poison _ -> Ok p

let diff _ a b =
  match (a, b) with
  | Obj x, Obj y when x.id = y.id -> Ok (Int64.sub x.off y.off)
  | _ -> Error (Fault.Unsupported "subtraction of pointers to different objects")

let rank = function Null -> (0, 0L) | Intval v -> (0, v) | Obj { id; off } -> (id, off) | Poison _ -> (-1, 0L)

let cmp _ a b =
  match (a, b) with
  | Poison why, _ | _, Poison why -> Error (Fault.Invalid_pointer why)
  | _ ->
      let ra, oa = rank a and rb, ob = rank b in
      Ok (if ra <> rb then compare ra rb else Int64.compare oa ob)

let field heap p ~off ~size:_ = add heap p off

let vaddr heap = function
  | Obj { id; off } -> (
      match Flat_heap.by_id heap.flat id with
      | Some o -> Some (Int64.add o.Flat_heap.vbase off)
      | None -> None)
  | _ -> None

let to_int heap p =
  match p with
  | Null -> Ok 0L
  | Intval v -> Ok v
  | Poison why -> Error (Fault.Invalid_pointer why)
  | Obj { id; off } -> (
      match vaddr heap p with
      | Some a ->
          Hashtbl.replace heap.prov a (id, off);
          Ok a
      | None -> Error (Fault.Invalid_pointer "no such object"))

let of_int heap ~modified v =
  if v = 0L then Ok Null
  else if modified then Ok (Poison "pointer reconstructed from a modified integer")
  else
    match Hashtbl.find_opt heap.prov v with
    | Some (id, off) -> Ok (Obj { id; off })
    | None -> Ok (Poison "pointer reconstructed from an unknown integer")

let intcap_of_int _ v = Intval v

let intcap_to_int heap = function
  | Null -> 0L
  | Intval v -> v
  | Poison _ -> 0L
  | Obj _ as p -> ( match vaddr heap p with Some a -> a | None -> 0L)

let intcap_arith _heap ~f p rhs =
  match p with
  | Intval v -> Ok (Intval (f v rhs))
  | Null -> Ok (Intval (f 0L rhs))
  | Poison _ -> Ok p
  | Obj _ ->
      (* Strict: once a pointer is treated as an integer and modified,
         it can no longer be recovered *)
      Ok (Poison "arithmetic on pointer in integer representation")

let load heap p ~size =
  match resolve heap p with Error e -> Error e | Ok (o, off) -> Flat_heap.load o ~off ~size

let store heap p ~size v =
  match resolve heap p with Error e -> Error e | Ok (o, off) -> Flat_heap.store o ~off ~size v

(* pointers in memory are stored as their virtual address with a
   value-keyed provenance entry, so an unmodified roundtrip through an
   integer variable reconstructs the pointer *)
let store_ptr heap loc v =
  match v with
  | Null | Intval _ | Poison _ ->
      store heap loc ~size:8 (intcap_to_int heap v)
  | Obj _ -> (
      match to_int heap v with Error e -> Error e | Ok a -> store heap loc ~size:8 a)

let load_ptr heap loc =
  match load heap loc ~size:8 with Error e -> Error e | Ok v -> of_int heap ~modified:false v

let copy heap ~dst ~src ~len =
  match (resolve heap dst, resolve heap src) with
  | Error e, _ | _, Error e -> Error e
  | Ok (dobj, doff), Ok (sobj, soff) -> (
      match Flat_heap.load_bytes sobj ~off:soff ~len:(Int64.to_int len) with
      | Error e -> Error e
      | Ok b -> Flat_heap.store_bytes dobj ~off:doff b)

let make_const p = p
