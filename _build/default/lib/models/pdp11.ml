(* The PDP-11 / x86 / MIPS interpretation: a pointer is an integer
   virtual address; all arithmetic and conversions are integer
   operations; dereference succeeds for any address inside any object,
   live or freed — no spatial or temporal safety whatsoever. Every
   row of Table 3 is "yes" except WIDE, which breaks because 64-bit
   addresses do not fit in 32-bit integers. *)

let name = "x86/MIPS/PDP-11"
let description = "flat addresses, pointers are integers, no checking"
let target = Minic.Layout.mips_target
let enforces_const = false

type ptr = int64
type heap = Flat_heap.t

let create () = Flat_heap.create ()
let null = 0L
let is_null _ p = p = 0L
let pp_ptr ppf p = Format.fprintf ppf "0x%Lx" p

let alloc heap ~size ~const = Ok (Flat_heap.alloc heap ~size ~const).Flat_heap.vbase

let free heap p =
  match Model_util.find_base heap p with
  | Some o -> Flat_heap.free_obj heap o
  | None -> Error (Fault.Invalid_pointer "free of non-allocation address")

let add _ p d = Ok (Int64.add p d)
let diff _ a b = Ok (Int64.sub a b)
let cmp _ a b = Ok (Cheri_util.Bits.ucompare a b)
let field heap p ~off ~size:_ = add heap p off
let to_int _ p = Ok p
let of_int _ ~modified:_ v = Ok v
let intcap_of_int _ v = v
let intcap_to_int _ p = p
let intcap_arith _ ~f p rhs = Ok (f p rhs)

let load heap p ~size =
  match Model_util.resolve ~loose:true heap p ~check_live:false with
  | Error e -> Error e
  | Ok (o, off) -> Flat_heap.load ~loose:true o ~off ~size

let store heap p ~size v =
  match Model_util.resolve ~loose:true heap p ~check_live:false with
  | Error e -> Error e
  | Ok (o, off) -> Flat_heap.store ~loose:true o ~off ~size v

let load_ptr heap p = load heap p ~size:8
let store_ptr heap p v = store heap p ~size:8 v
let copy heap ~dst ~src ~len = Model_util.raw_copy heap ~dst ~src ~len ~check_live:false
let make_const p = p
