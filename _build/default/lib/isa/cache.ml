type t = {
  cname : string;
  sets : int64 array array;  (* sets.(set).(way) = line tag, -1L = invalid *)
  lru : int array array;  (* higher = more recently used *)
  line_bytes : int;
  set_count : int;
  ways : int;
  mutable hits : int;
  mutable misses : int;
  mutable clock : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~size_bytes ~ways ~line_bytes =
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of ways * line size";
  let set_count = size_bytes / (ways * line_bytes) in
  if set_count land (set_count - 1) <> 0 then invalid_arg "Cache.create: set count must be a power of two";
  {
    cname = name;
    sets = Array.make_matrix set_count ways (-1L);
    lru = Array.make_matrix set_count ways 0;
    line_bytes;
    set_count;
    ways;
    hits = 0;
    misses = 0;
    clock = 0;
  }

let name t = t.cname

let access t addr =
  t.clock <- t.clock + 1;
  let line = Int64.shift_right_logical addr (log2 t.line_bytes) in
  let set = Int64.to_int (Int64.rem (Int64.logand line Int64.max_int) (Int64.of_int t.set_count)) in
  let ways = t.sets.(set) in
  let rec find i = if i >= t.ways then None else if ways.(i) = line then Some i else find (i + 1) in
  match find 0 with
  | Some way ->
      t.hits <- t.hits + 1;
      t.lru.(set).(way) <- t.clock;
      true
  | None ->
      t.misses <- t.misses + 1;
      (* evict the least recently used way *)
      let victim = ref 0 in
      for w = 1 to t.ways - 1 do
        if t.lru.(set).(w) < t.lru.(set).(!victim) then victim := w
      done;
      ways.(!victim) <- line;
      t.lru.(set).(!victim) <- t.clock;
      false

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.iter (fun ways -> Array.fill ways 0 (Array.length ways) (-1L)) t.sets;
  Array.iter (fun l -> Array.fill l 0 (Array.length l) 0) t.lru

module Timing = struct
  type config = {
    l1_size : int;
    l1_ways : int;
    l2_size : int;
    l2_ways : int;
    line_bytes : int;
    l1_hit_cycles : int;
    l2_hit_cycles : int;
    memory_cycles : int;
  }

  type hierarchy = { cfg : config; l1 : t; l2 : t }

  let paper_config =
    {
      l1_size = 16 * 1024;
      l1_ways = 2;
      l2_size = 64 * 1024;
      l2_ways = 4;
      line_bytes = 32;
      l1_hit_cycles = 1;
      l2_hit_cycles = 6;
      memory_cycles = 24;
    }

  let create cfg =
    {
      cfg;
      l1 = create ~name:"L1" ~size_bytes:cfg.l1_size ~ways:cfg.l1_ways ~line_bytes:cfg.line_bytes;
      l2 = create ~name:"L2" ~size_bytes:cfg.l2_size ~ways:cfg.l2_ways ~line_bytes:cfg.line_bytes;
    }

  let config h = h.cfg
  let l1 h = h.l1
  let l2 h = h.l2

  let line_cycles h addr =
    if access h.l1 addr then h.cfg.l1_hit_cycles
    else if access h.l2 addr then h.cfg.l1_hit_cycles + h.cfg.l2_hit_cycles
    else h.cfg.l1_hit_cycles + h.cfg.l2_hit_cycles + h.cfg.memory_cycles

  let access_cycles h addr ~size =
    let first = line_cycles h addr in
    let last_byte = Int64.add addr (Int64.of_int (max 0 (size - 1))) in
    let line_of a = Int64.div a (Int64.of_int h.cfg.line_bytes) in
    if size > 0 && line_of last_byte <> line_of addr then first + line_cycles h last_byte
    else first

  let reset_stats h =
    reset_stats h.l1;
    reset_stats h.l2
end
