lib/isa/machine.mli: Cache Cheri_core Cheri_tagmem Format Insn
