lib/isa/cache.ml: Array Int64
