lib/isa/cache.mli:
