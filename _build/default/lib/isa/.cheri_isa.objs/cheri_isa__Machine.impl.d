lib/isa/machine.ml: Array Bits Buffer Cache Char Cheri_core Cheri_tagmem Cheri_util Format Hashtbl Insn Int64 List
