(* Dhrystone 2.1, adapted to the mini-C subset. The paper uses it as
   the CPU-bound, pointer-light benchmark (Figure 2): records, string
   compares, integer arithmetic, and procedure calls in the classic
   proportions, with very little pointer-chasing — so the capability
   ABIs should be within noise of MIPS.

   The classic global Ptr_Glob record chain, the 30-character string
   compare, and Proc_1..Proc_8/Func_1..Func_3 structure are preserved;
   variant records become a discriminated struct, and output is the
   checksum of the globals after the run. *)

type params = { iterations : int }

let default = { iterations = 12_000 }

let source { iterations } =
  Printf.sprintf
    {|
struct record {
  struct record *ptr_comp;
  long discr;
  long enum_comp;
  long int_comp;
  char str_comp[31];
};

long int_glob = 0;
long bool_glob = 0;
char ch1_glob = 'A';
char ch2_glob = 'B';
long arr1_glob[50];
long arr2_glob[100];
struct record *ptr_glob;
struct record *next_ptr_glob;

long str_copy(char *dst, const char *src) {
  long i = 0;
  while (src[i]) { dst[i] = src[i]; i++; }
  dst[i] = 0;
  return i;
}

long str_cmp(const char *a, const char *b) {
  long i = 0;
  while (a[i] && a[i] == b[i]) i++;
  return a[i] - b[i];
}

long func_1(long ch1, long ch2) {
  long ch = ch1;
  if (ch != ch2) return 0;
  ch1_glob = ch;
  return 1;
}

long func_2(char *str1, char *str2) {
  long int_loc = 2;
  while (int_loc <= 2)
    if (func_1(str1[int_loc], str2[int_loc + 1]) == 0) int_loc = int_loc + 1;
    else break;
  if (str_cmp(str1, str2) > 0) {
    int_loc = int_loc + 7;
    int_glob = int_loc;
    return 1;
  }
  return 0;
}

long func_3(long enum_par) { return enum_par == 2 ? 1 : 0; }

void proc_7(long int1, long int2, long *int_out) { *int_out = int1 + int2 + 2; }

void proc_8(long *arr1, long *arr2, long int1, long int2) {
  long idx = int1 + 5;
  arr1[idx] = int2;
  arr1[idx + 1] = arr1[idx];
  arr1[idx + 30] = idx;
  for (long i = idx; i <= idx + 1; i++) arr2[idx + i - idx] = idx;
  arr2[idx + 20] = arr1[idx];
  int_glob = 5;
}

void proc_6(long enum_par, long *enum_out) {
  *enum_out = enum_par;
  if (!func_3(enum_par)) *enum_out = 3;
  if (enum_par == 0) *enum_out = 0;
  if (enum_par == 1) *enum_out = bool_glob ? 0 : 2;
  if (enum_par == 2) *enum_out = 1;
  if (enum_par == 4) *enum_out = 2;
}

void proc_5(void) {
  ch1_glob = 'A';
  bool_glob = 0;
}

void proc_4(void) {
  long bool_loc = ch1_glob == 'A' ? 1 : 0;
  bool_glob = bool_loc | bool_glob;
  ch2_glob = 'B';
}

void proc_3(struct record **ptr_out) {
  if (ptr_glob) *ptr_out = ptr_glob->ptr_comp;
  proc_7(10, int_glob, &ptr_glob->int_comp);
}

void proc_2(long *int_out) {
  long int_loc = *int_out + 10;
  long enum_loc = 0;
  long done = 0;
  while (!done) {
    if (ch1_glob == 'A') {
      int_loc = int_loc - 1;
      *int_out = int_loc - int_glob;
      enum_loc = 1;
    }
    if (enum_loc == 1) done = 1;
  }
}

void proc_1(struct record *ptr_val) {
  struct record *next = ptr_val->ptr_comp;
  *ptr_val->ptr_comp = *ptr_glob;
  ptr_val->int_comp = 5;
  next->int_comp = ptr_val->int_comp;
  next->ptr_comp = ptr_val->ptr_comp;
  proc_3(&next->ptr_comp);
  if (next->discr == 0) {
    next->int_comp = 6;
    proc_6(ptr_val->enum_comp, &next->enum_comp);
    next->ptr_comp = ptr_glob->ptr_comp;
    proc_7(next->int_comp, 10, &next->int_comp);
  } else {
    *ptr_val = *ptr_val->ptr_comp;
  }
}

int main(void) {
  next_ptr_glob = (struct record *)malloc(sizeof(struct record));
  ptr_glob = (struct record *)malloc(sizeof(struct record));
  ptr_glob->ptr_comp = next_ptr_glob;
  ptr_glob->discr = 0;
  ptr_glob->enum_comp = 2;
  ptr_glob->int_comp = 40;
  str_copy(ptr_glob->str_comp, "DHRYSTONE PROGRAM, SOME STRING");
  char str1_loc[31];
  str_copy(str1_loc, "DHRYSTONE PROGRAM, 1'ST STRING");
  arr2_glob[8 + 7] = 10;

  long runs = %d;
  for (long i = 0; i < runs; i++) {
    proc_5();
    proc_4();
    long int1_loc = 2;
    long int2_loc = 3;
    char str2_loc[31];
    str_copy(str2_loc, "DHRYSTONE PROGRAM, 2'ND STRING");
    long enum_loc = 1;
    bool_glob = !func_2(str1_loc, str2_loc);
    long int3_loc = 0;
    while (int1_loc < int2_loc) {
      int3_loc = 5 * int1_loc - int2_loc;
      proc_7(int1_loc, int2_loc, &int3_loc);
      int1_loc = int1_loc + 1;
    }
    proc_8(arr1_glob, arr2_glob, int1_loc, int3_loc);
    proc_1(ptr_glob);
    for (long ch = 'A'; ch <= ch2_glob; ch++)
      if (enum_loc == func_1(ch, 'C')) enum_loc = 0;
    int3_loc = int2_loc * int1_loc;
    int2_loc = int3_loc / 3;
    int2_loc = 7 * (int3_loc - int2_loc) - int1_loc;
    proc_2(&int1_loc);
  }

  long check = int_glob + bool_glob + ch1_glob + ch2_glob + arr1_glob[8]
             + arr2_glob[15] + ptr_glob->int_comp + next_ptr_glob->int_comp;
  print_int(check);
  print_char('\n');
  return 0;
}
|}
    iterations
