(* Table 4: lines of code changed to port each workload from MIPS to
   CHERIv2 and CHERIv3.

   Two mechanical measures, mirroring how the paper's counts were
   produced:

   - *annotation* lines: lines declaring pointer-typed variables or
     parameters, which the hybrid ports mark with [__capability] (the
     paper: "lines whose only changes are to mark pointers as
     capabilities");
   - *semantic* lines: lines that had to be rewritten because the ABI
     cannot express them — counted as the symmetric difference between
     the natural source and the ported variant. Olden and Dhrystone
     need none on either revision; the tcpdump dissector needs its
     pointer-subtraction style rewritten for CHERIv2 but only its
     packet-buffer access qualifier for CHERIv3 (the paper's
     1,577-vs-2-line story). *)

type row = {
  program : string;
  baseline_loc : int;
  annotation : int;  (* same for v2 and v3: hybrid-ABI pointer marking *)
  semantic_v2 : int;
  semantic_v3 : int;
}

let non_blank_lines src =
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let t = String.trim l in
         t <> "" && not (String.length t >= 2 && String.sub t 0 2 = "/*") && t <> "*/")

let count_lines src = List.length (non_blank_lines src)

(* a line "declares a pointer" when it contains a pointer declarator:
   a type keyword followed eventually by '*' before an identifier.
   This over-approximates mildly, like the paper's machine-assisted
   counting. *)
let is_pointer_decl_line line =
  let t = String.trim line in
  let has_star = String.contains t '*' in
  let starts_with_type =
    List.exists
      (fun kw ->
        String.length t > String.length kw
        && String.sub t 0 (String.length kw) = kw)
      [ "int "; "long "; "char "; "short "; "unsigned "; "struct "; "const "; "void " ]
  in
  has_star && starts_with_type
  && not (String.length t >= 2 && String.sub t 0 2 = "/*")

let annotation_lines src =
  List.length (List.filter is_pointer_decl_line (non_blank_lines src))

(* symmetric line difference, as a porting-diff size proxy *)
let semantic_diff a b =
  let count lines =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun l ->
        let l = String.trim l in
        Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
      lines;
    tbl
  in
  let ta = count (non_blank_lines a) and tb = count (non_blank_lines b) in
  let removed = ref 0 in
  Hashtbl.iter
    (fun l n ->
      let m = Option.value ~default:0 (Hashtbl.find_opt tb l) in
      if n > m then removed := !removed + (n - m))
    ta;
  (* count lines that changed (max of added/removed halves, like a
     unified-diff "lines changed" figure) *)
  let added = ref 0 in
  Hashtbl.iter
    (fun l n ->
      let m = Option.value ~default:0 (Hashtbl.find_opt ta l) in
      if n > m then added := !added + (n - m))
    tb;
  max !removed !added

let table4 () : row list =
  let olden_src =
    String.concat "\n" (List.map (fun (k : Olden.kernel) -> k.Olden.source Olden.default) Olden.kernels)
  in
  let dhry = Dhrystone.source Dhrystone.default in
  let tcp = Tcpdump_sim.source Tcpdump_sim.default in
  let tcp_v2 = Tcpdump_sim.source_v2 Tcpdump_sim.default in
  [
    {
      program = "Olden";
      baseline_loc = count_lines olden_src;
      annotation = annotation_lines olden_src;
      semantic_v2 = 0;
      semantic_v3 = 0;
    };
    {
      program = "Dhrystone";
      baseline_loc = count_lines dhry;
      annotation = annotation_lines dhry;
      semantic_v2 = 0;
      semantic_v3 = 0;
    };
    {
      program = "tcpdump";
      baseline_loc = count_lines tcp;
      annotation = annotation_lines tcp;
      semantic_v2 = semantic_diff tcp tcp_v2;
      (* the v3 port's only semantic change: granting the dissector
         read-only access to the packet rather than the whole buffer —
         2 lines in the real port, 1 qualifier line here *)
      semantic_v3 = 1;
    };
  ]

let print ppf rows =
  Format.fprintf ppf
    "Table 4: lines changed to port from MIPS to CHERIv2 and CHERIv3@.";
  Format.fprintf ppf "%-12s%10s%14s%14s%14s@." "PROGRAM" "LoC" "Annotation" "Sem. v2" "Sem. v3";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s%10d%10d (%2.0f%%)%14d%14d@." r.program r.baseline_loc r.annotation
        (100. *. float_of_int r.annotation /. float_of_int r.baseline_loc)
        r.semantic_v2 r.semantic_v3)
    rows
