(* The zlib experiment (Figure 4): a deflate-style LZ77 compressor run
   over inputs of varying size.

   The paper compiled zlib itself in the pure-capability ABI in two
   flavours: one passing capabilities straight across the library
   boundary (no measurable overhead), and one that preserves binary
   compatibility by copying buffers at the boundary (~21 % overhead,
   independent of file size, because the copy cost scales with the
   data exactly as compression does). [source] takes a [boundary_copy]
   flag that inserts those copies around every compress() call.

   The compressor is a real greedy LZ77 with a hash-head match table —
   enough structure that compression work dominates and the ABI
   overheads show up in the same proportions. Input data is generated
   with a PRNG biased toward repeated phrases so matches actually
   occur. *)

type params = { input_size : int; boundary_copy : bool }

let default = { input_size = 64 * 1024; boundary_copy = false }

let source { input_size; boundary_copy } =
  let copy_in, copy_call, result_var =
    if boundary_copy then
      ( {|
    /* ABI-boundary copy in: the caller's buffer is copied into a
       layout-compatible shadow before entering the library */
    byte_copy(shadow_in, data, n);
|},
        "long out_len = compress_buf(shadow_in, n, shadow_out);\n    byte_copy(out, shadow_out, out_len);",
        "out_len" )
    else ("", "long out_len = compress_buf(data, n, out);", "out_len")
  in
  Printf.sprintf
    {|
unsigned long rng_state = 19950308;

long rng(void) {
  unsigned long x = rng_state;
  x = x ^ (x << 13);
  x = x ^ (x >> 7);
  x = x ^ (x << 17);
  rng_state = x;
  return (long)(x >> 1);
}

void byte_copy(unsigned char *dst, const unsigned char *src, long n) {
  for (long i = 0; i < n; i++) dst[i] = src[i];
}

/* fill the input with compressible text-like data: words from a small
   dictionary plus occasional noise */
void gen_input(unsigned char *buf, long n) {
  long pos = 0;
  while (pos < n) {
    long w = rng() %% 16;
    long wlen = 3 + (w %% 6);
    for (long i = 0; i < wlen && pos < n; i++) {
      buf[pos] = 'a' + ((w * 7 + i) %% 26);
      pos++;
    }
    if (pos < n) { buf[pos] = ' '; pos++; }
    if (rng() %% 10 == 0 && pos < n) { buf[pos] = rng() %% 256; pos++; }
  }
}

long hash3(const unsigned char *p) {
  return (((long)p[0] << 6) ^ ((long)p[1] << 3) ^ (long)p[2]) & 4095;
}

long head[4096];

/* greedy LZ77: emits (match_len, dist) pairs and literal runs.
   output format: 0x00 len <literals> | 0x01 len dist_hi dist_lo */
long compress_buf(const unsigned char *in, long n, unsigned char *out) {
  for (long i = 0; i < 4096; i++) head[i] = -1;
  long ip = 0;
  long op = 0;
  long lit_start = 0;
  while (ip + 3 <= n) {
    long h = hash3(in + ip);
    long cand = head[h];
    head[h] = ip;
    long match_len = 0;
    if (cand >= 0 && ip - cand < 32768) {
      long max = n - ip;
      if (max > 255) max = 255;
      while (match_len < max && in[cand + match_len] == in[ip + match_len])
        match_len++;
    }
    if (match_len >= 4) {
      /* flush pending literals */
      long lits = ip - lit_start;
      while (lits > 0) {
        long chunk = lits > 255 ? 255 : lits;
        out[op] = 0; op++;
        out[op] = chunk; op++;
        byte_copy(out + op, in + lit_start, chunk);
        op = op + chunk;
        lit_start = lit_start + chunk;
        lits = lits - chunk;
      }
      long dist = ip - cand;
      out[op] = 1; op++;
      out[op] = match_len; op++;
      out[op] = (dist >> 8) & 255; op++;
      out[op] = dist & 255; op++;
      /* enter skipped positions into the hash table */
      for (long k = 1; k < match_len && ip + k + 3 <= n; k++)
        head[hash3(in + ip + k)] = ip + k;
      ip = ip + match_len;
      lit_start = ip;
    } else {
      ip++;
    }
  }
  /* trailing literals */
  long lits = n - lit_start;
  while (lits > 0) {
    long chunk = lits > 255 ? 255 : lits;
    out[op] = 0; op++;
    out[op] = chunk; op++;
    byte_copy(out + op, in + lit_start, chunk);
    op = op + chunk;
    lit_start = lit_start + chunk;
    lits = lits - chunk;
  }
  return op;
}

/* decompressor, used to verify the roundtrip */
long decompress_buf(const unsigned char *in, long n, unsigned char *out) {
  long ip = 0;
  long op = 0;
  while (ip < n) {
    long tag = in[ip]; ip++;
    if (tag == 0) {
      long len = in[ip]; ip++;
      byte_copy(out + op, in + ip, len);
      ip = ip + len;
      op = op + len;
    } else {
      long len = in[ip]; ip++;
      long dist = ((long)in[ip] << 8) | (long)in[ip + 1];
      ip = ip + 2;
      for (long k = 0; k < len; k++) { out[op] = out[op - dist]; op++; }
    }
  }
  return op;
}

int main(void) {
  long n = %d;
  unsigned char *data = (unsigned char *)malloc(n);
  unsigned char *out = (unsigned char *)malloc(n + n / 2 + 64);
  unsigned char *back = (unsigned char *)malloc(n + 64);
  unsigned char *shadow_in = (unsigned char *)malloc(n + 64);
  unsigned char *shadow_out = (unsigned char *)malloc(n + n / 2 + 64);
  gen_input(data, n);
%s
  %s
  long back_len = decompress_buf(out, %s, back);
  long ok = back_len == n ? 1 : 0;
  for (long i = 0; i < n && ok; i++)
    if (back[i] != data[i]) ok = 0;
  print_str("in=");
  print_int(n);
  print_str(" out=");
  print_int(%s);
  print_str(" roundtrip=");
  print_int(ok);
  print_char('\n');
  return ok ? 0 : 1;
}
|}
    input_size copy_in copy_call result_var result_var
