(* The tcpdump experiment (Figure 3 and the Table 4 porting story).

   Real tcpdump dissects packets with "extensive pointer arithmetic —
   ironically, frequently in service of hand-crafted software bounds
   checking" (§5.2). This reproduction synthesizes a deterministic
   packet trace in-program (standing in for the OSDI'06 pcap trace,
   which we do not have) and dissects Ethernet/IPv4/ARP + TCP/UDP/ICMP
   headers in exactly that style: cursor pointers, end-pointer bounds
   checks, and pointer subtraction for remaining-length computations.

   Two source variants exist, mirroring the paper's porting effort:
   - the natural version ([source]), compilable for MIPS and CHERIv3;
   - the CHERIv2 port ([source_v2]), with pointer subtraction and
     backwards arithmetic rewritten into index arithmetic — the
     mechanical transformation that cost ~1.6 kLoC in the real port.
   [Port_audit] counts the lines that differ. *)

type params = { packets : int; passes : int }

let default = { packets = 2_000; passes = 4 }

let generator =
  {|
unsigned long rng_state = 420061106;

long rng(void) {
  unsigned long x = rng_state;
  x = x ^ (x << 13);
  x = x ^ (x >> 7);
  x = x ^ (x << 17);
  rng_state = x;
  return (long)(x >> 1);
}

void put16(unsigned char *p, long v) {
  p[0] = (v >> 8) & 255;
  p[1] = v & 255;
}

void put32(unsigned char *p, long v) {
  put16(p, (v >> 16) & 65535);
  put16(p + 2, v & 65535);
}

/* Build one packet at [p]; returns its length. Mix modelled on a
   campus trace: mostly TCP, some UDP, a little ICMP and ARP. */
long gen_packet(unsigned char *p) {
  long kind = rng() % 100;
  long i;
  for (i = 0; i < 6; i++) p[i] = rng() & 255;       /* dst mac */
  for (i = 6; i < 12; i++) p[i] = rng() & 255;      /* src mac */
  if (kind < 4) {
    /* ARP */
    put16(p + 12, 0x0806);
    put16(p + 14, 1);          /* hw type */
    put16(p + 16, 0x0800);     /* proto */
    p[18] = 6; p[19] = 4;
    put16(p + 20, (rng() % 2) + 1);  /* op */
    for (i = 22; i < 42; i++) p[i] = rng() & 255;
    return 42;
  }
  put16(p + 12, 0x0800);       /* IPv4 */
  long proto = 6;
  if (kind < 24) proto = 17;   /* UDP */
  if (kind < 28) proto = 1;    /* ICMP */
  long payload = rng() % 48;
  long l4 = 20;                /* TCP header */
  if (proto == 17) l4 = 8;
  if (proto == 1) l4 = 8;
  long totlen = 20 + l4 + payload;
  unsigned char *ip = p + 14;
  ip[0] = 0x45;                /* version 4, ihl 5 */
  ip[1] = 0;
  put16(ip + 2, totlen);
  put16(ip + 4, rng() & 65535);   /* id */
  put16(ip + 6, 0);
  ip[8] = 64;                  /* ttl */
  ip[9] = proto;
  put16(ip + 10, 0);           /* checksum (unchecked) */
  put32(ip + 12, rng());       /* src */
  put32(ip + 16, rng());       /* dst */
  unsigned char *l4p = ip + 20;
  if (proto == 6) {
    put16(l4p, 1024 + (rng() % 60000));
    put16(l4p + 2, (rng() % 4) == 0 ? 80 : 1024 + (rng() % 60000));
    put32(l4p + 4, rng());
    put32(l4p + 8, rng());
    l4p[12] = 0x50;            /* data offset 5 */
    l4p[13] = 2 + ((rng() % 8) << 2);  /* flags */
    put16(l4p + 14, 8192);
    put16(l4p + 16, 0);
    put16(l4p + 18, 0);
  } else {
    put16(l4p, 1024 + (rng() % 60000));
    put16(l4p + 2, 53);
    put16(l4p + 4, l4 + payload);
    put16(l4p + 6, 0);
  }
  for (i = 0; i < payload; i++) l4p[l4 + i] = rng() & 255;
  return 14 + totlen;
}
|}

(* the natural, pointer-arithmetic dissector (MIPS / CHERIv3) *)
let dissector_v3 =
  {|
long n_tcp = 0;
long n_udp = 0;
long n_icmp = 0;
long n_arp = 0;
long n_other = 0;
long n_short = 0;
long port_sum = 0;
long flag_hist = 0;

long get16(const unsigned char *p) { return ((long)p[0] << 8) | (long)p[1]; }

void parse_tcp(const unsigned char *p, const unsigned char *end) {
  if (p + 20 > end) { n_short++; return; }
  long sport = get16(p);
  long dport = get16(p + 2);
  long doff = (p[12] >> 4) & 15;
  const unsigned char *data = p + doff * 4;
  if (data > end) { n_short++; return; }
  n_tcp++;
  port_sum = port_sum + sport + dport;
  flag_hist = flag_hist + (p[13] & 63);
  /* remaining payload length via pointer subtraction */
  long paylen = end - data;
  if (paylen < 0) n_short++;
}

void parse_udp(const unsigned char *p, const unsigned char *end) {
  if (p + 8 > end) { n_short++; return; }
  n_udp++;
  port_sum = port_sum + get16(p) + get16(p + 2);
}

void parse_ipv4(const unsigned char *p, const unsigned char *end) {
  if (p + 20 > end) { n_short++; return; }
  long ihl = (p[0] & 15) * 4;
  long totlen = get16(p + 2);
  const unsigned char *ip_end = p + totlen;
  if (ip_end > end) ip_end = end;
  const unsigned char *l4 = p + ihl;
  if (l4 > ip_end) { n_short++; return; }
  long proto = p[9];
  if (proto == 6) parse_tcp(l4, ip_end);
  else if (proto == 17) parse_udp(l4, ip_end);
  else if (proto == 1) n_icmp++;
  else n_other++;
}

void parse_eth(const unsigned char *p, long caplen) {
  const unsigned char *end = p + caplen;
  if (p + 14 > end) { n_short++; return; }
  long ethertype = get16(p + 12);
  if (ethertype == 0x0800) parse_ipv4(p + 14, end);
  else if (ethertype == 0x0806) n_arp++;
  else n_other++;
}
|}

(* the CHERIv2 port: no pointer subtraction, no backwards arithmetic —
   cursors become base + index pairs *)
let dissector_v2 =
  {|
long n_tcp = 0;
long n_udp = 0;
long n_icmp = 0;
long n_arp = 0;
long n_other = 0;
long n_short = 0;
long port_sum = 0;
long flag_hist = 0;

long get16_at(const unsigned char *p, long off) {
  return ((long)p[off] << 8) | (long)p[off + 1];
}

void parse_tcp(const unsigned char *p, long off, long end) {
  if (off + 20 > end) { n_short++; return; }
  long sport = get16_at(p, off);
  long dport = get16_at(p, off + 2);
  long doff = (p[off + 12] >> 4) & 15;
  long data = off + doff * 4;
  if (data > end) { n_short++; return; }
  n_tcp++;
  port_sum = port_sum + sport + dport;
  flag_hist = flag_hist + (p[off + 13] & 63);
  /* remaining payload length via index arithmetic */
  long paylen = end - data;
  if (paylen < 0) n_short++;
}

void parse_udp(const unsigned char *p, long off, long end) {
  if (off + 8 > end) { n_short++; return; }
  n_udp++;
  port_sum = port_sum + get16_at(p, off) + get16_at(p, off + 2);
}

void parse_ipv4(const unsigned char *p, long off, long end) {
  if (off + 20 > end) { n_short++; return; }
  long ihl = (p[off] & 15) * 4;
  long totlen = get16_at(p, off + 2);
  long ip_end = off + totlen;
  if (ip_end > end) ip_end = end;
  long l4 = off + ihl;
  if (l4 > ip_end) { n_short++; return; }
  long proto = p[off + 9];
  if (proto == 6) parse_tcp(p, l4, ip_end);
  else if (proto == 17) parse_udp(p, l4, ip_end);
  else if (proto == 1) n_icmp++;
  else n_other++;
}

void parse_eth(const unsigned char *p, long caplen) {
  long end = caplen;
  if (14 > end) { n_short++; return; }
  long ethertype = get16_at(p, 12);
  if (ethertype == 0x0800) parse_ipv4(p, 14, end);
  else if (ethertype == 0x0806) n_arp++;
  else n_other++;
}
|}

let main { packets; passes } =
  Printf.sprintf
    {|
int main(void) {
  long npackets = %d;
  /* worst-case packet is 42 or 14+20+20+48 = 102 bytes; record = 2+len */
  unsigned char *buf = (unsigned char *)malloc(npackets * 104 + 16);
  long *offsets = (long *)malloc((npackets + 1) * sizeof(long));
  long pos = 0;
  for (long i = 0; i < npackets; i++) {
    offsets[i] = pos;
    long len = gen_packet(buf + pos + 2);
    buf[pos] = (len >> 8) & 255;
    buf[pos + 1] = len & 255;
    pos = pos + 2 + len;
  }
  offsets[npackets] = pos;
  for (int pass = 0; pass < %d; pass++) {
    for (long i = 0; i < npackets; i++) {
      long off = offsets[i];
      long len = ((long)buf[off] << 8) | (long)buf[off + 1];
      parse_eth(buf + off + 2, len);
    }
  }
  print_str("tcp=");   print_int(n_tcp);
  print_str(" udp=");  print_int(n_udp);
  print_str(" icmp="); print_int(n_icmp);
  print_str(" arp=");  print_int(n_arp);
  print_str(" other=");print_int(n_other);
  print_str(" short=");print_int(n_short);
  print_str(" ports=");print_int(port_sum %% 65536);
  print_str(" flags=");print_int(flag_hist %% 65536);
  print_char('\n');
  return 0;
}
|}
    packets passes

let source params = generator ^ dissector_v3 ^ main params
let source_v2 params = generator ^ dissector_v2 ^ main params
