lib/workloads/zlib_like.ml: Printf
