lib/workloads/dhrystone.ml: Printf
