lib/workloads/figures.ml: Cheri_compiler Cheri_core Dhrystone Format List Olden Runner Tcpdump_sim Zlib_like
