lib/workloads/runner.ml: Cheri_compiler Cheri_core Cheri_isa Format List Minic Printf
