lib/workloads/port_audit.ml: Dhrystone Format Hashtbl List Olden Option String Tcpdump_sim
