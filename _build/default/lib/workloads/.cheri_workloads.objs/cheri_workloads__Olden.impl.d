lib/workloads/olden.ml: Printf
