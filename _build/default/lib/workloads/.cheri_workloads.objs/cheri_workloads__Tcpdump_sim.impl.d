lib/workloads/tcpdump_sim.ml: Printf
