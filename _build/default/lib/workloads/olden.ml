(* The Olden kernels used in Figure 1 — Bisort, MST, TreeAdd,
   Perimeter — rewritten in mini-C. Olden is "heavy in pointer use and
   so demonstrates a worst case for CHERI" (§5.2): every kernel builds
   and walks linked structures whose nodes quadruple in size when
   pointers become 32-byte capabilities.

   The kernels are deterministic (xorshift PRNG with fixed seed) and
   print a checksum, so the three ABIs can be differentially checked
   before being timed. Parameters are scaled to simulator-friendly
   sizes; the paper ran the CHERI ISCA paper's parameters on a 100 MHz
   FPGA, and only the relative cycle counts matter here. *)

type params = { scale : int }

let default = { scale = 2 }

(* shared preamble: PRNG *)
let prng =
  {|
unsigned long rng_state = 88172645463325252;

long rng(void) {
  unsigned long x = rng_state;
  x = x ^ (x << 13);
  x = x ^ (x >> 7);
  x = x ^ (x << 17);
  rng_state = x;
  return (long)(x >> 1);
}
|}

(* TreeAdd: build a balanced binary tree, sum it repeatedly. *)
let treeadd { scale } =
  Printf.sprintf
    {|
%s
struct tree { struct tree *left; struct tree *right; long value; };

struct tree *build(long depth) {
  struct tree *t = (struct tree *)malloc(sizeof(struct tree));
  t->value = rng() %% 100;
  if (depth > 1) {
    t->left = build(depth - 1);
    t->right = build(depth - 1);
  } else {
    t->left = (struct tree *)0;
    t->right = (struct tree *)0;
  }
  return t;
}

long tree_add(struct tree *t) {
  if (!t) return 0;
  return t->value + tree_add(t->left) + tree_add(t->right);
}

int main(void) {
  struct tree *t = build(%d);
  long total = 0;
  for (int i = 0; i < %d; i++) total = total + tree_add(t);
  print_int(total);
  print_char('\n');
  return 0;
}
|}
    prng (10 + scale) (8 * scale)

(* Bisort: Olden's bitonic sort over a perfect binary tree — recursive
   merges that exchange subtree values. *)
let bisort { scale } =
  Printf.sprintf
    {|
%s
struct node { struct node *l; struct node *r; long v; };

struct node *build(long depth) {
  struct node *n = (struct node *)malloc(sizeof(struct node));
  n->v = rng() %% 65536;
  if (depth > 1) {
    n->l = build(depth - 1);
    n->r = build(depth - 1);
  } else {
    n->l = (struct node *)0;
    n->r = (struct node *)0;
  }
  return n;
}

void swap_values(struct node *a, struct node *b) {
  long t = a->v;
  a->v = b->v;
  b->v = t;
}

/* exchange the values of two whole subtrees */
void swap_trees(struct node *a, struct node *b) {
  if (!a || !b) return;
  swap_values(a, b);
  swap_trees(a->l, b->l);
  swap_trees(a->r, b->r);
}

/* bitonic merge: force direction dir (0 ascending) on the tree */
void bimerge(struct node *t, long dir) {
  if (!t || !t->l) return;
  long lmax = t->l->v;
  long rmax = t->r->v;
  long exchange = 0;
  if (dir == 0 && lmax > rmax) exchange = 1;
  if (dir != 0 && lmax < rmax) exchange = 1;
  if (exchange) swap_trees(t->l, t->r);
  bimerge(t->l, dir);
  bimerge(t->r, dir);
}

void bisort_rec(struct node *t, long dir) {
  if (!t || !t->l) return;
  bisort_rec(t->l, 0);
  bisort_rec(t->r, 1);
  bimerge(t, dir);
}

long checksum(struct node *t) {
  if (!t) return 0;
  return (t->v + 31 * checksum(t->l) + 17 * checksum(t->r)) %% 1000003;
}

int main(void) {
  struct node *t = build(%d);
  for (int i = 0; i < %d; i++) bisort_rec(t, i %% 2);
  print_int(checksum(t));
  print_char('\n');
  return 0;
}
|}
    prng (9 + scale) (2 * scale)

(* MST: Prim's algorithm over a linked vertex list with a synthetic
   weight function (Olden builds the graph with hash tables; the
   O(V^2) pointer-walking relaxation loop is the measured kernel). *)
let mst { scale } =
  Printf.sprintf
    {|
%s
struct vert { struct vert *next; long id; long dist; long done; };

long weight(long a, long b) {
  unsigned long x = (unsigned long)(a * 31 + b * 17 + 7);
  x = x ^ (x << 13);
  x = x ^ (x >> 7);
  return (long)(x %% 2048) + 1;
}

int main(void) {
  long nverts = %d;
  struct vert *verts = (struct vert *)0;
  for (long i = 0; i < nverts; i++) {
    struct vert *v = (struct vert *)malloc(sizeof(struct vert));
    v->id = i;
    v->dist = 0x7fffffff;
    v->done = 0;
    v->next = verts;
    verts = v;
  }
  verts->dist = 0;
  long total = 0;
  for (long k = 0; k < nverts; k++) {
    /* find the closest unfinished vertex */
    struct vert *best = (struct vert *)0;
    for (struct vert *v = verts; v; v = v->next)
      if (!v->done && (!best || v->dist < best->dist)) best = v;
    best->done = 1;
    total = total + best->dist;
    /* relax every other vertex through it */
    for (struct vert *v = verts; v; v = v->next)
      if (!v->done) {
        long w = weight(best->id, v->id);
        if (w < v->dist) v->dist = w;
      }
  }
  print_int(total);
  print_char('\n');
  return 0;
}
|}
    prng (192 * scale)

(* Perimeter: quadtree of a synthetic image; recursive walk summing the
   boundary contribution of black leaves. *)
let perimeter { scale } =
  Printf.sprintf
    {|
%s
struct quad {
  struct quad *nw; struct quad *ne; struct quad *sw; struct quad *se;
  long color;        /* 0 white, 1 black, 2 grey (internal) */
};

struct quad *build(long depth) {
  struct quad *q = (struct quad *)malloc(sizeof(struct quad));
  if (depth == 0 || rng() %% 16 == 0) {
    q->color = rng() %% 2;
    q->nw = (struct quad *)0;
    q->ne = (struct quad *)0;
    q->sw = (struct quad *)0;
    q->se = (struct quad *)0;
  } else {
    q->color = 2;
    q->nw = build(depth - 1);
    q->ne = build(depth - 1);
    q->sw = build(depth - 1);
    q->se = build(depth - 1);
  }
  return q;
}

long perim(struct quad *q, long size) {
  if (!q) return 0;
  if (q->color == 1) return 4 * size;
  if (q->color == 0) return 0;
  return perim(q->nw, size / 2) + perim(q->ne, size / 2)
       + perim(q->sw, size / 2) + perim(q->se, size / 2);
}

int main(void) {
  struct quad *q = build(%d);
  long total = 0;
  for (int i = 0; i < %d; i++) total = total + perim(q, 4096);
  print_int(total);
  print_char('\n');
  return 0;
}
|}
    prng (5 + scale) (12 * scale)

type kernel = { kname : string; source : params -> string }

let kernels =
  [
    { kname = "Bisort"; source = bisort };
    { kname = "MST"; source = mst };
    { kname = "TreeAdd"; source = treeadd };
    { kname = "Perimeter"; source = perimeter };
  ]
