lib/gc/gc.ml: Bits Cheri_core Cheri_tagmem Cheri_util Hashtbl Int64 Queue
