lib/gc/gc.mli: Cheri_core Cheri_tagmem
