(** A relocating, generational, copying garbage collector over tagged
    memory — the collector sketched in §4.2 of the paper: "We have
    implemented a relocating generational garbage collector for
    CHERIv3 that uses the tagged memory to differentiate between
    capabilities and other data."

    Tagged memory makes the collector *accurate without cooperation*:
    a granule's tag says definitively whether it holds a pointer, so
    the collector never mistakes an integer for a reference (the §3.6
    "garbage hoarding" problem of conservative collectors) and never
    misses a reference either — integers cannot hide capabilities.

    The heap is split into a nursery and two tenured semispaces.
    Allocation bumps the nursery; a minor collection copies live
    nursery objects into tenured space (promotion on first survival);
    a major collection copies live tenured objects into the other
    semispace. Roots live in explicit {!root} cells, standing in for
    the capability register file. Stores of capabilities into tenured
    objects must call {!write_barrier}, exactly like a hardware or
    compiler-inserted barrier.

    Relocation caveats (faithful to the paper's discussion):
    - only capabilities whose base is an object base are relocated;
      capabilities re-derived with a moved base (CHERIv2-style interior
      pointers) go stale after a collection — "determining how much
      software will be broken by this is ongoing work";
    - address-based comparisons and hashes break across collections
      (§3.6), which {!address_changed_since} lets tests demonstrate. *)

type t

type config = {
  heap_base : int64;
  nursery_bytes : int;
  tenured_bytes : int;  (** per semispace *)
}

val create : Cheri_tagmem.Tagmem.t -> config -> t

exception Out_of_memory

val alloc : t -> size:int -> Cheri_core.Capability.t
(** A fresh, exactly-bounded, tagged capability. Triggers a minor
    collection (then a major one) when the nursery (then tenured
    space) is full. Raises {!Out_of_memory} if the live set does not
    fit. *)

(** {1 Roots} *)

type root

val new_root : t -> Cheri_core.Capability.t -> root
val root_get : root -> Cheri_core.Capability.t
val root_set : root -> Cheri_core.Capability.t -> unit
val drop_root : t -> root -> unit

val write_barrier : t -> int64 -> unit
(** [write_barrier t addr] — record that the granule at [addr] (in
    tenured space) may now hold a capability into the nursery. Call
    after any capability store into a tenured object. *)

(** {1 Collection} *)

type stats = {
  minor_collections : int;
  major_collections : int;
  objects_copied : int;
  bytes_copied : int;
  objects_promoted : int;
}

val collect_minor : t -> unit
val collect_major : t -> unit
val stats : t -> stats

val live_objects : t -> int
val nursery_used : t -> int
val tenured_used : t -> int

val is_live_address : t -> int64 -> bool
(** Whether an address currently lies inside a live object (for
    tests). *)
