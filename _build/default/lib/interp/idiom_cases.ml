(* The test cases extracted from the idiom survey (§2), one mini-C
   program per column of Table 3. Each returns 0 when the idiom
   worked. Idioms that can be expressed through [intcap_t] also have a
   variant using it — the "(yes)" entries of Table 3 are exactly the
   cases that work only through that type. *)

type idiom = Deconst | Container | Sub | Ii | Int_ | Ia | Mask | Wide

let all = [ Deconst; Container; Sub; Ii; Int_; Ia; Mask; Wide ]

let name = function
  | Deconst -> "DECONST"
  | Container -> "CONTAINER"
  | Sub -> "SUB"
  | Ii -> "II"
  | Int_ -> "INT"
  | Ia -> "IA"
  | Mask -> "MASK"
  | Wide -> "WIDE"

let describe = function
  | Deconst -> "remove const from a pointer and write through it"
  | Container -> "recover an enclosing struct from a member pointer"
  | Sub -> "arbitrary pointer subtraction"
  | Ii -> "out-of-bounds intermediate results"
  | Int_ -> "store a pointer in an integer and recover it"
  | Ia -> "integer arithmetic on a pointer value"
  | Mask -> "mask flag bits in and out of a pointer"
  | Wide -> "store a pointer in a 32-bit integer"

let deconst_src =
  {|
int main(void) {
  int x = 5;
  const int *cp = &x;
  int *p = (int *)cp;   /* cast away const (like memchr does) */
  *p = 6;
  return x == 6 ? 0 : 1;
}
|}

let container_src =
  {|
struct pair { long a; long b; };

long from_member(long *pb) {
  /* the container_of macro: step back from a member to the struct */
  struct pair *r = (struct pair *)((char *)pb - sizeof(long));
  return r->a;
}

int main(void) {
  struct pair s;
  s.a = 41;
  s.b = 7;
  return from_member(&s.b) == 41 ? 0 : 1;
}
|}

let sub_src =
  {|
int main(void) {
  char *buf = (char *)malloc(16);
  buf[0] = 'x';
  char *end = buf + 16;
  char *p = end - 16;    /* subtract an integer from a pointer */
  long n = end - buf;    /* subtract two pointers */
  return (*p == 'x' && n == 16) ? 0 : 1;
}
|}

let ii_src =
  {|
int main(void) {
  long *a = (long *)malloc(8 * sizeof(long));
  a[2] = 42;
  long *p = a + 100;   /* invalid intermediate: far out of bounds */
  p = p - 98;          /* back inside before the dereference */
  return *p == 42 ? 0 : 1;
}
|}

let int_src =
  {|
int main(void) {
  long *x = (long *)malloc(sizeof(long));
  *x = 7;
  long addr = (long)x;   /* pointer at rest in a plain integer */
  long *y = (long *)addr;
  return *y == 7 ? 0 : 1;
}
|}

let int_intcap_src =
  {|
int main(void) {
  long *x = (long *)malloc(sizeof(long));
  *x = 7;
  intcap_t addr = (intcap_t)x;   /* pointer at rest in intcap_t */
  long *y = (long *)addr;
  return *y == 7 ? 0 : 1;
}
|}

let ia_src =
  {|
int main(void) {
  char *buf = (char *)malloc(16);
  buf[5] = 'z';
  long a = (long)buf;
  a = a + 5;              /* arithmetic in integer representation */
  char *p = (char *)a;
  return *p == 'z' ? 0 : 1;
}
|}

let ia_intcap_src =
  {|
int main(void) {
  char *buf = (char *)malloc(16);
  buf[5] = 'z';
  intcap_t a = (intcap_t)buf;
  a = a + 5;
  char *p = (char *)a;
  return *p == 'z' ? 0 : 1;
}
|}

let mask_src =
  {|
int main(void) {
  long *x = (long *)malloc(64);
  x[0] = 9;
  long a = (long)x;
  long tagged = a | 1;          /* stash a flag in an alignment bit */
  long *back = (long *)(tagged & ~1);
  return *back == 9 ? 0 : 1;
}
|}

let mask_intcap_src =
  {|
int main(void) {
  long *x = (long *)malloc(64);
  x[0] = 9;
  intcap_t a = (intcap_t)x;
  intcap_t tagged = a | 1;
  long *back = (long *)(tagged & ~1);
  return *back == 9 ? 0 : 1;
}
|}

let wide_src =
  {|
int main(void) {
  long *x = (long *)malloc(8);
  *x = 3;
  unsigned int small = (unsigned int)(long)x;   /* 32-bit truncation */
  long *y = (long *)(long)small;
  return *y == 3 ? 0 : 1;
}
|}

let source = function
  | Deconst -> deconst_src
  | Container -> container_src
  | Sub -> sub_src
  | Ii -> ii_src
  | Int_ -> int_src
  | Ia -> ia_src
  | Mask -> mask_src
  | Wide -> wide_src

(* the variant through intcap_t, where one exists *)
let intcap_source = function
  | Int_ -> Some int_intcap_src
  | Ia -> Some ia_intcap_src
  | Mask -> Some mask_intcap_src
  | Deconst | Container | Sub | Ii | Wide -> None

(* -- supplementary idioms discussed in the paper but not in Table 3 ------- *)

(* §2 "Last Word": word-at-a-time strlen reads past the object's end
   inside the final aligned word; works under page-granularity
   protection, not under byte-granularity bounds *)
let last_word_src =
  {|
long fast_strlen(const char *s) {
  const unsigned long *w = (const unsigned long *)s;
  long n = 0;
  while (1) {
    unsigned long v = *w;
    for (int i = 0; i < 8; i++)
      if (((v >> (i * 8)) & 255) == 0) return n + i;
    n = n + 8;
    w = w + 1;
  }
  return n;
}
int main(void) {
  char *buf = (char *)malloc(11);
  for (int i = 0; i < 8; i++) buf[i] = 'a' + i;
  buf[8] = 0;
  return fast_strlen(buf) == 8 ? 0 : 1;
}
|}

(* §3.5 xor linked list: the link field carries prev^next, so at most
   one pointer's provenance survives *)
let xor_list_src =
  {|
struct xnode { intcap_t link; long v; };
int main(void) {
  struct xnode *a = (struct xnode *)malloc(sizeof(struct xnode));
  struct xnode *b = (struct xnode *)malloc(sizeof(struct xnode));
  struct xnode *c = (struct xnode *)malloc(sizeof(struct xnode));
  a->v = 1; b->v = 2; c->v = 3;
  a->link = (intcap_t)0 ^ (intcap_t)b;
  b->link = (intcap_t)a ^ (intcap_t)c;
  c->link = (intcap_t)b ^ (intcap_t)0;
  long sum = 0;
  struct xnode *prev = (struct xnode *)0;
  struct xnode *cur = a;
  while (cur) {
    sum = sum + cur->v;
    struct xnode *next = (struct xnode *)(cur->link ^ (intcap_t)prev);
    prev = cur;
    cur = next;
  }
  return sum == 6 ? 0 : 1;
}
|}

let supplementary = [ ("Last Word", last_word_src); ("xor list", xor_list_src) ]
