lib/interp/interp.mli: Cheri_models Format Minic
