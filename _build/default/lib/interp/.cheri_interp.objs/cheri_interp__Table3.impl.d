lib/interp/table3.ml: Cheri_models Format Idiom_cases Interp List
