lib/interp/interp.ml: Bits Buffer Char Cheri_models Cheri_util Format Hashtbl Int64 List Minic Option String
