lib/interp/idiom_cases.ml:
