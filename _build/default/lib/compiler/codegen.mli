(** Code generator: typed mini-C to the simulated CHERI softcore,
    under one of the three ABIs of the paper's §5.2 evaluation
    ({!Abi.t}): legacy MIPS, hybrid CHERIv2, or pure-capability
    CHERIv3.

    The strategy is deliberately uniform across ABIs (frame-resident
    locals, expression temporaries, no register allocation): the
    evaluation compares ABIs against each other on the same simulator,
    so what matters is that pointer traffic faithfully changes width
    (8 vs 32 bytes) and instruction selection (legacy loads vs
    capability loads, [CIncOffset] vs [CIncBase]) between ABIs. *)

exception Error of string
(** Internal codegen limits, e.g. expression too deep for the
    temporary pools, or too many arguments. *)

val compile : ?trapv:bool -> Abi.t -> Minic.Typed.program -> Cheri_asm.Asm.linked
(** Compile a checked program to a linked image. [trapv] selects
    [-ftrapv]-style trapping signed addition (the paper's §3.1.1 AIR
    discussion), emitting the [ADDT] opcode. Raises {!Error} or
    {!Abi.Unsupported} (e.g. pointer subtraction under CHERIv2 — the
    Table 4 porting boundary). *)

val compile_source : ?trapv:bool -> Abi.t -> string -> Cheri_asm.Asm.linked
(** Parse, type-check, and compile source text. *)

val machine_config : ?trapv:bool -> Abi.t -> Cheri_isa.Machine.config
(** The default machine configuration for an ABI: the matching ISA
    revision and, with [trapv], the overflow-trap enable. *)

val machine_for :
  ?config:Cheri_isa.Machine.config ->
  ?trapv:bool ->
  Abi.t ->
  Cheri_asm.Asm.linked ->
  Cheri_isa.Machine.t
(** A reset machine with the image loaded. *)

val run :
  ?fuel:int ->
  ?config:Cheri_isa.Machine.config ->
  ?trapv:bool ->
  Abi.t ->
  string ->
  Cheri_isa.Machine.outcome * Cheri_isa.Machine.t
(** Compile source text and run it to completion; returns the outcome
    and the stopped machine (for output and statistics). *)
