lib/compiler/codegen.ml: Abi Bytes Char Cheri_asm Cheri_core Cheri_isa Format Hashtbl Int64 List Minic Option Printf String
