lib/compiler/codegen.mli: Abi Cheri_asm Cheri_isa Minic
