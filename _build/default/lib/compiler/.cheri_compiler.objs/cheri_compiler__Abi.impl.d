lib/compiler/abi.ml: Cheri_core Minic String
