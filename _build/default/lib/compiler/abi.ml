(* The three compilation targets of the evaluation (§5.2):

   - [Mips]: the conventional PDP-11-style ABI — pointers are 64-bit
     integers, every access goes through the legacy load/store path
     (implicitly checked only against the all-memory default data
     capability).
   - [Cheri V2]: the hybrid ABI used for the original CHERI C compiler
     — pointer-typed values are capabilities without offsets (pointer
     addition moves the base; subtraction does not exist), while the
     stack and globals are reached through legacy addressing.
   - [Cheri V3]: the pure-capability ABI — all pointers including the
     stack pointer are fat capabilities with offsets.

   Register conventions (on top of {!Cheri_isa.Machine}'s fixed ones):
   integer args r4-r7, integer temporaries r8-r23, capability args
   c3-c6, capability return c2, capability temporaries c12-c19, stack
   capability c11 (V3), the never-written null capability c20. *)

type t = Mips | Cheri of Cheri_core.Cap_ops.revision

let name = function
  | Mips -> "MIPS"
  | Cheri Cheri_core.Cap_ops.V2 -> "CHERIv2"
  | Cheri Cheri_core.Cap_ops.V3 -> "CHERIv3"

let target = function
  | Mips -> Minic.Layout.mips_target
  | Cheri _ -> Minic.Layout.cheri_target

let all = [ Mips; Cheri Cheri_core.Cap_ops.V2; Cheri Cheri_core.Cap_ops.V3 ]

let of_key key =
  match String.lowercase_ascii key with
  | "mips" -> Some Mips
  | "cheriv2" | "v2" -> Some (Cheri Cheri_core.Cap_ops.V2)
  | "cheriv3" | "v3" -> Some (Cheri Cheri_core.Cap_ops.V3)
  | _ -> None

(* register conventions *)
let int_arg_regs = [ 4; 5; 6; 7 ]
let cap_arg_regs = [ 3; 4; 5; 6 ]
let int_temp_regs = [ 8; 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20; 21; 22; 23 ]
let cap_temp_regs = [ 12; 13; 14; 15; 16; 17; 18; 19 ]
let reg_sp = 29
let reg_ra = 31
let reg_ret = 2
let creg_ddc = 0
let creg_ret = 2
let creg_stack = 11
let creg_null = 20

exception Unsupported of string
(* A construct this ABI cannot compile — e.g. pointer subtraction under
   CHERIv2. These are exactly the places a port has to change code,
   which is what Table 4 counts. *)
