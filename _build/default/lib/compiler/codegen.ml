(* Code generator: typed mini-C to the CHERI softcore, under one of the
   three ABIs of §5.2. Deliberately simple (no register allocation
   beyond expression temporaries, locals always in the stack frame):
   the evaluation compares ABIs against each other on the same
   simulator, so what matters is that the *same* strategy is used
   everywhere and that pointer traffic faithfully changes width and
   instruction selection between ABIs. *)

open Minic.Ast
module T = Minic.Typed
module L = Minic.Layout
module I = Cheri_isa.Insn
module Asm = Cheri_asm.Asm
module B = Asm.Builder
module Machine = Cheri_isa.Machine

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt
let unsupported fmt = Format.kasprintf (fun s -> raise (Abi.Unsupported s)) fmt

type vclass = Gpr of int | Capr of int

type addr =
  | Astack of int  (* frame offset; cur_push is added at emission *)
  | Aglobal of string * int
  | Aptr of int * int  (* register (gpr for MIPS, cap reg otherwise) + offset *)

type ctx = {
  abi : Abi.t;
  trapv : bool;  (* -ftrapv: signed additive ops use the trapping ADDT *)
  prog : T.program;
  b : B.t;
  strings : (string, string) Hashtbl.t;  (* literal -> data label *)
  mutable locals : (string * int) list;
  mutable frame_size : int;
  mutable cur_push : int;
  mutable int_free : int list;
  mutable cap_free : int list;
  mutable live : vclass list;
  mutable epilogue : string;
  mutable break_labels : string list;
  mutable continue_labels : string list;
}

let is_cheri ctx = match ctx.abi with Abi.Cheri _ -> true | Abi.Mips -> false
let revision ctx = match ctx.abi with Abi.Cheri r -> r | Abi.Mips -> Cheri_core.Cap_ops.V3
let is_v2 ctx = ctx.abi = Abi.Cheri Cheri_core.Cap_ops.V2
let is_v3 ctx = ctx.abi = Abi.Cheri Cheri_core.Cap_ops.V3
let target ctx = Abi.target ctx.abi
let sizeof ctx ty = L.size_of ctx.prog (target ctx) ty
let alignof ctx ty = L.align_of ctx.prog (target ctx) ty
let elem_size ctx ty = L.elem_size ctx.prog (target ctx) ty
let is_ptr_ty = function Tptr _ | Tintcap -> true | _ -> false
let is_cap_value ctx ty = is_cheri ctx && is_ptr_ty ty
let emit ctx i = B.emit ctx.b i
let imm v = I.Imm v

(* -- temporaries --------------------------------------------------------- *)

let alloc_gpr ctx =
  match ctx.int_free with
  | r :: rest ->
      ctx.int_free <- rest;
      ctx.live <- Gpr r :: ctx.live;
      r
  | [] -> err "out of integer temporaries (expression too deep)"

let alloc_capr ctx =
  match ctx.cap_free with
  | r :: rest ->
      ctx.cap_free <- rest;
      ctx.live <- Capr r :: ctx.live;
      r
  | [] -> err "out of capability temporaries (expression too deep)"

let alloc_class ctx ty = if is_cap_value ctx ty then Capr (alloc_capr ctx) else Gpr (alloc_gpr ctx)

let free_temp ctx v =
  ctx.live <- List.filter (fun x -> x <> v) ctx.live;
  match v with
  | Gpr r -> ctx.int_free <- r :: ctx.int_free
  | Capr r -> ctx.cap_free <- r :: ctx.cap_free

(* -- stack and addressing ------------------------------------------------ *)

let slot_bytes = 32 (* uniform spill slot: fits a capability *)

let sp_adjust ctx delta =
  if delta <> 0 then
    if is_v3 ctx then emit ctx (I.Cincoffsetimm (Abi.creg_stack, Abi.creg_stack, Int64.of_int delta))
    else emit ctx (I.Alui (I.ADD, Abi.reg_sp, Abi.reg_sp, imm (Int64.of_int delta)))

(* store/load a register at an sp-relative byte offset *)
let store_sp ctx v off =
  match (ctx.abi, v) with
  | Abi.Mips, Gpr r -> emit ctx (I.Store { w = I.D; rv = r; rs = Abi.reg_sp; off })
  | Abi.Mips, Capr _ -> err "capability temporary under MIPS ABI"
  | Abi.Cheri Cheri_core.Cap_ops.V3, Gpr r ->
      emit ctx (I.Cstore { w = I.D; rv = r; cb = Abi.creg_stack; roff = 0; off })
  | Abi.Cheri Cheri_core.Cap_ops.V3, Capr c ->
      emit ctx (I.Csc { cs = c; cb = Abi.creg_stack; roff = 0; off })
  | Abi.Cheri Cheri_core.Cap_ops.V2, Gpr r ->
      emit ctx (I.Store { w = I.D; rv = r; rs = Abi.reg_sp; off })
  | Abi.Cheri Cheri_core.Cap_ops.V2, Capr c ->
      emit ctx (I.Csc { cs = c; cb = Abi.creg_ddc; roff = Abi.reg_sp; off })

let load_sp ctx v off =
  match (ctx.abi, v) with
  | Abi.Mips, Gpr r -> emit ctx (I.Load { w = I.D; signed = true; rd = r; rs = Abi.reg_sp; off })
  | Abi.Mips, Capr _ -> err "capability temporary under MIPS ABI"
  | Abi.Cheri Cheri_core.Cap_ops.V3, Gpr r ->
      emit ctx (I.Cload { w = I.D; signed = true; rd = r; cb = Abi.creg_stack; roff = 0; off })
  | Abi.Cheri Cheri_core.Cap_ops.V3, Capr c ->
      emit ctx (I.Clc { cd = c; cb = Abi.creg_stack; roff = 0; off })
  | Abi.Cheri Cheri_core.Cap_ops.V2, Gpr r ->
      emit ctx (I.Load { w = I.D; signed = true; rd = r; rs = Abi.reg_sp; off })
  | Abi.Cheri Cheri_core.Cap_ops.V2, Capr c ->
      emit ctx (I.Clc { cd = c; cb = Abi.creg_ddc; roff = Abi.reg_sp; off })

let push_value ctx v =
  sp_adjust ctx (-slot_bytes);
  ctx.cur_push <- ctx.cur_push + slot_bytes;
  store_sp ctx v 0

let pop_discard ctx n =
  sp_adjust ctx (n * slot_bytes);
  ctx.cur_push <- ctx.cur_push - (n * slot_bytes)

(* width/signedness of a scalar type *)
let width_of ctx ty =
  match ty with
  | Tint { bits = 8; signed } -> (I.B, signed)
  | Tint { bits = 16; signed } -> (I.H, signed)
  | Tint { bits = 32; signed } -> (I.W, signed)
  | Tint { bits = 64; signed } -> (I.D, signed)
  | Tptr _ | Tintcap when not (is_cheri ctx) -> (I.D, false)
  | Tfunptr _ -> (I.D, false)
  | _ -> err "width_of: not a scalar type %s" (Format.asprintf "%a" pp_ty ty)

(* scalar load from an addr into a fresh temp *)
let load_addr ctx addr ty : vclass =
  if is_cap_value ctx ty then begin
    let c = alloc_capr ctx in
    (match addr with
    | Astack off -> (
        let off = off + ctx.cur_push in
        match ctx.abi with
        | Abi.Cheri Cheri_core.Cap_ops.V3 ->
            emit ctx (I.Clc { cd = c; cb = Abi.creg_stack; roff = 0; off })
        | Abi.Cheri Cheri_core.Cap_ops.V2 ->
            emit ctx (I.Clc { cd = c; cb = Abi.creg_ddc; roff = Abi.reg_sp; off })
        | Abi.Mips -> assert false)
    | Aglobal (sym, off) ->
        let r = alloc_gpr ctx in
        emit ctx (I.Li (r, I.Sym_addr (sym, Int64.of_int off)));
        emit ctx (I.Clc { cd = c; cb = Abi.creg_ddc; roff = r; off = 0 });
        free_temp ctx (Gpr r)
    | Aptr (cb, off) -> emit ctx (I.Clc { cd = c; cb; roff = 0; off }));
    Capr c
  end
  else begin
    let w, signed = width_of ctx ty in
    let r = alloc_gpr ctx in
    (match addr with
    | Astack off -> (
        let off = off + ctx.cur_push in
        match ctx.abi with
        | Abi.Cheri Cheri_core.Cap_ops.V3 ->
            emit ctx (I.Cload { w; signed; rd = r; cb = Abi.creg_stack; roff = 0; off })
        | _ -> emit ctx (I.Load { w; signed; rd = r; rs = Abi.reg_sp; off }))
    | Aglobal (sym, off) ->
        emit ctx (I.Li (r, I.Sym_addr (sym, Int64.of_int off)));
        if is_v3 ctx || is_v2 ctx then
          emit ctx (I.Cload { w; signed; rd = r; cb = Abi.creg_ddc; roff = r; off = 0 })
        else emit ctx (I.Load { w; signed; rd = r; rs = r; off = 0 })
    | Aptr (p, off) ->
        if is_cheri ctx then emit ctx (I.Cload { w; signed; rd = r; cb = p; roff = 0; off })
        else emit ctx (I.Load { w; signed; rd = r; rs = p; off }));
    Gpr r
  end

let store_addr ctx addr ty (v : vclass) =
  if is_cap_value ctx ty then begin
    let c = match v with Capr c -> c | Gpr _ -> err "integer value stored as capability" in
    match addr with
    | Astack off -> (
        let off = off + ctx.cur_push in
        match ctx.abi with
        | Abi.Cheri Cheri_core.Cap_ops.V3 ->
            emit ctx (I.Csc { cs = c; cb = Abi.creg_stack; roff = 0; off })
        | Abi.Cheri Cheri_core.Cap_ops.V2 ->
            emit ctx (I.Csc { cs = c; cb = Abi.creg_ddc; roff = Abi.reg_sp; off })
        | Abi.Mips -> assert false)
    | Aglobal (sym, off) ->
        let r = alloc_gpr ctx in
        emit ctx (I.Li (r, I.Sym_addr (sym, Int64.of_int off)));
        emit ctx (I.Csc { cs = c; cb = Abi.creg_ddc; roff = r; off = 0 });
        free_temp ctx (Gpr r)
    | Aptr (cb, off) -> emit ctx (I.Csc { cs = c; cb; roff = 0; off })
  end
  else begin
    let w, _ = width_of ctx ty in
    let rv = match v with Gpr r -> r | Capr _ -> err "capability stored as integer" in
    match addr with
    | Astack off -> (
        let off = off + ctx.cur_push in
        match ctx.abi with
        | Abi.Cheri Cheri_core.Cap_ops.V3 ->
            emit ctx (I.Cstore { w; rv; cb = Abi.creg_stack; roff = 0; off })
        | _ -> emit ctx (I.Store { w; rv; rs = Abi.reg_sp; off }))
    | Aglobal (sym, off) ->
        let r = alloc_gpr ctx in
        emit ctx (I.Li (r, I.Sym_addr (sym, Int64.of_int off)));
        if is_cheri ctx then emit ctx (I.Cstore { w; rv; cb = Abi.creg_ddc; roff = r; off = 0 })
        else emit ctx (I.Store { w; rv; rs = r; off = 0 });
        free_temp ctx (Gpr r)
    | Aptr (p, off) ->
        if is_cheri ctx then emit ctx (I.Cstore { w; rv; cb = p; roff = 0; off })
        else emit ctx (I.Store { w; rv; rs = p; off })
  end

(* materialize an address as a pointer value *)
let materialize ctx addr : vclass =
  match ctx.abi with
  | Abi.Mips -> (
      match addr with
      | Astack off ->
          let r = alloc_gpr ctx in
          emit ctx (I.Alui (I.ADD, r, Abi.reg_sp, imm (Int64.of_int (off + ctx.cur_push))));
          Gpr r
      | Aglobal (sym, off) ->
          let r = alloc_gpr ctx in
          emit ctx (I.Li (r, I.Sym_addr (sym, Int64.of_int off)));
          Gpr r
      | Aptr (p, 0) ->
          let r = alloc_gpr ctx in
          emit ctx (I.Alu (I.ADD, r, p, 0));
          Gpr r
      | Aptr (p, off) ->
          let r = alloc_gpr ctx in
          emit ctx (I.Alui (I.ADD, r, p, imm (Int64.of_int off)));
          Gpr r)
  | Abi.Cheri Cheri_core.Cap_ops.V3 -> (
      match addr with
      | Astack off ->
          let c = alloc_capr ctx in
          emit ctx (I.Cincoffsetimm (c, Abi.creg_stack, Int64.of_int (off + ctx.cur_push)));
          Capr c
      | Aglobal (sym, off) ->
          let r = alloc_gpr ctx in
          emit ctx (I.Li (r, I.Sym_addr (sym, Int64.of_int off)));
          let c = alloc_capr ctx in
          emit ctx (I.Cfromptr (c, Abi.creg_ddc, r));
          free_temp ctx (Gpr r);
          Capr c
      | Aptr (p, 0) ->
          let c = alloc_capr ctx in
          emit ctx (I.Cmove (c, p));
          Capr c
      | Aptr (p, off) ->
          let c = alloc_capr ctx in
          emit ctx (I.Cincoffsetimm (c, p, Int64.of_int off));
          Capr c)
  | Abi.Cheri Cheri_core.Cap_ops.V2 -> (
      (* CFromPtr is a CHERIv3 instruction (Table 2); under v2 a
         pointer is derived from the DDC by CIncBase, which moves the
         base to the address *)
      match addr with
      | Astack off ->
          let r = alloc_gpr ctx in
          emit ctx (I.Alui (I.ADD, r, Abi.reg_sp, imm (Int64.of_int (off + ctx.cur_push))));
          let c = alloc_capr ctx in
          emit ctx (I.Cincbase (c, Abi.creg_ddc, r));
          free_temp ctx (Gpr r);
          Capr c
      | Aglobal (sym, off) ->
          let r = alloc_gpr ctx in
          emit ctx (I.Li (r, I.Sym_addr (sym, Int64.of_int off)));
          let c = alloc_capr ctx in
          emit ctx (I.Cincbase (c, Abi.creg_ddc, r));
          free_temp ctx (Gpr r);
          Capr c
      | Aptr (p, 0) ->
          let c = alloc_capr ctx in
          emit ctx (I.Cmove (c, p));
          Capr c
      | Aptr (p, off) ->
          (* CHERIv2 pointer derivation moves the base — monotonic, and
             traps at run time if [off] is negative *)
          let r = alloc_gpr ctx in
          emit ctx (I.Li (r, imm (Int64.of_int off)));
          let c = alloc_capr ctx in
          emit ctx (I.Cincbase (c, p, r));
          free_temp ctx (Gpr r);
          Capr c)

(* -- expressions ---------------------------------------------------------- *)

let as_gpr = function Gpr r -> r | Capr _ -> err "expected an integer register"
let as_capr = function Capr c -> c | Gpr _ -> err "expected a capability register"

(* truncate an integer temp to the width/signedness of [ty] *)
let truncate_temp ctx r ty =
  match ty with
  | Tint { bits; signed } when bits < 64 ->
      let shift = Int64.of_int (64 - bits) in
      emit ctx (I.Alui (I.SLL, r, r, imm shift));
      emit ctx (I.Alui ((if signed then I.SRA else I.SRL), r, r, imm shift))
  | _ -> ()

(* read the pointer value (base + offset) of a capability into a gpr *)
let cap_address ctx c =
  let rb = alloc_gpr ctx in
  emit ctx (I.Cgetbase (rb, c));
  let ro = alloc_gpr ctx in
  emit ctx (I.Cgetoffset (ro, c));
  emit ctx (I.Alu (I.ADD, rb, rb, ro));
  free_temp ctx (Gpr ro);
  rb

let rec gen_expr ctx (e : T.expr) : vclass =
  match e.T.e with
  | T.Num v ->
      let r = alloc_gpr ctx in
      emit ctx (I.Li (r, imm v));
      Gpr r
  | T.Str s ->
      let label = intern_string ctx s in
      materialize ctx (Aglobal (label, 0))
  | T.Load lv -> (
      let addr, cleanup = gen_lvalue ctx lv in
      let v = load_addr ctx addr lv.T.lty in
      List.iter (free_temp ctx) cleanup;
      v)
  | T.Addr_of lv ->
      let addr, cleanup = gen_lvalue ctx lv in
      let v = materialize ctx addr in
      List.iter (free_temp ctx) cleanup;
      v
  | T.Unop (op, a) -> (
      let r = as_gpr (gen_expr ctx a) in
      (match op with
      | Neg -> emit ctx (I.Alu (I.SUB, r, 0, r))
      | Bnot -> emit ctx (I.Alu (I.NOR, r, r, 0))
      | Lnot -> emit ctx (I.Alui (I.SEQ, r, r, imm 0L)));
      truncate_temp ctx r e.T.ty;
      Gpr r)
  | T.Binop (Land, a, b) -> gen_short_circuit ctx ~is_and:true a b
  | T.Binop (Lor, a, b) -> gen_short_circuit ctx ~is_and:false a b
  | T.Binop (op, a, b) ->
      let ra = as_gpr (gen_expr ctx a) in
      let rb = as_gpr (gen_expr ctx b) in
      gen_int_binop ctx op ra rb a.T.ty;
      free_temp ctx (Gpr rb);
      truncate_temp ctx ra e.T.ty;
      Gpr ra
  | T.Ptr_add { p; i; elem } ->
      let pv = gen_expr ctx p in
      let ri = as_gpr (gen_expr ctx i) in
      scale_index ctx ri (elem_size ctx elem);
      let out = gen_ptr_add ctx pv ri in
      free_temp ctx (Gpr ri);
      out
  | T.Ptr_diff { a; b; elem } ->
      if is_v2 ctx then unsupported "pointer subtraction is not available on CHERIv2";
      let va = gen_expr ctx a in
      let vb = gen_expr ctx b in
      let ra, rb =
        if is_cheri ctx then begin
          let ra = cap_address ctx (as_capr va) in
          let rb = cap_address ctx (as_capr vb) in
          free_temp ctx va;
          free_temp ctx vb;
          (ra, rb)
        end
        else (as_gpr va, as_gpr vb)
      in
      emit ctx (I.Alu (I.SUB, ra, ra, rb));
      free_temp ctx (Gpr rb);
      let esz = elem_size ctx elem in
      if esz > 1 then
        if esz land (esz - 1) = 0 then
          emit ctx (I.Alui (I.SRA, ra, ra, imm (Int64.of_int (log2i esz))))
        else begin
          let rd = alloc_gpr ctx in
          emit ctx (I.Li (rd, imm (Int64.of_int esz)));
          emit ctx (I.Alu (I.DIV, ra, ra, rd));
          free_temp ctx (Gpr rd)
        end;
      Gpr ra
  | T.Ptr_cmp (op, a, b) ->
      let va = gen_expr ctx a in
      let vb = gen_expr ctx b in
      let rd =
        if is_cheri ctx then begin
          let ca = as_capr va and cb = as_capr vb in
          let rd = alloc_gpr ctx in
          (match op with
          | Eq -> emit ctx (I.Cptrcmp (I.CEQ, rd, ca, cb))
          | Ne -> emit ctx (I.Cptrcmp (I.CNE, rd, ca, cb))
          | Lt -> emit ctx (I.Cptrcmp (I.CLTU, rd, ca, cb))
          | Le -> emit ctx (I.Cptrcmp (I.CLEU, rd, ca, cb))
          | Gt -> emit ctx (I.Cptrcmp (I.CLTU, rd, cb, ca))
          | Ge -> emit ctx (I.Cptrcmp (I.CLEU, rd, cb, ca))
          | _ -> err "bad pointer comparison");
          rd
        end
        else begin
          let ra = as_gpr va and rb = as_gpr vb in
          let rd = alloc_gpr ctx in
          (match op with
          | Eq -> emit ctx (I.Alu (I.SEQ, rd, ra, rb))
          | Ne -> emit ctx (I.Alu (I.SNE, rd, ra, rb))
          | Lt -> emit ctx (I.Alu (I.SLTU, rd, ra, rb))
          | Gt -> emit ctx (I.Alu (I.SLTU, rd, rb, ra))
          | Le ->
              emit ctx (I.Alu (I.SLTU, rd, rb, ra));
              emit ctx (I.Alui (I.SEQ, rd, rd, imm 0L))
          | Ge ->
              emit ctx (I.Alu (I.SLTU, rd, ra, rb));
              emit ctx (I.Alui (I.SEQ, rd, rd, imm 0L))
          | _ -> err "bad pointer comparison");
          rd
        end
      in
      free_temp ctx va;
      free_temp ctx vb;
      Gpr rd
  | T.Intcap_arith (op, a, b) ->
      let va = gen_expr ctx a in
      let rb = as_gpr (gen_expr ctx b) in
      if is_cheri ctx then begin
        (match revision ctx with
        | Cheri_core.Cap_ops.V2 ->
            unsupported "intcap_t arithmetic (CHERIv2 supports only store and load)"
        | Cheri_core.Cap_ops.V3 -> ());
        let c = as_capr va in
        (* address -> integer op -> CSetOffset relative to the base *)
        let raddr = cap_address ctx c in
        gen_int_binop ctx op raddr rb a.T.ty;
        let rbase = alloc_gpr ctx in
        emit ctx (I.Cgetbase (rbase, c));
        emit ctx (I.Alu (I.SUB, raddr, raddr, rbase));
        free_temp ctx (Gpr rbase);
        let out = alloc_capr ctx in
        emit ctx (I.Csetoffset (out, c, raddr));
        free_temp ctx (Gpr raddr);
        free_temp ctx va;
        free_temp ctx (Gpr rb);
        Capr out
      end
      else begin
        let ra = as_gpr va in
        gen_int_binop ctx op ra rb a.T.ty;
        free_temp ctx (Gpr rb);
        Gpr ra
      end
  | T.Assign (lv, rhs) -> (
      match lv.T.lty with
      | Tstruct _ | Tunion _ ->
          let src_lv =
            match rhs.T.e with
            | T.Load src -> src
            | _ -> err "aggregate assignment from non-lvalue"
          in
          let dst_addr, c1 = gen_lvalue ctx lv in
          let src_addr, c2 = gen_lvalue ctx src_lv in
          emit_copy ctx dst_addr src_addr lv.T.lty;
          List.iter (free_temp ctx) (c1 @ c2);
          (* aggregate assignment has no useful value in this subset *)
          let r = alloc_gpr ctx in
          emit ctx (I.Li (r, imm 0L));
          Gpr r
      | _ ->
          let v = gen_expr ctx rhs in
          let addr, cleanup = gen_lvalue ctx lv in
          store_addr ctx addr lv.T.lty v;
          List.iter (free_temp ctx) cleanup;
          v)
  | T.Call (fname, args) -> gen_call ctx fname args e.T.ty
  | T.Fun_addr fname ->
      let r = alloc_gpr ctx in
      emit ctx (I.Li (r, I.Sym_addr ("fn_" ^ fname, 0L)));
      Gpr r
  | T.Call_ptr (fn, args) -> gen_call_common ctx (`Indirect fn) args e.T.ty
  | T.Builtin (b, args) -> gen_builtin ctx b args
  | T.Cast inner -> gen_cast ctx inner e.T.ty
  | T.Cond (c, a, b) ->
      let else_l = B.fresh_label ctx.b "cond_else" in
      let end_l = B.fresh_label ctx.b "cond_end" in
      let rc = as_gpr (gen_expr ctx c) in
      emit ctx (I.Branchz (I.EQZ, rc, I.Sym else_l));
      free_temp ctx (Gpr rc);
      (* both branches write the same destination temp *)
      let dest = alloc_class ctx e.T.ty in
      let va = gen_expr ctx a in
      move ctx dest va;
      free_temp ctx va;
      emit ctx (I.J (I.Sym end_l));
      B.label ctx.b else_l;
      let vb = gen_expr ctx b in
      move ctx dest vb;
      free_temp ctx vb;
      B.label ctx.b end_l;
      dest
  | T.Incdec (k, lv) ->
      let addr, cleanup = gen_lvalue ctx lv in
      let old = load_addr ctx addr lv.T.lty in
      let dir = match k with Preinc | Postinc -> 1 | Predec | Postdec -> -1 in
      let updated =
        match lv.T.lty with
        | Tptr { pointee; _ } -> (
            (* note: [old] stays live — post-increment returns it *)
            let delta = dir * elem_size ctx pointee in
            match ctx.abi with
            | Abi.Mips ->
                let out = alloc_gpr ctx in
                emit ctx (I.Alui (I.ADD, out, as_gpr old, imm (Int64.of_int delta)));
                Gpr out
            | Abi.Cheri Cheri_core.Cap_ops.V3 ->
                let out = alloc_capr ctx in
                emit ctx (I.Cincoffsetimm (out, as_capr old, Int64.of_int delta));
                Capr out
            | Abi.Cheri Cheri_core.Cap_ops.V2 ->
                let rd = alloc_gpr ctx in
                emit ctx (I.Li (rd, imm (Int64.of_int delta)));
                let out = alloc_capr ctx in
                emit ctx (I.Cincbase (out, as_capr old, rd));
                free_temp ctx (Gpr rd);
                Capr out)
        | Tintcap when is_cheri ctx ->
            let c = as_capr old in
            let out = alloc_capr ctx in
            emit ctx (I.Cincoffsetimm (out, c, Int64.of_int dir));
            Capr out
        | ty ->
            let r = as_gpr old in
            let out = alloc_gpr ctx in
            emit ctx (I.Alui (I.ADD, out, r, imm (Int64.of_int dir)));
            truncate_temp ctx out ty;
            Gpr out
      in
      store_addr ctx addr lv.T.lty updated;
      List.iter (free_temp ctx) cleanup;
      let result =
        match k with
        | Preinc | Predec ->
            free_temp ctx old;
            updated
        | Postinc | Postdec ->
            free_temp ctx updated;
            old
      in
      result
  | T.Sizeof ty ->
      let r = alloc_gpr ctx in
      emit ctx (I.Li (r, imm (Int64.of_int (sizeof ctx ty))));
      Gpr r

and log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

and scale_index ctx r esz =
  if esz = 1 then ()
  else if esz land (esz - 1) = 0 then emit ctx (I.Alui (I.SLL, r, r, imm (Int64.of_int (log2i esz))))
  else begin
    let rs = alloc_gpr ctx in
    emit ctx (I.Li (rs, imm (Int64.of_int esz)));
    emit ctx (I.Alu (I.MUL, r, r, rs));
    free_temp ctx (Gpr rs)
  end

and gen_ptr_add ctx pv rdelta : vclass =
  match ctx.abi with
  | Abi.Mips ->
      let rp = as_gpr pv in
      let out = alloc_gpr ctx in
      emit ctx (I.Alu (I.ADD, out, rp, rdelta));
      free_temp ctx pv;
      Gpr out
  | Abi.Cheri Cheri_core.Cap_ops.V3 ->
      let cp = as_capr pv in
      let out = alloc_capr ctx in
      emit ctx (I.Cincoffset (out, cp, rdelta));
      free_temp ctx pv;
      Capr out
  | Abi.Cheri Cheri_core.Cap_ops.V2 ->
      let cp = as_capr pv in
      let out = alloc_capr ctx in
      emit ctx (I.Cincbase (out, cp, rdelta));
      free_temp ctx pv;
      Capr out

and gen_int_binop ctx op ra rb operand_ty =
  let signed = match operand_ty with Tint { signed; _ } -> signed | _ -> true in
  match op with
  | Add -> emit ctx (I.Alu ((if ctx.trapv && signed then I.ADDT else I.ADD), ra, ra, rb))
  | Sub -> emit ctx (I.Alu (I.SUB, ra, ra, rb))
  | Mul -> emit ctx (I.Alu (I.MUL, ra, ra, rb))
  | Div -> emit ctx (I.Alu ((if signed then I.DIV else I.DIVU), ra, ra, rb))
  | Mod -> emit ctx (I.Alu ((if signed then I.REM else I.REMU), ra, ra, rb))
  | Shl -> emit ctx (I.Alu (I.SLL, ra, ra, rb))
  | Shr -> emit ctx (I.Alu ((if signed then I.SRA else I.SRL), ra, ra, rb))
  | Band -> emit ctx (I.Alu (I.AND, ra, ra, rb))
  | Bor -> emit ctx (I.Alu (I.OR, ra, ra, rb))
  | Bxor -> emit ctx (I.Alu (I.XOR, ra, ra, rb))
  | Eq -> emit ctx (I.Alu (I.SEQ, ra, ra, rb))
  | Ne -> emit ctx (I.Alu (I.SNE, ra, ra, rb))
  | Lt -> emit ctx (I.Alu ((if signed then I.SLT else I.SLTU), ra, ra, rb))
  | Gt -> emit ctx (I.Alu ((if signed then I.SLT else I.SLTU), ra, rb, ra))
  | Le ->
      emit ctx (I.Alu ((if signed then I.SLT else I.SLTU), ra, rb, ra));
      emit ctx (I.Alui (I.SEQ, ra, ra, imm 0L))
  | Ge ->
      emit ctx (I.Alu ((if signed then I.SLT else I.SLTU), ra, ra, rb));
      emit ctx (I.Alui (I.SEQ, ra, ra, imm 0L))
  | Land | Lor -> err "short-circuit operator in integer path"

and gen_short_circuit ctx ~is_and a b : vclass =
  let end_l = B.fresh_label ctx.b "sc_end" in
  let ra = as_gpr (gen_expr ctx a) in
  emit ctx (I.Alui (I.SNE, ra, ra, imm 0L));
  emit ctx (I.Branchz ((if is_and then I.EQZ else I.NEZ), ra, I.Sym end_l));
  let rb = as_gpr (gen_expr ctx b) in
  emit ctx (I.Alui (I.SNE, ra, rb, imm 0L));
  free_temp ctx (Gpr rb);
  B.label ctx.b end_l;
  Gpr ra

and move ctx dest src =
  match (dest, src) with
  | Gpr d, Gpr s -> if d <> s then emit ctx (I.Alu (I.ADD, d, s, 0))
  | Capr d, Capr s -> if d <> s then emit ctx (I.Cmove (d, s))
  | _ -> err "register class mismatch in move"

and gen_cast ctx inner dst_ty : vclass =
  let src_ty = inner.T.ty in
  let v = gen_expr ctx inner in
  match (src_ty, dst_ty) with
  | _, Tvoid ->
      free_temp ctx v;
      let r = alloc_gpr ctx in
      emit ctx (I.Li (r, imm 0L));
      Gpr r
  | Tint _, Tint _ ->
      truncate_temp ctx (as_gpr v) dst_ty;
      v
  | (Tptr _ | Tintcap), (Tptr _ | Tintcap) when is_cheri ctx -> v
  | (Tptr _ | Tintcap), (Tptr _ | Tintcap) -> v
  | (Tptr _ | Tintcap), Tint _ ->
      if is_cheri ctx then begin
        let r = cap_address ctx (as_capr v) in
        free_temp ctx v;
        truncate_temp ctx r dst_ty;
        Gpr r
      end
      else begin
        truncate_temp ctx (as_gpr v) dst_ty;
        v
      end
  | Tint _, Tfunptr _ | Tfunptr _, Tfunptr _ -> v
  | Tfunptr _, Tint _ ->
      truncate_temp ctx (as_gpr v) dst_ty;
      v
  | Tint _, (Tptr _ | Tintcap) ->
      if is_v3 ctx then begin
        (* CFromPtr rederives from the DDC; zero gives canonical null *)
        let c = alloc_capr ctx in
        emit ctx (I.Cfromptr (c, Abi.creg_ddc, as_gpr v));
        free_temp ctx v;
        Capr c
      end
      else if is_v2 ctx then begin
        (* pre-CFromPtr: derive via CIncBase, with the null special
           case the paper later moved into hardware (§4.2) *)
        let r = as_gpr v in
        let c = alloc_capr ctx in
        let nonzero = B.fresh_label ctx.b "fromint_nz" in
        let done_l = B.fresh_label ctx.b "fromint_done" in
        emit ctx (I.Branchz (I.NEZ, r, I.Sym nonzero));
        emit ctx (I.Cmove (c, Abi.creg_null));
        emit ctx (I.J (I.Sym done_l));
        B.label ctx.b nonzero;
        emit ctx (I.Cincbase (c, Abi.creg_ddc, r));
        B.label ctx.b done_l;
        free_temp ctx v;
        Capr c
      end
      else v
  | _ -> err "unsupported cast in codegen"

(* lvalue -> (addr, temps to free after use) *)
and gen_lvalue ctx (lv : T.lvalue) : addr * vclass list =
  match lv.T.l with
  | T.Lvar name -> (
      match List.assoc_opt name ctx.locals with
      | Some off -> (Astack off, [])
      | None -> err "unknown local %s" name)
  | T.Lglobal name -> (Aglobal (name, 0), [])
  | T.Lderef e ->
      let v = gen_expr ctx e in
      if is_cheri ctx then (Aptr (as_capr v, 0), [ v ]) else (Aptr (as_gpr v, 0), [ v ])
  | T.Lfield (base, fname) ->
      let addr, cleanup = gen_lvalue ctx base in
      let off = L.field_offset ctx.prog (target ctx) base.T.lty fname in
      let addr' =
        match addr with
        | Astack o -> Astack (o + off)
        | Aglobal (s, o) -> Aglobal (s, o + off)
        | Aptr (r, o) -> Aptr (r, o + off)
      in
      (addr', cleanup)

(* field-wise aggregate copy that preserves capabilities *)
and emit_copy ctx dst src ty =
  let shift a off =
    match a with
    | Astack o -> Astack (o + off)
    | Aglobal (s, o) -> Aglobal (s, o + off)
    | Aptr (r, o) -> Aptr (r, o + off)
  in
  match ty with
  | Tstruct _ -> (
      match T.fields_of ctx.prog ty with
      | Some fields ->
          List.iter
            (fun (fname, fty) ->
              let off = L.field_offset ctx.prog (target ctx) ty fname in
              emit_copy ctx (shift dst off) (shift src off) fty)
            fields
      | None -> err "unknown struct in copy")
  | Tunion _ ->
      (* copy as raw words; capability fields do not survive a union
         copy, matching a tag-oblivious word copy of tagged memory *)
      let size = sizeof ctx ty in
      let rec go off =
        if off + 8 <= size then begin
          let v = load_addr ctx (shift src off) tlong in
          store_addr ctx (shift dst off) tlong v;
          free_temp ctx v;
          go (off + 8)
        end
        else if off < size then begin
          let v = load_addr ctx (shift src off) tuchar in
          store_addr ctx (shift dst off) tuchar v;
          free_temp ctx v;
          go (off + 1)
        end
      in
      go 0
  | Tarray (elem, n) ->
      let esz = sizeof ctx elem in
      for i = 0 to n - 1 do
        emit_copy ctx (shift dst (i * esz)) (shift src (i * esz)) elem
      done
  | scalar ->
      let v = load_addr ctx src scalar in
      store_addr ctx dst scalar v;
      free_temp ctx v

(* -- calls ---------------------------------------------------------------- *)

and gen_call ctx fname args ret_ty : vclass =
  (match T.find_func ctx.prog fname with
  | Some _ -> ()
  | None -> err "call to unknown function %s" fname);
  gen_call_common ctx (`Direct fname) args ret_ty

and gen_call_common ctx target args ret_ty : vclass =
  (* 0. an indirect target is evaluated first and parked on the stack *)
  let has_target_slot =
    match target with
    | `Indirect fn ->
        let v = gen_expr ctx fn in
        push_value ctx v;
        free_temp ctx v;
        true
    | `Direct _ -> false
  in
  (* 1. evaluate arguments, parking each on the stack *)
  List.iter
    (fun a ->
      let v = gen_expr ctx a in
      push_value ctx v;
      free_temp ctx v)
    args;
  let nargs = List.length args in
  (* 2. save live temporaries *)
  let saved = ctx.live in
  List.iter (fun v -> push_value ctx v) saved;
  let nsaved = List.length saved in
  (* 3. load arguments into the argument registers *)
  let int_args = ref Abi.int_arg_regs and cap_args = ref Abi.cap_arg_regs in
  List.iteri
    (fun i (a : T.expr) ->
      let slot_off = (nsaved + (nargs - 1 - i)) * slot_bytes in
      if is_cap_value ctx a.T.ty then begin
        match !cap_args with
        | creg :: rest ->
            cap_args := rest;
            load_sp ctx (Capr creg) slot_off
        | [] -> err "too many capability arguments in call"
      end
      else
        match !int_args with
        | reg :: rest ->
            int_args := rest;
            load_sp ctx (Gpr reg) slot_off
        | [] -> err "too many integer arguments in call")
    args;
  (* 4. call; an indirect target is popped into the scratch register r25
     (outside the temporary pool) just before the jump *)
  (match target with
  | `Direct fname -> emit ctx (I.Jal (I.Sym ("fn_" ^ fname)))
  | `Indirect _ ->
      load_sp ctx (Gpr 25) ((nsaved + nargs) * slot_bytes);
      emit ctx (I.Jalr 25));
  (* 5. restore saved temporaries (top of stack = last saved) *)
  List.iteri (fun i v -> load_sp ctx v ((nsaved - 1 - i) * slot_bytes)) saved;
  pop_discard ctx (nsaved + nargs + if has_target_slot then 1 else 0);
  (* 6. fetch the result *)
  match ret_ty with
  | Tvoid ->
      let r = alloc_gpr ctx in
      emit ctx (I.Li (r, imm 0L));
      Gpr r
  | ty when is_cap_value ctx ty ->
      let c = alloc_capr ctx in
      emit ctx (I.Cmove (c, Abi.creg_ret));
      Capr c
  | _ ->
      let r = alloc_gpr ctx in
      emit ctx (I.Alu (I.ADD, r, Abi.reg_ret, 0));
      Gpr r

and legacy_address ctx (v : vclass) : int =
  (* the integer virtual address of a pointer value, for syscalls *)
  if is_cheri ctx then begin
    let r = cap_address ctx (as_capr v) in
    free_temp ctx v;
    r
  end
  else as_gpr v

and gen_builtin ctx b args : vclass =
  let syscall n =
    emit ctx (I.Li (Abi.reg_ret, imm n));
    emit ctx I.Syscall
  in
  match (b, args) with
  | T.Bmalloc, [ size ] ->
      let v = gen_expr ctx size in
      emit ctx (I.Alu (I.ADD, 4, as_gpr v, 0));
      free_temp ctx v;
      syscall Machine.syscall_malloc;
      if is_cheri ctx then begin
        let c = alloc_capr ctx in
        emit ctx (I.Cmove (c, 1));
        Capr c
      end
      else begin
        let r = alloc_gpr ctx in
        emit ctx (I.Alu (I.ADD, r, Abi.reg_ret, 0));
        Gpr r
      end
  | T.Bfree, [ p ] ->
      let v = gen_expr ctx p in
      let r = legacy_address ctx v in
      emit ctx (I.Alu (I.ADD, 4, r, 0));
      free_temp ctx (Gpr r);
      syscall Machine.syscall_free;
      let rz = alloc_gpr ctx in
      emit ctx (I.Li (rz, imm 0L));
      Gpr rz
  | T.Bprint_int, [ x ] ->
      let v = gen_expr ctx x in
      emit ctx (I.Alu (I.ADD, 4, as_gpr v, 0));
      free_temp ctx v;
      syscall Machine.syscall_print_int;
      let rz = alloc_gpr ctx in
      emit ctx (I.Li (rz, imm 0L));
      Gpr rz
  | T.Bprint_char, [ x ] ->
      let v = gen_expr ctx x in
      emit ctx (I.Alu (I.ADD, 4, as_gpr v, 0));
      free_temp ctx v;
      syscall Machine.syscall_print_char;
      let rz = alloc_gpr ctx in
      emit ctx (I.Li (rz, imm 0L));
      Gpr rz
  | T.Bprint_str, [ p ] ->
      let v = gen_expr ctx p in
      let r = legacy_address ctx v in
      emit ctx (I.Alu (I.ADD, 4, r, 0));
      free_temp ctx (Gpr r);
      syscall Machine.syscall_print_cstr;
      let rz = alloc_gpr ctx in
      emit ctx (I.Li (rz, imm 0L));
      Gpr rz
  | T.Bclock, [] ->
      syscall Machine.syscall_clock;
      let r = alloc_gpr ctx in
      emit ctx (I.Alu (I.ADD, r, Abi.reg_ret, 0));
      Gpr r
  | T.Bexit, [ x ] ->
      let v = gen_expr ctx x in
      emit ctx (I.Alu (I.ADD, 4, as_gpr v, 0));
      free_temp ctx v;
      syscall Machine.syscall_exit;
      let rz = alloc_gpr ctx in
      emit ctx (I.Li (rz, imm 0L));
      Gpr rz
  | _ -> err "builtin arity mismatch"

and intern_string ctx s =
  match Hashtbl.find_opt ctx.strings s with
  | Some l -> l
  | None ->
      let l = Printf.sprintf ".str_%d" (Hashtbl.length ctx.strings) in
      Hashtbl.replace ctx.strings s l;
      B.data_label ctx.b l;
      B.data_bytes ctx.b s;
      B.data_bytes ctx.b "\000";
      l

(* -- statements ------------------------------------------------------------ *)

let rec gen_stmt ctx (s : T.stmt) =
  match s with
  | T.Expr e -> free_temp ctx (gen_expr ctx e)
  | T.Decl { name; ty; init; _ } -> (
      match init with
      | None -> ()
      | Some e ->
          let v = gen_expr ctx e in
          let off = List.assoc name ctx.locals in
          store_addr ctx (Astack off) ty v;
          free_temp ctx v)
  | T.If (c, a, b) ->
      let else_l = B.fresh_label ctx.b "else" in
      let end_l = B.fresh_label ctx.b "endif" in
      let rc = as_gpr (gen_expr ctx c) in
      emit ctx (I.Branchz (I.EQZ, rc, I.Sym else_l));
      free_temp ctx (Gpr rc);
      List.iter (gen_stmt ctx) a;
      emit ctx (I.J (I.Sym end_l));
      B.label ctx.b else_l;
      List.iter (gen_stmt ctx) b;
      B.label ctx.b end_l
  | T.While (c, body) ->
      let head = B.fresh_label ctx.b "while" in
      let exit_l = B.fresh_label ctx.b "wend" in
      B.label ctx.b head;
      let rc = as_gpr (gen_expr ctx c) in
      emit ctx (I.Branchz (I.EQZ, rc, I.Sym exit_l));
      free_temp ctx (Gpr rc);
      gen_loop_body ctx ~continue_l:head ~break_l:exit_l body;
      emit ctx (I.J (I.Sym head));
      B.label ctx.b exit_l
  | T.Dowhile (body, c) ->
      let head = B.fresh_label ctx.b "do" in
      let check = B.fresh_label ctx.b "docheck" in
      let exit_l = B.fresh_label ctx.b "doend" in
      B.label ctx.b head;
      gen_loop_body ctx ~continue_l:check ~break_l:exit_l body;
      B.label ctx.b check;
      let rc = as_gpr (gen_expr ctx c) in
      emit ctx (I.Branchz (I.NEZ, rc, I.Sym head));
      free_temp ctx (Gpr rc);
      B.label ctx.b exit_l
  | T.For (init, cond, step, body) ->
      Option.iter (gen_stmt ctx) init;
      let head = B.fresh_label ctx.b "for" in
      let cont = B.fresh_label ctx.b "forstep" in
      let exit_l = B.fresh_label ctx.b "forend" in
      B.label ctx.b head;
      (match cond with
      | Some c ->
          let rc = as_gpr (gen_expr ctx c) in
          emit ctx (I.Branchz (I.EQZ, rc, I.Sym exit_l));
          free_temp ctx (Gpr rc)
      | None -> ());
      gen_loop_body ctx ~continue_l:cont ~break_l:exit_l body;
      B.label ctx.b cont;
      Option.iter (fun e -> free_temp ctx (gen_expr ctx e)) step;
      emit ctx (I.J (I.Sym head));
      B.label ctx.b exit_l
  | T.Return None -> emit ctx (I.J (I.Sym ctx.epilogue))
  | T.Return (Some e) ->
      let v = gen_expr ctx e in
      (match v with
      | Gpr r -> emit ctx (I.Alu (I.ADD, Abi.reg_ret, r, 0))
      | Capr c -> emit ctx (I.Cmove (Abi.creg_ret, c)));
      free_temp ctx v;
      emit ctx (I.J (I.Sym ctx.epilogue))
  | T.Break -> (
      match ctx.break_labels with
      | l :: _ -> emit ctx (I.J (I.Sym l))
      | [] -> err "break outside loop")
  | T.Continue -> (
      match ctx.continue_labels with
      | l :: _ -> emit ctx (I.J (I.Sym l))
      | [] -> err "continue outside loop")
  | T.Block b -> List.iter (gen_stmt ctx) b

and gen_loop_body ctx ~continue_l ~break_l body =
  ctx.break_labels <- break_l :: ctx.break_labels;
  ctx.continue_labels <- continue_l :: ctx.continue_labels;
  List.iter (gen_stmt ctx) body;
  ctx.break_labels <- List.tl ctx.break_labels;
  ctx.continue_labels <- List.tl ctx.continue_labels

(* -- functions -------------------------------------------------------------- *)

let align_up_i n a = (n + a - 1) / a * a

(* assign every local (params + declarations anywhere in the body) a
   frame slot; slot 0 holds the return address *)
let build_frame ctx (f : T.func) =
  let locals = ref [] in
  let offset = ref slot_bytes (* skip the ra slot *) in
  let place name ty =
    let a = max 8 (alignof ctx ty) in
    offset := align_up_i !offset a;
    locals := (name, !offset) :: !locals;
    offset := !offset + max 8 (sizeof ctx ty)
  in
  List.iter (fun (name, ty) -> place name ty) f.T.params;
  List.iter
    (fun s ->
      T.iter_stmt
        (fun _ -> ())
        (fun s -> match s with T.Decl { name; ty; _ } -> place name ty | _ -> ())
        s)
    f.T.body;
  ctx.locals <- !locals;
  ctx.frame_size <- align_up_i !offset slot_bytes

let store_ra ctx =
  if is_v3 ctx then
    emit ctx (I.Cstore { w = I.D; rv = Abi.reg_ra; cb = Abi.creg_stack; roff = 0; off = 0 })
  else emit ctx (I.Store { w = I.D; rv = Abi.reg_ra; rs = Abi.reg_sp; off = 0 })

let load_ra ctx =
  if is_v3 ctx then
    emit ctx
      (I.Cload { w = I.D; signed = false; rd = Abi.reg_ra; cb = Abi.creg_stack; roff = 0; off = 0 })
  else emit ctx (I.Load { w = I.D; signed = false; rd = Abi.reg_ra; rs = Abi.reg_sp; off = 0 })

let gen_function ctx (f : T.func) =
  build_frame ctx f;
  ctx.cur_push <- 0;
  ctx.int_free <- Abi.int_temp_regs;
  ctx.cap_free <- Abi.cap_temp_regs;
  ctx.live <- [];
  ctx.epilogue <- B.fresh_label ctx.b ("epilogue_" ^ f.T.fname);
  B.label ctx.b ("fn_" ^ f.T.fname);
  sp_adjust ctx (-ctx.frame_size);
  store_ra ctx;
  (* copy incoming arguments to their frame slots *)
  let int_args = ref Abi.int_arg_regs and cap_args = ref Abi.cap_arg_regs in
  List.iter
    (fun (name, ty) ->
      let off = List.assoc name ctx.locals in
      if is_cap_value ctx ty then begin
        match !cap_args with
        | c :: rest ->
            cap_args := rest;
            store_addr ctx (Astack off) ty (Capr c)
        | [] -> err "too many capability parameters in %s" f.T.fname
      end
      else
        match !int_args with
        | r :: rest ->
            int_args := rest;
            store_addr ctx (Astack off) ty (Gpr r)
        | [] -> err "too many integer parameters in %s" f.T.fname)
    f.T.params;
  List.iter (gen_stmt ctx) f.T.body;
  (* fall off the end: return 0 *)
  emit ctx (I.Li (Abi.reg_ret, imm 0L));
  B.label ctx.b ctx.epilogue;
  load_ra ctx;
  sp_adjust ctx ctx.frame_size;
  emit ctx (I.Jr Abi.reg_ra)

(* -- globals ----------------------------------------------------------------- *)

let encode_int v size =
  let b = Bytes.create size in
  for i = 0 to size - 1 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done;
  Bytes.to_string b

let emit_globals ctx =
  List.iter
    (fun (g : T.global) ->
      let size = max 1 (sizeof ctx g.T.gty) in
      B.data_align ctx.b (max 8 (alignof ctx g.T.gty));
      B.data_label ctx.b g.T.gname;
      match g.T.ginit with
      | T.Izero -> B.data_zeros ctx.b size
      | T.Iint v -> (
          match g.T.gty with
          | Tint { bits; _ } ->
              B.data_bytes ctx.b (encode_int v (bits / 8));
              B.data_zeros ctx.b (size - (bits / 8))
          | _ ->
              if v <> 0L then err "non-null pointer constant initializer for %s" g.T.gname;
              B.data_zeros ctx.b size)
      | T.Ilist vs -> (
          match g.T.gty with
          | Tarray ((Tint { bits; _ } as ety), n) ->
              let esz = bits / 8 in
              List.iter (fun v -> B.data_bytes ctx.b (encode_int v esz)) vs;
              B.data_zeros ctx.b ((n - List.length vs) * esz);
              ignore ety
          | _ -> err "list initializer for non-array %s" g.T.gname)
      | T.Istr s -> (
          match g.T.gty with
          | Tarray (Tint { bits = 8; _ }, n) ->
              B.data_bytes ctx.b s;
              B.data_zeros ctx.b (n - String.length s)
          | Tptr _ ->
              (* pointer to a string literal: space now, initialized by
                 the startup stub *)
              B.data_zeros ctx.b size
          | _ -> err "string initializer for %s" g.T.gname))
    ctx.prog.T.globals

(* startup stub: initialize pointer globals, call main, exit *)
let gen_start ctx =
  B.label ctx.b "_start";
  List.iter
    (fun (g : T.global) ->
      match (g.T.ginit, g.T.gty) with
      | T.Istr s, Tptr _ ->
          let label = intern_string ctx s in
          let v = materialize ctx (Aglobal (label, 0)) in
          store_addr ctx (Aglobal (g.T.gname, 0)) g.T.gty v;
          free_temp ctx v
      | _ -> ())
    ctx.prog.T.globals;
  emit ctx (I.Jal (I.Sym "fn_main"));
  emit ctx (I.Alu (I.ADD, 4, Abi.reg_ret, 0));
  emit ctx (I.Li (Abi.reg_ret, imm Machine.syscall_exit));
  emit ctx I.Syscall

(* -- entry points -------------------------------------------------------------- *)

let compile ?(trapv = false) abi (prog : T.program) : Asm.linked =
  let ctx =
    {
      abi;
      trapv;
      prog;
      b = B.create ();
      strings = Hashtbl.create 16;
      locals = [];
      frame_size = 0;
      cur_push = 0;
      int_free = Abi.int_temp_regs;
      cap_free = Abi.cap_temp_regs;
      live = [];
      epilogue = "";
      break_labels = [];
      continue_labels = [];
    }
  in
  gen_start ctx;
  List.iter (gen_function ctx) prog.T.funcs;
  emit_globals ctx;
  Asm.link ctx.b

let compile_source ?trapv abi src = compile ?trapv abi (Minic.Typecheck.compile src)

let machine_config ?(trapv = false) abi =
  let cfg =
    match abi with
    | Abi.Mips -> Machine.default_config Cheri_core.Cap_ops.V3
    | Abi.Cheri r -> Machine.default_config r
  in
  { cfg with Machine.trap_on_signed_overflow = trapv }

let machine_for ?config ?trapv abi linked =
  let config = match config with Some c -> c | None -> machine_config ?trapv abi in
  Asm.make_machine ~config linked

let run ?fuel ?config ?trapv abi src =
  let linked = compile_source ?trapv abi src in
  let m = machine_for ?config ?trapv abi linked in
  (Machine.run ?fuel m, m)
