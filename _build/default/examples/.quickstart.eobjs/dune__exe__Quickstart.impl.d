examples/quickstart.ml: Cheri_compiler Cheri_core Cheri_interp Cheri_isa Format List Result
