examples/gc_demo.ml: Cheri_core Cheri_gc Cheri_tagmem Format Int64
