examples/packet_filter.ml: Cheri_compiler Cheri_core Cheri_isa Format List
