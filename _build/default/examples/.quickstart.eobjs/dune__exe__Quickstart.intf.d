examples/quickstart.mli:
