examples/sandbox.ml: Cheri_asm Cheri_core Cheri_isa Format
