examples/sandbox.mli:
