(* Compartmentalization with capabilities, at the ISA level.

     dune exec examples/sandbox.exe

   "The total memory that is reachable from a piece of code is the
   transitive closure of the memory capabilities reachable from its
   capability registers" (§4.1). We hand a hand-written "plugin"
   routine a deliberately narrowed capability — bounded to one buffer,
   with the store permission removed (the __input qualifier) — and
   watch the hardware stop each escape attempt:

   1. reading inside the window works;
   2. writing through the read-only capability traps;
   3. walking past the window's end traps;
   4. and the plugin cannot conjure rights: deriving from its own
      capability can only shrink it. *)

module I = Cheri_isa.Insn
module Machine = Cheri_isa.Machine
module Asm = Cheri_asm.Asm
module Perms = Cheri_core.Perms

let imm v = I.Imm v

(* Build: a 64-byte public window inside a larger secret buffer. The
   monitor (code before the plugin) derives the narrowed capability in
   c3; the plugin may only use c3. Each scenario is its own program,
   sharing the same prologue. *)
let program ~attack =
  let b = Asm.Builder.create () in
  let e = Asm.Builder.emit b in
  (* monitor: allocate 256 bytes, write a secret at +192, a public
     value at +64, then derive the plugin's window [64, 128) *)
  e (I.Li (2, imm Machine.syscall_malloc));
  e (I.Li (4, imm 256L));
  e I.Syscall;
  e (I.Li (8, imm 0x5ec2e7L));
  e (I.Cstore { w = I.D; rv = 8; cb = 1; roff = 0; off = 192 });
  e (I.Li (8, imm 42L));
  e (I.Cstore { w = I.D; rv = 8; cb = 1; roff = 0; off = 64 });
  (* narrow: base += 64, length = 64, drop stores: the __input view *)
  e (I.Li (9, imm 64L));
  e (I.Cincbase (3, 1, 9));
  e (I.Csetoffset (3, 3, 0));  (* cursor to the window base *)
  e (I.Csetlen (3, 3, 9));
  e (I.Candperm (3, 3, Perms.to_bits Perms.read_only));
  (* wipe every other capability register the plugin could steal *)
  e (I.Ccleartag (1, 1));
  e (I.Ccleartag (11, 11));
  (* plugin code runs here, with only c3 *)
  attack b e;
  (* plugin returns its result in r4; exit *)
  e (I.Li (2, imm Machine.syscall_exit));
  e I.Syscall;
  Asm.make_machine (Asm.link b)

let run name m =
  match Machine.run m with
  | Machine.Exit code -> Format.printf "%-28s exit(%Ld)@." name code
  | Machine.Trap { trap; _ } -> Format.printf "%-28s trap: %a@." name Machine.pp_trap trap
  | o -> Format.printf "%-28s %a@." name Machine.pp_outcome o

let () =
  Format.printf "a plugin holding only a 64-byte read-only window:@.@.";

  run "read inside the window"
    (program ~attack:(fun _b e ->
         e (I.Cload { w = I.D; signed = false; rd = 4; cb = 3; roff = 0; off = 0 })));

  run "write through __input cap"
    (program ~attack:(fun _b e ->
         e (I.Li (8, imm 1L));
         e (I.Cstore { w = I.D; rv = 8; cb = 3; roff = 0; off = 0 })));

  run "read past the window (+128)"
    (program ~attack:(fun _b e ->
         (* the secret lives at +128 relative to the window base *)
         e (I.Cload { w = I.D; signed = false; rd = 4; cb = 3; roff = 0; off = 128 })));

  run "grow own bounds"
    (program ~attack:(fun _b e ->
         e (I.Li (8, imm 256L));
         e (I.Csetlen (4, 3, 8));
         e (I.Cload { w = I.D; signed = false; rd = 4; cb = 4; roff = 0; off = 128 })));

  run "forge from an integer"
    (program ~attack:(fun _b e ->
         (* guess the secret's virtual address, stuff it into an
            integer, and try to use it as a pointer: the result is an
            untagged capability *)
         e (I.Cgetbase (8, 3));
         e (I.Alui (I.ADD, 8, 8, imm 128L));
         e (I.Ccleartag (5, 3));
         e (I.Csetoffset (5, 5, 8));
         e (I.Cload { w = I.D; signed = false; rd = 4; cb = 5; roff = 0; off = 0 })));

  run "use the wiped registers"
    (program ~attack:(fun _b e ->
         e (I.Cload { w = I.D; signed = false; rd = 4; cb = 1; roff = 0; off = 192 })));

  (* sealed capabilities: an opaque token the plugin can hold and hand
     back, but neither use nor tamper with *)
  Format.printf "@.with a sealed token (CSeal otype=9) in c6:@.@.";
  let sealed_program ~attack =
    program ~attack:(fun b e ->
        (* monitor seals a window capability before the plugin runs;
           built here inside `attack` position so the token exists —
           the first emitted block is still monitor code *)
        e (I.Li (8, imm 9L));
        e (I.Cfromptr (7, 0, 8));
        e (I.Cseal (6, 3, 7));
        e (I.Ccleartag (7, 7));
        attack b e)
  in
  run "deref the sealed token"
    (sealed_program ~attack:(fun _b e ->
         e (I.Cload { w = I.D; signed = false; rd = 4; cb = 6; roff = 0; off = 0 })));
  run "modify the sealed token"
    (sealed_program ~attack:(fun _b e -> e (I.Cincoffsetimm (6, 6, 8L))));
  run "unseal with forged authority"
    (sealed_program ~attack:(fun _b e ->
         e (I.Li (8, imm 9L));
         e (I.Ccleartag (5, 3));
         e (I.Csetoffset (5, 5, 8));
         e (I.Cunseal (4, 6, 5))));

  Format.printf
    "@.only the in-window read succeeds; every escape is a capability trap.@.";
  Format.printf
    "(the legacy path through the DDC is the remaining hole — a real@.";
  Format.printf
    " compartment also clears or narrows c0, which the kernel does per-domain.)@."
