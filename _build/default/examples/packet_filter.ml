(* The paper's motivating scenario (§5.2): tcpdump-style packet
   dissection "runs as root ... often used for inspecting suspicious
   network traffic", so a malformed packet that drives the parser out
   of its buffer is a real attack surface.

     dune exec examples/packet_filter.exe

   We feed a dissector a packet whose IPv4 header-length field lies
   (ihl larger than the captured bytes). The parser trusts it — the
   classic bug. Under the MIPS ABI the out-of-bounds read silently
   returns adjacent heap memory (here: a "secret" allocation); under
   CHERIv3 the same binary-level access faults at the exact
   instruction, because the packet buffer capability ends where the
   packet ends. *)

module Machine = Cheri_isa.Machine
module Abi = Cheri_compiler.Abi

let dissector =
  {|
/* a dissector with a header-length bug: it believes the ihl field */
long parse(const unsigned char *pkt, long caplen) {
  if (caplen < 20) return -1;
  long ihl = (pkt[0] & 15) * 4;          /* attacker-controlled */
  /* BUG: no check that ihl <= caplen before reading the "options" */
  long leak = 0;
  for (long i = 20; i < ihl; i++) leak = (leak << 8) | pkt[i];
  return leak;
}

int main(void) {
  /* the "secret" the attacker wants sits right after the packet */
  unsigned char *pkt = (unsigned char *)malloc(24);
  char *secret = (char *)malloc(16);
  secret[0] = 'K'; secret[1] = 'E'; secret[2] = 'Y'; secret[3] = '!';

  /* a minimal evil packet: version 4, ihl = 15 (60 bytes of header!)
     but only 24 bytes were captured */
  pkt[0] = 0x4f;
  for (int i = 1; i < 24; i++) pkt[i] = 0;

  long leaked = parse(pkt, 24);
  print_str("parser returned: ");
  print_int(leaked);
  print_char('\n');
  return 0;
}
|}

let () =
  Format.printf "A malformed packet with a lying header-length field:@.@.";
  List.iter
    (fun abi ->
      Format.printf "--- %s ---@." (Abi.name abi);
      match Cheri_compiler.Codegen.run abi dissector with
      | Machine.Exit code, m ->
          Format.printf "%s" (Machine.output m);
          Format.printf "exit %Ld — the overread SILENTLY SUCCEEDED; adjacent heap bytes@." code;
          Format.printf "(possibly the secret) flowed into attacker-visible output.@.@."
      | Machine.Trap { trap; pc }, m ->
          Format.printf "%s" (Machine.output m);
          Format.printf "TRAPPED at pc=%d: %a@." pc Machine.pp_trap trap;
          Format.printf "the packet capability is %d bytes long; byte 24 does not exist.@.@."
            24
      | o, _ -> Format.printf "%a@.@." Machine.pp_outcome o)
    [ Abi.Mips; Abi.Cheri Cheri_core.Cap_ops.V3 ];
  Format.printf
    "The paper's fix for tcpdump went further: two changed lines gave the@.";
  Format.printf
    "dissector a READ-ONLY view of just the packet (not the whole buffer),@.";
  Format.printf "using the __input qualifier that drops the store permission.@."
