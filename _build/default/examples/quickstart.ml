(* Quickstart: a tour of the library in one file.

     dune exec examples/quickstart.exe

   1. build and manipulate capabilities with the CHERIv3 semantics;
   2. run one C program under several interpretations of the C
      abstract machine and watch where it faults;
   3. compile the same program to the simulated CHERI softcore under
      the MIPS and pure-capability ABIs and compare cycle counts. *)

module Cap = Cheri_core.Capability
module Ops = Cheri_core.Cap_ops
module Perms = Cheri_core.Perms

let banner s = Format.printf "@.== %s ==@." s

(* -- 1. capabilities ------------------------------------------------------ *)

let capabilities () =
  banner "capabilities";
  (* a 64-byte object at 0x1000, full rights *)
  let c = Cap.make ~base:0x1000L ~length:64L ~perms:Perms.all in
  Format.printf "fresh:        %a@." Cap.pp c;

  (* CHERIv3 pointer arithmetic moves the offset, never the bounds *)
  let c = Result.get_ok (Ops.ptr_add V3 c 48L) in
  Format.printf "p + 48:       %a@." Cap.pp c;

  (* walking out of bounds is fine; dereferencing there is not *)
  let out = Result.get_ok (Ops.ptr_add V3 c 100L) in
  Format.printf "p + 148:      %a (still tagged!)@." Cap.pp out;
  (match Ops.load_check out ~addr:(Cap.address out) ~size:1 with
  | Error f -> Format.printf "  deref:      trap: %a@." Cheri_core.Cap_fault.pp f
  | Ok () -> assert false);

  (* dropping write permission is the hardware __input qualifier *)
  let ro = Ops.c_and_perm c Perms.read_only in
  (match Ops.store_check ro ~addr:(Cap.address ro) ~size:8 with
  | Error f -> Format.printf "write via __input cap: trap: %a@." Cheri_core.Cap_fault.pp f
  | Ok () -> assert false);

  (* rights can only shrink: a derived capability is always a subset *)
  assert (Cap.subset_of ro c)

(* -- 2. one program, many abstract machines -------------------------------- *)

let overflowing_program =
  {|
int main(void) {
  char *buf = (char *)malloc(16);
  buf[2] = 'o';
  buf[18] = 'x';     /* two past the end */
  return buf[2];
}
|}

let abstract_machines () =
  banner "one buggy program under seven pointer models";
  List.iter
    (fun (name, outcome) ->
      Format.printf "%-16s %a@." name Cheri_interp.Interp.pp_outcome outcome)
    (Cheri_interp.Interp.run_all overflowing_program)

(* -- 3. compile to the softcore -------------------------------------------- *)

let pointer_chase =
  {|
struct node { struct node *next; long v; };
int main(void) {
  struct node *head = (struct node *)0;
  for (long i = 0; i < 2000; i++) {
    struct node *n = (struct node *)malloc(sizeof(struct node));
    n->v = i;
    n->next = head;
    head = n;
  }
  long s = 0;
  for (int pass = 0; pass < 10; pass++)
    for (struct node *p = head; p; p = p->next) s = s + p->v;
  print_int(s);
  print_char('\n');
  return 0;
}
|}

let softcore () =
  banner "the same list-walk compiled for each ABI";
  List.iter
    (fun abi ->
      match Cheri_compiler.Codegen.run abi pointer_chase with
      | Cheri_isa.Machine.Exit 0L, m ->
          let st = Cheri_isa.Machine.stats m in
          Format.printf "%-10s %9d cycles  %8d instret  %6d L1 misses   output: %s"
            (Cheri_compiler.Abi.name abi) st.Cheri_isa.Machine.st_cycles
            st.Cheri_isa.Machine.st_instret st.Cheri_isa.Machine.st_l1_misses
            (Cheri_isa.Machine.output m)
      | o, _ -> Format.printf "%-10s %a@." (Cheri_compiler.Abi.name abi) Cheri_isa.Machine.pp_outcome o)
    Cheri_compiler.Abi.all;
  Format.printf
    "(note the capability ABIs miss more: every pointer is 32 bytes of cache)@."

let () =
  capabilities ();
  abstract_machines ();
  softcore ()
