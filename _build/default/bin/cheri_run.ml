(* Run a mini-C source file on the abstract machine under a chosen
   pointer model (default CHERIv3):

     cheri-run [-m pdp11|hardbound|mpx|relaxed|strict|cheriv2|cheriv3] file.c
     cheri-run -a file.c          # run under every model
     cheri-run -S [-abi mips|v2|v3] file.c   # dump softcore assembly
     cheri-run -x [-abi mips|v2|v3] file.c   # compile and execute on the softcore *)

let usage () =
  prerr_endline "usage: cheri-run [-m MODEL] [-a] [-S|-x [-abi ABI]] file.c";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let report name outcome =
  match outcome with
  | Cheri_interp.Interp.Exit (code, out) ->
      print_string out;
      Format.printf "[%s] exit %Ld@." name code
  | Fault (f, out) ->
      print_string out;
      Format.printf "[%s] FAULT: %a@." name Cheri_models.Fault.pp f
  | Stuck msg -> Format.printf "[%s] stuck: %s@." name msg

let dump_assembly abi src =
  let linked = Cheri_compiler.Codegen.compile_source abi src in
  Array.iteri (fun i insn -> Format.printf "%5d  %a@." i Cheri_isa.Insn.pp insn)
    linked.Cheri_asm.Asm.code;
  Format.printf "; data segment: %d bytes at 0x%Lx@."
    (Bytes.length linked.Cheri_asm.Asm.data)
    linked.Cheri_asm.Asm.data_base;
  List.iter (fun (s, i) -> Format.printf "; code symbol %-24s -> %d@." s i)
    (List.sort compare linked.Cheri_asm.Asm.code_symbols)

let execute_on_softcore abi src =
  let outcome, m = Cheri_compiler.Codegen.run abi src in
  print_string (Cheri_isa.Machine.output m);
  let st = Cheri_isa.Machine.stats m in
  Format.printf "[%s] %a  (%d cycles, %d instructions)@."
    (Cheri_compiler.Abi.name abi)
    Cheri_isa.Machine.pp_outcome outcome st.Cheri_isa.Machine.st_cycles
    st.Cheri_isa.Machine.st_instret

let () =
  let model = ref "cheriv3" in
  let all = ref false in
  let dump = ref false in
  let exec = ref false in
  let abi = ref Cheri_compiler.Abi.(Cheri Cheri_core.Cap_ops.V3) in
  let file = ref None in
  let rec parse = function
    | "-m" :: m :: rest ->
        model := m;
        parse rest
    | "-a" :: rest ->
        all := true;
        parse rest
    | "-S" :: rest ->
        dump := true;
        parse rest
    | "-x" :: rest ->
        exec := true;
        parse rest
    | "-abi" :: a :: rest ->
        (match Cheri_compiler.Abi.of_key a with
        | Some x -> abi := x
        | None ->
            Format.eprintf "unknown ABI %s@." a;
            exit 2);
        parse rest
    | f :: rest ->
        file := Some f;
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !file with
  | None -> usage ()
  | Some path -> (
      let src = read_file path in
      match
        try Ok (Minic.Typecheck.compile src) with
        | Minic.Typecheck.Type_error m -> Error ("type error: " ^ m)
        | Minic.Parser.Parse_error (m, line) ->
            Error (Printf.sprintf "parse error at line %d: %s" line m)
        | Minic.Lexer.Lex_error (m, line) ->
            Error (Printf.sprintf "lex error at line %d: %s" line m)
      with
      | Error msg ->
          prerr_endline msg;
          exit 1
      | Ok prog ->
          if !dump then dump_assembly !abi src
          else if !exec then execute_on_softcore !abi src
          else if !all then
            List.iter
              (fun m ->
                let module M = (val m : Cheri_models.Model.S) in
                let module I = Cheri_interp.Interp.Make (M) in
                report M.name (I.run_program prog))
              Cheri_models.Registry.all
          else
            match Cheri_models.Registry.by_key !model with
            | None ->
                Format.eprintf "unknown model %s@." !model;
                exit 2
            | Some m ->
                let module M = (val m) in
                let module I = Cheri_interp.Interp.Make (M) in
                report M.name (I.run_program prog))
