(* Static idiom analysis over mini-C source files — the Table 1
   analyzer as a command-line tool:

     cheri-analyze file.c [more.c ...]
     cheri-analyze --no-opt file.c      # count idioms even in dead code *)

let usage () =
  prerr_endline "usage: cheri-analyze [--no-opt] file.c [more.c ...]";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let optimize = ref true in
  let files = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with "--no-opt" -> optimize := false | f -> files := f :: !files)
    Sys.argv;
  let files = List.rev !files in
  if files = [] then usage ();
  let total = ref Cheri_analysis.Idiom.Counts.zero in
  List.iter
    (fun path ->
      match
        try Ok (Cheri_analysis.Finder.analyze_source ~optimize:!optimize (read_file path)) with
        | Minic.Typecheck.Type_error m -> Error ("type error: " ^ m)
        | Minic.Parser.Parse_error (m, line) ->
            Error (Printf.sprintf "parse error at line %d: %s" line m)
        | Minic.Lexer.Lex_error (m, line) ->
            Error (Printf.sprintf "lex error at line %d: %s" line m)
        | Sys_error m -> Error m
      with
      | Ok counts ->
          total := Cheri_analysis.Idiom.Counts.add !total counts;
          Format.printf "%-32s %a@." path Cheri_analysis.Idiom.Counts.pp counts
      | Error msg ->
          Format.eprintf "%s: %s@." path msg;
          exit 1)
    files;
  if List.length files > 1 then Format.printf "%-32s %a@." "TOTAL" Cheri_analysis.Idiom.Counts.pp !total
