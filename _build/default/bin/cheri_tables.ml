(* Print the paper's tables and figures from the command line:

     cheri-tables            # every table and figure (slow: runs the simulator)
     cheri-tables t1         # the idiom survey over the synthetic corpus
     cheri-tables t3         # idioms vs abstract-machine interpretations
     cheri-tables t4         # porting effort
     cheri-tables f1..f4     # the performance figures *)

module W = Cheri_workloads

let ppf = Format.std_formatter

let run = function
  | "t1" -> Cheri_analysis.Corpus.print ppf (Cheri_analysis.Corpus.run ())
  | "t3" -> Cheri_interp.Table3.print ppf ()
  | "t4" -> W.Port_audit.print ppf (W.Port_audit.table4 ())
  | "f1" -> W.Figures.print_figure1 ppf (W.Figures.figure1 ())
  | "f2" -> W.Figures.print_figure2 ppf (W.Figures.figure2 ())
  | "f3" -> W.Figures.print_figure3 ppf (W.Figures.figure3 ())
  | "f4" -> W.Figures.print_figure4 ppf (W.Figures.figure4 ())
  | other ->
      Format.eprintf "unknown table %s (expected t1, t3, t4, f1, f2, f3, f4)@." other;
      exit 2

let () =
  (try
     if Array.length Sys.argv > 1 then run Sys.argv.(1)
     else List.iter run [ "t1"; "t3"; "t4"; "f1"; "f2"; "f3"; "f4" ]
   with W.Runner.Run_failed msg ->
     Format.eprintf "run failed: %s@." msg;
     exit 1);
  Format.pp_print_flush ppf ()
