(** Parallel execution engine for bench sweeps and fuzz campaigns.

    Tasks are independent (workload x ABI) runs; {!Pool.map} fans them
    over OCaml 5 domains with deterministic result ordering, structured
    fault capture, bounded seeded-jitter retry and per-task timing.
    {!Pool.map_sliced} adds preemptive time-slicing: tasks advance in
    bounded slices through a shared round-robin queue, so long tasks
    cannot starve short ones and campaigns can checkpoint at every
    yield point. *)

module Pool : sig
  type error = { task : int; exn : string; backtrace : string }
  (** a worker exception, attributed to the task that raised it *)

  type 'a cell = {
    index : int;  (** submission index: position in the input list *)
    result : ('a, error) result;
    elapsed_s : float;
        (** wall-clock spent on this task alone, all attempts/slices *)
    attempts : int;  (** 1 unless retries were needed *)
    slices : int;
        (** slice executions under {!map_sliced}; always 1 under {!map} *)
  }

  exception Worker_failed of error

  val default_jobs : unit -> int
  (** [min 4 (Domain.recommended_domain_count ())], at least 1. *)

  val now : unit -> float
  (** [Unix.gettimeofday]; exposed for callers that time around a map. *)

  val backoff_duration :
    ?cap_s:float -> base_s:float -> seed:int -> task:int -> attempt:int -> unit -> float
  (** The pause taken before retry [attempt] (1-based) of [task]:
      decorrelated jitter, each pause uniform in [\[base_s, 3 x previous\]]
      and capped at [cap_s] (default [64 x base_s]; a non-positive
      [cap_s] falls back to the default, and a [cap_s] below [base_s]
      clamps to [base_s]). The cap is an explicit contract, not an
      artifact of the curve: no (seed, task, attempt) can quote a pause
      above it, so a caller that surfaces these pauses as client-facing
      retry-after hints can bound the worst hint it will ever emit.
      Pure in its arguments, so a retry schedule is reproducible across
      runs and testable without sleeping. Returns 0 when
      [base_s <= 0]. *)

  val map :
    ?jobs:int ->
    ?retries:int ->
    ?backoff_s:float ->
    ?backoff_seed:int ->
    ?obs:Cheri_obs.Obs.t ->
    ?on_result:('a cell -> unit) ->
    ('t -> 'a) ->
    't list ->
    'a cell list
  (** Run the function over every task on up to [jobs] domains
      (default 1: sequential in the calling domain) and return cells in
      submission order. A failing task is retried up to [retries] times
      (default 0), pausing {!backoff_duration} seconds between attempts
      ([backoff_s] base, default 0.05 s; [backoff_seed] decorrelates
      schedules across runs, default 0); the surviving error is
      recorded, never raised. [on_result] fires once per finished task,
      serialized under a mutex, in completion order.

      [obs] (default {!Cheri_obs.Obs.default}) receives the pool
      metrics: [pool_tasks_total], [pool_task_retries_total] and
      [pool_task_slices_total] counters (values independent of [jobs])
      plus [pool_queue_wait_seconds] and [pool_task_seconds]
      histograms. Two live-progress counters ride along for watchers
      that read the registry mid-run: [pool_retries_total] ticks at the
      moment a retry is decided (not when the task's cell is finally
      recorded) and [pool_requeues_total] ticks every time a sliced
      task yields back to the queue — together with per-cell [slices]
      they let a chaos harness bound "work lost to a crash" from
      metrics alone. *)

  (** What one slice of work produced: either an updated state to
      continue from, or the task's final result. *)
  type ('s, 'r) progress = Yield of 's | Done of 'r

  val map_sliced :
    ?jobs:int ->
    ?retries:int ->
    ?backoff_s:float ->
    ?backoff_seed:int ->
    ?obs:Cheri_obs.Obs.t ->
    ?on_result:('r cell -> unit) ->
    init:('t -> 's) ->
    slice:('s -> ('s, 'r) progress) ->
    't list ->
    'r cell list
  (** Preemptive {!map}: [init] builds a task's state, and the engine
      then advances tasks one bounded [slice] call at a time through a
      shared FIFO — a task that yields goes to the back of the queue,
      so live tasks share the workers round-robin regardless of their
      total length. Retry semantics match {!map}, with one rule: a
      retry restarts from [init] (a state that faulted mid-slice is
      never resumed). For deterministic tasks the returned cells are
      bit-identical for every (jobs, slice-granularity) choice; only
      [elapsed_s] varies. *)

  (** The dynamic preemptive engine: {!map_sliced} semantics without a
      fixed task list. A long-running service submits tasks as they
      arrive over the wire while earlier tasks are mid-slice; domains
      are spawned once at {!Stream.create} and park on a condition
      variable when idle. *)
  module Stream : sig
    type ('t, 's, 'r) t

    val create :
      ?jobs:int ->
      ?retries:int ->
      ?backoff_s:float ->
      ?backoff_seed:int ->
      ?obs:Cheri_obs.Obs.t ->
      init:('t -> 's) ->
      slice:('s -> ('s, 'r) progress) ->
      on_result:('r cell -> unit) ->
      unit ->
      ('t, 's, 'r) t
    (** Spawn [max 1 jobs] worker domains (the caller's domain is never
        a worker — it stays free to feed the stream) sharing one FIFO.
        Slice, retry, requeue and metrics semantics are {e the same
        code} as {!map_sliced}. [on_result] is the only result channel
        (cells stream out in completion order, serialized under one
        mutex); cell [index] is the value {!submit} returned. *)

    val submit : ('t, 's, 'r) t -> 't -> int
    (** Enqueue a task; returns its submission index. The task may
        start — and even finish — before [submit] returns, so any state
        keyed by the index must be registered before calling.
        Raises [Invalid_argument] after {!close}. *)

    val live : ('t, 's, 'r) t -> int
    (** Tasks submitted and not yet delivered to [on_result]. *)

    val close : ('t, 's, 'r) t -> unit
    (** Refuse further submissions, drain every live task to its
        result, and join the worker domains. *)
  end

  val get : 'a cell -> 'a
  (** The task's value, or raises {!Worker_failed} with its error. *)

  val serial_seconds : 'a cell list -> float
  (** Sum of per-task elapsed times: the serial cost of the sweep, to
      compare against the wall-clock of the parallel run. *)

  val pp_error : Format.formatter -> error -> unit
end

val wall : (unit -> 'a) -> 'a * float
(** Wall-clock a thunk; the companion to {!Pool.serial_seconds} when
    reporting sweep speedups. *)
