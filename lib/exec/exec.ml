(* Parallel execution engine for bench sweeps and fuzz campaigns.

   The evaluation is embarrassingly parallel: every (workload x ABI)
   cell of the tables/figures and every fuzz seed is an independent run
   whose state — machine, heap, telemetry sink — is created per run.
   [Pool.map] fans such tasks over a fixed-size pool of OCaml 5
   domains with:

   - deterministic result ordering: results are keyed by submission
     index, so a 1-domain and an N-domain run of the same task list
     produce identical ordered results;
   - fault capture: an exception escaping a worker becomes a structured
     per-task error, never takes down the sweep or the other tasks
     (skip-and-record degradation);
   - bounded retry with seeded decorrelated-jitter backoff, for faults
     that are transient at the host level (fd exhaustion, OOM-killed
     child state) rather than deterministic task bugs;
   - per-task wall-clock timing, so sweeps can report an honest
     serial-time / wall-time speedup;
   - an [on_result] progress hook, serialized across domains, that
     campaigns use to append checkpoint records as tasks finish.

   [Pool.map_sliced] is the preemptive variant: tasks advance in
   bounded slices through a shared FIFO, so one enormous task cannot
   monopolize a worker while short tasks starve behind it, and a
   campaign can persist a checkpoint at every yield point. *)

module Obs = Cheri_obs.Obs

module Pool = struct
  type error = { task : int; exn : string; backtrace : string }
  (** a worker exception, attributed to the task that raised it *)

  type 'a cell = {
    index : int;  (** submission index: position in the input list *)
    result : ('a, error) result;
    elapsed_s : float;  (** wall-clock spent on this task alone, all attempts *)
    attempts : int;  (** 1 unless retries were needed *)
    slices : int;
        (** slice executions under {!map_sliced}; always 1 under {!map} *)
  }

  exception Worker_failed of error

  (* Modest default: sweeps are memory-bandwidth-heavy simulations, so
     past a handful of domains the extra cores mostly contend. *)
  let default_jobs () = max 1 (min 4 (Domain.recommended_domain_count ()))

  let now = Unix.gettimeofday

  (* --- retry backoff ------------------------------------------------ *)

  (* SplitMix64, inlined (the seeded RNG of the fault campaigns lives in
     a library that depends on this one). Good enough to decorrelate
     sleep intervals; not used for anything statistical. *)
  let sm64 x =
    let open Int64 in
    let z = add x 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let unit_float ~seed ~task ~attempt =
    let h = sm64 (Int64.of_int seed) in
    let h = sm64 (Int64.logxor h (Int64.of_int task)) in
    let h = sm64 (Int64.logxor h (Int64.of_int attempt)) in
    Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

  (* Decorrelated jitter (the "AWS architecture blog" variant): each
     pause is uniform in [base, 3 * previous pause], capped at 64x the
     base. Compared with pure exponential doubling this spreads
     simultaneous retries apart — when a host-level fault (fd
     exhaustion, memory pressure) hits several workers at once, they
     come back staggered instead of in lockstep. The function is pure
     in (seed, task, attempt), so a retry schedule is reproducible and
     testable without sleeping. *)
  let backoff_duration ?cap_s ~base_s ~seed ~task ~attempt () =
    if base_s <= 0. || attempt < 1 then 0.
    else begin
      let cap =
        match cap_s with
        | Some c when c > 0. -> Float.max base_s c
        | _ -> 64. *. base_s
      in
      let prev = ref base_s in
      for a = 1 to attempt do
        let u = unit_float ~seed ~task ~attempt:a in
        let hi = Float.max base_s (3. *. !prev) in
        prev := Float.min cap (base_s +. (u *. (hi -. base_s)))
      done;
      !prev
    end

  (* --- the run-to-completion engine (map) --------------------------- *)

  (* metric handles resolved once per map call, not per task; counter
     values (tasks, retries, slices) are jobs-independent by
     construction — only the histograms carry wall time *)
  type pool_metrics = {
    pm_tasks : Obs.Counter.t;
    pm_retries : Obs.Counter.t;
    pm_slices : Obs.Counter.t;
    pm_retry_events : Obs.Counter.t;
        (* like pm_retries but incremented at retry time, not when the
           task's cell is recorded — a supervisor watching the registry
           mid-campaign sees retries as they happen *)
    pm_requeues : Obs.Counter.t;
        (* one increment per Yield that sends a task to the back of the
           queue; chaos harnesses bound "slices lost to a crash" from
           this and the per-cell slice counts alone *)
    pm_wait : Obs.Histogram.t;
    pm_wall : Obs.Histogram.t;
  }

  let pool_metrics obs =
    {
      pm_tasks = Obs.counter obs "pool_tasks_total";
      pm_retries = Obs.counter obs "pool_task_retries_total";
      pm_slices = Obs.counter obs "pool_task_slices_total";
      pm_retry_events = Obs.counter obs "pool_retries_total";
      pm_requeues = Obs.counter obs "pool_requeues_total";
      pm_wait = Obs.histogram obs "pool_queue_wait_seconds";
      pm_wall = Obs.histogram obs "pool_task_seconds";
    }

  let observe_cell pm cell =
    Obs.Counter.incr pm.pm_tasks;
    if cell.attempts > 1 then Obs.Counter.incr ~by:(cell.attempts - 1) pm.pm_retries;
    Obs.Counter.incr ~by:cell.slices pm.pm_slices;
    Obs.Histogram.observe pm.pm_wall cell.elapsed_s

  let run_task ~retries ~backoff_s ~backoff_seed ~pm ~t_map f inputs results on_result i =
    let t0 = now () in
    (* run-to-completion tasks wait in the cursor queue from map start
       until a domain claims them *)
    Obs.Histogram.observe pm.pm_wait (t0 -. t_map);
    let attempt k =
      try Ok (f inputs.(i))
      with e ->
        let backtrace = Printexc.get_backtrace () in
        Error { task = i; exn = Printexc.to_string e ^ Printf.sprintf " (attempt %d)" k; backtrace }
    in
    let rec go k =
      match attempt k with
      | Ok _ as ok -> (ok, k)
      | Error _ as err when k > retries -> (err, k)
      | Error _ ->
          (* transient-fault hypothesis: give the host a staggered
             moment before retrying *)
          Obs.Counter.incr pm.pm_retry_events;
          let pause =
            backoff_duration ~base_s:backoff_s ~seed:backoff_seed ~task:i ~attempt:k ()
          in
          if pause > 0. then Unix.sleepf pause;
          go (k + 1)
    in
    let result, attempts = go 1 in
    let cell = { index = i; result; elapsed_s = now () -. t0; attempts; slices = 1 } in
    observe_cell pm cell;
    results.(i) <- Some cell;
    on_result cell

  let serialize_hook on_result =
    match on_result with
    | None -> fun _ -> ()
    | Some hook ->
        let m = Mutex.create () in
        fun cell -> Mutex.protect m (fun () -> hook cell)

  let spawn_workers ~jobs ~n worker =
    if jobs <= 1 || n <= 1 then worker ()
    else begin
      (* results slots are disjoint per task and Domain.join gives the
         happens-before edge that publishes them to this domain *)
      let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
      List.iter Domain.join domains
    end

  let collect results =
    Array.to_list results
    |> List.map (function
         | Some cell -> cell
         | None -> assert false (* every index is claimed exactly once *))

  (* [map ~jobs f tasks] runs [f] over every task on up to [jobs]
     domains (default 1: sequential, in the calling domain — callers
     opt in to parallelism) and returns the cells in submission order.
     The work queue is a single atomic cursor: domains claim the next
     unclaimed index until the list is drained. A failing task is
     retried up to [retries] times (default 0) with decorrelated-jitter
     backoff starting at [backoff_s]; the surviving error never aborts
     the map. [on_result] fires once per finished task, serialized
     under one mutex, in completion (not submission) order. *)
  let map ?(jobs = 1) ?(retries = 0) ?(backoff_s = 0.05) ?(backoff_seed = 0) ?(obs = Obs.default)
      ?on_result f tasks : 'a cell list =
    let inputs = Array.of_list tasks in
    let n = Array.length inputs in
    let results = Array.make n None in
    if n > 0 then begin
      let cursor = Atomic.make 0 in
      let on_result = serialize_hook on_result in
      let pm = pool_metrics obs in
      let t_map = now () in
      let worker () =
        let rec drain () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            run_task ~retries ~backoff_s ~backoff_seed ~pm ~t_map f inputs results on_result i;
            drain ()
          end
        in
        drain ()
      in
      spawn_workers ~jobs ~n worker
    end;
    collect results

  (* --- the preemptive engine (map_sliced) --------------------------- *)

  type ('s, 'r) progress = Yield of 's | Done of 'r

  type ('t, 's) job = {
    j_index : int;
    j_task : 't;
    mutable j_state : 's option;  (** [None] until [init] has run *)
    mutable j_attempts : int;
    mutable j_slices : int;
    mutable j_elapsed : float;
    mutable j_ready : float;  (** when the job last entered the queue *)
  }

  (* Advance one job by one slice and route it: back of the queue on
     Yield, the result sink on Done or a spent retry budget, back to
     [init] (via the queue) on a fault with budget left. Shared by
     [map_sliced] (fixed task list) and [Stream] (live submissions) so
     the two engines cannot drift in retry/requeue/metrics semantics. *)
  let slice_step ~retries ~backoff_s ~backoff_seed ~pm ~init ~slice ~push ~record job =
    let t0 = now () in
    Obs.Histogram.observe pm.pm_wait (t0 -. job.j_ready);
    let step =
      try
        let s =
          match job.j_state with
          | Some s -> s
          | None ->
              let s = init job.j_task in
              job.j_state <- Some s;
              s
        in
        job.j_slices <- job.j_slices + 1;
        Ok (slice s)
      with e ->
        let backtrace = Printexc.get_backtrace () in
        Error
          {
            task = job.j_index;
            exn = Printexc.to_string e ^ Printf.sprintf " (attempt %d)" job.j_attempts;
            backtrace;
          }
    in
    job.j_elapsed <- job.j_elapsed +. (now () -. t0);
    match step with
    | Ok (Yield s') ->
        job.j_state <- Some s';
        Obs.Counter.incr pm.pm_requeues;
        push job
    | Ok (Done r) -> record job (Ok r)
    | Error e when job.j_attempts > retries -> record job (Error e)
    | Error _ ->
        Obs.Counter.incr pm.pm_retry_events;
        let pause =
          backoff_duration ~base_s:backoff_s ~seed:backoff_seed ~task:job.j_index
            ~attempt:job.j_attempts ()
        in
        if pause > 0. then Unix.sleepf pause;
        job.j_attempts <- job.j_attempts + 1;
        job.j_state <- None;
        push job

  (* [map_sliced ~init ~slice tasks] drives every task through
     repeated bounded [slice] calls instead of one run-to-completion
     call. A worker pops a task from the shared FIFO, advances it by
     exactly one slice, and on [Yield] pushes it to the back of the
     queue — so with T live tasks every task gets roughly every T-th
     slice (round-robin fair share), regardless of how long each task
     ultimately runs. [init] builds the per-task state (e.g. compile +
     create a machine); an exception from [init] or [slice] consumes
     one attempt, and a retry starts over from [init] — a half-advanced
     state is never resumed after a fault, because the fault may have
     corrupted it.

     Workers exit when they find the queue empty. That is safe: a task
     is either in the queue or held by exactly one worker, and the
     holder pushes it back (or records its cell) before popping again —
     so the last worker holding work drains it to completion. The tail
     of a sweep may therefore run on fewer domains than [jobs]; that
     costs only parallelism, never results.

     Determinism: cells come back in submission order, and each task's
     result depends only on its own init/slice sequence — so for
     deterministic tasks the results are bit-identical for every
     (jobs, slice-granularity) choice. *)
  let map_sliced ?(jobs = 1) ?(retries = 0) ?(backoff_s = 0.05) ?(backoff_seed = 0)
      ?(obs = Obs.default) ?on_result ~init ~slice tasks : 'r cell list =
    let inputs = Array.of_list tasks in
    let n = Array.length inputs in
    let results = Array.make n None in
    if n > 0 then begin
      let on_result = serialize_hook on_result in
      let pm = pool_metrics obs in
      let q = Queue.create () in
      let qm = Mutex.create () in
      let t_fill = now () in
      Array.iteri
        (fun i task ->
          Queue.push
            {
              j_index = i;
              j_task = task;
              j_state = None;
              j_attempts = 1;
              j_slices = 0;
              j_elapsed = 0.;
              j_ready = t_fill;
            }
            q)
        inputs;
      let pop () =
        Mutex.protect qm (fun () -> if Queue.is_empty q then None else Some (Queue.pop q))
      in
      let push job =
        job.j_ready <- now ();
        Mutex.protect qm (fun () -> Queue.push job q)
      in
      let record job result =
        let cell =
          {
            index = job.j_index;
            result;
            elapsed_s = job.j_elapsed;
            attempts = job.j_attempts;
            slices = job.j_slices;
          }
        in
        observe_cell pm cell;
        results.(job.j_index) <- Some cell;
        on_result cell
      in
      let worker () =
        let rec drain () =
          match pop () with
          | None -> ()
          | Some job ->
              slice_step ~retries ~backoff_s ~backoff_seed ~pm ~init ~slice ~push ~record job;
              drain ()
        in
        drain ()
      in
      spawn_workers ~jobs ~n worker
    end;
    collect results

  (* --- the dynamic preemptive engine (Stream) ----------------------- *)

  (* [map_sliced] needs the whole task list up front; a long-running
     service does not have one — tenants arrive over a socket while
     earlier tenants are mid-flight. [Stream] is the same sliced
     round-robin engine with a live submission side: domains are
     spawned at [create], [submit] enqueues a task at any later time,
     and [close] waits for the queue to drain. Results leave through
     [on_result] only (there is no final list to collect), serialized
     under one mutex exactly like the map engines. *)
  module Stream = struct
    type ('t, 's, 'r) t = {
      st_mu : Mutex.t;
      st_nonempty : Condition.t;
      st_q : ('t, 's) job Queue.t;
      mutable st_closed : bool;
      mutable st_next : int;  (* submission indices, 0-based *)
      mutable st_live : int;  (* submitted and not yet recorded *)
      mutable st_domains : unit Domain.t list;
    }

    let submit t task =
      Mutex.protect t.st_mu (fun () ->
          if t.st_closed then invalid_arg "Pool.Stream.submit: stream is closed";
          let i = t.st_next in
          t.st_next <- i + 1;
          t.st_live <- t.st_live + 1;
          Queue.push
            {
              j_index = i;
              j_task = task;
              j_state = None;
              j_attempts = 1;
              j_slices = 0;
              j_elapsed = 0.;
              j_ready = now ();
            }
            t.st_q;
          Condition.signal t.st_nonempty;
          i)

    let live t = Mutex.protect t.st_mu (fun () -> t.st_live)

    let create ?(jobs = 1) ?(retries = 0) ?(backoff_s = 0.05) ?(backoff_seed = 0)
        ?(obs = Obs.default) ~init ~slice ~on_result () =
      let pm = pool_metrics obs in
      let on_result = serialize_hook (Some on_result) in
      let t =
        {
          st_mu = Mutex.create ();
          st_nonempty = Condition.create ();
          st_q = Queue.create ();
          st_closed = false;
          st_next = 0;
          st_live = 0;
          st_domains = [];
        }
      in
      let push job =
        job.j_ready <- now ();
        Mutex.protect t.st_mu (fun () ->
            Queue.push job t.st_q;
            Condition.signal t.st_nonempty)
      in
      let record job result =
        let cell =
          {
            index = job.j_index;
            result;
            elapsed_s = job.j_elapsed;
            attempts = job.j_attempts;
            slices = job.j_slices;
          }
        in
        observe_cell pm cell;
        on_result cell;
        Mutex.protect t.st_mu (fun () ->
            t.st_live <- t.st_live - 1;
            (* the last record under a closed stream releases every
               worker parked on the condition *)
            if t.st_closed && t.st_live = 0 then Condition.broadcast t.st_nonempty)
      in
      let step job =
        slice_step ~retries ~backoff_s ~backoff_seed ~pm ~init ~slice ~push ~record job
      in
      let worker () =
        let rec next () =
          let job =
            Mutex.protect t.st_mu (fun () ->
                let rec wait () =
                  if not (Queue.is_empty t.st_q) then Some (Queue.pop t.st_q)
                  else if t.st_closed && t.st_live = 0 then None
                  else begin
                    (* live jobs may be held by other workers and come
                       back to the queue; wait for a push, a record, or
                       close *)
                    Condition.wait t.st_nonempty t.st_mu;
                    wait ()
                  end
                in
                wait ())
          in
          match job with
          | None -> ()
          | Some job ->
              step job;
              next ()
        in
        next ()
      in
      t.st_domains <- List.init (max 1 jobs) (fun _ -> Domain.spawn worker);
      t

    let close t =
      Mutex.protect t.st_mu (fun () ->
          t.st_closed <- true;
          Condition.broadcast t.st_nonempty);
      List.iter Domain.join t.st_domains
  end

  let get cell = match cell.result with Ok v -> v | Error e -> raise (Worker_failed e)
  let serial_seconds cells = List.fold_left (fun acc c -> acc +. c.elapsed_s) 0. cells

  let pp_error ppf e =
    Format.fprintf ppf "task %d raised %s" e.task e.exn;
    if String.trim e.backtrace <> "" then Format.fprintf ppf "@.%s" e.backtrace
end

(* Wall-clock a thunk; the companion to [Pool.serial_seconds] when
   reporting sweep speedups. *)
let wall f =
  let t0 = Pool.now () in
  let v = f () in
  (v, Pool.now () -. t0)

let () =
  (* worker backtraces are only useful if the runtime records them *)
  Printexc.record_backtrace true
