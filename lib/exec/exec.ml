(* Parallel execution engine for bench sweeps and fuzz campaigns.

   The evaluation is embarrassingly parallel: every (workload x ABI)
   cell of the tables/figures and every fuzz seed is an independent run
   whose state — machine, heap, telemetry sink — is created per run.
   [Pool.map] fans such tasks over a fixed-size pool of OCaml 5
   domains with:

   - deterministic result ordering: results are keyed by submission
     index, so a 1-domain and an N-domain run of the same task list
     produce identical ordered results;
   - fault capture: an exception escaping a worker becomes a structured
     per-task error, never takes down the sweep or the other tasks
     (skip-and-record degradation);
   - bounded retry with exponential backoff, for faults that are
     transient at the host level (fd exhaustion, OOM-killed child
     state) rather than deterministic task bugs;
   - per-task wall-clock timing, so sweeps can report an honest
     serial-time / wall-time speedup;
   - an [on_result] progress hook, serialized across domains, that
     campaigns use to append checkpoint records as tasks finish. *)

module Pool = struct
  type error = { task : int; exn : string; backtrace : string }
  (** a worker exception, attributed to the task that raised it *)

  type 'a cell = {
    index : int;  (** submission index: position in the input list *)
    result : ('a, error) result;
    elapsed_s : float;  (** wall-clock spent on this task alone, all attempts *)
    attempts : int;  (** 1 unless retries were needed *)
  }

  exception Worker_failed of error

  (* Modest default: sweeps are memory-bandwidth-heavy simulations, so
     past a handful of domains the extra cores mostly contend. *)
  let default_jobs () = max 1 (min 4 (Domain.recommended_domain_count ()))

  let now = Unix.gettimeofday

  let run_task ~retries ~backoff_s f inputs results on_result i =
    let t0 = now () in
    let attempt k =
      try Ok (f inputs.(i))
      with e ->
        let backtrace = Printexc.get_backtrace () in
        Error { task = i; exn = Printexc.to_string e ^ Printf.sprintf " (attempt %d)" k; backtrace }
    in
    let rec go k =
      match attempt k with
      | Ok _ as ok -> (ok, k)
      | Error _ as err when k > retries -> (err, k)
      | Error _ ->
          (* transient-fault hypothesis: give the host a moment before
             retrying, doubling the pause each time *)
          if backoff_s > 0. then
            Unix.sleepf (backoff_s *. float_of_int (1 lsl (k - 1)));
          go (k + 1)
    in
    let result, attempts = go 1 in
    let cell = { index = i; result; elapsed_s = now () -. t0; attempts } in
    results.(i) <- Some cell;
    on_result cell

  (* [map ~jobs f tasks] runs [f] over every task on up to [jobs]
     domains (default 1: sequential, in the calling domain — callers
     opt in to parallelism) and returns the cells in submission order.
     The work queue is a single atomic cursor: domains claim the next
     unclaimed index until the list is drained. A failing task is
     retried up to [retries] times (default 0) with exponential backoff
     starting at [backoff_s]; the surviving error never aborts the map.
     [on_result] fires once per finished task, serialized under one
     mutex, in completion (not submission) order. *)
  let map ?(jobs = 1) ?(retries = 0) ?(backoff_s = 0.05) ?on_result f tasks : 'a cell list =
    let inputs = Array.of_list tasks in
    let n = Array.length inputs in
    let results = Array.make n None in
    if n > 0 then begin
      let cursor = Atomic.make 0 in
      let on_result =
        match on_result with
        | None -> fun _ -> ()
        | Some hook ->
            let m = Mutex.create () in
            fun cell -> Mutex.protect m (fun () -> hook cell)
      in
      let worker () =
        let rec drain () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            run_task ~retries ~backoff_s f inputs results on_result i;
            drain ()
          end
        in
        drain ()
      in
      if jobs <= 1 then worker ()
      else begin
        (* results slots are disjoint per task and Domain.join gives the
           happens-before edge that publishes them to this domain *)
        let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
        List.iter Domain.join domains
      end
    end;
    Array.to_list results
    |> List.map (function
         | Some cell -> cell
         | None -> assert false (* every index < n is claimed exactly once *))

  let get cell = match cell.result with Ok v -> v | Error e -> raise (Worker_failed e)
  let serial_seconds cells = List.fold_left (fun acc c -> acc +. c.elapsed_s) 0. cells

  let pp_error ppf e =
    Format.fprintf ppf "task %d raised %s" e.task e.exn;
    if String.trim e.backtrace <> "" then Format.fprintf ppf "@.%s" e.backtrace
end

(* Wall-clock a thunk; the companion to [Pool.serial_seconds] when
   reporting sweep speedups. *)
let wall f =
  let t0 = Pool.now () in
  let v = f () in
  (v, Pool.now () -. t0)

let () =
  (* worker backtraces are only useful if the runtime records them *)
  Printexc.record_backtrace true
