open Cheri_util
module Cap = Cheri_core.Capability
module Mem = Cheri_tagmem.Tagmem

type config = { heap_base : int64; nursery_bytes : int; tenured_bytes : int }

type stats = {
  minor_collections : int;
  major_collections : int;
  objects_copied : int;
  bytes_copied : int;
  objects_promoted : int;
}

type t = {
  mem : Mem.t;
  cfg : config;
  nursery_base : int64;
  tenured_a : int64;
  tenured_b : int64;
  mutable nursery_next : int64;
  mutable tenured_cur : int64;  (* base of the active tenured semispace *)
  mutable tenured_next : int64;
  objects : (int64, int) Hashtbl.t;  (* live object base -> size *)
  roots : (int, Cap.t ref) Hashtbl.t;
  mutable next_root : int;
  remembered : (int64, unit) Hashtbl.t;  (* tenured granules that may hold young refs *)
  mutable st : stats;
}

exception Out_of_memory

let granule = 32

let create mem cfg =
  if cfg.nursery_bytes <= 0 || cfg.tenured_bytes <= 0 then invalid_arg "Gc.create: empty regions";
  if not (Bits.is_aligned cfg.heap_base granule) then invalid_arg "Gc.create: unaligned heap base";
  let nursery_base = cfg.heap_base in
  let tenured_a = Int64.add nursery_base (Int64.of_int cfg.nursery_bytes) in
  let tenured_b = Int64.add tenured_a (Int64.of_int cfg.tenured_bytes) in
  {
    mem;
    cfg;
    nursery_base;
    tenured_a;
    tenured_b;
    nursery_next = nursery_base;
    tenured_cur = tenured_a;
    tenured_next = tenured_a;
    objects = Hashtbl.create 64;
    roots = Hashtbl.create 16;
    next_root = 0;
    remembered = Hashtbl.create 16;
    st =
      {
        minor_collections = 0;
        major_collections = 0;
        objects_copied = 0;
        bytes_copied = 0;
        objects_promoted = 0;
      };
  }

let in_nursery t addr =
  Bits.uge addr t.nursery_base && Bits.ult addr (Int64.add t.nursery_base (Int64.of_int t.cfg.nursery_bytes))

let in_region base size addr = Bits.uge addr base && Bits.ult addr (Int64.add base (Int64.of_int size))

let tenured_end t = Int64.add t.tenured_cur (Int64.of_int t.cfg.tenured_bytes)

(* keep a capability's rights/offset/length but move its base *)
let rebase cap new_base =
  Cap.with_bounds_unchecked cap ~base:new_base ~length:cap.Cap.length ~offset:cap.Cap.offset

(* copy [size] bytes object, preserving capability tags granule-wise *)
let copy_object t ~src ~dst ~size =
  let b = Mem.load_bytes_i64 t.mem ~addr:src ~len:size in
  Mem.store_bytes_i64 t.mem ~addr:dst b;
  let rec go off =
    if off < size then begin
      let s = Int64.add src (Int64.of_int off) in
      if Mem.tag_at_i64 t.mem s then Mem.store_cap_i64 t.mem ~addr:(Int64.add dst (Int64.of_int off)) (Mem.load_cap_i64 t.mem ~addr:s);
      go (off + granule)
    end
  in
  go 0

(* bump-allocate in the active tenured semispace *)
let tenured_alloc t size =
  let padded = Int64.to_int (Bits.align_up (Int64.of_int (max 1 size)) granule) in
  let next = Int64.add t.tenured_next (Int64.of_int padded) in
  if Bits.ugt next (tenured_end t) then None
  else begin
    let base = t.tenured_next in
    t.tenured_next <- next;
    Some base
  end

(* evacuate the object a capability refers to, if its base names a live
   object in from-space; interior-based capabilities are left alone *)
let evacuate t forwarding worklist ~should_move (cap : Cap.t) : Cap.t =
  if not cap.Cap.tag then cap
  else
    let base = cap.Cap.base in
    match Hashtbl.find_opt forwarding base with
    | Some nb -> rebase cap nb
    | None -> (
        if not (should_move base) then cap
        else
          match Hashtbl.find_opt t.objects base with
          | None -> cap
          | Some size -> (
              match tenured_alloc t size with
              | None -> raise Out_of_memory
              | Some nb ->
                  copy_object t ~src:base ~dst:nb ~size;
                  Hashtbl.replace forwarding base nb;
                  Hashtbl.remove t.objects base;
                  Hashtbl.replace t.objects nb size;
                  Queue.add (nb, size) worklist;
                  t.st <-
                    {
                      t.st with
                      objects_copied = t.st.objects_copied + 1;
                      bytes_copied = t.st.bytes_copied + size;
                    };
                  rebase cap nb))

let scan_object t forwarding worklist ~should_move base size =
  let rec go off =
    if off < size then begin
      let a = Int64.add base (Int64.of_int off) in
      if Mem.tag_at_i64 t.mem a then begin
        let c = Mem.load_cap_i64 t.mem ~addr:a in
        let c' = evacuate t forwarding worklist ~should_move c in
        if not (Cap.equal c c') then Mem.store_cap_i64 t.mem ~addr:a c'
      end;
      go (off + granule)
    end
  in
  go 0

let drain t forwarding worklist ~should_move =
  while not (Queue.is_empty worklist) do
    let base, size = Queue.pop worklist in
    scan_object t forwarding worklist ~should_move base size
  done

let clear_region_tags t base size =
  let rec go off =
    if off < size then begin
      Mem.clear_tag_at_i64 t.mem (Int64.add base (Int64.of_int off));
      go (off + granule)
    end
  in
  go 0

let collect_minor t =
  let forwarding = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let should_move = in_nursery t in
  (* roots *)
  Hashtbl.iter
    (fun _ cell -> cell := evacuate t forwarding worklist ~should_move !cell)
    t.roots;
  (* old-to-young pointers recorded by the write barrier *)
  Hashtbl.iter
    (fun addr () ->
      if Mem.tag_at_i64 t.mem addr then begin
        let c = Mem.load_cap_i64 t.mem ~addr in
        let c' = evacuate t forwarding worklist ~should_move c in
        if not (Cap.equal c c') then Mem.store_cap_i64 t.mem ~addr c'
      end)
    t.remembered;
  Hashtbl.reset t.remembered;
  drain t forwarding worklist ~should_move;
  (* everything left in the nursery is garbage: detag and reset *)
  let promoted = Hashtbl.length forwarding in
  Hashtbl.iter (fun base _ -> if in_nursery t base then Hashtbl.remove t.objects base) (Hashtbl.copy t.objects);
  clear_region_tags t t.nursery_base t.cfg.nursery_bytes;
  t.nursery_next <- t.nursery_base;
  t.st <-
    {
      t.st with
      minor_collections = t.st.minor_collections + 1;
      objects_promoted = t.st.objects_promoted + promoted;
    }

let collect_major t =
  (* full collection into the other semispace; empties the nursery too *)
  let from_base = t.tenured_cur in
  let to_base = if t.tenured_cur = t.tenured_a then t.tenured_b else t.tenured_a in
  t.tenured_cur <- to_base;
  t.tenured_next <- to_base;
  let forwarding = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let should_move base = in_nursery t base || in_region from_base t.cfg.tenured_bytes base in
  Hashtbl.iter
    (fun _ cell -> cell := evacuate t forwarding worklist ~should_move !cell)
    t.roots;
  drain t forwarding worklist ~should_move;
  (* drop unreached objects in both from-spaces *)
  Hashtbl.iter
    (fun base _ ->
      if in_nursery t base || in_region from_base t.cfg.tenured_bytes base then
        Hashtbl.remove t.objects base)
    (Hashtbl.copy t.objects);
  clear_region_tags t from_base t.cfg.tenured_bytes;
  clear_region_tags t t.nursery_base t.cfg.nursery_bytes;
  t.nursery_next <- t.nursery_base;
  Hashtbl.reset t.remembered;
  t.st <- { t.st with major_collections = t.st.major_collections + 1 }

let alloc t ~size =
  let padded = Int64.to_int (Bits.align_up (Int64.of_int (max 1 size)) granule) in
  let nursery_end = Int64.add t.nursery_base (Int64.of_int t.cfg.nursery_bytes) in
  let try_nursery () =
    let next = Int64.add t.nursery_next (Int64.of_int padded) in
    if Bits.ule next nursery_end then begin
      let base = t.nursery_next in
      t.nursery_next <- next;
      Some base
    end
    else None
  in
  let base =
    match try_nursery () with
    | Some b -> b
    | None -> (
        collect_minor t;
        match try_nursery () with
        | Some b -> b
        | None -> (
            (* object larger than the nursery: tenured allocation *)
            match tenured_alloc t size with
            | Some b -> b
            | None -> (
                collect_major t;
                match tenured_alloc t size with Some b -> b | None -> raise Out_of_memory)))
  in
  Hashtbl.replace t.objects base padded;
  Cap.make ~base ~length:(Int64.of_int size) ~perms:Cheri_core.Perms.all

type root = { id : int; cell : Cap.t ref; owner : t }

let new_root t cap =
  let id = t.next_root in
  t.next_root <- id + 1;
  let cell = ref cap in
  Hashtbl.replace t.roots id cell;
  { id; cell; owner = t }

let root_get r = !(r.cell)
let root_set r c = r.cell := c
let drop_root t r = Hashtbl.remove t.roots r.id
let write_barrier t addr = Hashtbl.replace t.remembered (Bits.align_down addr granule) ()
let stats t = t.st
let live_objects t = Hashtbl.length t.objects
let nursery_used t = Int64.to_int (Int64.sub t.nursery_next t.nursery_base)
let tenured_used t = Int64.to_int (Int64.sub t.tenured_next t.tenured_cur)

let is_live_address t addr =
  Hashtbl.fold
    (fun base size acc -> acc || (Bits.uge addr base && Bits.ult addr (Int64.add base (Int64.of_int size))))
    t.objects false
