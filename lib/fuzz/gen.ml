(* Random well-defined mini-C program generator for differential
   testing. Generated programs use only defined behaviour that every
   pointer model and every ABI must agree on:

   - all variables initialized before use;
   - array indices masked to power-of-two bounds;
   - division guarded against zero;
   - shifts by constant amounts in [0, 63];
   - pointer arithmetic forward and in bounds (CHERIv2-compatible);
   - bounded loops only.

   The program prints a running checksum, so divergence in any
   intermediate value is observable.

   Unlike the original test-only generator (which emitted one flat
   string), programs are generated as a grammar-level structure —
   local-initializer expressions plus a list of loop-body statements —
   so a reproducing divergence can be shrunk by dropping statements and
   simplifying expressions (see {!Shrink}) while [render] keeps the
   scaffolding (declarations, checksum loops) intact. *)

(* Sub-expressions are kept as rendered strings: the shrinker only ever
   replaces a whole payload with "0", which is always well-typed and
   well-defined in these positions, so no expression tree is needed. *)
type expr = string

type stmt =
  | Assign of int * expr  (** x<i> = e; *)
  | Arr_store of expr * expr  (** arr[idx & mask] = e; *)
  | Heap_store of expr * expr  (** heap[idx & mask] = e; *)
  | Ptr_store of expr * expr  (** *(p + (idx & mask)) = e; *)
  | If_else of expr * string * expr * expr * expr
      (** if (l op r) sum = sum + t; else sum = sum ^ e; *)
  | Sum_add of expr  (** sum = sum + e; *)

type program = {
  seed : int;
  arr_size : int;  (* power of two *)
  heap_size : int;  (* power of two *)
  iters : int;  (* loop trip count *)
  locals : expr list;  (* initializers for x0 .. x(n-1) *)
  body : stmt list;  (* statements inside the loop *)
}

(* -- generation ------------------------------------------------------------ *)

type ctx = {
  rng : Random.State.t;
  arr_size : int;
  heap_size : int;
  mutable n_locals : int;
  mutable depth : int;
  mutable in_loop : bool;  (* whether the loop variable i is in scope *)
}

let rand ctx n = Random.State.int ctx.rng n
let pick ctx l = List.nth l (rand ctx (List.length l))

(* an expression of type long, using initialized locals x0..x{n-1} *)
let rec gen_expr ctx =
  ctx.depth <- ctx.depth + 1;
  let leaf () =
    match rand ctx 4 with
    | 0 -> string_of_int (rand ctx 1000 - 500)
    | 1 when ctx.n_locals > 0 -> Printf.sprintf "x%d" (rand ctx ctx.n_locals)
    | 2 -> Printf.sprintf "arr[%s & %d]" (gen_small ctx) (ctx.arr_size - 1)
    | _ -> Printf.sprintf "heap[%s & %d]" (gen_small ctx) (ctx.heap_size - 1)
  in
  let e =
    if ctx.depth > 4 then leaf ()
    else
      match rand ctx 8 with
      | 0 | 1 -> leaf ()
      | 2 -> Printf.sprintf "(%s %s %s)" (gen_expr ctx) (pick ctx [ "+"; "-"; "*" ]) (gen_expr ctx)
      | 3 -> Printf.sprintf "(%s %s (%s | 1))" (gen_expr ctx) (pick ctx [ "/"; "%" ]) (gen_expr ctx)
      | 4 ->
          Printf.sprintf "(%s %s %s)" (gen_expr ctx)
            (pick ctx [ "&"; "|"; "^" ])
            (gen_expr ctx)
      | 5 -> Printf.sprintf "(%s %s %d)" (gen_expr ctx) (pick ctx [ "<<"; ">>" ]) (rand ctx 8)
      | 6 ->
          Printf.sprintf "(%s %s %s ? %s : %s)" (gen_expr ctx)
            (pick ctx [ "<"; "<="; "=="; "!="; ">"; ">=" ])
            (gen_expr ctx) (gen_expr ctx) (gen_expr ctx)
      | _ -> Printf.sprintf "(*(p + (%s & %d)))" (gen_small ctx) (ctx.arr_size - 1)
  in
  ctx.depth <- ctx.depth - 1;
  e

and gen_small ctx =
  match rand ctx 3 with
  | 0 -> string_of_int (rand ctx 64)
  | 1 when ctx.n_locals > 0 -> Printf.sprintf "x%d" (rand ctx ctx.n_locals)
  | _ when ctx.in_loop -> Printf.sprintf "(i + %d)" (rand ctx 8)
  | _ -> string_of_int (rand ctx 32)

let gen_stmt ctx =
  match rand ctx 6 with
  | 0 when ctx.n_locals > 0 -> Assign (rand ctx ctx.n_locals, gen_expr ctx)
  | 1 -> Arr_store (gen_small ctx, gen_expr ctx)
  | 2 -> Heap_store (gen_small ctx, gen_expr ctx)
  | 3 ->
      If_else
        (gen_expr ctx, pick ctx [ "<"; ">"; "==" ], gen_expr ctx, gen_expr ctx, gen_expr ctx)
  | 4 -> Ptr_store (gen_small ctx, gen_expr ctx)
  | _ -> Sum_add (gen_expr ctx)

let generate ~seed : program =
  let ctx =
    {
      rng = Random.State.make [| seed |];
      arr_size = 8 lsl Random.State.int (Random.State.make [| seed + 1 |]) 2;
      heap_size = 16;
      n_locals = 0;
      depth = 0;
      in_loop = false;
    }
  in
  let n_locals = 2 + rand ctx 4 in
  let locals =
    List.init n_locals (fun k ->
        ctx.n_locals <- k;
        gen_expr ctx)
  in
  ctx.n_locals <- n_locals;
  let iters = 2 + rand ctx 6 in
  ctx.in_loop <- true;
  let body = List.init (2 + rand ctx 5) (fun _ -> gen_stmt ctx) in
  ctx.in_loop <- false;
  { seed; arr_size = ctx.arr_size; heap_size = ctx.heap_size; iters; locals; body }

(* -- rendering ------------------------------------------------------------- *)

let render_stmt ~arr_size ~heap_size buf stmt =
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match stmt with
  | Assign (k, e) -> pr "    x%d = %s;\n" k e
  | Arr_store (i, e) -> pr "    arr[%s & %d] = %s;\n" i (arr_size - 1) e
  | Heap_store (i, e) -> pr "    heap[%s & %d] = %s;\n" i (heap_size - 1) e
  | Ptr_store (i, e) -> pr "    *(p + (%s & %d)) = %s;\n" i (arr_size - 1) e
  | If_else (l, op, r, t, e) ->
      pr "    if (%s %s %s) { sum = sum + %s; } else { sum = sum ^ %s; }\n" l op r t e
  | Sum_add e -> pr "    sum = sum + %s;\n" e

let render (p : program) : string =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "int main(void) {\n";
  pr "  long sum = 0;\n";
  pr "  long arr[%d];\n" p.arr_size;
  pr "  for (long i = 0; i < %d; i++) arr[i] = i * 7 + 3;\n" p.arr_size;
  pr "  long *heap = (long *)malloc(%d * sizeof(long));\n" p.heap_size;
  pr "  for (long i = 0; i < %d; i++) heap[i] = i * 13 + 1;\n" p.heap_size;
  pr "  long *p = &arr[0];\n";
  List.iteri (fun k e -> pr "  long x%d = %s;\n" k e) p.locals;
  pr "  for (long i = 0; i < %d; i++) {\n" p.iters;
  List.iter (render_stmt ~arr_size:p.arr_size ~heap_size:p.heap_size buf) p.body;
  pr "  }\n";
  pr "  for (long i = 0; i < %d; i++) sum = sum * 31 + arr[i];\n" p.arr_size;
  pr "  for (long i = 0; i < %d; i++) sum = sum * 31 + heap[i];\n" p.heap_size;
  List.iteri (fun k _ -> pr "  sum = sum * 31 + x%d;\n" k) p.locals;
  pr "  print_int(sum);\n";
  pr "  print_char('\\n');\n";
  pr "  return (sum & 127);\n";
  pr "}\n";
  Buffer.contents buf

let source ~seed = render (generate ~seed)

(* the shrinker's ordering metric: rendered size *)
let size p = String.length (render p)
