(* Grammar-level minimization of diverging fuzz programs.

   Given a program on which some pair of implementations disagrees,
   greedily apply size-reducing rewrites while the disagreement still
   reproduces:

   - drop a loop-body statement;
   - collapse the loop to a single iteration;
   - zero a local initializer;
   - zero one sub-expression payload of a statement.

   Every candidate is strictly smaller (by rendered size) than its
   parent — enforced by construction *and* re-checked in [minimize] —
   so minimization never grows the program and always terminates. The
   scaffolding (array/heap declarations, checksum loops) is never
   touched: a minimized program is still a complete well-defined
   program, just a shorter one. *)

let zero = "0"

let replace_nth l n v = List.mapi (fun i x -> if i = n then v else x) l
let remove_nth l n = List.filteri (fun i _ -> i <> n) l

(* variants of one statement with a single expression payload zeroed *)
let simplified_stmts (s : Gen.stmt) : Gen.stmt list =
  let z e mk = if e = zero then [] else [ mk zero ] in
  match s with
  | Gen.Assign (k, e) -> z e (fun v -> Gen.Assign (k, v))
  | Gen.Arr_store (i, e) ->
      z i (fun v -> Gen.Arr_store (v, e)) @ z e (fun v -> Gen.Arr_store (i, v))
  | Gen.Heap_store (i, e) ->
      z i (fun v -> Gen.Heap_store (v, e)) @ z e (fun v -> Gen.Heap_store (i, v))
  | Gen.Ptr_store (i, e) ->
      z i (fun v -> Gen.Ptr_store (v, e)) @ z e (fun v -> Gen.Ptr_store (i, v))
  | Gen.If_else (l, op, r, t, e) ->
      z l (fun v -> Gen.If_else (v, op, r, t, e))
      @ z r (fun v -> Gen.If_else (l, op, v, t, e))
      @ z t (fun v -> Gen.If_else (l, op, r, v, e))
      @ z e (fun v -> Gen.If_else (l, op, r, t, v))
  | Gen.Sum_add e -> z e (fun v -> Gen.Sum_add v)

(* all one-step rewrites of [p], most aggressive first; filtered so
   every candidate renders strictly smaller than [p] (zeroing an
   already-minimal payload like "5" would otherwise tie) *)
let candidates (p : Gen.program) : Gen.program list =
  let drops = List.mapi (fun i _ -> { p with Gen.body = remove_nth p.Gen.body i }) p.Gen.body in
  let unroll = if p.Gen.iters > 1 then [ { p with Gen.iters = 1 } ] else [] in
  let local_zeros =
    List.concat
      (List.mapi
         (fun j e ->
           if e = zero then [] else [ { p with Gen.locals = replace_nth p.Gen.locals j zero } ])
         p.Gen.locals)
  in
  let stmt_simpl =
    List.concat
      (List.mapi
         (fun i s ->
           List.map (fun s' -> { p with Gen.body = replace_nth p.Gen.body i s' }) (simplified_stmts s))
         p.Gen.body)
  in
  let sz = Gen.size p in
  List.filter (fun c -> Gen.size c < sz) (drops @ unroll @ local_zeros @ stmt_simpl)

(* Greedy fixpoint: take the first strictly-smaller candidate that
   still reproduces, restart from it; stop when none does (or the
   reproduction budget runs out — each check replays the program under
   every implementation, so it is the expensive step). The result never
   renders larger than the input. *)
let minimize ?(max_checks = 2000) ~reproduces (p : Gen.program) : Gen.program =
  let checks = ref 0 in
  let check q =
    incr checks;
    !checks <= max_checks && reproduces q
  in
  let rec fix p =
    let sz = Gen.size p in
    match List.find_opt (fun c -> Gen.size c < sz && check c) (candidates p) with
    | Some c -> fix c
    | None -> p
  in
  fix p
