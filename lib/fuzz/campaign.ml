(* Seeded differential-fuzz campaign runner.

   Every seed is one independent task: generate a well-defined program,
   run it under every implementation of the C abstract machine (the
   seven interpreter pointer models plus the three compiled ABIs — ten
   implementations), and flag a divergence whenever any two disagree on
   the observable behaviour (exit status, fault, output). Seeds fan out
   over the {!Cheri_exec.Exec.Pool}; a crash while processing one seed
   becomes a structured per-seed error, never aborts the campaign.

   A divergence is a bug by construction — the generator only emits
   defined behaviour — so each one is minimized by grammar-level
   shrinking (when [shrink] is set) and dumped as a reproducer: seed,
   minimized source, and per-implementation outcomes. *)

module Exec = Cheri_exec.Exec
module Interp = Cheri_interp.Interp
module Registry = Cheri_models.Registry
module Abi = Cheri_compiler.Abi
module Machine = Cheri_isa.Machine
module Obs = Cheri_obs.Obs

type status =
  | Exited of int64  (** clean exit with this code *)
  | Faulted of string  (** a model fault or machine trap, pretty-printed *)
  | Stuck of string  (** implementation-level error: rejected program, crash... *)
  | Hung
      (** the step-limit / fuel / wall-clock watchdog fired. One shared
          constructor for interpreter [Exhausted] and machine
          [Fuel_exhausted]/[Deadline_exceeded], so two implementations
          that both time out never read as a (spurious) divergence. *)

type impl_outcome = { impl : string; status : status; out : string }

type impl = {
  impl_name : string;
  exec : string -> impl_outcome;  (** total: catches its implementation's own exceptions *)
}

(* -- the ten implementations ----------------------------------------------- *)

let interp_impl (e : Registry.entry) : impl =
  let impl = "interp/" ^ e.Registry.display_name in
  {
    impl_name = impl;
    exec =
      (fun src ->
        match Interp.run_with e.Registry.model src with
        | Interp.Exit (code, out) -> { impl; status = Exited code; out }
        | Interp.Fault (f, out) ->
            { impl; status = Faulted (Format.asprintf "%a" Cheri_models.Fault.pp f); out }
        | Interp.Stuck msg -> { impl; status = Stuck msg; out = "" }
        | Interp.Exhausted out -> { impl; status = Hung; out }
        | exception exn -> { impl; status = Stuck (Printexc.to_string exn); out = "" });
  }

(* Machine.run's default budget, restated here because the sliced loop
   below has to hand it out in pieces. *)
let softcore_fuel = 200_000_000

let compiled_impl ?slice (abi : Abi.t) : impl =
  let impl = "isa/" ^ Abi.name abi in
  let execute src =
    match slice with
    | None -> Cheri_compiler.Codegen.run abi src
    | Some n ->
        (* run in bounded fuel slices via [Yielded]: the machine stops
           only between instructions, so outcome and output are
           identical to the unsliced run for every slice size *)
        let n = max 1 n in
        let linked = Cheri_compiler.Codegen.compile_source abi src in
        let m = Cheri_compiler.Codegen.machine_for abi linked in
        let rec go left =
          match Machine.run ~fuel:(min n left) ~yield:true m with
          | Machine.Yielded when left > n -> go (left - n)
          | Machine.Yielded -> Machine.Fuel_exhausted
          | o -> o
        in
        (go softcore_fuel, m)
  in
  {
    impl_name = impl;
    exec =
      (fun src ->
        match execute src with
        | Machine.Exit code, m -> { impl; status = Exited code; out = Machine.output m }
        | (Machine.Fuel_exhausted | Machine.Deadline_exceeded | Machine.Yielded), m ->
            { impl; status = Hung; out = Machine.output m }
        | o, m ->
            {
              impl;
              status = Faulted (Format.asprintf "%a" Machine.pp_outcome o);
              out = Machine.output m;
            }
        | exception exn -> { impl; status = Stuck (Printexc.to_string exn); out = "" });
  }

let default_impls ?slice () =
  List.map interp_impl Registry.entries @ List.map (compiled_impl ?slice) Abi.all

(* -- divergence detection --------------------------------------------------- *)

let status_key = function
  | Exited c -> Printf.sprintf "exit:%Ld" c
  | Faulted f -> "fault:" ^ f
  | Stuck m -> "stuck:" ^ m
  | Hung -> "hang"

let outcome_key o = status_key o.status ^ ":" ^ o.out

let run_impls impls src : impl_outcome list = List.map (fun i -> i.exec src) impls

(* any two implementations disagreeing on (status, output) is a divergence *)
let divergent (outcomes : impl_outcome list) : bool =
  match outcomes with
  | [] -> false
  | first :: rest ->
      let k = outcome_key first in
      List.exists (fun o -> outcome_key o <> k) rest

(* -- the campaign ----------------------------------------------------------- *)

type divergence = {
  seed : int;
  source : string;  (** the originating program *)
  minimized : string option;  (** present when shrinking ran and reduced it *)
  outcomes : impl_outcome list;  (** on the minimized program when present *)
}

type report = {
  first_seed : int;
  seeds : int;
  jobs : int;
  shrunk : bool;
  wall_s : float;  (** campaign wall-clock *)
  serial_s : float;  (** sum of per-seed times: the 1-domain estimate *)
  resumed : int;  (** seeds restored from a checkpoint, not re-run *)
  divergences : divergence list;
  errors : (int * string) list;  (** per-seed harness failures (seed, exn) *)
  task_seconds : float list;
      (** wall time of each freshly executed seed, completion order —
          feeds the report's excludable "timing" key *)
}

let speedup r = if r.wall_s > 0. then r.serial_s /. r.wall_s else 1.

let check_seed ?(impls = default_impls ()) ?(shrink = false) seed : divergence option =
  let p = Gen.generate ~seed in
  let src = Gen.render p in
  let outcomes = run_impls impls src in
  if not (divergent outcomes) then None
  else
    let minimized =
      if not shrink then None
      else
        let reproduces q = divergent (run_impls impls (Gen.render q)) in
        let q = Shrink.minimize ~reproduces p in
        if Gen.size q < Gen.size p then Some (Gen.render q) else None
    in
    let outcomes =
      match minimized with Some s -> run_impls impls s | None -> outcomes
    in
    Some { seed; source = src; minimized; outcomes }

let esc = Cheri_util.Json.escape

let outcome_json o =
  Printf.sprintf "{\"impl\":\"%s\",\"status\":\"%s\",\"out\":\"%s\"}" (esc o.impl)
    (esc (status_key o.status))
    (esc o.out)

(* -- checkpointing ----------------------------------------------------------- *)

(* One JSONL line per finished seed, appended and flushed as seeds
   complete, behind a header describing the campaign. A killed run
   leaves at worst one torn final line; [--resume] re-reads the file,
   skips every recorded seed, and — the campaign being deterministic
   per seed — continues exactly where the killed run stopped. *)

module Json = Cheri_util.Json

let checkpoint_schema = "cheri_c.fuzz-ckpt/v1"

exception Resume_mismatch of string

let header_json ~first_seed ~seeds ~shrink =
  Printf.sprintf "{\"schema\":\"%s\",\"first_seed\":%d,\"seeds\":%d,\"shrink\":%b}"
    checkpoint_schema first_seed seeds shrink

let status_of_key k =
  let after prefix =
    let n = String.length prefix in
    if String.length k >= n && String.sub k 0 n = prefix then
      Some (String.sub k n (String.length k - n))
    else None
  in
  if k = "hang" then Some Hung
  else
    match after "exit:" with
    | Some c -> Option.map (fun c -> Exited c) (Int64.of_string_opt c)
    | None -> (
        match after "fault:" with
        | Some f -> Some (Faulted f)
        | None -> Option.map (fun m -> Stuck m) (after "stuck:"))

let seed_json seed (d : divergence option) =
  match d with
  | None -> Printf.sprintf "{\"seed\":%d,\"divergent\":false}" seed
  | Some d ->
      Printf.sprintf "{\"seed\":%d,\"divergent\":true,\"source\":\"%s\",%s\"outcomes\":[%s]}"
        seed (esc d.source)
        (match d.minimized with
        | Some s -> Printf.sprintf "\"minimized\":\"%s\"," (esc s)
        | None -> "")
        (String.concat "," (List.map outcome_json d.outcomes))

let seed_of_json j : (int * divergence option) option =
  let str k o = Option.bind (Json.member k o) Json.to_string in
  match
    (Option.bind (Json.member "seed" j) Json.to_int, Option.bind (Json.member "divergent" j) Json.to_bool)
  with
  | Some seed, Some false -> Some (seed, None)
  | Some seed, Some true ->
      let outcomes =
        List.filter_map
          (fun o ->
            match (str "impl" o, Option.bind (str "status" o) status_of_key, str "out" o) with
            | Some impl, Some status, Some out -> Some { impl; status; out }
            | _ -> None)
          (Option.value ~default:[] (Option.bind (Json.member "outcomes" j) Json.to_list))
      in
      Option.map
        (fun source -> (seed, Some { seed; source; minimized = str "minimized" j; outcomes }))
        (str "source" j)
  | _ -> None

let load_checkpoint path ~first_seed ~seeds ~shrink : (int, divergence option) Hashtbl.t =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let tbl = Hashtbl.create 64 in
  (match String.split_on_char '\n' contents with
  | [] -> ()
  | header :: rest ->
      (match Json.parse header with
      | Error e -> raise (Resume_mismatch ("unreadable checkpoint header: " ^ e))
      | Ok j ->
          if Json.parse (header_json ~first_seed ~seeds ~shrink) <> Ok j then
            raise
              (Resume_mismatch
                 "checkpoint was written by a campaign with different parameters"));
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Json.parse line with
            | Error _ -> () (* torn tail of a killed run *)
            | Ok j -> (
                match seed_of_json j with
                | Some (seed, d) -> Hashtbl.replace tbl seed d
                | None -> ()))
        rest);
  tbl

let run ?impls ?slice ?(shrink = false) ?(jobs = 1) ?(first_seed = 0) ?checkpoint
    ?resume ?(obs = Obs.default) ?heartbeat ~seeds () : report =
  (* [slice] only shapes how the softcore implementations spend fuel;
     with deterministic impls the report is identical either way *)
  let impls = match impls with Some i -> i | None -> default_impls ?slice () in
  let seed_list = List.init seeds (fun i -> first_seed + i) in
  let done_tbl =
    match resume with
    | None -> Hashtbl.create 16
    | Some path -> load_checkpoint path ~first_seed ~seeds ~shrink
  in
  let pending = List.filter (fun s -> not (Hashtbl.mem done_tbl s)) seed_list in
  (* campaign observability: per-verdict counters (jobs-independent),
     seed latency histogram, campaign/seed spans, heartbeat status *)
  let start = Exec.Pool.now () in
  let m_seeds = Obs.counter obs "fuzz_seeds_total" in
  let m_errors = Obs.counter obs "fuzz_errors_total" in
  let m_verdict divergent =
    Obs.counter obs
      (Printf.sprintf "fuzz_verdicts_total{verdict=%S}"
         (if divergent then "divergent" else "agree"))
  in
  let m_seed_s = Obs.histogram obs "fuzz_seed_seconds" in
  Obs.Counter.incr ~by:(Hashtbl.length done_tbl) (Obs.counter obs "fuzz_resumed_total");
  let root = Obs.Span.enter obs "fuzz.campaign" in
  let hb_mu = Mutex.create () in
  let hb_done = ref (Hashtbl.length done_tbl) in
  let hb_verdicts = Hashtbl.create 4 in
  let hb_walls = ref [] in
  let bump k =
    Hashtbl.replace hb_verdicts k (1 + Option.value (Hashtbl.find_opt hb_verdicts k) ~default:0)
  in
  Hashtbl.iter (fun _ d -> bump (if d = None then "agree" else "divergent")) done_tbl;
  let status () =
    Mutex.protect hb_mu (fun () ->
        let verdicts =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) hb_verdicts []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        let p99 = Obs.quantile_of !hb_walls 0.99 in
        Obs.status_json ~verdicts
          ?p99_task_s:(if p99 = p99 then Some p99 else None)
          ~tasks_done:!hb_done ~tasks_total:seeds
          ~elapsed_s:(Exec.Pool.now () -. start)
          ())
  in
  Option.iter (fun hb -> Obs.Heartbeat.force hb status) heartbeat;
  (* the checkpoint is rewritten whole on (re)start: header, restored
     seeds in order, then one flushed line per freshly finished seed *)
  let oc =
    Option.map
      (fun path ->
        let oc = open_out_bin path in
        output_string oc (header_json ~first_seed ~seeds ~shrink);
        output_char oc '\n';
        List.iter
          (fun s ->
            match Hashtbl.find_opt done_tbl s with
            | Some d ->
                output_string oc (seed_json s d);
                output_char oc '\n'
            | None -> ())
          seed_list;
        flush oc;
        oc)
      checkpoint
  in
  let pending_arr = Array.of_list pending in
  let on_result (cell : _ Exec.Pool.cell) =
    (match (oc, cell.Exec.Pool.result) with
    | Some oc, Ok d ->
        output_string oc (seed_json pending_arr.(cell.Exec.Pool.index) d);
        output_char oc '\n';
        flush oc
    | _ -> ());
    (match cell.Exec.Pool.result with
    | Ok d ->
        Obs.Counter.incr m_seeds;
        Obs.Counter.incr (m_verdict (d <> None))
    | Error _ -> Obs.Counter.incr m_errors);
    Obs.Histogram.observe m_seed_s cell.Exec.Pool.elapsed_s;
    Mutex.protect hb_mu (fun () ->
        incr hb_done;
        hb_walls := cell.Exec.Pool.elapsed_s :: !hb_walls;
        match cell.Exec.Pool.result with
        | Ok d -> bump (if d = None then "agree" else "divergent")
        | Error _ -> bump "error");
    Option.iter (fun hb -> Obs.Heartbeat.beat hb status) heartbeat
  in
  let task seed =
    Obs.Span.with_ obs ~parent:root ("fuzz.seed:" ^ string_of_int seed) (fun () ->
        check_seed ~impls ~shrink seed)
  in
  let cells, wall_s = Exec.wall (fun () -> Exec.Pool.map ~jobs ~obs ~on_result task pending) in
  Option.iter close_out oc;
  let new_tbl = Hashtbl.create 16 in
  let errors =
    List.concat_map
      (fun (c : _ Exec.Pool.cell) ->
        let seed = pending_arr.(c.Exec.Pool.index) in
        match c.Exec.Pool.result with
        | Ok d ->
            Hashtbl.replace new_tbl seed d;
            []
        | Error e -> [ (seed, e.Exec.Pool.exn) ])
      cells
  in
  let divergences =
    List.filter_map
      (fun s ->
        match Hashtbl.find_opt done_tbl s with
        | Some d -> d
        | None -> Option.join (Hashtbl.find_opt new_tbl s))
      seed_list
  in
  Obs.Span.exit obs root;
  let report =
    {
      first_seed;
      seeds;
      jobs;
      shrunk = shrink;
      wall_s;
      serial_s = Exec.Pool.serial_seconds cells;
      resumed = Hashtbl.length done_tbl;
      divergences;
      errors;
      task_seconds = List.rev !hb_walls;
    }
  in
  Option.iter (fun hb -> Obs.Heartbeat.force hb status) heartbeat;
  report

(* -- reporting -------------------------------------------------------------- *)

let divergence_json d =
  Printf.sprintf "    {\"seed\":%d,\"source\":\"%s\",%s\"outcomes\":[%s]}" d.seed (esc d.source)
    (match d.minimized with
    | Some s -> Printf.sprintf "\"minimized\":\"%s\"," (esc s)
    | None -> "")
    (String.concat "," (List.map outcome_json d.outcomes))

(* All scheduling-dependent data in one excludable object (mirrors
   Inject.timing_json). *)
let timing_json (r : report) : string =
  let module J = Cheri_util.Json in
  let q p = Obs.quantile_of r.task_seconds p in
  let num f = if f <> f then J.Null else J.Num (J.number f) in
  J.encode
    (J.Obj
       [
         ("jobs", J.Num (string_of_int r.jobs));
         ("wall_s", num r.wall_s);
         ("serial_s", num r.serial_s);
         ("tasks_timed", J.Num (string_of_int (List.length r.task_seconds)));
         ("task_wall_p50_s", num (q 0.5));
         ("task_wall_p90_s", num (q 0.9));
         ("task_wall_p99_s", num (q 0.99));
       ])

(* Deliberately timing-free (no wall/serial/resumed fields) apart from
   the one "timing" key, dropped with [~timing:false]: a
   killed-and-resumed campaign must reproduce the uninterrupted run's
   JSON byte for byte once timing is excluded. *)
let report_json ?(timing = true) (r : report) : string =
  Printf.sprintf
    "{\n\
    \  \"schema\": \"cheri_c.fuzz/v1\",\n\
    \  \"first_seed\": %d,\n\
    \  \"seeds\": %d,\n\
    \  \"shrink\": %b,\n\
    \  \"divergent\": %d,\n%s\
    \  \"errors\": [%s],\n\
    \  \"divergences\": [\n%s\n  ]\n\
     }\n"
    r.first_seed r.seeds r.shrunk
    (List.length r.divergences)
    (if timing then Printf.sprintf "  \"timing\": %s,\n" (timing_json r) else "")
    (String.concat ","
       (List.map
          (fun (seed, exn) -> Printf.sprintf "{\"seed\":%d,\"exn\":\"%s\"}" seed (esc exn))
          r.errors))
    (String.concat ",\n" (List.map divergence_json r.divergences))

let pp_divergence ppf d =
  Format.fprintf ppf "seed %d diverges:@." d.seed;
  List.iter
    (fun o -> Format.fprintf ppf "  %-20s %s out=%S@." o.impl (status_key o.status) o.out)
    d.outcomes;
  (match d.minimized with
  | Some s -> Format.fprintf ppf "minimized reproducer:@.%s" s
  | None -> Format.fprintf ppf "reproducer:@.%s" d.source)

let pp_report ppf (r : report) =
  Format.fprintf ppf "fuzz campaign: seeds %d..%d, %d jobs: %d divergent, %d errors@."
    r.first_seed
    (r.first_seed + r.seeds - 1)
    r.jobs
    (List.length r.divergences)
    (List.length r.errors);
  if r.resumed > 0 then
    Format.fprintf ppf "resumed: %d seeds restored from the checkpoint@." r.resumed;
  Format.fprintf ppf "wall %.2fs, serial %.2fs, speedup %.2fx@." r.wall_s r.serial_s (speedup r);
  List.iter (fun (seed, exn) -> Format.fprintf ppf "seed %d: harness error: %s@." seed exn) r.errors;
  List.iter (pp_divergence ppf) r.divergences
