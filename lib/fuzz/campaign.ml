(* Seeded differential-fuzz campaign runner.

   Every seed is one independent task: generate a well-defined program,
   run it under every implementation of the C abstract machine (the
   seven interpreter pointer models plus the three compiled ABIs — ten
   implementations), and flag a divergence whenever any two disagree on
   the observable behaviour (exit status, fault, output). Seeds fan out
   over the {!Cheri_exec.Exec.Pool}; a crash while processing one seed
   becomes a structured per-seed error, never aborts the campaign.

   A divergence is a bug by construction — the generator only emits
   defined behaviour — so each one is minimized by grammar-level
   shrinking (when [shrink] is set) and dumped as a reproducer: seed,
   minimized source, and per-implementation outcomes. *)

module Exec = Cheri_exec.Exec
module Interp = Cheri_interp.Interp
module Registry = Cheri_models.Registry
module Abi = Cheri_compiler.Abi
module Machine = Cheri_isa.Machine
module Telemetry = Cheri_telemetry.Telemetry

type status =
  | Exited of int64  (** clean exit with this code *)
  | Faulted of string  (** a model fault or machine trap, pretty-printed *)
  | Stuck of string  (** implementation-level error: rejected program, crash... *)

type impl_outcome = { impl : string; status : status; out : string }

type impl = {
  impl_name : string;
  exec : string -> impl_outcome;  (** total: catches its implementation's own exceptions *)
}

(* -- the ten implementations ----------------------------------------------- *)

let interp_impl (e : Registry.entry) : impl =
  let impl = "interp/" ^ e.Registry.display_name in
  {
    impl_name = impl;
    exec =
      (fun src ->
        match Interp.run_with e.Registry.model src with
        | Interp.Exit (code, out) -> { impl; status = Exited code; out }
        | Interp.Fault (f, out) ->
            { impl; status = Faulted (Format.asprintf "%a" Cheri_models.Fault.pp f); out }
        | Interp.Stuck msg -> { impl; status = Stuck msg; out = "" }
        | exception exn -> { impl; status = Stuck (Printexc.to_string exn); out = "" });
  }

let compiled_impl (abi : Abi.t) : impl =
  let impl = "isa/" ^ Abi.name abi in
  {
    impl_name = impl;
    exec =
      (fun src ->
        match Cheri_compiler.Codegen.run abi src with
        | Machine.Exit code, m -> { impl; status = Exited code; out = Machine.output m }
        | o, m ->
            {
              impl;
              status = Faulted (Format.asprintf "%a" Machine.pp_outcome o);
              out = Machine.output m;
            }
        | exception exn -> { impl; status = Stuck (Printexc.to_string exn); out = "" });
  }

let default_impls () =
  List.map interp_impl Registry.entries @ List.map compiled_impl Abi.all

(* -- divergence detection --------------------------------------------------- *)

let status_key = function
  | Exited c -> Printf.sprintf "exit:%Ld" c
  | Faulted f -> "fault:" ^ f
  | Stuck m -> "stuck:" ^ m

let outcome_key o = status_key o.status ^ ":" ^ o.out

let run_impls impls src : impl_outcome list = List.map (fun i -> i.exec src) impls

(* any two implementations disagreeing on (status, output) is a divergence *)
let divergent (outcomes : impl_outcome list) : bool =
  match outcomes with
  | [] -> false
  | first :: rest ->
      let k = outcome_key first in
      List.exists (fun o -> outcome_key o <> k) rest

(* -- the campaign ----------------------------------------------------------- *)

type divergence = {
  seed : int;
  source : string;  (** the originating program *)
  minimized : string option;  (** present when shrinking ran and reduced it *)
  outcomes : impl_outcome list;  (** on the minimized program when present *)
}

type report = {
  first_seed : int;
  seeds : int;
  jobs : int;
  shrunk : bool;
  wall_s : float;  (** campaign wall-clock *)
  serial_s : float;  (** sum of per-seed times: the 1-domain estimate *)
  divergences : divergence list;
  errors : (int * string) list;  (** per-seed harness failures (seed, exn) *)
}

let speedup r = if r.wall_s > 0. then r.serial_s /. r.wall_s else 1.

let check_seed ?(impls = default_impls ()) ?(shrink = false) seed : divergence option =
  let p = Gen.generate ~seed in
  let src = Gen.render p in
  let outcomes = run_impls impls src in
  if not (divergent outcomes) then None
  else
    let minimized =
      if not shrink then None
      else
        let reproduces q = divergent (run_impls impls (Gen.render q)) in
        let q = Shrink.minimize ~reproduces p in
        if Gen.size q < Gen.size p then Some (Gen.render q) else None
    in
    let outcomes =
      match minimized with Some s -> run_impls impls s | None -> outcomes
    in
    Some { seed; source = src; minimized; outcomes }

let run ?(impls = default_impls ()) ?(shrink = false) ?(jobs = 1) ?(first_seed = 0) ~seeds () :
    report =
  let seed_list = List.init seeds (fun i -> first_seed + i) in
  let cells, wall_s =
    Exec.wall (fun () -> Exec.Pool.map ~jobs (check_seed ~impls ~shrink) seed_list)
  in
  let divergences =
    List.filter_map
      (fun (c : _ Exec.Pool.cell) -> match c.Exec.Pool.result with Ok d -> d | Error _ -> None)
      cells
  in
  let errors =
    List.concat_map
      (fun (c : _ Exec.Pool.cell) ->
        match c.Exec.Pool.result with
        | Ok _ -> []
        | Error e -> [ (List.nth seed_list c.Exec.Pool.index, e.Exec.Pool.exn) ])
      cells
  in
  {
    first_seed;
    seeds;
    jobs;
    shrunk = shrink;
    wall_s;
    serial_s = Exec.Pool.serial_seconds cells;
    divergences;
    errors;
  }

(* -- reporting -------------------------------------------------------------- *)

let esc = Telemetry.json_escape

let outcome_json o =
  Printf.sprintf "{\"impl\":\"%s\",\"status\":\"%s\",\"out\":\"%s\"}" (esc o.impl)
    (esc (status_key o.status))
    (esc o.out)

let divergence_json d =
  Printf.sprintf "    {\"seed\":%d,\"source\":\"%s\",%s\"outcomes\":[%s]}" d.seed (esc d.source)
    (match d.minimized with
    | Some s -> Printf.sprintf "\"minimized\":\"%s\"," (esc s)
    | None -> "")
    (String.concat "," (List.map outcome_json d.outcomes))

let report_json (r : report) : string =
  Printf.sprintf
    "{\n\
    \  \"schema\": \"cheri_c.fuzz/v1\",\n\
    \  \"first_seed\": %d,\n\
    \  \"seeds\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"shrink\": %b,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"serial_s\": %.6f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"divergent\": %d,\n\
    \  \"errors\": [%s],\n\
    \  \"divergences\": [\n%s\n  ]\n\
     }\n"
    r.first_seed r.seeds r.jobs r.shrunk r.wall_s r.serial_s (speedup r)
    (List.length r.divergences)
    (String.concat ","
       (List.map
          (fun (seed, exn) -> Printf.sprintf "{\"seed\":%d,\"exn\":\"%s\"}" seed (esc exn))
          r.errors))
    (String.concat ",\n" (List.map divergence_json r.divergences))

let pp_divergence ppf d =
  Format.fprintf ppf "seed %d diverges:@." d.seed;
  List.iter
    (fun o -> Format.fprintf ppf "  %-20s %s out=%S@." o.impl (status_key o.status) o.out)
    d.outcomes;
  (match d.minimized with
  | Some s -> Format.fprintf ppf "minimized reproducer:@.%s" s
  | None -> Format.fprintf ppf "reproducer:@.%s" d.source)

let pp_report ppf (r : report) =
  Format.fprintf ppf "fuzz campaign: seeds %d..%d, %d jobs: %d divergent, %d errors@."
    r.first_seed
    (r.first_seed + r.seeds - 1)
    r.jobs
    (List.length r.divergences)
    (List.length r.errors);
  Format.fprintf ppf "wall %.2fs, serial %.2fs, speedup %.2fx@." r.wall_s r.serial_s (speedup r);
  List.iter (fun (seed, exn) -> Format.fprintf ppf "seed %d: harness error: %s@." seed exn) r.errors;
  List.iter (pp_divergence ppf) r.divergences
