open Cheri_util
module Cap = Cheri_core.Capability
module Ops = Cheri_core.Cap_ops
module Fault = Cheri_core.Cap_fault
module Perms = Cheri_core.Perms
module Mem = Cheri_tagmem.Tagmem
module Telemetry = Cheri_telemetry.Telemetry

type config = {
  revision : Ops.revision;
  mem_size : int;
  data_base : int64;
  stack_bytes : int;
  timing : Cache.Timing.config;
  trap_on_signed_overflow : bool;
}

let default_config revision =
  {
    revision;
    mem_size = 32 * 1024 * 1024;
    data_base = 0x10000L;
    stack_bytes = 1024 * 1024;
    timing = Cache.Timing.paper_config;
    trap_on_signed_overflow = false;
  }

type trap =
  | Cap_trap of Fault.t
  | Overflow_trap
  | Div_by_zero
  | Bus_trap of int64
  | Unresolved_operand
  | Invalid_syscall of int64
  | Out_of_memory
  | Invalid_free of int64
  | Pc_out_of_range of int

type outcome =
  | Exit of int64
  | Trap of { trap : trap; pc : int }
  | Fuel_exhausted
  | Deadline_exceeded
  | Yielded

let pp_trap ppf = function
  | Cap_trap f -> Format.fprintf ppf "capability trap: %a" Fault.pp f
  | Overflow_trap -> Format.pp_print_string ppf "signed overflow trap"
  | Div_by_zero -> Format.pp_print_string ppf "division by zero"
  | Bus_trap a -> Format.fprintf ppf "bus error at 0x%Lx" a
  | Unresolved_operand -> Format.pp_print_string ppf "unresolved symbolic operand"
  | Invalid_syscall n -> Format.fprintf ppf "invalid syscall %Ld" n
  | Out_of_memory -> Format.pp_print_string ppf "allocator out of memory"
  | Invalid_free a -> Format.fprintf ppf "invalid free of 0x%Lx" a
  | Pc_out_of_range pc -> Format.fprintf ppf "pc out of range: %d" pc

let pp_outcome ppf = function
  | Exit c -> Format.fprintf ppf "exit(%Ld)" c
  | Trap { trap; pc } -> Format.fprintf ppf "trap at pc=%d: %a" pc pp_trap trap
  | Fuel_exhausted -> Format.pp_print_string ppf "fuel exhausted"
  | Deadline_exceeded -> Format.pp_print_string ppf "wall-clock deadline exceeded"
  | Yielded -> Format.pp_print_string ppf "yielded (slice spent, machine still valid)"

type t = {
  cfg : config;
  code : Insn.t array;
  memory : Mem.t;
  (* 32 x 64-bit GPRs packed little-endian in a byte buffer rather than
     an [int64 array]: storing a freshly computed Int64 into an array
     first boxes it (3 words per retired ALU op), while
     [Bytes.set_int64_le] takes the unboxed value straight from the
     register allocator. A 33rd scratch slot stages ALU immediates so
     register and immediate forms share one dispatch. *)
  gprs : Bytes.t;
  caps : Cap.t array;
  mutable pcc : Cap.t;
  mutable pc : int;
  mutable cycles : int;
  mutable instret : int;
  mutable loads : int;
  mutable stores : int;
  mutable cap_loads : int;
  mutable cap_stores : int;
  mutable heap_allocated : int64;
  dcache : Cache.Timing.hierarchy;
  icache : Cache.t;
  out : Buffer.t;
  allocated : (int64, int64) Hashtbl.t;  (* block base -> size *)
  mutable free_list : (int64 * int64) list;  (* (base, size), sorted by base *)
  heap_base : int64;
  stack_top : int64;
  mutable sink : Telemetry.Sink.t;
  (* [Sink.is_null sink], cached so the step loop pays one mutable-bool
     test per retired instruction when telemetry is off *)
  mutable trace_on : bool;
  mutable allocs : int;
  mutable frees : int;
  (* total syscalls retired — lets {!run}'s deadline loop sample the
     wall clock on every syscall boundary, not only every 32k
     instructions (syscall paths can be orders of magnitude slower
     than plain instructions on the host) *)
  mutable syscalls : int;
  (* fault-injection arming (Cheri_inject): when [Some n], the n-th
     next malloc/free traps as if the allocator failed *)
  mutable alloc_fail_after : int option;
  mutable free_fail_after : int option;
  (* Terminal outcome staged by the syscall layer / HALT for {!step} to
     return after retiring the instruction. Writing [Some _] here is the
     once-per-run event; every other retired instruction leaves it
     [None], which is what keeps the step loop allocation-free — the
     old design built a [(outcome option * int * int)] tuple per
     instruction. *)
  mutable pending : outcome option;
}

exception Trapped of trap

let syscall_exit = 1L
let syscall_print_int = 2L
let syscall_print_char = 3L
let syscall_malloc = 4L
let syscall_free = 5L
let syscall_clock = 6L
let syscall_print_bytes = 7L
let syscall_print_cstr = 8L

let create cfg ~code =
  Array.iteri
    (fun i insn ->
      if not (Insn.is_resolved insn) then
        invalid_arg (Format.asprintf "Machine.create: unresolved instruction %d: %a" i Insn.pp insn))
    code;
  let memory = Mem.create ~size_bytes:cfg.mem_size () in
  let stack_top = Int64.of_int cfg.mem_size in
  let stack_base = Int64.sub stack_top (Int64.of_int cfg.stack_bytes) in
  let all_mem = Cap.make ~base:0L ~length:(Int64.of_int cfg.mem_size) ~perms:Perms.all in
  let stack_cap =
    (* cursor starts at the top of the stack region, mirroring GPR 29 *)
    Cap.with_offset_unchecked
      (Cap.make ~base:stack_base ~length:(Int64.of_int cfg.stack_bytes) ~perms:Perms.all)
      (Int64.of_int cfg.stack_bytes)
  in
  let caps = Array.make 32 Cap.null in
  caps.(0) <- all_mem;
  caps.(11) <- stack_cap;
  let gprs = Bytes.make ((32 + 1) * 8) '\000' in
  Bytes.set_int64_le gprs (29 * 8) stack_top;
  (* The heap starts above the data segment; the loader bumps this via
     [reserve_data]. *)
  let heap_base = cfg.data_base in
  {
    cfg;
    code;
    memory;
    gprs;
    caps;
    pcc =
      Cap.make ~base:0L
        ~length:(Int64.of_int (max 1 (Array.length code)))
        ~perms:(Perms.of_list Perms.Execute [ Perms.Global ]);
    pc = 0;
    cycles = 0;
    instret = 0;
    loads = 0;
    stores = 0;
    cap_loads = 0;
    cap_stores = 0;
    heap_allocated = 0L;
    dcache = Cache.Timing.create cfg.timing;
    icache = Cache.create ~name:"L1I" ~size_bytes:(16 * 1024) ~ways:2 ~line_bytes:32;
    out = Buffer.create 256;
    allocated = Hashtbl.create 64;
    free_list = [ (cfg.data_base, Int64.sub stack_base cfg.data_base) ];
    heap_base;
    stack_top;
    sink = Telemetry.Sink.null;
    trace_on = false;
    allocs = 0;
    frees = 0;
    syscalls = 0;
    alloc_fail_after = None;
    free_fail_after = None;
    pending = None;
  }

let config t = t.cfg
let mem t = t.memory
(* Byte offset of the scratch slot that stages ALU immediates. *)
let scratch_gpr_off = 32 * 8

(* Reads are a bare load with no r0 conditional: [set_gpr] never writes
   index 0, so its backing bytes stay zero and the read needs no
   special case — a branch join here would force the loaded value back
   into a box. *)
let[@inline] gpr t i = Bytes.get_int64_le t.gprs (i lsl 3)
let[@inline] set_gpr t i v = if i <> 0 then Bytes.set_int64_le t.gprs (i lsl 3) v
let cap t i = t.caps.(i)
let set_cap t i c = t.caps.(i) <- c
let pc t = t.pc
let cycles t = t.cycles
let instret t = t.instret
let output t = Buffer.contents t.out
let heap_base t = t.heap_base
let stack_top t = t.stack_top

let set_sink t sink =
  t.sink <- sink;
  t.trace_on <- not (Telemetry.Sink.is_null sink);
  Mem.set_sink t.memory sink

let sink t = t.sink

let fault_kind_of_trap = function
  | Cap_trap f -> Telemetry.fault_kind_of_cap f
  | Overflow_trap -> Telemetry.F_overflow
  | Div_by_zero -> Telemetry.F_div_zero
  | Bus_trap _ -> Telemetry.F_bus
  | Unresolved_operand -> Telemetry.F_unresolved
  | Invalid_syscall _ -> Telemetry.F_bad_syscall
  | Out_of_memory -> Telemetry.F_oom
  | Invalid_free _ -> Telemetry.F_bad_free
  | Pc_out_of_range _ -> Telemetry.F_pc_range

let record_trap t ~pc trap =
  Telemetry.Sink.record t.sink ~ts:t.cycles
    (Telemetry.Fault
       { pc; kind = fault_kind_of_trap trap; detail = Format.asprintf "%a" pp_trap trap })

(* -- allocator ---------------------------------------------------------- *)

let alloc_align = 32

let heap_reserve t base size =
  (* Carve [base, base+size) out of the free list; used by the loader to
     protect the data segment. *)
  let reserved_end = Int64.add base size in
  t.free_list <-
    List.concat_map
      (fun (b, s) ->
        let e = Int64.add b s in
        if Bits.ule e base || Bits.uge b reserved_end then [ (b, s) ]
        else
          let before = if Bits.ult b base then [ (b, Int64.sub base b) ] else [] in
          let after =
            if Bits.ugt e reserved_end then [ (reserved_end, Int64.sub e reserved_end) ] else []
          in
          before @ after)
      t.free_list

let malloc t request =
  t.allocs <- t.allocs + 1;
  (match t.alloc_fail_after with
  | Some 0 ->
      t.alloc_fail_after <- None;
      raise (Trapped Out_of_memory)
  | Some n -> t.alloc_fail_after <- Some (n - 1)
  | None -> ());
  let request = if Int64.compare request 1L < 0 then 1L else request in
  let padded = Bits.align_up request alloc_align in
  let rec take acc = function
    | [] -> None
    | (b, s) :: rest ->
        (* capability stores require 32-byte-aligned blocks *)
        let aligned = Bits.align_up b alloc_align in
        let lead = Int64.sub aligned b in
        if Bits.uge s (Int64.add lead padded) then begin
          let remainder = Int64.sub s (Int64.add lead padded) in
          let rest' =
            if remainder = 0L then rest else (Int64.add aligned padded, remainder) :: rest
          in
          let rest' = if lead = 0L then rest' else (b, lead) :: rest' in
          Some (aligned, List.rev_append acc rest')
        end
        else take ((b, s) :: acc) rest
  in
  match take [] t.free_list with
  | None -> raise (Trapped Out_of_memory)
  | Some (base, free_list) ->
      t.free_list <- free_list;
      Hashtbl.replace t.allocated base padded;
      t.heap_allocated <- Int64.add t.heap_allocated padded;
      (base, request)

let free t addr =
  t.frees <- t.frees + 1;
  (match t.free_fail_after with
  | Some 0 ->
      t.free_fail_after <- None;
      raise (Trapped (Invalid_free addr))
  | Some n -> t.free_fail_after <- Some (n - 1)
  | None -> ());
  match Hashtbl.find_opt t.allocated addr with
  | None -> raise (Trapped (Invalid_free addr))
  | Some size ->
      Hashtbl.remove t.allocated addr;
      (* reinsert sorted, then merge adjacent ranges in one pass *)
      let entries = List.sort (fun (a, _) (b, _) -> Bits.ucompare a b) ((addr, size) :: t.free_list) in
      let merged =
        List.fold_left
          (fun acc (b, s) ->
            match acc with
            | (pb, ps) :: rest when Int64.add pb ps = b -> (pb, Int64.add ps s) :: rest
            | _ -> (b, s) :: acc)
          [] entries
      in
      t.free_list <- List.rev merged

(* -- execution helpers -------------------------------------------------- *)

let unwrap = function Ok v -> v | Error f -> raise (Trapped (Cap_trap f))

(* ALU dispatch writes the destination register inside each arm rather
   than returning the result: an Int64 flowing out through the match
   join (or through a call boundary) gets boxed, and this runs once per
   retired ALU instruction — a quarter of the Dhrystone mix. All
   arguments are immediate ints, so nothing here allocates on the
   non-trap path. [a] and [b] are register-file byte offsets (already
   shifted); [store] writes the unboxed result straight back. *)
let[@inline] rf_get t o = Bytes.get_int64_le t.gprs o
let[@inline] rf_set t rd v = if rd <> 0 then Bytes.set_int64_le t.gprs (rd lsl 3) v

let[@inline] exec_alu t op rd a b =
  match op with
  | Insn.ADD -> rf_set t rd (Int64.add (rf_get t a) (rf_get t b))
  | ADDT ->
      let a = rf_get t a and b = rf_get t b in
      let r = Int64.add a b in
      (* overflow iff operands share a sign that differs from the result *)
      if
        t.cfg.trap_on_signed_overflow
        && Int64.logand (Int64.logxor r a) (Int64.logxor r b) < 0L
      then raise (Trapped Overflow_trap)
      else rf_set t rd r
  | SUB -> rf_set t rd (Int64.sub (rf_get t a) (rf_get t b))
  | MUL -> rf_set t rd (Int64.mul (rf_get t a) (rf_get t b))
  | DIV ->
      let b = rf_get t b in
      if b = 0L then raise (Trapped Div_by_zero)
      else rf_set t rd (Int64.div (rf_get t a) b)
  | DIVU ->
      let b = rf_get t b in
      if b = 0L then raise (Trapped Div_by_zero)
      else rf_set t rd (Int64.unsigned_div (rf_get t a) b)
  | REM ->
      let b = rf_get t b in
      if b = 0L then raise (Trapped Div_by_zero)
      else rf_set t rd (Int64.rem (rf_get t a) b)
  | REMU ->
      let b = rf_get t b in
      if b = 0L then raise (Trapped Div_by_zero)
      else rf_set t rd (Int64.unsigned_rem (rf_get t a) b)
  | AND -> rf_set t rd (Int64.logand (rf_get t a) (rf_get t b))
  | OR -> rf_set t rd (Int64.logor (rf_get t a) (rf_get t b))
  | XOR -> rf_set t rd (Int64.logxor (rf_get t a) (rf_get t b))
  | NOR -> rf_set t rd (Int64.lognot (Int64.logor (rf_get t a) (rf_get t b)))
  | SLL -> rf_set t rd (Int64.shift_left (rf_get t a) (Int64.to_int (rf_get t b) land 63))
  | SRL ->
      rf_set t rd (Int64.shift_right_logical (rf_get t a) (Int64.to_int (rf_get t b) land 63))
  | SRA -> rf_set t rd (Int64.shift_right (rf_get t a) (Int64.to_int (rf_get t b) land 63))
  | SLT -> rf_set t rd (if rf_get t a < rf_get t b then 1L else 0L)
  | SLTU ->
      rf_set t rd
        (if Int64.add (rf_get t a) Int64.min_int < Int64.add (rf_get t b) Int64.min_int
         then 1L
         else 0L)
  | SEQ -> rf_set t rd (if rf_get t a = rf_get t b then 1L else 0L)
  | SNE -> rf_set t rd (if rf_get t a <> rf_get t b then 1L else 0L)

let alu_cost = function
  | Insn.MUL -> 4
  | DIV | DIVU | REM | REMU -> 16
  | ADD | ADDT | SUB | AND | OR | XOR | NOR | SLL | SRL | SRA | SLT | SLTU | SEQ | SNE -> 1

let[@inline] imm_value = function
  | Insn.Imm v -> v
  | Sym_addr _ -> raise (Trapped Unresolved_operand)

let[@inline] target_value = function Insn.Abs i -> i | Sym _ -> raise (Trapped Unresolved_operand)

let[@inline] legacy_addr t rs off = Int64.add (gpr t rs) (Int64.of_int off)

(* Reads the capability's fields directly rather than calling
   [Cap.address]: the cross-module call would box the cursor once per
   capability-relative access, and [Capability.t] is a private record
   precisely so hot readers can do this. *)
let[@inline] cap_addr t cb roff off =
  let c = t.caps.(cb) in
  Int64.add (Int64.add c.Cap.base c.Cap.offset) (Int64.add (gpr t roff) (Int64.of_int off))

(* Same-module copy of [Capability.check_access], raising [Trapped]
   directly. The cross-module call would box [addr] once per retired
   memory instruction; this reads the private record's fields and keeps
   the address in a machine register. The check order (tag, seal,
   permission, bounds) matches [Capability.check_access] exactly so the
   reported fault is identical. *)
let[@inline] m_ult a b = Int64.add a Int64.min_int < Int64.add b Int64.min_int

let[@inline] cap_access_check (c : Cap.t) addr size perm =
  if not c.Cap.tag then raise (Trapped (Cap_trap Fault.Tag_violation));
  if c.Cap.sealed then
    raise (Trapped (Cap_trap (Fault.Seal_violation "dereference of a sealed capability")));
  if not (Perms.mem perm c.Cap.perms) then
    raise (Trapped (Cap_trap (Fault.Perm_violation perm)));
  let last = Int64.add addr (Int64.of_int size) in
  let top = Int64.add c.Cap.base c.Cap.length in
  if m_ult addr c.Cap.base || m_ult top last || m_ult last addr then
    raise (Trapped (Cap_trap (Fault.Bounds_violation { addr; base = c.Cap.base; top })))

(* [a] has passed the capability bounds check against a capability
   whose region lies inside data memory, so the int64->int conversion
   at the call sites is exact. *)
let dmem_cost t a size =
  if not t.trace_on then Cache.Timing.access_cycles_int t.dcache a ~size
  else begin
    let l1 = Cache.Timing.l1 t.dcache and l2 = Cache.Timing.l2 t.dcache in
    let m1 = Cache.misses l1 and m2 = Cache.misses l2 in
    let c = Cache.Timing.access_cycles_int t.dcache a ~size in
    let addr = Int64.of_int a in
    if Cache.misses l1 > m1 then
      Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Cache_miss { level = 1; addr });
    if Cache.misses l2 > m2 then
      Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Cache_miss { level = 2; addr });
    c
  end

let do_load t ~cap:c ~addr ~w ~signed ~rd =
  let size = Insn.bytes_of_width w in
  cap_access_check c addr size Perms.Load;
  let a = Int64.to_int addr in
  let raw =
    try Mem.load_int_at t.memory a ~size
    with Mem.Bus_error a -> raise (Trapped (Bus_trap a))
  in
  (* branch on [signed] with the store inside each arm: a value joining
     the two branches would be re-boxed before reaching the register
     file *)
  if signed then
    let sh = 64 - (size * 8) in
    set_gpr t rd (Int64.shift_right (Int64.shift_left raw sh) sh)
  else set_gpr t rd raw;
  t.loads <- t.loads + 1;
  dmem_cost t a size

let do_store t ~cap:c ~addr ~w ~rv =
  let size = Insn.bytes_of_width w in
  cap_access_check c addr size Perms.Store;
  let a = Int64.to_int addr in
  (try Mem.store_int_at t.memory a ~size (gpr t rv)
   with Mem.Bus_error a -> raise (Trapped (Bus_trap a)));
  t.stores <- t.stores + 1;
  dmem_cost t a size

let[@inline] check_cap_alignment addr =
  if Int64.to_int addr land (Cap.byte_width - 1) <> 0 then
    raise (Trapped (Cap_trap (Fault.Alignment_violation { addr; required = Cap.byte_width })))

(* Executes the syscall in GPR 2 and returns its cycle cost. A
   terminating syscall (exit) stages its outcome in [t.pending] rather
   than returning it, so the per-instruction path carries plain ints. *)
let do_syscall t =
  t.syscalls <- t.syscalls + 1;
  let n = gpr t 2 in
  let a0 = gpr t 4 and a1 = gpr t 5 in
  if t.trace_on then
    Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Syscall { pc = t.pc; number = n });
  if n = syscall_exit then (
    t.pending <- Some (Exit a0);
    10)
  else if n = syscall_print_int then (
    Buffer.add_string t.out (Int64.to_string a0);
    10)
  else if n = syscall_print_char then (
    Buffer.add_char t.out (Char.chr (Int64.to_int (Int64.logand a0 0xffL)));
    10)
  else if n = syscall_malloc then (
    let base, size = malloc t a0 in
    if t.trace_on then
      Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Alloc { base; size });
    set_gpr t 2 base;
    set_cap t 1 (Cap.make ~base ~length:size ~perms:Perms.all);
    40)
  else if n = syscall_free then (
    free t a0;
    if t.trace_on then Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Free { base = a0 });
    30)
  else if n = syscall_clock then (
    set_gpr t 2 (Int64.of_int t.cycles);
    10)
  else if n = syscall_print_bytes then (
    let len = Int64.to_int a1 in
    unwrap (Ops.load_check t.caps.(0) ~addr:a0 ~size:len);
    let b =
      try Mem.load_bytes t.memory ~addr:a0 ~len
      with Mem.Bus_error a -> raise (Trapped (Bus_trap a))
    in
    Buffer.add_bytes t.out b;
    10 + (len / 8))
  else if n = syscall_print_cstr then (
    (* NUL-terminated string at legacy address a0. The capability check
       runs once: validate access to the first byte (tag, seal,
       permission and initial bounds — none of which change during the
       scan), then bound the scan by the capability's remaining extent
       instead of re-running Ops.load_check per character. Walking past
       the extent reproduces exactly the bounds fault the per-byte
       check would have raised at that address. *)
    let ddc = t.caps.(0) in
    unwrap (Ops.load_check ddc ~addr:a0 ~size:1);
    let cap_top = Cap.top ddc in
    let rec go addr count =
      if count > 65536 then raise (Trapped (Bus_trap addr))
      else if Bits.uge addr cap_top then
        raise
          (Trapped
             (Cap_trap (Fault.Bounds_violation { addr; base = Ops.c_get_base ddc; top = cap_top })))
      else begin
        let c =
          try Mem.load_int t.memory ~addr ~size:1
          with Mem.Bus_error a -> raise (Trapped (Bus_trap a))
        in
        if c <> 0L then begin
          Buffer.add_char t.out (Char.chr (Int64.to_int c));
          go (Int64.add addr 1L) (count + 1)
        end
        else count
      end
    in
    let n_chars = go a0 0 in
    10 + n_chars)
  else raise (Trapped (Invalid_syscall n))

let[@inline] condz_holds k v =
  match k with
  | Insn.LTZ -> v < 0L
  | LEZ -> v <= 0L
  | GTZ -> v > 0L
  | GEZ -> v >= 0L
  | EQZ -> v = 0L
  | NEZ -> v <> 0L

let cmp_holds k c =
  match k with
  | Insn.CEQ -> c = 0
  | CNE -> c <> 0
  | CLT | CLTU -> c < 0
  | CLE | CLEU -> c <= 0

(* Execute the instruction at [t.pc]. Returns [Some outcome] when the
   program finishes. Updates pc, cycles, counters.

   The inner match returns the instruction's cycle cost as a bare int
   and each arm writes [t.pc] itself — strictly after every operation
   that can raise [Trapped], so a trapping instruction leaves the pc
   at the faulting instruction exactly as before. Terminal outcomes
   (exit syscall, HALT) are staged in [t.pending] and drained after
   retiring, so the once-per-instruction path allocates nothing. *)
let step t =
  let rev = t.cfg.revision in
  if t.pc < 0 || t.pc >= Array.length t.code then begin
    if t.trace_on then record_trap t ~pc:t.pc (Pc_out_of_range t.pc);
    Some (Trap { trap = Pc_out_of_range t.pc; pc = t.pc })
  end
  else begin
    let saved_pc = t.pc in
    let icost = if Cache.access_fetch t.icache (saved_pc * 4) then 0 else 6 in
    let insn = t.code.(saved_pc) in
    match
      let next = saved_pc + 1 in
      match insn with
      | Insn.Nop ->
          t.pc <- next;
          1
      | Li (rd, i) ->
          set_gpr t rd (imm_value i);
          t.pc <- next;
          1
      | Alu (op, rd, rs, rt) ->
          exec_alu t op rd (rs lsl 3) (rt lsl 3);
          t.pc <- next;
          alu_cost op
      | Alui (op, rd, rs, i) ->
          (* stage the immediate in the scratch slot so both ALU forms
             share one dispatch; the immediate is a constant already
             boxed inside the instruction, so the copy allocates
             nothing *)
          Bytes.set_int64_le t.gprs scratch_gpr_off (imm_value i);
          exec_alu t op rd (rs lsl 3) scratch_gpr_off;
          t.pc <- next;
          alu_cost op
      | Load { w; signed; rd; rs; off } ->
          let addr = legacy_addr t rs off in
          let c = do_load t ~cap:t.caps.(0) ~addr ~w ~signed ~rd in
          t.pc <- next;
          1 + c
      | Store { w; rv; rs; off } ->
          let addr = legacy_addr t rs off in
          let c = do_store t ~cap:t.caps.(0) ~addr ~w ~rv in
          t.pc <- next;
          1 + c
      | Cload { w; signed; rd; cb; roff; off } ->
          let addr = cap_addr t cb roff off in
          let c = do_load t ~cap:t.caps.(cb) ~addr ~w ~signed ~rd in
          t.pc <- next;
          1 + c
      | Cstore { w; rv; cb; roff; off } ->
          let addr = cap_addr t cb roff off in
          let c = do_store t ~cap:t.caps.(cb) ~addr ~w ~rv in
          t.pc <- next;
          1 + c
      | Clc { cd; cb; roff; off } ->
          let addr = cap_addr t cb roff off in
          check_cap_alignment addr;
          cap_access_check t.caps.(cb) addr Cap.byte_width Perms.Load_cap;
          let a = Int64.to_int addr in
          let c =
            try Mem.load_cap_at t.memory a
            with Mem.Bus_error a -> raise (Trapped (Bus_trap a))
          in
          set_cap t cd c;
          t.cap_loads <- t.cap_loads + 1;
          let cost = 1 + dmem_cost t a Cap.byte_width in
          t.pc <- next;
          cost
      | Csc { cs; cb; roff; off } ->
          let addr = cap_addr t cb roff off in
          check_cap_alignment addr;
          cap_access_check t.caps.(cb) addr Cap.byte_width Perms.Store_cap;
          let a = Int64.to_int addr in
          (try Mem.store_cap_at t.memory a t.caps.(cs)
           with Mem.Bus_error a -> raise (Trapped (Bus_trap a)));
          t.cap_stores <- t.cap_stores + 1;
          let cost = 1 + dmem_cost t a Cap.byte_width in
          t.pc <- next;
          cost
      | Cgetbase (rd, cb) ->
          set_gpr t rd (Ops.c_get_base t.caps.(cb));
          t.pc <- next;
          1
      | Cgetlen (rd, cb) ->
          set_gpr t rd (Ops.c_get_len t.caps.(cb));
          t.pc <- next;
          1
      | Cgetoffset (rd, cb) ->
          set_gpr t rd (Ops.c_get_offset t.caps.(cb));
          t.pc <- next;
          1
      | Cgettag (rd, cb) ->
          set_gpr t rd (if Ops.c_get_tag t.caps.(cb) then 1L else 0L);
          t.pc <- next;
          1
      | Cgetperm (rd, cb) ->
          set_gpr t rd (Perms.to_bits (Ops.c_get_perm t.caps.(cb)));
          t.pc <- next;
          1
      (* The offset-moving ops dominate the CHERIv3 instruction mix
         (~13% of Dhrystone), so the V3 arms call the exception-based
         variants and skip the per-retire [Ok] wrapper. V2 keeps the
         Result path: there the op itself is the [Unsupported] fault. *)
      | Cincoffset (cd, cb, rt) ->
          (match rev with
          | Ops.V3 -> set_cap t cd (Ops.c_inc_offset_exn t.caps.(cb) (gpr t rt))
          | Ops.V2 -> set_cap t cd (unwrap (Ops.c_inc_offset rev t.caps.(cb) (gpr t rt))));
          t.pc <- next;
          1
      | Cincoffsetimm (cd, cb, i) ->
          (match rev with
          | Ops.V3 -> set_cap t cd (Ops.c_inc_offset_exn t.caps.(cb) i)
          | Ops.V2 -> set_cap t cd (unwrap (Ops.c_inc_offset rev t.caps.(cb) i)));
          t.pc <- next;
          1
      | Csetoffset (cd, cb, rt) ->
          (match rev with
          | Ops.V3 -> set_cap t cd (Ops.c_set_offset_exn t.caps.(cb) (gpr t rt))
          | Ops.V2 -> set_cap t cd (unwrap (Ops.c_set_offset rev t.caps.(cb) (gpr t rt))));
          t.pc <- next;
          1
      | Cincbase (cd, cb, rt) ->
          set_cap t cd (unwrap (Ops.c_inc_base rev t.caps.(cb) (gpr t rt)));
          t.pc <- next;
          1
      | Csetlen (cd, cb, rt) ->
          set_cap t cd (unwrap (Ops.c_set_len t.caps.(cb) (gpr t rt)));
          t.pc <- next;
          1
      | Candperm (cd, cb, mask) ->
          set_cap t cd (Ops.c_and_perm t.caps.(cb) (Perms.of_bits mask));
          t.pc <- next;
          1
      | Ccleartag (cd, cb) ->
          set_cap t cd (Ops.c_clear_tag t.caps.(cb));
          t.pc <- next;
          1
      | Cmove (cd, cb) ->
          set_cap t cd t.caps.(cb);
          t.pc <- next;
          1
      | Cseal (cd, cs, ct) ->
          set_cap t cd (unwrap (Ops.c_seal ~authority:t.caps.(ct) t.caps.(cs)));
          t.pc <- next;
          1
      | Cunseal (cd, cs, ct) ->
          set_cap t cd (unwrap (Ops.c_unseal ~authority:t.caps.(ct) t.caps.(cs)));
          t.pc <- next;
          1
      | Cptrcmp (k, rd, ca, cb) ->
          let c = Ops.c_ptr_cmp t.caps.(ca) t.caps.(cb) in
          set_gpr t rd (if cmp_holds k c then 1L else 0L);
          t.pc <- next;
          1
      | Cfromptr (cd, cb, rs) ->
          set_cap t cd (Ops.c_from_ptr_exn ~ddc:t.caps.(cb) (gpr t rs));
          t.pc <- next;
          1
      | Ctoptr (rd, cs, cb) ->
          set_gpr t rd (Ops.c_to_ptr t.caps.(cs) ~relative_to:t.caps.(cb));
          t.pc <- next;
          1
      | Branch (c, rs, rt, tg) ->
          let holds =
            match c with EQ -> gpr t rs = gpr t rt | NE -> gpr t rs <> gpr t rt
          in
          if holds then begin
            t.pc <- target_value tg;
            2
          end
          else begin
            t.pc <- next;
            1
          end
      | Branchz (k, rs, tg) ->
          if condz_holds k (gpr t rs) then begin
            t.pc <- target_value tg;
            2
          end
          else begin
            t.pc <- next;
            1
          end
      | J tg ->
          t.pc <- target_value tg;
          2
      | Jal tg ->
          set_gpr t 31 (Int64.of_int next);
          t.pc <- target_value tg;
          2
      | Jr rs ->
          t.pc <- Int64.to_int (gpr t rs);
          2
      | Jalr rs ->
          let dest = Int64.to_int (gpr t rs) in
          set_gpr t 31 (Int64.of_int next);
          t.pc <- dest;
          2
      | Cjalr (cd, cb) ->
          let dest_cap = t.caps.(cb) in
          if not (Ops.c_get_tag dest_cap) then raise (Trapped (Cap_trap Fault.Tag_violation));
          if dest_cap.Cap.sealed then
            raise (Trapped (Cap_trap (Fault.Seal_violation "jump through a sealed capability")));
          if not (Perms.mem Perms.Execute (Ops.c_get_perm dest_cap)) then
            raise (Trapped (Cap_trap (Fault.Perm_violation Perms.Execute)));
          let link = Cap.with_offset_unchecked t.pcc (Int64.of_int next) in
          set_cap t cd link;
          t.pcc <- dest_cap;
          t.pc <- Int64.to_int (Cap.address dest_cap);
          2
      | Cjr cb ->
          let dest_cap = t.caps.(cb) in
          if not (Ops.c_get_tag dest_cap) then raise (Trapped (Cap_trap Fault.Tag_violation));
          if not (Perms.mem Perms.Execute (Ops.c_get_perm dest_cap)) then
            raise (Trapped (Cap_trap (Fault.Perm_violation Perms.Execute)));
          t.pcc <- dest_cap;
          t.pc <- Int64.to_int (Cap.address dest_cap);
          2
      | Syscall ->
          let cost = do_syscall t in
          t.pc <- next;
          cost
      | Halt ->
          t.pending <- Some (Exit 0L);
          t.pc <- next;
          1
    with
    | cost ->
        t.instret <- t.instret + 1;
        t.cycles <- t.cycles + cost + icost;
        if t.trace_on then
          Telemetry.Sink.record t.sink ~ts:t.cycles
            (Telemetry.Instret { pc = saved_pc; cls = Insn.telemetry_class insn });
        (match t.pending with
        | None -> None
        | Some _ as outcome ->
            t.pending <- None;
            outcome)
    | exception Trapped trap ->
        t.cycles <- t.cycles + 1 + icost;
        if t.trace_on then record_trap t ~pc:saved_pc trap;
        Some (Trap { trap; pc = saved_pc })
    | exception Ops.Cap_error f ->
        let trap = Cap_trap f in
        t.cycles <- t.cycles + 1 + icost;
        if t.trace_on then record_trap t ~pc:saved_pc trap;
        Some (Trap { trap; pc = saved_pc })
  end

(* How many instructions to retire between wall-clock reads when a
   deadline is set: the check must be invisible next to the step cost. *)
let deadline_stride = 32_768

let run ?(fuel = 200_000_000) ?deadline_s ?(yield = false) t =
  (* In yield mode an exhausted budget is an interruption, not a
     verdict: the machine is untouched past the last retired
     instruction, so [run] again (here or after restoring a snapshot)
     continues byte-identically — the loop stops *before* stepping,
     never mid-instruction. *)
  let out_of_fuel = if yield then Yielded else Fuel_exhausted in
  let past_deadline = if yield then Yielded else Deadline_exceeded in
  match deadline_s with
  | None ->
      let rec go remaining =
        if remaining <= 0 then out_of_fuel
        else match step t with None -> go (remaining - 1) | Some outcome -> outcome
      in
      go fuel
  | Some budget ->
      let expires = Unix.gettimeofday () +. budget in
      (* The clock is sampled every [deadline_stride] retired
         instructions and additionally on every syscall boundary
         ([seen_sys] lags the counter by one iteration): a workload
         looping through slow syscall paths retires few instructions
         per host second and would otherwise overshoot the deadline by
         the stride's worth of syscalls. Simulated cycle counts are
         unaffected either way. *)
      let rec go remaining seen_sys =
        if remaining <= 0 then out_of_fuel
        else begin
          let sys_now = t.syscalls in
          if
            (remaining mod deadline_stride = 0 || sys_now <> seen_sys)
            && Unix.gettimeofday () > expires
          then past_deadline
          else match step t with None -> go (remaining - 1) sys_now | Some outcome -> outcome
        end
      in
      go fuel t.syscalls

type stats = {
  st_cycles : int;
  st_instret : int;
  st_loads : int;
  st_stores : int;
  st_cap_loads : int;
  st_cap_stores : int;
  st_l1_hits : int;
  st_l1_misses : int;
  st_l2_hits : int;
  st_l2_misses : int;
  st_heap_allocated : int64;
  st_allocs : int;
  st_frees : int;
}

let stats t =
  let l1 = Cache.Timing.l1 t.dcache and l2 = Cache.Timing.l2 t.dcache in
  {
    st_cycles = t.cycles;
    st_instret = t.instret;
    st_loads = t.loads;
    st_stores = t.stores;
    st_cap_loads = t.cap_loads;
    st_cap_stores = t.cap_stores;
    st_l1_hits = Cache.hits l1;
    st_l1_misses = Cache.misses l1;
    st_l2_hits = Cache.hits l2;
    st_l2_misses = Cache.misses l2;
    st_heap_allocated = t.heap_allocated;
    st_allocs = t.allocs;
    st_frees = t.frees;
  }

(* Exposed for the loader (Cheri_asm): remove the data segment from the
   allocator's free list. *)
let reserve_data = heap_reserve

let code t = t.code

(* -- snapshot / restore -------------------------------------------------- *)

module Snap = struct
  type t = {
    s_gprs : string;  (* the full register file, 33 x 8 bytes LE *)
    s_caps : Cap.t array;  (* the 32 capability registers *)
    s_pcc : Cap.t;
    s_pc : int;
    s_cycles : int;
    s_instret : int;
    s_loads : int;
    s_stores : int;
    s_cap_loads : int;
    s_cap_stores : int;
    s_heap_allocated : int64;
    s_allocs : int;
    s_frees : int;
    s_syscalls : int;
    s_alloc_fail_after : int option;
    s_free_fail_after : int option;
    s_output : string;
    s_allocated : (int64 * int64) list;  (* sorted by base *)
    s_free_list : (int64 * int64) list;
    s_icache : int array;
    s_l1 : int array;
    s_l2 : int array;
    s_data_pages : (int * string) list;
    s_tag_pages : (int * string) list;
  }

  let page_bytes = 4096
end

let snapshot t : Snap.t =
  {
    Snap.s_gprs = Bytes.to_string t.gprs;
    s_caps = Array.copy t.caps;
    s_pcc = t.pcc;
    s_pc = t.pc;
    s_cycles = t.cycles;
    s_instret = t.instret;
    s_loads = t.loads;
    s_stores = t.stores;
    s_cap_loads = t.cap_loads;
    s_cap_stores = t.cap_stores;
    s_heap_allocated = t.heap_allocated;
    s_allocs = t.allocs;
    s_frees = t.frees;
    s_syscalls = t.syscalls;
    s_alloc_fail_after = t.alloc_fail_after;
    s_free_fail_after = t.free_fail_after;
    s_output = Buffer.contents t.out;
    s_allocated =
      Hashtbl.fold (fun base size acc -> (base, size) :: acc) t.allocated []
      |> List.sort (fun (a, _) (b, _) -> Bits.ucompare a b);
    s_free_list = t.free_list;
    s_icache = Cache.snapshot_state t.icache;
    s_l1 = Cache.snapshot_state (Cache.Timing.l1 t.dcache);
    s_l2 = Cache.snapshot_state (Cache.Timing.l2 t.dcache);
    s_data_pages = fst (Mem.snapshot_pages t.memory ~page_bytes:Snap.page_bytes);
    s_tag_pages = snd (Mem.snapshot_pages t.memory ~page_bytes:Snap.page_bytes);
  }

let restore t (s : Snap.t) =
  if String.length s.Snap.s_gprs <> Bytes.length t.gprs then
    invalid_arg "Machine.restore: register file size mismatch";
  if Array.length s.Snap.s_caps <> Array.length t.caps then
    invalid_arg "Machine.restore: capability register file size mismatch";
  Bytes.blit_string s.Snap.s_gprs 0 t.gprs 0 (Bytes.length t.gprs);
  Array.blit s.Snap.s_caps 0 t.caps 0 (Array.length t.caps);
  t.pcc <- s.Snap.s_pcc;
  t.pc <- s.Snap.s_pc;
  t.cycles <- s.Snap.s_cycles;
  t.instret <- s.Snap.s_instret;
  t.loads <- s.Snap.s_loads;
  t.stores <- s.Snap.s_stores;
  t.cap_loads <- s.Snap.s_cap_loads;
  t.cap_stores <- s.Snap.s_cap_stores;
  t.heap_allocated <- s.Snap.s_heap_allocated;
  t.allocs <- s.Snap.s_allocs;
  t.frees <- s.Snap.s_frees;
  t.syscalls <- s.Snap.s_syscalls;
  t.alloc_fail_after <- s.Snap.s_alloc_fail_after;
  t.free_fail_after <- s.Snap.s_free_fail_after;
  Buffer.clear t.out;
  Buffer.add_string t.out s.Snap.s_output;
  Hashtbl.reset t.allocated;
  List.iter (fun (base, size) -> Hashtbl.replace t.allocated base size) s.Snap.s_allocated;
  t.free_list <- s.Snap.s_free_list;
  Cache.restore_state t.icache s.Snap.s_icache;
  Cache.restore_state (Cache.Timing.l1 t.dcache) s.Snap.s_l1;
  Cache.restore_state (Cache.Timing.l2 t.dcache) s.Snap.s_l2;
  Mem.restore_pages t.memory ~page_bytes:Snap.page_bytes ~data:s.Snap.s_data_pages
    ~tags:s.Snap.s_tag_pages;
  (* [pending] is observable only within a step; between steps it is
     always [None], which is where a snapshot is ever taken. *)
  t.pending <- None

(* -- fault-injection perturbation points (Cheri_inject) ------------------ *)

let allocated_blocks t =
  Hashtbl.fold (fun base size acc -> (base, size) :: acc) t.allocated []
  |> List.sort (fun (a, _) (b, _) -> Bits.ucompare a b)

let inject_alloc_failure t ~after = t.alloc_fail_after <- Some (max 0 after)
let inject_free_failure t ~after = t.free_fail_after <- Some (max 0 after)
