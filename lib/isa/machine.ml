open Cheri_util
module Cap = Cheri_core.Capability
module Ops = Cheri_core.Cap_ops
module Fault = Cheri_core.Cap_fault
module Perms = Cheri_core.Perms
module Mem = Cheri_tagmem.Tagmem
module Telemetry = Cheri_telemetry.Telemetry

type config = {
  revision : Ops.revision;
  mem_size : int;
  data_base : int64;
  stack_bytes : int;
  timing : Cache.Timing.config;
  trap_on_signed_overflow : bool;
}

let default_config revision =
  {
    revision;
    mem_size = 32 * 1024 * 1024;
    data_base = 0x10000L;
    stack_bytes = 1024 * 1024;
    timing = Cache.Timing.paper_config;
    trap_on_signed_overflow = false;
  }

type trap =
  | Cap_trap of Fault.t
  | Overflow_trap
  | Div_by_zero
  | Bus_trap of int64
  | Unresolved_operand
  | Invalid_syscall of int64
  | Out_of_memory
  | Invalid_free of int64
  | Pc_out_of_range of int

type outcome =
  | Exit of int64
  | Trap of { trap : trap; pc : int }
  | Fuel_exhausted
  | Deadline_exceeded
  | Yielded

let pp_trap ppf = function
  | Cap_trap f -> Format.fprintf ppf "capability trap: %a" Fault.pp f
  | Overflow_trap -> Format.pp_print_string ppf "signed overflow trap"
  | Div_by_zero -> Format.pp_print_string ppf "division by zero"
  | Bus_trap a -> Format.fprintf ppf "bus error at 0x%Lx" a
  | Unresolved_operand -> Format.pp_print_string ppf "unresolved symbolic operand"
  | Invalid_syscall n -> Format.fprintf ppf "invalid syscall %Ld" n
  | Out_of_memory -> Format.pp_print_string ppf "allocator out of memory"
  | Invalid_free a -> Format.fprintf ppf "invalid free of 0x%Lx" a
  | Pc_out_of_range pc -> Format.fprintf ppf "pc out of range: %d" pc

let pp_outcome ppf = function
  | Exit c -> Format.fprintf ppf "exit(%Ld)" c
  | Trap { trap; pc } -> Format.fprintf ppf "trap at pc=%d: %a" pc pp_trap trap
  | Fuel_exhausted -> Format.pp_print_string ppf "fuel exhausted"
  | Deadline_exceeded -> Format.pp_print_string ppf "wall-clock deadline exceeded"
  | Yielded -> Format.pp_print_string ppf "yielded (slice spent, machine still valid)"

(* Capability register file, struct-of-arrays: the payload words live in
   byte buffers ([Bytes.get/set_int64_le] move unboxed int64s, exactly
   like the GPR file) and the book-keeping bits live in one native int
   per register — perms in bits 0-7 (the spill encoding), sealed in bit
   8, tag in bit 9. The otype keeps its own 64-bit lane so snapshot
   restore reproduces arbitrary fault-injected values. Capability moves,
   offset arithmetic and dereference checks — the bulk of the CHERI
   instruction mix — then never materialize a [Capability.t] record;
   only the rare paths (CSC spill, CSeal, snapshots, the public [cap]
   accessor) do. *)
let meta_sealed = 0x100
let meta_tag = 0x200

(* Unchecked 64-bit register-file accesses (the stdlib keeps these
   primitives private behind bounds-checked wrappers). Soundness:
   {!Decoded.compile} validates every register operand to 0..31 at
   decode time, so the byte offsets the execute stage feeds here are
   within the fixed-size files by construction; the public accessors
   below bounds-check explicitly before reaching these. *)
external b64_get_ne : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external b64_set_ne : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external bswap64 : int64 -> int64 = "%bswap_int64"

let[@inline] b64_get b o = if Sys.big_endian then bswap64 (b64_get_ne b o) else b64_get_ne b o
let[@inline] b64_set b o v = b64_set_ne b o (if Sys.big_endian then bswap64 v else v)

type t = {
  cfg : config;
  prog : Decoded.program;
  (* the decoded program's rows, unpacked once so the step loop loads
     each through one indirection *)
  ops : Decoded.op array;
  xs : int array;
  ys : int array;
  zs : int array;
  imms : Bytes.t;
  classes : Telemetry.opcode_class array;
  code_len : int;
  memory : Mem.t;
  (* 32 x 64-bit GPRs packed little-endian in a byte buffer rather than
     an [int64 array]: storing a freshly computed Int64 into an array
     first boxes it (3 words per retired ALU op), while
     [Bytes.set_int64_le] takes the unboxed value straight from the
     register allocator. Slot 32 is the write sink the decoded table
     redirects r0 destinations to. *)
  gprs : Bytes.t;
  cap_base : Bytes.t;
  cap_len : Bytes.t;
  cap_off : Bytes.t;
  cap_otype : Bytes.t;
  cap_meta : int array;
  mutable pcc : Cap.t;
  mutable pc : int;
  mutable cycles : int;
  mutable instret : int;
  mutable loads : int;
  mutable stores : int;
  mutable cap_loads : int;
  mutable cap_stores : int;
  mutable heap_allocated : int64;
  dcache : Cache.Timing.hierarchy;
  icache : Cache.t;
  out : Buffer.t;
  allocated : (int64, int64) Hashtbl.t;  (* block base -> size *)
  mutable free_list : (int64 * int64) list;  (* (base, size), sorted by base *)
  heap_base : int64;
  stack_top : int64;
  mutable sink : Telemetry.Sink.t;
  (* [Sink.is_null sink], cached so the step loop pays one mutable-bool
     test per retired instruction when telemetry is off *)
  mutable trace_on : bool;
  (* config bits read on the per-instruction path, cached out of cfg *)
  is_v3 : bool;
  trapv : bool;
  mutable allocs : int;
  mutable frees : int;
  (* total syscalls retired — lets {!run}'s deadline loop sample the
     wall clock on every syscall boundary, not only every 32k
     instructions (syscall paths can be orders of magnitude slower
     than plain instructions on the host) *)
  mutable syscalls : int;
  (* fault-injection arming (Cheri_inject): when [Some n], the n-th
     next malloc/free traps as if the allocator failed *)
  mutable alloc_fail_after : int option;
  mutable free_fail_after : int option;
  (* Terminal outcome staged by the syscall layer / HALT for {!step} to
     return after retiring the instruction. Writing [Some _] here is the
     once-per-run event; every other retired instruction leaves it
     [None], which is what keeps the step loop allocation-free. *)
  mutable pending : outcome option;
  (* Fetch cost of the instruction currently in flight. {!run}'s fused
     loop keeps its exception handler *outside* the loop (one trap
     frame per run instead of one per retired instruction); when a trap
     unwinds to it, the handler reads back here the icost the epilogue
     would have charged. *)
  mutable last_icost : int;
}

exception Trapped of trap

let syscall_exit = 1L
let syscall_print_int = 2L
let syscall_print_char = 3L
let syscall_malloc = 4L
let syscall_free = 5L
let syscall_clock = 6L
let syscall_print_bytes = 7L
let syscall_print_cstr = 8L

(* -- capability register file accessors ---------------------------------- *)

let[@inline] cap_get_idx t i =
  (* [cap_meta.(i)] first: its bounds check raises the same
     [Invalid_argument] a bad register index raised against the old
     record array *)
  let m = t.cap_meta.(i) in
  Cap.of_fields_unchecked
    ~tag:(m land meta_tag <> 0)
    ~base:(b64_get t.cap_base (i lsl 3))
    ~length:(b64_get t.cap_len (i lsl 3))
    ~offset:(b64_get t.cap_off (i lsl 3))
    ~perms:(Perms.of_bits_int m)
    ~sealed:(m land meta_sealed <> 0)
    ~otype:(b64_get t.cap_otype (i lsl 3))

let set_cap_idx t i (c : Cap.t) =
  t.cap_meta.(i) <-
    Perms.to_bits_int c.Cap.perms
    lor (if c.Cap.sealed then meta_sealed else 0)
    lor (if c.Cap.tag then meta_tag else 0);
  let o = i lsl 3 in
  b64_set t.cap_base o c.Cap.base;
  b64_set t.cap_len o c.Cap.length;
  b64_set t.cap_off o c.Cap.offset;
  b64_set t.cap_otype o c.Cap.otype

(* Register-to-register capability copy: three payload blits plus the
   meta/otype lanes, no record in between. *)
let[@inline] cap_copy t ~dst ~src =
  let s = src lsl 3 and d = dst lsl 3 in
  b64_set t.cap_base d (b64_get t.cap_base s);
  b64_set t.cap_len d (b64_get t.cap_len s);
  b64_set t.cap_off d (b64_get t.cap_off s);
  b64_set t.cap_otype d (b64_get t.cap_otype s);
  t.cap_meta.(dst) <- t.cap_meta.(src)

let[@inline] cap_cursor t i =
  Int64.add (b64_get t.cap_base (i lsl 3)) (b64_get t.cap_off (i lsl 3))

let set_cap_null t i =
  t.cap_meta.(i) <- 0;
  let o = i lsl 3 in
  b64_set t.cap_base o 0L;
  b64_set t.cap_len o 0L;
  b64_set t.cap_off o 0L;
  b64_set t.cap_otype o 0L

(* Precomputed permission masks against the meta word's low byte. *)
let p_load = 1 lsl Perms.bit_of Perms.Load
let p_store = 1 lsl Perms.bit_of Perms.Store
let p_exec = 1 lsl Perms.bit_of Perms.Execute
let p_load_cap = 1 lsl Perms.bit_of Perms.Load_cap
let p_store_cap = 1 lsl Perms.bit_of Perms.Store_cap

let create cfg ~program =
  let code_len = Decoded.length program in
  let memory = Mem.create ~size_bytes:cfg.mem_size () in
  let stack_top = Int64.of_int cfg.mem_size in
  let stack_base = Int64.sub stack_top (Int64.of_int cfg.stack_bytes) in
  let all_mem = Cap.make ~base:0L ~length:(Int64.of_int cfg.mem_size) ~perms:Perms.all in
  let stack_cap =
    (* cursor starts at the top of the stack region, mirroring GPR 29 *)
    Cap.with_offset_unchecked
      (Cap.make ~base:stack_base ~length:(Int64.of_int cfg.stack_bytes) ~perms:Perms.all)
      (Int64.of_int cfg.stack_bytes)
  in
  let gprs = Bytes.make ((32 + 1) * 8) '\000' in
  Bytes.set_int64_le gprs (29 * 8) stack_top;
  (* The heap starts above the data segment; the loader bumps this via
     [reserve_data]. *)
  let heap_base = cfg.data_base in
  let t =
    {
      cfg;
      prog = program;
      ops = program.Decoded.ops;
      xs = program.Decoded.xs;
      ys = program.Decoded.ys;
      zs = program.Decoded.zs;
      imms = program.Decoded.imms;
      classes = program.Decoded.classes;
      code_len;
      memory;
      gprs;
      cap_base = Bytes.make (32 * 8) '\000';
      cap_len = Bytes.make (32 * 8) '\000';
      cap_off = Bytes.make (32 * 8) '\000';
      cap_otype = Bytes.make (32 * 8) '\000';
      cap_meta = Array.make 32 0;
      pcc =
        Cap.make ~base:0L
          ~length:(Int64.of_int (max 1 code_len))
          ~perms:(Perms.of_list Perms.Execute [ Perms.Global ]);
      pc = 0;
      cycles = 0;
      instret = 0;
      loads = 0;
      stores = 0;
      cap_loads = 0;
      cap_stores = 0;
      heap_allocated = 0L;
      dcache = Cache.Timing.create cfg.timing;
      icache = Cache.create ~name:"L1I" ~size_bytes:(16 * 1024) ~ways:2 ~line_bytes:32;
      out = Buffer.create 256;
      allocated = Hashtbl.create 64;
      free_list = [ (cfg.data_base, Int64.sub stack_base cfg.data_base) ];
      heap_base;
      stack_top;
      sink = Telemetry.Sink.null;
      trace_on = false;
      is_v3 = (cfg.revision = Ops.V3);
      trapv = cfg.trap_on_signed_overflow;
      allocs = 0;
      frees = 0;
      syscalls = 0;
      alloc_fail_after = None;
      free_fail_after = None;
      pending = None;
      last_icost = 0;
    }
  in
  set_cap_idx t 0 all_mem;
  set_cap_idx t 11 stack_cap;
  t

let create_code cfg ~code = create cfg ~program:(Decoded.compile code)
let config t = t.cfg
let mem t = t.memory

(* Reads are a bare load with no r0 conditional: [set_gpr] never writes
   index 0, so its backing bytes stay zero and the read needs no
   special case — a branch join here would force the loaded value back
   into a box. *)
let[@inline] gpr t i = Bytes.get_int64_le t.gprs (i lsl 3)
let[@inline] set_gpr t i v = if i <> 0 then Bytes.set_int64_le t.gprs (i lsl 3) v
let cap t i = cap_get_idx t i
let set_cap t i c = set_cap_idx t i c
let pc t = t.pc
let cycles t = t.cycles
let instret t = t.instret
let output t = Buffer.contents t.out
let heap_base t = t.heap_base
let stack_top t = t.stack_top

let set_sink t sink =
  t.sink <- sink;
  t.trace_on <- not (Telemetry.Sink.is_null sink);
  Mem.set_sink t.memory sink

let sink t = t.sink

let fault_kind_of_trap = function
  | Cap_trap f -> Telemetry.fault_kind_of_cap f
  | Overflow_trap -> Telemetry.F_overflow
  | Div_by_zero -> Telemetry.F_div_zero
  | Bus_trap _ -> Telemetry.F_bus
  | Unresolved_operand -> Telemetry.F_unresolved
  | Invalid_syscall _ -> Telemetry.F_bad_syscall
  | Out_of_memory -> Telemetry.F_oom
  | Invalid_free _ -> Telemetry.F_bad_free
  | Pc_out_of_range _ -> Telemetry.F_pc_range

let record_trap t ~pc trap =
  Telemetry.Sink.record t.sink ~ts:t.cycles
    (Telemetry.Fault
       { pc; kind = fault_kind_of_trap trap; detail = Format.asprintf "%a" pp_trap trap })

(* -- allocator ---------------------------------------------------------- *)

let alloc_align = 32

let heap_reserve t base size =
  (* Carve [base, base+size) out of the free list; used by the loader to
     protect the data segment. *)
  let reserved_end = Int64.add base size in
  t.free_list <-
    List.concat_map
      (fun (b, s) ->
        let e = Int64.add b s in
        if Bits.ule e base || Bits.uge b reserved_end then [ (b, s) ]
        else
          let before = if Bits.ult b base then [ (b, Int64.sub base b) ] else [] in
          let after =
            if Bits.ugt e reserved_end then [ (reserved_end, Int64.sub e reserved_end) ] else []
          in
          before @ after)
      t.free_list

let malloc t request =
  t.allocs <- t.allocs + 1;
  (match t.alloc_fail_after with
  | Some 0 ->
      t.alloc_fail_after <- None;
      raise (Trapped Out_of_memory)
  | Some n -> t.alloc_fail_after <- Some (n - 1)
  | None -> ());
  let request = if Int64.compare request 1L < 0 then 1L else request in
  let padded = Bits.align_up request alloc_align in
  let rec take acc = function
    | [] -> None
    | (b, s) :: rest ->
        (* capability stores require 32-byte-aligned blocks *)
        let aligned = Bits.align_up b alloc_align in
        let lead = Int64.sub aligned b in
        if Bits.uge s (Int64.add lead padded) then begin
          let remainder = Int64.sub s (Int64.add lead padded) in
          let rest' =
            if remainder = 0L then rest else (Int64.add aligned padded, remainder) :: rest
          in
          let rest' = if lead = 0L then rest' else (b, lead) :: rest' in
          Some (aligned, List.rev_append acc rest')
        end
        else take ((b, s) :: acc) rest
  in
  match take [] t.free_list with
  | None -> raise (Trapped Out_of_memory)
  | Some (base, free_list) ->
      t.free_list <- free_list;
      Hashtbl.replace t.allocated base padded;
      t.heap_allocated <- Int64.add t.heap_allocated padded;
      (base, request)

let free t addr =
  t.frees <- t.frees + 1;
  (match t.free_fail_after with
  | Some 0 ->
      t.free_fail_after <- None;
      raise (Trapped (Invalid_free addr))
  | Some n -> t.free_fail_after <- Some (n - 1)
  | None -> ());
  match Hashtbl.find_opt t.allocated addr with
  | None -> raise (Trapped (Invalid_free addr))
  | Some size ->
      Hashtbl.remove t.allocated addr;
      (* reinsert sorted, then merge adjacent ranges in one pass *)
      let entries = List.sort (fun (a, _) (b, _) -> Bits.ucompare a b) ((addr, size) :: t.free_list) in
      let merged =
        List.fold_left
          (fun acc (b, s) ->
            match acc with
            | (pb, ps) :: rest when Int64.add pb ps = b -> (pb, Int64.add ps s) :: rest
            | _ -> (b, s) :: acc)
          [] entries
      in
      t.free_list <- List.rev merged

(* -- execution helpers -------------------------------------------------- *)

let unwrap = function Ok v -> v | Error f -> raise (Trapped (Cap_trap f))

(* Same-module copy of the unsigned compare (the dev profile's -opaque
   defeats cross-module inlining and this runs several times per
   retired memory instruction). *)
let[@inline] m_ult a b = Int64.add a Int64.min_int < Int64.add b Int64.min_int

(* The dereference-time capability check against the SoA register file,
   raising [Trapped] directly. The check order (tag, seal, permission,
   bounds) matches [Capability.check_access] exactly so the reported
   fault is identical; [pmask] is the precomputed bit of [perm], which
   travels only for fault reporting. *)
let[@inline] soa_check t cb addr size pmask perm =
  let m = t.cap_meta.(cb) in
  if m land meta_tag = 0 then raise (Trapped (Cap_trap Fault.Tag_violation));
  if m land meta_sealed <> 0 then
    raise (Trapped (Cap_trap (Fault.Seal_violation "dereference of a sealed capability")));
  if m land pmask = 0 then raise (Trapped (Cap_trap (Fault.Perm_violation perm)));
  let base = b64_get t.cap_base (cb lsl 3) in
  let top = Int64.add base (b64_get t.cap_len (cb lsl 3)) in
  let last = Int64.add addr (Int64.of_int size) in
  if m_ult addr base || m_ult top last || m_ult last addr then
    raise (Trapped (Cap_trap (Fault.Bounds_violation { addr; base; top })))

(* [a] has passed the capability bounds check against a capability
   whose region lies inside data memory, so the int64->int conversion
   at the call sites is exact. *)
let dmem_cost t a size =
  if not t.trace_on then Cache.Timing.access_cycles_int t.dcache a ~size
  else begin
    let l1 = Cache.Timing.l1 t.dcache and l2 = Cache.Timing.l2 t.dcache in
    let m1 = Cache.misses l1 and m2 = Cache.misses l2 in
    let c = Cache.Timing.access_cycles_int t.dcache a ~size in
    let addr = Int64.of_int a in
    if Cache.misses l1 > m1 then
      Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Cache_miss { level = 1; addr });
    if Cache.misses l2 > m2 then
      Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Cache_miss { level = 2; addr });
    c
  end

let[@inline] check_cap_alignment addr =
  if Int64.to_int addr land (Cap.byte_width - 1) <> 0 then
    raise (Trapped (Cap_trap (Fault.Alignment_violation { addr; required = Cap.byte_width })))

(* Executes the syscall in GPR 2 and returns its cycle cost. A
   terminating syscall (exit) stages its outcome in [t.pending] rather
   than returning it, so the per-instruction path carries plain ints. *)
let do_syscall t =
  t.syscalls <- t.syscalls + 1;
  let n = gpr t 2 in
  let a0 = gpr t 4 and a1 = gpr t 5 in
  if t.trace_on then
    Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Syscall { pc = t.pc; number = n });
  if n = syscall_exit then (
    t.pending <- Some (Exit a0);
    10)
  else if n = syscall_print_int then (
    Buffer.add_string t.out (Int64.to_string a0);
    10)
  else if n = syscall_print_char then (
    Buffer.add_char t.out (Char.chr (Int64.to_int (Int64.logand a0 0xffL)));
    10)
  else if n = syscall_malloc then (
    let base, size = malloc t a0 in
    if t.trace_on then
      Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Alloc { base; size });
    set_gpr t 2 base;
    set_cap_idx t 1 (Cap.make ~base ~length:size ~perms:Perms.all);
    40)
  else if n = syscall_free then (
    free t a0;
    if t.trace_on then Telemetry.Sink.record t.sink ~ts:t.cycles (Telemetry.Free { base = a0 });
    30)
  else if n = syscall_clock then (
    set_gpr t 2 (Int64.of_int t.cycles);
    10)
  else if n = syscall_print_bytes then (
    let len = Int64.to_int a1 in
    unwrap (Ops.load_check (cap_get_idx t 0) ~addr:a0 ~size:len);
    let b =
      try Mem.load_bytes_i64 t.memory ~addr:a0 ~len
      with Mem.Bus_error a -> raise (Trapped (Bus_trap a))
    in
    Buffer.add_bytes t.out b;
    10 + (len / 8))
  else if n = syscall_print_cstr then (
    (* NUL-terminated string at legacy address a0. The capability check
       runs once: validate access to the first byte (tag, seal,
       permission and initial bounds — none of which change during the
       scan), then bound the scan by the capability's remaining extent
       instead of re-running Ops.load_check per character. Walking past
       the extent reproduces exactly the bounds fault the per-byte
       check would have raised at that address. *)
    let ddc = cap_get_idx t 0 in
    unwrap (Ops.load_check ddc ~addr:a0 ~size:1);
    let cap_top = Cap.top ddc in
    let rec go addr count =
      if count > 65536 then raise (Trapped (Bus_trap addr))
      else if Bits.uge addr cap_top then
        raise
          (Trapped
             (Cap_trap (Fault.Bounds_violation { addr; base = Ops.c_get_base ddc; top = cap_top })))
      else begin
        let c =
          try Mem.load_int_i64 t.memory ~addr ~size:1
          with Mem.Bus_error a -> raise (Trapped (Bus_trap a))
        in
        if c <> 0L then begin
          Buffer.add_char t.out (Char.chr (Int64.to_int c));
          go (Int64.add addr 1L) (count + 1)
        end
        else count
      end
    in
    let n_chars = go a0 0 in
    10 + n_chars)
  else raise (Trapped (Invalid_syscall n))

(* -- the execute stage --------------------------------------------------- *)

(* Shorthands over the register-file byte buffer. The decoded table
   already carries byte offsets (pre-shifted, r0 destinations redirected
   to the sink slot), so the arms below index [t.gprs] directly. *)
let[@inline] rg t o = b64_get t.gprs o
let[@inline] wg t o v = b64_set t.gprs o v
let[@inline] imm64 t pc = b64_get t.imms (pc lsl 3)

(* Capability pointer comparison against the SoA file; same result sign
   classes as [Cap_ops.c_ptr_cmp]. *)
let[@inline] soa_ptr_cmp t a b =
  let ta = t.cap_meta.(a) land meta_tag and tb = t.cap_meta.(b) land meta_tag in
  if ta <> tb then (if ta = 0 then -1 else 1)
  else
    let aa = cap_cursor t a and ab = cap_cursor t b in
    if m_ult aa ab then -1 else if aa = ab then 0 else 1

(* Execute the decoded instruction at [pc] and return its cycle cost
   (the fetch cost is the caller's). Each arm writes [t.pc] itself —
   strictly after every operation that can raise [Trapped], so a
   trapping instruction leaves the pc at the faulting instruction.
   Terminal outcomes (exit syscall, HALT) are staged in [t.pending]
   and drained by the caller after retiring.

   [op] is a constant constructor, so this match is one jump table —
   the whole fetch+decode+cost computation the old loop redid per
   retire is a handful of flat-array loads here. *)
let exec t pc (op : Decoded.op) =
  match op with
  | Decoded.O_nop ->
      t.pc <- pc + 1;
      1
  | O_li ->
      wg t (Array.unsafe_get t.xs pc) (imm64 t pc);
      t.pc <- pc + 1;
      1
  (* ALU, register form *)
  | O_add ->
      wg t (Array.unsafe_get t.xs pc) (Int64.add (rg t (Array.unsafe_get t.ys pc)) (rg t (Array.unsafe_get t.zs pc)));
      t.pc <- pc + 1;
      1
  | O_addt ->
      let a = rg t (Array.unsafe_get t.ys pc) and b = rg t (Array.unsafe_get t.zs pc) in
      let r = Int64.add a b in
      (* overflow iff operands share a sign that differs from the result *)
      if t.trapv && Int64.logand (Int64.logxor r a) (Int64.logxor r b) < 0L then
        raise (Trapped Overflow_trap);
      wg t (Array.unsafe_get t.xs pc) r;
      t.pc <- pc + 1;
      1
  | O_sub ->
      wg t (Array.unsafe_get t.xs pc) (Int64.sub (rg t (Array.unsafe_get t.ys pc)) (rg t (Array.unsafe_get t.zs pc)));
      t.pc <- pc + 1;
      1
  | O_mul ->
      wg t (Array.unsafe_get t.xs pc) (Int64.mul (rg t (Array.unsafe_get t.ys pc)) (rg t (Array.unsafe_get t.zs pc)));
      t.pc <- pc + 1;
      4
  | O_div ->
      let b = rg t (Array.unsafe_get t.zs pc) in
      if b = 0L then raise (Trapped Div_by_zero);
      wg t (Array.unsafe_get t.xs pc) (Int64.div (rg t (Array.unsafe_get t.ys pc)) b);
      t.pc <- pc + 1;
      16
  | O_divu ->
      let b = rg t (Array.unsafe_get t.zs pc) in
      if b = 0L then raise (Trapped Div_by_zero);
      wg t (Array.unsafe_get t.xs pc) (Int64.unsigned_div (rg t (Array.unsafe_get t.ys pc)) b);
      t.pc <- pc + 1;
      16
  | O_rem ->
      let b = rg t (Array.unsafe_get t.zs pc) in
      if b = 0L then raise (Trapped Div_by_zero);
      wg t (Array.unsafe_get t.xs pc) (Int64.rem (rg t (Array.unsafe_get t.ys pc)) b);
      t.pc <- pc + 1;
      16
  | O_remu ->
      let b = rg t (Array.unsafe_get t.zs pc) in
      if b = 0L then raise (Trapped Div_by_zero);
      wg t (Array.unsafe_get t.xs pc) (Int64.unsigned_rem (rg t (Array.unsafe_get t.ys pc)) b);
      t.pc <- pc + 1;
      16
  | O_and ->
      wg t (Array.unsafe_get t.xs pc) (Int64.logand (rg t (Array.unsafe_get t.ys pc)) (rg t (Array.unsafe_get t.zs pc)));
      t.pc <- pc + 1;
      1
  | O_or ->
      wg t (Array.unsafe_get t.xs pc) (Int64.logor (rg t (Array.unsafe_get t.ys pc)) (rg t (Array.unsafe_get t.zs pc)));
      t.pc <- pc + 1;
      1
  | O_xor ->
      wg t (Array.unsafe_get t.xs pc) (Int64.logxor (rg t (Array.unsafe_get t.ys pc)) (rg t (Array.unsafe_get t.zs pc)));
      t.pc <- pc + 1;
      1
  | O_nor ->
      wg t (Array.unsafe_get t.xs pc) (Int64.lognot (Int64.logor (rg t (Array.unsafe_get t.ys pc)) (rg t (Array.unsafe_get t.zs pc))));
      t.pc <- pc + 1;
      1
  | O_sll ->
      wg t (Array.unsafe_get t.xs pc) (Int64.shift_left (rg t (Array.unsafe_get t.ys pc)) (Int64.to_int (rg t (Array.unsafe_get t.zs pc)) land 63));
      t.pc <- pc + 1;
      1
  | O_srl ->
      wg t (Array.unsafe_get t.xs pc)
        (Int64.shift_right_logical (rg t (Array.unsafe_get t.ys pc)) (Int64.to_int (rg t (Array.unsafe_get t.zs pc)) land 63));
      t.pc <- pc + 1;
      1
  | O_sra ->
      wg t (Array.unsafe_get t.xs pc) (Int64.shift_right (rg t (Array.unsafe_get t.ys pc)) (Int64.to_int (rg t (Array.unsafe_get t.zs pc)) land 63));
      t.pc <- pc + 1;
      1
  | O_slt ->
      wg t (Array.unsafe_get t.xs pc) (if rg t (Array.unsafe_get t.ys pc) < rg t (Array.unsafe_get t.zs pc) then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_sltu ->
      wg t (Array.unsafe_get t.xs pc) (if m_ult (rg t (Array.unsafe_get t.ys pc)) (rg t (Array.unsafe_get t.zs pc)) then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_seq ->
      wg t (Array.unsafe_get t.xs pc) (if rg t (Array.unsafe_get t.ys pc) = rg t (Array.unsafe_get t.zs pc) then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_sne ->
      wg t (Array.unsafe_get t.xs pc) (if rg t (Array.unsafe_get t.ys pc) <> rg t (Array.unsafe_get t.zs pc) then 1L else 0L);
      t.pc <- pc + 1;
      1
  (* ALU, immediate form: the operand comes straight out of the decoded
     table — nothing is staged through a scratch register *)
  | O_addi ->
      wg t (Array.unsafe_get t.xs pc) (Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc));
      t.pc <- pc + 1;
      1
  | O_addti ->
      let a = rg t (Array.unsafe_get t.ys pc) and b = imm64 t pc in
      let r = Int64.add a b in
      if t.trapv && Int64.logand (Int64.logxor r a) (Int64.logxor r b) < 0L then
        raise (Trapped Overflow_trap);
      wg t (Array.unsafe_get t.xs pc) r;
      t.pc <- pc + 1;
      1
  | O_subi ->
      wg t (Array.unsafe_get t.xs pc) (Int64.sub (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc));
      t.pc <- pc + 1;
      1
  | O_muli ->
      wg t (Array.unsafe_get t.xs pc) (Int64.mul (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc));
      t.pc <- pc + 1;
      4
  | O_divi ->
      let b = imm64 t pc in
      if b = 0L then raise (Trapped Div_by_zero);
      wg t (Array.unsafe_get t.xs pc) (Int64.div (rg t (Array.unsafe_get t.ys pc)) b);
      t.pc <- pc + 1;
      16
  | O_divui ->
      let b = imm64 t pc in
      if b = 0L then raise (Trapped Div_by_zero);
      wg t (Array.unsafe_get t.xs pc) (Int64.unsigned_div (rg t (Array.unsafe_get t.ys pc)) b);
      t.pc <- pc + 1;
      16
  | O_remi ->
      let b = imm64 t pc in
      if b = 0L then raise (Trapped Div_by_zero);
      wg t (Array.unsafe_get t.xs pc) (Int64.rem (rg t (Array.unsafe_get t.ys pc)) b);
      t.pc <- pc + 1;
      16
  | O_remui ->
      let b = imm64 t pc in
      if b = 0L then raise (Trapped Div_by_zero);
      wg t (Array.unsafe_get t.xs pc) (Int64.unsigned_rem (rg t (Array.unsafe_get t.ys pc)) b);
      t.pc <- pc + 1;
      16
  | O_andi ->
      wg t (Array.unsafe_get t.xs pc) (Int64.logand (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc));
      t.pc <- pc + 1;
      1
  | O_ori ->
      wg t (Array.unsafe_get t.xs pc) (Int64.logor (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc));
      t.pc <- pc + 1;
      1
  | O_xori ->
      wg t (Array.unsafe_get t.xs pc) (Int64.logxor (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc));
      t.pc <- pc + 1;
      1
  | O_nori ->
      wg t (Array.unsafe_get t.xs pc) (Int64.lognot (Int64.logor (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc)));
      t.pc <- pc + 1;
      1
  | O_slli ->
      wg t (Array.unsafe_get t.xs pc) (Int64.shift_left (rg t (Array.unsafe_get t.ys pc)) (Int64.to_int (imm64 t pc) land 63));
      t.pc <- pc + 1;
      1
  | O_srli ->
      wg t (Array.unsafe_get t.xs pc)
        (Int64.shift_right_logical (rg t (Array.unsafe_get t.ys pc)) (Int64.to_int (imm64 t pc) land 63));
      t.pc <- pc + 1;
      1
  | O_srai ->
      wg t (Array.unsafe_get t.xs pc) (Int64.shift_right (rg t (Array.unsafe_get t.ys pc)) (Int64.to_int (imm64 t pc) land 63));
      t.pc <- pc + 1;
      1
  | O_slti ->
      wg t (Array.unsafe_get t.xs pc) (if rg t (Array.unsafe_get t.ys pc) < imm64 t pc then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_sltui ->
      wg t (Array.unsafe_get t.xs pc) (if m_ult (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc) then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_seqi ->
      wg t (Array.unsafe_get t.xs pc) (if rg t (Array.unsafe_get t.ys pc) = imm64 t pc then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_snei ->
      wg t (Array.unsafe_get t.xs pc) (if rg t (Array.unsafe_get t.ys pc) <> imm64 t pc then 1L else 0L);
      t.pc <- pc + 1;
      1
  (* memory: legacy addressing through the DDC (capability register 0) *)
  | O_load_s ->
      let addr = Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc) in
      let size = (Array.unsafe_get t.zs pc) in
      soa_check t 0 addr size p_load Perms.Load;
      let a = Int64.to_int addr in
      let raw = Mem.load_int t.memory a ~size in
      let sh = 64 - (size lsl 3) in
      wg t (Array.unsafe_get t.xs pc) (Int64.shift_right (Int64.shift_left raw sh) sh);
      t.loads <- t.loads + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a size
  | O_load_u ->
      let addr = Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc) in
      let size = (Array.unsafe_get t.zs pc) in
      soa_check t 0 addr size p_load Perms.Load;
      let a = Int64.to_int addr in
      let raw = Mem.load_int t.memory a ~size in
      wg t (Array.unsafe_get t.xs pc) raw;
      t.loads <- t.loads + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a size
  | O_load8 ->
      let addr = Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc) in
      soa_check t 0 addr 8 p_load Perms.Load;
      let a = Int64.to_int addr in
      wg t (Array.unsafe_get t.xs pc) (Mem.load_word t.memory a);
      t.loads <- t.loads + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a 8
  | O_store ->
      let addr = Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc) in
      let size = (Array.unsafe_get t.zs pc) in
      soa_check t 0 addr size p_store Perms.Store;
      let a = Int64.to_int addr in
      Mem.store_int t.memory a ~size (rg t (Array.unsafe_get t.xs pc));
      t.stores <- t.stores + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a size
  | O_store8 ->
      let addr = Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc) in
      soa_check t 0 addr 8 p_store Perms.Store;
      let a = Int64.to_int addr in
      Mem.store_word t.memory a (rg t (Array.unsafe_get t.xs pc));
      t.stores <- t.stores + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a 8
  (* memory: capability-relative *)
  | O_cload_s ->
      let zv = (Array.unsafe_get t.zs pc) in
      let cb = zv land 0xff and size = zv lsr 8 in
      let addr = Int64.add (cap_cursor t cb) (Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc)) in
      soa_check t cb addr size p_load Perms.Load;
      let a = Int64.to_int addr in
      let raw = Mem.load_int t.memory a ~size in
      let sh = 64 - (size lsl 3) in
      wg t (Array.unsafe_get t.xs pc) (Int64.shift_right (Int64.shift_left raw sh) sh);
      t.loads <- t.loads + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a size
  | O_cload_u ->
      let zv = (Array.unsafe_get t.zs pc) in
      let cb = zv land 0xff and size = zv lsr 8 in
      let addr = Int64.add (cap_cursor t cb) (Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc)) in
      soa_check t cb addr size p_load Perms.Load;
      let a = Int64.to_int addr in
      let raw = Mem.load_int t.memory a ~size in
      wg t (Array.unsafe_get t.xs pc) raw;
      t.loads <- t.loads + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a size
  | O_cload8 ->
      let cb = (Array.unsafe_get t.zs pc) land 0xff in
      let addr = Int64.add (cap_cursor t cb) (Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc)) in
      soa_check t cb addr 8 p_load Perms.Load;
      let a = Int64.to_int addr in
      wg t (Array.unsafe_get t.xs pc) (Mem.load_word t.memory a);
      t.loads <- t.loads + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a 8
  | O_cstore ->
      let zv = (Array.unsafe_get t.zs pc) in
      let cb = zv land 0xff and size = zv lsr 8 in
      let addr = Int64.add (cap_cursor t cb) (Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc)) in
      soa_check t cb addr size p_store Perms.Store;
      let a = Int64.to_int addr in
      Mem.store_int t.memory a ~size (rg t (Array.unsafe_get t.xs pc));
      t.stores <- t.stores + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a size
  | O_cstore8 ->
      let cb = (Array.unsafe_get t.zs pc) land 0xff in
      let addr = Int64.add (cap_cursor t cb) (Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc)) in
      soa_check t cb addr 8 p_store Perms.Store;
      let a = Int64.to_int addr in
      Mem.store_word t.memory a (rg t (Array.unsafe_get t.xs pc));
      t.stores <- t.stores + 1;
      t.pc <- pc + 1;
      1 + dmem_cost t a 8
  | O_clc ->
      let cb = (Array.unsafe_get t.zs pc) in
      let addr = Int64.add (cap_cursor t cb) (Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc)) in
      check_cap_alignment addr;
      soa_check t cb addr Cap.byte_width p_load_cap Perms.Load_cap;
      let a = Int64.to_int addr in
      let cd = Array.unsafe_get t.xs pc in
      t.cap_meta.(cd) <-
        Mem.load_cap_fields t.memory a ~base:t.cap_base ~len:t.cap_len
          ~off:t.cap_off ~otype:t.cap_otype ~pos:(cd lsl 3);
      t.cap_loads <- t.cap_loads + 1;
      let cost = 1 + dmem_cost t a Cap.byte_width in
      t.pc <- pc + 1;
      cost
  | O_csc ->
      let cb = (Array.unsafe_get t.zs pc) in
      let addr = Int64.add (cap_cursor t cb) (Int64.add (rg t (Array.unsafe_get t.ys pc)) (imm64 t pc)) in
      check_cap_alignment addr;
      soa_check t cb addr Cap.byte_width p_store_cap Perms.Store_cap;
      let a = Int64.to_int addr in
      let cs = Array.unsafe_get t.xs pc in
      Mem.store_cap_fields t.memory a ~base:t.cap_base ~len:t.cap_len
        ~off:t.cap_off ~pos:(cs lsl 3) ~meta:t.cap_meta.(cs)
        ~otype:(Int64.to_int (b64_get t.cap_otype (cs lsl 3)));
      t.cap_stores <- t.cap_stores + 1;
      let cost = 1 + dmem_cost t a Cap.byte_width in
      t.pc <- pc + 1;
      cost
  (* capability queries: straight SoA lane reads *)
  | O_cgetbase ->
      wg t (Array.unsafe_get t.xs pc) (b64_get t.cap_base ((Array.unsafe_get t.ys pc) lsl 3));
      t.pc <- pc + 1;
      1
  | O_cgetlen ->
      wg t (Array.unsafe_get t.xs pc) (b64_get t.cap_len ((Array.unsafe_get t.ys pc) lsl 3));
      t.pc <- pc + 1;
      1
  | O_cgetoffset ->
      wg t (Array.unsafe_get t.xs pc) (b64_get t.cap_off ((Array.unsafe_get t.ys pc) lsl 3));
      t.pc <- pc + 1;
      1
  | O_cgettag ->
      wg t (Array.unsafe_get t.xs pc) (if t.cap_meta.((Array.unsafe_get t.ys pc)) land meta_tag <> 0 then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_cgetperm ->
      wg t (Array.unsafe_get t.xs pc) (Int64.of_int (t.cap_meta.((Array.unsafe_get t.ys pc)) land 0xff));
      t.pc <- pc + 1;
      1
  (* capability modifies: copy the SoA lanes, then patch the changed
     one — no record materializes. The offset-moving ops dominate the
     CHERIv3 instruction mix (~13% of Dhrystone). *)
  | O_cincoffset ->
      let cb = (Array.unsafe_get t.ys pc) in
      if t.is_v3 then begin
        let m = t.cap_meta.(cb) in
        if m land (meta_sealed lor meta_tag) = meta_sealed lor meta_tag then
          raise (Trapped (Cap_trap (Fault.Seal_violation "CIncOffset on a sealed capability")));
        let newoff = Int64.add (b64_get t.cap_off (cb lsl 3)) (rg t (Array.unsafe_get t.zs pc)) in
        let cd = (Array.unsafe_get t.xs pc) in
        cap_copy t ~dst:cd ~src:cb;
        b64_set t.cap_off (cd lsl 3) newoff
      end
      else raise (Trapped (Cap_trap (Fault.Unsupported "CIncOffset (CHERIv3 only)")));
      t.pc <- pc + 1;
      1
  | O_cincoffsetimm ->
      let cb = (Array.unsafe_get t.ys pc) in
      if t.is_v3 then begin
        let m = t.cap_meta.(cb) in
        if m land (meta_sealed lor meta_tag) = meta_sealed lor meta_tag then
          raise (Trapped (Cap_trap (Fault.Seal_violation "CIncOffset on a sealed capability")));
        let newoff = Int64.add (b64_get t.cap_off (cb lsl 3)) (imm64 t pc) in
        let cd = (Array.unsafe_get t.xs pc) in
        cap_copy t ~dst:cd ~src:cb;
        b64_set t.cap_off (cd lsl 3) newoff
      end
      else raise (Trapped (Cap_trap (Fault.Unsupported "CIncOffset (CHERIv3 only)")));
      t.pc <- pc + 1;
      1
  | O_csetoffset ->
      let cb = (Array.unsafe_get t.ys pc) in
      if t.is_v3 then begin
        let m = t.cap_meta.(cb) in
        if m land (meta_sealed lor meta_tag) = meta_sealed lor meta_tag then
          raise (Trapped (Cap_trap (Fault.Seal_violation "CSetOffset on a sealed capability")));
        let newoff = rg t (Array.unsafe_get t.zs pc) in
        let cd = (Array.unsafe_get t.xs pc) in
        cap_copy t ~dst:cd ~src:cb;
        b64_set t.cap_off (cd lsl 3) newoff
      end
      else raise (Trapped (Cap_trap (Fault.Unsupported "CSetOffset (CHERIv3 only)")));
      t.pc <- pc + 1;
      1
  | O_cincbase ->
      let cb = (Array.unsafe_get t.ys pc) in
      let m = t.cap_meta.(cb) in
      if m land meta_tag = 0 then raise (Trapped (Cap_trap Fault.Tag_violation));
      if m land meta_sealed <> 0 then
        raise (Trapped (Cap_trap (Fault.Seal_violation "CIncBase on a sealed capability")));
      let delta = rg t (Array.unsafe_get t.zs pc) in
      let len = b64_get t.cap_len (cb lsl 3) in
      if m_ult len delta then raise (Trapped (Cap_trap Fault.Length_violation));
      let base = b64_get t.cap_base (cb lsl 3) in
      let off = b64_get t.cap_off (cb lsl 3) in
      let cd = (Array.unsafe_get t.xs pc) in
      cap_copy t ~dst:cd ~src:cb;
      let d = cd lsl 3 in
      b64_set t.cap_base d (Int64.add base delta);
      b64_set t.cap_len d (Int64.sub len delta);
      b64_set t.cap_off d (if t.is_v3 then Int64.sub off delta else 0L);
      t.pc <- pc + 1;
      1
  | O_csetlen ->
      let cb = (Array.unsafe_get t.ys pc) in
      let m = t.cap_meta.(cb) in
      if m land meta_tag = 0 then raise (Trapped (Cap_trap Fault.Tag_violation));
      if m land meta_sealed <> 0 then
        raise (Trapped (Cap_trap (Fault.Seal_violation "CSetLen on a sealed capability")));
      let len = rg t (Array.unsafe_get t.zs pc) in
      if m_ult (b64_get t.cap_len (cb lsl 3)) len then
        raise (Trapped (Cap_trap Fault.Length_violation));
      let cd = (Array.unsafe_get t.xs pc) in
      cap_copy t ~dst:cd ~src:cb;
      b64_set t.cap_len (cd lsl 3) len;
      t.pc <- pc + 1;
      1
  | O_candperm ->
      (* [Cap_ops.c_and_perm] is a bare permission intersection with no
         tag/seal checks; the mask was pre-narrowed at decode time *)
      let cb = (Array.unsafe_get t.ys pc) and cd = (Array.unsafe_get t.xs pc) in
      let m = t.cap_meta.(cb) in
      cap_copy t ~dst:cd ~src:cb;
      t.cap_meta.(cd) <- (m land (meta_sealed lor meta_tag)) lor (m land 0xff land (Array.unsafe_get t.zs pc));
      t.pc <- pc + 1;
      1
  | O_ccleartag ->
      let cb = (Array.unsafe_get t.ys pc) and cd = (Array.unsafe_get t.xs pc) in
      cap_copy t ~dst:cd ~src:cb;
      t.cap_meta.(cd) <- t.cap_meta.(cd) land lnot meta_tag;
      t.pc <- pc + 1;
      1
  | O_cmove ->
      cap_copy t ~dst:(Array.unsafe_get t.xs pc) ~src:(Array.unsafe_get t.ys pc);
      t.pc <- pc + 1;
      1
  | O_cseal ->
      set_cap_idx t (Array.unsafe_get t.xs pc)
        (unwrap (Ops.c_seal ~authority:(cap_get_idx t (Array.unsafe_get t.zs pc)) (cap_get_idx t (Array.unsafe_get t.ys pc))));
      t.pc <- pc + 1;
      1
  | O_cunseal ->
      set_cap_idx t (Array.unsafe_get t.xs pc)
        (unwrap (Ops.c_unseal ~authority:(cap_get_idx t (Array.unsafe_get t.zs pc)) (cap_get_idx t (Array.unsafe_get t.ys pc))));
      t.pc <- pc + 1;
      1
  | O_cptrcmp_eq ->
      wg t (Array.unsafe_get t.xs pc) (if soa_ptr_cmp t (Array.unsafe_get t.ys pc) (Array.unsafe_get t.zs pc) = 0 then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_cptrcmp_ne ->
      wg t (Array.unsafe_get t.xs pc) (if soa_ptr_cmp t (Array.unsafe_get t.ys pc) (Array.unsafe_get t.zs pc) <> 0 then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_cptrcmp_lt ->
      wg t (Array.unsafe_get t.xs pc) (if soa_ptr_cmp t (Array.unsafe_get t.ys pc) (Array.unsafe_get t.zs pc) < 0 then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_cptrcmp_le ->
      wg t (Array.unsafe_get t.xs pc) (if soa_ptr_cmp t (Array.unsafe_get t.ys pc) (Array.unsafe_get t.zs pc) <= 0 then 1L else 0L);
      t.pc <- pc + 1;
      1
  | O_cfromptr ->
      let cb = (Array.unsafe_get t.ys pc) in
      if t.cap_meta.(cb) land meta_tag = 0 then raise (Trapped (Cap_trap Fault.Tag_violation));
      let v = rg t (Array.unsafe_get t.zs pc) in
      let cd = (Array.unsafe_get t.xs pc) in
      if v = 0L then set_cap_null t cd
      else begin
        cap_copy t ~dst:cd ~src:cb;
        b64_set t.cap_off (cd lsl 3) v
      end;
      t.pc <- pc + 1;
      1
  | O_ctoptr ->
      let cs = (Array.unsafe_get t.ys pc) and cb = (Array.unsafe_get t.zs pc) in
      (if t.cap_meta.(cs) land meta_tag = 0 then wg t (Array.unsafe_get t.xs pc) 0L
       else begin
         let addr = cap_cursor t cs in
         let rb = b64_get t.cap_base (cb lsl 3) in
         let rtop = Int64.add rb (b64_get t.cap_len (cb lsl 3)) in
         wg t (Array.unsafe_get t.xs pc)
           (if (not (m_ult addr rb)) && not (m_ult rtop addr) then Int64.sub addr rb else 0L)
       end);
      t.pc <- pc + 1;
      1
  (* control flow: targets are pre-resolved absolute PCs *)
  | O_beq ->
      if rg t (Array.unsafe_get t.xs pc) = rg t (Array.unsafe_get t.ys pc) then begin
        t.pc <- (Array.unsafe_get t.zs pc);
        2
      end
      else begin
        t.pc <- pc + 1;
        1
      end
  | O_bne ->
      if rg t (Array.unsafe_get t.xs pc) <> rg t (Array.unsafe_get t.ys pc) then begin
        t.pc <- (Array.unsafe_get t.zs pc);
        2
      end
      else begin
        t.pc <- pc + 1;
        1
      end
  | O_bltz ->
      if rg t (Array.unsafe_get t.xs pc) < 0L then begin
        t.pc <- (Array.unsafe_get t.zs pc);
        2
      end
      else begin
        t.pc <- pc + 1;
        1
      end
  | O_blez ->
      if rg t (Array.unsafe_get t.xs pc) <= 0L then begin
        t.pc <- (Array.unsafe_get t.zs pc);
        2
      end
      else begin
        t.pc <- pc + 1;
        1
      end
  | O_bgtz ->
      if rg t (Array.unsafe_get t.xs pc) > 0L then begin
        t.pc <- (Array.unsafe_get t.zs pc);
        2
      end
      else begin
        t.pc <- pc + 1;
        1
      end
  | O_bgez ->
      if rg t (Array.unsafe_get t.xs pc) >= 0L then begin
        t.pc <- (Array.unsafe_get t.zs pc);
        2
      end
      else begin
        t.pc <- pc + 1;
        1
      end
  | O_beqz ->
      if rg t (Array.unsafe_get t.xs pc) = 0L then begin
        t.pc <- (Array.unsafe_get t.zs pc);
        2
      end
      else begin
        t.pc <- pc + 1;
        1
      end
  | O_bnez ->
      if rg t (Array.unsafe_get t.xs pc) <> 0L then begin
        t.pc <- (Array.unsafe_get t.zs pc);
        2
      end
      else begin
        t.pc <- pc + 1;
        1
      end
  | O_j ->
      t.pc <- (Array.unsafe_get t.zs pc);
      2
  | O_jal ->
      (* the link value (pc+1 as int64) was pre-staged at decode time *)
      b64_set t.gprs (31 * 8) (imm64 t pc);
      t.pc <- (Array.unsafe_get t.zs pc);
      2
  | O_jr ->
      t.pc <- Int64.to_int (rg t (Array.unsafe_get t.xs pc));
      2
  | O_jalr ->
      (* read the destination before writing the link: rs may be r31 *)
      let dest = Int64.to_int (rg t (Array.unsafe_get t.xs pc)) in
      b64_set t.gprs (31 * 8) (imm64 t pc);
      t.pc <- dest;
      2
  | O_cjalr ->
      let cb = (Array.unsafe_get t.ys pc) in
      let m = t.cap_meta.(cb) in
      if m land meta_tag = 0 then raise (Trapped (Cap_trap Fault.Tag_violation));
      if m land meta_sealed <> 0 then
        raise (Trapped (Cap_trap (Fault.Seal_violation "jump through a sealed capability")));
      if m land p_exec = 0 then raise (Trapped (Cap_trap (Fault.Perm_violation Perms.Execute)));
      (* materialize the destination before writing the link: cd may
         name the same register as cb *)
      let dest = cap_get_idx t cb in
      let link = Cap.with_offset_unchecked t.pcc (imm64 t pc) in
      set_cap_idx t (Array.unsafe_get t.xs pc) link;
      t.pcc <- dest;
      t.pc <- Int64.to_int (Int64.add dest.Cap.base dest.Cap.offset);
      2
  | O_cjr ->
      let cb = (Array.unsafe_get t.xs pc) in
      let m = t.cap_meta.(cb) in
      if m land meta_tag = 0 then raise (Trapped (Cap_trap Fault.Tag_violation));
      if m land p_exec = 0 then raise (Trapped (Cap_trap (Fault.Perm_violation Perms.Execute)));
      let dest = cap_get_idx t cb in
      t.pcc <- dest;
      t.pc <- Int64.to_int (Int64.add dest.Cap.base dest.Cap.offset);
      2
  (* system *)
  | O_syscall ->
      let cost = do_syscall t in
      t.pc <- pc + 1;
      cost
  | O_halt ->
      t.pending <- Some (Exit 0L);
      t.pc <- pc + 1;
      1
  | O_oor ->
      (* defense in depth: {!step} never dispatches the sentinel (its
         range test excludes index n), so reaching this arm means a
         caller indexed the table directly *)
      raise (Trapped (Pc_out_of_range pc))

(* Execute the instruction at [t.pc]. Returns [Some outcome] when the
   program finishes. Updates pc, cycles, counters.

   In-range test: one unsigned compare ([pc + min_int < len + min_int]
   ⟺ [0 <= pc < len]) instead of the old signed pair — the decoded
   table's sentinel row guarantees an index equal to [len] would still
   dispatch to a defined entry, so the single compare is also the only
   thing keeping the cold out-of-range path (which must not touch the
   icache or the cycle counter) out of the table. *)
let step t =
  let pc = t.pc in
  if pc + min_int < t.code_len + min_int then begin
    let icost = if Cache.access_fetch t.icache (pc lsl 2) then 0 else 6 in
    match exec t pc (Array.unsafe_get t.ops pc) with
    | cost ->
        t.instret <- t.instret + 1;
        t.cycles <- t.cycles + cost + icost;
        if t.trace_on then
          Telemetry.Sink.record t.sink ~ts:t.cycles
            (Telemetry.Instret { pc; cls = Array.unsafe_get t.classes pc });
        (match t.pending with
        | None -> None
        | Some _ as outcome ->
            t.pending <- None;
            outcome)
    | exception Trapped trap ->
        t.cycles <- t.cycles + 1 + icost;
        if t.trace_on then record_trap t ~pc trap;
        Some (Trap { trap; pc })
    | exception Ops.Cap_error f ->
        let trap = Cap_trap f in
        t.cycles <- t.cycles + 1 + icost;
        if t.trace_on then record_trap t ~pc trap;
        Some (Trap { trap; pc })
    | exception Mem.Bus_error a ->
        let trap = Bus_trap a in
        t.cycles <- t.cycles + 1 + icost;
        if t.trace_on then record_trap t ~pc trap;
        Some (Trap { trap; pc })
  end
  else begin
    (* cold: no fetch, no cycles — identical to the pre-decode loop *)
    if t.trace_on then record_trap t ~pc (Pc_out_of_range pc);
    Some (Trap { trap = Pc_out_of_range pc; pc })
  end

(* How many instructions to retire between wall-clock reads when a
   deadline is set: the check must be invisible next to the step cost. *)
let deadline_stride = 32_768

let run ?(fuel = 200_000_000) ?deadline_s ?(yield = false) t =
  (* In yield mode an exhausted budget is an interruption, not a
     verdict: the machine is untouched past the last retired
     instruction, so [run] again (here or after restoring a snapshot)
     continues byte-identically — the loop stops *before* stepping,
     never mid-instruction. *)
  let out_of_fuel = if yield then Yielded else Fuel_exhausted in
  let past_deadline = if yield then Yielded else Deadline_exceeded in
  match deadline_s with
  | None ->
      (* Fused fuel loop: {!step}'s body inlined so the exception
         handler (one trap-frame push/pop per retired instruction
         otherwise) is entered once per run. The recursion is outside
         the [try], so [go] stays tail-recursive; a trap unwinds to the
         handler with [t.pc] still at the faulting instruction (every
         arm writes pc strictly after its last raising operation) and
         the in-flight fetch cost in [t.last_icost]. *)
      let rec go remaining =
        if remaining <= 0 then out_of_fuel
        else begin
          let pc = t.pc in
          if pc + min_int < t.code_len + min_int then begin
            let icost = if Cache.access_fetch t.icache (pc lsl 2) then 0 else 6 in
            t.last_icost <- icost;
            let cost = exec t pc (Array.unsafe_get t.ops pc) in
            t.instret <- t.instret + 1;
            t.cycles <- t.cycles + cost + icost;
            if t.trace_on then
              Telemetry.Sink.record t.sink ~ts:t.cycles
                (Telemetry.Instret { pc; cls = Array.unsafe_get t.classes pc });
            match t.pending with
            | None -> go (remaining - 1)
            | Some o ->
                t.pending <- None;
                o
          end
          else begin
            if t.trace_on then record_trap t ~pc (Pc_out_of_range pc);
            Trap { trap = Pc_out_of_range pc; pc }
          end
        end
      in
      let finish trap =
        t.cycles <- t.cycles + 1 + t.last_icost;
        if t.trace_on then record_trap t ~pc:t.pc trap;
        Trap { trap; pc = t.pc }
      in
      (try go fuel with
      | Trapped trap -> finish trap
      | Ops.Cap_error f -> finish (Cap_trap f)
      | Mem.Bus_error a -> finish (Bus_trap a))
  | Some budget ->
      let expires = Unix.gettimeofday () +. budget in
      (* The clock is sampled every [deadline_stride] retired
         instructions and additionally on every syscall boundary
         ([seen_sys] lags the counter by one iteration): a workload
         looping through slow syscall paths retires few instructions
         per host second and would otherwise overshoot the deadline by
         the stride's worth of syscalls. Simulated cycle counts are
         unaffected either way. *)
      let rec go remaining seen_sys =
        if remaining <= 0 then out_of_fuel
        else begin
          let sys_now = t.syscalls in
          if
            (remaining mod deadline_stride = 0 || sys_now <> seen_sys)
            && Unix.gettimeofday () > expires
          then past_deadline
          else match step t with None -> go (remaining - 1) sys_now | Some outcome -> outcome
        end
      in
      go fuel t.syscalls

type stats = {
  st_cycles : int;
  st_instret : int;
  st_loads : int;
  st_stores : int;
  st_cap_loads : int;
  st_cap_stores : int;
  st_l1_hits : int;
  st_l1_misses : int;
  st_l2_hits : int;
  st_l2_misses : int;
  st_heap_allocated : int64;
  st_allocs : int;
  st_frees : int;
}

let stats t =
  let l1 = Cache.Timing.l1 t.dcache and l2 = Cache.Timing.l2 t.dcache in
  {
    st_cycles = t.cycles;
    st_instret = t.instret;
    st_loads = t.loads;
    st_stores = t.stores;
    st_cap_loads = t.cap_loads;
    st_cap_stores = t.cap_stores;
    st_l1_hits = Cache.hits l1;
    st_l1_misses = Cache.misses l1;
    st_l2_hits = Cache.hits l2;
    st_l2_misses = Cache.misses l2;
    st_heap_allocated = t.heap_allocated;
    st_allocs = t.allocs;
    st_frees = t.frees;
  }

(* Exposed for the loader (Cheri_asm): remove the data segment from the
   allocator's free list. *)
let reserve_data = heap_reserve

let program t = t.prog
let code t = Decoded.source t.prog

(* -- snapshot / restore -------------------------------------------------- *)

module Snap = struct
  type t = {
    s_gprs : string;  (* the full register file, 33 x 8 bytes LE *)
    s_caps : Cap.t array;  (* the 32 capability registers *)
    s_pcc : Cap.t;
    s_pc : int;
    s_cycles : int;
    s_instret : int;
    s_loads : int;
    s_stores : int;
    s_cap_loads : int;
    s_cap_stores : int;
    s_heap_allocated : int64;
    s_allocs : int;
    s_frees : int;
    s_syscalls : int;
    s_alloc_fail_after : int option;
    s_free_fail_after : int option;
    s_output : string;
    s_allocated : (int64 * int64) list;  (* sorted by base *)
    s_free_list : (int64 * int64) list;
    s_icache : int array;
    s_l1 : int array;
    s_l2 : int array;
    s_data_pages : (int * string) list;
    s_tag_pages : (int * string) list;
  }

  let page_bytes = 4096
end

let snapshot t : Snap.t =
  {
    Snap.s_gprs = Bytes.to_string t.gprs;
    s_caps = Array.init 32 (fun i -> cap_get_idx t i);
    s_pcc = t.pcc;
    s_pc = t.pc;
    s_cycles = t.cycles;
    s_instret = t.instret;
    s_loads = t.loads;
    s_stores = t.stores;
    s_cap_loads = t.cap_loads;
    s_cap_stores = t.cap_stores;
    s_heap_allocated = t.heap_allocated;
    s_allocs = t.allocs;
    s_frees = t.frees;
    s_syscalls = t.syscalls;
    s_alloc_fail_after = t.alloc_fail_after;
    s_free_fail_after = t.free_fail_after;
    s_output = Buffer.contents t.out;
    s_allocated =
      Hashtbl.fold (fun base size acc -> (base, size) :: acc) t.allocated []
      |> List.sort (fun (a, _) (b, _) -> Bits.ucompare a b);
    s_free_list = t.free_list;
    s_icache = Cache.snapshot_state t.icache;
    s_l1 = Cache.snapshot_state (Cache.Timing.l1 t.dcache);
    s_l2 = Cache.snapshot_state (Cache.Timing.l2 t.dcache);
    s_data_pages = fst (Mem.snapshot_pages t.memory ~page_bytes:Snap.page_bytes);
    s_tag_pages = snd (Mem.snapshot_pages t.memory ~page_bytes:Snap.page_bytes);
  }

let restore t (s : Snap.t) =
  if String.length s.Snap.s_gprs <> Bytes.length t.gprs then
    invalid_arg "Machine.restore: register file size mismatch";
  if Array.length s.Snap.s_caps <> 32 then
    invalid_arg "Machine.restore: capability register file size mismatch";
  Bytes.blit_string s.Snap.s_gprs 0 t.gprs 0 (Bytes.length t.gprs);
  Array.iteri (fun i c -> set_cap_idx t i c) s.Snap.s_caps;
  t.pcc <- s.Snap.s_pcc;
  t.pc <- s.Snap.s_pc;
  t.cycles <- s.Snap.s_cycles;
  t.instret <- s.Snap.s_instret;
  t.loads <- s.Snap.s_loads;
  t.stores <- s.Snap.s_stores;
  t.cap_loads <- s.Snap.s_cap_loads;
  t.cap_stores <- s.Snap.s_cap_stores;
  t.heap_allocated <- s.Snap.s_heap_allocated;
  t.allocs <- s.Snap.s_allocs;
  t.frees <- s.Snap.s_frees;
  t.syscalls <- s.Snap.s_syscalls;
  t.alloc_fail_after <- s.Snap.s_alloc_fail_after;
  t.free_fail_after <- s.Snap.s_free_fail_after;
  Buffer.clear t.out;
  Buffer.add_string t.out s.Snap.s_output;
  Hashtbl.reset t.allocated;
  List.iter (fun (base, size) -> Hashtbl.replace t.allocated base size) s.Snap.s_allocated;
  t.free_list <- s.Snap.s_free_list;
  Cache.restore_state t.icache s.Snap.s_icache;
  Cache.restore_state (Cache.Timing.l1 t.dcache) s.Snap.s_l1;
  Cache.restore_state (Cache.Timing.l2 t.dcache) s.Snap.s_l2;
  Mem.restore_pages t.memory ~page_bytes:Snap.page_bytes ~data:s.Snap.s_data_pages
    ~tags:s.Snap.s_tag_pages;
  (* [pending] is observable only within a step; between steps it is
     always [None], which is where a snapshot is ever taken. *)
  t.pending <- None

(* -- fault-injection perturbation points (Cheri_inject) ------------------ *)

let allocated_blocks t =
  Hashtbl.fold (fun base size acc -> (base, size) :: acc) t.allocated []
  |> List.sort (fun (a, _) (b, _) -> Bits.ucompare a b)

let inject_alloc_failure t ~after = t.alloc_fail_after <- Some (max 0 after)
let inject_free_failure t ~after = t.free_fail_after <- Some (max 0 after)
