module Telemetry = Cheri_telemetry.Telemetry

(* One constructor per *specialized* executable form, not per Insn.t
   constructor: ALU register/immediate forms get separate opcodes (the
   immediate operand is read straight out of [imms], so nothing is
   staged through a scratch register at run time), loads split by
   signedness, compares and zero-branches by kind. Constant
   constructors are immediate ints, so [ops] is a flat unboxed array
   and the softcore's dispatch is a single jump table over the tag —
   this is also where the per-opcode static cycle cost lands: each
   specialized arm carries its cost as a literal (MUL 4, the DIV family
   16, everything the old [alu_cost] match computed per retire). *)
type op =
  | O_nop
  | O_li
  (* ALU, register form: x=rd offset, y=rs offset, z=rt offset *)
  | O_add
  | O_addt
  | O_sub
  | O_mul
  | O_div
  | O_divu
  | O_rem
  | O_remu
  | O_and
  | O_or
  | O_xor
  | O_nor
  | O_sll
  | O_srl
  | O_sra
  | O_slt
  | O_sltu
  | O_seq
  | O_sne
  (* ALU, immediate form: x=rd offset, y=rs offset, imm *)
  | O_addi
  | O_addti
  | O_subi
  | O_muli
  | O_divi
  | O_divui
  | O_remi
  | O_remui
  | O_andi
  | O_ori
  | O_xori
  | O_nori
  | O_slli
  | O_srli
  | O_srai
  | O_slti
  | O_sltui
  | O_seqi
  | O_snei
  (* memory *)
  | O_load_s
  | O_load_u
  | O_load8
  | O_store
  | O_store8
  | O_cload_s
  | O_cload_u
  | O_cload8
  | O_cstore
  | O_cstore8
  | O_clc
  | O_csc
  (* capability queries *)
  | O_cgetbase
  | O_cgetlen
  | O_cgetoffset
  | O_cgettag
  | O_cgetperm
  (* capability modifies *)
  | O_cincoffset
  | O_cincoffsetimm
  | O_csetoffset
  | O_cincbase
  | O_csetlen
  | O_candperm
  | O_ccleartag
  | O_cmove
  | O_cseal
  | O_cunseal
  | O_cfromptr
  (* capability compares / conversions *)
  | O_cptrcmp_eq
  | O_cptrcmp_ne
  | O_cptrcmp_lt
  | O_cptrcmp_le
  | O_ctoptr
  (* control flow *)
  | O_beq
  | O_bne
  | O_bltz
  | O_blez
  | O_bgtz
  | O_bgez
  | O_beqz
  | O_bnez
  | O_j
  | O_jal
  | O_jr
  | O_jalr
  | O_cjalr
  | O_cjr
  (* system *)
  | O_syscall
  | O_halt
  (* sentinel occupying slot [length], so an index equal to the code
     length dispatches to a defined entry instead of reading past the
     table *)
  | O_oor

type program = {
  src : Insn.t array;  (* the original resolved instructions *)
  ops : op array;  (* length n+1: one sentinel O_oor entry at index n *)
  xs : int array;
  ys : int array;
  zs : int array;
  imms : Bytes.t;  (* 8 bytes per slot, LE: immediates / offsets / links *)
  classes : Telemetry.opcode_class array;  (* per-pc telemetry class *)
}

let length p = Array.length p.src
let source p = p.src
let telemetry_class p pc = p.classes.(pc)

(* Register-file byte offsets, pre-shifted once here instead of per
   retire. Destination writes to r0 are redirected to the machine's
   sink slot (index 32) so the hot path writes unconditionally and the
   architectural r0 bytes stay zero; reads use the true offset (offset
   0 reads the never-written zeros). *)
let gpr_sink_slot = 32
let[@inline] src_off r = r lsl 3
let[@inline] dst_off r = (if r = 0 then gpr_sink_slot else r) lsl 3

let unresolved i insn =
  invalid_arg
    (Format.asprintf "Decoded.compile: unresolved instruction %d: %a" i Insn.pp insn)

let bad_reg i insn =
  invalid_arg
    (Format.asprintf "Decoded.compile: register out of range in instruction %d: %a" i Insn.pp
       insn)

let compile (code : Insn.t array) : program =
  let n = Array.length code in
  let ops = Array.make (n + 1) O_oor in
  let xs = Array.make (n + 1) 0 in
  let ys = Array.make (n + 1) 0 in
  let zs = Array.make (n + 1) 0 in
  let imms = Bytes.make ((n + 1) * 8) '\000' in
  let classes = Array.make n Telemetry.Op_nop in
  let set_imm i v = Bytes.set_int64_le imms (i lsl 3) v in
  let alu_r : Insn.alu_op -> op = function
    | ADD -> O_add
    | ADDT -> O_addt
    | SUB -> O_sub
    | MUL -> O_mul
    | DIV -> O_div
    | DIVU -> O_divu
    | REM -> O_rem
    | REMU -> O_remu
    | AND -> O_and
    | OR -> O_or
    | XOR -> O_xor
    | NOR -> O_nor
    | SLL -> O_sll
    | SRL -> O_srl
    | SRA -> O_sra
    | SLT -> O_slt
    | SLTU -> O_sltu
    | SEQ -> O_seq
    | SNE -> O_sne
  in
  let alu_i : Insn.alu_op -> op = function
    | ADD -> O_addi
    | ADDT -> O_addti
    | SUB -> O_subi
    | MUL -> O_muli
    | DIV -> O_divi
    | DIVU -> O_divui
    | REM -> O_remi
    | REMU -> O_remui
    | AND -> O_andi
    | OR -> O_ori
    | XOR -> O_xori
    | NOR -> O_nori
    | SLL -> O_slli
    | SRL -> O_srli
    | SRA -> O_srai
    | SLT -> O_slti
    | SLTU -> O_sltui
    | SEQ -> O_seqi
    | SNE -> O_snei
  in
  for i = 0 to n - 1 do
    let insn = code.(i) in
    classes.(i) <- Insn.telemetry_class insn;
    let imm_value = function
      | Insn.Imm v -> v
      | Insn.Sym_addr _ -> unresolved i insn
    in
    let target_value = function Insn.Abs d -> d | Insn.Sym _ -> unresolved i insn in
    (* Every register operand — GPR or capability — is validated to
       0..31 here, once. The execute stage indexes its register files
       with unchecked accesses on the strength of this check (the old
       interpreter deferred the same malformed programs to a runtime
       [Invalid_argument] at first execution). *)
    let reg r = if r land -32 <> 0 then bad_reg i insn else r in
    let src_off r = src_off (reg r) in
    let dst_off r = dst_off (reg r) in
    let cidx c = reg c in
    (match insn with
    | Insn.Nop -> ops.(i) <- O_nop
    | Li (rd, v) ->
        ops.(i) <- O_li;
        xs.(i) <- dst_off rd;
        set_imm i (imm_value v)
    | Alu (aop, rd, rs, rt) ->
        ops.(i) <- alu_r aop;
        xs.(i) <- dst_off rd;
        ys.(i) <- src_off rs;
        zs.(i) <- src_off rt
    | Alui (aop, rd, rs, v) ->
        ops.(i) <- alu_i aop;
        xs.(i) <- dst_off rd;
        ys.(i) <- src_off rs;
        set_imm i (imm_value v)
    | Load { w; signed; rd; rs; off } ->
        (* at 8 bytes sign- and zero-extension coincide, so both map to
           the width-specialized op *)
        let size = Insn.bytes_of_width w in
        ops.(i) <- (if size = 8 then O_load8 else if signed then O_load_s else O_load_u);
        xs.(i) <- dst_off rd;
        ys.(i) <- src_off rs;
        zs.(i) <- size;
        set_imm i (Int64.of_int off)
    | Store { w; rv; rs; off } ->
        let size = Insn.bytes_of_width w in
        ops.(i) <- (if size = 8 then O_store8 else O_store);
        xs.(i) <- src_off rv;
        ys.(i) <- src_off rs;
        zs.(i) <- size;
        set_imm i (Int64.of_int off)
    | Cload { w; signed; rd; cb; roff; off } ->
        let size = Insn.bytes_of_width w in
        ops.(i) <- (if size = 8 then O_cload8 else if signed then O_cload_s else O_cload_u);
        xs.(i) <- dst_off rd;
        ys.(i) <- src_off roff;
        zs.(i) <- cidx cb lor (size lsl 8);
        set_imm i (Int64.of_int off)
    | Cstore { w; rv; cb; roff; off } ->
        let size = Insn.bytes_of_width w in
        ops.(i) <- (if size = 8 then O_cstore8 else O_cstore);
        xs.(i) <- src_off rv;
        ys.(i) <- src_off roff;
        zs.(i) <- cidx cb lor (size lsl 8);
        set_imm i (Int64.of_int off)
    | Clc { cd; cb; roff; off } ->
        ops.(i) <- O_clc;
        xs.(i) <- cidx cd;
        ys.(i) <- src_off roff;
        zs.(i) <- cidx cb;
        set_imm i (Int64.of_int off)
    | Csc { cs; cb; roff; off } ->
        ops.(i) <- O_csc;
        xs.(i) <- cidx cs;
        ys.(i) <- src_off roff;
        zs.(i) <- cidx cb;
        set_imm i (Int64.of_int off)
    | Cgetbase (rd, cb) ->
        ops.(i) <- O_cgetbase;
        xs.(i) <- dst_off rd;
        ys.(i) <- cidx cb
    | Cgetlen (rd, cb) ->
        ops.(i) <- O_cgetlen;
        xs.(i) <- dst_off rd;
        ys.(i) <- cidx cb
    | Cgetoffset (rd, cb) ->
        ops.(i) <- O_cgetoffset;
        xs.(i) <- dst_off rd;
        ys.(i) <- cidx cb
    | Cgettag (rd, cb) ->
        ops.(i) <- O_cgettag;
        xs.(i) <- dst_off rd;
        ys.(i) <- cidx cb
    | Cgetperm (rd, cb) ->
        ops.(i) <- O_cgetperm;
        xs.(i) <- dst_off rd;
        ys.(i) <- cidx cb
    | Cincoffset (cd, cb, rt) ->
        ops.(i) <- O_cincoffset;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb;
        zs.(i) <- src_off rt
    | Cincoffsetimm (cd, cb, delta) ->
        ops.(i) <- O_cincoffsetimm;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb;
        set_imm i delta
    | Csetoffset (cd, cb, rt) ->
        ops.(i) <- O_csetoffset;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb;
        zs.(i) <- src_off rt
    | Cincbase (cd, cb, rt) ->
        ops.(i) <- O_cincbase;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb;
        zs.(i) <- src_off rt
    | Csetlen (cd, cb, rt) ->
        ops.(i) <- O_csetlen;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb;
        zs.(i) <- src_off rt
    | Candperm (cd, cb, mask) ->
        ops.(i) <- O_candperm;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb;
        (* Perms.of_bits keeps only the low byte; pre-mask it here *)
        zs.(i) <- Int64.to_int mask land 0xff
    | Ccleartag (cd, cb) ->
        ops.(i) <- O_ccleartag;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb
    | Cmove (cd, cb) ->
        ops.(i) <- O_cmove;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb
    | Cseal (cd, cs, ct) ->
        ops.(i) <- O_cseal;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cs;
        zs.(i) <- cidx ct
    | Cunseal (cd, cs, ct) ->
        ops.(i) <- O_cunseal;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cs;
        zs.(i) <- cidx ct
    | Cptrcmp (k, rd, ca, cb) ->
        ops.(i) <-
          (match k with
          | CEQ -> O_cptrcmp_eq
          | CNE -> O_cptrcmp_ne
          | CLT | CLTU -> O_cptrcmp_lt
          | CLE | CLEU -> O_cptrcmp_le);
        xs.(i) <- dst_off rd;
        ys.(i) <- cidx ca;
        zs.(i) <- cidx cb
    | Cfromptr (cd, cb, rs) ->
        ops.(i) <- O_cfromptr;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb;
        zs.(i) <- src_off rs
    | Ctoptr (rd, cs, cb) ->
        ops.(i) <- O_ctoptr;
        xs.(i) <- dst_off rd;
        ys.(i) <- cidx cs;
        zs.(i) <- cidx cb
    | Branch (c, rs, rt, tg) ->
        ops.(i) <- (match c with EQ -> O_beq | NE -> O_bne);
        xs.(i) <- src_off rs;
        ys.(i) <- src_off rt;
        zs.(i) <- target_value tg
    | Branchz (k, rs, tg) ->
        ops.(i) <-
          (match k with
          | LTZ -> O_bltz
          | LEZ -> O_blez
          | GTZ -> O_bgtz
          | GEZ -> O_bgez
          | EQZ -> O_beqz
          | NEZ -> O_bnez);
        xs.(i) <- src_off rs;
        zs.(i) <- target_value tg
    | J tg ->
        ops.(i) <- O_j;
        zs.(i) <- target_value tg
    | Jal tg ->
        ops.(i) <- O_jal;
        zs.(i) <- target_value tg;
        set_imm i (Int64.of_int (i + 1))  (* pre-staged link value *)
    | Jr rs ->
        ops.(i) <- O_jr;
        xs.(i) <- src_off rs
    | Jalr rs ->
        ops.(i) <- O_jalr;
        xs.(i) <- src_off rs;
        set_imm i (Int64.of_int (i + 1))
    | Cjalr (cd, cb) ->
        ops.(i) <- O_cjalr;
        xs.(i) <- cidx cd;
        ys.(i) <- cidx cb;
        set_imm i (Int64.of_int (i + 1))
    | Cjr cb ->
        ops.(i) <- O_cjr;
        xs.(i) <- cidx cb
    | Syscall -> ops.(i) <- O_syscall
    | Halt -> ops.(i) <- O_halt)
  done;
  { src = code; ops; xs; ys; zs; imms; classes }

(* The digest is computed over the *source* instruction stream, printed
   with Insn.pp — byte-identical to what the snapshot subsystem hashed
   before the decode stage existed, so on-disk snapshot images stay
   compatible. *)
let source_digest ~abi code =
  let b = Buffer.create (Array.length code * 24) in
  Buffer.add_string b abi;
  Buffer.add_char b '\n';
  let ppf = Format.formatter_of_buffer b in
  Array.iter (fun insn -> Format.fprintf ppf "%a@\n" Insn.pp insn) code;
  Format.pp_print_flush ppf ();
  Digest.to_hex (Digest.string (Buffer.contents b))

let digest ~abi p = source_digest ~abi p.src
