(** Pre-decoded programs: the softcore's compile stage.

    {!compile} turns a resolved [Insn.t array] into a flat PC-indexed
    table of unboxed execution records, doing once — at load time —
    everything the interpreter used to redo on every retire:

    - operand register numbers become register-file {e byte offsets},
      pre-shifted ([r lsl 3]) for the machine's [Bytes]-backed GPR file,
      with destination [r0] redirected to the write sink slot;
    - immediates, memory offsets and link values are pre-staged as
      little-endian [int64] slots in one [Bytes.t];
    - branch/jump targets are pre-resolved to absolute PCs;
    - each instruction's specialized opcode implies its static cycle
      cost, so the execute stage carries costs as literals instead of
      consulting a cost function.

    The table has one extra sentinel row past the end of the program so
    that the fall-off-the-end PC dispatches to a defined out-of-range
    entry rather than needing a separate bounds compare on the in-range
    hot path. *)

type op =
  | O_nop
  | O_li
  | O_add
  | O_addt
  | O_sub
  | O_mul
  | O_div
  | O_divu
  | O_rem
  | O_remu
  | O_and
  | O_or
  | O_xor
  | O_nor
  | O_sll
  | O_srl
  | O_sra
  | O_slt
  | O_sltu
  | O_seq
  | O_sne
  | O_addi
  | O_addti
  | O_subi
  | O_muli
  | O_divi
  | O_divui
  | O_remi
  | O_remui
  | O_andi
  | O_ori
  | O_xori
  | O_nori
  | O_slli
  | O_srli
  | O_srai
  | O_slti
  | O_sltui
  | O_seqi
  | O_snei
  | O_load_s
  | O_load_u
  | O_load8
  | O_store
  | O_store8
  | O_cload_s
  | O_cload_u
  | O_cload8
  | O_cstore
  | O_cstore8
  | O_clc
  | O_csc
  | O_cgetbase
  | O_cgetlen
  | O_cgetoffset
  | O_cgettag
  | O_cgetperm
  | O_cincoffset
  | O_cincoffsetimm
  | O_csetoffset
  | O_cincbase
  | O_csetlen
  | O_candperm
  | O_ccleartag
  | O_cmove
  | O_cseal
  | O_cunseal
  | O_cfromptr
  | O_cptrcmp_eq
  | O_cptrcmp_ne
  | O_cptrcmp_lt
  | O_cptrcmp_le
  | O_ctoptr
  | O_beq
  | O_bne
  | O_bltz
  | O_blez
  | O_bgtz
  | O_bgez
  | O_beqz
  | O_bnez
  | O_j
  | O_jal
  | O_jr
  | O_jalr
  | O_cjalr
  | O_cjr
  | O_syscall
  | O_halt
  | O_oor  (** sentinel: PC one past the last instruction *)

type program = private {
  src : Insn.t array;
  ops : op array;  (** length [n+1]; [ops.(n)] is {!O_oor} *)
  xs : int array;
  ys : int array;
  zs : int array;
  imms : Bytes.t;  (** 8 LE bytes per slot: immediates, offsets, links *)
  classes : Cheri_telemetry.Telemetry.opcode_class array;
}
(** The fields are exposed (read-only) so the machine's execute loop can
    index them directly without accessor-call overhead; construct only
    via {!compile}. *)

val compile : Insn.t array -> program
(** Pre-decode a resolved program.

    @raise Invalid_argument if any instruction still carries an
    unresolved symbolic operand ([Insn.Sym]/[Insn.Sym_addr]) — linking
    must finish before decode, exactly as the machine previously
    required at construction. *)

val length : program -> int
(** Number of {e source} instructions (the sentinel row is not
    counted). *)

val source : program -> Insn.t array
(** The original instruction stream the program was compiled from. *)

val telemetry_class : program -> int -> Cheri_telemetry.Telemetry.opcode_class
(** [telemetry_class p pc] is the pre-computed telemetry class of the
    instruction at [pc]. *)

val gpr_sink_slot : int
(** Index of the extra register-file slot that absorbs writes to [r0]
    (the decoded table redirects [rd = 0] destinations here so the hot
    path stores unconditionally). *)

val source_digest : abi:string -> Insn.t array -> string
(** MD5 hex digest of [abi] plus the pretty-printed instruction stream
    — byte-identical to the digest the snapshot subsystem computed
    before the decode stage existed, so snapshot images remain
    compatible. *)

val digest : abi:string -> program -> string
(** {!source_digest} of {!source}. *)
