(** The simulated CHERI softcore: architectural state, execution loop,
    allocator syscalls and the cycle-approximate timing model.

    One machine instance holds a code array (Harvard-style: instructions
    are not in the tagged data memory; the paper's results never depend
    on self-modifying code), a {!Cheri_tagmem} data memory, 32 general
    purpose registers, 32 capability registers, the program counter
    capability (PCC) and the cycle/instruction counters.

    The ISA revision ({!Cheri_core.Cap_ops.V2} or [V3]) selects the
    capability semantics; plain MIPS programs simply never touch the
    capability registers, so the same machine serves as the MIPS
    baseline. *)

type t

type config = {
  revision : Cheri_core.Cap_ops.revision;
  mem_size : int;  (** bytes of data memory *)
  data_base : int64;  (** where the assembler's data segment is loaded *)
  stack_bytes : int;  (** stack region at the top of memory *)
  timing : Cache.Timing.config;
  trap_on_signed_overflow : bool;
      (** enables the §3.1.1-style trap semantics of the ADDT opcode;
          plain ADD always wraps *)
}

val default_config : Cheri_core.Cap_ops.revision -> config

(** {1 Traps and outcomes} *)

type trap =
  | Cap_trap of Cheri_core.Cap_fault.t
  | Overflow_trap
  | Div_by_zero
  | Bus_trap of int64
  | Unresolved_operand
  | Invalid_syscall of int64
  | Out_of_memory
  | Invalid_free of int64
  | Pc_out_of_range of int

type outcome =
  | Exit of int64  (** the program called the exit syscall *)
  | Trap of { trap : trap; pc : int }
  | Fuel_exhausted  (** the per-run instruction budget ran out *)
  | Deadline_exceeded
      (** the wall-clock watchdog of {!run}'s [deadline_s] fired; like
          [Fuel_exhausted] this is a harness outcome (classified as a
          hang by the campaigns), not a modelled trap *)
  | Yielded
      (** only with {!run}'s [~yield:true]: the fuel slice was spent or
          the deadline fired, and the machine is still valid — call
          {!run} again (or {!snapshot} it) to continue exactly where it
          stopped *)

val pp_trap : Format.formatter -> trap -> unit
val pp_outcome : Format.formatter -> outcome -> unit

(** {1 Construction and state access} *)

val create : config -> program:Decoded.program -> t
(** A machine at reset: PC 0, PCC spanning the code, DDC (capability
    register 0) spanning all of data memory with every permission,
    stack capability (register 11) over the stack region, stack
    pointer (GPR 29) at the top of memory.

    The machine executes a {e pre-decoded} program ({!Decoded.compile});
    callers that load the same program into several machines (the fuzz
    campaigns, the injection engine's thousands-of-runs sweeps) compile
    once and share the table. *)

val create_code : config -> code:Insn.t array -> t
(** [create cfg ~program:(Decoded.compile code)] — the pre-decode-stage
    construction API. Raises [Invalid_argument] if any instruction is
    unresolved — link with {!Cheri_asm} first. *)

val config : t -> config
val mem : t -> Cheri_tagmem.Tagmem.t
val gpr : t -> int -> int64
val set_gpr : t -> int -> int64 -> unit
val cap : t -> int -> Cheri_core.Capability.t
val set_cap : t -> int -> Cheri_core.Capability.t -> unit
val pc : t -> int
val cycles : t -> int
val instret : t -> int
val output : t -> string
(** Everything the program printed via syscalls. *)

val heap_base : t -> int64
val stack_top : t -> int64

(** {1 Telemetry} *)

val set_sink : t -> Cheri_telemetry.Telemetry.Sink.t -> unit
(** Attach a telemetry sink to the machine (and to its tagged memory).
    A live sink receives one [Instret] event per retired instruction
    (pc and opcode class, timestamped with the cycle counter), [Fault]
    events on every trap, [Syscall]/[Alloc]/[Free] events from the
    syscall layer, [Cache_miss] events from the data-cache hierarchy,
    and the tag events of {!Cheri_tagmem.Tagmem.set_sink}. With the
    default {!Cheri_telemetry.Telemetry.Sink.null} the step loop pays
    a single predictable branch per instruction and records nothing;
    telemetry never changes the simulated cycle counts either way. *)

val sink : t -> Cheri_telemetry.Telemetry.Sink.t

val reserve_data : t -> int64 -> int64 -> unit
(** [reserve_data t base size] removes the loaded data segment from the
    allocator's free list. Called by the {!Cheri_asm} loader. *)

(** {1 Execution} *)

val step : t -> outcome option
(** Execute one instruction; [None] while the program keeps running. *)

val run : ?fuel:int -> ?deadline_s:float -> ?yield:bool -> t -> outcome
(** Run until exit, trap, or [fuel] instructions (default 200 million).
    [deadline_s] arms a wall-clock watchdog: the loop samples the clock
    every 32k retired instructions {e and on every syscall boundary}
    (syscall paths are far slower per retired instruction, so a
    syscall-looping workload would otherwise overshoot the budget by a
    large factor) and stops with {!Deadline_exceeded} once the budget
    is spent, so one runaway task can be reaped without killing its
    worker domain. Fuel is the deterministic watchdog; the deadline is
    the defence against host-level pathology (a stuck syscall path,
    severe oversubscription).

    [~yield:true] turns both exhaustions into {!Yielded} and makes the
    interruption recoverable: the loop only ever stops {e between}
    instructions, so the machine remains architecturally valid and a
    subsequent [run] — in this process, or after {!restore} of a
    {!snapshot} in another — continues the execution byte-identically
    (same output, same cycles/instret) to a run that never stopped. *)

(** {1 Snapshot / restore}

    Complete, deterministic capture of the mutable machine state.
    Guarantee: for any machine [m] and fuel split [f = f1 + f2],
    running [m] for [f1] instructions with [~yield:true], taking
    [snapshot m], restoring it into a fresh machine [m'] built from the
    same config and code, and running [m'] for [f2] yields the same
    outcome, output, cycles, instret — and every other observable — as
    running [m] for [f] uninterrupted. The telemetry sink is host-side
    instrumentation, not machine state, and does not travel. *)

module Snap : sig
  type t = {
    s_gprs : string;  (** the full register file, 33 x 8 bytes LE *)
    s_caps : Cheri_core.Capability.t array;  (** the 32 capability registers *)
    s_pcc : Cheri_core.Capability.t;
    s_pc : int;
    s_cycles : int;
    s_instret : int;
    s_loads : int;
    s_stores : int;
    s_cap_loads : int;
    s_cap_stores : int;
    s_heap_allocated : int64;
    s_allocs : int;
    s_frees : int;
    s_syscalls : int;
    s_alloc_fail_after : int option;
    s_free_fail_after : int option;
    s_output : string;
    s_allocated : (int64 * int64) list;  (** live heap blocks, sorted by base *)
    s_free_list : (int64 * int64) list;
    s_icache : int array;  (** {!Cache.snapshot_state} of the I-cache *)
    s_l1 : int array;
    s_l2 : int array;
    s_data_pages : (int * string) list;  (** nonzero 4 KiB pages of data memory *)
    s_tag_pages : (int * string) list;  (** nonzero 4 KiB pages of the tag store *)
  }
  (** The fields are public so {!Cheri_snapshot} can serialize them;
      nothing else should construct one by hand. *)

  val page_bytes : int
  (** Sparse-encoding page size (4096). *)
end

val snapshot : t -> Snap.t
(** Capture every mutable architectural and model field. Never taken
    mid-instruction, so staged terminal outcomes are always empty. *)

val restore : t -> Snap.t -> unit
(** Overwrite [t]'s state with the snapshot's. [t] must have been
    created from the same config and code as the snapshotted machine
    (the on-disk format of {!Cheri_snapshot} enforces this; this
    in-memory entry only checks register-file shapes, raising
    [Invalid_argument]). The attached telemetry sink is kept. *)

val program : t -> Decoded.program
(** The pre-decoded program this machine executes. *)

val code : t -> Insn.t array
(** [Decoded.source (program t)]: the loaded (resolved) code image —
    used to fingerprint a machine for snapshot compatibility checks.
    Do not mutate. *)

(** {1 Statistics} *)

type stats = {
  st_cycles : int;
  st_instret : int;
  st_loads : int;
  st_stores : int;
  st_cap_loads : int;
  st_cap_stores : int;
  st_l1_hits : int;
  st_l1_misses : int;
  st_l2_hits : int;
  st_l2_misses : int;
  st_heap_allocated : int64;  (** total bytes ever handed out by malloc *)
  st_allocs : int;  (** malloc syscalls (including injected failures) *)
  st_frees : int;  (** free syscalls (including injected failures) *)
}

val stats : t -> stats

(** {1 Fault-injection perturbation points}

    Used by {!Cheri_inject} to perturb a run at a chosen instruction
    index; no instruction-execution path touches these. *)

val allocated_blocks : t -> (int64 * int64) list
(** Live heap blocks as [(base, size)], sorted by base — the
    injection engine's map of where program data actually lives. *)

val inject_alloc_failure : t -> after:int -> unit
(** Arm allocator-failure injection: the [after]-th next malloc (0 =
    the very next one) traps with [Out_of_memory]. *)

val inject_free_failure : t -> after:int -> unit
(** Arm free-failure injection: the [after]-th next free traps with
    [Invalid_free]. *)

(** {1 Syscall ABI}

    Syscall number in GPR 2; arguments in GPRs 4-7; integer results in
    GPR 2; capability results in capability register 1.

    - 1 exit(code=r4)
    - 2 print_int(r4) — decimal, no newline
    - 3 print_char(r4)
    - 4 malloc(size=r4) → address in r2 and a tagged, exactly-bounded
      read/write capability in c1 (the paper's "it is the
      responsibility of the allocator ... to correctly set the length")
    - 5 free(addr=r4)
    - 6 clock → current cycle count in r2
    - 7 print_bytes(addr=r4, len=r5) — legacy addressing via DDC *)

val syscall_exit : int64
val syscall_print_int : int64
val syscall_print_char : int64
val syscall_malloc : int64
val syscall_free : int64
val syscall_clock : int64
val syscall_print_bytes : int64

val syscall_print_cstr : int64
(** syscall 8: print the NUL-terminated string at legacy address r4. *)
