type width = B | H | W | D

let bytes_of_width = function B -> 1 | H -> 2 | W -> 4 | D -> 8

type target = Abs of int | Sym of string
type imm = Imm of int64 | Sym_addr of string * int64

type alu_op =
  | ADD
  | ADDT
  | SUB
  | MUL
  | DIV
  | DIVU
  | REM
  | REMU
  | AND
  | OR
  | XOR
  | NOR
  | SLL
  | SRL
  | SRA
  | SLT
  | SLTU
  | SEQ
  | SNE

type cmp = CEQ | CNE | CLT | CLE | CLTU | CLEU
type cond = EQ | NE
type condz = LTZ | LEZ | GTZ | GEZ | EQZ | NEZ

type t =
  | Nop
  | Li of int * imm
  | Alu of alu_op * int * int * int
  | Alui of alu_op * int * int * imm
  | Load of { w : width; signed : bool; rd : int; rs : int; off : int }
  | Store of { w : width; rv : int; rs : int; off : int }
  | Cload of { w : width; signed : bool; rd : int; cb : int; roff : int; off : int }
  | Cstore of { w : width; rv : int; cb : int; roff : int; off : int }
  | Clc of { cd : int; cb : int; roff : int; off : int }
  | Csc of { cs : int; cb : int; roff : int; off : int }
  | Cgetbase of int * int
  | Cgetlen of int * int
  | Cgetoffset of int * int
  | Cgettag of int * int
  | Cgetperm of int * int
  | Cincoffset of int * int * int
  | Cincoffsetimm of int * int * int64
  | Csetoffset of int * int * int
  | Cincbase of int * int * int
  | Csetlen of int * int * int
  | Candperm of int * int * int64
  | Ccleartag of int * int
  | Cmove of int * int
  | Cseal of int * int * int  
  | Cunseal of int * int * int
  | Cptrcmp of cmp * int * int * int
  | Cfromptr of int * int * int
  | Ctoptr of int * int * int
  | Branch of cond * int * int * target
  | Branchz of condz * int * target
  | J of target
  | Jal of target
  | Jr of int
  | Jalr of int
  | Cjalr of int * int
  | Cjr of int
  | Syscall
  | Halt

let alu_name = function
  | ADD -> "add"
  | ADDT -> "addt"
  | SUB -> "sub"
  | MUL -> "mul"
  | DIV -> "div"
  | DIVU -> "divu"
  | REM -> "rem"
  | REMU -> "remu"
  | AND -> "and"
  | OR -> "or"
  | XOR -> "xor"
  | NOR -> "nor"
  | SLL -> "sll"
  | SRL -> "srl"
  | SRA -> "sra"
  | SLT -> "slt"
  | SLTU -> "sltu"
  | SEQ -> "seq"
  | SNE -> "sne"

let cmp_name = function
  | CEQ -> "eq"
  | CNE -> "ne"
  | CLT -> "lt"
  | CLE -> "le"
  | CLTU -> "ltu"
  | CLEU -> "leu"

let width_name = function B -> "b" | H -> "h" | W -> "w" | D -> "d"

let pp_target ppf = function
  | Abs i -> Format.fprintf ppf "%d" i
  | Sym s -> Format.fprintf ppf "<%s>" s

let pp_imm ppf = function
  | Imm v -> Format.fprintf ppf "%Ld" v
  | Sym_addr (s, 0L) -> Format.fprintf ppf "&%s" s
  | Sym_addr (s, a) -> Format.fprintf ppf "&%s+%Ld" s a

let condz_name = function
  | LTZ -> "ltz"
  | LEZ -> "lez"
  | GTZ -> "gtz"
  | GEZ -> "gez"
  | EQZ -> "eqz"
  | NEZ -> "nez"

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Li (rd, i) -> Format.fprintf ppf "li r%d, %a" rd pp_imm i
  | Alu (op, rd, rs, rt) -> Format.fprintf ppf "%s r%d, r%d, r%d" (alu_name op) rd rs rt
  | Alui (op, rd, rs, i) -> Format.fprintf ppf "%si r%d, r%d, %a" (alu_name op) rd rs pp_imm i
  | Load { w; signed; rd; rs; off } ->
      Format.fprintf ppf "l%s%s r%d, %d(r%d)" (width_name w) (if signed then "" else "u") rd off rs
  | Store { w; rv; rs; off } -> Format.fprintf ppf "s%s r%d, %d(r%d)" (width_name w) rv off rs
  | Cload { w; signed; rd; cb; roff; off } ->
      Format.fprintf ppf "cl%s%s r%d, r%d, %d(c%d)" (width_name w)
        (if signed then "" else "u")
        rd roff off cb
  | Cstore { w; rv; cb; roff; off } ->
      Format.fprintf ppf "cs%s r%d, r%d, %d(c%d)" (width_name w) rv roff off cb
  | Clc { cd; cb; roff; off } -> Format.fprintf ppf "clc c%d, r%d, %d(c%d)" cd roff off cb
  | Csc { cs; cb; roff; off } -> Format.fprintf ppf "csc c%d, r%d, %d(c%d)" cs roff off cb
  | Cgetbase (rd, cb) -> Format.fprintf ppf "cgetbase r%d, c%d" rd cb
  | Cgetlen (rd, cb) -> Format.fprintf ppf "cgetlen r%d, c%d" rd cb
  | Cgetoffset (rd, cb) -> Format.fprintf ppf "cgetoffset r%d, c%d" rd cb
  | Cgettag (rd, cb) -> Format.fprintf ppf "cgettag r%d, c%d" rd cb
  | Cgetperm (rd, cb) -> Format.fprintf ppf "cgetperm r%d, c%d" rd cb
  | Cincoffset (cd, cb, rt) -> Format.fprintf ppf "cincoffset c%d, c%d, r%d" cd cb rt
  | Cincoffsetimm (cd, cb, i) -> Format.fprintf ppf "cincoffset c%d, c%d, %Ld" cd cb i
  | Csetoffset (cd, cb, rt) -> Format.fprintf ppf "csetoffset c%d, c%d, r%d" cd cb rt
  | Cincbase (cd, cb, rt) -> Format.fprintf ppf "cincbase c%d, c%d, r%d" cd cb rt
  | Csetlen (cd, cb, rt) -> Format.fprintf ppf "csetlen c%d, c%d, r%d" cd cb rt
  | Candperm (cd, cb, m) -> Format.fprintf ppf "candperm c%d, c%d, 0x%Lx" cd cb m
  | Ccleartag (cd, cb) -> Format.fprintf ppf "ccleartag c%d, c%d" cd cb
  | Cmove (cd, cb) -> Format.fprintf ppf "cmove c%d, c%d" cd cb
  | Cseal (cd, cs, ct) -> Format.fprintf ppf "cseal c%d, c%d, c%d" cd cs ct
  | Cunseal (cd, cs, ct) -> Format.fprintf ppf "cunseal c%d, c%d, c%d" cd cs ct
  | Cptrcmp (k, rd, ca, cb) ->
      Format.fprintf ppf "cptrcmp.%s r%d, c%d, c%d" (cmp_name k) rd ca cb
  | Cfromptr (cd, cb, rs) -> Format.fprintf ppf "cfromptr c%d, c%d, r%d" cd cb rs
  | Ctoptr (rd, cs, cb) -> Format.fprintf ppf "ctoptr r%d, c%d, c%d" rd cs cb
  | Branch (EQ, rs, rt, t) -> Format.fprintf ppf "beq r%d, r%d, %a" rs rt pp_target t
  | Branch (NE, rs, rt, t) -> Format.fprintf ppf "bne r%d, r%d, %a" rs rt pp_target t
  | Branchz (k, rs, t) -> Format.fprintf ppf "b%s r%d, %a" (condz_name k) rs pp_target t
  | J t -> Format.fprintf ppf "j %a" pp_target t
  | Jal t -> Format.fprintf ppf "jal %a" pp_target t
  | Jr rs -> Format.fprintf ppf "jr r%d" rs
  | Jalr rs -> Format.fprintf ppf "jalr r%d" rs
  | Cjalr (cd, cb) -> Format.fprintf ppf "cjalr c%d, c%d" cd cb
  | Cjr cb -> Format.fprintf ppf "cjr c%d" cb
  | Syscall -> Format.pp_print_string ppf "syscall"
  | Halt -> Format.pp_print_string ppf "halt"

let target_resolved = function Abs _ -> true | Sym _ -> false
let imm_resolved = function Imm _ -> true | Sym_addr _ -> false

let is_resolved = function
  | Li (_, i) | Alui (_, _, _, i) -> imm_resolved i
  | Branch (_, _, _, t) | Branchz (_, _, t) | J t | Jal t -> target_resolved t
  | Nop | Alu _ | Load _ | Store _ | Cload _ | Cstore _ | Clc _ | Csc _ | Cgetbase _
  | Cgetlen _ | Cgetoffset _ | Cgettag _ | Cgetperm _ | Cincoffset _ | Cincoffsetimm _
  | Csetoffset _ | Cincbase _ | Csetlen _ | Candperm _ | Ccleartag _ | Cmove _ | Cseal _
  | Cunseal _ | Cptrcmp _
  | Cfromptr _ | Ctoptr _ | Jr _ | Jalr _ | Cjalr _ | Cjr _ | Syscall | Halt ->
      true

let map_target f = function
  | Branch (c, rs, rt, t) -> Branch (c, rs, rt, f t)
  | Branchz (c, rs, t) -> Branchz (c, rs, f t)
  | J t -> J (f t)
  | Jal t -> Jal (f t)
  | i -> i

let map_imm f = function
  | Li (rd, i) -> Li (rd, f i)
  | Alui (op, rd, rs, i) -> Alui (op, rd, rs, f i)
  | i -> i

let telemetry_class : t -> Cheri_telemetry.Telemetry.opcode_class =
  let open Cheri_telemetry.Telemetry in
  function
  | Nop -> Op_nop
  | Li _ | Alu _ | Alui _ -> Op_alu
  | Load _ -> Op_load
  | Store _ -> Op_store
  | Cload _ -> Op_cap_load
  | Cstore _ -> Op_cap_store
  | Clc _ -> Op_clc
  | Csc _ -> Op_csc
  | Cgetbase _ | Cgetlen _ | Cgetoffset _ | Cgettag _ | Cgetperm _ | Cptrcmp _ | Ctoptr _ ->
      Op_cap_query
  | Cincoffset _ | Cincoffsetimm _ | Csetoffset _ | Cincbase _ | Csetlen _ | Candperm _
  | Ccleartag _ | Cmove _ | Cseal _ | Cunseal _ | Cfromptr _ ->
      Op_cap_modify
  | Cjalr _ | Cjr _ -> Op_cap_jump
  | Branch _ | Branchz _ -> Op_branch
  | J _ | Jal _ | Jr _ | Jalr _ -> Op_jump
  | Syscall -> Op_syscall
  | Halt -> Op_halt
