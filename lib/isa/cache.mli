(** Set-associative write-back cache model with LRU replacement.

    Used purely for timing: the data itself lives in {!Cheri_tagmem};
    the cache records which lines would be resident. The paper's FPGA
    system has a 16 KB L1 and a 64 KB L2 with DRAM that is fast
    relative to the 100 MHz core — "cache misses are more common but
    less costly than on most modern processors" (§5.2) — so the
    default latencies in {!Timing} are correspondingly mild. *)

type t

val create : name:string -> size_bytes:int -> ways:int -> line_bytes:int -> t
val name : t -> string

val access : t -> int64 -> bool
(** [access t addr] touches the line containing [addr]; returns [true]
    on hit and inserts the line on miss. *)

val access_int : t -> int -> bool
(** [access] with a native-int address — the allocation-free entry the
    softcore uses (addresses are bounds-checked below 2^62 before they
    reach the cache). *)

val access_fetch : t -> int -> bool
(** Sequential-fetch fast path: like {!access_int}, but memoizes the
    line of the previous fetch so straight-line code skips the probe
    and LRU update entirely. Timing-equivalent to {!access_int} for a
    fetch stream (a memo hit is always a real hit, and eviction order
    is unchanged); repeat touches within a line are not re-counted in
    {!hits}. Use only for an instruction stream — interleaving it with
    {!access} calls on the same cache is safe but forfeits the memo. *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
val flush : t -> unit

val snapshot_state : t -> int array
(** The complete mutable model state — clock, hit/miss counters, the
    sequential-fetch memo, and every set's resident lines and LRU
    stamps — as one flat array for the snapshot subsystem. Geometry is
    configuration and does not travel. *)

val restore_state : t -> int array -> unit
(** Inverse of {!snapshot_state} into a cache of the same geometry;
    raises [Invalid_argument] on a length mismatch. After restore the
    cache replays accesses exactly as the snapshotted one would —
    identical hits, misses, and evictions. *)

(** Two-level hierarchy translating accesses into cycle counts. *)
module Timing : sig
  type hierarchy

  type config = {
    l1_size : int;
    l1_ways : int;
    l2_size : int;
    l2_ways : int;
    line_bytes : int;
    l1_hit_cycles : int;  (** total cost of an L1 hit *)
    l2_hit_cycles : int;  (** additional cost when L1 misses but L2 hits *)
    memory_cycles : int;  (** additional cost when both miss *)
  }

  val paper_config : config
  (** 16 KB 2-way L1, 64 KB 4-way L2, 32-byte lines, latencies tuned to
      the paper's FPGA platform (fast DRAM relative to core clock). *)

  val create : config -> hierarchy
  val config : hierarchy -> config

  val access_cycles : hierarchy -> int64 -> size:int -> int
  (** Cost in cycles of an access of [size] bytes at [addr]; accesses
      that straddle a line boundary touch both lines. *)

  val access_cycles_int : hierarchy -> int -> size:int -> int
  (** {!access_cycles} with a native-int address — the allocation-free
      entry used by the softcore's data path. *)

  val l1 : hierarchy -> t
  val l2 : hierarchy -> t
  val reset_stats : hierarchy -> unit
end
