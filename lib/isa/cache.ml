(* Lines are keyed by their integer line number (addr lsr line_shift).
   Addresses up to 2^62 are representable this way in a native int; the
   int64 entry points mask the sign bit first, which matches the old
   behaviour of folding the address into a non-negative line number
   before set selection. Keeping the keys unboxed matters: the softcore
   probes the I-cache once per retired instruction and the D-hierarchy
   on every memory operation, so a boxed key or a closure-allocating
   probe loop shows up directly in minor-heap churn. *)

type t = {
  cname : string;
  sets : int array array;  (* sets.(set).(way) = line number, -1 = invalid *)
  lru : int array array;  (* higher = more recently used *)
  line_bytes : int;
  line_shift : int;
  set_mask : int;  (* set_count - 1; set count is a power of two *)
  set_count : int;
  ways : int;
  mutable hits : int;
  mutable misses : int;
  mutable clock : int;
  (* Sequential-fetch memo: the line returned by the last {!access_fetch}.
     Fetch streams run straight-line within a 32-byte line most of the
     time; while the fetch stays in this line the LRU machinery is
     skipped entirely. Only {!access_fetch} reads or writes it. *)
  mutable fetch_line : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~size_bytes ~ways ~line_bytes =
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Cache.create: size must be a multiple of ways * line size";
  let set_count = size_bytes / (ways * line_bytes) in
  if set_count land (set_count - 1) <> 0 then invalid_arg "Cache.create: set count must be a power of two";
  {
    cname = name;
    sets = Array.make_matrix set_count ways (-1);
    lru = Array.make_matrix set_count ways 0;
    line_bytes;
    line_shift = log2 line_bytes;
    set_mask = set_count - 1;
    set_count;
    ways;
    hits = 0;
    misses = 0;
    clock = 0;
    fetch_line = -1;
  }

let name t = t.cname

(* Closure-free probe: the way holding [line], or -1. *)
let rec probe (ways_row : int array) line nways i =
  if i >= nways then -1 else if Array.unsafe_get ways_row i = line then i else probe ways_row line nways (i + 1)

let access_line t line =
  t.clock <- t.clock + 1;
  let set = line land t.set_mask in
  let ways_row = t.sets.(set) in
  let way = probe ways_row line t.ways 0 in
  if way >= 0 then begin
    t.hits <- t.hits + 1;
    t.lru.(set).(way) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict the least recently used way *)
    let lru_row = t.lru.(set) in
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if lru_row.(w) < lru_row.(!victim) then victim := w
    done;
    ways_row.(!victim) <- line;
    lru_row.(!victim) <- t.clock;
    false
  end

let[@inline] access_int t addr = access_line t (addr lsr t.line_shift)

let access t addr =
  (* mask the sign bit so the int64->int truncation keeps the old
     non-negative line numbering *)
  access_int t (Int64.to_int (Int64.logand addr Int64.max_int))

(* The I-stream fast path. Timing-equivalent to {!access_int}: a memo
   hit means the line was the immediately preceding fetch, hence
   resident and most-recently-used in its set, so a full probe would
   also hit. Skipping the redundant LRU bump preserves every eviction
   decision — lines in a set stay ordered by the time the fetch stream
   last *entered* them, and entry order equals last-touch order because
   fetch runs within a line are contiguous. Repeat touches are not
   re-counted in [hits] (the hit/miss counters of the I-cache are not
   part of the architectural statistics). *)
let[@inline] access_fetch t addr =
  let line = addr lsr t.line_shift in
  if line = t.fetch_line then true
  else begin
    t.fetch_line <- line;
    access_line t line
  end

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.iter (fun ways -> Array.fill ways 0 (Array.length ways) (-1)) t.sets;
  Array.iter (fun l -> Array.fill l 0 (Array.length l) 0) t.lru;
  t.fetch_line <- -1

(* -- snapshot state ------------------------------------------------------ *)
(* The mutable model state as one flat int array: counters first, then
   every set's line numbers, then every set's LRU stamps. Geometry
   (set count, ways, line size) is configuration, not state — restore
   into a cache of the same geometry only. *)

let snapshot_words t = 4 + (2 * t.set_count * t.ways)

let snapshot_state t =
  let a = Array.make (snapshot_words t) 0 in
  a.(0) <- t.clock;
  a.(1) <- t.hits;
  a.(2) <- t.misses;
  a.(3) <- t.fetch_line;
  let k = ref 4 in
  for s = 0 to t.set_count - 1 do
    for w = 0 to t.ways - 1 do
      a.(!k) <- t.sets.(s).(w);
      a.(!k + (t.set_count * t.ways)) <- t.lru.(s).(w);
      incr k
    done
  done;
  a

let restore_state t a =
  if Array.length a <> snapshot_words t then
    invalid_arg "Cache.restore_state: state does not match this cache's geometry";
  t.clock <- a.(0);
  t.hits <- a.(1);
  t.misses <- a.(2);
  t.fetch_line <- a.(3);
  let k = ref 4 in
  for s = 0 to t.set_count - 1 do
    for w = 0 to t.ways - 1 do
      t.sets.(s).(w) <- a.(!k);
      t.lru.(s).(w) <- a.(!k + (t.set_count * t.ways));
      incr k
    done
  done

module Timing = struct
  type config = {
    l1_size : int;
    l1_ways : int;
    l2_size : int;
    l2_ways : int;
    line_bytes : int;
    l1_hit_cycles : int;
    l2_hit_cycles : int;
    memory_cycles : int;
  }

  type hierarchy = { cfg : config; l1 : t; l2 : t }

  let paper_config =
    {
      l1_size = 16 * 1024;
      l1_ways = 2;
      l2_size = 64 * 1024;
      l2_ways = 4;
      line_bytes = 32;
      l1_hit_cycles = 1;
      l2_hit_cycles = 6;
      memory_cycles = 24;
    }

  let create cfg =
    {
      cfg;
      l1 = create ~name:"L1" ~size_bytes:cfg.l1_size ~ways:cfg.l1_ways ~line_bytes:cfg.line_bytes;
      l2 = create ~name:"L2" ~size_bytes:cfg.l2_size ~ways:cfg.l2_ways ~line_bytes:cfg.line_bytes;
    }

  let config h = h.cfg
  let l1 h = h.l1
  let l2 h = h.l2

  let line_cycles_int h addr =
    if access_int h.l1 addr then h.cfg.l1_hit_cycles
    else if access_int h.l2 addr then h.cfg.l1_hit_cycles + h.cfg.l2_hit_cycles
    else h.cfg.l1_hit_cycles + h.cfg.l2_hit_cycles + h.cfg.memory_cycles

  let access_cycles_int h addr ~size =
    let first = line_cycles_int h addr in
    let last_byte = addr + max 0 (size - 1) in
    if size > 0 && last_byte lsr h.l1.line_shift <> addr lsr h.l1.line_shift then
      first + line_cycles_int h last_byte
    else first

  let access_cycles h addr ~size =
    access_cycles_int h (Int64.to_int (Int64.logand addr Int64.max_int)) ~size

  let reset_stats h =
    reset_stats h.l1;
    reset_stats h.l2
end
