(** The instruction set of the simulated CHERI softcore.

    A 64-bit MIPS-like RISC supplemented with the CHERI capability
    coprocessor. Programs are arrays of structured instructions rather
    than binary encodings — the paper's results depend on instruction
    *semantics* and *counts*, not on bit-level encoding, so the
    simulator executes the structured form directly (one array slot =
    one 4-byte instruction for timing purposes).

    Register conventions (used by {!Cheri_compiler} and the runtime):
    GPR 0 is hardwired zero, GPR 29 the stack pointer, GPR 31 the link
    register, GPR 2 syscall number / result, GPRs 4–7 arguments.
    Capability register 0 is the default data capability (DDC);
    capability register 11 the stack capability in pure-capability
    ABIs; capability registers 1–8 carry capability arguments and
    results. *)

type width = B | H | W | D
(** Access widths: 1, 2, 4, 8 bytes. *)

val bytes_of_width : width -> int

type target = Abs of int | Sym of string
(** Branch/jump target: resolved absolute instruction index, or a
    symbolic label awaiting the assembler. *)

type imm = Imm of int64 | Sym_addr of string * int64
(** Immediate operand: a constant, or the address of a data symbol
    plus an addend (resolved at assembly time). *)

type alu_op =
  | ADD  (** wrapping two's-complement add (the PDP-11 heritage) *)
  | ADDT  (** add that traps on signed overflow (§3.1.1's AIR-style proposal) *)
  | SUB
  | MUL
  | DIV  (** signed; traps on divide by zero *)
  | DIVU
  | REM
  | REMU
  | AND
  | OR
  | XOR
  | NOR
  | SLL
  | SRL
  | SRA
  | SLT  (** set-if-less-than, signed *)
  | SLTU
  | SEQ
  | SNE

type cmp = CEQ | CNE | CLT | CLE | CLTU | CLEU
(** [CPtrCmp] comparison kinds. *)

type cond = EQ | NE
type condz = LTZ | LEZ | GTZ | GEZ | EQZ | NEZ

type t =
  | Nop
  | Li of int * imm  (** load 64-bit immediate / symbol address *)
  | Alu of alu_op * int * int * int  (** rd, rs, rt *)
  | Alui of alu_op * int * int * imm  (** rd, rs, immediate *)
  | Load of { w : width; signed : bool; rd : int; rs : int; off : int }
      (** legacy MIPS load: address = gpr rs + off, checked against DDC *)
  | Store of { w : width; rv : int; rs : int; off : int }
  | Cload of { w : width; signed : bool; rd : int; cb : int; roff : int; off : int }
      (** capability load: address = address(cb) + gpr roff + off *)
  | Cstore of { w : width; rv : int; cb : int; roff : int; off : int }
  | Clc of { cd : int; cb : int; roff : int; off : int }  (** load capability *)
  | Csc of { cs : int; cb : int; roff : int; off : int }  (** store capability *)
  | Cgetbase of int * int  (** rd, cb *)
  | Cgetlen of int * int
  | Cgetoffset of int * int
  | Cgettag of int * int
  | Cgetperm of int * int
  | Cincoffset of int * int * int  (** cd, cb, rt *)
  | Cincoffsetimm of int * int * int64
  | Csetoffset of int * int * int
  | Cincbase of int * int * int
  | Csetlen of int * int * int
  | Candperm of int * int * int64  (** cd, cb, permission mask bits *)
  | Ccleartag of int * int
  | Cmove of int * int
  | Cseal of int * int * int  (** cd, cs, ct: seal cs with ct's authority *)
  | Cunseal of int * int * int
  | Cptrcmp of cmp * int * int * int  (** rd, ca, cb *)
  | Cfromptr of int * int * int  (** cd, cb, rs *)
  | Ctoptr of int * int * int  (** rd, cs, cb *)
  | Branch of cond * int * int * target
  | Branchz of condz * int * target
  | J of target
  | Jal of target  (** call; links pc+1 into GPR 31 *)
  | Jr of int
  | Jalr of int  (** call through register; links into GPR 31 *)
  | Cjalr of int * int  (** cd, cb: capability jump-and-link (§4.2) *)
  | Cjr of int
  | Syscall
  | Halt

val pp : Format.formatter -> t -> unit
val is_resolved : t -> bool
(** True when the instruction contains no symbolic targets or
    immediates and can be executed directly. *)

val map_target : (target -> target) -> t -> t
(** Rewrite branch/jump targets (assembler fix-up pass). *)

val map_imm : (imm -> imm) -> t -> t
(** Rewrite immediates (assembler symbol resolution). *)

val telemetry_class : t -> Cheri_telemetry.Telemetry.opcode_class
(** The counter bucket an instruction retires into (see
    {!Cheri_telemetry.Telemetry.opcode_class}). *)
