(* Process-wide metrics registry with per-domain shards.

   Hot-path writes (counter incr, histogram observe) touch only a
   domain-local shard obtained through Domain.DLS — no atomics, no
   locks, no allocation after the first touch per domain. The shard
   list itself is guarded by the metric's mutex: a shard is pushed
   once when a domain first touches the metric, and readers fold over
   the list under the same mutex. A shard is just mutable cells owned
   by one writer domain; the reader may observe a value a few
   increments stale mid-run, but Domain.join publishes everything, so
   post-campaign reads (the only ones reports depend on) are exact. *)

module Json = Cheri_util.Json

let now = Unix.gettimeofday

(* ---------- counters ---------- *)

type counter_m = {
  c_name : string;
  c_live : bool;
  c_mu : Mutex.t;
  c_shards : int ref list ref;
  c_key : int ref Domain.DLS.key;
}

let make_counter ~live name =
  let mu = Mutex.create () in
  let shards = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s = ref 0 in
        if live then Mutex.protect mu (fun () -> shards := s :: !shards);
        s)
  in
  { c_name = name; c_live = live; c_mu = mu; c_shards = shards; c_key = key }

let null_counter = make_counter ~live:false "null"

module Counter = struct
  type t = counter_m

  let incr ?(by = 1) c =
    if c.c_live then begin
      let s = Domain.DLS.get c.c_key in
      s := !s + by
    end

  let value c =
    if not c.c_live then 0
    else Mutex.protect c.c_mu (fun () -> List.fold_left (fun acc s -> acc + !s) 0 !(c.c_shards))
end

(* ---------- gauges ---------- *)

type gauge_m = { g_name : string; g_live : bool; g_mu : Mutex.t; mutable g_val : float }

let make_gauge ~live name = { g_name = name; g_live = live; g_mu = Mutex.create (); g_val = 0. }
let null_gauge = make_gauge ~live:false "null"

module Gauge = struct
  type t = gauge_m

  let set g v = if g.g_live then Mutex.protect g.g_mu (fun () -> g.g_val <- v)
  let value g = if not g.g_live then 0. else Mutex.protect g.g_mu (fun () -> g.g_val)
end

(* ---------- histograms ---------- *)

let default_buckets =
  [|
    1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25;
    0.5; 1.; 2.5; 5.; 10.; 30.;
  |]

type hshard = {
  hs_counts : int array;  (* one per bucket, plus the +Inf overflow slot *)
  mutable hs_sum : float;
  mutable hs_count : int;
  mutable hs_min : float;
  mutable hs_max : float;
}

type hist_m = {
  h_name : string;
  h_live : bool;
  h_buckets : float array;
  h_mu : Mutex.t;
  h_shards : hshard list ref;
  h_key : hshard Domain.DLS.key;
}

let make_hist ~live ~buckets name =
  let n = Array.length buckets in
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg (Printf.sprintf "Obs.histogram %s: buckets not strictly increasing" name)
  done;
  let mu = Mutex.create () in
  let shards = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let s =
          {
            hs_counts = Array.make (n + 1) 0;
            hs_sum = 0.;
            hs_count = 0;
            hs_min = infinity;
            hs_max = neg_infinity;
          }
        in
        if live then Mutex.protect mu (fun () -> shards := s :: !shards);
        s)
  in
  { h_name = name; h_live = live; h_buckets = buckets; h_mu = mu; h_shards = shards; h_key = key }

let null_hist = make_hist ~live:false ~buckets:default_buckets "null"

(* merged read-side view *)
type hist_view = {
  hv_buckets : float array;
  hv_counts : int array;  (* per bucket, overflow last *)
  hv_count : int;
  hv_sum : float;
  hv_min : float;
  hv_max : float;
}

let hist_view h =
  Mutex.protect h.h_mu (fun () ->
      let n = Array.length h.h_buckets in
      let counts = Array.make (n + 1) 0 in
      let sum = ref 0. and count = ref 0 and mn = ref infinity and mx = ref neg_infinity in
      List.iter
        (fun s ->
          Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.hs_counts;
          sum := !sum +. s.hs_sum;
          count := !count + s.hs_count;
          if s.hs_min < !mn then mn := s.hs_min;
          if s.hs_max > !mx then mx := s.hs_max)
        !(h.h_shards);
      {
        hv_buckets = h.h_buckets;
        hv_counts = counts;
        hv_count = !count;
        hv_sum = !sum;
        hv_min = !mn;
        hv_max = !mx;
      })

let view_quantile v q =
  if v.hv_count = 0 then nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int v.hv_count in
    let n = Array.length v.hv_buckets in
    let res = ref v.hv_max in
    let cum = ref 0. and found = ref false in
    for i = 0 to n do
      if not !found then begin
        let here = v.hv_counts.(i) in
        let cum' = !cum +. float_of_int here in
        if cum' >= target && here > 0 then begin
          let lo = if i = 0 then v.hv_min else Float.max v.hv_min v.hv_buckets.(i - 1) in
          let hi = if i = n then v.hv_max else Float.min v.hv_max v.hv_buckets.(i) in
          let frac = if here = 0 then 0. else (target -. !cum) /. float_of_int here in
          res := lo +. ((hi -. lo) *. Float.max 0. frac);
          found := true
        end;
        cum := cum'
      end
    done;
    !res
  end

module Histogram = struct
  type t = hist_m

  let observe h v =
    if h.h_live then begin
      let s = Domain.DLS.get h.h_key in
      let n = Array.length h.h_buckets in
      let i = ref 0 in
      while !i < n && v > h.h_buckets.(!i) do
        incr i
      done;
      s.hs_counts.(!i) <- s.hs_counts.(!i) + 1;
      s.hs_sum <- s.hs_sum +. v;
      s.hs_count <- s.hs_count + 1;
      if v < s.hs_min then s.hs_min <- v;
      if v > s.hs_max then s.hs_max <- v
    end

  let count h = if not h.h_live then 0 else (hist_view h).hv_count
  let sum h = if not h.h_live then 0. else (hist_view h).hv_sum
  let quantile h q = if not h.h_live then nan else view_quantile (hist_view h) q
end

let quantile_of samples q =
  match List.sort compare samples with
  | [] -> nan
  | [ x ] -> x
  | sorted ->
      let a = Array.of_list sorted in
      let n = Array.length a in
      let q = Float.max 0. (Float.min 1. q) in
      let rank = q *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Int.min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. ((a.(hi) -. a.(lo)) *. frac)

(* ---------- spans ---------- *)

type span_info = { sp_id : int; sp_parent : int; sp_label : string; sp_start : float }

type span_rec = {
  sr_id : int;
  sr_parent : int;  (* 0 = root *)
  sr_label : string;
  sr_start : float;
  sr_dur : float;
}

let span_cap = 4096

(* ---------- registry ---------- *)

type metric = M_counter of counter_m | M_gauge of gauge_m | M_hist of hist_m

type t = {
  live : bool;
  mu : Mutex.t;
  metrics : (string, metric) Hashtbl.t;
  mutable spans : span_rec list;  (* newest first; capped at span_cap *)
  mutable span_recorded : int;
  mutable span_dropped : int;
  span_ids : int Atomic.t;
  stack : span_info list ref Domain.DLS.key;
  epoch : float;  (* creation time; span starts are exported relative to this *)
}

let make ~live =
  {
    live;
    mu = Mutex.create ();
    metrics = Hashtbl.create 32;
    spans = [];
    span_recorded = 0;
    span_dropped = 0;
    span_ids = Atomic.make 1;
    stack = Domain.DLS.new_key (fun () -> ref []);
    epoch = (if live then now () else 0.);
  }

let create () = make ~live:true
let null = make ~live:false
let default = make ~live:true
let is_live r = r.live

let intern r name ~mismatch ~build ~select =
  Mutex.protect r.mu (fun () ->
      match Hashtbl.find_opt r.metrics name with
      | Some m -> (
          match select m with
          | Some x -> x
          | None -> invalid_arg (Printf.sprintf "Obs: %s already registered as a %s" name mismatch))
      | None ->
          let x, m = build () in
          Hashtbl.add r.metrics name m;
          x)

let counter r name =
  if not r.live then null_counter
  else
    intern r name ~mismatch:"non-counter"
      ~build:(fun () ->
        let c = make_counter ~live:true name in
        (c, M_counter c))
      ~select:(function M_counter c -> Some c | _ -> None)

let gauge r name =
  if not r.live then null_gauge
  else
    intern r name ~mismatch:"non-gauge"
      ~build:(fun () ->
        let g = make_gauge ~live:true name in
        (g, M_gauge g))
      ~select:(function M_gauge g -> Some g | _ -> None)

let histogram ?(buckets = default_buckets) r name =
  if not r.live then null_hist
  else
    intern r name ~mismatch:"non-histogram"
      ~build:(fun () ->
        let h = make_hist ~live:true ~buckets name in
        (h, M_hist h))
      ~select:(function M_hist h -> Some h | _ -> None)

module Span = struct
  type span = span_info

  let none = { sp_id = 0; sp_parent = 0; sp_label = ""; sp_start = 0. }
  let id s = s.sp_id
  let cap = span_cap

  let enter r ?(parent = none) label =
    if not r.live then none
    else
      { sp_id = Atomic.fetch_and_add r.span_ids 1; sp_parent = parent.sp_id; sp_label = label;
        sp_start = now () }

  let exit r s =
    if r.live && s.sp_id <> 0 then begin
      let dur = now () -. s.sp_start in
      Mutex.protect r.mu (fun () ->
          if r.span_recorded - r.span_dropped >= span_cap then r.span_dropped <- r.span_dropped + 1
          else
            r.spans <-
              {
                sr_id = s.sp_id;
                sr_parent = s.sp_parent;
                sr_label = s.sp_label;
                sr_start = s.sp_start;
                sr_dur = dur;
              }
              :: r.spans;
          r.span_recorded <- r.span_recorded + 1)
    end

  let current r =
    if not r.live then None
    else match !(Domain.DLS.get r.stack) with [] -> None | s :: _ -> Some s

  let with_ r ?parent label f =
    if not r.live then f ()
    else begin
      let parent = match parent with Some p -> p | None -> Option.value (current r) ~default:none in
      let s = enter r ~parent label in
      let stack = Domain.DLS.get r.stack in
      stack := s :: !stack;
      Fun.protect
        ~finally:(fun () ->
          (match !stack with top :: rest when top.sp_id = s.sp_id -> stack := rest | _ -> ());
          exit r s)
        f
    end

  let recorded r = if not r.live then 0 else Mutex.protect r.mu (fun () -> r.span_recorded)
  let dropped r = if not r.live then 0 else Mutex.protect r.mu (fun () -> r.span_dropped)
end

(* ---------- registry snapshot (shared by the exporters) ---------- *)

type snap = {
  sn_counters : (string * int) list;  (* sorted by name *)
  sn_gauges : (string * float) list;
  sn_hists : (string * hist_view) list;
  sn_spans : span_rec list;  (* oldest first *)
  sn_dropped : int;
  sn_epoch : float;
}

let snap r =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  let metrics, spans, dropped =
    Mutex.protect r.mu (fun () ->
        ( Hashtbl.fold (fun _ m acc -> m :: acc) r.metrics [],
          List.rev r.spans,
          r.span_dropped ))
  in
  List.iter
    (function
      | M_counter c -> counters := (c.c_name, Counter.value c) :: !counters
      | M_gauge g -> gauges := (g.g_name, Gauge.value g) :: !gauges
      | M_hist h -> hists := (h.h_name, hist_view h) :: !hists)
    metrics;
  let by_name (a, _) (b, _) = compare a b in
  {
    sn_counters = List.sort by_name !counters;
    sn_gauges = List.sort by_name !gauges;
    sn_hists = List.sort by_name !hists;
    sn_spans = spans;
    sn_dropped = dropped;
    sn_epoch = r.epoch;
  }

(* ---------- exporters ---------- *)

let pp ppf r =
  let s = snap r in
  let pct v q = view_quantile v q in
  Format.fprintf ppf "@[<v>";
  if s.sn_counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter (fun (n, v) -> Format.fprintf ppf "  %-50s %d@," n v) s.sn_counters
  end;
  if s.sn_gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter (fun (n, v) -> Format.fprintf ppf "  %-50s %g@," n v) s.sn_gauges
  end;
  if s.sn_hists <> [] then begin
    Format.fprintf ppf "histograms:@,";
    List.iter
      (fun (n, v) ->
        if v.hv_count = 0 then Format.fprintf ppf "  %-40s (empty)@," n
        else
          Format.fprintf ppf "  %-40s n=%-6d sum=%.6g p50=%.6g p90=%.6g p99=%.6g max=%.6g@," n
            v.hv_count v.hv_sum (pct v 0.5) (pct v 0.9) (pct v 0.99) v.hv_max)
      s.sn_hists
  end;
  let nspans = List.length s.sn_spans in
  if nspans > 0 || s.sn_dropped > 0 then begin
    Format.fprintf ppf "spans: %d recorded, %d dropped@," (nspans + s.sn_dropped) s.sn_dropped;
    let shown = ref 0 in
    List.iter
      (fun sr ->
        if !shown < 20 then begin
          incr shown;
          Format.fprintf ppf "  [%d<-%d] %-30s %.3f ms@," sr.sr_id sr.sr_parent sr.sr_label
            (sr.sr_dur *. 1e3)
        end)
      s.sn_spans;
    if nspans > 20 then Format.fprintf ppf "  ... %d more@," (nspans - 20)
  end;
  Format.fprintf ppf "@]"

let to_jsonl ?(timing = true) r =
  let s = snap r in
  let b = Buffer.create 1024 in
  let line j =
    Buffer.add_string b (Json.encode j);
    Buffer.add_char b '\n'
  in
  let num_i n = Json.Num (string_of_int n) in
  let num_f f = if f <> f then Json.Null else Json.Num (Json.number f) in
  List.iter
    (fun (n, v) ->
      line (Json.Obj [ ("kind", Json.Str "counter"); ("name", Json.Str n); ("value", num_i v) ]))
    s.sn_counters;
  if timing then begin
    List.iter
      (fun (n, v) ->
        line (Json.Obj [ ("kind", Json.Str "gauge"); ("name", Json.Str n); ("value", num_f v) ]))
      s.sn_gauges;
    List.iter
      (fun (n, v) ->
        let buckets =
          Json.Arr
            (List.mapi
               (fun i le ->
                 Json.Obj [ ("le", num_f le); ("n", num_i v.hv_counts.(i)) ])
               (Array.to_list v.hv_buckets)
            @ [
                Json.Obj
                  [ ("le", Json.Str "+Inf"); ("n", num_i v.hv_counts.(Array.length v.hv_buckets)) ];
              ])
        in
        line
          (Json.Obj
             [
               ("kind", Json.Str "histogram");
               ("name", Json.Str n);
               ("count", num_i v.hv_count);
               ("sum", num_f v.hv_sum);
               ("min", if v.hv_count = 0 then Json.Null else num_f v.hv_min);
               ("max", if v.hv_count = 0 then Json.Null else num_f v.hv_max);
               ("p50", num_f (view_quantile v 0.5));
               ("p90", num_f (view_quantile v 0.9));
               ("p99", num_f (view_quantile v 0.99));
               ("buckets", buckets);
             ]))
      s.sn_hists;
    List.iter
      (fun sr ->
        line
          (Json.Obj
             [
               ("kind", Json.Str "span");
               ("id", num_i sr.sr_id);
               ("parent", if sr.sr_parent = 0 then Json.Null else num_i sr.sr_parent);
               ("label", Json.Str sr.sr_label);
               ("start_s", num_f (sr.sr_start -. s.sn_epoch));
               ("dur_s", num_f sr.sr_dur);
             ]))
      s.sn_spans;
    if s.sn_dropped > 0 then
      line (Json.Obj [ ("kind", Json.Str "spans_dropped"); ("value", num_i s.sn_dropped) ])
  end;
  Buffer.contents b

(* "name{label=\"x\"}" -> "name", for # TYPE comments *)
let base_name n = match String.index_opt n '{' with Some i -> String.sub n 0 i | None -> n

let to_prometheus ?(timing = true) r =
  let s = snap r in
  let b = Buffer.create 1024 in
  let last_type = ref "" in
  let typ name kind =
    let base = base_name name in
    if base <> !last_type then begin
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" base kind);
      last_type := base
    end
  in
  List.iter
    (fun (n, v) ->
      typ n "counter";
      Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
    s.sn_counters;
  if timing then begin
    List.iter
      (fun (n, v) ->
        typ n "gauge";
        Buffer.add_string b (Printf.sprintf "%s %s\n" n (Json.number v)))
      s.sn_gauges;
    List.iter
      (fun (n, v) ->
        typ n "histogram";
        let cum = ref 0 in
        Array.iteri
          (fun i le ->
            cum := !cum + v.hv_counts.(i);
            Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (Json.number le) !cum))
          v.hv_buckets;
        cum := !cum + v.hv_counts.(Array.length v.hv_buckets);
        Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n !cum);
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (Json.number v.hv_sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" n v.hv_count))
      s.sn_hists;
    let nspans = List.length s.sn_spans in
    if nspans > 0 || s.sn_dropped > 0 then
      Buffer.add_string b
        (Printf.sprintf "# spans: %d recorded, %d dropped\n" (nspans + s.sn_dropped) s.sn_dropped)
  end;
  Buffer.contents b

(* ---------- heartbeat ---------- *)

module Heartbeat = struct
  type t = {
    hb_path : string;
    hb_interval : float;
    hb_mu : Mutex.t;
    mutable hb_last : float;  (* last write time; neg_infinity before the first *)
  }

  let create ?(interval_s = 1.0) ~path () =
    { hb_path = path; hb_interval = interval_s; hb_mu = Mutex.create (); hb_last = neg_infinity }

  let path t = t.hb_path

  let write_atomic ~path payload =
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try output_string oc payload
     with e ->
       close_out_noerr oc;
       raise e);
    close_out oc;
    Sys.rename tmp path

  let write t payload =
    match write_atomic ~path:t.hb_path (payload ()) with
    | () -> ()
    | exception Sys_error _ -> ()

  let beat t payload =
    Mutex.protect t.hb_mu (fun () ->
        let t_now = now () in
        if t_now -. t.hb_last >= t.hb_interval then begin
          t.hb_last <- t_now;
          write t payload
        end)

  let force t payload =
    Mutex.protect t.hb_mu (fun () ->
        t.hb_last <- now ();
        write t payload)

  (* The supervisor-side half of the plane: classify a status file by
     its age. The threshold is 2x the writer's interval — one interval
     of legitimate silence (the writer beats at most once per interval)
     plus one interval of slack for scheduling. An mtime in the future
     means clock skew between writer and prober (or a coarse
     filesystem clock), never staleness — a skewed-but-beating worker
     must not be reaped. *)
  let staleness ~interval_s ~now:t_now ~mtime =
    let age = t_now -. mtime in
    if age > 2. *. interval_s then `Stale age else `Fresh

  let probe ?now:probe_now ~interval_s path =
    match Unix.stat path with
    | exception Unix.Unix_error _ -> `Missing
    | exception Sys_error _ -> `Missing
    | st ->
        let t_now = match probe_now with Some t -> t | None -> now () in
        staleness ~interval_s ~now:t_now ~mtime:st.Unix.st_mtime
end

let status_json ?(verdicts = []) ?p99_task_s ~tasks_done ~tasks_total ~elapsed_s () =
  let num_i n = Json.Num (string_of_int n) in
  let num_f f = if f <> f then Json.Null else Json.Num (Json.number f) in
  let eta =
    if tasks_done > 0 && tasks_total > tasks_done then
      num_f (elapsed_s /. float_of_int tasks_done *. float_of_int (tasks_total - tasks_done))
    else if tasks_done >= tasks_total then num_f 0.
    else Json.Null
  in
  Json.encode
    (Json.Obj
       [
         ("schema", Json.Str "cheri_c.status/v1");
         ("tasks_done", num_i tasks_done);
         ("tasks_total", num_i tasks_total);
         ("verdicts", Json.Obj (List.map (fun (k, v) -> (k, num_i v)) verdicts));
         ("elapsed_s", num_f elapsed_s);
         ("eta_s", eta);
         ("p99_task_s", match p99_task_s with Some v -> num_f v | None -> Json.Null);
       ])
