(** The bench regression gate: diff two committed BENCH_PR*.json files
    and fail on a >threshold throughput (or latency, or size)
    regression — turning the repo's bench trajectory into an enforced
    check instead of a hand-inspected artifact.

    Three schema families are understood, keyed by the [schema] field
    up to the [/vN] suffix:
    - [cheri_c.bench] (v1/v2): per workload×ABI [cycles] and [instret],
      both lower-better and fully deterministic;
    - [cheri_c.bench-perf]: per-cell [insn_per_s] (higher-better) and
      [minor_words_per_insn] (lower-better);
    - [cheri_c.snap-bench]: per-workload [save_ms]/[restore_ms]/[bytes]
      (lower-better) plus the [slicing] throughput block
      (higher-better).

    Comparing files from different families is an error; [v1] vs [v2]
    of the same family is fine (the cell shape is compatible). *)

type direction = Higher_better | Lower_better

type metric = {
  m_cell : string;  (** e.g. ["dhrystone/cheri-v2"] or ["slicing"] *)
  m_name : string;  (** e.g. ["cycles"] *)
  m_dir : direction;
  m_old : float;
  m_new : float;
  m_delta_pct : float;  (** signed; positive = regressed direction *)
  m_regressed : bool;
}

type outcome = {
  o_family : string;
  o_threshold_pct : float;
  o_metrics : metric list;
  o_missing : string list;  (** cells present in OLD, absent from NEW *)
  o_regressed : bool;
      (** any metric beyond threshold — or, unless [quick], any missing
          cell *)
}

val diff :
  ?threshold_pct:float ->
  ?quick:bool ->
  old_json:string ->
  new_json:string ->
  unit ->
  (outcome, string) result
(** [threshold_pct] defaults to 10. [quick] (default false) compares
    only the cell intersection — for gating against an older committed
    file whose sweep was smaller. Cells only in NEW are always
    ignored (growth is not a regression). *)

val pp_outcome : Format.formatter -> outcome -> unit

val doctor_worsen : ?factor:float -> string -> (string, string) result
(** Re-serialize the report with every gated metric worsened by
    [factor] (default 0.2, i.e. 20% — comfortably past the 10%
    threshold): the self-test's synthetic regression. Unrelated fields
    pass through byte-preserved ([Num] lexemes are kept verbatim). *)
