(* Schema-aware diff over the committed BENCH_PR*.json trajectory.

   The gate is deliberately structural: each schema family declares
   which result fields are gated and in which direction, cells are
   keyed by workload (and ABI where present), and the comparison is a
   pure function over two parsed documents — the CLI in bench/main.ml
   only maps the outcome to an exit code. *)

module Json = Cheri_util.Json

type direction = Higher_better | Lower_better

type metric = {
  m_cell : string;
  m_name : string;
  m_dir : direction;
  m_old : float;
  m_new : float;
  m_delta_pct : float;
  m_regressed : bool;
}

type outcome = {
  o_family : string;
  o_threshold_pct : float;
  o_metrics : metric list;
  o_missing : string list;
  o_regressed : bool;
}

(* ---------- schema table ---------- *)

(* (field, direction) gated per results[] cell, and whether the cell
   key includes the abi field *)
type family_spec = {
  f_name : string;
  f_cell_fields : (string * direction) list;
  f_key_abi : bool;
  f_slicing : (string * direction) list;  (* fields of the top-level "slicing" object *)
}

let families =
  [
    {
      f_name = "cheri_c.bench";
      f_cell_fields = [ ("cycles", Lower_better); ("instret", Lower_better) ];
      f_key_abi = true;
      f_slicing = [];
    };
    {
      f_name = "cheri_c.bench-perf";
      f_cell_fields =
        [
          ("cycles", Lower_better);
          ("instret", Lower_better);
          ("insn_per_s", Higher_better);
          ("minor_words_per_insn", Lower_better);
        ];
      f_key_abi = true;
      f_slicing = [];
    };
    {
      f_name = "cheri_c.snap-bench";
      f_cell_fields =
        [ ("save_ms", Lower_better); ("restore_ms", Lower_better); ("bytes", Lower_better) ];
      f_key_abi = false;
      f_slicing =
        [
          ("insn_per_s_flat", Higher_better);
          ("insn_per_s_sliced", Higher_better);
          ("ratio", Higher_better);
        ];
    };
    (* the multi-tenant service (bench/main.exe serve): cells are
       heterogeneous — "sustained" carries throughput/latency,
       "recovery" carries post-kill recovery time — and extract
       already drops fields a cell does not have *)
    {
      f_name = "cheri_c.serve-bench";
      f_cell_fields =
        [
          ("jobs_per_s", Higher_better);
          ("p50_ms", Lower_better);
          ("p99_ms", Lower_better);
          ("recovery_ms", Lower_better);
        ];
      f_key_abi = false;
      f_slicing = [];
    };
  ]

let family_of_schema schema =
  let base =
    match String.index_opt schema '/' with Some i -> String.sub schema 0 i | None -> schema
  in
  List.find_opt (fun f -> f.f_name = base) families

let str_member k j = Option.bind (Json.member k j) Json.to_string
let float_member k j = Option.bind (Json.member k j) Json.to_float

let cell_key spec cell =
  match str_member "workload" cell with
  | None -> None
  | Some w ->
      if spec.f_key_abi then
        match str_member "abi" cell with Some a -> Some (w ^ "/" ^ a) | None -> None
      else Some w

(* (cell key, field, dir, value) for every gated value in the doc *)
let extract spec doc =
  let cells =
    match Option.bind (Json.member "results" doc) Json.to_list with Some l -> l | None -> []
  in
  let of_cell cell =
    match cell_key spec cell with
    | None -> []
    | Some key ->
        List.filter_map
          (fun (field, dir) ->
            Option.map (fun v -> (key, field, dir, v)) (float_member field cell))
          spec.f_cell_fields
  in
  let slicing =
    match Json.member "slicing" doc with
    | Some s when spec.f_slicing <> [] ->
        List.filter_map
          (fun (field, dir) ->
            Option.map (fun v -> ("slicing", field, dir, v)) (float_member field s))
          spec.f_slicing
    | _ -> []
  in
  List.concat_map of_cell cells @ slicing

let diff ?(threshold_pct = 10.) ?(quick = false) ~old_json ~new_json () =
  let ( let* ) = Result.bind in
  let parse label s =
    match Json.parse s with Ok j -> Ok j | Error e -> Error (Printf.sprintf "%s: %s" label e)
  in
  let* old_doc = parse "OLD" old_json in
  let* new_doc = parse "NEW" new_json in
  let schema_of label doc =
    match str_member "schema" doc with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "%s: no \"schema\" field" label)
  in
  let* old_schema = schema_of "OLD" old_doc in
  let* new_schema = schema_of "NEW" new_doc in
  let* spec =
    match (family_of_schema old_schema, family_of_schema new_schema) with
    | Some a, Some b when a.f_name = b.f_name -> Ok a
    | Some a, Some b ->
        Error (Printf.sprintf "schema families differ: %s vs %s" a.f_name b.f_name)
    | None, _ -> Error (Printf.sprintf "OLD: unsupported schema %s" old_schema)
    | _, None -> Error (Printf.sprintf "NEW: unsupported schema %s" new_schema)
  in
  let olds = extract spec old_doc in
  let news = extract spec new_doc in
  if olds = [] then Error "OLD: no gated metrics found"
  else begin
    let lookup (key, field) =
      List.find_map
        (fun (k, f, _, v) -> if k = key && f = field then Some v else None)
        news
    in
    let metrics, missing =
      List.fold_left
        (fun (ms, miss) (key, field, dir, v_old) ->
          match lookup (key, field) with
          | None -> (ms, if List.mem key miss then miss else key :: miss)
          | Some v_new ->
              (* positive delta = moved in the regressed direction *)
              let delta_pct =
                if v_old = 0. then if v_new = 0. then 0. else infinity
                else
                  let change = (v_new -. v_old) /. Float.abs v_old *. 100. in
                  match dir with Lower_better -> change | Higher_better -> -.change
              in
              let m =
                {
                  m_cell = key;
                  m_name = field;
                  m_dir = dir;
                  m_old = v_old;
                  m_new = v_new;
                  m_delta_pct = delta_pct;
                  m_regressed = delta_pct > threshold_pct;
                }
              in
              (m :: ms, miss))
        ([], []) olds
    in
    let metrics = List.rev metrics and missing = List.rev missing in
    let regressed =
      List.exists (fun m -> m.m_regressed) metrics || ((not quick) && missing <> [])
    in
    Ok
      {
        o_family = spec.f_name;
        o_threshold_pct = threshold_pct;
        o_metrics = metrics;
        o_missing = missing;
        o_regressed = regressed;
      }
  end

let pp_outcome ppf o =
  let regressions = List.filter (fun m -> m.m_regressed) o.o_metrics in
  Format.fprintf ppf "@[<v>bench compare (%s, threshold %g%%): %d metrics, %d regressed"
    o.o_family o.o_threshold_pct (List.length o.o_metrics) (List.length regressions);
  List.iter
    (fun m ->
      Format.fprintf ppf "@,  REGRESSED %s %s: %g -> %g (%+.1f%% %s)" m.m_cell m.m_name m.m_old
        m.m_new m.m_delta_pct
        (match m.m_dir with Lower_better -> "higher is worse" | Higher_better -> "lower is worse"))
    regressions;
  List.iter (fun c -> Format.fprintf ppf "@,  MISSING cell %s (present in OLD, absent in NEW)" c)
    o.o_missing;
  (if not o.o_regressed then
     let worst =
       List.fold_left (fun acc m -> Float.max acc m.m_delta_pct) neg_infinity o.o_metrics
     in
     if worst > neg_infinity then Format.fprintf ppf "@,  ok (worst delta %+.1f%%)" worst);
  Format.fprintf ppf "@]"

(* ---------- the self-test's synthetic regression ---------- *)

let doctor_worsen ?(factor = 0.2) s =
  match Json.parse s with
  | Error e -> Error e
  | Ok doc -> (
      match Option.bind (str_member "schema" doc) family_of_schema with
      | None -> Error "unsupported schema"
      | Some spec ->
          let worsen dir v =
            match dir with
            | Lower_better -> v *. (1. +. factor)
            | Higher_better -> v *. (1. -. factor)
          in
          let doctor_obj fields j =
            match j with
            | Json.Obj kvs ->
                Json.Obj
                  (List.map
                     (fun (k, v) ->
                       match (List.assoc_opt k fields, Json.to_float v) with
                       | Some dir, Some f -> (k, Json.Num (Json.number (worsen dir f)))
                       | _ -> (k, v))
                     kvs)
            | _ -> j
          in
          let doc' =
            match doc with
            | Json.Obj kvs ->
                Json.Obj
                  (List.map
                     (fun (k, v) ->
                       match (k, v) with
                       | "results", Json.Arr cells ->
                           (k, Json.Arr (List.map (doctor_obj spec.f_cell_fields) cells))
                       | "slicing", _ when spec.f_slicing <> [] ->
                           (k, doctor_obj spec.f_slicing v)
                       | _ -> (k, v))
                     kvs)
            | other -> other
          in
          Ok (Json.encode doc'))
