(** Fleet-level observability: a process-wide metrics registry, span
    tracing and a crash-safe heartbeat file.

    The campaign layers (the domain pool, fuzz/inject, snapshotting)
    run for minutes to hours; this module is the one place their
    runtime behaviour is surfaced — counters, gauges and fixed-bucket
    latency histograms, plus lightweight spans recording the
    campaign → task → slice → snapshot nesting. Three exporters share
    one registry snapshot: human {!pp}, JSONL {!to_jsonl}, and
    Prometheus-style text {!to_prometheus}.

    {b Concurrency.} Counter and histogram updates are sharded per
    domain ({!Domain.DLS}): a pool worker increments a plain mutable
    cell it owns, with no atomics or locks on the hot path; shards are
    merged under a mutex only when a value is read or exported. Shards
    outlive their domain, so nothing is lost when workers join.

    {b Determinism.} Exported {e counter} values depend only on what
    the campaign did, never on [--jobs] or wall time — the same
    campaign at [--jobs 1] and [--jobs 4] dumps byte-identical
    counters. Everything timing-dependent (gauges, histograms, spans)
    is segregated behind the [?timing] flag on the exporters, mirroring
    the [?timing] key of the campaign reports, so byte-identity checks
    compare [~timing:false] output.

    {b Zero cost when off.} Every operation on {!null} (or a metric
    obtained from it) is a single load-and-branch; the machine's
    per-retired-instruction path is never instrumented directly —
    instruction and fault counters are bridged from
    [Telemetry] snapshots after a run. *)

type t
(** A metrics registry. *)

val create : unit -> t
(** A fresh live registry — campaigns that must prove [--jobs]
    determinism use private registries so process-wide activity cannot
    leak into the comparison. *)

val null : t
(** The disabled registry: every operation on it (and on metrics
    obtained from it) is a no-op. *)

val default : t
(** The process-wide registry. Always live; instrumented layers that
    are not handed an explicit registry record here, and [--metrics]
    dumps it. *)

val is_live : t -> bool

(** {1 Metrics}

    Metrics are interned by name: asking the same registry for the
    same name returns the same metric (asking with a different type
    raises [Invalid_argument]). Names follow Prometheus conventions
    ([snake_case], unit-suffixed, e.g. [pool_task_seconds]); a counter
    name may carry a fixed label set inline, e.g.
    [inject_verdicts_total{verdict="detected"}]. *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0;1], linearly interpolated within the
      bucket containing the target rank (the usual Prometheus
      estimate), exact at the observed min/max ends. [nan] when
      empty. *)
end

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t

val histogram : ?buckets:float array -> t -> string -> Histogram.t
(** [buckets] are strictly increasing upper bounds; an implicit [+Inf]
    bucket is always appended. Defaults to {!default_buckets}. *)

val default_buckets : float array
(** Latency buckets in seconds, 10µs to 30s. *)

val quantile_of : float list -> float -> float
(** Exact sample quantile (sorted, linear interpolation between
    order statistics) — for the small per-task wall-time lists the
    campaign reports carry. [nan] on the empty list. *)

(** {1 Spans}

    A span is one timed region with an id, an optional parent and a
    label. [with_] maintains a per-domain current-span stack, so
    nested instrumented regions parent automatically within a domain
    (a snapshot save inside a task slice records the slice as its
    parent); cross-domain nesting passes [?parent] explicitly. The
    registry keeps the first {!Span.cap} completed spans and counts
    the rest as dropped. *)

module Span : sig
  type span

  val none : span
  (** The null span: valid as an explicit [?parent], never recorded. *)

  val id : span -> int
  (** Unique per registry, starting at 1; 0 is {!none}. *)

  val enter : t -> ?parent:span -> string -> span
  val exit : t -> span -> unit

  val with_ : t -> ?parent:span -> string -> (unit -> 'a) -> 'a
  (** Times [f], records the span on return or exception. Parent
      defaults to {!current}. *)

  val current : t -> span option
  (** Innermost [with_] span on this domain, if any. *)

  val recorded : t -> int
  val dropped : t -> int
  val cap : int
end

(** {1 Exporters}

    All three render one consistent snapshot. [timing] defaults to
    [true]; [~timing:false] restricts output to the deterministic
    counter section (sorted by name) for byte-identity comparison. *)

val pp : Format.formatter -> t -> unit

val to_jsonl : ?timing:bool -> t -> string
(** One JSON object per line: [{"kind":"counter",...}] lines first
    (sorted by name), then gauge/histogram/span lines when [timing]. *)

val to_prometheus : ?timing:bool -> t -> string
(** Text exposition format: [# TYPE] comments, [_bucket]/[_sum]/
    [_count] series for histograms. *)

(** {1 Heartbeat}

    A cooperative liveness file: campaigns call {!Heartbeat.beat} from
    their (already serialized) per-result hook, and at most once per
    interval the payload is written atomically — temp file then
    [rename] — so a reader (or a SIGKILL) can never observe a torn
    file; at worst a stale one plus an orphaned [.tmp]. Write failures
    are swallowed: a full disk must not kill the campaign. *)

module Heartbeat : sig
  type t

  val create : ?interval_s:float -> path:string -> unit -> t
  (** [interval_s] defaults to 1.0. The first [beat] always writes. *)

  val path : t -> string

  val beat : t -> (unit -> string) -> unit
  (** Write [payload ()] to {!path} if the interval has elapsed. The
      thunk is only forced when a write happens. *)

  val force : t -> (unit -> string) -> unit
  (** Write unconditionally (campaign start and final state). *)

  val write_atomic : path:string -> string -> unit
  (** The underlying temp+rename write; raises on I/O failure. *)

  val staleness :
    interval_s:float -> now:float -> mtime:float -> [ `Fresh | `Stale of float ]
  (** The supervisor-side classification: a status file last written at
      [mtime] is [`Stale age] when [now - mtime > 2 *. interval_s] —
      one interval of legitimate silence plus one of scheduling slack.
      Exactly 2x is still [`Fresh] (the boundary belongs to the
      writer). A future [mtime] (clock skew between writer and prober)
      is [`Fresh]: skew must never reap a beating worker. Pure, so the
      boundary cases are testable without touching a filesystem. *)

  val probe :
    ?now:float -> interval_s:float -> string -> [ `Fresh | `Stale of float | `Missing ]
  (** {!staleness} of the file's mtime ([`Missing] when it cannot be
      stat'ed). [now] defaults to the current time; pass it explicitly
      to make a probe decision reproducible in tests. *)
end

val status_json :
  ?verdicts:(string * int) list ->
  ?p99_task_s:float ->
  tasks_done:int ->
  tasks_total:int ->
  elapsed_s:float ->
  unit ->
  string
(** The standard heartbeat payload ([cheri_c.status/v1]): progress,
    verdict counts so far, elapsed, a simple rate-based ETA and the
    p99 task latency when known. *)
