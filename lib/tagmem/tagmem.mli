(** Tagged physical memory.

    A flat byte store with one out-of-band tag bit per naturally
    aligned granule (256 bits by default, matching the paper's "a
    single tag bit per 256 bits of memory"). The tag marks the granule
    as holding a valid capability. The integrity rule is enforced
    here: any plain data store that touches a granule clears its tag,
    so a capability corrupted through the data path can never be
    dereferenced again (§4.2: "Conventional stores to an in-memory
    capability cause the tag bit to be cleared").

    Addresses are virtual addresses starting at 0; the simulator does
    not model translation (the paper's abstract machine always means
    virtual memory, §3). The core API takes addresses as native ints —
    the softcore computes addresses as unboxed int64s and narrows once,
    and an int argument never crosses the module boundary in a heap box
    (the dev profile compiles with -opaque, defeating cross-module
    inlining, so an int64 argument would cost one allocation per call).
    Accesses outside the configured size raise {!Bus_error} — that is a
    simulator configuration error, not a modelled trap. Callers still
    holding int64 addresses use the [_i64] wrappers in the legacy
    section below. *)

type t

exception Bus_error of int64

val create : ?granule:int -> size_bytes:int -> unit -> t
(** [create ~size_bytes ()] allocates zeroed memory with clear tags.
    [granule] is the tag granularity in bytes (default 32; must be a
    power of two and at least {!Cheri_core.Capability.byte_width} for
    capability stores to be representable). *)

val size : t -> int
val granule : t -> int

val set_sink : t -> Cheri_telemetry.Telemetry.Sink.t -> unit
(** Attach a telemetry sink. A live sink receives a [Tag_write] event
    for every capability store and a [Tag_clear] event whenever a
    plain data store detags a granule that held a valid capability
    (the collateral invalidation the tag-granularity ablation
    measures). The default {!Cheri_telemetry.Telemetry.Sink.null}
    keeps the data path on its uninstrumented fast loop. *)

val sink : t -> Cheri_telemetry.Telemetry.Sink.t

(** {1 Data path} — every write clears the tags of all touched granules. *)

val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit

val load_int : t -> int -> size:int -> int64
(** Little-endian load of [size] bytes (1, 2, 4 or 8), zero-extended. *)

val store_int : t -> int -> size:int -> int64 -> unit

val load_word : t -> int -> int64
(** [load_int ~size:8] without the size dispatch. *)

val store_word : t -> int -> int64 -> unit
(** [store_int ~size:8] without the size dispatch. *)

val load_bytes : t -> int -> len:int -> bytes
val store_bytes : t -> int -> bytes -> unit

(** {1 Capability path} *)

val load_cap : t -> int -> Cheri_core.Capability.t
(** Load 32 bytes plus the granule tag as a capability. The address
    must be capability-aligned; misalignment raises [Invalid_argument]
    (alignment is checked by the ISA before reaching memory). If the
    granule's tag is clear the result is the untagged bit pattern. *)

val store_cap : t -> int -> Cheri_core.Capability.t -> unit
(** Store 32 bytes and set/clear the granule tag from the capability's
    own tag. *)

val load_cap_fields :
  t -> int ->
  base:Bytes.t -> len:Bytes.t -> off:Bytes.t -> otype:Bytes.t -> pos:int ->
  int
(** Record-free [load_cap] for a struct-of-arrays register file: the
    base/length/offset words are written little-endian into the given
    lanes at byte offset [pos], the otype word (zero-extended from the
    spill's 32 bits) into [otype], and the return value packs perms in
    bits 0-7, sealed in bit 8 and the granule tag in bit 9.
    Bit-identical to [load_cap] followed by field projection. *)

val store_cap_fields :
  t -> int ->
  base:Bytes.t -> len:Bytes.t -> off:Bytes.t -> pos:int ->
  meta:int -> otype:int ->
  unit
(** Record-free [store_cap]: reads the three payload words from the
    lanes at [pos]; [meta] uses the [load_cap_fields] packing (bit 9 is
    the tag to store) and [otype]'s low 32 bits land in spill bits
    16-47. *)

val tag_at : t -> int -> bool
(** The tag of the granule containing this address. *)

val clear_tag_at : t -> int -> unit

(** {1 Fault-injection hooks}

    Used only by {!Cheri_inject} to model faults that happen *below*
    the architecture — a tag line flipping in SRAM, tag bits lost while
    a page is swapped (the failure mode of "Pitfalls in VM
    Implementation on CHERI"), a DMA write that bypasses the tag
    controller. They deliberately skip the §4.2 integrity rule and the
    telemetry events; no instruction-execution path calls them. *)

val set_tag_at : t -> int -> unit
(** Force the tag of the granule containing this address — forging
    validity onto whatever bytes are there. *)

val poke_raw : t -> int -> int -> unit
(** Overwrite one data byte {e without} clearing the granule tag: the
    hardware-fault analogue of {!store_byte}. A capability corrupted
    this way keeps its tag — exactly the corruption CHERI's tag bit
    does {e not} defend against (tags are not a checksum). *)

(** {1 LEGACY int64-addressed wrappers}

    The pre-collapse API took every address as an [int64]; these
    wrappers keep those callers compiling. Each re-checks the unsigned
    range against the store size before narrowing, so a huge or
    negative address raises [Bus_error] carrying the {e original}
    int64, byte-identical to the old behavior. New code should narrow
    once and call the int-addressed core; this section is slated for
    removal once the remaining campaign/GC/test callers migrate. *)

val load_byte_i64 : t -> int64 -> int
val store_byte_i64 : t -> int64 -> int -> unit
val load_int_i64 : t -> addr:int64 -> size:int -> int64
val store_int_i64 : t -> addr:int64 -> size:int -> int64 -> unit
val load_bytes_i64 : t -> addr:int64 -> len:int -> bytes
val store_bytes_i64 : t -> addr:int64 -> bytes -> unit
val load_cap_i64 : t -> addr:int64 -> Cheri_core.Capability.t
val store_cap_i64 : t -> addr:int64 -> Cheri_core.Capability.t -> unit
val tag_at_i64 : t -> int64 -> bool
val clear_tag_at_i64 : t -> int64 -> unit
val set_tag_at_i64 : t -> int64 -> unit
val poke_raw_i64 : t -> int64 -> int -> unit

(** {1 Snapshot hooks}

    Page-granular raw dump/load of the data and tag stores for the
    snapshot subsystem ({!Cheri_snapshot}). Like the fault-injection
    hooks these sit {e below} the architecture: [restore_pages]
    reinstates tag bits verbatim instead of letting the §4.2 integrity
    rule clear them, and neither path emits telemetry. A freshly
    created memory is all-zero with clear tags, so only nonzero pages
    need to travel — a 32 MiB address space with 2 MiB touched dumps
    as ~2 MiB. *)

val snapshot_pages : t -> page_bytes:int -> (int * string) list * (int * string) list
(** [(data_pages, tag_pages)]: every page (index, contents) of the
    respective store holding at least one nonzero byte, ascending by
    index. The final page of an odd-sized store may be short.
    [page_bytes] must be a positive multiple of 8 (the zero scan reads
    whole words); raises [Invalid_argument] otherwise. *)

val restore_pages :
  t -> page_bytes:int -> data:(int * string) list -> tags:(int * string) list -> unit
(** Zero both stores, then blit the given pages back — the exact
    inverse of {!snapshot_pages} under the same [page_bytes]. Raises
    [Invalid_argument] if a page falls outside the store (a snapshot
    for a differently sized memory; callers validate sizes first). *)

val count_tags : t -> int
(** Number of set tag bits — used by the garbage collector's root scan
    and by tests. *)

val iter_tagged : t -> (int64 -> unit) -> unit
(** Iterate the base address of every tagged granule, ascending. *)
