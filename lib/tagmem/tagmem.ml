open Cheri_util
module Telemetry = Cheri_telemetry.Telemetry

type t = {
  data : Bytes.t;
  tags : Bytes.t;  (* one bit per granule, packed *)
  granule : int;
  granule_shift : int;
  mutable sink : Telemetry.Sink.t;
}

exception Bus_error of int64

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(granule = 32) ~size_bytes () =
  if granule <= 0 || granule land (granule - 1) <> 0 then
    invalid_arg "Tagmem.create: granule must be a power of two";
  if size_bytes <= 0 || size_bytes mod granule <> 0 then
    invalid_arg "Tagmem.create: size must be a positive multiple of the granule";
  let granules = size_bytes / granule in
  {
    data = Bytes.make size_bytes '\000';
    tags = Bytes.make ((granules + 7) / 8) '\000';
    granule;
    granule_shift = log2 granule;
    sink = Telemetry.Sink.null;
  }

let size t = Bytes.length t.data
let granule t = t.granule
let set_sink t sink = t.sink <- sink
let sink t = t.sink

let check_range t addr len =
  let a = Int64.to_int addr in
  if Bits.uge addr (Int64.of_int (size t)) || a < 0 || a + len > size t || len < 0 then
    raise (Bus_error addr);
  a

let granule_index t a = a lsr t.granule_shift

let tag_bit t gi = Char.code (Bytes.get t.tags (gi lsr 3)) land (1 lsl (gi land 7)) <> 0

let set_tag_bit t gi v =
  let byte = Char.code (Bytes.get t.tags (gi lsr 3)) in
  let mask = 1 lsl (gi land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.tags (gi lsr 3) (Char.chr byte)

(* Clear the tags of every granule [a, a+len) touches. [collateral] is
   true on the data path — a plain store detagging a live capability is
   the §4.2 integrity rule firing, and telemetry counts those — and
   false when {!store_cap} intentionally overwrites a granule. *)
let clear_tags_in_range ?(collateral = true) t a len =
  if len > 0 then
    let first = granule_index t a and last = granule_index t (a + len - 1) in
    if Telemetry.Sink.is_null t.sink then
      for gi = first to last do
        set_tag_bit t gi false
      done
    else
      for gi = first to last do
        if tag_bit t gi then begin
          if collateral then
            Telemetry.Sink.record t.sink
              (Telemetry.Tag_clear { addr = Int64.of_int (gi lsl t.granule_shift) });
          set_tag_bit t gi false
        end
      done

let load_byte t addr =
  let a = check_range t addr 1 in
  Char.code (Bytes.get t.data a)

let store_byte t addr v =
  let a = check_range t addr 1 in
  Bytes.set t.data a (Char.chr (v land 0xff));
  clear_tags_in_range t a 1

let load_int t ~addr ~size:sz =
  let a = check_range t addr sz in
  match sz with
  | 1 -> Int64.of_int (Char.code (Bytes.get t.data a))
  | 2 -> Int64.of_int (Bytes.get_uint16_le t.data a)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data a)) 0xffffffffL
  | 8 -> Bytes.get_int64_le t.data a
  | _ -> invalid_arg "Tagmem.load_int: size must be 1, 2, 4 or 8"

let store_int t ~addr ~size:sz v =
  let a = check_range t addr sz in
  (match sz with
  | 1 -> Bytes.set t.data a (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
  | 2 -> Bytes.set_uint16_le t.data a (Int64.to_int (Int64.logand v 0xffffL))
  | 4 -> Bytes.set_int32_le t.data a (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le t.data a v
  | _ -> invalid_arg "Tagmem.store_int: size must be 1, 2, 4 or 8");
  clear_tags_in_range t a sz

let load_bytes t ~addr ~len =
  let a = check_range t addr len in
  Bytes.sub t.data a len

let store_bytes t ~addr b =
  let len = Bytes.length b in
  let a = check_range t addr len in
  Bytes.blit b 0 t.data a len;
  clear_tags_in_range t a len

let cap_width = Cheri_core.Capability.byte_width

let load_cap t ~addr =
  if not (Bits.is_aligned addr cap_width) then
    invalid_arg "Tagmem.load_cap: address must be capability-aligned";
  let a = check_range t addr cap_width in
  let words = Array.init 4 (fun i -> Bytes.get_int64_le t.data (a + (8 * i))) in
  let tag = tag_bit t (granule_index t a) in
  Cheri_core.Capability.of_words ~tag words

let store_cap t ~addr cap =
  if not (Bits.is_aligned addr cap_width) then
    invalid_arg "Tagmem.store_cap: address must be capability-aligned";
  let a = check_range t addr cap_width in
  let words = Cheri_core.Capability.to_words cap in
  Array.iteri (fun i w -> Bytes.set_int64_le t.data (a + (8 * i)) w) words;
  (* A capability store touches exactly one granule when the granule is
     >= the capability width; clear everything it covers first, then
     set the capability's own tag on its granule. *)
  clear_tags_in_range ~collateral:false t a cap_width;
  set_tag_bit t (granule_index t a) cap.Cheri_core.Capability.tag;
  if not (Telemetry.Sink.is_null t.sink) then
    Telemetry.Sink.record t.sink
      (Telemetry.Tag_write { addr; tag = cap.Cheri_core.Capability.tag })

let tag_at t addr =
  let a = check_range t addr 1 in
  tag_bit t (granule_index t a)

let clear_tag_at t addr =
  let a = check_range t addr 1 in
  set_tag_bit t (granule_index t a) false

(* -- fault-injection hooks ---------------------------------------------- *)
(* These two deliberately bypass the integrity rule: they model faults
   below the architecture (tag-line SEUs, tag loss during paging), not
   stores. Nothing on the execution path calls them. *)

let set_tag_at t addr =
  let a = check_range t addr 1 in
  set_tag_bit t (granule_index t a) true

let poke_raw t addr v =
  let a = check_range t addr 1 in
  Bytes.set t.data a (Char.chr (v land 0xff))

let count_tags t =
  let n = ref 0 in
  let granules = size t / t.granule in
  for gi = 0 to granules - 1 do
    if tag_bit t gi then incr n
  done;
  !n

let iter_tagged t f =
  let granules = size t / t.granule in
  for gi = 0 to granules - 1 do
    if tag_bit t gi then f (Int64.of_int (gi * t.granule))
  done
