module Telemetry = Cheri_telemetry.Telemetry

type t = {
  data : Bytes.t;
  tags : Bytes.t;  (* one bit per granule, packed *)
  granule : int;
  granule_shift : int;
  size64 : int64;  (* Bytes.length data, precomputed for the i64 range check *)
  mutable sink : Telemetry.Sink.t;
}

(* Same-module copy of Bits.uge: -opaque in the dev profile defeats
   cross-module inlining, and the range check runs once per memory
   access. *)
let[@inline] uge a b = not (Int64.add a Int64.min_int < Int64.add b Int64.min_int)

exception Bus_error of int64

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(granule = 32) ~size_bytes () =
  if granule <= 0 || granule land (granule - 1) <> 0 then
    invalid_arg "Tagmem.create: granule must be a power of two";
  if size_bytes <= 0 || size_bytes mod granule <> 0 then
    invalid_arg "Tagmem.create: size must be a positive multiple of the granule";
  let granules = size_bytes / granule in
  {
    data = Bytes.make size_bytes '\000';
    tags = Bytes.make ((granules + 7) / 8) '\000';
    granule;
    granule_shift = log2 granule;
    size64 = Int64.of_int size_bytes;
    sink = Telemetry.Sink.null;
  }

let size t = Bytes.length t.data
let granule t = t.granule
let set_sink t sink = t.sink <- sink
let sink t = t.sink

(* The core API is int-addressed: the softcore computes addresses as
   unboxed int64s and narrows once, so taking a native int here keeps
   the address out of a heap box at the module boundary (the dev
   profile compiles with -opaque, which defeats cross-module inlining,
   so an int64 argument would cost one allocation per call). *)
let[@inline] check_range t a len =
  if a < 0 || len < 0 || a + len > size t then raise (Bus_error (Int64.of_int a))

let[@inline] granule_index t a = a lsr t.granule_shift

let[@inline] tag_bit t gi = Char.code (Bytes.get t.tags (gi lsr 3)) land (1 lsl (gi land 7)) <> 0

let set_tag_bit t gi v =
  let byte = Char.code (Bytes.get t.tags (gi lsr 3)) in
  let mask = 1 lsl (gi land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.tags (gi lsr 3) (Char.chr byte)

(* Clear the tags of every granule [a, a+len) touches. [collateral] is
   true on the data path — a plain store detagging a live capability is
   the §4.2 integrity rule firing, and telemetry counts those — and
   false when {!store_cap} intentionally overwrites a granule.

   Fast path: plain data stores to untagged memory are the single most
   common memory operation, so first check whether the covering tag
   byte(s) hold any set bit at all. When they are already zero there is
   nothing to clear (and nothing for telemetry to report), and the
   per-granule loop is skipped entirely. A store of <= 8*granule bytes
   covers granules within one or two tag bytes, so the check is one or
   two byte loads. *)
let clear_tags_in_range ?(collateral = true) t a len =
  if len > 0 then begin
    let first = granule_index t a and last = granule_index t (a + len - 1) in
    let fb = first lsr 3 and lb = last lsr 3 in
    let untouched =
      if fb = lb then
        (* all covered granules fall in one tag byte: mask out exactly
           the bits [first..last] (at most 8, so the shift is safe) *)
        let m = ((1 lsl (last - first + 1)) - 1) lsl (first land 7) in
        Char.code (Bytes.unsafe_get t.tags fb) land m = 0
      else
        (* conservative multi-byte check: any set bit in a covering
           byte — even outside the range — takes the slow path *)
        let rec all_zero i =
          i > lb || (Char.code (Bytes.unsafe_get t.tags i) = 0 && all_zero (i + 1))
        in
        all_zero fb
    in
    if not untouched then
      if Telemetry.Sink.is_null t.sink then
        for gi = first to last do
          set_tag_bit t gi false
        done
      else
        for gi = first to last do
          if tag_bit t gi then begin
            if collateral then
              Telemetry.Sink.record t.sink
                (Telemetry.Tag_clear { addr = Int64.of_int (gi lsl t.granule_shift) });
            set_tag_bit t gi false
          end
        done
  end

(* -- data path ----------------------------------------------------------- *)

let load_byte t a =
  check_range t a 1;
  Char.code (Bytes.get t.data a)

let store_byte t a v =
  check_range t a 1;
  Bytes.set t.data a (Char.chr (v land 0xff));
  clear_tags_in_range t a 1

let[@inline] load_int t a ~size:sz =
  check_range t a sz;
  match sz with
  | 1 -> Int64.of_int (Char.code (Bytes.get t.data a))
  | 2 -> Int64.of_int (Bytes.get_uint16_le t.data a)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data a)) 0xffffffffL
  | 8 -> Bytes.get_int64_le t.data a
  | _ -> invalid_arg "Tagmem.load_int: size must be 1, 2, 4 or 8"

let[@inline] store_int t a ~size:sz v =
  check_range t a sz;
  (match sz with
  | 1 -> Bytes.set t.data a (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
  | 2 -> Bytes.set_uint16_le t.data a (Int64.to_int (Int64.logand v 0xffffL))
  | 4 -> Bytes.set_int32_le t.data a (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le t.data a v
  | _ -> invalid_arg "Tagmem.store_int: size must be 1, 2, 4 or 8");
  clear_tags_in_range t a sz

(* Width-specialized word path: the 8-byte case is the overwhelming
   majority of scalar traffic, so give the softcore a variant with no
   size dispatch. Semantics identical to [load_int]/[store_int] at
   [~size:8]. *)
let[@inline] load_word t a =
  check_range t a 8;
  Bytes.get_int64_le t.data a

let[@inline] store_word t a v =
  check_range t a 8;
  Bytes.set_int64_le t.data a v;
  clear_tags_in_range t a 8

let load_bytes t a ~len =
  check_range t a len;
  Bytes.sub t.data a len

let store_bytes t a b =
  let len = Bytes.length b in
  check_range t a len;
  Bytes.blit b 0 t.data a len;
  clear_tags_in_range t a len

let cap_width = Cheri_core.Capability.byte_width

(* The capability spill/fill paths move the four 64-bit words directly
   between the byte store and the capability record — no intermediate
   array, no closure: these run once per CLC/CSC retired. *)

(* The meta word only carries bits 0-47 (perms, sealed, otype), so read
   the six live bytes into a native int instead of boxing an Int64.
   [a] has already been bounds-checked for the full 32-byte capability,
   so the byte reads at a+24 .. a+29 are in range. *)
let[@inline] meta_int t a =
  let g i = Char.code (Bytes.unsafe_get t.data (a + 24 + i)) in
  g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24) lor (g 4 lsl 32) lor (g 5 lsl 40)

let load_cap t a =
  if a land (cap_width - 1) <> 0 then
    invalid_arg "Tagmem.load_cap: address must be capability-aligned";
  check_range t a cap_width;
  Cheri_core.Capability.of_raw_words
    ~tag:(tag_bit t (granule_index t a))
    ~base:(Bytes.get_int64_le t.data a)
    ~length:(Bytes.get_int64_le t.data (a + 8))
    ~offset:(Bytes.get_int64_le t.data (a + 16))
    ~meta:(meta_int t a)

let store_cap t a cap =
  if a land (cap_width - 1) <> 0 then
    invalid_arg "Tagmem.store_cap: address must be capability-aligned";
  check_range t a cap_width;
  Bytes.set_int64_le t.data a cap.Cheri_core.Capability.base;
  Bytes.set_int64_le t.data (a + 8) cap.Cheri_core.Capability.length;
  Bytes.set_int64_le t.data (a + 16) cap.Cheri_core.Capability.offset;
  Bytes.set_int64_le t.data (a + 24) (Cheri_core.Capability.meta_word cap);
  (* A capability store touches exactly one granule when the granule is
     >= the capability width; clear everything it covers first, then
     set the capability's own tag on its granule. *)
  clear_tags_in_range ~collateral:false t a cap_width;
  set_tag_bit t (granule_index t a) cap.Cheri_core.Capability.tag;
  if not (Telemetry.Sink.is_null t.sink) then
    Telemetry.Sink.record t.sink
      (Telemetry.Tag_write
         { addr = Int64.of_int a; tag = cap.Cheri_core.Capability.tag })

(* Record-free capability transfer for the softcore's struct-of-arrays
   register file: the three payload words move between the byte store
   and caller-owned 64-bit lanes at [pos], and the book-keeping bits
   travel as one native int (perms in bits 0-7 and sealed in bit 8 —
   the spill encoding — plus the granule tag in bit 9), so a CLC/CSC
   never materializes a [Capability.t]. Bit-identical to
   {!load_cap}/{!store_cap} composed with the record constructors. *)

let load_cap_fields t a ~base ~len ~off ~otype ~pos =
  if a land (cap_width - 1) <> 0 then
    invalid_arg "Tagmem.load_cap: address must be capability-aligned";
  check_range t a cap_width;
  Bytes.set_int64_le base pos (Bytes.get_int64_le t.data a);
  Bytes.set_int64_le len pos (Bytes.get_int64_le t.data (a + 8));
  Bytes.set_int64_le off pos (Bytes.get_int64_le t.data (a + 16));
  let m = meta_int t a in
  Bytes.set_int64_le otype pos (Int64.of_int ((m lsr 16) land 0xffffffff));
  (m land 0x1ff) lor (if tag_bit t (granule_index t a) then 0x200 else 0)

let store_cap_fields t a ~base ~len ~off ~pos ~meta ~otype =
  if a land (cap_width - 1) <> 0 then
    invalid_arg "Tagmem.store_cap: address must be capability-aligned";
  check_range t a cap_width;
  Bytes.set_int64_le t.data a (Bytes.get_int64_le base pos);
  Bytes.set_int64_le t.data (a + 8) (Bytes.get_int64_le len pos);
  Bytes.set_int64_le t.data (a + 16) (Bytes.get_int64_le off pos);
  (* spill meta word: perms + sealed in the low 9 bits, otype's low 32
     bits in bits 16-47 — exactly [Capability.meta_word] *)
  Bytes.set_int64_le t.data (a + 24)
    (Int64.of_int ((meta land 0x1ff) lor ((otype land 0xffffffff) lsl 16)));
  clear_tags_in_range ~collateral:false t a cap_width;
  let tag = meta land 0x200 <> 0 in
  set_tag_bit t (granule_index t a) tag;
  if not (Telemetry.Sink.is_null t.sink) then
    Telemetry.Sink.record t.sink (Telemetry.Tag_write { addr = Int64.of_int a; tag })

let tag_at t a =
  check_range t a 1;
  tag_bit t (granule_index t a)

let clear_tag_at t a =
  check_range t a 1;
  set_tag_bit t (granule_index t a) false

(* -- fault-injection hooks ---------------------------------------------- *)
(* These two deliberately bypass the integrity rule: they model faults
   below the architecture (tag-line SEUs, tag loss during paging), not
   stores. Nothing on the execution path calls them. *)

let set_tag_at t a =
  check_range t a 1;
  set_tag_bit t (granule_index t a) true

let poke_raw t a v =
  check_range t a 1;
  Bytes.set t.data a (Char.chr (v land 0xff))

(* -- legacy int64-addressed wrappers ------------------------------------- *)
(* Compatibility layer for callers that still hold addresses as int64
   (campaign harnesses, GC root scans, tests). Each wrapper re-checks
   the unsigned range against the store size before narrowing, so a
   huge/negative int64 address raises [Bus_error addr] with the
   original address — exactly the behavior of the pre-collapse dual
   API. New code should narrow once and use the int-addressed core
   above; these exist only until the remaining callers migrate. *)

let[@inline] narrow t addr =
  if uge addr t.size64 then raise (Bus_error addr);
  Int64.to_int addr

let load_byte_i64 t addr = load_byte t (narrow t addr)
let store_byte_i64 t addr v = store_byte t (narrow t addr) v
let load_int_i64 t ~addr ~size:sz = load_int t (narrow t addr) ~size:sz
let store_int_i64 t ~addr ~size:sz v = store_int t (narrow t addr) ~size:sz v
let load_bytes_i64 t ~addr ~len = load_bytes t (narrow t addr) ~len
let store_bytes_i64 t ~addr b = store_bytes t (narrow t addr) b
let load_cap_i64 t ~addr = load_cap t (narrow t addr)
let store_cap_i64 t ~addr cap = store_cap t (narrow t addr) cap
let tag_at_i64 t addr = tag_at t (narrow t addr)
let clear_tag_at_i64 t addr = clear_tag_at t (narrow t addr)
let set_tag_at_i64 t addr = set_tag_at t (narrow t addr)
let poke_raw_i64 t addr v = poke_raw t (narrow t addr) v

(* -- snapshot hooks ------------------------------------------------------ *)
(* Raw page-granular dump/load of the two underlying stores, bypassing
   the integrity rule (a restore must reproduce tags exactly, not clear
   them). Only the snapshot subsystem calls these. *)

(* Is [buf.[off .. off+len)] all zero? Scan 8 bytes at a time; [len] is
   a whole page except possibly the last page of an odd-sized store. *)
let page_is_zero buf off len =
  let words = len / 8 in
  let rec go i =
    if i < words then Bytes.get_int64_le buf (off + (i * 8)) = 0L && go (i + 1)
    else
      let rec tail j = j >= len || (Bytes.get buf (off + j) = '\000' && tail (j + 1)) in
      tail (words * 8)
  in
  go 0

let dump_pages buf ~page_bytes =
  let n = Bytes.length buf in
  let acc = ref [] in
  let idx = ref ((n + page_bytes - 1) / page_bytes - 1) in
  while !idx >= 0 do
    let off = !idx * page_bytes in
    let len = min page_bytes (n - off) in
    if not (page_is_zero buf off len) then
      acc := (!idx, Bytes.sub_string buf off len) :: !acc;
    decr idx
  done;
  !acc

let snapshot_pages t ~page_bytes =
  if page_bytes <= 0 || page_bytes mod 8 <> 0 then
    invalid_arg "Tagmem.snapshot_pages: page size must be a positive multiple of 8";
  (dump_pages t.data ~page_bytes, dump_pages t.tags ~page_bytes)

let load_pages buf ~page_bytes pages =
  let n = Bytes.length buf in
  Bytes.fill buf 0 n '\000';
  List.iter
    (fun (idx, (page : string)) ->
      let off = idx * page_bytes in
      if idx < 0 || off + String.length page > n then
        invalid_arg "Tagmem.restore_pages: page outside the store";
      Bytes.blit_string page 0 buf off (String.length page))
    pages

let restore_pages t ~page_bytes ~data ~tags =
  if page_bytes <= 0 || page_bytes mod 8 <> 0 then
    invalid_arg "Tagmem.restore_pages: page size must be a positive multiple of 8";
  load_pages t.data ~page_bytes data;
  load_pages t.tags ~page_bytes tags

let count_tags t =
  let n = ref 0 in
  let granules = size t / t.granule in
  for gi = 0 to granules - 1 do
    if tag_bit t gi then incr n
  done;
  !n

let iter_tagged t f =
  let granules = size t / t.granule in
  for gi = 0 to granules - 1 do
    if tag_bit t gi then f (Int64.of_int (gi * t.granule))
  done
