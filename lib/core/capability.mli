(** CHERI memory capabilities.

    A capability is an unforgeable, hardware-protected reference to a
    region of virtual memory. CHERIv2 capabilities are the triple
    [(base, length, perms)]; CHERIv3 "fat-capabilities" (the paper's
    contribution, §4.1) add an [offset] so the capability carries a
    full fat-pointer cursor [base + offset] that may roam outside the
    bounds, with the bounds enforced only at dereference time.

    Both revisions share this representation — a v2 capability is one
    whose offset is pinned to zero by the v2 operation set (see
    {!Cap_ops}). The in-memory footprint is 256 bits (four 64-bit
    words) plus one out-of-band tag bit kept by the tagged memory. *)

type t = private {
  tag : bool;  (** valid-capability bit; cleared caps trap on use *)
  base : int64;  (** start of the addressable region *)
  length : int64;  (** size of the region in bytes; top = base + length *)
  offset : int64;  (** cursor relative to base; the pointer is base+offset *)
  perms : Perms.t;
  sealed : bool;  (** sealed capabilities are immutable, unusable tokens *)
  otype : int64;  (** object type a sealed capability was sealed with *)
}

val null : t
(** The canonical null capability: all fields zero, tag clear. Casting
    the integer 0 to a pointer yields exactly this value (§4.2), and
    integers stored "in a pointer" ([intcap_t]) are offsets from it. *)

val make : base:int64 -> length:int64 -> perms:Perms.t -> t
(** A fresh tagged capability with offset 0. Only the allocator,
    linker, and machine reset logic may call this — it is the moral
    equivalent of privileged capability fabrication. Raises
    [Invalid_argument] if [base + length] overflows. *)

val make_untagged : base:int64 -> length:int64 -> offset:int64 -> perms:Perms.t -> t
(** An untagged capability pattern, e.g. the result of loading 32 bytes
    of plain data into a capability register. *)

val of_fields_unchecked :
  tag:bool ->
  base:int64 ->
  length:int64 ->
  offset:int64 ->
  perms:Perms.t ->
  sealed:bool ->
  otype:int64 ->
  t
(** Rebuild a capability from every field verbatim, with no invariant
    checks. This is the snapshot-restore constructor: a machine image
    must round-trip {e any} register content a run can produce —
    including fault-injected capabilities whose [base + length]
    overflows (rejected by {!make}) or whose [otype] does not fit the
    32-bit field of the spill {!meta_word}. Nothing on an execution
    path may call this. *)

val with_offset_unchecked : t -> int64 -> t
(** Replace the offset without any representability check. Used by the
    v3 operation set, where out-of-bounds cursors are legal. *)

val with_bounds_unchecked : t -> base:int64 -> length:int64 -> offset:int64 -> t
(** Replace bounds and offset, keeping tag and permissions. This is
    the raw datapath write used by {!Cap_ops}; monotonicity is checked
    there, not here. *)

val clear_tag : t -> t

val seal_unchecked : t -> otype:int64 -> t
(** Mark sealed with the given object type. Authority checks live in
    {!Cap_ops.c_seal}. *)

val unseal_unchecked : t -> t
val address : t -> int64
(** The pointer value: [base + offset] (wrapping 64-bit addition). *)

val top : t -> int64
(** One past the last addressable byte: [base + length]. *)

val is_null : t -> bool
val in_bounds : t -> addr:int64 -> size:int -> bool
(** Whether an access of [size] bytes at absolute address [addr] lies
    within [base, top). *)

val check_access : t -> addr:int64 -> size:int -> perm:Perms.perm -> (unit, Cap_fault.t) result
(** The dereference-time check performed by every capability load and
    store: tag set, not sealed, permission present, whole access in
    bounds. *)

val restrict_perms : t -> Perms.t -> t
(** Intersect permissions; never grows rights. Keeps the tag. *)

val subset_of : t -> t -> bool
(** [subset_of c parent] — the monotonicity relation: [c]'s bounds lie
    within [parent]'s and its permissions are a subset. The offset is
    ignored (it grants no rights). Untagged [c] is a subset of
    anything. *)

val equal : t -> t -> bool

val meta_word : t -> int64
(** Word 3 of the spill encoding: perms in bits 0-7, the sealed flag in
    bit 8, the object type in bits 16-47. *)

val of_raw_words :
  tag:bool -> base:int64 -> length:int64 -> offset:int64 -> meta:int -> t
(** Rebuild a capability from the four spill words passed individually —
    the allocation-lean path {!Cheri_tagmem} uses so a capability load
    moves four words without an intermediate array. [meta] is a native
    int because every encoded bit (perms, sealed, otype) sits in bits
    0-47; an unboxed argument keeps the fill path allocation-free. *)

val to_words : t -> int64 array
(** 256-bit spill encoding as four words: base, length, offset+perms
    packed per {!of_words}. The tag travels out of band. *)

val of_words : tag:bool -> int64 array -> t
(** Inverse of {!to_words}; raises [Invalid_argument] on a wrong-sized
    array. *)

val byte_width : int
(** Bytes occupied in memory: 32. *)

val pp : Format.formatter -> t -> unit
