(** Capability permission bits.

    A capability grants a subset of these rights to the region it
    references (paper §4: "the permissions field permits additional
    hardware-checked constraints"). Permissions only ever decrease as
    capabilities are derived; see {!Capability} for the monotonicity
    invariant. *)

type perm =
  | Load  (** read data through the capability *)
  | Store  (** write data through the capability *)
  | Execute  (** fetch instructions through the capability *)
  | Load_cap  (** load tagged capabilities through the capability *)
  | Store_cap  (** store tagged capabilities through the capability *)
  | Store_local
      (** store non-global capabilities; used by compartment boundaries *)
  | Global  (** capability may be freely propagated between compartments *)
  | Seal  (** may seal and unseal capabilities (CSeal/CUnseal authority) *)

type t
(** An immutable set of permissions. *)

val empty : t
val all : t
(** Every permission; the rights of the initial default data capability. *)

val of_list : perm -> perm list -> t
(** [of_list p ps] builds the set containing [p] and all of [ps]. *)

val add : perm -> t -> t
val remove : perm -> t -> t
val mem : perm -> t -> bool
val inter : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] is true when every permission in [a] is also in [b]. *)

val equal : t -> t -> bool

val read_only : t
(** [all] minus {!Store} and {!Store_cap}: the rights conferred by the
    paper's hardware-enforced [__input] qualifier. *)

val write_only : t
(** [all] minus {!Load} and {!Load_cap}: the [__output] qualifier. *)

val data_rw : t
(** Load and store of plain data only — no capability traffic, no
    execute. What a sandboxed data buffer receives. *)

val to_bits : t -> int64
(** Dense bit encoding used when a capability is spilled to memory. *)

val of_bits : int64 -> t

val of_bits_int : int -> t
(** {!of_bits} for a meta word already held as a native int — the
    allocation-free decode used by the capability fill path. *)

val to_bits_int : t -> int
(** {!to_bits} as a native int — the allocation-free encode used by the
    softcore's struct-of-arrays capability register file when it packs
    perms/sealed/tag into one meta int per register. *)

val bit_of : perm -> int
(** The bit index of one permission in the dense encoding — lets hot
    paths test a pre-computed [1 lsl bit_of p] mask against
    {!to_bits_int} without consing a set. *)

val pp : Format.formatter -> t -> unit
