open Cheri_util

type revision = V2 | V3

let pp_revision ppf = function
  | V2 -> Format.pp_print_string ppf "CHERIv2"
  | V3 -> Format.pp_print_string ppf "CHERIv3"

let c_get_base (c : Capability.t) = c.base
let c_get_len (c : Capability.t) = c.length
let c_get_offset (c : Capability.t) = c.offset
let c_get_perm (c : Capability.t) = c.perms
let c_get_tag (c : Capability.t) = c.tag
let c_and_perm = Capability.restrict_perms
let c_clear_tag = Capability.clear_tag

let sealed_err what (c : Capability.t) =
  if c.sealed && c.tag then Error (Cap_fault.Seal_violation what) else Ok ()

let c_inc_base rev (c : Capability.t) delta =
  if not c.tag then Error Cap_fault.Tag_violation
  else if c.sealed then Error (Cap_fault.Seal_violation "CIncBase on a sealed capability")
  else if Bits.ugt delta c.length then Error Cap_fault.Length_violation
  else
    let base = Int64.add c.base delta in
    let length = Int64.sub c.length delta in
    let offset =
      match rev with V2 -> 0L | V3 -> Int64.sub c.offset delta
    in
    Ok (Capability.with_bounds_unchecked c ~base ~length ~offset)

let c_set_len (c : Capability.t) len =
  if not c.tag then Error Cap_fault.Tag_violation
  else if c.sealed then Error (Cap_fault.Seal_violation "CSetLen on a sealed capability")
  else if Bits.ugt len c.length then Error Cap_fault.Length_violation
  else Ok (Capability.with_bounds_unchecked c ~base:c.base ~length:len ~offset:c.offset)

let c_inc_offset rev (c : Capability.t) delta =
  match rev with
  | V2 -> Error (Cap_fault.Unsupported "CIncOffset (CHERIv3 only)")
  | V3 -> (
      match sealed_err "CIncOffset on a sealed capability" c with
      | Error _ as e -> e
      | Ok () -> Ok (Capability.with_offset_unchecked c (Int64.add c.offset delta)))

let c_set_offset rev (c : Capability.t) offset =
  match rev with
  | V2 -> Error (Cap_fault.Unsupported "CSetOffset (CHERIv3 only)")
  | V3 -> (
      match sealed_err "CSetOffset on a sealed capability" c with
      | Error _ as e -> e
      | Ok () -> Ok (Capability.with_offset_unchecked c offset))

(* Exception-flavoured variants of the hottest v3 modify operations.
   The [Ok cap] wrapper on the Result forms costs two words per retired
   instruction on the softcore's dominant opcode class (cap_modify is
   ~13% of the Dhrystone mix); raising on the rare fault path instead
   keeps the common path allocation-free. Only the V3 semantics are
   provided — the V2 paths fault far more often and stay on Result. *)
exception Cap_error of Cap_fault.t

let c_inc_offset_exn (c : Capability.t) delta =
  if c.sealed && c.tag then
    raise (Cap_error (Cap_fault.Seal_violation "CIncOffset on a sealed capability"));
  Capability.with_offset_unchecked c (Int64.add c.offset delta)

let c_set_offset_exn (c : Capability.t) offset =
  if c.sealed && c.tag then
    raise (Cap_error (Cap_fault.Seal_violation "CSetOffset on a sealed capability"));
  Capability.with_offset_unchecked c offset

let c_from_ptr_exn ~ddc value =
  if not ddc.Capability.tag then raise (Cap_error Cap_fault.Tag_violation);
  if value = 0L then Capability.null else Capability.with_offset_unchecked ddc value

let c_ptr_cmp (a : Capability.t) (b : Capability.t) =
  match (a.tag, b.tag) with
  | false, true -> -1
  | true, false -> 1
  | _ -> Bits.ucompare (Capability.address a) (Capability.address b)

let c_from_ptr ~ddc value =
  if not (c_get_tag ddc) then Error Cap_fault.Tag_violation
  else if value = 0L then Ok Capability.null
  else Ok (Capability.with_offset_unchecked ddc value)

let c_to_ptr (c : Capability.t) ~relative_to =
  if not c.tag then 0L
  else
    let addr = Capability.address c in
    if Capability.in_bounds relative_to ~addr ~size:0 then Int64.sub addr relative_to.Capability.base
    else 0L

let ptr_add rev c delta =
  match rev with
  | V3 -> c_inc_offset V3 c delta
  | V2 ->
      if Int64.compare delta 0L < 0 then Error Cap_fault.Representation_violation
      else c_inc_base V2 c delta

let ptr_sub rev a b =
  match rev with
  | V2 -> Error (Cap_fault.Unsupported "pointer subtraction")
  | V3 -> Ok (Int64.sub (Capability.address a) (Capability.address b))

(* CSeal cd, cs, ct: seal [cs] with the object type named by [ct]'s
   address; [ct] must be tagged, unsealed, and carry the Seal
   permission. CUnseal reverses it under the same authority, checking
   that the authority's cursor names the matching type. *)
let c_seal ~authority (c : Capability.t) =
  if not (c_get_tag c) then Error Cap_fault.Tag_violation
  else if c.sealed then Error (Cap_fault.Seal_violation "capability is already sealed")
  else if not (c_get_tag authority) then Error Cap_fault.Tag_violation
  else if authority.Capability.sealed then
    Error (Cap_fault.Seal_violation "sealing authority is itself sealed")
  else if not (Perms.mem Perms.Seal authority.Capability.perms) then
    Error (Cap_fault.Perm_violation Perms.Seal)
  else Ok (Capability.seal_unchecked c ~otype:(Capability.address authority))

let c_unseal ~authority (c : Capability.t) =
  if not (c_get_tag c) then Error Cap_fault.Tag_violation
  else if not c.Capability.sealed then
    Error (Cap_fault.Seal_violation "capability is not sealed")
  else if not (c_get_tag authority) then Error Cap_fault.Tag_violation
  else if authority.Capability.sealed then
    Error (Cap_fault.Seal_violation "unsealing authority is itself sealed")
  else if not (Perms.mem Perms.Seal authority.Capability.perms) then
    Error (Cap_fault.Perm_violation Perms.Seal)
  else if Capability.address authority <> c.Capability.otype then
    Error (Cap_fault.Seal_violation "object type does not match the authority")
  else Ok (Capability.unseal_unchecked c)

let int_to_cap _rev value = Capability.with_offset_unchecked Capability.null value
let cap_to_int c = Capability.address c
let load_check c ~addr ~size = Capability.check_access c ~addr ~size ~perm:Perms.Load
let store_check c ~addr ~size = Capability.check_access c ~addr ~size ~perm:Perms.Store
