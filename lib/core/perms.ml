type perm =
  | Load
  | Store
  | Execute
  | Load_cap
  | Store_cap
  | Store_local
  | Global
  | Seal

let all_perms = [ Load; Store; Execute; Load_cap; Store_cap; Store_local; Global; Seal ]

let bit_of_perm = function
  | Load -> 0
  | Store -> 1
  | Execute -> 2
  | Load_cap -> 3
  | Store_cap -> 4
  | Store_local -> 5
  | Global -> 6
  | Seal -> 7

type t = int

let empty = 0
let all = List.fold_left (fun acc p -> acc lor (1 lsl bit_of_perm p)) 0 all_perms
let add p t = t lor (1 lsl bit_of_perm p)
let remove p t = t land lnot (1 lsl bit_of_perm p)
let mem p t = t land (1 lsl bit_of_perm p) <> 0
let of_list p ps = List.fold_left (fun acc q -> add q acc) (add p empty) ps
let inter a b = a land b
let subset a b = a land b = a
let equal (a : t) b = a = b
let read_only = remove Store (remove Store_cap all)
let write_only = remove Load (remove Load_cap all)
let data_rw = of_list Load [ Store; Global ]
let to_bits t = Int64.of_int t
let of_bits b = Int64.to_int (Int64.logand b 0xffL)
let[@inline] of_bits_int b = b land 0xff
let[@inline] to_bits_int t = t
let bit_of = bit_of_perm

let name = function
  | Load -> "load"
  | Store -> "store"
  | Execute -> "execute"
  | Load_cap -> "load_cap"
  | Store_cap -> "store_cap"
  | Store_local -> "store_local"
  | Global -> "global"
  | Seal -> "seal"

let pp ppf t =
  let names = List.filter_map (fun p -> if mem p t then Some (name p) else None) all_perms in
  Format.fprintf ppf "{%s}" (String.concat "," names)
