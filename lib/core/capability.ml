type t = {
  tag : bool;
  base : int64;
  length : int64;
  offset : int64;
  perms : Perms.t;
  sealed : bool;
  otype : int64;
}

(* Local copies of the Bits unsigned comparisons: the dev profile
   compiles with -opaque, which defeats cross-module inlining, and
   these run on the per-instruction bounds-check path where a boxed
   Int64 argument per call is measurable. Same-module [@inline]
   definitions unbox fully under both profiles. *)
let[@inline] ult a b = Int64.add a Int64.min_int < Int64.add b Int64.min_int
let[@inline] ule a b = not (ult b a)
let[@inline] uge a b = not (ult a b)

let null =
  {
    tag = false;
    base = 0L;
    length = 0L;
    offset = 0L;
    perms = Perms.empty;
    sealed = false;
    otype = 0L;
  }

let make ~base ~length ~perms =
  let top = Int64.add base length in
  if ult top base then invalid_arg "Capability.make: base + length overflows";
  { tag = true; base; length; offset = 0L; perms; sealed = false; otype = 0L }

let make_untagged ~base ~length ~offset ~perms =
  { tag = false; base; length; offset; perms; sealed = false; otype = 0L }

(* No invariant is enforced here on purpose: snapshot restore must be
   able to reproduce *any* bit pattern a running machine can hold,
   including fault-injected capabilities whose base+length overflows
   (which [make] rejects) or whose otype exceeds the 32 bits the spill
   meta word carries. *)
let of_fields_unchecked ~tag ~base ~length ~offset ~perms ~sealed ~otype =
  { tag; base; length; offset; perms; sealed; otype }
let with_offset_unchecked t offset = { t with offset }
let with_bounds_unchecked t ~base ~length ~offset = { t with base; length; offset }
let clear_tag t = { t with tag = false }
let seal_unchecked t ~otype = { t with sealed = true; otype }
let unseal_unchecked t = { t with sealed = false; otype = 0L }
let[@inline] address t = Int64.add t.base t.offset
let[@inline] top t = Int64.add t.base t.length
let is_null t = (not t.tag) && t.base = 0L && t.length = 0L && t.offset = 0L

let[@inline] in_bounds t ~addr ~size =
  let last = Int64.add addr (Int64.of_int size) in
  uge addr t.base && ule last (top t) && uge last addr

let check_access t ~addr ~size ~perm =
  if not t.tag then Error Cap_fault.Tag_violation
  else if t.sealed then Error (Cap_fault.Seal_violation "dereference of a sealed capability")
  else if not (Perms.mem perm t.perms) then Error (Cap_fault.Perm_violation perm)
  else if not (in_bounds t ~addr ~size) then
    Error (Cap_fault.Bounds_violation { addr; base = t.base; top = top t })
  else Ok ()

let restrict_perms t perms = { t with perms = Perms.inter t.perms perms }

let subset_of c parent =
  (not c.tag)
  || (parent.tag
     && uge c.base parent.base
     && ule (top c) (top parent)
     && Perms.subset c.perms parent.perms)

let equal a b =
  a.tag = b.tag && a.base = b.base && a.length = b.length && a.offset = b.offset
  && Perms.equal a.perms b.perms
  && a.sealed = b.sealed && a.otype = b.otype

(* Spill layout (little-endian word order):
   word 0: base
   word 1: length
   word 2: offset
   word 3: perms in bits 0-7, sealed in bit 8, otype in bits 16-47 *)
let meta_word t =
  let meta = Perms.to_bits t.perms in
  let meta = if t.sealed then Int64.logor meta 0x100L else meta in
  Int64.logor meta (Int64.shift_left (Int64.logand t.otype 0xffffffffL) 16)

(* [meta] travels as a native int: every decoded bit (perms 0-7, sealed
   8, otype 16-47) sits below bit 62, so the narrowing loses nothing,
   and an int argument keeps the per-CLC decode allocation-free. *)
let of_raw_words ~tag ~base ~length ~offset ~meta =
  let otype = (meta lsr 16) land 0xffffffff in
  {
    tag;
    base;
    length;
    offset;
    perms = Perms.of_bits_int meta;
    sealed = meta land 0x100 <> 0;
    (* share the static zero: almost every capability in memory is
       unsealed, and this field would otherwise box a fresh 0L per CLC *)
    otype = (if otype = 0 then 0L else Int64.of_int otype);
  }

let to_words t = [| t.base; t.length; t.offset; meta_word t |]

let of_words ~tag words =
  if Array.length words <> 4 then invalid_arg "Capability.of_words: expected 4 words";
  of_raw_words ~tag ~base:words.(0) ~length:words.(1) ~offset:words.(2)
    ~meta:(Int64.to_int words.(3))

let byte_width = 32

let pp ppf t =
  Format.fprintf ppf "cap{%c base=0x%Lx len=0x%Lx off=0x%Lx perms=%a%s}"
    (if t.tag then 'v' else '-')
    t.base t.length t.offset Perms.pp t.perms
    (if t.sealed then Printf.sprintf " sealed:%Ld" t.otype else "")
