(** Instruction-level capability semantics for the two ISA revisions.

    These functions are the executable specification of the capability
    coprocessor: the CHERIv2 operation set (monotonic base/length
    manipulation, no pointer subtraction) and the CHERIv3 additions of
    Table 2 ([CIncOffset], [CSetOffset], [CGetOffset], [CPtrCmp],
    [CFromPtr], [CToPtr]). The ISA simulator and the abstract-machine
    pointer models both execute through this module, so Table 3 and
    Figures 1–3 share one source of truth for what each revision
    permits. *)

type revision = V2 | V3

val pp_revision : Format.formatter -> revision -> unit

(** {1 Field accessors (CGetBase / CGetLen / CGetOffset / CGetPerm / CGetTag)} *)

val c_get_base : Capability.t -> int64
val c_get_len : Capability.t -> int64
val c_get_offset : Capability.t -> int64
val c_get_perm : Capability.t -> Perms.t
val c_get_tag : Capability.t -> bool

(** {1 Monotonic manipulation (both revisions)} *)

val c_and_perm : Capability.t -> Perms.t -> Capability.t
(** Intersect permissions ([CAndPerm]); cannot add rights. *)

val c_clear_tag : Capability.t -> Capability.t

val c_inc_base : revision -> Capability.t -> int64 -> (Capability.t, Cap_fault.t) result
(** [CIncBase]: advance the base by a non-negative delta and shrink the
    length to match. Under V3 the offset is adjusted so that the
    pointer value [base + offset] is unchanged (paper §4.1); under V2
    the offset is pinned at zero, so the pointer moves with the base.
    Deltas outside [0, length] fault — bounds never grow. *)

val c_set_len : Capability.t -> int64 -> (Capability.t, Cap_fault.t) result
(** Shrink the length; growing it is a {!Cap_fault.Length_violation}. *)

(** {1 CHERIv3 fat-pointer operations (Table 2)} *)

val c_inc_offset : revision -> Capability.t -> int64 -> (Capability.t, Cap_fault.t) result
(** [CIncOffset]: move the cursor by any amount, in or out of bounds.
    V3 only; under V2 this operation does not exist and faults with
    [Unsupported]. Valid on untagged capabilities too — that is how
    [intcap_t] arithmetic works. *)

val c_set_offset : revision -> Capability.t -> int64 -> (Capability.t, Cap_fault.t) result

exception Cap_error of Cap_fault.t
(** Raised by the [_exn] operation variants below in place of [Error]. *)

val c_inc_offset_exn : Capability.t -> int64 -> Capability.t
(** {!c_inc_offset} with V3 semantics, raising {!Cap_error} on the
    (rare) sealed-capability fault instead of allocating an [Ok]
    wrapper per call. The softcore's hot path uses these; semantics
    are identical to the Result forms. *)

val c_set_offset_exn : Capability.t -> int64 -> Capability.t
(** {!c_set_offset} with V3 semantics; see {!c_inc_offset_exn}. *)

val c_from_ptr_exn : ddc:Capability.t -> int64 -> Capability.t
(** {!c_from_ptr}, raising {!Cap_error}; see {!c_inc_offset_exn}. *)

val c_ptr_cmp : Capability.t -> Capability.t -> int
(** [CPtrCmp]: compare two capabilities as pointers, i.e. by
    [base + offset], unsigned. All tagged capabilities order after all
    untagged ones, so an integer smuggled in a capability register can
    never compare equal to a live pointer (§4.1). *)

val c_from_ptr : ddc:Capability.t -> int64 -> (Capability.t, Cap_fault.t) result
(** [CFromPtr]: rederive a capability from an integer pointer relative
    to a base capability (normally the default data capability). The
    integer 0 yields the canonical null capability, per C's null
    pointer semantics. *)

val c_to_ptr : Capability.t -> relative_to:Capability.t -> int64
(** [CToPtr]: the capability's address as an offset from
    [relative_to]'s base, or 0 when untagged or out of range — the
    hybrid-ABI escape hatch. *)

(** {1 Sealing (object capabilities)} *)

val c_seal : authority:Capability.t -> Capability.t -> (Capability.t, Cap_fault.t) result
(** [CSeal]: turn a capability into an immutable, non-dereferenceable
    token of the object type named by [authority]'s address. The
    authority must be tagged, unsealed, and hold {!Perms.Seal}. Sealed
    capabilities survive in memory and registers but trap on any use
    or modification until unsealed — the building block for
    compartment entry points. *)

val c_unseal : authority:Capability.t -> Capability.t -> (Capability.t, Cap_fault.t) result
(** [CUnseal]: reverse {!c_seal} under the same authority; the
    authority's address must equal the sealed capability's object
    type. *)

(** {1 Pointer-flavoured composites used by compilers and interpreters} *)

val ptr_add : revision -> Capability.t -> int64 -> (Capability.t, Cap_fault.t) result
(** C pointer addition in bytes. V3: [c_inc_offset]. V2: [c_inc_base]
    restricted to non-negative deltas within bounds — the restriction
    that broke tcpdump (§5.2). *)

val ptr_sub : revision -> Capability.t -> Capability.t -> (int64, Cap_fault.t) result
(** C pointer subtraction. V3: difference of addresses. V2: faults with
    [Unsupported "pointer subtraction"] — the paper's headline
    incompatibility. *)

val int_to_cap : revision -> int64 -> Capability.t
(** Store an integer into a capability register ([intcap_t]): the value
    becomes the offset of the canonical null capability. *)

val cap_to_int : Capability.t -> int64
(** Read an [intcap_t] back as an integer: the address. *)

val load_check :
  Capability.t -> addr:int64 -> size:int -> (unit, Cap_fault.t) result
(** Dereference check for a data load at absolute address [addr]. *)

val store_check :
  Capability.t -> addr:int64 -> size:int -> (unit, Cap_fault.t) result
