(* Regeneration of Figures 1-4. Each figure function measures and
   returns structured rows; [print_*] renders them in the shape the
   paper reports (Figure 1/3: seconds at 100 MHz; Figure 2:
   Dhrystones/second; Figure 4: percentage overhead vs. MIPS by file
   size).

   Every figure is a set of independent (program x ABI) runs, so each
   takes [?jobs] and fans the flattened run list over the
   {!Cheri_exec.Exec.Pool}; results come back in submission order, so
   the rows are identical whatever the domain count. *)

module Abi = Cheri_compiler.Abi
module Pool = Cheri_exec.Exec.Pool

let abi_names = List.map Abi.name Abi.all

(* fan a task list out to the pool with [Runner.run_result], fold
   worker crashes into Runner errors, and raise on the first failure —
   figures want measurements, not partial rows *)
let sweep ?jobs (tasks : (Abi.t * string) list) : Runner.measurement list =
  List.map2
    (fun (abi, _) (cell : _ Pool.cell) ->
      match cell.Pool.result with
      | Ok (Ok m) -> m
      | Ok (Error e) -> Runner.fail e
      | Error e -> Runner.fail (Runner.worker_error abi e))
    tasks
    (Pool.map ?jobs (fun (abi, src) -> Runner.run_result abi src) tasks)

(* split a flat sweep back into consecutive groups of [width] *)
let rec rows_of ~width = function
  | [] -> []
  | ms ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | x :: rest -> take (n - 1) (x :: acc) rest
        | [] -> invalid_arg "rows_of"
      in
      let row, rest = take width [] ms in
      row :: rows_of ~width rest

let agreeing ms =
  match Runner.check_agreement ms with Some e -> Runner.fail e | None -> ms

(* -- Figure 1: Olden ----------------------------------------------------- *)

type fig1_row = { kernel : string; runs : Runner.measurement list }

let figure1 ?jobs ?(params = Olden.default) () : fig1_row list =
  let tasks =
    List.concat_map
      (fun (k : Olden.kernel) ->
        let src = k.Olden.source params in
        List.map (fun abi -> (abi, src)) Abi.all)
      Olden.kernels
  in
  List.map2
    (fun (k : Olden.kernel) runs -> { kernel = k.Olden.kname; runs = agreeing runs })
    Olden.kernels
    (rows_of ~width:(List.length Abi.all) (sweep ?jobs tasks))

let print_figure1 ppf rows =
  Format.fprintf ppf "Figure 1: Olden results (seconds, smaller is better)@.";
  Format.fprintf ppf "%-12s" "KERNEL";
  List.iter (fun n -> Format.fprintf ppf "%12s" n) abi_names;
  Format.fprintf ppf "%14s@." "v3/MIPS";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s" r.kernel;
      List.iter (fun m -> Format.fprintf ppf "%12.4f" (Runner.seconds m)) r.runs;
      let base = Runner.seconds (List.nth r.runs 0) in
      let v3 = Runner.seconds (List.nth r.runs 2) in
      Format.fprintf ppf "%13.2fx@." (v3 /. base))
    rows

(* -- Figure 2: Dhrystone -------------------------------------------------- *)

type fig2_row = { abi : Abi.t; dhrystones_per_second : float }

let figure2 ?jobs ?(params = Dhrystone.default) () : fig2_row list =
  let src = Dhrystone.source params in
  List.map
    (fun (m : Runner.measurement) ->
      {
        abi = m.Runner.abi;
        dhrystones_per_second = float_of_int params.Dhrystone.iterations /. Runner.seconds m;
      })
    (Runner.run_all_abis ?jobs src)

let print_figure2 ppf rows =
  Format.fprintf ppf "Figure 2: Dhrystone results (Dhrystones/second, bigger is better)@.";
  List.iter
    (fun r -> Format.fprintf ppf "%-12s%14.0f@." (Abi.name r.abi) r.dhrystones_per_second)
    rows

(* -- Figure 3: tcpdump ----------------------------------------------------- *)

type fig3_row = { abi3 : Abi.t; seconds : float }

let figure3 ?jobs ?(params = Tcpdump_sim.default) () : fig3_row list =
  let src = Tcpdump_sim.source params in
  let v2_src = Tcpdump_sim.source_v2 params in
  List.map
    (fun (m : Runner.measurement) -> { abi3 = m.Runner.abi; seconds = Runner.seconds m })
    (Runner.run_all_abis ?jobs ~v2_source:(Some v2_src) src)

let print_figure3 ppf rows =
  Format.fprintf ppf "Figure 3: tcpdump results (seconds, smaller is better)@.";
  let base = (List.hd rows).seconds in
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s%10.4f  (%+.1f%%)@." (Abi.name r.abi3) r.seconds
        ((r.seconds -. base) /. base *. 100.))
    rows

(* -- Figure 4: zlib overhead vs file size ---------------------------------- *)

type fig4_row = {
  size : int;
  mips_s : float;
  cheri_s : float;  (** pure-capability ABI, capabilities across the boundary *)
  cheri_copy_s : float;  (** binary-compatible variant copying at the boundary *)
}

let figure4 ?jobs ?(sizes = [ 4096; 8192; 16384; 32768; 65536; 131072 ]) () : fig4_row list =
  let v3 = Abi.Cheri Cheri_core.Cap_ops.V3 in
  let tasks =
    List.concat_map
      (fun size ->
        let plain = Zlib_like.source { Zlib_like.input_size = size; boundary_copy = false } in
        let copying = Zlib_like.source { Zlib_like.input_size = size; boundary_copy = true } in
        [ (Abi.Mips, plain); (v3, plain); (v3, copying) ])
      sizes
  in
  List.map2
    (fun size runs ->
      match runs with
      | [ mips; cheri; cheri_copy ] ->
          if mips.Runner.output <> cheri.Runner.output then
            Runner.fail
              {
                Runner.abi = v3;
                phase = Runner.Diverged;
                trap = None;
                detail = "zlib outputs disagree between ABIs";
              };
          {
            size;
            mips_s = Runner.seconds mips;
            cheri_s = Runner.seconds cheri;
            cheri_copy_s = Runner.seconds cheri_copy;
          }
      | _ -> assert false)
    sizes
    (rows_of ~width:3 (sweep ?jobs tasks))

let print_figure4 ppf rows =
  Format.fprintf ppf
    "Figure 4: zlib-style compression, overhead vs MIPS by input size@.";
  Format.fprintf ppf "%10s%12s%16s@." "SIZE" "CHERI" "CHERI(copying)";
  List.iter
    (fun r ->
      let pct v = (v -. r.mips_s) /. r.mips_s *. 100. in
      Format.fprintf ppf "%10d%11.1f%%%15.1f%%@." r.size (pct r.cheri_s) (pct r.cheri_copy_s))
    rows
