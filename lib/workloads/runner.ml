(* Compile-and-measure harness shared by the figure generators.

   Failures are structured: [run_result] returns [(measurement, error)
   result] where the error records which ABI failed, in which phase
   (compilation, execution, or the cross-ABI agreement check) and — for
   execution failures — the machine outcome itself, so the fuzz
   campaign and the domain pool's fault capture can branch on the
   cause instead of parsing a message. [run] stays as a thin raising
   wrapper ([Run_failed] with the pretty-printed error) so existing
   figure callers migrate incrementally. *)

module C = Cheri_compiler.Codegen
module Abi = Cheri_compiler.Abi
module Machine = Cheri_isa.Machine
module Telemetry = Cheri_telemetry.Telemetry
module Exec = Cheri_exec.Exec
module Obs = Cheri_obs.Obs

(* per-run counters in the process-wide registry; values depend only on
   what each machine executed, so they are jobs-independent *)
let m_runs = Obs.counter Obs.default "runner_runs_total"
let m_insns = Obs.counter Obs.default "runner_insns_total"
let m_traps = Obs.counter Obs.default "runner_traps_total"
let m_hangs = Obs.counter Obs.default "runner_hangs_total"

type measurement = {
  abi : Abi.t;
  cycles : int;
  instret : int;
  output : string;
  l1_misses : int;
  l2_misses : int;
  cap_mem_ops : int;
  telemetry : Telemetry.snapshot option;
      (* present when the run was given a live sink *)
}

type phase =
  | Compile  (** the front end or code generator rejected the program *)
  | Execute  (** the softcore stopped with anything but Exit 0 *)
  | Diverged  (** ABIs disagreed on observable output *)
  | Hung
      (** the fuel or wall-clock watchdog fired ([Fuel_exhausted] /
          [Deadline_exceeded]) — a reaped runaway, not a crash *)

type error = {
  abi : Abi.t;  (** the ABI that failed (for Diverged: the disagreeing one) *)
  phase : phase;
  trap : Machine.outcome option;  (** the machine outcome, for Execute errors *)
  detail : string;
}

exception Run_failed of string

let phase_name = function
  | Compile -> "compile"
  | Execute -> "execute"
  | Diverged -> "diverged"
  | Hung -> "hung"

let error_message e =
  match e.phase with
  | Diverged -> e.detail
  | Compile | Execute | Hung -> Printf.sprintf "%s: %s" (Abi.name e.abi) e.detail

let pp_error ppf e =
  Format.fprintf ppf "[%s] %s" (phase_name e.phase) (error_message e)

let fail e = raise (Run_failed (error_message e))

(* The paper's FPGA runs at 100 MHz; cycle counts convert to seconds at
   that clock for Figure 1/3-style reporting. *)
let clock_hz = 100_000_000.
let seconds m = float_of_int m.cycles /. clock_hz

let run_result ?config ?(fuel = 600_000_000) ?deadline_s ?sink abi src :
    (measurement, error) result =
  let err ?trap phase detail = Error { abi; phase; trap; detail } in
  match
    try Ok (C.compile_source abi src) with
    | C.Error m -> err Compile (Printf.sprintf "codegen: %s" m)
    | Abi.Unsupported m -> err Compile (Printf.sprintf "unsupported: %s" m)
    | Minic.Typecheck.Type_error m -> err Compile (Printf.sprintf "type error: %s" m)
    | Minic.Lexer.Lex_error (m, line) ->
        err Compile (Printf.sprintf "lex error line %d: %s" line m)
    | Minic.Parser.Parse_error (m, line) ->
        err Compile (Printf.sprintf "parse error line %d: %s" line m)
  with
  | Error _ as e -> e
  | Ok linked -> (
      let m = C.machine_for ?config abi linked in
      Option.iter (Machine.set_sink m) sink;
      match Machine.run ~fuel ?deadline_s m with
      | Machine.Exit 0L ->
          let st = Machine.stats m in
          Obs.Counter.incr m_runs;
          Obs.Counter.incr ~by:st.Machine.st_instret m_insns;
          Option.iter (fun s -> Telemetry.obs_to_counters (Telemetry.snapshot s)) sink;
          Ok
            {
              abi;
              cycles = st.Machine.st_cycles;
              instret = st.Machine.st_instret;
              output = Machine.output m;
              l1_misses = st.Machine.st_l1_misses;
              l2_misses = st.Machine.st_l2_misses;
              cap_mem_ops = st.Machine.st_cap_loads + st.Machine.st_cap_stores;
              telemetry = Option.map Telemetry.snapshot sink;
            }
      | outcome ->
          (* Keep the full diagnosis: a Trap outcome pretty-prints its
             cause (including any Cap_fault detail) and the faulting pc
             via Machine.pp_outcome; add where execution stopped and
             what the program managed to print. A reaped runaway (fuel
             or wall-clock watchdog) is a Hung verdict, not a crash. *)
          let st = Machine.stats m in
          let phase =
            match outcome with
            | Machine.Fuel_exhausted | Machine.Deadline_exceeded -> Hung
            | _ -> Execute
          in
          Obs.Counter.incr m_runs;
          Obs.Counter.incr ~by:st.Machine.st_instret m_insns;
          Obs.Counter.incr (if phase = Hung then m_hangs else m_traps);
          Option.iter (fun s -> Telemetry.obs_to_counters (Telemetry.snapshot s)) sink;
          err ~trap:outcome phase
            (Format.asprintf "%a after %d instructions (%d cycles), output so far: %S"
               Machine.pp_outcome outcome st.Machine.st_instret st.Machine.st_cycles
               (Machine.output m)))

let run ?config ?fuel ?deadline_s ?sink abi src : measurement =
  match run_result ?config ?fuel ?deadline_s ?sink abi src with
  | Ok m -> m
  | Error e -> fail e

(* the differential check behind every figure: do the observable
   outputs agree across ABIs? *)
let check_agreement (ms : measurement list) : error option =
  match ms with
  | [] -> None
  | first :: rest ->
      List.fold_left
        (fun acc m ->
          match acc with
          | Some _ -> acc
          | None ->
              if m.output <> first.output then
                Some
                  {
                    abi = m.abi;
                    phase = Diverged;
                    trap = None;
                    detail =
                      Printf.sprintf "ABI outputs disagree: %s printed %S, %s printed %S"
                        (Abi.name first.abi) first.output (Abi.name m.abi) m.output;
                  }
              else None)
        None rest

(* a pool-level worker failure (a bug, not a program failure) folded
   into the same error type so sweeps have one error channel *)
let worker_error abi (e : Exec.Pool.error) =
  { abi; phase = Execute; trap = None; detail = Printf.sprintf "worker: %s" e.Exec.Pool.exn }

(* run the same source under all three ABIs — in parallel when [jobs] >
   1; per-run machine/heap/sink state makes the fan-out safe, and the
   pool keys results by submission index so orderings are identical *)
let run_results_all_abis ?jobs ?fuel ?deadline_s ?(v2_source = None) ?(with_telemetry = false)
    src : (measurement, error) result list =
  let task abi =
    let src =
      match (abi, v2_source) with
      | Abi.Cheri Cheri_core.Cap_ops.V2, Some s -> s
      | _ -> src
    in
    let sink = if with_telemetry then Some (Telemetry.Sink.create ()) else None in
    run_result ?fuel ?deadline_s ?sink abi src
  in
  List.map2
    (fun abi (cell : _ Exec.Pool.cell) ->
      match cell.Exec.Pool.result with Ok r -> r | Error e -> Error (worker_error abi e))
    Abi.all
    (Exec.Pool.map ?jobs task Abi.all)

(* run the same source under all three ABIs and insist the observable
   behaviour agrees — raising form *)
let run_all_abis ?jobs ?fuel ?deadline_s ?v2_source ?with_telemetry src : measurement list =
  let ms =
    List.map
      (function Ok m -> m | Error e -> fail e)
      (run_results_all_abis ?jobs ?fuel ?deadline_s ?v2_source ?with_telemetry src)
  in
  (match check_agreement ms with Some e -> fail e | None -> ());
  ms
