(* Compile-and-measure harness shared by the figure generators. *)

module C = Cheri_compiler.Codegen
module Abi = Cheri_compiler.Abi
module Machine = Cheri_isa.Machine
module Telemetry = Cheri_telemetry.Telemetry

type measurement = {
  abi : Abi.t;
  cycles : int;
  instret : int;
  output : string;
  l1_misses : int;
  l2_misses : int;
  cap_mem_ops : int;
  telemetry : Telemetry.snapshot option;
      (* present when the run was given a live sink *)
}

exception Run_failed of string

(* The paper's FPGA runs at 100 MHz; cycle counts convert to seconds at
   that clock for Figure 1/3-style reporting. *)
let clock_hz = 100_000_000.
let seconds m = float_of_int m.cycles /. clock_hz

let run ?config ?(fuel = 600_000_000) ?sink abi src : measurement =
  let linked =
    try C.compile_source abi src with
    | C.Error m -> raise (Run_failed (Printf.sprintf "%s: codegen: %s" (Abi.name abi) m))
    | Abi.Unsupported m ->
        raise (Run_failed (Printf.sprintf "%s: unsupported: %s" (Abi.name abi) m))
    | Minic.Typecheck.Type_error m ->
        raise (Run_failed (Printf.sprintf "%s: type error: %s" (Abi.name abi) m))
    | Minic.Parser.Parse_error (m, line) ->
        raise (Run_failed (Printf.sprintf "%s: parse error line %d: %s" (Abi.name abi) line m))
  in
  let m = C.machine_for ?config abi linked in
  Option.iter (Machine.set_sink m) sink;
  match Machine.run ~fuel m with
  | Machine.Exit 0L ->
      let st = Machine.stats m in
      {
        abi;
        cycles = st.Machine.st_cycles;
        instret = st.Machine.st_instret;
        output = Machine.output m;
        l1_misses = st.Machine.st_l1_misses;
        l2_misses = st.Machine.st_l2_misses;
        cap_mem_ops = st.Machine.st_cap_loads + st.Machine.st_cap_stores;
        telemetry = Option.map Telemetry.snapshot sink;
      }
  | outcome ->
      (* Keep the full diagnosis: a Trap outcome pretty-prints its cause
         (including any Cap_fault detail) and the faulting pc via
         Machine.pp_outcome; add where execution stopped and what the
         program managed to print. *)
      let st = Machine.stats m in
      raise
        (Run_failed
           (Format.asprintf "%s: %a after %d instructions (%d cycles), output so far: %S"
              (Abi.name abi) Machine.pp_outcome outcome st.Machine.st_instret
              st.Machine.st_cycles (Machine.output m)))

(* run the same source under all three ABIs and insist the observable
   behaviour agrees — the differential check behind every figure *)
let run_all_abis ?fuel ?(v2_source = None) ?(with_telemetry = false) src : measurement list =
  let ms =
    List.map
      (fun abi ->
        let src =
          match (abi, v2_source) with
          | Abi.Cheri Cheri_core.Cap_ops.V2, Some s -> s
          | _ -> src
        in
        let sink = if with_telemetry then Some (Telemetry.Sink.create ()) else None in
        run ?fuel ?sink abi src)
      Abi.all
  in
  (match ms with
  | first :: rest ->
      List.iter
        (fun m ->
          if m.output <> first.output then
            raise
              (Run_failed
                 (Printf.sprintf "ABI outputs disagree: %s printed %S, %s printed %S"
                    (Abi.name first.abi) first.output (Abi.name m.abi) m.output)))
        rest
  | [] -> ());
  ms
