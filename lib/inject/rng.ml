(* Deterministic fault-parameter derivation.

   Every injection task owns an independent random stream derived from
   (seed, workload, ABI, fault kind) by FNV-1a, stepped by SplitMix64.
   The host PRNG ([Random]) and [Hashtbl.hash] are deliberately
   avoided: both are allowed to change across OCaml releases, and a
   resumed campaign must derive bit-identical faults to the run it is
   resuming. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

(* SplitMix64 (Steele et al., "Fast splittable pseudorandom number
   generators"): full 64-bit period, two multiplies per draw. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform-enough draw in [0, n): the modulo bias over a 63-bit range
   is immaterial for fault-site selection *)
let below t n =
  if n <= 0 then invalid_arg "Rng.below";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

(* FNV-1a over the key parts, with a separator absorption between
   parts so ["ab";"c"] and ["a";"bc"] derive different streams *)
let fnv1a parts =
  let h = ref 0xCBF29CE484222325L in
  let absorb c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int c)) 0x100000001B3L
  in
  List.iter
    (fun s ->
      String.iter (fun ch -> absorb (Char.code ch)) s;
      absorb 0x1F)
    parts;
  !h

let of_key parts = create (fnv1a parts)
