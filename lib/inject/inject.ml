(* Deterministic, seeded fault-injection engine (the PR-3 tentpole).

   The paper's core claim is that CHERI turns silent memory corruption
   into deterministic traps. This module stresses that claim instead
   of asserting it: compile a workload once per ABI, replay it to a
   seed-chosen instruction index, perturb the machine there — flip a
   data byte, corrupt a stored pointer, clear or forge a tag line,
   corrupt a capability field, fail an allocation — and classify what
   the architecture does about it:

   - [Detected]  the machine trapped (the §4.2 guarantee at work);
   - [Masked]    the program still produced the reference behaviour;
   - [Silent]    wrong observable behaviour and no trap — the failure
                 mode the paper is about;
   - [Hung]      the fuel or wall-clock watchdog reaped the run.

   Fault model. Corruptions are applied through the *architectural*
   data path wherever one exists: a stray store over a pointer clears
   the granule tag on CHERI (the integrity rule does the detecting) and
   silently redirects the pointer on MIPS — exactly the asymmetry the
   detection matrix is meant to exhibit. Guard-field corruption
   (length, perms) is applied tag-preservingly via {!Tagmem.poke_raw_i64},
   because those fields never change which address is accessed, only
   whether the access traps — so CHERI detects or masks them
   structurally. Address-field corruption (base, offset) without
   provenance loses the tag, mirroring a register file that only
   accepts capability writes from capability instructions. The one
   fault CHERI makes no claim about — corrupting plain, untagged data —
   is kept in the matrix as the [Bitflip] negative control: tags
   authenticate pointer provenance, they are not ECC.

   Everything is derived from (seed, workload, ABI, kind) through
   {!Rng}, and records carry no timing, so a campaign resumed from a
   checkpoint reproduces the uninterrupted run's report byte for
   byte. *)

module Machine = Cheri_isa.Machine
module Tagmem = Cheri_tagmem.Tagmem
module Asm = Cheri_asm.Asm
module Abi = Cheri_compiler.Abi
module Codegen = Cheri_compiler.Codegen
module Capability = Cheri_core.Capability
module Exec = Cheri_exec.Exec
module Json = Cheri_util.Json
module Snapshot = Cheri_snapshot.Snapshot
module Obs = Cheri_obs.Obs

(* -- fault kinds ------------------------------------------------------------ *)

type kind =
  | Bitflip  (** flip one bit of live program data (negative control) *)
  | Tag_clear  (** stray store over a stored pointer *)
  | Tag_set  (** forge a tag onto a granule of plain data *)
  | Cap_field  (** corrupt one field of a live capability *)
  | Alloc_fail  (** fail an upcoming malloc or free *)

let all_kinds = [ Bitflip; Tag_clear; Tag_set; Cap_field; Alloc_fail ]

let kind_key = function
  | Bitflip -> "bitflip"
  | Tag_clear -> "tag-clear"
  | Tag_set -> "tag-set"
  | Cap_field -> "cap-field"
  | Alloc_fail -> "alloc-fail"

let kind_of_key s =
  match String.lowercase_ascii s with
  | "bitflip" -> Some Bitflip
  | "tag-clear" | "tagclear" -> Some Tag_clear
  | "tag-set" | "tagset" -> Some Tag_set
  | "cap-field" | "capfield" -> Some Cap_field
  | "alloc-fail" | "allocfail" -> Some Alloc_fail
  | _ -> None

(* The kinds whose CHERI detection story is structural: a perturbed
   pointer either traps or the program was never going to use it.
   [Tag_set] is excluded deliberately — forging a tag is a fault
   *below* the architecture (a tag-SRAM upset), and a forged tag that
   resurrects a stale-but-plausible capability is exactly the
   corruption the tag bit cannot police; like [Bitflip] it is kept in
   the matrix as a measured control, not a guarantee. *)
let pointer_protecting = function
  | Tag_clear | Cap_field -> true
  | Bitflip | Tag_set | Alloc_fail -> false

(* -- verdicts --------------------------------------------------------------- *)

type verdict =
  | Detected of string  (** trapped; carries the pretty-printed trap *)
  | Masked  (** reference exit status and output anyway *)
  | Silent of string  (** wrong behaviour, no trap; carries the diff *)
  | Hung  (** fuel or wall-clock watchdog fired *)

let verdict_key = function
  | Detected _ -> "detected"
  | Masked -> "masked"
  | Silent _ -> "silent"
  | Hung -> "hang"

let verdict_why = function Detected w | Silent w -> w | Masked | Hung -> ""

type record = {
  workload : string;
  abi : string;  (** {!Abi.name} of the target *)
  kind : kind;
  seed : int;
  trigger : int;  (** instruction index the fault was applied at *)
  detail : string;  (** what exactly was perturbed *)
  verdict : verdict;
}

(* -- workloads -------------------------------------------------------------- *)

type workload = { w_name : string; w_source : Abi.t -> string }

(* Injection replays every workload hundreds of times, so the builtin
   table uses scaled-down parameters: a few hundred thousand retired
   instructions each — large enough to have live heap structure at any
   trigger point, small enough to replay in milliseconds. *)
let builtin_workloads : workload list =
  let module O = Cheri_workloads.Olden in
  let module D = Cheri_workloads.Dhrystone in
  let module T = Cheri_workloads.Tcpdump_sim in
  let module Z = Cheri_workloads.Zlib_like in
  List.map
    (fun (k : O.kernel) ->
      {
        w_name = "olden." ^ String.lowercase_ascii k.O.kname;
        w_source = (fun _ -> k.O.source { O.scale = 1 });
      })
    O.kernels
  @ [
      {
        w_name = "dhrystone";
        w_source = (fun _ -> D.source { D.iterations = 150 });
      };
      {
        w_name = "tcpdump";
        w_source =
          (let p = { T.packets = 64; passes = 1 } in
           function
           | Abi.Cheri Cheri_core.Cap_ops.V2 -> T.source_v2 p
           | _ -> T.source p);
      };
      {
        w_name = "zlib";
        w_source = (fun _ -> Z.source { Z.input_size = 2048; boundary_copy = false });
      };
    ]

let workload_names = List.map (fun w -> w.w_name) builtin_workloads

let find_workload name =
  List.find_opt (fun w -> w.w_name = name) builtin_workloads

(* -- the reference run ------------------------------------------------------ *)

type reference = {
  ref_workload : string;
  ref_abi : Abi.t;
  ref_linked : Asm.linked;
  ref_outcome : Machine.outcome;
  ref_output : string;
  ref_instret : int;
}

let default_fuel = 50_000_000

let reference ?(fuel = default_fuel) ?deadline_s (w : workload) abi : reference =
  let linked = Codegen.compile_source abi (w.w_source abi) in
  let m = Codegen.machine_for abi linked in
  let outcome = Machine.run ~fuel ?deadline_s m in
  {
    ref_workload = w.w_name;
    ref_abi = abi;
    ref_linked = linked;
    ref_outcome = outcome;
    ref_output = Machine.output m;
    ref_instret = Machine.instret m;
  }

(* -- fault-site discovery --------------------------------------------------- *)

let is_cheri = function Abi.Cheri _ -> true | Abi.Mips -> false

(* live data regions: the loaded data segment plus every live heap
   block — the places a stray store could plausibly land on program
   state (perturbing never-written memory only measures noise) *)
let data_regions r m =
  let data =
    (r.ref_linked.Asm.data_base, Int64.of_int (Bytes.length r.ref_linked.Asm.data))
  in
  let regions = data :: Machine.allocated_blocks m in
  List.filter (fun (_, size) -> size > 0L) regions

(* pick a uniformly random byte address across a region list *)
let pick_byte rng regions =
  let total = List.fold_left (fun acc (_, s) -> Int64.add acc s) 0L regions in
  if total = 0L then None
  else
    let off = ref (Int64.of_int (Rng.below rng (Int64.to_int total))) in
    let rec find = function
      | [] -> None
      | (base, size) :: rest ->
          if !off < size then Some (Int64.add base !off)
          else begin
            off := Int64.sub !off size;
            find rest
          end
    in
    find regions

let tagged_granules m =
  let acc = ref [] in
  Tagmem.iter_tagged (Machine.mem m) (fun a -> acc := a :: !acc);
  Array.of_list (List.rev !acc)

(* MIPS has no tags, so "a stored pointer" is found by its
   representation: an 8-aligned word in live data or the active stack
   whose value lands in the pointable range [data_base, mem_size). *)
let pointer_homes r m =
  let mem = Machine.mem m in
  let lo = (Machine.config m).Machine.data_base in
  let hi = Int64.of_int (Tagmem.size mem) in
  let plausible v = v >= lo && v < hi in
  let stack = (Machine.gpr m 29, Int64.sub (Machine.stack_top m) (Machine.gpr m 29)) in
  let regions = stack :: data_regions r m in
  let acc = ref [] in
  List.iter
    (fun (base, size) ->
      let first = Int64.logand (Int64.add base 7L) (Int64.lognot 7L) in
      let last = Int64.add base size in
      let a = ref first in
      while Int64.add !a 8L <= last do
        if plausible (Tagmem.load_int_i64 mem ~addr:!a ~size:8) then acc := !a :: !acc;
        a := Int64.add !a 8L
      done)
    regions;
  Array.of_list (List.rev !acc)

(* capability sites: registers holding a tagged capability, and tagged
   granules in memory *)
type cap_site = Reg of int | Mem of int64

let cap_sites m =
  let regs = ref [] in
  for i = 31 downto 1 do
    if (Machine.cap m i).Capability.tag then regs := Reg i :: !regs
  done;
  Array.of_list (!regs @ Array.to_list (Array.map (fun a -> Mem a) (tagged_granules m)))

(* -- fault application ------------------------------------------------------ *)

(* a stray architectural store: flips one bit of one byte through the
   data path, so the §4.2 integrity rule clears the granule tag *)
let flip_byte mem addr bit =
  Tagmem.store_byte_i64 mem addr (Tagmem.load_byte_i64 mem addr lxor (1 lsl bit))

(* same flip below the architecture: the granule tag survives *)
let flip_byte_raw mem addr bit =
  Tagmem.poke_raw_i64 mem addr (Tagmem.load_byte_i64 mem addr lxor (1 lsl bit))

type field = F_base | F_length | F_offset | F_perms

let field_name = function
  | F_base -> "base"
  | F_length -> "length"
  | F_offset -> "offset"
  | F_perms -> "perms"

(* word index inside the 32-byte in-memory representation; must agree
   with Capability.to_words (word 3 carries perms in its low byte) *)
let field_word = function F_base -> 0 | F_length -> 1 | F_offset -> 2 | F_perms -> 3

(* Apply one fault of [kind] to the running machine; returns a
   human-readable description of what was done. A kind with no target
   in the current machine state (no live capability yet, no
   pointer-like word) degrades to a recorded no-op — the run then
   almost certainly masks, which is itself a data point. *)
let apply_fault rng r m kind : string =
  let mem = Machine.mem m in
  match kind with
  | Bitflip -> (
      match pick_byte rng (data_regions r m) with
      | None -> "no-op: no live data"
      | Some addr ->
          let bit = Rng.below rng 8 in
          flip_byte mem addr bit;
          Printf.sprintf "flipped bit %d of data byte 0x%Lx" bit addr)
  | Tag_clear ->
      if is_cheri r.ref_abi then begin
        let granules = tagged_granules m in
        if Array.length granules = 0 then "no-op: no tagged granules yet"
        else begin
          let base = granules.(Rng.below rng (Array.length granules)) in
          let byte = Rng.below rng (Tagmem.granule mem) in
          let bit = Rng.below rng 8 in
          flip_byte mem (Int64.add base (Int64.of_int byte)) bit;
          Printf.sprintf
            "stray store over capability granule 0x%Lx (byte %d bit %d): tag cleared"
            base byte bit
        end
      end
      else begin
        let homes = pointer_homes r m in
        if Array.length homes = 0 then "no-op: no pointer-like words"
        else begin
          let addr = homes.(Rng.below rng (Array.length homes)) in
          let bitpos = Rng.below rng 64 in
          flip_byte mem (Int64.add addr (Int64.of_int (bitpos / 8))) (bitpos mod 8);
          Printf.sprintf "stray store over pointer word 0x%Lx (bit %d)" addr bitpos
        end
      end
  | Tag_set -> (
      (* forge validity onto plain data: pick a live data byte and set
         its granule's tag without making the bytes a capability *)
      match pick_byte rng (data_regions r m) with
      | None -> "no-op: no live data"
      | Some addr ->
          if Tagmem.tag_at_i64 mem addr then "no-op: granule already tagged"
          else begin
            Tagmem.set_tag_at_i64 mem addr;
            Printf.sprintf "forged tag onto granule of 0x%Lx" addr
          end)
  | Cap_field -> (
      let sites = cap_sites m in
      if Array.length sites = 0 then "no-op: no live capabilities"
      else
        let site = sites.(Rng.below rng (Array.length sites)) in
        let field =
          match Rng.below rng 4 with
          | 0 -> F_base
          | 1 -> F_length
          | 2 -> F_offset
          | _ -> F_perms
        in
        let bit = match field with F_perms -> Rng.below rng 8 | _ -> Rng.below rng 64 in
        match site with
        | Reg i ->
            let words = Capability.to_words (Machine.cap m i) in
            let w = field_word field in
            words.(w) <- Int64.logxor words.(w) (Int64.shift_left 1L bit);
            (* guard fields (length, perms) never change which address
               is accessed, so the SEU may keep the tag — detection is
               the bounds/perms check's job. Address fields only change
               through capability instructions; a raw write-back loses
               provenance and with it the tag. *)
            let tag = match field with F_length | F_perms -> true | _ -> false in
            Machine.set_cap m i (Capability.of_words ~tag words);
            Printf.sprintf "flipped bit %d of %s in capability register c%d%s" bit
              (field_name field) i
              (if tag then "" else " (provenance lost: tag cleared)")
        | Mem base ->
            let addr = Int64.add base (Int64.of_int ((field_word field * 8) + (bit / 8))) in
            (match field with
            | F_length | F_perms -> flip_byte_raw mem addr (bit mod 8)
            | F_base | F_offset -> flip_byte mem addr (bit mod 8));
            Printf.sprintf "flipped bit %d of %s in capability at 0x%Lx%s" bit
              (field_name field) base
              (match field with
              | F_length | F_perms -> " (tag preserved)"
              | _ -> " (data path: tag cleared)"))
  | Alloc_fail ->
      let after = Rng.below rng 4 in
      if Rng.bool rng then begin
        Machine.inject_alloc_failure m ~after;
        Printf.sprintf "armed malloc failure (after %d more)" after
      end
      else begin
        Machine.inject_free_failure m ~after;
        Printf.sprintf "armed free failure (after %d more)" after
      end

(* -- single injection run --------------------------------------------------- *)

let classify r outcome m =
  match outcome with
  | Machine.Exit code ->
      if outcome = r.ref_outcome && Machine.output m = r.ref_output then Masked
      else
        Silent
          (Printf.sprintf "exit %Ld with %s output" code
             (if Machine.output m = r.ref_output then "reference" else "divergent"))
  | Machine.Trap _ as o -> Detected (Format.asprintf "%a" Machine.pp_outcome o)
  | Machine.Fuel_exhausted | Machine.Deadline_exceeded | Machine.Yielded -> Hung

let task_rng (r : reference) kind seed =
  Rng.of_key [ string_of_int seed; r.ref_workload; Abi.name r.ref_abi; kind_key kind ]

(* allocator faults are armed early, while the allocator is still
   active — most workloads build their heap up front, and a
   malloc-failure armed after the last malloc can never fire *)
let draw_trigger rng (r : reference) kind =
  let trigger_range =
    match kind with
    | Alloc_fail -> max 1 (r.ref_instret / 10)
    | _ -> max 1 (r.ref_instret - 1)
  in
  1 + Rng.below rng trigger_range

let mk_record (r : reference) kind seed trigger detail verdict =
  {
    workload = r.ref_workload;
    abi = Abi.name r.ref_abi;
    kind;
    seed;
    trigger;
    detail;
    verdict;
  }

let run_one ?(fuel = default_fuel) ?deadline_s (r : reference) kind seed : record =
  let mk = mk_record r kind seed in
  match r.ref_outcome with
  | Machine.Fuel_exhausted | Machine.Deadline_exceeded | Machine.Yielded ->
      (* the workload itself is a runaway: the watchdog reaped the
         reference run, and every injection into it inherits the
         verdict instead of aborting the campaign *)
      mk 0 "reference run reaped by the watchdog" Hung
  | Machine.Trap _ ->
      mk 0
        (Format.asprintf "reference run trapped: %a" Machine.pp_outcome r.ref_outcome)
        (Detected (Format.asprintf "%a" Machine.pp_outcome r.ref_outcome))
  | Machine.Exit _ ->
      let rng = task_rng r kind seed in
      let trigger = draw_trigger rng r kind in
      let m = Codegen.machine_for r.ref_abi r.ref_linked in
      let rec advance () =
        if Machine.instret m >= trigger then None
        else match Machine.step m with None -> advance () | Some o -> Some o
      in
      (match advance () with
      | Some o ->
          (* replay divergence would be a simulator bug; record it
             honestly rather than asserting *)
          mk trigger "program ended before the trigger point" (classify r o m)
      | None ->
          let detail = apply_fault rng r m kind in
          let outcome = Machine.run ~fuel ?deadline_s m in
          mk trigger detail (classify r outcome m))

(* -- campaigns -------------------------------------------------------------- *)

type campaign = {
  c_workloads : workload list;
  c_kinds : kind list;
  c_seeds : int;  (** seeds per (workload, ABI, kind) cell *)
  c_first_seed : int;
  c_fuel : int;
  c_deadline_s : float option;
}

let default_campaign ?(workloads = builtin_workloads) ?(kinds = all_kinds) ?(seeds = 8)
    ?(first_seed = 0) ?(fuel = default_fuel) ?deadline_s () =
  {
    c_workloads = workloads;
    c_kinds = kinds;
    c_seeds = seeds;
    c_first_seed = first_seed;
    c_fuel = fuel;
    c_deadline_s = deadline_s;
  }

type task = { t_workload : workload; t_abi : Abi.t; t_kind : kind; t_seed : int }

(* canonical task order: workload-major, then ABI, kind, seed — the
   order of [report.records] regardless of jobs or resume *)
let tasks c =
  List.concat_map
    (fun w ->
      List.concat_map
        (fun abi ->
          List.concat_map
            (fun kind ->
              List.init c.c_seeds (fun i ->
                  { t_workload = w; t_abi = abi; t_kind = kind; t_seed = c.c_first_seed + i }))
            c.c_kinds)
        Abi.all)
    c.c_workloads

let task_key w abi kind seed = Printf.sprintf "%s|%s|%s|%d" w abi (kind_key kind) seed

type error = { e_workload : string; e_abi : string; e_kind : kind; e_seed : int; e_exn : string }

type report = {
  r_campaign : campaign;
  r_records : record list;  (** canonical task order *)
  r_errors : error list;
  r_resumed : int;  (** records restored from the checkpoint *)
  r_jobs : int;
  r_wall_s : float;
  r_task_seconds : float list;
      (** per-task wall times of freshly executed tasks, completion
          order — timing data, excluded from byte-identity *)
}

(* -- matrix ----------------------------------------------------------------- *)

type counts = { n_detected : int; n_masked : int; n_silent : int; n_hung : int }

let zero_counts = { n_detected = 0; n_masked = 0; n_silent = 0; n_hung = 0 }

let count_verdict c = function
  | Detected _ -> { c with n_detected = c.n_detected + 1 }
  | Masked -> { c with n_masked = c.n_masked + 1 }
  | Silent _ -> { c with n_silent = c.n_silent + 1 }
  | Hung -> { c with n_hung = c.n_hung + 1 }

(* per (ABI, kind) outcome counts, in ABI-major then kind order *)
let matrix (r : report) : ((string * kind) * counts) list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun rec_ ->
      let key = (rec_.abi, rec_.kind) in
      let c = Option.value (Hashtbl.find_opt tbl key) ~default:zero_counts in
      Hashtbl.replace tbl key (count_verdict c rec_.verdict))
    r.r_records;
  List.concat_map
    (fun abi ->
      List.filter_map
        (fun kind ->
          Option.map
            (fun c -> ((Abi.name abi, kind), c))
            (Hashtbl.find_opt tbl (Abi.name abi, kind)))
        r.r_campaign.c_kinds)
    Abi.all

(* -- checkpointing ---------------------------------------------------------- *)

let esc = Json.escape

let record_json rec_ =
  Printf.sprintf
    "{\"workload\":\"%s\",\"abi\":\"%s\",\"kind\":\"%s\",\"seed\":%d,\"trigger\":%d,\"verdict\":\"%s\",\"why\":\"%s\",\"detail\":\"%s\"}"
    (esc rec_.workload) (esc rec_.abi) (kind_key rec_.kind) rec_.seed rec_.trigger
    (verdict_key rec_.verdict)
    (esc (verdict_why rec_.verdict))
    (esc rec_.detail)

let record_of_json j : record option =
  let open Json in
  let str k = Option.bind (member k j) to_string in
  let int k = Option.bind (member k j) to_int in
  match (str "workload", str "abi", str "kind", int "seed", int "trigger", str "verdict") with
  | Some workload, Some abi, Some kind_s, Some seed, Some trigger, Some verdict_s -> (
      match kind_of_key kind_s with
      | None -> None
      | Some kind ->
          let why = Option.value (str "why") ~default:"" in
          let verdict =
            match verdict_s with
            | "detected" -> Some (Detected why)
            | "masked" -> Some Masked
            | "silent" -> Some (Silent why)
            | "hang" -> Some Hung
            | _ -> None
          in
          Option.map
            (fun verdict ->
              {
                workload;
                abi;
                kind;
                seed;
                trigger;
                detail = Option.value (str "detail") ~default:"";
                verdict;
              })
            verdict)
  | _ -> None

let checkpoint_schema = "cheri_c.inject-ckpt/v1"

let header_json c =
  Printf.sprintf
    "{\"schema\":\"%s\",\"workloads\":[%s],\"kinds\":[%s],\"seeds\":%d,\"first_seed\":%d,\"fuel\":%d}"
    checkpoint_schema
    (String.concat ","
       (List.map (fun w -> "\"" ^ esc w.w_name ^ "\"") c.c_workloads))
    (String.concat "," (List.map (fun k -> "\"" ^ kind_key k ^ "\"") c.c_kinds))
    c.c_seeds c.c_first_seed c.c_fuel

exception Resume_mismatch of string

(* Load a checkpoint: validate that its header describes this campaign
   (resuming under different parameters would silently mix incompatible
   records), then recover every parseable record line. A torn final
   line — the signature of a killed run — is skipped, not an error. *)
let load_checkpoint path c : record list =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  match String.split_on_char '\n' contents with
  | [] -> []
  | header :: rest ->
      (match Json.parse header with
      | Error e -> raise (Resume_mismatch ("unreadable checkpoint header: " ^ e))
      | Ok j ->
          let expect = Json.parse (header_json c) in
          if expect <> Ok j then
            raise
              (Resume_mismatch
                 "checkpoint was written by a campaign with different parameters"));
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else
            match Json.parse line with
            | Error _ -> None (* torn tail of a killed run *)
            | Ok j -> record_of_json j)
        rest

(* -- preemptive (sliced) injection runs ------------------------------------- *)

(* With [~slice:n], a task advances at most [n] instructions per
   {!Exec.Pool.map_sliced} slice instead of running to completion. The
   replay to the trigger point and the post-fault run are both sliced;
   the machine stops only between instructions, so the verdicts are
   bit-identical to the unsliced engine for every slice size. The
   payoff is crash safety: while a checkpoint is being written, every
   in-flight task also persists a machine snapshot to a sidecar file at
   each yield, so a killed campaign resumes long tasks mid-run instead
   of from their trigger replay. *)

type replay_state = {
  y_ref : reference;
  y_m : Machine.t;
  y_rng : Rng.t;
  y_trigger : int;
  y_kind : kind;
  y_seed : int;
  y_key : string;
  y_abi : Abi.t;
  y_span : Obs.Span.span;  (** the task's span, opened at init *)
}

type post_state = {
  p_ref : reference;
  p_m : Machine.t;
  p_trigger : int;
  p_detail : string;
  p_kind : kind;
  p_seed : int;
  p_key : string;
  p_abi : Abi.t;
  p_fuel_left : int;
  p_span : Obs.Span.span;
}

type sliced_state =
  | S_done of record  (** decided without running (reference trapped/hung) *)
  | S_replay of replay_state  (** advancing a fresh machine to the trigger *)
  | S_post of post_state  (** fault applied; running it out in fuel slices *)

let inflight_schema = "cheri_c.inject-inflight/v1"

let sanitize_key =
  String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-') as c -> c | _ -> '-')

let sidecar_path ckpt key = ckpt ^ ".inflight." ^ sanitize_key key ^ ".snap"

let inflight_note ~key ~trigger ~detail ~fuel_left =
  Printf.sprintf
    "{\"schema\":\"%s\",\"task\":\"%s\",\"trigger\":%d,\"detail\":\"%s\",\"fuel_left\":%d}"
    inflight_schema (esc key) trigger (esc detail) fuel_left

let parse_inflight note =
  match Json.parse note with
  | Error _ -> None
  | Ok j -> (
      let str k = Option.bind (Json.member k j) Json.to_string in
      let int k = Option.bind (Json.member k j) Json.to_int in
      match (str "schema", str "task", int "trigger", str "detail", int "fuel_left") with
      | Some schema, Some key, Some trigger, Some detail, Some fuel_left
        when schema = inflight_schema ->
          Some (key, trigger, detail, fuel_left)
      | _ -> None)

let remove_sidecar ckpt key =
  let path = sidecar_path ckpt key in
  if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ()

(* A sidecar is strictly an optimization: any failure to load, parse or
   restore it (stale file, torn write, changed campaign) silently falls
   back to restarting the task from its trigger replay. *)
let resume_from_sidecar ~resume ~span (r : reference) t key =
  match resume with
  | None -> None
  | Some ckpt -> (
      let path = sidecar_path ckpt key in
      if not (Sys.file_exists path) then None
      else
        match Snapshot.load path with
        | Error _ -> None
        | Ok img -> (
            match parse_inflight (Snapshot.image_note img) with
            | Some (k, trigger, detail, fuel_left) when k = key && fuel_left > 0 -> (
                let m = Codegen.machine_for r.ref_abi r.ref_linked in
                match Snapshot.restore m ~abi:(Abi.name r.ref_abi) img with
                | Ok () ->
                    Some
                      (S_post
                         {
                           p_ref = r;
                           p_m = m;
                           p_trigger = trigger;
                           p_detail = detail;
                           p_kind = t.t_kind;
                           p_seed = t.t_seed;
                           p_key = key;
                           p_abi = r.ref_abi;
                           p_fuel_left = fuel_left;
                           p_span = span;
                         })
                | Error _ -> None)
            | _ -> None))

let init_sliced ~resume ~obs ~root ref_tbl key_of t =
  match Hashtbl.find ref_tbl (t.t_workload.w_name, Abi.name t.t_abi) with
  | Error e -> failwith ("reference run failed: " ^ e)
  | Ok r -> (
      let key = key_of t in
      let mk = mk_record r t.t_kind t.t_seed in
      match r.ref_outcome with
      | Machine.Fuel_exhausted | Machine.Deadline_exceeded | Machine.Yielded ->
          S_done (mk 0 "reference run reaped by the watchdog" Hung)
      | Machine.Trap _ ->
          S_done
            (mk 0
               (Format.asprintf "reference run trapped: %a" Machine.pp_outcome r.ref_outcome)
               (Detected (Format.asprintf "%a" Machine.pp_outcome r.ref_outcome)))
      | Machine.Exit _ -> (
          let span = Obs.Span.enter obs ~parent:root ("inject.task:" ^ key) in
          match resume_from_sidecar ~resume ~span r t key with
          | Some st -> st
          | None ->
              let rng = task_rng r t.t_kind t.t_seed in
              let trigger = draw_trigger rng r t.t_kind in
              S_replay
                {
                  y_ref = r;
                  y_m = Codegen.machine_for r.ref_abi r.ref_linked;
                  y_rng = rng;
                  y_trigger = trigger;
                  y_kind = t.t_kind;
                  y_seed = t.t_seed;
                  y_key = key;
                  y_abi = r.ref_abi;
                  y_span = span;
                }))

let slice_sliced ~slice:slice_n ~fuel ?deadline_s ~checkpoint st :
    (sliced_state, record) Exec.Pool.progress =
  match st with
  | S_done rec_ -> Exec.Pool.Done rec_
  | S_replay y -> (
      let r = y.y_ref and m = y.y_m in
      let mk = mk_record r y.y_kind y.y_seed in
      let rec advance budget =
        if Machine.instret m >= y.y_trigger then `At_trigger
        else if budget <= 0 then `More
        else match Machine.step m with None -> advance (budget - 1) | Some o -> `Ended o
      in
      match advance slice_n with
      | `More -> Exec.Pool.Yield (S_replay y)
      | `Ended o ->
          Exec.Pool.Done
            (mk y.y_trigger "program ended before the trigger point" (classify r o m))
      | `At_trigger ->
          let detail = apply_fault y.y_rng r m y.y_kind in
          Exec.Pool.Yield
            (S_post
               {
                 p_ref = r;
                 p_m = m;
                 p_trigger = y.y_trigger;
                 p_detail = detail;
                 p_kind = y.y_kind;
                 p_seed = y.y_seed;
                 p_key = y.y_key;
                 p_abi = y.y_abi;
                 p_span = y.y_span;
                 p_fuel_left = fuel;
               }))
  | S_post p -> (
      let f = min slice_n p.p_fuel_left in
      match Machine.run ~fuel:f ?deadline_s p.p_m with
      | Machine.Fuel_exhausted when p.p_fuel_left > f ->
          let p = { p with p_fuel_left = p.p_fuel_left - f } in
          Option.iter
            (fun ckpt ->
              (* a failed sidecar write only costs resume granularity,
                 never campaign results *)
              match
                Snapshot.save
                  ~note:
                    (inflight_note ~key:p.p_key ~trigger:p.p_trigger ~detail:p.p_detail
                       ~fuel_left:p.p_fuel_left)
                  ~abi:(Abi.name p.p_abi)
                  ~path:(sidecar_path ckpt p.p_key)
                  p.p_m
              with
              | Ok _ | Error _ -> ())
            checkpoint;
          Exec.Pool.Yield (S_post p)
      | outcome ->
          Option.iter (fun ckpt -> remove_sidecar ckpt p.p_key) checkpoint;
          Exec.Pool.Done
            (mk_record p.p_ref p.p_kind p.p_seed p.p_trigger p.p_detail
               (classify p.p_ref outcome p.p_m)))

let run ?(jobs = 1) ?(retries = 1) ?checkpoint ?resume ?limit ?slice ?(obs = Obs.default)
    ?heartbeat c : report =
  let all = tasks c in
  let done_tbl = Hashtbl.create 256 in
  let resumed = match resume with None -> [] | Some path -> load_checkpoint path c in
  List.iter
    (fun rec_ ->
      Hashtbl.replace done_tbl (task_key rec_.workload rec_.abi rec_.kind rec_.seed) rec_)
    resumed;
  let key_of t = task_key t.t_workload.w_name (Abi.name t.t_abi) t.t_kind t.t_seed in
  let pending = List.filter (fun t -> not (Hashtbl.mem done_tbl (key_of t))) all in
  let pending =
    match limit with None -> pending | Some n -> List.filteri (fun i _ -> i < n) pending
  in
  let start = Unix.gettimeofday () in
  let total = List.length all in
  (* campaign-level observability: verdict counters keyed by verdict
     name (values independent of jobs/slice/resume history), the task
     latency histogram, a span per campaign/task/slice, and the
     heartbeat status file. Verdict tallies for the heartbeat are kept
     separately from the registry so a shared registry (the default)
     does not leak earlier campaigns into this one's status line. *)
  let m_tasks = Obs.counter obs "inject_tasks_total" in
  let m_errors = Obs.counter obs "inject_errors_total" in
  let m_verdict v =
    Obs.counter obs (Printf.sprintf "inject_verdicts_total{verdict=%S}" (verdict_key v))
  in
  let m_task_s = Obs.histogram obs "inject_task_seconds" in
  Obs.Counter.incr ~by:(List.length resumed) (Obs.counter obs "inject_resumed_total");
  let root = Obs.Span.enter obs "inject.campaign" in
  let hb_mu = Mutex.create () in
  let hb_done = ref (List.length resumed) in
  let hb_verdicts = Hashtbl.create 8 in
  let hb_walls = ref [] in
  let bump_verdict rec_ =
    let k = verdict_key rec_.verdict in
    Hashtbl.replace hb_verdicts k (1 + Option.value (Hashtbl.find_opt hb_verdicts k) ~default:0)
  in
  List.iter bump_verdict resumed;
  let status () =
    Mutex.protect hb_mu (fun () ->
        let verdicts =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) hb_verdicts []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        let p99 = Obs.quantile_of !hb_walls 0.99 in
        Obs.status_json ~verdicts
          ?p99_task_s:(if p99 = p99 then Some p99 else None)
          ~tasks_done:!hb_done ~tasks_total:total
          ~elapsed_s:(Unix.gettimeofday () -. start)
          ())
  in
  Option.iter (fun hb -> Obs.Heartbeat.force hb status) heartbeat;
  (* references are shared across every (kind, seed) task of a
     (workload, ABI) pair: compute each pair once, in parallel, before
     the fan-out. A failing reference (a codegen limit, say) fails each
     of its tasks with the same recorded error instead of aborting. *)
  let pairs =
    let seen = Hashtbl.create 32 in
    List.filter_map
      (fun t ->
        let k = (t.t_workload.w_name, Abi.name t.t_abi) in
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some (t.t_workload, t.t_abi)
        end)
      pending
  in
  let ref_cells =
    Obs.Span.with_ obs ~parent:root "inject.references" (fun () ->
        Exec.Pool.map ~jobs ~retries ~obs
          (fun (w, abi) -> reference ~fuel:c.c_fuel ?deadline_s:c.c_deadline_s w abi)
          pairs)
  in
  let ref_tbl = Hashtbl.create 32 in
  List.iter2
    (fun (w, abi) (cell : _ Exec.Pool.cell) ->
      Hashtbl.replace ref_tbl (w.w_name, Abi.name abi)
        (match cell.Exec.Pool.result with
        | Ok r -> Ok r
        | Error e -> Error e.Exec.Pool.exn))
    pairs ref_cells;
  (* the checkpoint is rewritten whole on (re)start — header, restored
     records, then one appended+flushed line per finished task, so a
     kill leaves at worst one torn final line *)
  let oc =
    Option.map
      (fun path ->
        let oc = open_out_bin path in
        output_string oc (header_json c);
        output_char oc '\n';
        List.iter
          (fun rec_ ->
            output_string oc (record_json rec_);
            output_char oc '\n')
          resumed;
        flush oc;
        oc)
      checkpoint
  in
  let on_result (cell : _ Exec.Pool.cell) =
    (match (oc, cell.Exec.Pool.result) with
    | Some oc, Ok rec_ ->
        output_string oc (record_json rec_);
        output_char oc '\n';
        flush oc
    | _ -> ());
    (match cell.Exec.Pool.result with
    | Ok rec_ ->
        Obs.Counter.incr m_tasks;
        Obs.Counter.incr (m_verdict rec_.verdict)
    | Error _ -> Obs.Counter.incr m_errors);
    Obs.Histogram.observe m_task_s cell.Exec.Pool.elapsed_s;
    Mutex.protect hb_mu (fun () ->
        incr hb_done;
        hb_walls := cell.Exec.Pool.elapsed_s :: !hb_walls;
        match cell.Exec.Pool.result with Ok rec_ -> bump_verdict rec_ | Error _ -> ());
    Option.iter (fun hb -> Obs.Heartbeat.beat hb status) heartbeat
  in
  let cells =
    match slice with
    | None ->
        Exec.Pool.map ~jobs ~retries ~obs ~on_result
          (fun t ->
            match Hashtbl.find ref_tbl (t.t_workload.w_name, Abi.name t.t_abi) with
            | Ok r ->
                Obs.Span.with_ obs ~parent:root ("inject.task:" ^ key_of t) (fun () ->
                    run_one ~fuel:c.c_fuel ?deadline_s:c.c_deadline_s r t.t_kind t.t_seed)
            | Error e -> failwith ("reference run failed: " ^ e))
          pending
    | Some n ->
        let n = max 1 n in
        let task_span = function
          | S_done _ -> Obs.Span.none
          | S_replay y -> y.y_span
          | S_post p -> p.p_span
        in
        Exec.Pool.map_sliced ~jobs ~retries ~obs ~on_result
          ~init:(init_sliced ~resume ~obs ~root ref_tbl key_of)
          ~slice:(fun st ->
            let span = task_span st in
            let parent = if Obs.Span.id span = 0 then root else span in
            let progress =
              Obs.Span.with_ obs ~parent "inject.slice" (fun () ->
                  slice_sliced ~slice:n ~fuel:c.c_fuel ?deadline_s:c.c_deadline_s ~checkpoint
                    st)
            in
            (match progress with
            | Exec.Pool.Done _ -> Obs.Span.exit obs span
            | Exec.Pool.Yield _ -> ());
            progress)
          pending
  in
  Option.iter close_out oc;
  (* in-flight sidecars are only meaningful for tasks that did not
     finish; drop the ones whose task just completed (or was restored
     whole from the checkpoint) *)
  Option.iter
    (fun ckpt ->
      List.iter
        (fun t ->
          let key = key_of t in
          if Hashtbl.mem done_tbl key then remove_sidecar ckpt key)
        all)
    checkpoint;
  let new_tbl = Hashtbl.create 256 in
  let errors = ref [] in
  List.iter2
    (fun t (cell : _ Exec.Pool.cell) ->
      match cell.Exec.Pool.result with
      | Ok rec_ -> Hashtbl.replace new_tbl (key_of t) rec_
      | Error e ->
          errors :=
            {
              e_workload = t.t_workload.w_name;
              e_abi = Abi.name t.t_abi;
              e_kind = t.t_kind;
              e_seed = t.t_seed;
              e_exn = e.Exec.Pool.exn;
            }
            :: !errors)
    pending cells;
  let records =
    List.filter_map
      (fun t ->
        match Hashtbl.find_opt done_tbl (key_of t) with
        | Some r -> Some r
        | None -> Hashtbl.find_opt new_tbl (key_of t))
      all
  in
  Obs.Span.exit obs root;
  let report =
    {
      r_campaign = c;
      r_records = records;
      r_errors = List.rev !errors;
      r_resumed = List.length resumed;
      r_jobs = jobs;
      r_wall_s = Unix.gettimeofday () -. start;
      r_task_seconds = List.rev !hb_walls;
    }
  in
  Option.iter (fun hb -> Obs.Heartbeat.force hb status) heartbeat;
  report

(* -- reporting -------------------------------------------------------------- *)

let error_json e =
  Printf.sprintf "{\"workload\":\"%s\",\"abi\":\"%s\",\"kind\":\"%s\",\"seed\":%d,\"exn\":\"%s\"}"
    (esc e.e_workload) (esc e.e_abi) (kind_key e.e_kind) e.e_seed (esc e.e_exn)

let cell_json ((abi, kind), c) =
  Printf.sprintf
    "{\"abi\":\"%s\",\"kind\":\"%s\",\"detected\":%d,\"masked\":%d,\"silent\":%d,\"hang\":%d}"
    (esc abi) (kind_key kind) c.n_detected c.n_masked c.n_silent c.n_hung

(* The timing key: everything scheduling-dependent in one excludable
   object, so the rest of the report stays byte-identical across jobs,
   slice granularity and resume history. *)
let timing_json (r : report) : string =
  let q p = Obs.quantile_of r.r_task_seconds p in
  let num f = if f <> f then Json.Null else Json.Num (Json.number f) in
  Json.encode
    (Json.Obj
       [
         ("jobs", Json.Num (string_of_int r.r_jobs));
         ("wall_s", num r.r_wall_s);
         ("tasks_timed", Json.Num (string_of_int (List.length r.r_task_seconds)));
         ("task_wall_p50_s", num (q 0.5));
         ("task_wall_p90_s", num (q 0.9));
         ("task_wall_p99_s", num (q 0.99));
       ])

(* The report JSON is deliberately timing-free apart from the one
   "timing" key, dropped with [~timing:false]: a resumed campaign must
   produce a byte-identical file once timing is excluded. *)
let report_json ?(timing = true) (r : report) : string =
  let c = r.r_campaign in
  Printf.sprintf
    "{\n\
    \  \"schema\": \"cheri_c.inject/v1\",\n\
    \  \"workloads\": [%s],\n\
    \  \"abis\": [%s],\n\
    \  \"kinds\": [%s],\n\
    \  \"seeds\": %d,\n\
    \  \"first_seed\": %d,\n\
    \  \"fuel\": %d,\n\
    \  \"tasks\": %d,\n\
    \  \"completed\": %d,\n%s\
    \  \"errors\": [%s],\n\
    \  \"matrix\": [\n    %s\n  ],\n\
    \  \"records\": [\n    %s\n  ]\n\
     }\n"
    (String.concat ", " (List.map (fun w -> "\"" ^ esc w.w_name ^ "\"") c.c_workloads))
    (String.concat ", " (List.map (fun a -> "\"" ^ esc (Abi.name a) ^ "\"") Abi.all))
    (String.concat ", " (List.map (fun k -> "\"" ^ kind_key k ^ "\"") c.c_kinds))
    c.c_seeds c.c_first_seed c.c_fuel
    (List.length (tasks c))
    (List.length r.r_records)
    (if timing then Printf.sprintf "  \"timing\": %s,\n" (timing_json r) else "")
    (String.concat "," (List.map error_json r.r_errors))
    (String.concat ",\n    " (List.map cell_json (matrix r)))
    (String.concat ",\n    " (List.map record_json r.r_records))

(* silent-corruption count for one ABI over a set of kinds — the
   acceptance check behind the detection matrix *)
let silent_count (r : report) ~abi kinds =
  List.fold_left
    (fun acc ((a, k), c) -> if a = abi && List.mem k kinds then acc + c.n_silent else acc)
    0 (matrix r)

let pp_report ppf (r : report) =
  let c = r.r_campaign in
  Format.fprintf ppf
    "injection campaign: %d workloads x %d ABIs x %d kinds x %d seeds = %d tasks@."
    (List.length c.c_workloads) (List.length Abi.all) (List.length c.c_kinds) c.c_seeds
    (List.length (tasks c));
  if r.r_resumed > 0 then
    Format.fprintf ppf "resumed: %d tasks restored from the checkpoint@." r.r_resumed;
  Format.fprintf ppf "%-10s %-12s %9s %7s %7s %5s@." "abi" "kind" "detected" "masked"
    "silent" "hang";
  List.iter
    (fun ((abi, kind), c) ->
      Format.fprintf ppf "%-10s %-12s %9d %7d %7d %5d@." abi (kind_key kind) c.n_detected
        c.n_masked c.n_silent c.n_hung)
    (matrix r);
  List.iter
    (fun e ->
      Format.fprintf ppf "error: %s/%s %s seed %d: %s@." e.e_workload e.e_abi
        (kind_key e.e_kind) e.e_seed e.e_exn)
    r.r_errors;
  Format.fprintf ppf "wall %.2fs on %d jobs@." r.r_wall_s r.r_jobs
