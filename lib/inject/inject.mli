(** Deterministic, seeded fault-injection campaigns over the compiled
    workloads — the experimental stress test of the paper's central
    claim that CHERI turns silent memory corruption into deterministic
    traps.

    A campaign is the cross product (workload x ABI x fault kind x
    seed). Each task replays its workload to a seed-derived instruction
    index, applies one fault there, runs the machine to completion
    under the fuel/wall-clock watchdog, and classifies the outcome
    against an unperturbed reference run. All fault parameters derive
    from (seed, workload, ABI, kind) via {!Rng}, and reports carry no
    timing, so a campaign resumed from a checkpoint reproduces the
    uninterrupted run's JSON byte for byte. *)

(** {1 Fault kinds} *)

type kind =
  | Bitflip
      (** flip one bit of live program data through the store path —
          the negative control: tags protect pointers, not plain data *)
  | Tag_clear
      (** a stray store over a stored pointer: on CHERI the granule
          tag clears (§4.2) and the next dereference traps; on MIPS the
          pointer silently changes *)
  | Tag_set
      (** forge a tag onto a granule of plain data (a tag-SRAM upset);
          dangerous only if the program later loads that granule as a
          capability, which provenance-respecting code never does *)
  | Cap_field
      (** corrupt one field (base/length/offset/perms) of a live
          capability, in a register or in memory *)
  | Alloc_fail  (** arm an allocator failure: an upcoming malloc/free traps *)

val all_kinds : kind list
val kind_key : kind -> string
val kind_of_key : string -> kind option

val pointer_protecting : kind -> bool
(** The tag/bounds fault kinds, for which the CHERI ABIs are expected
    to show {e zero} silent corruptions: [Tag_clear] (the §4.2
    integrity rule) and [Cap_field] (guard-field checks, provenance on
    address fields). [Tag_set] is excluded: forging a tag is a fault
    below the architecture, which the tag bit cannot police — it is a
    measured control, like [Bitflip]. *)

(** {1 Verdicts} *)

type verdict =
  | Detected of string  (** trapped; carries the pretty-printed trap *)
  | Masked  (** reference exit status and output anyway *)
  | Silent of string  (** wrong behaviour, no trap; carries the diff *)
  | Hung  (** fuel or wall-clock watchdog fired *)

val verdict_key : verdict -> string
(** ["detected" | "masked" | "silent" | "hang"]. *)

type record = {
  workload : string;
  abi : string;
  kind : kind;
  seed : int;
  trigger : int;  (** instruction index the fault was applied at *)
  detail : string;  (** what exactly was perturbed *)
  verdict : verdict;
}

(** {1 Workloads} *)

type workload = { w_name : string; w_source : Cheri_compiler.Abi.t -> string }

val builtin_workloads : workload list
(** Olden (4 kernels), Dhrystone, tcpdump, zlib — with parameters
    scaled down for replay (hundreds of thousands of instructions). *)

val workload_names : string list
val find_workload : string -> workload option

(** {1 Single injections} *)

type reference
(** A compiled workload plus its unperturbed run: outcome, output and
    retired-instruction count. Immutable; shared across the (kind,
    seed) tasks of one (workload, ABI) pair. *)

val default_fuel : int

val reference :
  ?fuel:int -> ?deadline_s:float -> workload -> Cheri_compiler.Abi.t -> reference

val run_one : ?fuel:int -> ?deadline_s:float -> reference -> kind -> int -> record
(** [run_one r kind seed] performs one injection. If the reference run
    itself was reaped by a watchdog, the record inherits [Hung]
    without replaying — a runaway workload degrades its own cell, not
    the campaign. *)

(** {1 Campaigns} *)

type campaign = {
  c_workloads : workload list;
  c_kinds : kind list;
  c_seeds : int;  (** seeds per (workload, ABI, kind) cell *)
  c_first_seed : int;
  c_fuel : int;
  c_deadline_s : float option;
}

val default_campaign :
  ?workloads:workload list ->
  ?kinds:kind list ->
  ?seeds:int ->
  ?first_seed:int ->
  ?fuel:int ->
  ?deadline_s:float ->
  unit ->
  campaign

type error = {
  e_workload : string;
  e_abi : string;
  e_kind : kind;
  e_seed : int;
  e_exn : string;
}

type report = {
  r_campaign : campaign;
  r_records : record list;
      (** canonical (workload, ABI, kind, seed) order, independent of
          job count and resume history *)
  r_errors : error list;
  r_resumed : int;  (** records restored from the checkpoint *)
  r_jobs : int;
  r_wall_s : float;
  r_task_seconds : float list;
      (** wall time of each freshly executed task, completion order —
          feeds the report's excludable "timing" key, never the
          byte-identical sections *)
}

exception Resume_mismatch of string
(** The resume file's header does not describe this campaign. *)

val run :
  ?jobs:int ->
  ?retries:int ->
  ?checkpoint:string ->
  ?resume:string ->
  ?limit:int ->
  ?slice:int ->
  ?obs:Cheri_obs.Obs.t ->
  ?heartbeat:Cheri_obs.Obs.Heartbeat.t ->
  campaign ->
  report
(** Run every task of the campaign over the domain pool.

    [obs] (default {!Cheri_obs.Obs.default}) receives
    [inject_tasks_total], [inject_errors_total], [inject_resumed_total]
    and per-verdict [inject_verdicts_total{verdict=...}] counters —
    all independent of [jobs]/[slice]/resume history — plus the
    [inject_task_seconds] latency histogram and campaign/task/slice
    spans. [heartbeat] makes the campaign write a
    {!Cheri_obs.Obs.status_json} file from its serialized result hook:
    once at start, at most once per interval as tasks finish, and once
    at the end.

    [checkpoint] writes an append-only JSONL file — a header line
    describing the campaign, then one record per finished task,
    flushed as completed — so a killed run leaves at worst one torn
    final line. [resume] reads such a file first and skips every task
    it already records (raises {!Resume_mismatch} on a parameter
    mismatch; tolerates a torn tail). [checkpoint] and [resume] may
    name the same file. [limit] caps how many pending tasks execute —
    a deterministic way to produce a partial checkpoint, as a kill
    would.

    [slice] switches to the preemptive engine
    ({!Cheri_exec.Exec.Pool.map_sliced}): each task advances at most
    [slice] instructions per turn through a fair round-robin queue.
    Because the simulation stops only between instructions, the report
    is bit-identical to the unsliced run for every slice size and job
    count. With [checkpoint] also set, every in-flight task persists a
    {!Cheri_snapshot.Snapshot} of its machine to a
    [<checkpoint>.inflight.<task>.snap] sidecar at each yield, and
    [resume] restores such tasks mid-run — a corrupt, stale or missing
    sidecar silently falls back to restarting that task, never to a
    wrong record. *)

(** {1 Reporting} *)

type counts = { n_detected : int; n_masked : int; n_silent : int; n_hung : int }

val matrix : report -> ((string * kind) * counts) list
(** Per (ABI name, kind) verdict counts, ABI-major, in campaign kind
    order — the detection-rate matrix. *)

val silent_count : report -> abi:string -> kind list -> int
(** Silent-corruption outcomes for one ABI summed over [kinds] — the
    acceptance check ({!pointer_protecting} kinds must count 0 on the
    CHERI ABIs). *)

val report_json : ?timing:bool -> report -> string
(** Deterministic report JSON (schema [cheri_c.inject/v1]): campaign
    parameters, error list, detection matrix, then every record in
    canonical order. All timing lives in one ["timing"] key (wall
    clock, job count, task-wall p50/p90/p99), emitted by default and
    dropped with [~timing:false] — resumed and uninterrupted runs emit
    identical bytes once timing is excluded. *)

val record_json : record -> string
val pp_report : Format.formatter -> report -> unit
