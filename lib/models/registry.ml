(* All pointer models, in the row order of Table 3.

   One entry per model, one [lookup] over it: the canonical CLI key,
   any aliases, and the display name printed in the paper's tables all
   resolve through the same list (previously three overlapping
   mechanisms: an ad-hoc record, [find] by display name and [by_key]
   alias matching). *)

type entry = {
  key : string;  (** canonical lookup key, lowercase *)
  aliases : string list;  (** alternate keys, lowercase *)
  display_name : string;  (** the name the paper's tables print *)
  model : Model.packed;
}

let pdp11 : Model.packed = (module Pdp11)
let hardbound : Model.packed = (module Hardbound)
let mpx : Model.packed = (module Mpx)
let relaxed : Model.packed = (module Relaxed)
let strict : Model.packed = (module Strict)
let cheriv2 : Model.packed = (module Cheri.V2)
let cheriv3 : Model.packed = (module Cheri.V3)

let make key aliases model =
  let module M = (val model : Model.S) in
  { key; aliases; display_name = M.name; model }

let entries : entry list =
  [
    make "pdp11" [ "x86"; "mips" ] pdp11;
    make "hardbound" [] hardbound;
    make "mpx" [ "intel-mpx" ] mpx;
    make "relaxed" [] relaxed;
    make "strict" [] strict;
    make "cheriv2" [ "v2" ] cheriv2;
    make "cheriv3" [ "v3" ] cheriv3;
  ]

let all = List.map (fun e -> e.model) entries
let keys = List.map (fun e -> e.key) entries

(* Case-insensitive; matches the key, any alias, or the display name. *)
let lookup q : entry option =
  let q = String.lowercase_ascii q in
  List.find_opt
    (fun e -> e.key = q || List.mem q e.aliases || String.lowercase_ascii e.display_name = q)
    entries
