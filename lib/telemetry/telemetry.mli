(** Execution telemetry: typed event sink, monotonic counters and
    machine-readable exporters.

    The paper's entire evaluation rests on observing what the abstract
    machine does — which idioms trap, where cycles go, how many
    capability memory operations each ABI incurs. This module is the
    one place those observations flow through: the softcore
    ({!Cheri_isa.Machine}), the tagged memory ({!Cheri_tagmem}) and
    the abstract-machine interpreter ({!Cheri_interp}) all publish
    events into a {!Sink.t}, and the exporters below turn a sink into
    a human-readable summary, a JSONL event dump, or a Chrome
    [trace_event] file loadable in [about:tracing]/Perfetto.

    Instrumentation is zero-cost when disabled: producers hold a
    {!Sink.null} sink and branch once on {!Sink.is_null} (the machine
    caches that test in a mutable bool it checks per retired
    instruction — a single predictable branch, never a per-event
    closure). *)

(** {1 Event taxonomy} *)

(** Coarse classification of retired instructions, for the per-class
    counters. The ISA maps {!Cheri_isa.Insn.t} onto these. *)
type opcode_class =
  | Op_nop
  | Op_alu  (** integer ALU, including immediates *)
  | Op_load  (** legacy (DDC-relative) data load *)
  | Op_store
  | Op_cap_load  (** capability-register-relative data load *)
  | Op_cap_store
  | Op_clc  (** capability load (CLC) *)
  | Op_csc  (** capability store (CSC) *)
  | Op_cap_query  (** CGetBase/CGetLen/CGetOffset/CGetTag/CGetPerm *)
  | Op_cap_modify  (** CIncOffset/CSetOffset/CIncBase/CSeal/... *)
  | Op_cap_jump  (** CJALR/CJR *)
  | Op_branch
  | Op_jump
  | Op_syscall
  | Op_halt

val all_opcode_classes : opcode_class list
val opcode_class_name : opcode_class -> string

(** Every way a run can stop abnormally, unified across the softcore's
    traps ({!Cheri_isa.Machine.trap}) and the abstract-machine
    interpreter's model faults. *)
type fault_kind =
  | F_tag
  | F_bounds
  | F_perm
  | F_length
  | F_align
  | F_repr
  | F_seal
  | F_unsupported
  | F_overflow
  | F_div_zero
  | F_bus
  | F_unresolved
  | F_bad_syscall
  | F_oom
  | F_bad_free
  | F_pc_range
  | F_model  (** an interpreter-level (pointer-model) fault *)

val all_fault_kinds : fault_kind list
val fault_kind_name : fault_kind -> string

val fault_kind_of_cap : Cheri_core.Cap_fault.t -> fault_kind
(** The counter bucket for a hardware capability fault. *)

type event =
  | Instret of { pc : int; cls : opcode_class }
  | Fault of { pc : int; kind : fault_kind; detail : string }
  | Tag_write of { addr : int64; tag : bool }  (** CSC wrote a capability *)
  | Tag_clear of { addr : int64 }
      (** a plain data store detagged a granule that held a valid
          capability — the collateral-invalidation number the tag
          granularity ablation reports *)
  | Syscall of { pc : int; number : int64 }
  | Alloc of { base : int64; size : int64 }
  | Free of { base : int64 }
  | Cache_miss of { level : int; addr : int64 }  (** level 1 or 2 *)
  | Idiom_case of { model : string; idiom : string; result : string }
  | Custom of { name : string; detail : string }

val pp_event : Format.formatter -> event -> unit

(** {1 The sink} *)

module Sink : sig
  type t

  val null : t
  (** The disabled sink: {!record} on it is a no-op, and producers may
      (and do) skip instrumentation entirely after one {!is_null}
      test. *)

  val is_null : t -> bool

  val create : ?capacity:int -> unit -> t
  (** A live sink. [capacity] (default 4096) bounds the event ring
      buffer; older events are overwritten, counters are never
      lost. [capacity 0] keeps counters and the hot-PC histogram but
      records no events. *)

  val record : t -> ?ts:int -> event -> unit
  (** Append an event. [ts] is the producer's clock (the machine
      passes its cycle counter); when absent a per-sink sequence
      number is used, so event order is always preserved. *)

  val events : t -> (int * event) list
  (** Ring contents, oldest first, as [(ts, event)]. *)

  val total_events : t -> int
  (** Events ever recorded (monotonic; never decreases). *)

  val dropped_events : t -> int
  (** Events pushed out of the ring: [total_events - still buffered]. *)

  val opcode_count : t -> opcode_class -> int
  val fault_count : t -> fault_kind -> int

  val hot_pcs : ?n:int -> t -> (int * int) list
  (** The [n] (default 10) most frequently retired PCs as
      [(pc, count)], hottest first. *)

  val tag_writes : t -> int
  val collateral_tag_clears : t -> int
  val syscalls : t -> int
  val allocs : t -> int
  val frees : t -> int
  val alloc_bytes : t -> int64
  val cache_misses : t -> level:int -> int
end

(** {1 Snapshots} *)

(** An immutable copy of a sink's counters, cheap enough to attach to
    every {!Cheri_workloads.Runner.measurement}. *)
type snapshot = {
  total_events : int;
  dropped_events : int;
  opcode_counts : (opcode_class * int) list;  (** non-zero classes only *)
  fault_counts : (fault_kind * int) list;  (** non-zero kinds only *)
  hot_pcs : (int * int) list;
  tag_writes : int;
  collateral_tag_clears : int;
  syscalls : int;
  allocs : int;
  frees : int;
  alloc_bytes : int64;
  l1_miss_events : int;
  l2_miss_events : int;
}

val snapshot : ?top_n:int -> Sink.t -> snapshot
(** [top_n] (default 10) limits [hot_pcs]. *)

(** {1 Exporters} *)

val pp_summary : Format.formatter -> Sink.t -> unit
(** Human-readable report: per-opcode-class and per-fault-kind
    counters, allocator and tag activity, and the hot-PC profile. *)

val snapshot_to_json : snapshot -> string
(** One JSON object (no trailing newline). *)

val jsonl_of_events : Sink.t -> string
(** The ring contents as JSON Lines: one [{"ts":..,"ev":..,...}]
    object per line, oldest first. *)

val chrome_trace : Sink.t -> string
(** The ring contents in Chrome [trace_event] format — a JSON array of
    instant events (plus process metadata) with the producer timestamp
    as the microsecond clock — loadable in [about:tracing] and
    Perfetto. *)

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal — an
    alias of {!Cheri_util.Json.escape}, the repo's one escaper. *)

val obs_to_counters : ?obs:Cheri_obs.Obs.t -> snapshot -> unit
(** Bridge a run's counters (retired instructions by class, faults by
    kind, tag activity) into a metrics registry (default
    {!Cheri_obs.Obs.default}) as labelled [machine_*_total] counters.
    One call per run; the per-instruction hot path is never
    instrumented directly. *)
