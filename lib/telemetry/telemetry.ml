(* Typed event sink with a fixed-size ring buffer, monotonic counters,
   a hot-PC histogram, and summary/JSONL/Chrome-trace exporters. *)

type opcode_class =
  | Op_nop
  | Op_alu
  | Op_load
  | Op_store
  | Op_cap_load
  | Op_cap_store
  | Op_clc
  | Op_csc
  | Op_cap_query
  | Op_cap_modify
  | Op_cap_jump
  | Op_branch
  | Op_jump
  | Op_syscall
  | Op_halt

let all_opcode_classes =
  [
    Op_nop; Op_alu; Op_load; Op_store; Op_cap_load; Op_cap_store; Op_clc; Op_csc;
    Op_cap_query; Op_cap_modify; Op_cap_jump; Op_branch; Op_jump; Op_syscall; Op_halt;
  ]

let opcode_class_index = function
  | Op_nop -> 0
  | Op_alu -> 1
  | Op_load -> 2
  | Op_store -> 3
  | Op_cap_load -> 4
  | Op_cap_store -> 5
  | Op_clc -> 6
  | Op_csc -> 7
  | Op_cap_query -> 8
  | Op_cap_modify -> 9
  | Op_cap_jump -> 10
  | Op_branch -> 11
  | Op_jump -> 12
  | Op_syscall -> 13
  | Op_halt -> 14

let n_opcode_classes = List.length all_opcode_classes

let opcode_class_name = function
  | Op_nop -> "nop"
  | Op_alu -> "alu"
  | Op_load -> "load"
  | Op_store -> "store"
  | Op_cap_load -> "cap_load"
  | Op_cap_store -> "cap_store"
  | Op_clc -> "clc"
  | Op_csc -> "csc"
  | Op_cap_query -> "cap_query"
  | Op_cap_modify -> "cap_modify"
  | Op_cap_jump -> "cap_jump"
  | Op_branch -> "branch"
  | Op_jump -> "jump"
  | Op_syscall -> "syscall"
  | Op_halt -> "halt"

type fault_kind =
  | F_tag
  | F_bounds
  | F_perm
  | F_length
  | F_align
  | F_repr
  | F_seal
  | F_unsupported
  | F_overflow
  | F_div_zero
  | F_bus
  | F_unresolved
  | F_bad_syscall
  | F_oom
  | F_bad_free
  | F_pc_range
  | F_model

let all_fault_kinds =
  [
    F_tag; F_bounds; F_perm; F_length; F_align; F_repr; F_seal; F_unsupported;
    F_overflow; F_div_zero; F_bus; F_unresolved; F_bad_syscall; F_oom; F_bad_free;
    F_pc_range; F_model;
  ]

let fault_kind_index = function
  | F_tag -> 0
  | F_bounds -> 1
  | F_perm -> 2
  | F_length -> 3
  | F_align -> 4
  | F_repr -> 5
  | F_seal -> 6
  | F_unsupported -> 7
  | F_overflow -> 8
  | F_div_zero -> 9
  | F_bus -> 10
  | F_unresolved -> 11
  | F_bad_syscall -> 12
  | F_oom -> 13
  | F_bad_free -> 14
  | F_pc_range -> 15
  | F_model -> 16

let n_fault_kinds = List.length all_fault_kinds

let fault_kind_name = function
  | F_tag -> "tag_violation"
  | F_bounds -> "bounds_violation"
  | F_perm -> "perm_violation"
  | F_length -> "length_violation"
  | F_align -> "alignment_violation"
  | F_repr -> "representation_violation"
  | F_seal -> "seal_violation"
  | F_unsupported -> "unsupported"
  | F_overflow -> "signed_overflow"
  | F_div_zero -> "div_by_zero"
  | F_bus -> "bus_error"
  | F_unresolved -> "unresolved_operand"
  | F_bad_syscall -> "invalid_syscall"
  | F_oom -> "out_of_memory"
  | F_bad_free -> "invalid_free"
  | F_pc_range -> "pc_out_of_range"
  | F_model -> "model_fault"

let fault_kind_of_cap : Cheri_core.Cap_fault.t -> fault_kind = function
  | Cheri_core.Cap_fault.Tag_violation -> F_tag
  | Bounds_violation _ -> F_bounds
  | Perm_violation _ -> F_perm
  | Length_violation -> F_length
  | Alignment_violation _ -> F_align
  | Representation_violation -> F_repr
  | Seal_violation _ -> F_seal
  | Unsupported _ -> F_unsupported

type event =
  | Instret of { pc : int; cls : opcode_class }
  | Fault of { pc : int; kind : fault_kind; detail : string }
  | Tag_write of { addr : int64; tag : bool }
  | Tag_clear of { addr : int64 }
  | Syscall of { pc : int; number : int64 }
  | Alloc of { base : int64; size : int64 }
  | Free of { base : int64 }
  | Cache_miss of { level : int; addr : int64 }
  | Idiom_case of { model : string; idiom : string; result : string }
  | Custom of { name : string; detail : string }

let pp_event ppf = function
  | Instret { pc; cls } -> Format.fprintf ppf "instret pc=%d %s" pc (opcode_class_name cls)
  | Fault { pc; kind; detail } ->
      Format.fprintf ppf "fault pc=%d %s%s" pc (fault_kind_name kind)
        (if detail = "" then "" else ": " ^ detail)
  | Tag_write { addr; tag } -> Format.fprintf ppf "tag_write 0x%Lx tag=%b" addr tag
  | Tag_clear { addr } -> Format.fprintf ppf "tag_clear 0x%Lx" addr
  | Syscall { pc; number } -> Format.fprintf ppf "syscall pc=%d n=%Ld" pc number
  | Alloc { base; size } -> Format.fprintf ppf "alloc 0x%Lx size=%Ld" base size
  | Free { base } -> Format.fprintf ppf "free 0x%Lx" base
  | Cache_miss { level; addr } -> Format.fprintf ppf "l%d_miss 0x%Lx" level addr
  | Idiom_case { model; idiom; result } ->
      Format.fprintf ppf "idiom %s/%s: %s" model idiom result
  | Custom { name; detail } ->
      Format.fprintf ppf "%s%s" name (if detail = "" then "" else ": " ^ detail)

(* -- the sink ------------------------------------------------------------ *)

module Sink = struct
  type t = {
    enabled : bool;
    capacity : int;
    ring : (int * event) array;
    mutable total : int;  (* events ever recorded *)
    mutable seq : int;  (* fallback clock *)
    op_counts : int array;
    fault_counts : int array;
    hot : (int, int ref) Hashtbl.t;
    mutable tag_writes : int;
    mutable tag_clears : int;
    mutable syscalls : int;
    mutable allocs : int;
    mutable frees : int;
    mutable alloc_bytes : int64;
    cache_miss_counts : int array;  (* index = level - 1 *)
  }

  let make ~enabled ~capacity =
    {
      enabled;
      capacity;
      ring = Array.make (max capacity 1) (0, Custom { name = ""; detail = "" });
      total = 0;
      seq = 0;
      op_counts = Array.make n_opcode_classes 0;
      fault_counts = Array.make n_fault_kinds 0;
      hot = Hashtbl.create (if enabled then 256 else 1);
      tag_writes = 0;
      tag_clears = 0;
      syscalls = 0;
      allocs = 0;
      frees = 0;
      alloc_bytes = 0L;
      cache_miss_counts = Array.make 2 0;
    }

  let null = make ~enabled:false ~capacity:0
  let is_null t = not t.enabled

  let create ?(capacity = 4096) () =
    if capacity < 0 then invalid_arg "Telemetry.Sink.create: negative capacity";
    make ~enabled:true ~capacity

  let count t ev =
    match ev with
    | Instret { pc; cls } -> (
        t.op_counts.(opcode_class_index cls) <- t.op_counts.(opcode_class_index cls) + 1;
        match Hashtbl.find_opt t.hot pc with
        | Some r -> incr r
        | None -> Hashtbl.add t.hot pc (ref 1))
    | Fault { kind; _ } ->
        t.fault_counts.(fault_kind_index kind) <- t.fault_counts.(fault_kind_index kind) + 1
    | Tag_write _ -> t.tag_writes <- t.tag_writes + 1
    | Tag_clear _ -> t.tag_clears <- t.tag_clears + 1
    | Syscall _ -> t.syscalls <- t.syscalls + 1
    | Alloc { size; _ } ->
        t.allocs <- t.allocs + 1;
        t.alloc_bytes <- Int64.add t.alloc_bytes size
    | Free _ -> t.frees <- t.frees + 1
    | Cache_miss { level; _ } ->
        if level >= 1 && level <= 2 then
          t.cache_miss_counts.(level - 1) <- t.cache_miss_counts.(level - 1) + 1
    | Idiom_case _ | Custom _ -> ()

  let record t ?ts ev =
    if t.enabled then begin
      let ts =
        match ts with
        | Some ts -> ts
        | None ->
            t.seq <- t.seq + 1;
            t.seq
      in
      count t ev;
      if t.capacity > 0 then t.ring.(t.total mod t.capacity) <- (ts, ev);
      t.total <- t.total + 1
    end

  let total_events t = t.total
  let buffered t = min t.total t.capacity
  let dropped_events t = t.total - buffered t

  let events t =
    let n = buffered t in
    let start = t.total - n in
    List.init n (fun i -> t.ring.((start + i) mod max t.capacity 1))

  let opcode_count t cls = t.op_counts.(opcode_class_index cls)
  let fault_count t kind = t.fault_counts.(fault_kind_index kind)

  let hot_pcs ?(n = 10) t =
    let all = Hashtbl.fold (fun pc r acc -> (pc, !r) :: acc) t.hot [] in
    let sorted =
      List.sort (fun (pa, ca) (pb, cb) -> if cb <> ca then compare cb ca else compare pa pb) all
    in
    List.filteri (fun i _ -> i < n) sorted

  let tag_writes t = t.tag_writes
  let collateral_tag_clears t = t.tag_clears
  let syscalls t = t.syscalls
  let allocs t = t.allocs
  let frees t = t.frees
  let alloc_bytes t = t.alloc_bytes

  let cache_misses t ~level =
    if level < 1 || level > 2 then invalid_arg "Telemetry.Sink.cache_misses: level must be 1 or 2";
    t.cache_miss_counts.(level - 1)
end

(* -- snapshots ----------------------------------------------------------- *)

type snapshot = {
  total_events : int;
  dropped_events : int;
  opcode_counts : (opcode_class * int) list;
  fault_counts : (fault_kind * int) list;
  hot_pcs : (int * int) list;
  tag_writes : int;
  collateral_tag_clears : int;
  syscalls : int;
  allocs : int;
  frees : int;
  alloc_bytes : int64;
  l1_miss_events : int;
  l2_miss_events : int;
}

let snapshot ?(top_n = 10) (s : Sink.t) =
  let nonzero all count = List.filter_map (fun k -> match count k with 0 -> None | n -> Some (k, n)) all in
  {
    total_events = Sink.total_events s;
    dropped_events = Sink.dropped_events s;
    opcode_counts = nonzero all_opcode_classes (Sink.opcode_count s);
    fault_counts = nonzero all_fault_kinds (Sink.fault_count s);
    hot_pcs = Sink.hot_pcs ~n:top_n s;
    tag_writes = Sink.tag_writes s;
    collateral_tag_clears = Sink.collateral_tag_clears s;
    syscalls = Sink.syscalls s;
    allocs = Sink.allocs s;
    frees = Sink.frees s;
    alloc_bytes = Sink.alloc_bytes s;
    l1_miss_events = Sink.cache_misses s ~level:1;
    l2_miss_events = Sink.cache_misses s ~level:2;
  }

(* -- exporters ----------------------------------------------------------- *)

let pp_summary ppf (s : Sink.t) =
  let snap = snapshot s in
  Format.fprintf ppf "telemetry: %d events (%d dropped from ring)@." snap.total_events
    snap.dropped_events;
  if snap.opcode_counts <> [] then begin
    Format.fprintf ppf "instructions by class:@.";
    List.iter
      (fun (cls, n) -> Format.fprintf ppf "  %-12s%10d@." (opcode_class_name cls) n)
      snap.opcode_counts
  end;
  Format.fprintf ppf "faults by kind:%s@." (if snap.fault_counts = [] then " (none)" else "");
  List.iter
    (fun (k, n) -> Format.fprintf ppf "  %-24s%6d@." (fault_kind_name k) n)
    snap.fault_counts;
  if snap.hot_pcs <> [] then begin
    Format.fprintf ppf "hot PCs (top %d):@." (List.length snap.hot_pcs);
    List.iter (fun (pc, n) -> Format.fprintf ppf "  pc %6d%10d@." pc n) snap.hot_pcs
  end;
  Format.fprintf ppf
    "tag writes: %d  collateral tag clears: %d  syscalls: %d  allocs: %d  frees: %d  alloc bytes: \
     %Ld@."
    snap.tag_writes snap.collateral_tag_clears snap.syscalls snap.allocs snap.frees
    snap.alloc_bytes;
  Format.fprintf ppf "cache miss events: L1 %d  L2 %d@." snap.l1_miss_events snap.l2_miss_events

(* one escaper for the whole repo — kept under its historical name for
   the exporters below and their callers *)
let json_escape = Cheri_util.Json.escape

(* Bridge a run's retired-instruction and fault counters into the
   metrics registry. Called once per run with a sink snapshot — the
   machine's per-instruction hot path stays uninstrumented, so the
   null-registry perf budgets hold. Counter values depend only on what
   the machine executed, never on scheduling. *)
let obs_to_counters ?(obs = Cheri_obs.Obs.default) (s : snapshot) =
  let count name n = if n > 0 then Cheri_obs.Obs.Counter.incr ~by:n (Cheri_obs.Obs.counter obs name) in
  List.iter
    (fun (cls, n) ->
      count (Printf.sprintf "machine_insns_total{class=%S}" (opcode_class_name cls)) n)
    s.opcode_counts;
  List.iter
    (fun (kind, n) ->
      count (Printf.sprintf "machine_faults_total{kind=%S}" (fault_kind_name kind)) n)
    s.fault_counts;
  count "machine_events_total" s.total_events;
  count "machine_tag_writes_total" s.tag_writes;
  count "machine_collateral_tag_clears_total" s.collateral_tag_clears

let snapshot_to_json (s : snapshot) =
  let b = Buffer.create 512 in
  let pair_list to_name xs =
    String.concat ","
      (List.map (fun (k, n) -> Printf.sprintf "\"%s\":%d" (json_escape (to_name k)) n) xs)
  in
  Buffer.add_string b
    (Printf.sprintf "{\"total_events\":%d,\"dropped_events\":%d," s.total_events s.dropped_events);
  Buffer.add_string b
    (Printf.sprintf "\"opcode_counts\":{%s}," (pair_list opcode_class_name s.opcode_counts));
  Buffer.add_string b
    (Printf.sprintf "\"fault_counts\":{%s}," (pair_list fault_kind_name s.fault_counts));
  Buffer.add_string b
    (Printf.sprintf "\"hot_pcs\":[%s],"
       (String.concat ","
          (List.map (fun (pc, n) -> Printf.sprintf "{\"pc\":%d,\"count\":%d}" pc n) s.hot_pcs)));
  Buffer.add_string b
    (Printf.sprintf
       "\"tag_writes\":%d,\"collateral_tag_clears\":%d,\"syscalls\":%d,\"allocs\":%d,\"frees\":%d,\"alloc_bytes\":%Ld,"
       s.tag_writes s.collateral_tag_clears s.syscalls s.allocs s.frees s.alloc_bytes);
  Buffer.add_string b
    (Printf.sprintf "\"l1_miss_events\":%d,\"l2_miss_events\":%d}" s.l1_miss_events
       s.l2_miss_events);
  Buffer.contents b

(* The JSON payload shared by the JSONL and Chrome-trace emitters:
   an event name plus its arguments object. *)
let event_fields = function
  | Instret { pc; cls } ->
      ("instret", Printf.sprintf "{\"pc\":%d,\"class\":\"%s\"}" pc (opcode_class_name cls))
  | Fault { pc; kind; detail } ->
      ( "fault",
        Printf.sprintf "{\"pc\":%d,\"kind\":\"%s\",\"detail\":\"%s\"}" pc (fault_kind_name kind)
          (json_escape detail) )
  | Tag_write { addr; tag } ->
      ("tag_write", Printf.sprintf "{\"addr\":%Ld,\"tag\":%b}" addr tag)
  | Tag_clear { addr } -> ("tag_clear", Printf.sprintf "{\"addr\":%Ld}" addr)
  | Syscall { pc; number } -> ("syscall", Printf.sprintf "{\"pc\":%d,\"number\":%Ld}" pc number)
  | Alloc { base; size } -> ("alloc", Printf.sprintf "{\"base\":%Ld,\"size\":%Ld}" base size)
  | Free { base } -> ("free", Printf.sprintf "{\"base\":%Ld}" base)
  | Cache_miss { level; addr } ->
      ("cache_miss", Printf.sprintf "{\"level\":%d,\"addr\":%Ld}" level addr)
  | Idiom_case { model; idiom; result } ->
      ( "idiom_case",
        Printf.sprintf "{\"model\":\"%s\",\"idiom\":\"%s\",\"result\":\"%s\"}"
          (json_escape model) (json_escape idiom) (json_escape result) )
  | Custom { name; detail } ->
      ("custom", Printf.sprintf "{\"name\":\"%s\",\"detail\":\"%s\"}" (json_escape name)
           (json_escape detail))

let jsonl_of_events (s : Sink.t) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (ts, ev) ->
      let name, args = event_fields ev in
      Buffer.add_string b (Printf.sprintf "{\"ts\":%d,\"ev\":\"%s\",\"args\":%s}\n" ts name args))
    (Sink.events s);
  Buffer.contents b

let chrome_trace (s : Sink.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"cheri_c \
     softcore\"}}";
  List.iter
    (fun (ts, ev) ->
      let name, args = event_fields ev in
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":1,\"tid\":1,\"args\":%s}"
           name ts args))
    (Sink.events s);
  Buffer.add_string b "]\n";
  Buffer.contents b
