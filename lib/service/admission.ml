(* Bounded admission control for the multi-tenant service.

   The contract under overload is a structured rejection, not queue
   growth: the server holds at most [capacity] live tenants (admitted,
   not yet finished), and a submit past that cap is answered with
   `Overloaded` plus a retry-after hint. The hint reuses the pool's
   decorrelated-jitter schedule (Exec.Pool.backoff_duration) keyed by
   the run of consecutive rejections: the first rejected client is told
   to come back in ~base seconds, and under sustained overload the
   hints stretch (capped — see [hint_cap_s]) and de-synchronize — a
   thundering herd of rejected clients is re-spread instead of
   re-colliding. An admit resets the streak: once capacity frees up,
   hints snap back to the base.

   Capacity is dynamic: a sharded fleet shrinks it when a shard drains
   or dies ([set_capacity]), so the rejection rate — and through the
   streak, the hints — scales with fleet-wide pressure rather than any
   single shard's. Shrinking below the current live count is legal:
   nothing is evicted, but no one new is admitted until enough live
   tenants finish.

   The state machine is tiny and single-threaded by design (the
   supervisor loop is the only caller); keeping it pure of I/O makes
   the boundary cases unit-testable. *)

type decision = Admit | Reject of { retry_after_s : float }

type t = {
  mutable capacity : int;
  retry_base_s : float;
  seed : int;
  mutable live : int;
  mutable streak : int;  (* consecutive rejections since the last admit *)
  mutable admitted : int;
  mutable rejected : int;
}

(* The worst retry-after hint a client can ever be quoted. The jitter
   curve's own cap is 64x the base, which for a service-scale base
   (seconds, not the pool's default 50 ms) quotes multi-minute pauses
   under a sustained rejection storm — long past the point where the
   fleet has probably recovered. 30 s keeps rejected clients coming
   back often enough to find freed capacity. *)
let hint_cap_s = 30.

let create ?(seed = 0) ?(retry_base_s = 0.05) ~capacity () =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  { capacity; retry_base_s; seed; live = 0; streak = 0; admitted = 0; rejected = 0 }

let set_capacity t capacity =
  if capacity < 1 then invalid_arg "Admission.set_capacity: capacity must be >= 1";
  t.capacity <- capacity

let request t =
  if t.live < t.capacity then begin
    t.live <- t.live + 1;
    t.streak <- 0;
    t.admitted <- t.admitted + 1;
    Admit
  end
  else begin
    t.streak <- t.streak + 1;
    t.rejected <- t.rejected + 1;
    (* cap the attempt index so the hint saturates instead of the
       backoff loop doing unbounded work under a rejection storm *)
    let attempt = min t.streak 8 in
    (* the final Float.min enforces the ceiling even when the
       configured base itself exceeds it (backoff_duration's cap
       clamps no lower than its base) *)
    Reject
      {
        retry_after_s =
          Float.min hint_cap_s
            (Cheri_exec.Exec.Pool.backoff_duration ~cap_s:hint_cap_s ~base_s:t.retry_base_s
               ~seed:t.seed ~task:0 ~attempt ());
      }
  end

let admit_forced t =
  t.live <- t.live + 1;
  t.streak <- 0;
  t.admitted <- t.admitted + 1

let release t = if t.live > 0 then t.live <- t.live - 1
let live t = t.live
let capacity t = t.capacity
let admitted t = t.admitted
let rejected t = t.rejected
