(* Bounded admission control for the multi-tenant service.

   The contract under overload is a structured rejection, not queue
   growth: the server holds at most [capacity] live tenants (admitted,
   not yet finished), and a submit past that cap is answered with
   `Overloaded` plus a retry-after hint. The hint reuses the pool's
   decorrelated-jitter schedule (Exec.Pool.backoff_duration) keyed by
   the run of consecutive rejections: the first rejected client is told
   to come back in ~base seconds, and under sustained overload the
   hints stretch (capped at 64x base) and de-synchronize — a thundering
   herd of rejected clients is re-spread instead of re-colliding. An
   admit resets the streak: once capacity frees up, hints snap back to
   the base.

   The state machine is tiny and single-threaded by design (the
   supervisor loop is the only caller); keeping it pure of I/O makes
   the boundary cases unit-testable. *)

type decision = Admit | Reject of { retry_after_s : float }

type t = {
  capacity : int;
  retry_base_s : float;
  seed : int;
  mutable live : int;
  mutable streak : int;  (* consecutive rejections since the last admit *)
  mutable admitted : int;
  mutable rejected : int;
}

let create ?(seed = 0) ?(retry_base_s = 0.05) ~capacity () =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  { capacity; retry_base_s; seed; live = 0; streak = 0; admitted = 0; rejected = 0 }

let request t =
  if t.live < t.capacity then begin
    t.live <- t.live + 1;
    t.streak <- 0;
    t.admitted <- t.admitted + 1;
    Admit
  end
  else begin
    t.streak <- t.streak + 1;
    t.rejected <- t.rejected + 1;
    (* cap the attempt index so the hint saturates instead of the
       backoff loop doing unbounded work under a rejection storm *)
    let attempt = min t.streak 8 in
    Reject
      {
        retry_after_s =
          Cheri_exec.Exec.Pool.backoff_duration ~base_s:t.retry_base_s ~seed:t.seed ~task:0
            ~attempt;
      }
  end

let release t = if t.live > 0 then t.live <- t.live - 1
let live t = t.live
let capacity t = t.capacity
let admitted t = t.admitted
let rejected t = t.rejected
