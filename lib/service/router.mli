(** The shard router: one client-facing socket over N supervisor
    shards, with live tenant migration, graceful drain, and automatic
    failover.

    Each shard is a full PR-8 supervisor ({!Service.server_main}) in
    its own process, on its own state directory and Unix socket, with
    its own worker pool. The router admits tenants once, fleet-wide
    ({!Admission}), assigns global tenant ids, and places each tenant
    by rendezvous hashing; shards adopt router placements
    unconditionally via the explicit-tenant submit path.

    Because checkpoints are self-describing, a live tenant migrates
    between shards as a file rename plus an adopt-submit. The router
    performs migrations on three triggers: a drain (admin verb, shard
    SIGTERM, or fleet SIGTERM — zero slices lost), an evict during
    rebalance (zero slices lost), and failover after a shard dies or
    stops answering (at most one slice lost). The migration lineage
    counter rides the assignment into the worker and back out in the
    result, so [sum of migrations reported by finished tenants =
    migrations the router performed] — an invariant the chaos harness
    checks exactly.

    Wire protocol (same framing as {!Protocol}): ops [submit], [poll],
    [stats], [metrics], [shutdown], plus the admin verbs [drain]
    (["shard": k] — park that shard's tenants and hold the slot) and
    [rebalance] (revive held slots, evict tenants off non-owner
    shards). SIGTERM drains every shard, writes a fleet manifest
    ({!Service.manifest_path} in the fleet directory), and exits 0. *)

type rconfig = {
  r_dir : string;  (** fleet state directory; shard [k] lives in [shard_<k>/] *)
  r_socket : string;  (** the one client-facing socket *)
  r_shards : int;
  r_workers : int;  (** worker processes per shard *)
  r_worker_jobs : int;
  r_capacity : int;  (** fleet-wide admission cap *)
  r_slice : int;
  r_fuel : int;
  r_heartbeat_s : float;  (** worker heartbeat inside each shard *)
  r_status_s : float;  (** shard status-file beat; stale after 2x *)
  r_tick_s : float;  (** router select timeout / maintenance period *)
  r_take_s : float;  (** per-shard result-harvest period *)
  r_req_timeout_s : float;  (** wire deadline for one shard request *)
  r_retry_base_s : float;
  r_seed : int;
}

val default_rconfig : dir:string -> rconfig
(** 3 shards x 2 workers x 1 domain, fleet capacity 64. *)

val rconfig_to_json : rconfig -> string
val rconfig_of_json : string -> (rconfig, string) result

val shard_dir : rconfig -> int -> string
val shard_config : rconfig -> int -> Service.config

val hrw_order : seed:int -> shards:int -> int -> int list
(** All shard ids ranked for a tenant id, best first — the head is the
    rendezvous owner, the tail the deterministic fallback order.
    Exposed for tests (stability, permutation). *)

val router_marker : string

val child_dispatch : unit -> unit
(** Call alongside {!Service.child_dispatch} in any binary that hosts
    the fleet: if [argv.(1)] is {!router_marker}, the process runs the
    router on the JSON rconfig in [argv.(2)] and never returns. *)

val router_main : rconfig -> unit
(** Run the router in this process: spawn the shards, serve the fleet
    socket until [shutdown] — or SIGTERM (drain every shard, absorb
    their manifests, write the fleet manifest, stop) — and return.
    Exits 2 with a structured message if the socket path is genuinely
    in use. *)
