(* The shard router: one client-facing front-end over N supervisor
   shards, with live tenant migration as a first-class operation.

   Topology: the router owns the client socket and spawns each shard
   as a separate supervisor process (Service.server_main via the
   hidden argv marker) on its own state directory and Unix socket.
   Tenants are admitted once, fleet-wide, at the router (shards adopt
   router placements unconditionally — the explicit-tenant submit
   path), and placed by rendezvous hashing so placement is stable and
   deterministic for a given fleet shape.

   Migration rides entirely on the self-describing checkpoint files:
   a parked tenant IS its checkpoint, so moving one between shards is
   a file rename plus an adopt-submit — no state is copied over the
   wire. Three flows produce migrations:

   - drain (admin verb, shard SIGTERM, or router SIGTERM): the shard
     parks every tenant at its next yield, writes a manifest
     (drained.json) of parked tenants and untaken results, and exits
     0; the router reaps the manifest and requeues the parked tenants
     on surviving shards. Zero slices are lost.
   - evict (rebalance): one tenant is parked mid-run and handed back
     through the next [take]; same zero-loss contract.
   - failover (shard SIGKILLed, or SIGKILLed by the router after its
     status heartbeat went stale / its connection stopped answering):
     the router stages whatever checkpoints the dead shard left and
     requeues; each tenant loses at most the one slice in flight.

   The router's view of shard health is two independent signals: the
   shard's status-file heartbeat (ages visibly under SIGSTOP — the
   supervisor analog of the PR-8 worker stall plane) and the wire
   itself (a [take] that times out repeatedly). Either one answers a
   wedged shard with SIGKILL and the failover path; a *dead* shard is
   caught by waitpid in the same tick.

   Accounting is exact by construction: the router increments its
   migrations counter at the same moment it increments the tenant's
   migration lineage counter, and that counter rides the assignment
   into the worker and back out through the result — so the sum of
   migrations reported by finished tenants equals the migrations the
   router performed, and the chaos harness asserts it. *)

module Json = Cheri_util.Json
module Obs = Cheri_obs.Obs

let jint n = Json.Num (string_of_int n)
let jfloat f = if f <> f then Json.Null else Json.Num (Json.number f)
let jbool b = Json.Bool b
let jstr s = Json.Str s
let mem_int k j = Option.bind (Json.member k j) Json.to_int
let mem_float k j = Option.bind (Json.member k j) Json.to_float
let mem_str k j = Option.bind (Json.member k j) Json.to_string
let mem_bool k j = Option.bind (Json.member k j) Json.to_bool
let now = Unix.gettimeofday

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type rconfig = {
  r_dir : string;  (** fleet state directory; shard [k] lives in [shard_<k>/] *)
  r_socket : string;  (** the one client-facing socket *)
  r_shards : int;
  r_workers : int;  (** worker processes per shard *)
  r_worker_jobs : int;
  r_capacity : int;  (** fleet-wide admission cap *)
  r_slice : int;
  r_fuel : int;
  r_heartbeat_s : float;  (** worker heartbeat inside each shard *)
  r_status_s : float;  (** shard status-file beat; stale after 2x *)
  r_tick_s : float;  (** router select timeout / maintenance period *)
  r_take_s : float;  (** per-shard result-harvest period *)
  r_req_timeout_s : float;  (** wire deadline for one shard request *)
  r_retry_base_s : float;
  r_seed : int;
}

let default_rconfig ~dir =
  {
    r_dir = dir;
    r_socket = Filename.concat dir "fleet.sock";
    r_shards = 3;
    r_workers = 2;
    r_worker_jobs = 1;
    r_capacity = 64;
    r_slice = 100_000;
    r_fuel = 200_000_000;
    r_heartbeat_s = 0.25;
    r_status_s = 0.25;
    r_tick_s = 0.05;
    r_take_s = 0.2;
    r_req_timeout_s = 1.5;
    r_retry_base_s = 0.05;
    r_seed = 0;
  }

let rconfig_to_json c =
  Json.encode
    (Json.Obj
       [
         ("dir", jstr c.r_dir);
         ("socket", jstr c.r_socket);
         ("shards", jint c.r_shards);
         ("workers", jint c.r_workers);
         ("worker_jobs", jint c.r_worker_jobs);
         ("capacity", jint c.r_capacity);
         ("slice", jint c.r_slice);
         ("fuel", jint c.r_fuel);
         ("heartbeat_s", jfloat c.r_heartbeat_s);
         ("status_s", jfloat c.r_status_s);
         ("tick_s", jfloat c.r_tick_s);
         ("take_s", jfloat c.r_take_s);
         ("req_timeout_s", jfloat c.r_req_timeout_s);
         ("retry_base_s", jfloat c.r_retry_base_s);
         ("seed", jint c.r_seed);
       ])

let rconfig_of_json s =
  match Json.parse s with
  | Error e -> Error ("rconfig: " ^ e)
  | Ok j -> (
      match mem_str "dir" j with
      | None -> Error "rconfig: missing dir"
      | Some dir ->
          let d = default_rconfig ~dir in
          let i k dflt = Option.value ~default:dflt (mem_int k j) in
          let f k dflt = Option.value ~default:dflt (mem_float k j) in
          Ok
            {
              r_dir = dir;
              r_socket = Option.value ~default:d.r_socket (mem_str "socket" j);
              r_shards = i "shards" d.r_shards;
              r_workers = i "workers" d.r_workers;
              r_worker_jobs = i "worker_jobs" d.r_worker_jobs;
              r_capacity = i "capacity" d.r_capacity;
              r_slice = i "slice" d.r_slice;
              r_fuel = i "fuel" d.r_fuel;
              r_heartbeat_s = f "heartbeat_s" d.r_heartbeat_s;
              r_status_s = f "status_s" d.r_status_s;
              r_tick_s = f "tick_s" d.r_tick_s;
              r_take_s = f "take_s" d.r_take_s;
              r_req_timeout_s = f "req_timeout_s" d.r_req_timeout_s;
              r_retry_base_s = f "retry_base_s" d.r_retry_base_s;
              r_seed = i "seed" d.r_seed;
            })

let shard_dir cfg k = Filename.concat cfg.r_dir (Printf.sprintf "shard_%d" k)

let shard_config cfg k : Service.config =
  let dir = shard_dir cfg k in
  {
    (Service.default_config ~dir) with
    Service.workers = cfg.r_workers;
    worker_jobs = cfg.r_worker_jobs;
    (* per-shard admission never gates router placements (adoption is
       forced); a generous cap just keeps direct-to-shard debugging
       submissions possible *)
    capacity = max 1 cfg.r_capacity;
    slice = cfg.r_slice;
    fuel = cfg.r_fuel;
    heartbeat_s = cfg.r_heartbeat_s;
    tick_s = cfg.r_tick_s;
    status_s = cfg.r_status_s;
    retry_base_s = cfg.r_retry_base_s;
    seed = cfg.r_seed + ((k + 1) * 7919);
    corrupt_requeue = 0;
  }

(* ------------------------------------------------------------------ *)
(* Rendezvous hashing                                                  *)

(* splitmix-style mix kept in 62 bits, identical on any 64-bit-word
   OCaml — placement must not depend on the host *)
let mix x =
  let x = (x + 0x1E3779B97F4A7C15) land 0x3FFFFFFFFFFFFFFF in
  let x = (x lxor (x lsr 30)) * 0x2545F4914F6CDD1D land 0x3FFFFFFFFFFFFFFF in
  (x lxor (x lsr 27)) land 0x3FFFFFFFFFFFFFFF

let hrw_score ~seed ~gid ~shard = mix ((gid * 1_000_003) + (shard * 97) + seed)

(* all shards ranked for [gid], best first: the head is the owner, the
   tail is the deterministic fallback order when the owner cannot take
   the tenant (draining, dead, held) *)
let hrw_order ~seed ~shards gid =
  List.init shards (fun k -> (hrw_score ~seed ~gid ~shard:k, k))
  |> List.sort (fun (a, _) (b, _) -> compare b a)
  |> List.map snd

(* ------------------------------------------------------------------ *)
(* Router state                                                        *)

type shard = {
  sh_id : int;
  sh_cfg : Service.config;
  mutable sh_pid : int;
  mutable sh_conn : (Unix.file_descr * Protocol.Reader.t) option;
  mutable sh_alive : bool;
  mutable sh_draining : bool;
  mutable sh_held : bool;  (** admin-drained slot: do not respawn *)
  mutable sh_spawned : float;
  mutable sh_drain_t : float;  (** 0. unless a router-initiated drain is in flight *)
  mutable sh_timeouts : int;  (** consecutive wire timeouts *)
  mutable sh_last_take : float;
}

type placement =
  | P_queued
  | P_shard of int
  | P_done of { pd_restarts : int; pd_result : Service.tresult }
  | P_failed of string

type rtenant = {
  rt_gid : int;
  rt_source : string;
  rt_abi : string;
  rt_fuel : int;
  rt_slice : int;
  rt_deadline_s : float option;
  mutable rt_place : placement;
  mutable rt_restarts : int;
  mutable rt_migrations : int;
  mutable rt_slices : int;  (** last known, from drain entries *)
  mutable rt_has_ckpt : bool;  (** a staged checkpoint backs the requeue *)
  mutable rt_mig_t : float;  (** un-placement time, for migration latency *)
}

type client = { c_fd : Unix.file_descr; c_reader : Protocol.Reader.t }

type router = {
  cfg : rconfig;
  adm : Admission.t;
  listen : Unix.file_descr;
  mutable clients : client list;
  tenants : (int, rtenant) Hashtbl.t;
  mutable next_gid : int;
  shards : shard array;
  hb : Obs.Heartbeat.t;
  t0 : float;
  mutable shutdown : bool;
  mutable draining : bool;  (** fleet drain (router SIGTERM) in progress *)
  mutable migrations : int;
  mutable drains : int;
  mutable shard_deaths : int;
  mutable stall_kills : int;
  mig_h : Obs.Histogram.t;
  drain_h : Obs.Histogram.t;
}

let sigterm_fleet = ref false

let tick c = Obs.Counter.incr (Lazy.force c)
let c_migrations = lazy (Obs.counter Obs.default "service_migrations_total")
let c_drains = lazy (Obs.counter Obs.default "service_drains_total")
let c_shard_deaths = lazy (Obs.counter Obs.default "service_shard_deaths_total")
let c_stall_kills = lazy (Obs.counter Obs.default "service_stall_kills_total")
let g_shards_live = lazy (Obs.gauge Obs.default "service_shards_live")

let g_shard_tenants =
  let tbl = Hashtbl.create 8 in
  fun k ->
    match Hashtbl.find_opt tbl k with
    | Some g -> g
    | None ->
        let g = Obs.gauge Obs.default (Printf.sprintf "service_shard_tenants{shard=\"%d\"}" k) in
        Hashtbl.add tbl k g;
        g

let placed_on r k =
  Hashtbl.fold
    (fun _ t acc -> match t.rt_place with P_shard s when s = k -> acc + 1 | _ -> acc)
    r.tenants 0

let eligible _r sh = sh.sh_alive && (not sh.sh_draining) && not sh.sh_held

(* ------------------------------------------------------------------ *)
(* Checkpoint staging                                                  *)

(* A checkpoint leaving a shard is parked under [r_dir/staging] until
   its tenant lands somewhere: the dead/drained shard slot will be
   respawned on the same directory, and its startup orphan sweep must
   find nothing — the router, not the shard, owns these tenants. *)
let staging_dir r = Filename.concat r.cfg.r_dir "staging"

let staged_path r gid = Filename.concat (staging_dir r) (Printf.sprintf "tenant_%04d.snap" gid)

let stage_checkpoint r ~from_shard gid =
  let src = Service.Checkpoint.path ~dir:(shard_dir r.cfg from_shard) ~tenant:gid in
  if Sys.file_exists src then (
    match Unix.rename src (staged_path r gid) with
    | () -> true
    | exception Unix.Unix_error _ -> false)
  else false

let unstage_checkpoint r ~to_shard gid =
  let src = staged_path r gid in
  if Sys.file_exists src then (
    let dst = Service.Checkpoint.path ~dir:(shard_dir r.cfg to_shard) ~tenant:gid in
    match Unix.rename src dst with
    | () -> true
    | exception Unix.Unix_error _ -> false)
  else false

let restage_checkpoint r ~from_shard gid =
  (* a placement that failed after the file moved: pull it back *)
  ignore (stage_checkpoint r ~from_shard gid : bool)

(* ------------------------------------------------------------------ *)
(* Shard process management                                            *)

let drop_conn sh =
  (match sh.sh_conn with
  | Some (fd, _) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  sh.sh_conn <- None

let shard_status_path cfg k = Filename.concat (shard_dir cfg k) "status.json"

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = really_input_string ic n in
    close_in ic;
    Some b
  with Sys_error _ | End_of_file -> None

(* worker pids of a shard, from its (atomically written) status file —
   used to finish off a SIGKILLed shard's workers so no orphan can
   keep writing checkpoints into a directory the router has already
   harvested *)
let shard_worker_pids cfg k =
  match read_file (shard_status_path cfg k) with
  | None -> []
  | Some s -> (
      match Json.parse s with
      | Error _ -> []
      | Ok j -> (
          match Json.member "workers" j with
          | Some (Json.Arr ws) ->
              List.filter_map
                (fun w ->
                  match (mem_bool "alive" w, mem_int "pid" w) with
                  | Some true, Some pid when pid > 0 -> Some pid
                  | _ -> None)
                ws
          | _ -> []))

let spawn_shard r sh =
  let dir = sh.sh_cfg.Service.dir in
  mkdir_p dir;
  mkdir_p (Filename.concat dir "checkpoints");
  (* the router owns tenant placement: a respawned shard must come up
     empty, not orphan-adopt leftovers of its previous incarnation
     (those checkpoints were staged at failover; anything left is a
     torn straggler) *)
  (match Sys.readdir (Filename.concat dir "checkpoints") with
  | files ->
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".snap" then
            try Sys.remove (Filename.concat dir (Filename.concat "checkpoints" f))
            with Sys_error _ -> ())
        files
  | exception Sys_error _ -> ());
  (try Sys.remove (shard_status_path r.cfg sh.sh_id) with Sys_error _ -> ());
  (try Sys.remove (Service.manifest_path ~dir) with Sys_error _ -> ());
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; Service.server_marker; Service.config_to_json sh.sh_cfg |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  sh.sh_pid <- pid;
  sh.sh_alive <- true;
  sh.sh_draining <- false;
  sh.sh_spawned <- now ();
  sh.sh_drain_t <- 0.;
  sh.sh_timeouts <- 0;
  sh.sh_last_take <- now ()

let kill_shard r sh ~stall =
  if sh.sh_alive && sh.sh_pid > 0 then begin
    if stall then begin
      r.stall_kills <- r.stall_kills + 1;
      tick c_stall_kills
    end;
    (* workers first: after these kills return, nothing can write into
       the shard's checkpoint directory while we harvest it at reap *)
    List.iter
      (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      (shard_worker_pids r.cfg sh.sh_id);
    (try Unix.kill sh.sh_pid Sys.sigkill with Unix.Unix_error _ -> ());
    drop_conn sh
  end

let connect_shard sh =
  match sh.sh_conn with
  | Some c -> Some c
  | None -> (
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sh.sh_cfg.Service.socket) with
      | () ->
          let c = (fd, Protocol.Reader.create ()) in
          sh.sh_conn <- Some c;
          Some c
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          None)

(* one request/response on the shard's long-lived connection; a
   timeout poisons the connection (a late reply would desynchronize
   request/response pairing), so it is dropped and re-dialed *)
let shard_request r sh json =
  match connect_shard sh with
  | None -> `Down
  | Some (fd, rd) -> (
      match Protocol.request_timeout fd rd ~timeout_s:r.cfg.r_req_timeout_s json with
      | `Ok j ->
          sh.sh_timeouts <- 0;
          `Ok j
      | `Timeout ->
          sh.sh_timeouts <- sh.sh_timeouts + 1;
          drop_conn sh;
          `Timeout
      | `Error e ->
          drop_conn sh;
          `Error e)

(* fire-and-forget op on a throwaway connection: used for [drain] and
   [shutdown], whose replies are deferred or unwanted — they must not
   ride the paired request/response connection *)
let shard_send_oneway sh json =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX sh.sh_cfg.Service.socket);
    Protocol.write_frame fd (Json.encode json)
  with
  | () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      true
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      false

(* ------------------------------------------------------------------ *)
(* Migration bookkeeping                                               *)

let release_if_live r t =
  match t.rt_place with
  | P_done _ | P_failed _ -> ()
  | P_queued | P_shard _ -> Admission.release r.adm

(* requeue a tenant that just left [from_shard]: bump its migration
   lineage (and the router counter, in lockstep — their equality is a
   chaos invariant), stage its checkpoint if one exists, and put it
   back on the queue for the next schedule pass *)
let migrate_out r t ~from_shard ~crashed ~slices =
  tick c_migrations;
  r.migrations <- r.migrations + 1;
  t.rt_migrations <- t.rt_migrations + 1;
  if crashed then t.rt_restarts <- t.rt_restarts + 1;
  if slices >= 0 then t.rt_slices <- slices;
  t.rt_has_ckpt <- stage_checkpoint r ~from_shard t.rt_gid;
  t.rt_mig_t <- now ();
  t.rt_place <- P_queued

(* one harvested entry (live [take] or drain manifest) from [sh] *)
let absorb_entry r sh (e : Service.taken) =
  let gid = Service.taken_tenant e in
  match Hashtbl.find_opt r.tenants gid with
  | None -> () (* raced a shutdown/unknown adoption; drop *)
  | Some t -> (
      let from_this_shard =
        match t.rt_place with P_shard k -> k = sh.sh_id | _ -> false
      in
      match e with
      | Service.T_done { tk_restarts; tk_result; _ } ->
          (* accept a completion even if the placement map says queued:
             a failover may have requeued a tenant whose result was
             already in the shard's table *)
          if from_this_shard || t.rt_place = P_queued then begin
            release_if_live r t;
            if t.rt_place = P_queued && t.rt_has_ckpt then (
              try Sys.remove (staged_path r gid) with Sys_error _ -> ());
            t.rt_place <-
              P_done { pd_restarts = max t.rt_restarts tk_restarts; pd_result = tk_result }
          end
      | Service.T_failed { tk_detail; _ } ->
          if from_this_shard || t.rt_place = P_queued then begin
            release_if_live r t;
            t.rt_place <- P_failed tk_detail
          end
      | Service.T_drained { tk_slices; _ } ->
          (* a parked tenant handed back: this is the migration path —
             but only when the placement map still points here (a
             failover may already have staged and requeued it) *)
          if from_this_shard then
            migrate_out r t ~from_shard:sh.sh_id ~crashed:false ~slices:tk_slices)

(* everything the placement map says is on [sh] but that no manifest
   or take entry accounted for: crash requeue (at most one slice lost) *)
let failover_tenants r sh =
  Hashtbl.iter
    (fun _ t ->
      match t.rt_place with
      | P_shard k when k = sh.sh_id ->
          migrate_out r t ~from_shard:sh.sh_id ~crashed:true ~slices:(-1)
      | _ -> ())
    r.tenants

(* ------------------------------------------------------------------ *)
(* Reaping: manifests, failover, respawn                               *)

let process_manifest r sh entries =
  r.drains <- r.drains + 1;
  tick c_drains;
  if sh.sh_drain_t > 0. then begin
    Obs.Histogram.observe r.drain_h (now () -. sh.sh_drain_t);
    sh.sh_drain_t <- 0.
  end;
  List.iter (absorb_entry r sh) entries

let reap_shards r =
  Array.iter
    (fun sh ->
      if sh.sh_alive && sh.sh_pid > 0 then
        match Unix.waitpid [ Unix.WNOHANG ] sh.sh_pid with
        | 0, _ -> ()
        | _, status ->
            drop_conn sh;
            sh.sh_alive <- false;
            sh.sh_pid <- -1;
            let dir = sh.sh_cfg.Service.dir in
            let manifest =
              match read_file (Service.manifest_path ~dir) with
              | None -> None
              | Some s -> (
                  match Service.manifest_of_json s with Ok es -> Some es | Error _ -> None)
            in
            (try Sys.remove (Service.manifest_path ~dir) with Sys_error _ -> ());
            (match (manifest, status) with
            | Some entries, Unix.WEXITED 0 ->
                (* clean drain: the manifest is the complete hand-off *)
                process_manifest r sh entries;
                (* belt and braces: anything the manifest somehow missed *)
                failover_tenants r sh
            | Some entries, _ ->
                (* died mid-drain wrap-up: honor what was written, crash
                   the rest *)
                process_manifest r sh entries;
                failover_tenants r sh
            | None, _ ->
                (* dirty death (SIGKILL, crash): stage and requeue *)
                r.shard_deaths <- r.shard_deaths + 1;
                tick c_shard_deaths;
                (* finish off any workers the dead supervisor left: an
                   orphan would keep checkpointing into a directory we
                   are about to harvest and hand to a new incarnation *)
                List.iter
                  (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
                  (shard_worker_pids r.cfg sh.sh_id);
                failover_tenants r sh);
            sh.sh_draining <- false)
    r.shards

let respawn_shards r =
  if not (r.draining || r.shutdown) then
    Array.iter
      (fun sh -> if (not sh.sh_alive) && not sh.sh_held then spawn_shard r sh)
      r.shards

(* ------------------------------------------------------------------ *)
(* Health probing and harvesting                                       *)

let spawn_grace_s r = 3.0 +. (2. *. r.cfg.r_status_s)

let probe_shards r =
  Array.iter
    (fun sh ->
      if sh.sh_alive && now () -. sh.sh_spawned > spawn_grace_s r then begin
        (match
           Obs.Heartbeat.probe ~interval_s:r.cfg.r_status_s (shard_status_path r.cfg sh.sh_id)
         with
        | `Fresh -> ()
        | `Stale _ | `Missing ->
            (* beating stopped but the process is alive: SIGSTOP or a
               wedged supervisor — reap turns this into a failover *)
            kill_shard r sh ~stall:true);
        if sh.sh_alive && sh.sh_timeouts >= 3 then kill_shard r sh ~stall:true
      end)
    r.shards

let take_from r sh =
  if sh.sh_alive && now () -. sh.sh_last_take >= r.cfg.r_take_s then begin
    sh.sh_last_take <- now ();
    match shard_request r sh (Json.Obj [ ("op", jstr "take") ]) with
    | `Ok j -> (
        match Json.member "entries" j with
        | Some (Json.Arr es) ->
            List.iter
              (fun ej ->
                match Service.taken_of_json ej with
                | Ok e -> absorb_entry r sh e
                | Error _ -> ())
              es
        | _ -> ())
    | `Timeout | `Error _ | `Down -> ()
  end

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)

let submit_to_shard r sh (t : rtenant) =
  let moved = unstage_checkpoint r ~to_shard:sh.sh_id t.rt_gid in
  let req =
    Json.Obj
      ([
         ("op", jstr "submit");
         ("tenant", jint t.rt_gid);
         ("source", jstr t.rt_source);
         ("abi", jstr t.rt_abi);
         ("fuel", jint t.rt_fuel);
         ("slice", jint t.rt_slice);
         ("restarts", jint t.rt_restarts);
         ("migrations", jint t.rt_migrations);
       ]
      @ match t.rt_deadline_s with Some d -> [ ("deadline_s", jfloat d) ] | None -> [])
  in
  match shard_request r sh req with
  | `Ok j when mem_bool "ok" j = Some true ->
      t.rt_place <- P_shard sh.sh_id;
      if t.rt_mig_t > 0. then begin
        Obs.Histogram.observe r.mig_h (now () -. t.rt_mig_t);
        t.rt_mig_t <- 0.
      end;
      true
  | `Ok _ | `Timeout | `Error _ | `Down ->
      if moved then restage_checkpoint r ~from_shard:sh.sh_id t.rt_gid;
      false

let schedule r =
  if not r.draining then begin
    let queued =
      Hashtbl.fold (fun _ t acc -> if t.rt_place = P_queued then t :: acc else acc) r.tenants []
      |> List.sort (fun a b -> compare a.rt_gid b.rt_gid)
    in
    List.iter
      (fun t ->
        let order = hrw_order ~seed:r.cfg.r_seed ~shards:r.cfg.r_shards t.rt_gid in
        ignore
          (List.exists
             (fun k ->
               let sh = r.shards.(k) in
               eligible r sh && submit_to_shard r sh t)
             order
            : bool))
      queued
  end

(* fleet pressure: the admission cap clients see shrinks with the live
   shard fraction, so retry-after hints stretch exactly when capacity
   actually shrank *)
let update_capacity r =
  let live = Array.fold_left (fun a sh -> if eligible r sh then a + 1 else a) 0 r.shards in
  let cap = max 1 (r.cfg.r_capacity * max 1 live / max 1 r.cfg.r_shards) in
  Admission.set_capacity r.adm cap;
  Obs.Gauge.set (Lazy.force g_shards_live) (float_of_int live);
  Array.iter
    (fun sh -> Obs.Gauge.set (g_shard_tenants sh.sh_id) (float_of_int (placed_on r sh.sh_id)))
    r.shards

(* ------------------------------------------------------------------ *)
(* Drain verbs                                                         *)

let drain_shard _r sh ~hold =
  if sh.sh_alive && not sh.sh_draining then begin
    sh.sh_draining <- true;
    sh.sh_drain_t <- now ();
    if hold then sh.sh_held <- true;
    ignore (shard_send_oneway sh (Json.Obj [ ("op", jstr "drain") ]) : bool)
  end
  else if (not sh.sh_alive) && hold then sh.sh_held <- true

let initiate_fleet_drain r =
  if not r.draining then begin
    r.draining <- true;
    Array.iter (fun sh -> drain_shard r sh ~hold:true) r.shards
  end

(* the fleet analog of the shard manifest: queued tenants (with their
   staged checkpoints) and untaken results, written when a SIGTERM
   drain completes so a successor fleet could adopt them *)
let fleet_manifest_entries r =
  Hashtbl.fold
    (fun _ t acc ->
      let e =
        match t.rt_place with
        | P_done { pd_restarts; pd_result } ->
            Some
              (Service.T_done
                 { tk_tenant = t.rt_gid; tk_restarts = pd_restarts; tk_result = pd_result })
        | P_failed d ->
            Some
              (Service.T_failed
                 {
                   tk_tenant = t.rt_gid;
                   tk_restarts = t.rt_restarts;
                   tk_migrations = t.rt_migrations;
                   tk_detail = d;
                 })
        | P_queued | P_shard _ ->
            Some
              (Service.T_drained
                 {
                   tk_tenant = t.rt_gid;
                   tk_source = t.rt_source;
                   tk_abi = t.rt_abi;
                   tk_fuel = t.rt_fuel;
                   tk_slice = t.rt_slice;
                   tk_deadline_s = t.rt_deadline_s;
                   tk_restarts = t.rt_restarts;
                   tk_migrations = t.rt_migrations;
                   tk_slices = t.rt_slices;
                   tk_checkpoint = t.rt_has_ckpt;
                 })
      in
      match e with Some e -> e :: acc | None -> acc)
    r.tenants []
  |> List.sort (fun a b -> compare (Service.taken_tenant a) (Service.taken_tenant b))

let write_fleet_manifest r =
  let entries = fleet_manifest_entries r in
  let json =
    Json.encode
      (Json.Obj
         [
           ("schema", jstr Service.manifest_schema);
           ("entries", Json.Arr (List.map Service.taken_to_json entries));
         ])
  in
  (try Obs.Heartbeat.write_atomic ~path:(Service.manifest_path ~dir:r.cfg.r_dir) json
   with Sys_error _ | Unix.Unix_error _ -> ());
  List.length entries

(* a SIGTERM fleet drain is finished once every shard has exited (their
   manifests absorbed): everything live is parked in staging *)
let maybe_finish_fleet_drain r =
  if r.draining && not r.shutdown then
    if Array.for_all (fun sh -> not sh.sh_alive) r.shards then begin
      ignore (write_fleet_manifest r : int);
      r.shutdown <- true
    end

(* ------------------------------------------------------------------ *)
(* Client requests                                                     *)

let err ?(extra = []) code = Json.Obj (("ok", jbool false) :: ("error", jstr code) :: extra)

let handle_submit r j =
  if r.draining then err "draining"
  else
    match mem_str "source" j with
    | None -> err "bad_request" ~extra:[ ("detail", jstr "missing source") ]
    | Some source -> (
        let abi = Option.value ~default:"CHERIv3" (mem_str "abi" j) in
        match Cheri_compiler.Abi.of_key abi with
        | None -> err "bad_request" ~extra:[ ("detail", jstr (Printf.sprintf "unknown abi %S" abi)) ]
        | Some a -> (
            let fuel = Option.value ~default:r.cfg.r_fuel (mem_int "fuel" j) in
            let slice = Option.value ~default:r.cfg.r_slice (mem_int "slice" j) in
            if fuel < 1 || slice < 1 then
              err "bad_request" ~extra:[ ("detail", jstr "fuel and slice must be >= 1") ]
            else
              match Admission.request r.adm with
              | Admission.Reject { retry_after_s } ->
                  err "overloaded" ~extra:[ ("retry_after_s", jfloat retry_after_s) ]
              | Admission.Admit ->
                  let gid = r.next_gid in
                  r.next_gid <- gid + 1;
                  Hashtbl.replace r.tenants gid
                    {
                      rt_gid = gid;
                      rt_source = source;
                      rt_abi = Cheri_compiler.Abi.name a;
                      rt_fuel = fuel;
                      rt_slice = slice;
                      rt_deadline_s = mem_float "deadline_s" j;
                      rt_place = P_queued;
                      rt_restarts = 0;
                      rt_migrations = 0;
                      rt_slices = 0;
                      rt_has_ckpt = false;
                      rt_mig_t = 0.;
                    };
                  Json.Obj [ ("ok", jbool true); ("tenant", jint gid) ]))

let handle_poll r j =
  match mem_int "tenant" j with
  | None -> err "bad_request" ~extra:[ ("detail", jstr "missing tenant") ]
  | Some gid -> (
      match Hashtbl.find_opt r.tenants gid with
      | None -> err "unknown_tenant"
      | Some t ->
          let base = [ ("ok", jbool true); ("tenant", jint gid) ] in
          let state, extra =
            match t.rt_place with
            | P_queued -> ("queued", [])
            | P_shard k -> ("running", [ ("shard", jint k) ])
            | P_done { pd_restarts; pd_result } ->
                ( "done",
                  [
                    ( "result",
                      Json.Obj
                        (Service.tresult_fields pd_result @ [ ("restarts", jint pd_restarts) ])
                    );
                  ] )
            | P_failed d -> ("failed", [ ("detail", jstr d) ])
          in
          Json.Obj (base @ [ ("state", jstr state) ] @ extra))

let status_fields r =
  let queued = ref 0 and placed = ref 0 and done_ = ref 0 and failed = ref 0 in
  Hashtbl.iter
    (fun _ t ->
      match t.rt_place with
      | P_queued -> incr queued
      | P_shard _ -> incr placed
      | P_done _ -> incr done_
      | P_failed _ -> incr failed)
    r.tenants;
  let live_shards = Array.fold_left (fun a sh -> if sh.sh_alive then a + 1 else a) 0 r.shards in
  [
    ("schema", jstr "cheri_c.serve-fleet-status/v1");
    ("pid", jint (Unix.getpid ()));
    ("shards_total", jint r.cfg.r_shards);
    ("shards_live", jint live_shards);
    ("capacity", jint (Admission.capacity r.adm));
    ("live", jint (Admission.live r.adm));
    ("queued", jint !queued);
    ("running", jint !placed);
    ("done", jint !done_);
    ("failed", jint !failed);
    ("admitted", jint (Admission.admitted r.adm));
    ("rejected", jint (Admission.rejected r.adm));
    ("migrations", jint r.migrations);
    ("drains", jint r.drains);
    ("shard_deaths", jint r.shard_deaths);
    ("stall_kills", jint r.stall_kills);
    ("draining", jbool r.draining);
    ( "shards",
      Json.Arr
        (Array.to_list r.shards
        |> List.map (fun sh ->
               Json.Obj
                 [
                   ("id", jint sh.sh_id);
                   ("pid", jint sh.sh_pid);
                   ("alive", jbool sh.sh_alive);
                   ("draining", jbool sh.sh_draining);
                   ("held", jbool sh.sh_held);
                   ("tenants", jint (placed_on r sh.sh_id));
                 ])) );
    ("elapsed_s", jfloat (now () -. r.t0));
  ]

let status_payload r () = Json.encode (Json.Obj (status_fields r))

let handle_admin_drain r j =
  match mem_int "shard" j with
  | None -> err "bad_request" ~extra:[ ("detail", jstr "missing shard") ]
  | Some k when k < 0 || k >= r.cfg.r_shards -> err "unknown_shard"
  | Some k ->
      let sh = r.shards.(k) in
      if not sh.sh_alive then
        Json.Obj [ ("ok", jbool true); ("shard", jint k); ("state", jstr "down") ]
      else begin
        drain_shard r sh ~hold:true;
        Json.Obj [ ("ok", jbool true); ("shard", jint k); ("state", jstr "draining") ]
      end

(* revive held slots, then evict every tenant sitting on a shard that
   is no longer its rendezvous owner; the evicted checkpoints flow back
   through [take] and re-place on the owner *)
let handle_rebalance r =
  let revived = ref 0 in
  Array.iter
    (fun sh ->
      if sh.sh_held then begin
        sh.sh_held <- false;
        incr revived
      end)
    r.shards;
  respawn_shards r;
  let evictions = ref 0 in
  Hashtbl.iter
    (fun _ t ->
      match t.rt_place with
      | P_shard k -> (
          let order = hrw_order ~seed:r.cfg.r_seed ~shards:r.cfg.r_shards t.rt_gid in
          match List.find_opt (fun s -> eligible r r.shards.(s)) order with
          | Some owner when owner <> k ->
              let sh = r.shards.(k) in
              if sh.sh_alive then begin
                match
                  shard_request r sh
                    (Json.Obj [ ("op", jstr "evict"); ("tenant", jint t.rt_gid) ])
                with
                | `Ok _ -> incr evictions
                | `Timeout | `Error _ | `Down -> ()
              end
          | _ -> ())
      | _ -> ())
    r.tenants;
  Json.Obj
    [ ("ok", jbool true); ("revived", jint !revived); ("evictions", jint !evictions) ]

let handle_request r req =
  match Json.parse req with
  | Error e -> err "bad_request" ~extra:[ ("detail", jstr ("unparseable request: " ^ e)) ]
  | Ok j -> (
      match mem_str "op" j with
      | Some "submit" -> handle_submit r j
      | Some "poll" -> handle_poll r j
      | Some "stats" -> Json.Obj (("ok", jbool true) :: status_fields r)
      | Some "drain" -> handle_admin_drain r j
      | Some "rebalance" -> handle_rebalance r
      | Some "metrics" ->
          Json.Obj [ ("ok", jbool true); ("metrics", jstr (Obs.to_prometheus Obs.default)) ]
      | Some "shutdown" ->
          r.shutdown <- true;
          Json.Obj [ ("ok", jbool true); ("shutting_down", jbool true) ]
      | Some op -> err "bad_request" ~extra:[ ("detail", jstr ("unknown op " ^ op)) ]
      | None -> err "bad_request" ~extra:[ ("detail", jstr "missing op") ])

let drop_client r client =
  (try Unix.close client.c_fd with Unix.Unix_error _ -> ());
  r.clients <- List.filter (fun c -> c.c_fd <> client.c_fd) r.clients

let pump_client r client =
  let buf = Bytes.create 65536 in
  match Unix.read client.c_fd buf 0 (Bytes.length buf) with
  | 0 -> drop_client r client
  | n ->
      Protocol.Reader.feed client.c_reader (Bytes.sub_string buf 0 n);
      let reply json =
        try
          Protocol.write_frame client.c_fd (Json.encode json);
          true
        with Unix.Unix_error _ -> false
      in
      let rec frames () =
        match Protocol.Reader.next client.c_reader with
        | `Frame f -> if reply (handle_request r f) then frames () else drop_client r client
        | `Awaiting -> ()
        | `Corrupt m ->
            ignore (reply (err "bad_request" ~extra:[ ("detail", jstr m) ]) : bool);
            drop_client r client
      in
      frames ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop_client r client

let accept_client r =
  match Unix.accept ~cloexec:true r.listen with
  | fd, _ -> r.clients <- { c_fd = fd; c_reader = Protocol.Reader.create () } :: r.clients
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)

let shutdown_shards r =
  Array.iter
    (fun sh ->
      if sh.sh_alive then ignore (shard_send_oneway sh (Json.Obj [ ("op", jstr "shutdown") ]) : bool))
    r.shards;
  let deadline = now () +. 5.0 in
  let rec wait_all () =
    reap_shards r;
    if Array.exists (fun sh -> sh.sh_alive) r.shards then
      if now () > deadline then
        Array.iter (fun sh -> kill_shard r sh ~stall:false) r.shards
      else begin
        ignore (Unix.select [] [] [] 0.05);
        wait_all ()
      end
  in
  wait_all ();
  (* one last reap so SIGKILLed stragglers do not linger as zombies *)
  let final = now () +. 2.0 in
  let rec drain_zombies () =
    reap_shards r;
    if Array.exists (fun sh -> sh.sh_alive) r.shards && now () < final then begin
      ignore (Unix.select [] [] [] 0.05);
      drain_zombies ()
    end
  in
  drain_zombies ()

let router_main (cfg : rconfig) =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  sigterm_fleet := false;
  (* register the fleet counters up front so the metrics op exports
     them at 0 rather than only after the first migration/death *)
  List.iter
    (fun c -> ignore (Lazy.force c))
    [ c_migrations; c_drains; c_shard_deaths; c_stall_kills ];
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> sigterm_fleet := true));
  mkdir_p cfg.r_dir;
  mkdir_p (Filename.concat cfg.r_dir "staging");
  (try Sys.remove (Service.manifest_path ~dir:cfg.r_dir) with Sys_error _ -> ());
  let listen =
    match Service.bind_listener cfg.r_socket with
    | Ok fd -> fd
    | Error detail ->
        prerr_endline
          (Json.encode
             (Json.Obj
                [ ("error", jstr "socket_in_use"); ("detail", jstr detail); ("exit", jint 2) ]));
        exit 2
  in
  let r =
    {
      cfg;
      adm =
        Admission.create ~seed:cfg.r_seed ~retry_base_s:cfg.r_retry_base_s
          ~capacity:(max 1 cfg.r_capacity) ();
      listen;
      clients = [];
      tenants = Hashtbl.create 64;
      next_gid = 0;
      shards =
        Array.init (max 1 cfg.r_shards) (fun k ->
            {
              sh_id = k;
              sh_cfg = shard_config cfg k;
              sh_pid = -1;
              sh_conn = None;
              sh_alive = false;
              sh_draining = false;
              sh_held = false;
              sh_spawned = 0.;
              sh_drain_t = 0.;
              sh_timeouts = 0;
              sh_last_take = 0.;
            });
      hb =
        Obs.Heartbeat.create
          ~interval_s:(if cfg.r_status_s > 0. then cfg.r_status_s else 1.0)
          ~path:(Filename.concat cfg.r_dir "status.json") ();
      t0 = now ();
      shutdown = false;
      draining = false;
      migrations = 0;
      drains = 0;
      shard_deaths = 0;
      stall_kills = 0;
      mig_h = Obs.histogram Obs.default "service_migration_seconds";
      drain_h = Obs.histogram Obs.default "service_drain_seconds";
    }
  in
  Array.iter (fun sh -> spawn_shard r sh) r.shards;
  Obs.Heartbeat.force r.hb (status_payload r);
  let rec loop () =
    if not r.shutdown then begin
      let client_fds = List.map (fun c -> c.c_fd) r.clients in
      let readable, _, _ =
        match Unix.select (r.listen :: client_fds) [] [] cfg.r_tick_s with
        | rs -> rs
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = r.listen then accept_client r
          else
            match List.find_opt (fun c -> c.c_fd = fd) r.clients with
            | Some c -> pump_client r c
            | None -> ())
        readable;
      if !sigterm_fleet then initiate_fleet_drain r;
      reap_shards r;
      probe_shards r;
      Array.iter (fun sh -> take_from r sh) r.shards;
      respawn_shards r;
      schedule r;
      update_capacity r;
      maybe_finish_fleet_drain r;
      Obs.Heartbeat.beat r.hb (status_payload r);
      loop ()
    end
  in
  loop ();
  if not r.draining then shutdown_shards r;
  Obs.Heartbeat.force r.hb (status_payload r);
  List.iter (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) r.clients;
  (try Unix.close r.listen with Unix.Unix_error _ -> ());
  try Unix.unlink cfg.r_socket with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Child dispatch                                                      *)

let router_marker = "serve-router-child"

let child_dispatch () =
  if Array.length Sys.argv >= 3 && Sys.argv.(1) = router_marker then
    match rconfig_of_json Sys.argv.(2) with
    | Ok cfg ->
        router_main cfg;
        exit 0
    | Error e ->
        prerr_endline ("serve router child: " ^ e);
        exit 2
