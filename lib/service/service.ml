(* The supervised multi-tenant simulation service.

   Topology: one supervisor process owns a Unix-domain listen socket
   and N worker processes (spawned via create_process of our own
   executable with a hidden argv marker, so real SIGKILL kills real
   processes). Clients speak length-prefixed JSON frames (Protocol);
   the supervisor admits tenants under a bounded cap (Admission),
   assigns them to the least-loaded worker, and multiplexes everything
   — listen socket, client connections, worker event pipes — under one
   select loop.

   Workers run tenants preemptively on an Exec.Pool.Stream: every
   slice is [Machine.run ~yield:true] for a bounded fuel budget, and
   every yield writes a CRC-guarded cheri_snapshot checkpoint
   (temp+rename) before the tenant re-enters the round-robin queue.
   The recovery invariant follows: when a worker dies, the supervisor
   drains its event pipe (completions that made it into the pipe are
   honored), requeues the remaining tenants, and a respawned worker
   resumes each one from its last checkpoint — so a crash costs at
   most the one slice that was in flight, and the snapshot
   byte-identity guarantee makes the recovered tenant's output /
   cycles / instret indistinguishable from an undisturbed run. A
   checkpoint that fails CRC validation (torn by the crash, or
   damaged on disk) is not an error the tenant sees: the worker
   restarts it cleanly from slice zero.

   Liveness is the PR 6 heartbeat plane: workers beat a status file
   every slice (interval-gated), the supervisor probes file age with
   Obs.Heartbeat.probe each tick, and a stalled-but-alive worker
   (stuck syscall, SIGSTOP) is SIGKILLed and treated exactly like a
   crashed one. *)

module Json = Cheri_util.Json
module Obs = Cheri_obs.Obs
module Pool = Cheri_exec.Exec.Pool
module Abi = Cheri_compiler.Abi
module Codegen = Cheri_compiler.Codegen
module Machine = Cheri_isa.Machine
module Snapshot = Cheri_snapshot.Snapshot

let jint n = Json.Num (string_of_int n)
let jfloat f = if f <> f then Json.Null else Json.Num (Json.number f)
let jbool b = Json.Bool b
let jstr s = Json.Str s
let mem_int k j = Option.bind (Json.member k j) Json.to_int
let mem_float k j = Option.bind (Json.member k j) Json.to_float
let mem_str k j = Option.bind (Json.member k j) Json.to_string
let now = Unix.gettimeofday

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  dir : string;  (** state directory: socket, status files, checkpoints *)
  socket : string;
  workers : int;  (** worker processes *)
  worker_jobs : int;  (** domains per worker *)
  capacity : int;  (** admission cap on live tenants *)
  slice : int;  (** default per-slice fuel *)
  fuel : int;  (** default per-tenant total fuel budget *)
  heartbeat_s : float;  (** worker heartbeat interval *)
  tick_s : float;  (** supervisor select timeout / probe period *)
  status_s : float;  (** supervisor status-file heartbeat interval *)
  retry_base_s : float;  (** admission retry-after hint base *)
  seed : int;
  corrupt_requeue : int;
      (** chaos hook: 0 = off; k = the k-th requeue that has a
          checkpoint on disk gets that checkpoint damaged first, to
          prove a bad sidecar means a clean restart, not a crash *)
}

let default_config ~dir =
  {
    dir;
    socket = Filename.concat dir "serve.sock";
    workers = 2;
    worker_jobs = 1;
    capacity = 64;
    slice = 100_000;
    fuel = 200_000_000;
    heartbeat_s = 0.25;
    tick_s = 0.05;
    status_s = 1.0;
    retry_base_s = 0.05;
    seed = 0;
    corrupt_requeue = 0;
  }

let config_to_json c =
  Json.encode
    (Json.Obj
       [
         ("dir", jstr c.dir);
         ("socket", jstr c.socket);
         ("workers", jint c.workers);
         ("worker_jobs", jint c.worker_jobs);
         ("capacity", jint c.capacity);
         ("slice", jint c.slice);
         ("fuel", jint c.fuel);
         ("heartbeat_s", jfloat c.heartbeat_s);
         ("tick_s", jfloat c.tick_s);
         ("status_s", jfloat c.status_s);
         ("retry_base_s", jfloat c.retry_base_s);
         ("seed", jint c.seed);
         ("corrupt_requeue", jint c.corrupt_requeue);
       ])

let config_of_json s =
  match Json.parse s with
  | Error e -> Error ("config: " ^ e)
  | Ok j -> (
      match (mem_str "dir" j, mem_str "socket" j) with
      | Some dir, Some socket ->
          let d = default_config ~dir in
          let i k dflt = Option.value ~default:dflt (mem_int k j) in
          let f k dflt = Option.value ~default:dflt (mem_float k j) in
          Ok
            {
              dir;
              socket;
              workers = i "workers" d.workers;
              worker_jobs = i "worker_jobs" d.worker_jobs;
              capacity = i "capacity" d.capacity;
              slice = i "slice" d.slice;
              fuel = i "fuel" d.fuel;
              heartbeat_s = f "heartbeat_s" d.heartbeat_s;
              tick_s = f "tick_s" d.tick_s;
              status_s = f "status_s" d.status_s;
              retry_base_s = f "retry_base_s" d.retry_base_s;
              seed = i "seed" d.seed;
              corrupt_requeue = i "corrupt_requeue" d.corrupt_requeue;
            }
      | _ -> Error "config: missing dir/socket")

type worker_config = { w_dir : string; w_id : int; w_jobs : int; w_heartbeat_s : float }

let worker_config_to_json w =
  Json.encode
    (Json.Obj
       [
         ("dir", jstr w.w_dir);
         ("id", jint w.w_id);
         ("jobs", jint w.w_jobs);
         ("heartbeat_s", jfloat w.w_heartbeat_s);
       ])

let worker_config_of_json s =
  match Json.parse s with
  | Error e -> Error ("worker config: " ^ e)
  | Ok j -> (
      match (mem_str "dir" j, mem_int "id" j, mem_int "jobs" j, mem_float "heartbeat_s" j) with
      | Some w_dir, Some w_id, Some w_jobs, Some w_heartbeat_s ->
          Ok { w_dir; w_id; w_jobs; w_heartbeat_s }
      | _ -> Error "worker config: missing field")

(* ------------------------------------------------------------------ *)
(* Tenant assignments and results                                      *)

type assignment = {
  a_tenant : int;
  a_source : string;
  a_abi : string;
  a_fuel : int;
  a_slice : int;
  a_deadline_s : float option;
  a_restarts : int;  (** how many times this tenant has been requeued *)
  a_migrations : int;  (** how many times the router moved it across shards *)
}

let assignment_to_json a =
  Json.Obj
    [
      ("op", jstr "run");
      ("tenant", jint a.a_tenant);
      ("source", jstr a.a_source);
      ("abi", jstr a.a_abi);
      ("fuel", jint a.a_fuel);
      ("slice", jint a.a_slice);
      ("deadline_s", match a.a_deadline_s with Some d -> jfloat d | None -> Json.Null);
      ("restarts", jint a.a_restarts);
      ("migrations", jint a.a_migrations);
    ]

let assignment_of_json j =
  match
    (mem_int "tenant" j, mem_str "source" j, mem_str "abi" j, mem_int "fuel" j, mem_int "slice" j)
  with
  | Some a_tenant, Some a_source, Some a_abi, Some a_fuel, Some a_slice ->
      Ok
        {
          a_tenant;
          a_source;
          a_abi;
          a_fuel;
          a_slice;
          a_deadline_s = mem_float "deadline_s" j;
          a_restarts = Option.value ~default:0 (mem_int "restarts" j);
          a_migrations = Option.value ~default:0 (mem_int "migrations" j);
        }
  | _ -> Error "assignment: missing field"

type tresult = {
  r_outcome : string;
  r_output : string;
  r_cycles : int;
  r_instret : int;
  r_slices : int;
  r_resumed : bool;  (** resumed from a checkpoint at least once *)
  r_scratch : bool;  (** a checkpoint load failed; restarted from slice 0 *)
  r_migrations : int;  (** cross-shard moves in this tenant's lineage *)
}

let tresult_fields r =
  [
    ("outcome", jstr r.r_outcome);
    ("output", jstr r.r_output);
    ("cycles", jint r.r_cycles);
    ("instret", jint r.r_instret);
    ("slices", jint r.r_slices);
    ("resumed", jbool r.r_resumed);
    ("scratch", jbool r.r_scratch);
    ("migrations", jint r.r_migrations);
  ]

let tresult_of_json j =
  match
    ( mem_str "outcome" j,
      mem_str "output" j,
      mem_int "cycles" j,
      mem_int "instret" j,
      mem_int "slices" j )
  with
  | Some r_outcome, Some r_output, Some r_cycles, Some r_instret, Some r_slices ->
      Ok
        {
          r_outcome;
          r_output;
          r_cycles;
          r_instret;
          r_slices;
          r_resumed =
            Option.value ~default:false (Option.bind (Json.member "resumed" j) Json.to_bool);
          r_scratch =
            Option.value ~default:false (Option.bind (Json.member "scratch" j) Json.to_bool);
          r_migrations = Option.value ~default:0 (mem_int "migrations" j);
        }
  | _ -> Error "result: missing field"

let outcome_string (o : Machine.outcome) =
  match o with
  | Machine.Exit c -> Printf.sprintf "exit:%Ld" c
  | Machine.Trap { trap; pc } ->
      Printf.sprintf "trap:%s@pc=%d" (Format.asprintf "%a" Machine.pp_trap trap) pc
  | Machine.Fuel_exhausted | Machine.Deadline_exceeded -> "fuel_exhausted"
  | Machine.Yielded -> "yielded"

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)

module Checkpoint = struct
  let schema = "cheri_c.serve-inflight/v1"

  type meta = {
    ck_tenant : int;
    ck_slices : int;
    ck_wall_s : float;
    ck_resumed : bool;  (** this lineage has resumed from a checkpoint *)
    ck_scratch : bool;  (** this lineage has restarted from scratch *)
    ck_migrations : int;  (** cross-shard moves in this lineage *)
    ck_restarts : int;
    ck_source : string;  (** "" in pre-migration checkpoints *)
    ck_abi : string;
    ck_fuel : int;
    ck_slice : int;
    ck_deadline_s : float option;
  }

  let path ~dir ~tenant =
    Filename.concat dir (Printf.sprintf "checkpoints/tenant_%04d.snap" tenant)

  (* resumed/scratch ride in the note so they are lineage-cumulative:
     a tenant that scratch-restarted after a corrupted checkpoint still
     reports scratch=true even if a later death resumes it cleanly.
     The full assignment (source, abi, fuel, slice, deadline) rides
     along too, making the checkpoint self-describing: a supervisor
     that finds one at startup — its predecessor was SIGKILLed, or a
     router moved the file in from a dead shard — can requeue the
     tenant from the file alone, with no other surviving state. The
     schema string is unchanged from v1: all new fields default on
     parse, so pre-migration checkpoints still load (they just cannot
     be orphan-requeued, lacking a source). *)
  let note ~tenant ~slices ~wall_s ~resumed ~scratch ~migrations ~restarts ~source ~abi
      ~fuel ~slice ~deadline_s =
    Json.encode
      (Json.Obj
         [
           ("schema", jstr schema);
           ("tenant", jint tenant);
           ("slices", jint slices);
           ("wall_s", jfloat wall_s);
           ("resumed", jbool resumed);
           ("scratch", jbool scratch);
           ("migrations", jint migrations);
           ("restarts", jint restarts);
           ("source", jstr source);
           ("abi", jstr abi);
           ("fuel", jint fuel);
           ("slice", jint slice);
           ("deadline_s", match deadline_s with Some d -> jfloat d | None -> Json.Null);
         ])

  let parse_note s =
    match Json.parse s with
    | Error e -> Error ("checkpoint note: " ^ e)
    | Ok j -> (
        match mem_str "schema" j with
        | Some sch when sch = schema -> (
            match (mem_int "tenant" j, mem_int "slices" j, mem_float "wall_s" j) with
            | Some ck_tenant, Some ck_slices, Some ck_wall_s ->
                let b k =
                  Option.value ~default:false (Option.bind (Json.member k j) Json.to_bool)
                in
                let i k = Option.value ~default:0 (mem_int k j) in
                Ok
                  {
                    ck_tenant;
                    ck_slices;
                    ck_wall_s;
                    ck_resumed = b "resumed";
                    ck_scratch = b "scratch";
                    ck_migrations = i "migrations";
                    ck_restarts = i "restarts";
                    ck_source = Option.value ~default:"" (mem_str "source" j);
                    ck_abi = Option.value ~default:"" (mem_str "abi" j);
                    ck_fuel = i "fuel";
                    ck_slice = i "slice";
                    ck_deadline_s = mem_float "deadline_s" j;
                  }
            | _ -> Error "checkpoint note: missing field")
        | Some sch -> Error ("checkpoint note: foreign schema " ^ sch)
        | None -> Error "checkpoint note: no schema")

  (* a note carrying enough to rebuild the whole assignment *)
  let self_describing m = m.ck_source <> "" && m.ck_abi <> "" && m.ck_fuel > 0 && m.ck_slice > 0
end

(* ------------------------------------------------------------------ *)
(* The serial reference: the exact slicing loop a worker runs, minus
   checkpoints, heartbeats and the deadline watchdog. The chaos harness
   replays every tenant through this after the disturbed run — the
   byte-identity assertion compares against precisely this code path,
   including the slice count (so "slices lost to a kill" is observed
   minus expected, not a guess from instret arithmetic). *)

let run_serial ~abi:abi_key ~fuel ~slice source =
  match Abi.of_key abi_key with
  | None -> Error (Printf.sprintf "unknown abi %S" abi_key)
  | Some abi -> (
      match Codegen.compile_source abi source with
      | exception e -> Error (Printexc.to_string e)
      | linked ->
          let m = Codegen.machine_for abi linked in
          let finish ~slices outcome =
            Ok
              {
                r_outcome = outcome;
                r_output = Machine.output m;
                r_cycles = Machine.cycles m;
                r_instret = Machine.instret m;
                r_slices = slices;
                r_resumed = false;
                r_scratch = false;
                r_migrations = 0;
              }
          in
          let rec go slices =
            let remaining = fuel - Machine.instret m in
            if remaining <= 0 then finish ~slices "fuel_exhausted"
            else
              match Machine.run ~fuel:(min slice remaining) ~yield:true m with
              | Machine.Yielded ->
                  if Machine.instret m >= fuel then finish ~slices:(slices + 1) "fuel_exhausted"
                  else go (slices + 1)
              | o -> finish ~slices:(slices + 1) (outcome_string o)
          in
          go 0)

(* ------------------------------------------------------------------ *)
(* Worker process                                                      *)

type tstate = {
  ts_a : assignment;
  ts_m : Machine.t;
  ts_ckpt : string;
  mutable ts_slices : int;
  mutable ts_wall : float;
  mutable ts_resumed : bool;
  mutable ts_scratch : bool;
}

(* what a worker task yields up: a finished tenant, or one parked at a
   checkpoint because the worker is draining (or the tenant was
   evicted) — the checkpoint is on disk, the tenant resumes elsewhere *)
type wresult = W_done of tresult | W_drained of { d_slices : int; d_migrations : int }

let worker_hb_path ~dir ~id =
  Filename.concat dir (Printf.sprintf "workers/worker_%d.status.json" id)

let worker_main (w : worker_config) =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let hb = Obs.Heartbeat.create ~interval_s:w.w_heartbeat_s ~path:(worker_hb_path ~dir:w.w_dir ~id:w.w_id) () in
  let slices_done = Atomic.make 0 in
  let tenants_done = Atomic.make 0 in
  (* drain/evict plane: [draining] parks every task at its next yield;
     [evicted] parks just the named tenants. Both are read from pool
     domains, written from the control loop. *)
  let draining = Atomic.make false in
  let evict_mu = Mutex.create () in
  let evicted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let is_evicted tid = Mutex.protect evict_mu (fun () -> Hashtbl.mem evicted tid) in
  let payload () =
    Json.encode
      (Json.Obj
         [
           ("schema", jstr "cheri_c.serve-worker/v1");
           ("worker", jint w.w_id);
           ("pid", jint (Unix.getpid ()));
           ("slices", jint (Atomic.get slices_done));
           ("done", jint (Atomic.get tenants_done));
         ])
  in
  (* compile cache: tenants often share sources (retries, fleets); the
     cache is hit from pool domains, hence the mutex *)
  let cache_mu = Mutex.create () in
  let cache = Hashtbl.create 16 in
  let compile_cached abi key source =
    Mutex.protect cache_mu (fun () ->
        match Hashtbl.find_opt cache (key, source) with
        | Some linked -> linked
        | None ->
            let linked = Codegen.compile_source abi source in
            Hashtbl.add cache (key, source) linked;
            linked)
  in
  let init (a : assignment) =
    let abi =
      match Abi.of_key a.a_abi with
      | Some abi -> abi
      | None -> failwith (Printf.sprintf "unknown abi %S" a.a_abi)
    in
    let linked = compile_cached abi a.a_abi a.a_source in
    let ckpt = Checkpoint.path ~dir:w.w_dir ~tenant:a.a_tenant in
    let fresh () = Codegen.machine_for abi linked in
    (* Resume from the last checkpoint when one exists. Every failure
       mode — unreadable file, CRC mismatch, foreign note, wrong
       machine — lands in the same place: a clean restart from slice
       zero on a fresh machine. A damaged sidecar costs recomputation,
       never correctness and never the worker. *)
    let resume () =
      if not (Sys.file_exists ckpt) then None
      else
        match Snapshot.load ckpt with
        | Error _ -> None
        | Ok img -> (
            match Checkpoint.parse_note (Snapshot.image_note img) with
            | Ok ck when ck.Checkpoint.ck_tenant = a.a_tenant -> (
                let m = fresh () in
                match Snapshot.restore m ~abi:a.a_abi img with
                | Ok () -> Some (m, ck)
                | Error _ -> None)
            | Ok _ | Error _ -> None)
    in
    match resume () with
    | Some (m, ck) ->
        {
          ts_a = a;
          ts_m = m;
          ts_ckpt = ckpt;
          ts_slices = ck.Checkpoint.ck_slices;
          ts_wall = ck.Checkpoint.ck_wall_s;
          ts_resumed = true;
          ts_scratch = ck.Checkpoint.ck_scratch;
        }
    | None ->
        {
          ts_a = a;
          ts_m = fresh ();
          ts_ckpt = ckpt;
          ts_slices = 0;
          ts_wall = 0.;
          ts_resumed = false;
          ts_scratch = a.a_restarts > 0;
        }
  in
  let finish st outcome =
    W_done
      {
        r_outcome = outcome;
        r_output = Machine.output st.ts_m;
        r_cycles = Machine.cycles st.ts_m;
        r_instret = Machine.instret st.ts_m;
        r_slices = st.ts_slices;
        r_resumed = st.ts_resumed;
        r_scratch = st.ts_scratch;
        r_migrations = st.ts_a.a_migrations;
      }
  in
  let checkpoint st =
    let a = st.ts_a in
    let note =
      Checkpoint.note ~tenant:a.a_tenant ~slices:st.ts_slices ~wall_s:st.ts_wall
        ~resumed:st.ts_resumed ~scratch:st.ts_scratch ~migrations:a.a_migrations
        ~restarts:a.a_restarts ~source:a.a_source ~abi:a.a_abi ~fuel:a.a_fuel ~slice:a.a_slice
        ~deadline_s:a.a_deadline_s
    in
    (* best-effort: a failed save costs a restart-from-scratch later,
       not the tenant *)
    match Snapshot.save ~note ~abi:st.ts_a.a_abi ~path:st.ts_ckpt st.ts_m with
    | Ok _ | Error _ -> ()
  in
  let park st =
    (* the checkpoint must be durable before the drained event can be
       emitted: the event is the router's license to resume the tenant
       elsewhere from this exact file *)
    checkpoint st;
    Pool.Done (W_drained { d_slices = st.ts_slices; d_migrations = st.ts_a.a_migrations })
  in
  let slice_fn st =
    let a = st.ts_a in
    if Atomic.get draining || is_evicted a.a_tenant then park st
    else
      let remaining = a.a_fuel - Machine.instret st.ts_m in
      if remaining <= 0 then Pool.Done (finish st "fuel_exhausted")
      else begin
        let t0 = now () in
        let o = Machine.run ~fuel:(min a.a_slice remaining) ~yield:true st.ts_m in
        st.ts_wall <- st.ts_wall +. (now () -. t0);
        st.ts_slices <- st.ts_slices + 1;
        Atomic.incr slices_done;
        Obs.Heartbeat.beat hb payload;
        match o with
        | Machine.Yielded ->
            if Machine.instret st.ts_m >= a.a_fuel then Pool.Done (finish st "fuel_exhausted")
            else if match a.a_deadline_s with Some d -> st.ts_wall > d | None -> false then
              Pool.Done (finish st "deadline_exceeded")
            else begin
              checkpoint st;
              Pool.Yield st
            end
        | o -> Pool.Done (finish st (outcome_string o))
      end
  in
  (* submission index -> assignment, so an init/slice exception (whose
     cell carries only the index) can still be attributed to a tenant.
     Registered under the mutex BEFORE submit returns — a fast worker
     domain may finish the task before submit's caller resumes. *)
  let tbl_mu = Mutex.create () in
  let by_index : (int, assignment) Hashtbl.t = Hashtbl.create 16 in
  let out_frame json = Protocol.write_frame Unix.stdout (Json.encode json) in
  let on_result (cell : _ Pool.cell) =
    let a =
      Mutex.protect tbl_mu (fun () ->
          let a = Hashtbl.find by_index cell.Pool.index in
          Hashtbl.remove by_index cell.Pool.index;
          a)
    in
    match cell.Pool.result with
    | Ok (W_done r) ->
        Atomic.incr tenants_done;
        (* the done event must be on the wire before the checkpoint is
           removed: if we die in between, the supervisor drains the
           event at reap time and never requeues; the reverse order
           could lose the whole tenant *)
        out_frame (Json.Obj (("event", jstr "done") :: ("tenant", jint a.a_tenant) :: tresult_fields r));
        let ckpt = Checkpoint.path ~dir:w.w_dir ~tenant:a.a_tenant in
        (try Sys.remove ckpt with Sys_error _ -> ())
    | Ok (W_drained d) ->
        (* parked, not finished: the checkpoint stays on disk *)
        out_frame
          (Json.Obj
             [
               ("event", jstr "drained");
               ("tenant", jint a.a_tenant);
               ("slices", jint d.d_slices);
               ("migrations", jint d.d_migrations);
             ])
    | Error e ->
        out_frame
          (Json.Obj
             [
               ("event", jstr "error");
               ("tenant", jint a.a_tenant);
               ("detail", jstr e.Pool.exn);
             ])
  in
  let stream =
    Pool.Stream.create ~jobs:(max 1 w.w_jobs) ~retries:0 ~init ~slice:slice_fn ~on_result ()
  in
  Obs.Heartbeat.force hb payload;
  let reader = Protocol.Reader.create () in
  let handle f =
    match Json.parse f with
    | Error _ -> exit 3
    | Ok j -> (
        match mem_str "op" j with
        | Some "run" -> (
            match assignment_of_json j with
            | Error _ -> exit 3
            | Ok a ->
                Mutex.protect tbl_mu (fun () ->
                    let i = Pool.Stream.submit stream a in
                    Hashtbl.replace by_index i a);
                Obs.Heartbeat.beat hb payload)
        | Some "drain" ->
            (* every task parks at its next slice turn; once the stream
               is empty the main loop exits 0 (clean drain) *)
            Atomic.set draining true
        | Some "evict" -> (
            match mem_int "tenant" j with
            | Some tid -> Mutex.protect evict_mu (fun () -> Hashtbl.replace evicted tid ())
            | None -> ())
        | Some "quit" -> exit 0
        | _ -> ())
  in
  (* The main loop must NOT block in a plain read: an idle worker that
     stops beating looks exactly like a stalled one, and once the
     spawn grace expires the supervisor would reap a perfectly healthy
     process. So: select with a sub-interval timeout and beat on every
     wakeup (Heartbeat.beat is interval-gated, so the file is written
     at most once per interval). *)
  let buf = Bytes.create 65536 in
  let rec loop () =
    Obs.Heartbeat.beat hb payload;
    (* a draining worker exits once every task has parked or finished:
       [Stream.live] counts tasks not yet delivered to on_result, so
       zero means every done/drained event is already on the wire *)
    if Atomic.get draining && Pool.Stream.live stream = 0 then exit 0;
    match Protocol.Reader.next reader with
    | `Corrupt _ -> exit 0 (* supervisor gone mad: checkpoints carry the work *)
    | `Frame f ->
        handle f;
        loop ()
    | `Awaiting -> (
        match Unix.select [ Unix.stdin ] [] [] (w.w_heartbeat_s /. 2.) with
        | [], _, _ -> loop ()
        | _ -> (
            match Unix.read Unix.stdin buf 0 (Bytes.length buf) with
            | 0 -> exit 0 (* supervisor gone: in-flight work is in the checkpoints *)
            | n ->
                Protocol.Reader.feed reader (Bytes.sub_string buf 0 n);
                loop ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)

let worker_marker = "serve-worker-child"
let server_marker = "serve-server-child"

type worker = {
  wk_id : int;
  mutable wk_pid : int;
  mutable wk_to : Unix.file_descr;
  mutable wk_from : Unix.file_descr;
  mutable wk_reader : Protocol.Reader.t;
  mutable wk_alive : bool;
  mutable wk_stalled : bool;  (* stale heartbeat: SIGKILL sent, reap pending *)
  mutable wk_tenants : int list;
  mutable wk_spawned : float;
}

(* a tenant parked at a checkpoint, waiting for the router to move it *)
type drained_info = {
  dr_slices : int;
  dr_migrations : int;
  dr_checkpoint : bool;  (** a checkpoint file exists (false: resume = restart) *)
}

type tstatus =
  | Queued
  | Running of int
  | Finished of tresult
  | Failed of string
  | Drained of drained_info

type tenant = {
  t_id : int;
  t_source : string;
  t_abi : string;
  t_fuel : int;
  t_slice : int;
  t_deadline_s : float option;
  mutable t_status : tstatus;
  mutable t_restarts : int;
  mutable t_migrations : int;
  t_submit_t : float;
  mutable t_done_t : float;
}

type client = { c_fd : Unix.file_descr; c_reader : Protocol.Reader.t }

type server = {
  s_cfg : config;
  s_adm : Admission.t;
  s_listen : Unix.file_descr;
  mutable s_clients : client list;
  s_tenants : (int, tenant) Hashtbl.t;
  mutable s_next_tenant : int;
  s_workers : worker array;
  s_hb : Obs.Heartbeat.t;
  s_t0 : float;
  s_job_seconds : Obs.Histogram.t;
  mutable s_done : int;
  mutable s_failed : int;
  mutable s_requeues : int;
  mutable s_worker_deaths : int;
  mutable s_stall_kills : int;
  mutable s_corruptions : int;
  mutable s_corrupted : int list;
  mutable s_corrupt_armed : int;  (* counts down; 0 = fired/disarmed *)
  mutable s_shutdown : bool;
  mutable s_draining : bool;
  mutable s_drain_client : Unix.file_descr option;
      (* the admin client owed the drain report, if the drain came over
         the wire rather than from SIGTERM *)
  mutable s_orphans_requeued : int;
  mutable s_orphans_discarded : int;
}

(* SIGTERM = drain: set from the signal handler, consumed by the loop *)
let sigterm_drain = ref false

let counter name = Obs.counter Obs.default ("serve_" ^ name)

let c_admitted = lazy (counter "admitted_total")
let c_rejected = lazy (counter "rejected_total")
let c_done = lazy (counter "done_total")
let c_failed = lazy (counter "failed_total")
let c_requeues = lazy (counter "requeues_total")
let c_deaths = lazy (counter "worker_deaths_total")
let c_stalls = lazy (counter "stall_kills_total")
let c_corruptions = lazy (counter "corruptions_total")

let c_orphans_requeued = lazy (Obs.counter Obs.default "service_orphans_requeued_total")
let c_orphans_discarded = lazy (Obs.counter Obs.default "service_orphans_discarded_total")
let tick c = Obs.Counter.incr (Lazy.force c)

let spawn_worker s (wk : worker) =
  let cfg = s.s_cfg in
  (* drop the dead incarnation's status file so staleness never blames
     the new worker for its predecessor's silence *)
  (try Sys.remove (worker_hb_path ~dir:cfg.dir ~id:wk.wk_id) with Sys_error _ -> ());
  let to_r, to_w = Unix.pipe ~cloexec:true () in
  let from_r, from_w = Unix.pipe ~cloexec:true () in
  let wcfg =
    worker_config_to_json
      { w_dir = cfg.dir; w_id = wk.wk_id; w_jobs = cfg.worker_jobs; w_heartbeat_s = cfg.heartbeat_s }
  in
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; worker_marker; wcfg |]
      to_r from_w Unix.stderr
  in
  Unix.close to_r;
  Unix.close from_w;
  Unix.set_nonblock from_r;
  wk.wk_pid <- pid;
  wk.wk_to <- to_w;
  wk.wk_from <- from_r;
  wk.wk_reader <- Protocol.Reader.create ();
  wk.wk_alive <- true;
  wk.wk_stalled <- false;
  wk.wk_tenants <- [];
  wk.wk_spawned <- now ()

let tenant_of_id s tid = Hashtbl.find_opt s.s_tenants tid

let status_fields s =
  let queued = ref 0 and running = ref 0 and drained = ref 0 in
  Hashtbl.iter
    (fun _ t ->
      match t.t_status with
      | Queued -> incr queued
      | Running _ -> incr running
      | Drained _ -> incr drained
      | Finished _ | Failed _ -> ())
    s.s_tenants;
  [
    ("schema", jstr "cheri_c.serve-status/v1");
    ("pid", jint (Unix.getpid ()));
    ("capacity", jint (Admission.capacity s.s_adm));
    ("live", jint (Admission.live s.s_adm));
    ("queued", jint !queued);
    ("running", jint !running);
    ("drained", jint !drained);
    ("draining", jbool s.s_draining);
    ("orphans_requeued", jint s.s_orphans_requeued);
    ("orphans_discarded", jint s.s_orphans_discarded);
    ("admitted", jint (Admission.admitted s.s_adm));
    ("rejected", jint (Admission.rejected s.s_adm));
    ("done", jint s.s_done);
    ("failed", jint s.s_failed);
    ("requeues", jint s.s_requeues);
    ("worker_deaths", jint s.s_worker_deaths);
    ("stall_kills", jint s.s_stall_kills);
    ("corruptions", jint s.s_corruptions);
    ("corrupted", Json.Arr (List.rev_map jint s.s_corrupted));
    ( "workers",
      Json.Arr
        (Array.to_list s.s_workers
        |> List.map (fun wk ->
               Json.Obj
                 [
                   ("id", jint wk.wk_id);
                   ("pid", jint wk.wk_pid);
                   ("alive", jbool wk.wk_alive);
                   ("tenants", jint (List.length wk.wk_tenants));
                 ])) );
    ("elapsed_s", jfloat (now () -. s.s_t0));
  ]

let status_payload s () = Json.encode (Json.Obj (status_fields s))

(* deterministically damage a checkpoint file in place: flip one bit in
   the middle so the CRC (or the header) no longer validates *)
let damage_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = Bytes.create n in
    really_input ic b 0 n;
    close_in ic;
    if n = 0 then false
    else begin
      let pos = n / 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      true
    end
  with Sys_error _ | End_of_file -> false

(* reconstruct a parked tenant's position from its checkpoint file —
   used when the worker died before it could report the park (its
   drained event never reached the pipe) *)
let drained_from_disk s t =
  let ckpt = Checkpoint.path ~dir:s.s_cfg.dir ~tenant:t.t_id in
  let slices =
    if not (Sys.file_exists ckpt) then None
    else
      match Snapshot.load ckpt with
      | Error _ -> Some 0 (* torn file: the resume will scratch-restart *)
      | Ok img -> (
          match Checkpoint.parse_note (Snapshot.image_note img) with
          | Ok ck -> Some ck.Checkpoint.ck_slices
          | Error _ -> Some 0)
  in
  {
    dr_slices = Option.value ~default:0 slices;
    dr_migrations = t.t_migrations;
    dr_checkpoint = slices <> None;
  }

let mark_drained s t info =
  match t.t_status with
  | Queued | Running _ ->
      t.t_status <- Drained info;
      Admission.release s.s_adm
  | Finished _ | Failed _ | Drained _ -> ()

let requeue s tid =
  match tenant_of_id s tid with
  | None -> ()
  | Some t -> (
      match t.t_status with
      | Running _ when s.s_draining ->
          (* a worker crash mid-drain: the tenant is parked at whatever
             checkpoint survives (≤1 slice stale) instead of being
             rescheduled on a fleet that is going away *)
          t.t_restarts <- t.t_restarts + 1;
          mark_drained s t (drained_from_disk s t)
      | Running _ ->
          t.t_status <- Queued;
          t.t_restarts <- t.t_restarts + 1;
          s.s_requeues <- s.s_requeues + 1;
          tick c_requeues;
          (* chaos hook: the k-th requeue that has a checkpoint on disk
             gets it damaged before any worker can resume from it *)
          if s.s_corrupt_armed > 0 then begin
            let ckpt = Checkpoint.path ~dir:s.s_cfg.dir ~tenant:tid in
            if Sys.file_exists ckpt then begin
              s.s_corrupt_armed <- s.s_corrupt_armed - 1;
              if s.s_corrupt_armed = 0 && damage_file ckpt then begin
                s.s_corruptions <- s.s_corruptions + 1;
                s.s_corrupted <- tid :: s.s_corrupted;
                tick c_corruptions
              end
            end
          end
      | Queued | Finished _ | Failed _ | Drained _ -> ())

let least_loaded s =
  Array.to_list s.s_workers
  |> List.filter (fun wk -> wk.wk_alive && not wk.wk_stalled)
  |> List.fold_left
       (fun acc wk ->
         match acc with
         | None -> Some wk
         | Some best ->
             if List.length wk.wk_tenants < List.length best.wk_tenants then Some wk else acc)
       None

let schedule s =
  if s.s_draining then ()
  else
  let queued =
    Hashtbl.fold (fun tid t acc -> match t.t_status with Queued -> (tid, t) :: acc | _ -> acc)
      s.s_tenants []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (tid, t) ->
      match least_loaded s with
      | None -> () (* every worker dead or draining; the tick respawns *)
      | Some wk -> (
          let a =
            {
              a_tenant = tid;
              a_source = t.t_source;
              a_abi = t.t_abi;
              a_fuel = t.t_fuel;
              a_slice = t.t_slice;
              a_deadline_s = t.t_deadline_s;
              a_restarts = t.t_restarts;
              a_migrations = t.t_migrations;
            }
          in
          match Protocol.write_frame wk.wk_to (Json.encode (assignment_to_json a)) with
          | () ->
              t.t_status <- Running wk.wk_id;
              wk.wk_tenants <- tid :: wk.wk_tenants
          | exception Unix.Unix_error _ ->
              (* the worker died under us; leave the tenant queued —
                 the reap pass will recycle the worker and reschedule *)
              ()))
    queued

let finish_tenant s wk tid result =
  match tenant_of_id s tid with
  | None -> ()
  | Some t -> (
      match t.t_status with
      | Running w when w = wk.wk_id -> (
          wk.wk_tenants <- List.filter (fun x -> x <> tid) wk.wk_tenants;
          t.t_done_t <- now ();
          Obs.Histogram.observe s.s_job_seconds (t.t_done_t -. t.t_submit_t);
          Admission.release s.s_adm;
          match result with
          | Ok r ->
              t.t_status <- Finished r;
              s.s_done <- s.s_done + 1;
              tick c_done
          | Error detail ->
              t.t_status <- Failed detail;
              s.s_failed <- s.s_failed + 1;
              tick c_failed)
      | _ -> () (* late event from a drained pipe for a reassigned tenant *))

let handle_worker_frame s wk frame =
  match Json.parse frame with
  | Error _ -> ()
  | Ok j -> (
      match (mem_str "event" j, mem_int "tenant" j) with
      | Some "done", Some tid -> (
          match tresult_of_json j with
          | Ok r -> finish_tenant s wk tid (Ok r)
          | Error e -> finish_tenant s wk tid (Error e))
      | Some "drained", Some tid -> (
          match tenant_of_id s tid with
          | None -> ()
          | Some t -> (
              match t.t_status with
              | Running w when w = wk.wk_id ->
                  wk.wk_tenants <- List.filter (fun x -> x <> tid) wk.wk_tenants;
                  let ckpt = Checkpoint.path ~dir:s.s_cfg.dir ~tenant:tid in
                  mark_drained s t
                    {
                      dr_slices = Option.value ~default:0 (mem_int "slices" j);
                      dr_migrations =
                        Option.value ~default:t.t_migrations (mem_int "migrations" j);
                      dr_checkpoint = Sys.file_exists ckpt;
                    }
              | _ -> ()))
      | Some "error", Some tid ->
          finish_tenant s wk tid
            (Error (Option.value ~default:"worker error" (mem_str "detail" j)))
      | _ -> ())

let drain_worker_frames s wk =
  let rec go () =
    match Protocol.Reader.next wk.wk_reader with
    | `Frame f ->
        handle_worker_frame s wk f;
        go ()
    | `Awaiting | `Corrupt _ -> ()
  in
  go ()

(* read whatever the worker pipe holds right now; [`Eof] once the
   write end is gone (worker dead and buffer drained) *)
let pump_worker s wk =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Unix.read wk.wk_from buf 0 (Bytes.length buf) with
    | 0 -> `Eof
    | n ->
        Protocol.Reader.feed wk.wk_reader (Bytes.sub_string buf 0 n);
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Open
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> `Eof
  in
  let state = go () in
  drain_worker_frames s wk;
  state

let on_worker_death s wk =
  wk.wk_alive <- false;
  (* a worker exiting 0 because its drain completed is not a death *)
  if not s.s_draining then begin
    s.s_worker_deaths <- s.s_worker_deaths + 1;
    tick c_deaths
  end;
  (* completions that reached the pipe before the crash are honored
     first — only tenants with no buffered done event are requeued,
     which is what bounds the loss at one in-flight slice *)
  let rec drain_to_eof () = match pump_worker s wk with `Eof -> () | `Open -> drain_to_eof () in
  drain_to_eof ();
  (try Unix.close wk.wk_from with Unix.Unix_error _ -> ());
  (try Unix.close wk.wk_to with Unix.Unix_error _ -> ());
  let orphans = List.rev wk.wk_tenants in
  wk.wk_tenants <- [];
  List.iter (requeue s) orphans;
  (* a draining supervisor is going away: no respawn, the parked
     tenants leave with the manifest *)
  if not s.s_draining then begin
    spawn_worker s wk;
    schedule s
  end

let reap_workers s =
  Array.iter
    (fun wk ->
      if wk.wk_alive then
        match Unix.waitpid [ Unix.WNOHANG ] wk.wk_pid with
        | 0, _ -> ()
        | _, _ -> on_worker_death s wk
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> on_worker_death s wk)
    s.s_workers

let probe_workers s =
  let t_now = now () in
  Array.iter
    (fun wk ->
      (* spawn grace: a fresh worker owns the status-file path of its
         dead predecessor until its own first heartbeat lands; probing
         inside the grace would read the old incarnation's mtime and
         kill-loop the slot *)
      if
        wk.wk_alive
        && (not wk.wk_stalled)
        && wk.wk_tenants <> []
        && t_now -. wk.wk_spawned > (2. *. s.s_cfg.heartbeat_s) +. 1.0
      then begin
        let stale =
          match
            Obs.Heartbeat.probe ~now:t_now ~interval_s:s.s_cfg.heartbeat_s
              (worker_hb_path ~dir:s.s_cfg.dir ~id:wk.wk_id)
          with
          | `Stale _ -> true
          | `Missing -> t_now -. wk.wk_spawned > (2. *. s.s_cfg.heartbeat_s) +. 1.0
          | `Fresh -> false
        in
        if stale then begin
          (* stalled but alive (stuck syscall, SIGSTOP): reap it like a
             crash — its tenants resume from checkpoints elsewhere *)
          wk.wk_stalled <- true;
          s.s_stall_kills <- s.s_stall_kills + 1;
          tick c_stalls;
          try Unix.kill wk.wk_pid Sys.sigkill with Unix.Unix_error _ -> ()
        end
      end)
    s.s_workers

(* ---------- hand-off entries ---------- *)

(* What a supervisor hands upward — to a router's [take] request while
   running, or through the drain manifest when exiting. One shape for
   both channels, so the router adopts results and parked tenants with
   a single parser whether the shard is alive or already gone. *)

type taken =
  | T_done of { tk_tenant : int; tk_restarts : int; tk_result : tresult }
  | T_failed of { tk_tenant : int; tk_restarts : int; tk_migrations : int; tk_detail : string }
  | T_drained of {
      tk_tenant : int;
      tk_source : string;
      tk_abi : string;
      tk_fuel : int;
      tk_slice : int;
      tk_deadline_s : float option;
      tk_restarts : int;
      tk_migrations : int;
      tk_slices : int;
      tk_checkpoint : bool;  (** a checkpoint file backs the resume *)
    }

let taken_tenant = function
  | T_done e -> e.tk_tenant
  | T_failed e -> e.tk_tenant
  | T_drained e -> e.tk_tenant

let taken_to_json = function
  | T_done e ->
      Json.Obj
        (("tenant", jint e.tk_tenant) :: ("state", jstr "done")
        :: ("restarts", jint e.tk_restarts) :: tresult_fields e.tk_result)
  | T_failed e ->
      Json.Obj
        [
          ("tenant", jint e.tk_tenant);
          ("state", jstr "failed");
          ("detail", jstr e.tk_detail);
          ("restarts", jint e.tk_restarts);
          ("migrations", jint e.tk_migrations);
        ]
  | T_drained e ->
      Json.Obj
        [
          ("tenant", jint e.tk_tenant);
          ("state", jstr "drained");
          ("source", jstr e.tk_source);
          ("abi", jstr e.tk_abi);
          ("fuel", jint e.tk_fuel);
          ("slice", jint e.tk_slice);
          ("deadline_s", match e.tk_deadline_s with Some d -> jfloat d | None -> Json.Null);
          ("restarts", jint e.tk_restarts);
          ("migrations", jint e.tk_migrations);
          ("slices", jint e.tk_slices);
          ("checkpoint", jbool e.tk_checkpoint);
        ]

let taken_of_json j =
  let i k = Option.value ~default:0 (mem_int k j) in
  match (mem_int "tenant" j, mem_str "state" j) with
  | Some tid, Some "done" -> (
      match tresult_of_json j with
      | Ok r -> Ok (T_done { tk_tenant = tid; tk_restarts = i "restarts"; tk_result = r })
      | Error e -> Error e)
  | Some tid, Some "failed" ->
      Ok
        (T_failed
           {
             tk_tenant = tid;
             tk_restarts = i "restarts";
             tk_migrations = i "migrations";
             tk_detail = Option.value ~default:"failed" (mem_str "detail" j);
           })
  | Some tid, Some "drained" -> (
      match (mem_str "source" j, mem_str "abi" j) with
      | Some tk_source, Some tk_abi ->
          Ok
            (T_drained
               {
                 tk_tenant = tid;
                 tk_source;
                 tk_abi;
                 tk_fuel = i "fuel";
                 tk_slice = i "slice";
                 tk_deadline_s = mem_float "deadline_s" j;
                 tk_restarts = i "restarts";
                 tk_migrations = i "migrations";
                 tk_slices = i "slices";
                 tk_checkpoint =
                   Option.value ~default:false
                     (Option.bind (Json.member "checkpoint" j) Json.to_bool);
               })
      | _ -> Error "taken entry: drained without source/abi")
  | Some _, Some st -> Error ("taken entry: unknown state " ^ st)
  | _ -> Error "taken entry: missing tenant/state"

let taken_of_tenant (t : tenant) =
  match t.t_status with
  | Finished r -> Some (T_done { tk_tenant = t.t_id; tk_restarts = t.t_restarts; tk_result = r })
  | Failed d ->
      Some
        (T_failed
           {
             tk_tenant = t.t_id;
             tk_restarts = t.t_restarts;
             tk_migrations = t.t_migrations;
             tk_detail = d;
           })
  | Drained i ->
      Some
        (T_drained
           {
             tk_tenant = t.t_id;
             tk_source = t.t_source;
             tk_abi = t.t_abi;
             tk_fuel = t.t_fuel;
             tk_slice = t.t_slice;
             tk_deadline_s = t.t_deadline_s;
             tk_restarts = t.t_restarts;
             tk_migrations = i.dr_migrations;
             tk_slices = i.dr_slices;
             tk_checkpoint = i.dr_checkpoint;
           })
  | Queued | Running _ -> None

(* ---------- drain manifest ---------- *)

(* the supervisor's will: written (temp+rename, so never torn) right
   before a drained supervisor exits, read by the router at reap time *)

let manifest_schema = "cheri_c.serve-drain/v1"
let manifest_path ~dir = Filename.concat dir "drained.json"

let manifest_to_json entries =
  Json.Obj
    [ ("schema", jstr manifest_schema); ("entries", Json.Arr (List.map taken_to_json entries)) ]

let manifest_of_json s =
  match Json.parse s with
  | Error e -> Error ("drain manifest: " ^ e)
  | Ok j -> (
      match mem_str "schema" j with
      | Some sch when sch = manifest_schema -> (
          match Json.member "entries" j with
          | Some (Json.Arr l) ->
              List.fold_left
                (fun acc e ->
                  match (acc, taken_of_json e) with
                  | Ok xs, Ok x -> Ok (x :: xs)
                  | (Error _ as err), _ -> err
                  | _, Error e -> Error e)
                (Ok []) l
              |> Result.map List.rev
          | _ -> Error "drain manifest: missing entries")
      | Some sch -> Error ("drain manifest: foreign schema " ^ sch)
      | None -> Error "drain manifest: no schema")

let write_manifest s =
  let entries =
    Hashtbl.fold
      (fun _ t acc -> match taken_of_tenant t with Some e -> e :: acc | None -> acc)
      s.s_tenants []
    |> List.sort (fun a b -> compare (taken_tenant a) (taken_tenant b))
  in
  let path = manifest_path ~dir:s.s_cfg.dir in
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     output_string oc (Json.encode (manifest_to_json entries));
     close_out oc;
     Sys.rename tmp path
   with Sys_error _ -> ());
  entries

(* ---------- client requests ---------- *)

let reply_to client json =
  try
    Protocol.write_frame client.c_fd (Json.encode json);
    true
  with Unix.Unix_error _ -> false

let err ?(extra = []) code = Json.Obj ((("ok", jbool false) :: ("error", jstr code) :: extra))

let handle_submit s j =
  if s.s_draining then err "draining"
  else
    match mem_str "source" j with
    | None -> err "bad_request" ~extra:[ ("detail", jstr "missing source") ]
    | Some source -> (
        let abi = Option.value ~default:"CHERIv3" (mem_str "abi" j) in
        match Abi.of_key abi with
        | None ->
            err "bad_request" ~extra:[ ("detail", jstr (Printf.sprintf "unknown abi %S" abi)) ]
        | Some a -> (
            let fuel = Option.value ~default:s.s_cfg.fuel (mem_int "fuel" j) in
            let slice = Option.value ~default:s.s_cfg.slice (mem_int "slice" j) in
            if fuel < 1 || slice < 1 then
              err "bad_request" ~extra:[ ("detail", jstr "fuel and slice must be >= 1") ]
            else
              (* an explicit tenant id marks an adoption: a router is
                 placing (or re-placing) a globally-admitted tenant, so
                 per-shard admission must not bounce it — capacity was
                 charged at first admission, and a rejection here would
                 strand a tenant that already holds a fleet slot *)
              let explicit = mem_int "tenant" j in
              match explicit with
              | Some tid when Hashtbl.mem s.s_tenants tid ->
                  err "tenant_exists" ~extra:[ ("tenant", jint tid) ]
              | _ -> (
                  let decision =
                    match explicit with
                    | Some _ ->
                        Admission.admit_forced s.s_adm;
                        Admission.Admit
                    | None -> Admission.request s.s_adm
                  in
                  match decision with
                  | Admission.Reject { retry_after_s } ->
                      tick c_rejected;
                      err "overloaded" ~extra:[ ("retry_after_s", jfloat retry_after_s) ]
                  | Admission.Admit ->
                      tick c_admitted;
                      let tid =
                        match explicit with Some tid -> tid | None -> s.s_next_tenant
                      in
                      s.s_next_tenant <- max s.s_next_tenant (tid + 1);
                      Hashtbl.replace s.s_tenants tid
                        {
                          t_id = tid;
                          t_source = source;
                          t_abi = Abi.name a;
                          t_fuel = fuel;
                          t_slice = slice;
                          t_deadline_s = mem_float "deadline_s" j;
                          t_status = Queued;
                          t_restarts = Option.value ~default:0 (mem_int "restarts" j);
                          t_migrations = Option.value ~default:0 (mem_int "migrations" j);
                          t_submit_t = now ();
                          t_done_t = 0.;
                        };
                      schedule s;
                      Json.Obj [ ("ok", jbool true); ("tenant", jint tid) ])))

let handle_poll s j =
  match mem_int "tenant" j with
  | None -> err "bad_request" ~extra:[ ("detail", jstr "missing tenant") ]
  | Some tid -> (
      match tenant_of_id s tid with
      | None -> err "unknown_tenant"
      | Some t ->
          let base = [ ("ok", jbool true); ("tenant", jint tid) ] in
          let state, extra =
            match t.t_status with
            | Queued -> ("queued", [])
            | Running w -> ("running", [ ("worker", jint w) ])
            | Finished r ->
                ( "done",
                  [
                    ( "result",
                      Json.Obj (tresult_fields r @ [ ("restarts", jint t.t_restarts) ]) );
                  ] )
            | Failed d -> ("failed", [ ("detail", jstr d) ])
            | Drained i ->
                ( "drained",
                  [ ("slices", jint i.dr_slices); ("migrations", jint i.dr_migrations) ] )
          in
          Json.Obj (base @ [ ("state", jstr state) ] @ extra))

(* Start a drain: refuse new admissions, park every queued tenant at
   its (possibly absent) checkpoint, and ask every worker to park its
   running ones at their next yield. Completion is detected by the main
   loop once nothing is Running; nothing is interrupted mid-slice, so
   drained checkpoints are exact, not torn. *)
let initiate_drain s =
  if not s.s_draining then begin
    s.s_draining <- true;
    Hashtbl.iter
      (fun _ t ->
        match t.t_status with
        | Queued -> mark_drained s t (drained_from_disk s t)
        | _ -> ())
      s.s_tenants;
    Array.iter
      (fun wk ->
        if wk.wk_alive then
          try Protocol.write_frame wk.wk_to (Json.encode (Json.Obj [ ("op", jstr "drain") ]))
          with Unix.Unix_error _ -> ())
      s.s_workers
  end

let handle_evict s j =
  match mem_int "tenant" j with
  | None -> err "bad_request" ~extra:[ ("detail", jstr "missing tenant") ]
  | Some tid -> (
      match tenant_of_id s tid with
      | None -> err "unknown_tenant"
      | Some t -> (
          let ok state = Json.Obj [ ("ok", jbool true); ("state", jstr state) ] in
          match t.t_status with
          | Queued ->
              mark_drained s t (drained_from_disk s t);
              ok "drained"
          | Running w -> (
              match
                Array.to_list s.s_workers
                |> List.find_opt (fun wk -> wk.wk_alive && wk.wk_id = w)
              with
              | Some wk -> (
                  match
                    Protocol.write_frame wk.wk_to
                      (Json.encode (Json.Obj [ ("op", jstr "evict"); ("tenant", jint tid) ]))
                  with
                  | () -> ok "evicting"
                  | exception Unix.Unix_error _ ->
                      (* dying worker: the reap pass will requeue the
                         tenant; the router's next evict finds it Queued *)
                      ok "evicting")
              | None -> ok "evicting")
          | Drained _ -> ok "drained"
          | Finished _ -> ok "done"
          | Failed _ -> ok "failed"))

(* collect-and-remove every terminal tenant: the one result channel a
   router needs (polling per-tenant would race worker deaths) *)
let handle_take s =
  let taken =
    Hashtbl.fold
      (fun tid t acc -> match taken_of_tenant t with Some e -> (tid, e) :: acc | None -> acc)
      s.s_tenants []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter (fun (tid, _) -> Hashtbl.remove s.s_tenants tid) taken;
  Json.Obj
    [ ("ok", jbool true); ("entries", Json.Arr (List.map (fun (_, e) -> taken_to_json e) taken)) ]

(* [None] means the reply is deferred (drain: answered at completion) *)
let handle_request s client req =
  match Json.parse req with
  | Error e -> Some (err "bad_request" ~extra:[ ("detail", jstr ("unparseable request: " ^ e)) ])
  | Ok j -> (
      match mem_str "op" j with
      | Some "submit" -> Some (handle_submit s j)
      | Some "poll" -> Some (handle_poll s j)
      | Some "take" -> Some (handle_take s)
      | Some "evict" -> Some (handle_evict s j)
      | Some "drain" ->
          initiate_drain s;
          s.s_drain_client <- Some client.c_fd;
          None
      | Some "stats" -> Some (Json.Obj (("ok", jbool true) :: status_fields s))
      | Some "metrics" ->
          Some
            (Json.Obj
               [ ("ok", jbool true); ("metrics", jstr (Obs.to_prometheus Obs.default)) ])
      | Some "shutdown" ->
          s.s_shutdown <- true;
          Some (Json.Obj [ ("ok", jbool true); ("shutting_down", jbool true) ])
      | Some op -> Some (err "bad_request" ~extra:[ ("detail", jstr ("unknown op " ^ op)) ])
      | None -> Some (err "bad_request" ~extra:[ ("detail", jstr "missing op") ]))

let drop_client s client =
  (try Unix.close client.c_fd with Unix.Unix_error _ -> ());
  s.s_clients <- List.filter (fun c -> c.c_fd <> client.c_fd) s.s_clients

let pump_client s client =
  let buf = Bytes.create 65536 in
  match Unix.read client.c_fd buf 0 (Bytes.length buf) with
  | 0 -> drop_client s client
  | n ->
      Protocol.Reader.feed client.c_reader (Bytes.sub_string buf 0 n);
      let rec frames () =
        match Protocol.Reader.next client.c_reader with
        | `Frame f -> (
            match handle_request s client f with
            | Some resp -> if reply_to client resp then frames () else drop_client s client
            | None -> frames ())
        | `Awaiting -> ()
        | `Corrupt m ->
            ignore (reply_to client (err "bad_request" ~extra:[ ("detail", jstr m) ]));
            drop_client s client
      in
      frames ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop_client s client

let accept_client s =
  match Unix.accept ~cloexec:true s.s_listen with
  | fd, _ -> s.s_clients <- { c_fd = fd; c_reader = Protocol.Reader.create () } :: s.s_clients
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

let shutdown_workers s =
  Array.iter
    (fun wk ->
      if wk.wk_alive then (
        (try Protocol.write_frame wk.wk_to (Json.encode (Json.Obj [ ("op", jstr "quit") ]))
         with Unix.Unix_error _ -> ());
        try Unix.close wk.wk_to with Unix.Unix_error _ -> ()))
    s.s_workers;
  let deadline = now () +. 2.0 in
  let rec wait_all () =
    let pending =
      Array.to_list s.s_workers
      |> List.filter (fun wk ->
             wk.wk_alive
             &&
             match Unix.waitpid [ Unix.WNOHANG ] wk.wk_pid with
             | 0, _ -> true
             | _, _ -> false
             | exception Unix.Unix_error _ -> false)
    in
    if pending <> [] then
      if now () > deadline then
        List.iter
          (fun wk ->
            (try Unix.kill wk.wk_pid Sys.sigkill with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] wk.wk_pid) with Unix.Unix_error _ -> ())
          pending
      else begin
        ignore (Unix.select [] [] [] 0.05);
        wait_all ()
      end
  in
  wait_all ();
  Array.iter
    (fun wk -> try Unix.close wk.wk_from with Unix.Unix_error _ -> ())
    s.s_workers

(* ---------- startup: socket claim and orphan sweep ---------- *)

(* Claim a Unix-domain listen socket path. A leftover file at the path
   is only an error if something still answers on it: probe with a
   connect — a live listener accepts (the path is genuinely in use); a
   dead leftover (crashed server, stale tmpdir) refuses, and is safe to
   unlink and rebind. The old behavior (unlink unconditionally) could
   steal a running server's socket; raw bind would crash on any
   leftover with an unstructured Unix_error. *)
let bind_listener path =
  let bind_fresh () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* workers (and shards, under the router) are spawned after the
       bind: without close-on-exec they would inherit the listener, and
       a SIGKILLed server's children would keep the socket answering
       connect probes — making an honest respawn refuse to start *)
    Unix.set_close_on_exec fd;
    match
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64
    with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))
  in
  if not (Sys.file_exists path) then bind_fresh ()
  else begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      Error (Printf.sprintf "socket %s is in use: another server is listening on it" path)
    else begin
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      bind_fresh ()
    end
  end

(* Sweep the checkpoints directory for orphans — tenants whose
   supervisor was SIGKILLed out from under them. Each file is
   load-verified (CRC and note schema): a valid self-describing
   checkpoint yields its meta so the caller can requeue the tenant; a
   corrupt or pre-migration one (no embedded assignment to requeue
   from) is deleted and counted. Exposed for tests. *)
let sweep_checkpoints ~dir =
  let cdir = Filename.concat dir "checkpoints" in
  let files =
    match Sys.readdir cdir with
    | fs ->
        Array.to_list fs |> List.filter (fun f -> Filename.check_suffix f ".snap") |> List.sort compare
    | exception Sys_error _ -> []
  in
  let discard path = try Sys.remove path with Sys_error _ -> () in
  let valid, discarded =
    List.fold_left
      (fun (valid, discarded) f ->
        let path = Filename.concat cdir f in
        match Snapshot.load path with
        | Error _ ->
            discard path;
            (valid, discarded + 1)
        | Ok img -> (
            match Checkpoint.parse_note (Snapshot.image_note img) with
            | Ok m when Checkpoint.self_describing m -> (m :: valid, discarded)
            | Ok _ | Error _ ->
                discard path;
                (valid, discarded + 1)))
      ([], 0) files
  in
  (List.rev valid, discarded)

(* drain finished: everything is parked or terminal — write the will,
   answer the admin who asked (if any), and let the loop fall out *)
let maybe_finish_drain s =
  if s.s_draining && not s.s_shutdown then begin
    let all_parked =
      Hashtbl.fold
        (fun _ t acc -> acc && match t.t_status with Running _ -> false | _ -> true)
        s.s_tenants true
    in
    if all_parked then begin
      let entries = write_manifest s in
      (match s.s_drain_client with
      | Some fd -> (
          let resp =
            Json.Obj
              [
                ("ok", jbool true);
                ("drained", jbool true);
                ("tenants", jint (List.length entries));
              ]
          in
          try Protocol.write_frame fd (Json.encode resp) with Unix.Unix_error _ -> ())
      | None -> ());
      s.s_shutdown <- true
    end
  end

let server_main (cfg : config) =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  sigterm_drain := false;
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> sigterm_drain := true));
  mkdir_p cfg.dir;
  mkdir_p (Filename.concat cfg.dir "workers");
  mkdir_p (Filename.concat cfg.dir "checkpoints");
  (try Sys.remove (manifest_path ~dir:cfg.dir) with Sys_error _ -> ());
  let listen =
    match bind_listener cfg.socket with
    | Ok fd -> fd
    | Error detail ->
        prerr_endline
          (Json.encode
             (Json.Obj
                [ ("error", jstr "socket_in_use"); ("detail", jstr detail); ("exit", jint 2) ]));
        exit 2
  in
  let s =
    {
      s_cfg = cfg;
      s_adm =
        Admission.create ~seed:cfg.seed ~retry_base_s:cfg.retry_base_s ~capacity:cfg.capacity ();
      s_listen = listen;
      s_clients = [];
      s_tenants = Hashtbl.create 64;
      s_next_tenant = 0;
      s_workers =
        Array.init (max 1 cfg.workers) (fun i ->
            {
              wk_id = i;
              wk_pid = -1;
              wk_to = Unix.stderr;
              wk_from = Unix.stderr;
              wk_reader = Protocol.Reader.create ();
              wk_alive = false;
              wk_stalled = false;
              wk_tenants = [];
              wk_spawned = 0.;
            });
      s_hb =
        Obs.Heartbeat.create
          ~interval_s:(if cfg.status_s > 0. then cfg.status_s else 1.0)
          ~path:(Filename.concat cfg.dir "status.json") ();
      s_t0 = now ();
      s_job_seconds = Obs.histogram Obs.default "serve_job_seconds";
      s_done = 0;
      s_failed = 0;
      s_requeues = 0;
      s_worker_deaths = 0;
      s_stall_kills = 0;
      s_corruptions = 0;
      s_corrupted = [];
      s_corrupt_armed = cfg.corrupt_requeue;
      s_shutdown = false;
      s_draining = false;
      s_drain_client = None;
      s_orphans_requeued = 0;
      s_orphans_discarded = 0;
    }
  in
  (* adopt orphans before anything can race them: checkpoints left by a
     SIGKILLed predecessor in this directory become queued tenants
     again (their next worker resumes from the file); corrupt ones are
     deleted and counted, never retried *)
  let recovered, discarded = sweep_checkpoints ~dir:cfg.dir in
  List.iter
    (fun (m : Checkpoint.meta) ->
      Admission.admit_forced s.s_adm;
      tick c_admitted;
      tick c_orphans_requeued;
      s.s_orphans_requeued <- s.s_orphans_requeued + 1;
      s.s_next_tenant <- max s.s_next_tenant (m.Checkpoint.ck_tenant + 1);
      Hashtbl.replace s.s_tenants m.Checkpoint.ck_tenant
        {
          t_id = m.Checkpoint.ck_tenant;
          t_source = m.Checkpoint.ck_source;
          t_abi = m.Checkpoint.ck_abi;
          t_fuel = m.Checkpoint.ck_fuel;
          t_slice = m.Checkpoint.ck_slice;
          t_deadline_s = m.Checkpoint.ck_deadline_s;
          t_status = Queued;
          t_restarts = m.Checkpoint.ck_restarts + 1;
          t_migrations = m.Checkpoint.ck_migrations;
          t_submit_t = now ();
          t_done_t = 0.;
        })
    recovered;
  s.s_orphans_discarded <- discarded;
  for _ = 1 to discarded do
    tick c_orphans_discarded
  done;
  Array.iter (fun wk -> spawn_worker s wk) s.s_workers;
  schedule s;
  Obs.Heartbeat.force s.s_hb (status_payload s);
  let rec loop () =
    if not s.s_shutdown then begin
      let worker_fds =
        Array.to_list s.s_workers
        |> List.filter_map (fun wk -> if wk.wk_alive then Some wk.wk_from else None)
      in
      let client_fds = List.map (fun c -> c.c_fd) s.s_clients in
      let readable, _, _ =
        match Unix.select ((s.s_listen :: worker_fds) @ client_fds) [] [] cfg.tick_s with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = s.s_listen then accept_client s
          else
            match Array.to_list s.s_workers |> List.find_opt (fun wk -> wk.wk_alive && wk.wk_from = fd) with
            | Some wk -> ignore (pump_worker s wk : [ `Eof | `Open ])
            | None -> (
                match List.find_opt (fun c -> c.c_fd = fd) s.s_clients with
                | Some c -> pump_client s c
                | None -> ()))
        readable;
      reap_workers s;
      probe_workers s;
      if !sigterm_drain then initiate_drain s;
      schedule s;
      maybe_finish_drain s;
      Obs.Heartbeat.beat s.s_hb (status_payload s);
      loop ()
    end
  in
  loop ();
  Obs.Heartbeat.force s.s_hb (status_payload s);
  shutdown_workers s;
  List.iter (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) s.s_clients;
  (try Unix.close s.s_listen with Unix.Unix_error _ -> ());
  try Unix.unlink cfg.socket with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Child dispatch                                                      *)

(* Host binaries (cheri-serve, bench/main) call this before their own
   argument parsing: a process re-executed with a marker in argv[1] is
   a service child, not a CLI invocation. *)
let child_dispatch () =
  if Array.length Sys.argv >= 3 then
    if Sys.argv.(1) = worker_marker then
      match worker_config_of_json Sys.argv.(2) with
      | Ok w -> worker_main w
      | Error e ->
          prerr_endline ("serve worker child: " ^ e);
          exit 2
    else if Sys.argv.(1) = server_marker then
      match config_of_json Sys.argv.(2) with
      | Ok cfg ->
          server_main cfg;
          exit 0
      | Error e ->
          prerr_endline ("serve server child: " ^ e);
          exit 2
