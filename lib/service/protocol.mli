(** Length-prefixed JSON framing for the simulation service.

    A frame is 8 lowercase hex digits (the payload length), one
    newline, then exactly that many payload bytes — scriptable from a
    shell ([printf '%08x\n%s' ${#REQ} "$REQ" | nc -U serve.sock]) yet
    a true length prefix: payload bytes are never scanned for a
    terminator. *)

val header_bytes : int
(** 9: eight hex digits plus the newline. *)

val max_frame : int
(** Frames above this payload size (16 MiB) are refused as corrupt —
    a garbage header must not make the reader buffer gigabytes. *)

val encode : string -> string
(** The framed bytes for a payload. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, riding out short writes, [EINTR] and (on
    nonblocking fds) [EAGAIN]. Peer-death errors ([EPIPE], ...) escape
    as [Unix_error]: the caller owns the drop-the-peer decision. *)

val write_frame : Unix.file_descr -> string -> unit
(** [write_all fd (encode payload)]. *)

(** Incremental frame decoder for a multiplexed (select-driven) fd:
    feed whatever bytes arrive, pull complete frames out. *)
module Reader : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit

  val next : t -> [ `Frame of string | `Awaiting | `Corrupt of string ]
  (** One decoded payload, [`Awaiting] if the buffered bytes end
      mid-frame (a SIGKILLed writer's torn last frame parses as this
      forever — discarded when the fd reaches EOF), or [`Corrupt] if
      the buffer cannot be a frame header. After [`Corrupt] the reader
      is poisoned; drop the connection. *)
end

val read_frame :
  Unix.file_descr -> Reader.t -> [ `Frame of string | `Eof | `Corrupt of string ]
(** Blocking read of one frame (client and worker sides); surplus bytes
    stay buffered in the reader for the next call. *)

val request :
  Unix.file_descr -> Reader.t -> Cheri_util.Json.t -> (Cheri_util.Json.t, string) result
(** One blocking request/response round trip: frame and send the
    request, read and parse one response frame. *)

val request_timeout :
  Unix.file_descr ->
  Reader.t ->
  timeout_s:float ->
  Cheri_util.Json.t ->
  [ `Ok of Cheri_util.Json.t | `Timeout | `Error of string ]
(** {!request} with a deadline, for peers that may be stalled
    (SIGSTOP, wedged syscall): returns [`Timeout] instead of hanging.
    A timed-out connection may hold a partial response in the reader —
    drop it, don't reuse it. *)
