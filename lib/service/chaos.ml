(* Kill-a-worker chaos harness for the multi-tenant service.

   The harness is an open-loop client of a real server: it spawns the
   supervisor as a separate process, floods it with more tenants than
   the admission cap (asserting the overflow gets structured
   `overloaded` rejections with retry-after hints, not queue growth),
   and while the fleet is busy it disrupts it for real — one worker is
   SIGSTOPped (the supervisor must detect the stale heartbeat and
   SIGKILL it), [kills] more are SIGKILLed outright, and one requeued
   tenant's checkpoint file is damaged on disk (the supervisor's
   corrupt_requeue hook), which must demote to a clean restart rather
   than crash anything.

   The verdict is byte-identity: after every tenant completes, each one
   is replayed in-process through Service.run_serial — the exact
   fuel-sliced loop a worker runs — and output, cycles, instret,
   outcome AND slice count must match exactly. Slice-count equality is
   the "at most one slice lost" invariant made observable: a tenant's
   slice counter rides inside its checkpoint note, so the only slice a
   crash can take is the one in flight (counted by neither side), and
   any further loss — a stale checkpoint, a replayed slice — would show
   up as a count mismatch. The requeue ledger is cross-checked too:
   the sum of per-tenant restart counters must equal the supervisor's
   requeues counter, which is itself bounded by deaths x capacity. *)

module Json = Cheri_util.Json

let jint n = Json.Num (string_of_int n)
let jstr s = Json.Str s
let mem_int k j = Option.bind (Json.member k j) Json.to_int
let mem_float k j = Option.bind (Json.member k j) Json.to_float
let mem_str k j = Option.bind (Json.member k j) Json.to_string
let mem_bool k j = Option.bind (Json.member k j) Json.to_bool
let now = Unix.gettimeofday

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | st -> (
      match st.Unix.st_kind with
      | Unix.S_DIR ->
          Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
          (try Unix.rmdir path with Unix.Unix_error _ -> ())
      | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ()))

(* ------------------------------------------------------------------ *)
(* Client: spawn a server process, speak the protocol to it            *)

module Client = struct
  type t = { fd : Unix.file_descr; rd : Protocol.Reader.t }

  let spawn_server cfg =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; Service.server_marker; Service.config_to_json cfg |]
      Unix.stdin Unix.stdout Unix.stderr

  let spawn_router rcfg =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; Router.router_marker; Router.rconfig_to_json rcfg |]
      Unix.stdin Unix.stdout Unix.stderr

  let connect path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; rd = Protocol.Reader.create () }

  let wait_socket path ~timeout_s =
    let deadline = now () +. timeout_s in
    let rec go () =
      match connect path with
      | c ->
          Unix.close c.fd;
          true
      | exception Unix.Unix_error _ ->
          if now () > deadline then false
          else begin
            ignore (Unix.select [] [] [] 0.02);
            go ()
          end
    in
    go ()

  let request t j = Protocol.request t.fd t.rd j
  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* ------------------------------------------------------------------ *)
(* Synthetic tenants                                                   *)

(* splitmix-style step, kept in 62 bits so it is identical on any
   int64-word OCaml *)
let mix x =
  let x = (x + 0x1E3779B97F4A7C15) land 0x3FFFFFFFFFFFFFFF in
  let x = (x lxor (x lsr 30)) * 0x2545F4914F6CDD1D land 0x3FFFFFFFFFFFFFFF in
  (x lxor (x lsr 27)) land 0x3FFFFFFFFFFFFFFF

let tenant_source ~seed ~index =
  let r0 = mix ((seed * 1_000_003) + index) in
  let r1 = mix r0 and r2 = mix (mix r0) in
  let iters = 20_000 + (r0 mod 60_000) in
  let stride = 1 + (r1 mod 997) in
  let acc0 = r2 mod 100_000 in
  Printf.sprintf
    {|
int main(void) {
  long *tab = (long *)malloc(8 * 64);
  for (long i = 0; i < 64; i++) { tab[i] = %d + i * %d; }
  long acc = %d;
  for (long i = 0; i < %d; i++) {
    acc = acc * 1103515245 + 12345 + tab[i & 63];
  }
  print_int(acc & 1048575);
  return 0;
}
|}
    (stride * 7) stride acc0 iters

let spin_source = {|
int main(void) {
  long i = 0;
  while (1) { i = i + 1; }
  return 0;
}
|}

let abis = [| "mips"; "cheriv2"; "cheriv3" |]

(* ------------------------------------------------------------------ *)
(* The harness                                                         *)

type cfg = {
  ch_tenants : int;
  ch_kills : int;
  ch_seed : int;
  ch_workers : int;
  ch_worker_jobs : int;
  ch_slice : int;
  ch_keep : bool;
  ch_verbose : bool;
}

let default =
  {
    ch_tenants = 16;
    ch_kills = 3;
    ch_seed = 42;
    ch_workers = 2;
    ch_worker_jobs = 1;
    ch_slice = 20_000;
    ch_keep = false;
    ch_verbose = false;
  }

type spec = {
  x_index : int;
  x_source : string;
  x_abi : string;
  x_fuel : int;
  x_slice : int;
  mutable x_tid : int option;
  mutable x_result : Json.t option;  (* the poll "result" object *)
  mutable x_restarts : int;
}

exception Chaos_failure of string

let run (c : cfg) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let info fmt =
    Printf.ksprintf (fun m -> if c.ch_verbose then Printf.eprintf "chaos: %s\n%!" m) fmt
  in
  let dir = Printf.sprintf "/tmp/cheri-serve-%d-%d" (Unix.getpid ()) c.ch_seed in
  rm_rf dir;
  let capacity = max 2 (c.ch_tenants / 4) in
  let scfg =
    {
      (Service.default_config ~dir) with
      Service.workers = c.ch_workers;
      worker_jobs = c.ch_worker_jobs;
      capacity;
      slice = c.ch_slice;
      fuel = 50_000_000;
      heartbeat_s = 0.3;
      tick_s = 0.02;
      retry_base_s = 0.02;
      seed = c.ch_seed;
      corrupt_requeue = (if c.ch_kills > 0 then 1 else 0);
    }
  in
  let specs =
    Array.init c.ch_tenants (fun i ->
        if i = c.ch_tenants - 1 then
          (* one tenant that never terminates: the fuel watchdog must
             cut it off deterministically *)
          { x_index = i; x_source = spin_source; x_abi = "cheriv3"; x_fuel = 150_000;
            x_slice = c.ch_slice; x_tid = None; x_result = None; x_restarts = 0 }
        else
          { x_index = i; x_source = tenant_source ~seed:c.ch_seed ~index:i;
            x_abi = abis.(i mod Array.length abis); x_fuel = 50_000_000;
            x_slice = c.ch_slice; x_tid = None; x_result = None; x_restarts = 0 })
  in
  info "state dir %s, capacity %d, %d workers" dir capacity c.ch_workers;
  let srv_pid = Client.spawn_server scfg in
  let cleanup_server () =
    (try Unix.kill srv_pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] srv_pid) with Unix.Unix_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      cleanup_server ();
      if not c.ch_keep then rm_rf dir)
    (fun () ->
      if not (Client.wait_socket scfg.Service.socket ~timeout_s:10.0) then
        raise (Chaos_failure "server socket never came up");
      let cl = Client.connect scfg.Service.socket in
      let request j =
        match Client.request cl j with
        | Ok r -> r
        | Error e -> raise (Chaos_failure ("request failed: " ^ e))
      in
      let stats () = request (Json.Obj [ ("op", jstr "stats") ]) in
      (* Idle soak: sit past the spawn grace plus several staleness
         windows before submitting anything. An idle worker beats no
         slices, so if it ever stops beating on its own it is
         indistinguishable from a stalled one — a supervisor that
         reaps healthy idle workers fails here with spurious deaths
         before the first job is even submitted. *)
      let hb = scfg.Service.heartbeat_s in
      Unix.sleepf ((2.0 *. hb) +. 1.0 +. (6.0 *. hb));
      (let st = stats () in
       match (mem_int "worker_deaths" st, mem_int "stall_kills" st) with
       | Some 0, Some 0 -> ()
       | Some d, Some s -> err "idle workers were reaped before any work: deaths=%d stalls=%d" d s
       | _ -> err "stats reply missing worker_deaths/stall_kills");
      let rejections = ref 0 in
      let best_hint = ref 0.0 in
      let check_stats st =
        (match (mem_int "live" st, mem_int "capacity" st) with
        | Some live, Some cap ->
            if live > cap then err "admission over cap: live=%d capacity=%d" live cap
        | _ -> err "stats reply missing live/capacity")
      in
      let submit sp =
        let req =
          Json.Obj
            [
              ("op", jstr "submit");
              ("source", jstr sp.x_source);
              ("abi", jstr sp.x_abi);
              ("fuel", jint sp.x_fuel);
              ("slice", jint sp.x_slice);
            ]
        in
        let r = request req in
        match (mem_bool "ok" r, mem_int "tenant" r, mem_str "error" r) with
        | Some true, Some tid, _ ->
            sp.x_tid <- Some tid;
            `Admitted
        | Some false, _, Some "overloaded" -> (
            incr rejections;
            match mem_float "retry_after_s" r with
            | Some h when h > 0.0 ->
                if h > !best_hint then best_hint := h;
                `Rejected h
            | _ ->
                err "overloaded rejection without a positive retry_after_s hint";
                `Rejected 0.05)
        | _ -> raise (Chaos_failure ("unexpected submit reply: " ^ Json.encode r))
      in
      (* ---- disruption schedule, fired against done-counts ---- *)
      let deaths_seen = ref 0 in
      let disruptions =
        ref
          ((1, `Stall)
          :: List.init c.ch_kills (fun k ->
                 (((k + 2) * c.ch_tenants / (c.ch_kills + 3)) + 1, `Kill)))
      in
      let busiest_worker st =
        match Json.member "workers" st with
        | Some (Json.Arr ws) ->
            List.fold_left
              (fun acc w ->
                match (mem_bool "alive" w, mem_int "pid" w, mem_int "tenants" w) with
                | Some true, Some pid, Some n when n >= 1 -> (
                    match acc with
                    | Some (_, best_n) when best_n >= n -> acc
                    | _ -> Some (pid, n))
                | _ -> acc)
              None ws
        | _ -> None
      in
      let await_death ~label deaths_before =
        let deadline = now () +. 15.0 in
        let rec go () =
          let st = stats () in
          check_stats st;
          match mem_int "worker_deaths" st with
          | Some d when d > deaths_before -> deaths_seen := d
          | _ ->
              if now () > deadline then
                raise (Chaos_failure (Printf.sprintf "%s: supervisor never reaped the worker" label))
              else begin
                ignore (Unix.select [] [] [] 0.03);
                go ()
              end
        in
        go ()
      in
      let fire_disruption st kind =
        match busiest_worker st with
        | None -> false (* nobody busy this instant; retry next poll *)
        | Some (pid, n) ->
            let before = Option.value ~default:!deaths_seen (mem_int "worker_deaths" st) in
            (match kind with
            | `Stall ->
                info "SIGSTOP worker pid %d (%d tenants)" pid n;
                (try Unix.kill pid Sys.sigstop with Unix.Unix_error _ -> ());
                await_death ~label:"stall" before
            | `Kill ->
                info "SIGKILL worker pid %d (%d tenants)" pid n;
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                await_death ~label:"kill" before);
            true
      in
      (* ---- main loop: submit (riding rejection hints), poll, disrupt ---- *)
      let pending = Queue.create () in
      Array.iter (fun sp -> Queue.add sp pending) specs;
      let next_submit_t = ref 0.0 in
      let finished = ref 0 in
      let deadline = now () +. 120.0 in
      while !finished < c.ch_tenants do
        if now () > deadline then
          raise
            (Chaos_failure
               (Printf.sprintf "timeout: %d/%d tenants done, stats %s" !finished c.ch_tenants
                  (Json.encode (stats ()))));
        (* submissions: burst until rejected, then honor (a clamp of)
           the hint so the test stays fast *)
        if (not (Queue.is_empty pending)) && now () >= !next_submit_t then begin
          match submit (Queue.peek pending) with
          | `Admitted -> ignore (Queue.pop pending)
          | `Rejected hint -> next_submit_t := now () +. Float.min hint 0.1
        end;
        let st = stats () in
        check_stats st;
        let done_now = Option.value ~default:0 (mem_int "done" st) in
        (match !disruptions with
        | (threshold, kind) :: rest when done_now >= threshold ->
            if fire_disruption st kind then disruptions := rest
        | _ -> ());
        Array.iter
          (fun sp ->
            match (sp.x_tid, sp.x_result) with
            | Some tid, None -> (
                let r = request (Json.Obj [ ("op", jstr "poll"); ("tenant", jint tid) ]) in
                match mem_str "state" r with
                | Some "done" ->
                    sp.x_result <- Json.member "result" r;
                    sp.x_restarts <-
                      Option.value ~default:0
                        (Option.bind (Json.member "result" r) (mem_int "restarts"));
                    incr finished
                | Some "failed" ->
                    err "tenant %d failed: %s" sp.x_index
                      (Option.value ~default:"?" (mem_str "detail" r));
                    sp.x_result <- Some (Json.Obj []);
                    incr finished
                | Some _ -> ()
                | None -> err "poll reply without state: %s" (Json.encode r))
            | _ -> ())
          specs;
        ignore (Unix.select [] [] [] 0.02)
      done;
      if !disruptions <> [] then
        err "all tenants finished before %d disruption(s) could fire" (List.length !disruptions);
      (* ---- final ledger ---- *)
      let st = stats () in
      check_stats st;
      let stat k = Option.value ~default:(-1) (mem_int k st) in
      let worker_deaths = stat "worker_deaths" in
      let stall_kills = stat "stall_kills" in
      let requeues = stat "requeues" in
      let corruptions = stat "corruptions" in
      let corrupted =
        match Json.member "corrupted" st with
        | Some (Json.Arr l) -> List.filter_map Json.to_int l
        | _ -> []
      in
      info "deaths=%d stalls=%d requeues=%d corruptions=%d rejections=%d" worker_deaths
        stall_kills requeues corruptions !rejections;
      if !disruptions = [] then begin
        if worker_deaths <> c.ch_kills + 1 then
          err "expected exactly %d worker deaths (%d kills + 1 stall), saw %d" (c.ch_kills + 1)
            c.ch_kills worker_deaths;
        if stall_kills <> 1 then err "expected exactly 1 stall kill, saw %d" stall_kills;
        if requeues < 1 then err "disruptions displaced no tenants (requeues = 0)"
      end;
      if requeues > worker_deaths * capacity then
        err "requeues %d exceed deaths(%d) x capacity(%d)" requeues worker_deaths capacity;
      if c.ch_kills > 0 && corruptions <> 1 then
        err "expected exactly 1 injected checkpoint corruption, saw %d" corruptions;
      if !rejections < 1 then
        err "over-admission burst was never rejected (capacity %d, tenants %d)" capacity
          c.ch_tenants;
      if !best_hint <= 0.0 then err "no positive retry_after_s hint observed";
      let restart_sum = Array.fold_left (fun a sp -> a + sp.x_restarts) 0 specs in
      if restart_sum <> requeues then
        err "per-tenant restart counters sum to %d but supervisor counted %d requeues"
          restart_sum requeues;
      (* ---- byte-identity against the undisturbed serial reference ---- *)
      let resumed_seen = ref 0 in
      Array.iter
        (fun sp ->
          match sp.x_result with
          | None -> err "tenant %d never finished" sp.x_index
          | Some r -> (
              match
                Service.run_serial ~abi:sp.x_abi ~fuel:sp.x_fuel ~slice:sp.x_slice sp.x_source
              with
              | Error e -> err "tenant %d: serial reference failed: %s" sp.x_index e
              | Ok expect ->
                  let got_s k = Option.value ~default:"<missing>" (mem_str k r) in
                  let got_i k = Option.value ~default:(-1) (mem_int k r) in
                  let fail_field f want got =
                    err "tenant %d (%s): %s diverged: serial=%s disturbed=%s" sp.x_index
                      sp.x_abi f want got
                  in
                  if got_s "outcome" <> expect.Service.r_outcome then
                    fail_field "outcome" expect.Service.r_outcome (got_s "outcome");
                  if got_s "output" <> expect.Service.r_output then
                    fail_field "output" (String.escaped expect.Service.r_output)
                      (String.escaped (got_s "output"));
                  if got_i "cycles" <> expect.Service.r_cycles then
                    fail_field "cycles" (string_of_int expect.Service.r_cycles)
                      (string_of_int (got_i "cycles"));
                  if got_i "instret" <> expect.Service.r_instret then
                    fail_field "instret" (string_of_int expect.Service.r_instret)
                      (string_of_int (got_i "instret"));
                  (* slice-count equality IS the <=1-slice-loss bound:
                     the counter rides in the checkpoint note, so only
                     the uncheckpointed in-flight slice can be redone,
                     and it is counted exactly once either way *)
                  if got_i "slices" <> expect.Service.r_slices then
                    fail_field "slices" (string_of_int expect.Service.r_slices)
                      (string_of_int (got_i "slices"));
                  if Option.value ~default:false (mem_bool "resumed" r) then incr resumed_seen;
                  (match sp.x_tid with
                  | Some tid when List.mem tid corrupted ->
                      if not (Option.value ~default:false (mem_bool "scratch" r)) then
                        err
                          "tenant %d had its checkpoint corrupted but was not restarted from \
                           scratch"
                          sp.x_index
                  | _ -> ())))
        specs;
      if worker_deaths > 0 && requeues > corruptions && !resumed_seen = 0 then
        err "no tenant ever resumed from a checkpoint despite %d requeues" requeues;
      (* ---- shutdown ---- *)
      (match Client.request cl (Json.Obj [ ("op", jstr "shutdown") ]) with
      | Ok _ -> ()
      | Error e -> err "shutdown request failed: %s" e);
      Client.close cl;
      let sdeadline = now () +. 10.0 in
      let rec reap () =
        match Unix.waitpid [ Unix.WNOHANG ] srv_pid with
        | 0, _ ->
            if now () > sdeadline then err "server did not exit after shutdown"
            else begin
              ignore (Unix.select [] [] [] 0.05);
              reap ()
            end
        | _, Unix.WEXITED 0 -> ()
        | _, status ->
            err "server exited abnormally: %s"
              (match status with
              | Unix.WEXITED n -> Printf.sprintf "exit %d" n
              | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
              | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
        | exception Unix.Unix_error _ -> ()
      in
      reap ();
      match List.rev !errors with
      | [] ->
          Printf.printf
            "chaos: PASS %d tenants byte-identical through %d worker deaths (%d SIGKILL + %d \
             stall), %d requeues, %d corrupted checkpoint(s), %d admission rejections\n%!"
            c.ch_tenants worker_deaths c.ch_kills stall_kills requeues corruptions !rejections;
          0
      | es ->
          List.iter (fun e -> Printf.eprintf "chaos: FAIL %s\n" e) es;
          Printf.eprintf "chaos: %d assertion(s) failed\n%!" (List.length es);
          1)

let run c = try run c with Chaos_failure m ->
  Printf.eprintf "chaos: ABORT %s\n%!" m;
  1

(* ------------------------------------------------------------------ *)
(* Fleet harness: shard-level faults against the router                *)

(* The shard-level analog of [run]: a >=3-shard fleet (each shard a
   full supervisor with its own worker pool) is driven through one
   whole-shard SIGSTOP (the router must detect the stale shard
   heartbeat and SIGKILL it), one direct SIGTERM drain under load (the
   shard parks every tenant, writes its manifest, exits 0), one
   whole-shard SIGKILL, and one admin drain + rebalance over the wire.
   Every displaced tenant must migrate — resume on a surviving shard
   from its checkpoint — and finish byte-identical to the serial
   reference, and the migration ledger must balance exactly: the sum
   of migration counters reported by finished tenants equals the
   migrations the router says it performed. Finally the router itself
   is SIGTERMed and must exit 0 leaving a fleet manifest. *)

type fleet_cfg = {
  f_tenants : int;
  f_shards : int;
  f_workers : int;  (* per shard *)
  f_seed : int;
  f_slice : int;
  f_keep : bool;
  f_verbose : bool;
}

let fleet_default =
  {
    f_tenants = 15;
    f_shards = 3;
    f_workers = 1;
    f_seed = 7;
    f_slice = 20_000;
    f_keep = false;
    f_verbose = false;
  }

let read_manifest path =
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception (Sys_error _ | End_of_file) -> None
  | s -> ( match Service.manifest_of_json s with Ok es -> Some es | Error _ -> None)

let run_fleet (c : fleet_cfg) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let info fmt =
    Printf.ksprintf (fun m -> if c.f_verbose then Printf.eprintf "chaos-fleet: %s\n%!" m) fmt
  in
  let dir = Printf.sprintf "/tmp/cheri-fleet-%d-%d" (Unix.getpid ()) c.f_seed in
  rm_rf dir;
  let capacity = max 2 (c.f_tenants / 4) in
  let rcfg =
    {
      (Router.default_rconfig ~dir) with
      Router.r_shards = max 3 c.f_shards;
      r_workers = c.f_workers;
      r_worker_jobs = 1;
      r_capacity = capacity;
      r_slice = c.f_slice;
      r_fuel = 50_000_000;
      r_heartbeat_s = 0.3;
      r_status_s = 0.4;
      r_tick_s = 0.02;
      r_take_s = 0.1;
      r_req_timeout_s = 2.0;
      r_retry_base_s = 0.02;
      r_seed = c.f_seed;
    }
  in
  let specs =
    Array.init c.f_tenants (fun i ->
        if i = c.f_tenants - 1 then
          { x_index = i; x_source = spin_source; x_abi = "cheriv3"; x_fuel = 150_000;
            x_slice = c.f_slice; x_tid = None; x_result = None; x_restarts = 0 }
        else
          { x_index = i; x_source = tenant_source ~seed:c.f_seed ~index:i;
            x_abi = abis.(i mod Array.length abis); x_fuel = 50_000_000;
            x_slice = c.f_slice; x_tid = None; x_result = None; x_restarts = 0 })
  in
  info "fleet dir %s, %d shards, capacity %d" dir rcfg.Router.r_shards capacity;
  let router_pid = Client.spawn_router rcfg in
  let cleanup_router () =
    (try Unix.kill router_pid Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] router_pid) with Unix.Unix_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      cleanup_router ();
      if not c.f_keep then rm_rf dir)
    (fun () ->
      if not (Client.wait_socket rcfg.Router.r_socket ~timeout_s:15.0) then
        raise (Chaos_failure "fleet socket never came up");
      let cl = Client.connect rcfg.Router.r_socket in
      let request j =
        match Client.request cl j with
        | Ok r -> r
        | Error e -> raise (Chaos_failure ("fleet request failed: " ^ e))
      in
      let stats () = request (Json.Obj [ ("op", jstr "stats") ]) in
      (* idle soak past the shard spawn grace plus staleness windows: a
         router that reaps healthy idle shards fails here *)
      Unix.sleepf (3.0 +. (2.0 *. rcfg.Router.r_status_s) +. 1.5);
      (let st = stats () in
       match (mem_int "shard_deaths" st, mem_int "stall_kills" st) with
       | Some 0, Some 0 -> ()
       | Some d, Some s -> err "idle shards were reaped before any work: deaths=%d stalls=%d" d s
       | _ -> err "fleet stats missing shard_deaths/stall_kills");
      let rejections = ref 0 in
      let best_hint = ref 0.0 in
      let submit sp =
        let req =
          Json.Obj
            [
              ("op", jstr "submit");
              ("source", jstr sp.x_source);
              ("abi", jstr sp.x_abi);
              ("fuel", jint sp.x_fuel);
              ("slice", jint sp.x_slice);
            ]
        in
        let r = request req in
        match (mem_bool "ok" r, mem_int "tenant" r, mem_str "error" r) with
        | Some true, Some tid, _ ->
            sp.x_tid <- Some tid;
            `Admitted
        | Some false, _, Some "overloaded" -> (
            incr rejections;
            match mem_float "retry_after_s" r with
            | Some h when h > 0.0 ->
                if h > !best_hint then best_hint := h;
                `Rejected h
            | _ ->
                err "overloaded rejection without a positive retry_after_s hint";
                `Rejected 0.05)
        | _ -> raise (Chaos_failure ("unexpected submit reply: " ^ Json.encode r))
      in
      (* ---- shard-level disruption schedule, fired on done counts ---- *)
      let stat st k = Option.value ~default:(-1) (mem_int k st) in
      let busiest_shard st =
        match Json.member "shards" st with
        | Some (Json.Arr ss) ->
            List.fold_left
              (fun acc s ->
                match
                  (mem_bool "alive" s, mem_bool "draining" s, mem_int "id" s, mem_int "pid" s,
                   mem_int "tenants" s)
                with
                | Some true, Some false, Some id, Some pid, Some n when n >= 1 -> (
                    match acc with
                    | Some (_, _, best_n) when best_n >= n -> acc
                    | _ -> Some (id, pid, n))
                | _ -> acc)
              None ss
        | _ -> None
      in
      let await ~label ~deadline_s pred =
        let deadline = now () +. deadline_s in
        let rec go () =
          let st = stats () in
          if pred st then ()
          else if now () > deadline then
            raise
              (Chaos_failure
                 (Printf.sprintf "%s: condition never held; stats %s" label (Json.encode st)))
          else begin
            ignore (Unix.select [] [] [] 0.05);
            go ()
          end
        in
        go ()
      in
      let disruptions = ref [ (1, `StopShard); (4, `TermShard); (7, `KillShard); (10, `AdminDrain) ] in
      let fire_disruption st kind =
        match busiest_shard st with
        | None -> false (* nobody loaded this instant; retry next poll *)
        | Some (id, pid, n) ->
            let deaths0 = stat st "shard_deaths" in
            let stalls0 = stat st "stall_kills" in
            let drains0 = stat st "drains" in
            (match kind with
            | `StopShard ->
                info "SIGSTOP shard %d pid %d (%d tenants)" id pid n;
                (try Unix.kill pid Sys.sigstop with Unix.Unix_error _ -> ());
                await ~label:"shard stall" ~deadline_s:30.0 (fun st ->
                    stat st "stall_kills" > stalls0 && stat st "shard_deaths" > deaths0)
            | `TermShard ->
                info "SIGTERM shard %d pid %d (%d tenants)" id pid n;
                (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
                await ~label:"shard drain" ~deadline_s:30.0 (fun st ->
                    stat st "drains" > drains0)
            | `KillShard ->
                info "SIGKILL shard %d pid %d (%d tenants)" id pid n;
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                await ~label:"shard kill" ~deadline_s:30.0 (fun st ->
                    stat st "shard_deaths" > deaths0)
            | `AdminDrain ->
                info "admin drain shard %d (%d tenants), then rebalance" id n;
                (let r = request (Json.Obj [ ("op", jstr "drain"); ("shard", jint id) ]) in
                 if mem_bool "ok" r <> Some true then
                   err "admin drain refused: %s" (Json.encode r));
                await ~label:"admin drain" ~deadline_s:30.0 (fun st ->
                    stat st "drains" > drains0);
                let r = request (Json.Obj [ ("op", jstr "rebalance") ]) in
                if mem_bool "ok" r <> Some true then err "rebalance refused: %s" (Json.encode r)
                else if Option.value ~default:0 (mem_int "revived" r) < 1 then
                  err "rebalance revived no held shard slot: %s" (Json.encode r));
            true
      in
      (* ---- main loop: submit (riding hints), poll, disrupt ---- *)
      let pending = Queue.create () in
      Array.iter (fun sp -> Queue.add sp pending) specs;
      let next_submit_t = ref 0.0 in
      let finished = ref 0 in
      let deadline = now () +. 240.0 in
      while !finished < c.f_tenants do
        if now () > deadline then
          raise
            (Chaos_failure
               (Printf.sprintf "timeout: %d/%d tenants done, stats %s" !finished c.f_tenants
                  (Json.encode (stats ()))));
        if (not (Queue.is_empty pending)) && now () >= !next_submit_t then begin
          match submit (Queue.peek pending) with
          | `Admitted -> ignore (Queue.pop pending)
          | `Rejected hint -> next_submit_t := now () +. Float.min hint 0.1
        end;
        let st = stats () in
        let done_now = Option.value ~default:0 (mem_int "done" st) in
        (match !disruptions with
        | (threshold, kind) :: rest when done_now >= threshold ->
            if fire_disruption st kind then disruptions := rest
        | _ -> ());
        Array.iter
          (fun sp ->
            match (sp.x_tid, sp.x_result) with
            | Some tid, None -> (
                let r = request (Json.Obj [ ("op", jstr "poll"); ("tenant", jint tid) ]) in
                match mem_str "state" r with
                | Some "done" ->
                    sp.x_result <- Json.member "result" r;
                    sp.x_restarts <-
                      Option.value ~default:0
                        (Option.bind (Json.member "result" r) (mem_int "restarts"));
                    incr finished
                | Some "failed" ->
                    err "tenant %d failed: %s" sp.x_index
                      (Option.value ~default:"?" (mem_str "detail" r));
                    sp.x_result <- Some (Json.Obj []);
                    incr finished
                | Some _ -> ()
                | None -> err "poll reply without state: %s" (Json.encode r))
            | _ -> ())
          specs;
        ignore (Unix.select [] [] [] 0.02)
      done;
      if !disruptions <> [] then
        err "all tenants finished before %d disruption(s) could fire" (List.length !disruptions);
      (* ---- final ledger: exact migration and drain accounting ---- *)
      let st = stats () in
      let shard_deaths = stat st "shard_deaths" in
      let stall_kills = stat st "stall_kills" in
      let drains = stat st "drains" in
      let migrations = stat st "migrations" in
      let failed = stat st "failed" in
      info "deaths=%d stalls=%d drains=%d migrations=%d rejections=%d" shard_deaths stall_kills
        drains migrations !rejections;
      if failed <> 0 then err "%d tenant(s) failed at the router" failed;
      if !disruptions = [] then begin
        (* SIGSTOP (stall-killed) + SIGKILL are the dirty deaths; the
           SIGTERM drain and the admin drain each reaped one manifest *)
        if shard_deaths <> 2 then
          err "expected exactly 2 shard deaths (1 stall + 1 SIGKILL), saw %d" shard_deaths;
        if stall_kills <> 1 then err "expected exactly 1 shard stall kill, saw %d" stall_kills;
        if drains <> 2 then
          err "expected exactly 2 shard drains (1 SIGTERM + 1 admin), saw %d" drains;
        if migrations < 1 then err "shard faults displaced no tenants (migrations = 0)"
      end;
      if !rejections < 1 then
        err "over-admission burst was never rejected (capacity %d, tenants %d)" capacity
          c.f_tenants;
      if !best_hint <= 0.0 then err "no positive retry_after_s hint observed";
      if !best_hint > Admission.hint_cap_s +. 1e-9 then
        err "retry_after_s hint %.3f exceeds the %.0f s ceiling" !best_hint Admission.hint_cap_s;
      (* sum of per-tenant migration lineages = migrations the router
         performed: nothing double-migrated, nothing lost *)
      let mig_sum =
        Array.fold_left
          (fun acc sp ->
            acc
            + match sp.x_result with Some r -> Option.value ~default:0 (mem_int "migrations" r) | None -> 0)
          0 specs
      in
      if mig_sum <> migrations then
        err "per-tenant migration counters sum to %d but the router performed %d" mig_sum
          migrations;
      (* ---- byte-identity against the undisturbed serial reference ---- *)
      let migrated_seen = ref 0 in
      Array.iter
        (fun sp ->
          match sp.x_result with
          | None -> err "tenant %d never finished" sp.x_index
          | Some r -> (
              match
                Service.run_serial ~abi:sp.x_abi ~fuel:sp.x_fuel ~slice:sp.x_slice sp.x_source
              with
              | Error e -> err "tenant %d: serial reference failed: %s" sp.x_index e
              | Ok expect ->
                  let got_s k = Option.value ~default:"<missing>" (mem_str k r) in
                  let got_i k = Option.value ~default:(-1) (mem_int k r) in
                  let fail_field f want got =
                    err "tenant %d (%s): %s diverged: serial=%s disturbed=%s" sp.x_index
                      sp.x_abi f want got
                  in
                  if got_s "outcome" <> expect.Service.r_outcome then
                    fail_field "outcome" expect.Service.r_outcome (got_s "outcome");
                  if got_s "output" <> expect.Service.r_output then
                    fail_field "output" (String.escaped expect.Service.r_output)
                      (String.escaped (got_s "output"));
                  if got_i "cycles" <> expect.Service.r_cycles then
                    fail_field "cycles" (string_of_int expect.Service.r_cycles)
                      (string_of_int (got_i "cycles"));
                  if got_i "instret" <> expect.Service.r_instret then
                    fail_field "instret" (string_of_int expect.Service.r_instret)
                      (string_of_int (got_i "instret"));
                  (* slice-count equality makes the <=1-slice-loss bound
                     observable across shard boundaries too: a migrated
                     tenant's slice counter rides in its checkpoint
                     note, so a drain loses zero and a shard SIGKILL
                     loses only the uncounted in-flight slice *)
                  if got_i "slices" <> expect.Service.r_slices then
                    fail_field "slices" (string_of_int expect.Service.r_slices)
                      (string_of_int (got_i "slices"));
                  if got_i "migrations" > 0 then incr migrated_seen))
        specs;
      if migrations > 0 && !migrated_seen = 0 then
        err "router performed %d migrations but no finished tenant carries one" migrations;
      (* ---- graceful fleet shutdown: SIGTERM -> drain -> exit 0 ---- *)
      Client.close cl;
      (try Unix.kill router_pid Sys.sigterm with Unix.Unix_error _ -> ());
      let sdeadline = now () +. 20.0 in
      let rec reap () =
        match Unix.waitpid [ Unix.WNOHANG ] router_pid with
        | 0, _ ->
            if now () > sdeadline then err "router did not exit after SIGTERM"
            else begin
              ignore (Unix.select [] [] [] 0.05);
              reap ()
            end
        | _, Unix.WEXITED 0 -> ()
        | _, status ->
            err "router exited abnormally after SIGTERM: %s"
              (match status with
              | Unix.WEXITED n -> Printf.sprintf "exit %d" n
              | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
              | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
        | exception Unix.Unix_error _ -> ()
      in
      reap ();
      (* the fleet manifest is the router's will: every admitted tenant
         accounted for (here all terminal, so all T_done entries) *)
      (match read_manifest (Service.manifest_path ~dir) with
      | Some entries ->
          if List.length entries <> c.f_tenants then
            err "fleet manifest lists %d tenants, expected %d" (List.length entries) c.f_tenants
      | None -> err "router left no parseable fleet manifest at %s" (Service.manifest_path ~dir));
      match List.rev !errors with
      | [] ->
          Printf.printf
            "chaos-fleet: PASS %d tenants byte-identical across %d shards through 1 stall, 1 \
             SIGKILL, 1 SIGTERM drain, 1 admin drain+rebalance; %d migrations exactly \
             accounted, %d rejections\n%!"
            c.f_tenants rcfg.Router.r_shards migrations !rejections;
          0
      | es ->
          List.iter (fun e -> Printf.eprintf "chaos-fleet: FAIL %s\n" e) es;
          Printf.eprintf "chaos-fleet: %d assertion(s) failed\n%!" (List.length es);
          1)

let run_fleet c = try run_fleet c with Chaos_failure m ->
  Printf.eprintf "chaos-fleet: ABORT %s\n%!" m;
  1
