(** The supervised multi-tenant simulation service.

    One supervisor process owns a Unix-domain socket and a fleet of
    worker {e processes} (children of the host binary, re-executed with
    a hidden argv marker — so chaos testing can deliver real SIGKILL).
    Tenants are admitted under a bounded cap ({!Admission}), scheduled
    preemptively on each worker's {!Cheri_exec.Exec.Pool.Stream} in
    fuel-bounded slices, and checkpointed to disk with
    {!Cheri_snapshot.Snapshot} at every yield.

    Recovery invariant: a worker death (crash, SIGKILL, or a stalled
    heartbeat answered with SIGKILL) costs each of its tenants at most
    the one slice that was in flight; everything up to the last
    checkpoint is resumed byte-identically (output, cycles, instret).
    A checkpoint that fails validation — torn write, damaged sidecar —
    demotes to a clean restart from slice zero, never an error. *)

(** {1 Configuration} *)

type config = {
  dir : string;  (** state directory: socket, status files, checkpoints *)
  socket : string;
  workers : int;  (** worker processes *)
  worker_jobs : int;  (** pool domains per worker *)
  capacity : int;  (** admission cap on live tenants *)
  slice : int;  (** default per-slice fuel *)
  fuel : int;  (** default per-tenant total fuel budget *)
  heartbeat_s : float;  (** worker heartbeat interval; stale after 2x *)
  tick_s : float;  (** supervisor select timeout / probe period *)
  retry_base_s : float;  (** admission retry-after hint base *)
  seed : int;
  corrupt_requeue : int;
      (** chaos hook: 0 = off; [k] = the [k]-th requeued tenant that
          has a checkpoint on disk gets that checkpoint damaged before
          any worker can resume from it *)
}

val default_config : dir:string -> config
(** 2 workers x 1 domain, capacity 64, 100k-instruction slices, 200M
    fuel, 0.25 s heartbeats, 50 ms ticks. *)

val config_to_json : config -> string
val config_of_json : string -> (config, string) result

(** {1 Wire types} (exposed for the chaos harness and tests) *)

type assignment = {
  a_tenant : int;
  a_source : string;
  a_abi : string;
  a_fuel : int;
  a_slice : int;
  a_deadline_s : float option;
  a_restarts : int;
}

val assignment_to_json : assignment -> Cheri_util.Json.t
val assignment_of_json : Cheri_util.Json.t -> (assignment, string) result

type tresult = {
  r_outcome : string;
      (** ["exit:N"], ["trap:...@pc=N"], ["fuel_exhausted"], or
          ["deadline_exceeded"] *)
  r_output : string;
  r_cycles : int;
  r_instret : int;
  r_slices : int;
  r_resumed : bool;  (** resumed from a checkpoint at least once *)
  r_scratch : bool;  (** a checkpoint load failed; restarted from slice 0 *)
}

val tresult_fields : tresult -> (string * Cheri_util.Json.t) list
val tresult_of_json : Cheri_util.Json.t -> (tresult, string) result

(** {1 Checkpoint sidecars} *)

module Checkpoint : sig
  val schema : string
  (** ["cheri_c.serve-inflight/v1"] — the snapshot note schema. *)

  type meta = {
    ck_tenant : int;
    ck_slices : int;
    ck_wall_s : float;
    ck_resumed : bool;  (** lineage-cumulative: ever resumed *)
    ck_scratch : bool;  (** lineage-cumulative: ever restarted clean *)
  }

  val path : dir:string -> tenant:int -> string

  val note :
    tenant:int -> slices:int -> wall_s:float -> resumed:bool -> scratch:bool -> string
  (** The JSON note embedded in a tenant checkpoint. *)

  val parse_note : string -> (meta, string) result
  (** Rejects foreign schemas. *)
end

(** {1 Reference execution} *)

val run_serial :
  abi:string -> fuel:int -> slice:int -> string -> (tresult, string) result
(** Run a source in-process through the {e same} fuel-sliced loop a
    worker uses (minus checkpoints and heartbeats). The chaos harness
    compares every disturbed tenant against this — byte-identical
    output/cycles/instret and an exact expected slice count. *)

(** {1 Process entry points} *)

val worker_marker : string
val server_marker : string

val child_dispatch : unit -> unit
(** Call this {e first} in the main of any binary that hosts the
    service (before CLI parsing): if [argv.(1)] is {!worker_marker} or
    {!server_marker}, the process runs as that service child on the
    JSON config in [argv.(2)] and never returns. *)

val server_main : config -> unit
(** Run the supervisor in this process: bind the socket, spawn
    workers, serve until a [shutdown] request. *)
