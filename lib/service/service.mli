(** The supervised multi-tenant simulation service.

    One supervisor process owns a Unix-domain socket and a fleet of
    worker {e processes} (children of the host binary, re-executed with
    a hidden argv marker — so chaos testing can deliver real SIGKILL).
    Tenants are admitted under a bounded cap ({!Admission}), scheduled
    preemptively on each worker's {!Cheri_exec.Exec.Pool.Stream} in
    fuel-bounded slices, and checkpointed to disk with
    {!Cheri_snapshot.Snapshot} at every yield.

    Recovery invariant: a worker death (crash, SIGKILL, or a stalled
    heartbeat answered with SIGKILL) costs each of its tenants at most
    the one slice that was in flight; everything up to the last
    checkpoint is resumed byte-identically (output, cycles, instret).
    A checkpoint that fails validation — torn write, damaged sidecar —
    demotes to a clean restart from slice zero, never an error.

    Migration plane (for {!Router}): checkpoints are self-describing
    (the note embeds the full assignment), so a checkpoint {e file} is
    a complete live tenant — a router moves one between shard
    directories with a rename and re-submits under the same global id.
    A [drain] (wire op, or SIGTERM) parks every tenant at its next
    yield with zero slices lost, writes a manifest of parked tenants
    and untaken results, and exits 0. *)

(** {1 Configuration} *)

type config = {
  dir : string;  (** state directory: socket, status files, checkpoints *)
  socket : string;
  workers : int;  (** worker processes *)
  worker_jobs : int;  (** pool domains per worker *)
  capacity : int;  (** admission cap on live tenants *)
  slice : int;  (** default per-slice fuel *)
  fuel : int;  (** default per-tenant total fuel budget *)
  heartbeat_s : float;  (** worker heartbeat interval; stale after 2x *)
  tick_s : float;  (** supervisor select timeout / probe period *)
  status_s : float;  (** supervisor status-file heartbeat interval *)
  retry_base_s : float;  (** admission retry-after hint base *)
  seed : int;
  corrupt_requeue : int;
      (** chaos hook: 0 = off; [k] = the [k]-th requeued tenant that
          has a checkpoint on disk gets that checkpoint damaged before
          any worker can resume from it *)
}

val default_config : dir:string -> config
(** 2 workers x 1 domain, capacity 64, 100k-instruction slices, 200M
    fuel, 0.25 s heartbeats, 50 ms ticks, 1 s status beats. *)

val config_to_json : config -> string
val config_of_json : string -> (config, string) result

(** {1 Wire types} (exposed for the router, chaos harness and tests) *)

type assignment = {
  a_tenant : int;
  a_source : string;
  a_abi : string;
  a_fuel : int;
  a_slice : int;
  a_deadline_s : float option;
  a_restarts : int;
  a_migrations : int;  (** cross-shard moves in this tenant's lineage *)
}

val assignment_to_json : assignment -> Cheri_util.Json.t
val assignment_of_json : Cheri_util.Json.t -> (assignment, string) result

type tresult = {
  r_outcome : string;
      (** ["exit:N"], ["trap:...@pc=N"], ["fuel_exhausted"], or
          ["deadline_exceeded"] *)
  r_output : string;
  r_cycles : int;
  r_instret : int;
  r_slices : int;
  r_resumed : bool;  (** resumed from a checkpoint at least once *)
  r_scratch : bool;  (** a checkpoint load failed; restarted from slice 0 *)
  r_migrations : int;  (** cross-shard moves in this tenant's lineage *)
}

val tresult_fields : tresult -> (string * Cheri_util.Json.t) list
val tresult_of_json : Cheri_util.Json.t -> (tresult, string) result

(** {1 Checkpoint sidecars} *)

module Checkpoint : sig
  val schema : string
  (** ["cheri_c.serve-inflight/v1"] — the snapshot note schema. The
      migration fields were added without a schema bump: they default
      on parse, so pre-migration checkpoints still load. *)

  type meta = {
    ck_tenant : int;
    ck_slices : int;
    ck_wall_s : float;
    ck_resumed : bool;  (** lineage-cumulative: ever resumed *)
    ck_scratch : bool;  (** lineage-cumulative: ever restarted clean *)
    ck_migrations : int;
    ck_restarts : int;
    ck_source : string;  (** [""] in pre-migration checkpoints *)
    ck_abi : string;
    ck_fuel : int;
    ck_slice : int;
    ck_deadline_s : float option;
  }

  val path : dir:string -> tenant:int -> string

  val note :
    tenant:int ->
    slices:int ->
    wall_s:float ->
    resumed:bool ->
    scratch:bool ->
    migrations:int ->
    restarts:int ->
    source:string ->
    abi:string ->
    fuel:int ->
    slice:int ->
    deadline_s:float option ->
    string
  (** The JSON note embedded in a tenant checkpoint. Self-describing:
      it carries the full assignment, so the file alone suffices to
      requeue the tenant (orphan sweep, cross-shard migration). *)

  val parse_note : string -> (meta, string) result
  (** Rejects foreign schemas. *)

  val self_describing : meta -> bool
  (** The note carries enough ([source], [abi], positive [fuel] and
      [slice]) to rebuild the whole assignment. *)
end

(** {1 Hand-off entries}

    What a supervisor hands upward: to a router's [take] request while
    running, or through the drain manifest when exiting. *)

type taken =
  | T_done of { tk_tenant : int; tk_restarts : int; tk_result : tresult }
  | T_failed of { tk_tenant : int; tk_restarts : int; tk_migrations : int; tk_detail : string }
  | T_drained of {
      tk_tenant : int;
      tk_source : string;
      tk_abi : string;
      tk_fuel : int;
      tk_slice : int;
      tk_deadline_s : float option;
      tk_restarts : int;
      tk_migrations : int;
      tk_slices : int;
      tk_checkpoint : bool;  (** a checkpoint file backs the resume *)
    }

val taken_tenant : taken -> int
val taken_to_json : taken -> Cheri_util.Json.t
val taken_of_json : Cheri_util.Json.t -> (taken, string) result

val manifest_schema : string
(** ["cheri_c.serve-drain/v1"] — the drained-supervisor manifest. *)

val manifest_path : dir:string -> string
(** [dir/drained.json]: written (temp+rename) by a draining supervisor
    right before it exits 0; read by the router at reap time. *)

val manifest_of_json : string -> (taken list, string) result

(** {1 Startup helpers} (exposed for the router and tests) *)

val bind_listener : string -> (Unix.file_descr, string) result
(** Claim a Unix-domain listen socket path. A leftover file is probed
    with a connect: a live listener makes this [Error] ("truly in
    use"); a dead leftover is unlinked and rebound. *)

val sweep_checkpoints : dir:string -> Checkpoint.meta list * int
(** Scan [dir/checkpoints] for orphaned [*.snap] files: load-verify
    each, return the metas of valid self-describing ones (requeue
    candidates, sorted by filename) and the count of corrupt or
    non-self-describing ones (deleted). *)

(** {1 Reference execution} *)

val run_serial :
  abi:string -> fuel:int -> slice:int -> string -> (tresult, string) result
(** Run a source in-process through the {e same} fuel-sliced loop a
    worker uses (minus checkpoints and heartbeats). The chaos harness
    compares every disturbed tenant against this — byte-identical
    output/cycles/instret and an exact expected slice count. *)

(** {1 Process entry points} *)

val worker_marker : string
val server_marker : string

val child_dispatch : unit -> unit
(** Call this {e first} in the main of any binary that hosts the
    service (before CLI parsing): if [argv.(1)] is {!worker_marker} or
    {!server_marker}, the process runs as that service child on the
    JSON config in [argv.(2)] and never returns. *)

val server_main : config -> unit
(** Run the supervisor in this process: sweep orphaned checkpoints,
    bind the socket, spawn workers, serve until a [shutdown] request —
    or drain (wire op or SIGTERM: park every tenant at its next yield,
    write the manifest, stop) and return. Exits 2 with a structured
    message if the socket path is genuinely in use. *)
