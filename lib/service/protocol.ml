(* The service wire format: length-prefixed JSON frames.

   A frame is 8 lowercase hex digits (payload length), one '\n', then
   exactly that many payload bytes. The prefix is ASCII rather than
   binary so a job can be submitted from a shell one-liner
   (`printf '%08x\n%s' ${#REQ} "$REQ" | nc -U serve.sock`) while still
   being a real length prefix — the reader never scans the payload for
   a terminator, so payloads may contain newlines, braces, anything.

   The same framing runs on two very different transports:
   - supervisor <-> client over a Unix-domain socket (nonblocking fds
     multiplexed under select: the incremental [Reader] buffers
     partial frames across reads);
   - supervisor <-> worker over pipes (the worker side blocks, the
     supervisor side is the same [Reader]; a SIGKILLed worker leaves
     at worst one torn frame in its pipe, which parses as `Awaiting
     and is discarded at EOF — exactly the torn-final-line contract of
     the campaign checkpoint files). *)

let header_bytes = 9 (* 8 hex digits + '\n' *)
let max_frame = 16 * 1024 * 1024

let encode payload = Printf.sprintf "%08x\n%s" (String.length payload) payload

(* Write the whole string, riding out short writes, EINTR, and (for
   nonblocking fds) EAGAIN via a bounded select. Unix_error from a dead
   peer (EPIPE/ECONNRESET) escapes to the caller, which owns the
   drop-the-peer decision. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | w -> off := !off + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ fd ] [] 1.0)
  done

let write_frame fd payload = write_all fd (encode payload)

module Reader = struct
  type t = { mutable pending : string }

  let create () = { pending = "" }
  let feed t s = if s <> "" then t.pending <- t.pending ^ s

  let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

  let next t =
    let p = t.pending in
    let n = String.length p in
    if n < header_bytes then `Awaiting
    else if p.[8] <> '\n' then `Corrupt "frame header is not 8 hex digits + newline"
    else if not (String.for_all is_hex (String.sub p 0 8)) then
      `Corrupt "frame length is not hexadecimal"
    else
      let len = int_of_string ("0x" ^ String.sub p 0 8) in
      if len > max_frame then `Corrupt (Printf.sprintf "frame length %d exceeds limit" len)
      else if n < header_bytes + len then `Awaiting
      else begin
        t.pending <- String.sub p (header_bytes + len) (n - header_bytes - len);
        `Frame (String.sub p header_bytes len)
      end
end

(* Blocking frame read for the client and worker sides (one reader per
   fd; buffered surplus stays in it for the next call). *)
let read_frame fd reader =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Reader.next reader with
    | (`Frame _ | `Corrupt _) as r -> r
    | `Awaiting -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> `Eof
        | n ->
            Reader.feed reader (Bytes.sub_string buf 0 n);
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* One blocking request/response round trip (the client side). *)
let request fd reader json =
  write_frame fd (Cheri_util.Json.encode json);
  match read_frame fd reader with
  | `Frame f -> (
      match Cheri_util.Json.parse f with
      | Ok j -> Ok j
      | Error e -> Error ("unparseable response: " ^ e))
  | `Eof -> Error "connection closed by server"
  | `Corrupt m -> Error ("corrupt response frame: " ^ m)

(* [request] with a deadline: a router talking to a shard that might be
   SIGSTOPped (or wedged) must not hang with it — `Timeout hands the
   no-answer case back to the caller, which owns the is-it-dead
   decision (heartbeat probe, kill). Any partial response stays in the
   reader, so a timed-out connection must be dropped, not reused. *)
let request_timeout fd reader ~timeout_s json =
  match write_frame fd (Cheri_util.Json.encode json) with
  | exception Unix.Unix_error (e, _, _) -> `Error ("send: " ^ Unix.error_message e)
  | () ->
      let deadline = Unix.gettimeofday () +. timeout_s in
      let buf = Bytes.create 65536 in
      let rec go () =
        match Reader.next reader with
        | `Frame f -> (
            match Cheri_util.Json.parse f with
            | Ok j -> `Ok j
            | Error e -> `Error ("unparseable response: " ^ e))
        | `Corrupt m -> `Error ("corrupt response frame: " ^ m)
        | `Awaiting -> (
            let left = deadline -. Unix.gettimeofday () in
            if left <= 0. then `Timeout
            else
              match Unix.select [ fd ] [] [] left with
              | [], _, _ -> `Timeout
              | _ -> (
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> `Error "connection closed by server"
                  | n ->
                      Reader.feed reader (Bytes.sub_string buf 0 n);
                      go ()
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
                  | exception Unix.Unix_error (e, _, _) ->
                      `Error ("recv: " ^ Unix.error_message e))
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
      in
      go ()
