(** Bounded admission control: at most [capacity] live tenants; a
    submit past the cap gets a structured rejection with a
    decorrelated-jitter retry-after hint ({!Cheri_exec.Exec.Pool.backoff_duration}
    keyed by the consecutive-rejection streak, so hints stretch and
    de-synchronize under sustained overload and snap back to the base
    after the next admit — never exceeding {!hint_cap_s}). Capacity is
    dynamic ({!set_capacity}): a sharded fleet shrinks it as shards
    drain or die, so hints track fleet-wide pressure. Single-threaded:
    the supervisor loop is the only caller. *)

type t

type decision = Admit | Reject of { retry_after_s : float }

val hint_cap_s : float
(** 30 s: the ceiling on every [retry_after_s] hint, whatever the
    base and however long the rejection streak. *)

val create : ?seed:int -> ?retry_base_s:float -> capacity:int -> unit -> t
(** [retry_base_s] defaults to 0.05 s. Raises [Invalid_argument] when
    [capacity < 1]. *)

val set_capacity : t -> int -> unit
(** Re-point the cap (fleet grew or shrank). Shrinking below the
    current live count evicts nothing — it only blocks new admits
    until enough live tenants finish. Raises [Invalid_argument] when
    the new capacity is [< 1]. *)

val request : t -> decision
(** Decide one submission; [Admit] takes a live slot. *)

val admit_forced : t -> unit
(** Take a live slot unconditionally, even over capacity — for work
    that predates the cap (orphaned checkpoints recovered at startup)
    and must not be dropped. Resets the rejection streak. *)

val release : t -> unit
(** Return a live slot (tenant finished or failed). *)

val live : t -> int
val capacity : t -> int
val admitted : t -> int
val rejected : t -> int
