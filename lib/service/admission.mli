(** Bounded admission control: at most [capacity] live tenants; a
    submit past the cap gets a structured rejection with a
    decorrelated-jitter retry-after hint ({!Cheri_exec.Exec.Pool.backoff_duration}
    keyed by the consecutive-rejection streak, so hints stretch and
    de-synchronize under sustained overload and snap back to the base
    after the next admit). Single-threaded: the supervisor loop is the
    only caller. *)

type t

type decision = Admit | Reject of { retry_after_s : float }

val create : ?seed:int -> ?retry_base_s:float -> capacity:int -> unit -> t
(** [retry_base_s] defaults to 0.05 s. Raises [Invalid_argument] when
    [capacity < 1]. *)

val request : t -> decision
(** Decide one submission; [Admit] takes a live slot. *)

val release : t -> unit
(** Return a live slot (tenant finished or failed). *)

val live : t -> int
val capacity : t -> int
val admitted : t -> int
val rejected : t -> int
