(** Kill-a-worker chaos harness: an open-loop client that floods a
    real (separate-process) server past its admission cap, SIGSTOPs one
    worker (the stale-heartbeat path must SIGKILL it), SIGKILLs
    [kills] more, damages one requeued tenant's checkpoint on disk,
    then replays every tenant through {!Service.run_serial} and
    asserts byte-identity — outcome, output, cycles, instret and the
    slice count — plus the requeue/rejection ledger. *)

type cfg = {
  ch_tenants : int;
  ch_kills : int;  (** SIGKILLs on top of the one stall-kill *)
  ch_seed : int;
  ch_workers : int;
  ch_worker_jobs : int;
  ch_slice : int;  (** per-slice fuel (small = many checkpoints) *)
  ch_keep : bool;  (** keep the state dir for post-mortem *)
  ch_verbose : bool;
}

val default : cfg
(** 16 tenants, 3 kills, seed 42, 2 workers x 1 domain, 20k slices. *)

val run : cfg -> int
(** Run the harness; returns a process exit code (0 = every assertion
    held). The server and its state directory live under [/tmp] and
    are torn down unless [ch_keep]. *)

(** {1 Fleet harness} — shard-level faults against the {!Router}. *)

type fleet_cfg = {
  f_tenants : int;
  f_shards : int;  (** clamped to >= 3 *)
  f_workers : int;  (** worker processes per shard *)
  f_seed : int;
  f_slice : int;
  f_keep : bool;
  f_verbose : bool;
}

val fleet_default : fleet_cfg
(** 15 tenants over 3 shards x 1 worker, seed 7, 20k slices. *)

val run_fleet : fleet_cfg -> int
(** Drive a router fleet through one whole-shard SIGSTOP (stale-
    heartbeat SIGKILL + failover), one direct SIGTERM drain under
    load, one whole-shard SIGKILL, and one admin drain + rebalance;
    assert byte-identity of every tenant against {!Service.run_serial}
    (outcome, output, cycles, instret, slices), exact migration/drain
    accounting (sum of per-tenant migration counters = router
    migrations; deaths/stalls/drains exactly as scheduled), admission
    hints under the {!Admission.hint_cap_s} ceiling, and a clean
    SIGTERM exit 0 leaving a fleet manifest. Returns an exit code. *)

val tenant_source : seed:int -> index:int -> string
(** The deterministic minic workload for tenant [index]: a seeded
    LCG/table loop of 20k-80k iterations printing a masked
    accumulator. Shared with [bench serve]. *)

(** Minimal protocol client, shared with [bench serve]. *)
module Client : sig
  type t

  val spawn_server : Service.config -> int
  (** Re-exec this binary as a supervisor child; returns its pid.
      Requires the host binary to call {!Service.child_dispatch}. *)

  val spawn_router : Router.rconfig -> int
  (** Re-exec this binary as a router child; returns its pid.
      Requires the host binary to call {!Router.child_dispatch}. *)

  val wait_socket : string -> timeout_s:float -> bool
  val connect : string -> t
  val request : t -> Cheri_util.Json.t -> (Cheri_util.Json.t, string) result
  val close : t -> unit
end

val rm_rf : string -> unit
