(* The cheri_c.snap/v1 on-disk format.

   A snapshot is one self-describing file:

     "cheri_c.snap/v1\n"            format magic, newline-terminated
     u32 LE                         header length in bytes
     header JSON                    machine identity + body_bytes + note
     binary body (LE)               the Machine.Snap.t payload
     u32 LE                         CRC-32 over everything above

   The header is JSON so `cheri-snap info` (and a curious `head -2`)
   can describe an image without decoding the body; the body is raw
   little-endian binary because the dominant content is memory pages
   and registers, where JSON would triple the size for nothing. The
   trailing CRC distinguishes bit rot from truncation: a short file
   fails the length check declared in the header (Truncated), a
   same-length corrupt file fails the CRC (Crc_mismatch).

   Writes go through a temp file + rename, the same atomicity idiom as
   the campaign checkpoints: a crash mid-save leaves either the old
   snapshot or a `.tmp` orphan, never a half-written image under the
   real name. *)

module Machine = Cheri_isa.Machine
module Cache = Cheri_isa.Cache
module Insn = Cheri_isa.Insn
module Cap = Cheri_core.Capability
module Perms = Cheri_core.Perms
module Ops = Cheri_core.Cap_ops
module Json = Cheri_util.Json
module Obs = Cheri_obs.Obs

(* Save/restore latency and volume land in the process-wide registry:
   per-operation cost only (one observation per file, never per
   instruction), so the null-registry perf budgets are untouched. The
   spans parent to whatever [Span.with_] region encloses the call —
   a sidecar save inside a campaign slice nests under that slice. *)
let m_saves = Obs.counter Obs.default "snapshot_saves_total"
let m_save_bytes = Obs.counter Obs.default "snapshot_save_bytes_total"
let m_save_s = Obs.histogram Obs.default "snapshot_save_seconds"
let m_loads = Obs.counter Obs.default "snapshot_loads_total"
let m_load_s = Obs.histogram Obs.default "snapshot_load_seconds"
let m_restores = Obs.counter Obs.default "snapshot_restores_total"
let m_restore_s = Obs.histogram Obs.default "snapshot_restore_seconds"

let timed counter hist label f =
  Obs.Span.with_ Obs.default label (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      Obs.Counter.incr counter;
      Obs.Histogram.observe hist (Unix.gettimeofday () -. t0);
      r)

let format_version = "cheri_c.snap/v1"
let magic = format_version ^ "\n"

type error =
  | Io of string
  | Truncated of string
  | Crc_mismatch of { stored : int; computed : int }
  | Version_mismatch of { found : string }
  | Machine_mismatch of string

let pp_error ppf = function
  | Io msg -> Format.fprintf ppf "i/o error: %s" msg
  | Truncated why ->
      Format.fprintf ppf
        "truncated snapshot: %s; the file is incomplete — re-create it with \
         --snapshot"
        why
  | Crc_mismatch { stored; computed } ->
      Format.fprintf ppf
        "snapshot checksum mismatch (file says %08x, contents hash to %08x); \
         the file is corrupt — re-create it with --snapshot"
        (stored land 0xffffffff)
        (computed land 0xffffffff)
  | Version_mismatch { found } ->
      Format.fprintf ppf
        "not a %s image (file starts with %S); it was written by a different \
         tool or format revision — re-create the snapshot with this build"
        format_version found
  | Machine_mismatch why ->
      Format.fprintf ppf
        "snapshot does not fit this machine: %s; resume with the same \
         program, ABI and machine configuration that produced it"
        why

let error_to_string e = Format.asprintf "%a" pp_error e

(* ------------------------------------------------------------------ *)
(* Code identity                                                       *)

(* The snapshot does not embed the code array (it is immutable and the
   caller recompiles it from source); instead the header pins a digest
   of the printed instruction stream so a resume against a different
   program is refused instead of silently executing garbage. The hash
   itself lives with the decoded-program representation
   ({!Cheri_isa.Decoded.digest}) and is computed over the *source*
   stream, so images hashed before the decode stage existed still
   match. *)
let code_digest ~abi code = Cheri_isa.Decoded.source_digest ~abi code
let machine_digest ~abi m = Cheri_isa.Decoded.digest ~abi (Machine.program m)

(* ------------------------------------------------------------------ *)
(* Header                                                              *)

type header = {
  h_abi : string;
  h_revision : string;
  h_mem_size : int;
  h_data_base : int64;
  h_stack_bytes : int;
  h_trapv : bool;
  h_timing : int array;  (* the 8 Cache.Timing.config fields, in order *)
  h_code_digest : string;
  h_body_bytes : int;
  h_note : string;
}

let revision_key = function Ops.V2 -> "v2" | Ops.V3 -> "v3"

let timing_fields (c : Cache.Timing.config) =
  [| c.l1_size; c.l1_ways; c.l2_size; c.l2_ways; c.line_bytes;
     c.l1_hit_cycles; c.l2_hit_cycles; c.memory_cycles |]

let timing_names =
  [| "l1_size"; "l1_ways"; "l2_size"; "l2_ways"; "line_bytes";
     "l1_hit_cycles"; "l2_hit_cycles"; "memory_cycles" |]

let header_of_machine ~abi ~note ~body_bytes m =
  let cfg = Machine.config m in
  {
    h_abi = abi;
    h_revision = revision_key cfg.revision;
    h_mem_size = cfg.mem_size;
    h_data_base = cfg.data_base;
    h_stack_bytes = cfg.stack_bytes;
    h_trapv = cfg.trap_on_signed_overflow;
    h_timing = timing_fields cfg.timing;
    h_code_digest = machine_digest ~abi m;
    h_body_bytes = body_bytes;
    h_note = note;
  }

let header_to_json h =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "{\"schema\":\"%s\"" format_version);
  Buffer.add_string b (Printf.sprintf ",\"abi\":\"%s\"" (Json.escape h.h_abi));
  Buffer.add_string b (Printf.sprintf ",\"revision\":\"%s\"" h.h_revision);
  Buffer.add_string b (Printf.sprintf ",\"mem_size\":%d" h.h_mem_size);
  Buffer.add_string b (Printf.sprintf ",\"data_base\":%Ld" h.h_data_base);
  Buffer.add_string b (Printf.sprintf ",\"stack_bytes\":%d" h.h_stack_bytes);
  Buffer.add_string b (Printf.sprintf ",\"trapv\":%b" h.h_trapv);
  Array.iteri
    (fun i v -> Buffer.add_string b (Printf.sprintf ",\"%s\":%d" timing_names.(i) v))
    h.h_timing;
  Buffer.add_string b
    (Printf.sprintf ",\"code_digest\":\"%s\"" h.h_code_digest);
  Buffer.add_string b (Printf.sprintf ",\"body_bytes\":%d" h.h_body_bytes);
  Buffer.add_string b (Printf.sprintf ",\"note\":\"%s\"" (Json.escape h.h_note));
  Buffer.add_char b '}';
  Buffer.contents b

exception Bad_header of string

let header_of_json j =
  let get k conv what =
    match Option.bind (Json.member k j) conv with
    | Some v -> v
    | None -> raise (Bad_header ("header is missing " ^ what ^ " field " ^ k))
  in
  let str k = get k Json.to_string "string" in
  let int k = get k Json.to_int "integer" in
  try
    Ok
      {
        h_abi = str "abi";
        h_revision = str "revision";
        h_mem_size = int "mem_size";
        h_data_base = Int64.of_int (int "data_base");
        h_stack_bytes = int "stack_bytes";
        h_trapv = get "trapv" Json.to_bool "boolean";
        h_timing = Array.map int timing_names;
        h_code_digest = str "code_digest";
        h_body_bytes = int "body_bytes";
        h_note =
          (match Option.bind (Json.member "note" j) Json.to_string with
          | Some v -> v
          | None -> "");
      }
  with Bad_header why -> Error why

(* ------------------------------------------------------------------ *)
(* Body encoding                                                       *)

let w32 b v = Buffer.add_int32_le b (Int32.of_int v)
let w64 b v = Buffer.add_int64_le b v
let wint b v = Buffer.add_int64_le b (Int64.of_int v)
let wopt b = function None -> wint b (-1) | Some v -> wint b v

let wstr b s =
  w32 b (String.length s);
  Buffer.add_string b s

let wcap b (c : Cap.t) =
  Buffer.add_uint8 b ((if c.Cap.tag then 1 else 0) lor (if c.Cap.sealed then 2 else 0));
  Buffer.add_uint8 b (Int64.to_int (Perms.to_bits c.Cap.perms) land 0xff);
  w64 b c.Cap.base;
  w64 b c.Cap.length;
  w64 b c.Cap.offset;
  w64 b c.Cap.otype

let wpairs b l =
  w32 b (List.length l);
  List.iter
    (fun (x, y) ->
      w64 b x;
      w64 b y)
    l

let wints b a =
  w32 b (Array.length a);
  Array.iter (fun v -> wint b v) a

let wpages b l =
  w32 b (List.length l);
  List.iter
    (fun (idx, page) ->
      w32 b idx;
      wstr b page)
    l

let encode_body (s : Machine.Snap.t) =
  let b = Buffer.create (1 lsl 16) in
  wstr b s.s_gprs;
  Array.iter (wcap b) s.s_caps;
  wcap b s.s_pcc;
  wint b s.s_pc;
  wint b s.s_cycles;
  wint b s.s_instret;
  wint b s.s_loads;
  wint b s.s_stores;
  wint b s.s_cap_loads;
  wint b s.s_cap_stores;
  w64 b s.s_heap_allocated;
  wint b s.s_allocs;
  wint b s.s_frees;
  wint b s.s_syscalls;
  wopt b s.s_alloc_fail_after;
  wopt b s.s_free_fail_after;
  wstr b s.s_output;
  wpairs b s.s_allocated;
  wpairs b s.s_free_list;
  wints b s.s_icache;
  wints b s.s_l1;
  wints b s.s_l2;
  wpages b s.s_data_pages;
  wpages b s.s_tag_pages;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Body decoding                                                       *)

(* The CRC has already passed when we decode, so a failure here means a
   format bug or a deliberately crafted file; either way it surfaces as
   a structured Truncated error, never an escaping exception. *)
exception Short of string

type reader = { buf : string; mutable pos : int }

let need r n what =
  if r.pos + n > String.length r.buf then raise (Short ("body ends inside " ^ what))

let r32 r what =
  need r 4 what;
  let v = Int32.to_int (String.get_int32_le r.buf r.pos) in
  r.pos <- r.pos + 4;
  v

let rcount r what =
  let v = r32 r what in
  if v < 0 then raise (Short ("negative count in " ^ what));
  v

let r64 r what =
  need r 8 what;
  let v = String.get_int64_le r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let rint r what =
  let v = r64 r what in
  let n = Int64.to_int v in
  if Int64.of_int n <> v then raise (Short ("64-bit counter overflows int in " ^ what));
  n

let ropt r what = match rint r what with -1 -> None | v when v >= 0 -> Some v
  | _ -> raise (Short ("negative optional in " ^ what))

let rstr r what =
  let len = rcount r what in
  need r len what;
  let s = String.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  s

let rbyte r what =
  need r 1 what;
  let v = Char.code (String.unsafe_get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let rcap r what =
  let flags = rbyte r what in
  let perms = Perms.of_bits_int (rbyte r what) in
  let base = r64 r what in
  let length = r64 r what in
  let offset = r64 r what in
  let otype = r64 r what in
  Cap.of_fields_unchecked
    ~tag:(flags land 1 <> 0)
    ~base ~length ~offset ~perms
    ~sealed:(flags land 2 <> 0)
    ~otype

let rpairs r what =
  let n = rcount r what in
  List.init n (fun _ ->
      let x = r64 r what in
      let y = r64 r what in
      (x, y))

let rints r what =
  let n = rcount r what in
  Array.init n (fun _ -> rint r what)

let rpages r what =
  let n = rcount r what in
  List.init n (fun _ ->
      let idx = rcount r what in
      let page = rstr r what in
      (idx, page))

let decode_body buf : Machine.Snap.t =
  let r = { buf; pos = 0 } in
  let s_gprs = rstr r "registers" in
  let s_caps = Array.init 32 (fun _ -> rcap r "capability registers") in
  let s_pcc = rcap r "pcc" in
  let s_pc = rint r "pc" in
  let s_cycles = rint r "cycles" in
  let s_instret = rint r "instret" in
  let s_loads = rint r "loads" in
  let s_stores = rint r "stores" in
  let s_cap_loads = rint r "cap_loads" in
  let s_cap_stores = rint r "cap_stores" in
  let s_heap_allocated = r64 r "heap_allocated" in
  let s_allocs = rint r "allocs" in
  let s_frees = rint r "frees" in
  let s_syscalls = rint r "syscalls" in
  let s_alloc_fail_after = ropt r "alloc_fail_after" in
  let s_free_fail_after = ropt r "free_fail_after" in
  let s_output = rstr r "program output" in
  let s_allocated = rpairs r "allocated blocks" in
  let s_free_list = rpairs r "free list" in
  let s_icache = rints r "icache state" in
  let s_l1 = rints r "l1 state" in
  let s_l2 = rints r "l2 state" in
  let s_data_pages = rpages r "data pages" in
  let s_tag_pages = rpages r "tag pages" in
  if r.pos <> String.length buf then raise (Short "trailing bytes after the last field");
  {
    Machine.Snap.s_gprs; s_caps; s_pcc; s_pc; s_cycles; s_instret; s_loads;
    s_stores; s_cap_loads; s_cap_stores; s_heap_allocated; s_allocs; s_frees;
    s_syscalls; s_alloc_fail_after; s_free_fail_after; s_output; s_allocated;
    s_free_list; s_icache; s_l1; s_l2; s_data_pages; s_tag_pages;
  }

(* ------------------------------------------------------------------ *)
(* Save                                                                *)

let le32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Bytes.to_string b

let save ?(note = "") ~abi ~path m =
  timed m_saves m_save_s "snapshot.save" @@ fun () ->
  let body = encode_body (Machine.snapshot m) in
  let header =
    header_to_json (header_of_machine ~abi ~note ~body_bytes:(String.length body) m)
  in
  let b = Buffer.create (String.length body + String.length header + 64) in
  Buffer.add_string b magic;
  w32 b (String.length header);
  Buffer.add_string b header;
  Buffer.add_string b body;
  let image = Buffer.contents b in
  let crc = Crc32.digest image in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    output_string oc image;
    output_string oc (le32 crc);
    close_out oc;
    Sys.rename tmp path;
    Obs.Counter.incr ~by:(String.length image + 4) m_save_bytes;
    Ok (String.length image + 4)
  with Sys_error msg -> Error (Io msg)

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

type image = { i_header : header; i_snap : Machine.Snap.t }

let image_abi i = i.i_header.h_abi
let image_note i = i.i_header.h_note
let image_instret i = i.i_snap.Machine.Snap.s_instret

let first_line s =
  let cut = match String.index_opt s '\n' with Some i -> i | None -> String.length s in
  String.sub s 0 (min cut 48)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error (Io msg)

let crc_of_file contents =
  let n = String.length contents in
  let stored = Int32.to_int (String.get_int32_le contents (n - 4)) land 0xffffffff in
  let computed = Crc32.digest_sub contents ~pos:0 ~len:(n - 4) in
  (stored, computed)

let load path =
  timed m_loads m_load_s "snapshot.load" @@ fun () ->
  match read_file path with
  | Error _ as e -> e
  | Ok contents -> (
      let n = String.length contents in
      let ml = String.length magic in
      if n < ml then
        if String.sub magic 0 n = contents then
          (* a prefix of our own magic — or nothing at all: written by
             us, cut short. The offset tells the operator exactly how
             short (a 0-byte file is a crash before the first write hit
             the disk, a 20-byte one died mid-rename-source). *)
          Error
            (Truncated
               (Printf.sprintf "file ends inside the format magic at byte %d of %d" n ml))
        else Error (Version_mismatch { found = first_line contents })
      else if String.sub contents 0 ml <> magic then
        Error (Version_mismatch { found = first_line contents })
      else if n < ml + 4 then
        Error
          (Truncated
             (Printf.sprintf "file ends before the header length at byte %d of %d" n (ml + 4)))
      else
        let hlen = Int32.to_int (String.get_int32_le contents ml) in
        if hlen < 0 then
          Error (Truncated (Printf.sprintf "header length field is negative (%d)" hlen))
        else if ml + 4 + hlen + 4 > n then
          Error
            (Truncated
               (Printf.sprintf "file ends inside the header at byte %d of %d" n
                  (ml + 4 + hlen + 4)))
        else
          match Json.parse (String.sub contents (ml + 4) hlen) with
          | Error why ->
              (* Same-length corruption inside the header shows up here
                 before the length check can run; let the CRC decide
                 whether to call it corruption or truncation. *)
              let stored, computed = crc_of_file contents in
              if stored <> computed then Error (Crc_mismatch { stored; computed })
              else Error (Truncated ("unreadable header: " ^ why))
          | Ok j -> (
              match header_of_json j with
              | Error why ->
                  let stored, computed = crc_of_file contents in
                  if stored <> computed then Error (Crc_mismatch { stored; computed })
                  else Error (Truncated why)
              | Ok h ->
                  let declared = ml + 4 + hlen + h.h_body_bytes + 4 in
                  if n < declared then
                    Error
                      (Truncated
                         (Printf.sprintf
                            "file is %d bytes but the header declares %d" n declared))
                  else if n > declared then
                    Error
                      (Truncated
                         (Printf.sprintf
                            "%d trailing bytes after the declared image"
                            (n - declared)))
                  else
                    let stored, computed = crc_of_file contents in
                    if stored <> computed then Error (Crc_mismatch { stored; computed })
                    else
                      try
                        let body = String.sub contents (ml + 4 + hlen) h.h_body_bytes in
                        Ok { i_header = h; i_snap = decode_body body }
                      with Short why -> Error (Truncated why)))

(* ------------------------------------------------------------------ *)
(* Restore                                                             *)

let mismatchf fmt = Printf.ksprintf (fun s -> Error (Machine_mismatch s)) fmt

let pages_fit ~store_bytes ~page_bytes pages =
  List.for_all
    (fun (idx, page) ->
      idx >= 0 && (idx * page_bytes) + String.length page <= store_bytes)
    pages

let restore m ~abi image =
  timed m_restores m_restore_s "snapshot.restore" @@ fun () ->
  let h = image.i_header in
  let cfg = Machine.config m in
  let snap = image.i_snap in
  if h.h_abi <> abi then
    mismatchf "it was taken under ABI %s, this machine runs %s" h.h_abi abi
  else if h.h_revision <> revision_key cfg.revision then
    mismatchf "ISA revision %s vs this machine's %s" h.h_revision
      (revision_key cfg.revision)
  else if h.h_mem_size <> cfg.mem_size then
    mismatchf "memory size %d vs this machine's %d" h.h_mem_size cfg.mem_size
  else if h.h_data_base <> cfg.data_base then
    mismatchf "data base %Ld vs this machine's %Ld" h.h_data_base cfg.data_base
  else if h.h_stack_bytes <> cfg.stack_bytes then
    mismatchf "stack size %d vs this machine's %d" h.h_stack_bytes cfg.stack_bytes
  else if h.h_trapv <> cfg.trap_on_signed_overflow then
    mismatchf "overflow trapping %b vs this machine's %b" h.h_trapv
      cfg.trap_on_signed_overflow
  else if h.h_timing <> timing_fields cfg.timing then
    mismatchf "cache geometry/latency configuration differs"
  else if h.h_code_digest <> machine_digest ~abi m then
    mismatchf
      "code digest %s vs this program's %s — it snapshots a different program \
       (or a different compilation of it)"
      h.h_code_digest
      (machine_digest ~abi m)
  else if
    not
      (pages_fit ~store_bytes:cfg.mem_size ~page_bytes:Machine.Snap.page_bytes
         snap.Machine.Snap.s_data_pages
      && pages_fit
           ~store_bytes:((cfg.mem_size / 32 + 7) / 8)
           ~page_bytes:Machine.Snap.page_bytes snap.Machine.Snap.s_tag_pages)
  then mismatchf "memory pages fall outside this machine's memory"
  else
    (* Everything structural is validated above, so the mutation below
       cannot fail halfway; the backstop catch keeps a format bug from
       escaping as an exception. *)
    try
      Machine.restore m snap;
      Ok ()
    with Invalid_argument why -> Error (Machine_mismatch why)

(* ------------------------------------------------------------------ *)
(* Description (cheri-snap info)                                       *)

let describe i =
  let h = i.i_header in
  let s = i.i_snap in
  let page_count l = List.length l in
  let page_bytes l =
    List.fold_left (fun acc (_, p) -> acc + String.length p) 0 l
  in
  Printf.sprintf
    "format:      %s\n\
     abi:         %s (revision %s)\n\
     memory:      %d bytes, data base %Ld, stack %d bytes\n\
     code digest: %s\n\
     pc:          %d\n\
     cycles:      %d\n\
     instret:     %d\n\
     syscalls:    %d\n\
     output:      %d bytes\n\
     heap:        %Ld bytes live in %d blocks (%d allocs, %d frees)\n\
     data pages:  %d nonzero (%d bytes)\n\
     tag pages:   %d nonzero (%d bytes)\n\
     note:        %s"
    format_version h.h_abi h.h_revision h.h_mem_size h.h_data_base
    h.h_stack_bytes h.h_code_digest s.Machine.Snap.s_pc
    s.Machine.Snap.s_cycles s.Machine.Snap.s_instret
    s.Machine.Snap.s_syscalls
    (String.length s.Machine.Snap.s_output)
    s.Machine.Snap.s_heap_allocated
    (List.length s.Machine.Snap.s_allocated)
    s.Machine.Snap.s_allocs s.Machine.Snap.s_frees
    (page_count s.Machine.Snap.s_data_pages)
    (page_bytes s.Machine.Snap.s_data_pages)
    (page_count s.Machine.Snap.s_tag_pages)
    (page_bytes s.Machine.Snap.s_tag_pages)
    (if h.h_note = "" then "(none)" else h.h_note)
