(** Versioned machine snapshots: the crash-safety layer under resumable
    execution.

    A snapshot file ([cheri_c.snap/v1]) captures the complete
    architectural and micro-architectural state of a
    {!Cheri_isa.Machine}: general registers, the capability register
    file with every field (tags included), the sparse nonzero pages of
    the tagged memory (data and tag planes), cycle/instret and
    telemetry counters, allocator bookkeeping, buffered program output
    and cache-model state. Restoring it into a fresh machine built from
    the same program and configuration puts the simulation exactly
    where it stopped: running the remainder produces byte-identical
    output and identical cycle/instret counts to a run that was never
    interrupted (see {!Cheri_isa.Machine.snapshot} for the
    determinism argument).

    The file is magic + JSON header + little-endian binary body +
    trailing CRC-32. Saves are atomic (temp file + rename). Loads are
    paranoid: a file that is truncated, corrupted, written by another
    format, or taken from a different program/ABI/configuration is
    refused with a structured {!error} — no exception escapes this
    interface. *)

val format_version : string
(** ["cheri_c.snap/v1"]; the first line of every snapshot file. *)

(** {1 Errors} *)

type error =
  | Io of string  (** the file could not be read or written *)
  | Truncated of string  (** the file ends before its declared size *)
  | Crc_mismatch of { stored : int; computed : int }
      (** right length, wrong bits: the trailing CRC-32 does not match *)
  | Version_mismatch of { found : string }
      (** the file does not start with {!format_version} *)
  | Machine_mismatch of string
      (** a well-formed image that belongs to a different program, ABI
          or machine configuration *)

val pp_error : Format.formatter -> error -> unit
(** Actionable one-line rendering, suitable for an error message that
    precedes [exit 2]. *)

val error_to_string : error -> string

(** {1 Saving} *)

val save :
  ?note:string -> abi:string -> path:string -> Cheri_isa.Machine.t -> (int, error) result
(** Serialize the machine to [path], atomically (written to
    [path ^ ".tmp"], then renamed). [abi] is the ABI key the program
    was compiled under (e.g. ["CHERIv3"]); it is recorded in the
    header and checked again on {!restore}. [note] is free-form text
    for the caller (the fault campaigns stash their task state here).
    Returns the file size in bytes. *)

(** {1 Loading and restoring} *)

type image
(** A parsed, CRC-checked snapshot not yet bound to a machine. *)

val load : string -> (image, error) result
(** Read and validate a snapshot file. All structural validation
    happens here; what it cannot check is whether the image fits the
    machine you are about to restore into — that is {!restore}'s job. *)

val image_abi : image -> string
val image_note : image -> string

val image_instret : image -> int
(** Instructions retired at the moment the snapshot was taken. *)

val restore :
  Cheri_isa.Machine.t -> abi:string -> image -> (unit, error) result
(** Overwrite the machine's state with the image. Refuses (with
    [Machine_mismatch]) unless the ABI, ISA revision, memory geometry,
    timing configuration and code digest all match the machine — the
    machine is untouched when an error is returned. *)

val describe : image -> string
(** Multi-line human-readable summary ([cheri-snap info]). *)

val code_digest : abi:string -> Cheri_isa.Insn.t array -> string
(** Digest of the printed instruction stream that pins a snapshot to
    one compiled program; stable across processes. Equal to
    {!Cheri_isa.Decoded.source_digest}, where the computation lives. *)
