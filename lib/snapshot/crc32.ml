(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
   The checksum guards snapshot images against truncation and bit rot;
   it is not a cryptographic integrity check (snapshots are local files
   we wrote ourselves, like the campaign checkpoints). Implemented here
   rather than pulled in as a dependency: the container toolchain is
   frozen, and thirty lines beat a vendored zlib binding. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* zlib-style composition: [update crc s] continues a running digest,
   so [update (update 0 a) b = update 0 (a ^ b)]. The pre/post
   inversion lives inside, and the running value stays in the low 32
   bits of a native int. *)
let update_sub crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update_sub: range outside the string";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    c := Array.unsafe_get t ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let update crc s = update_sub crc s ~pos:0 ~len:(String.length s)
let digest s = update 0 s
let digest_sub s ~pos ~len = update_sub 0 s ~pos ~len
