(** CRC-32 (IEEE 802.3) over strings — the corruption guard of the
    snapshot format. Digests are 32-bit values carried in a native
    [int]; [update] composes zlib-style, so a digest can be built
    incrementally over concatenated chunks. *)

val digest : string -> int
val digest_sub : string -> pos:int -> len:int -> int

val update : int -> string -> int
(** [update crc s] extends a running digest: [update (update 0 a) b]
    equals [digest (a ^ b)]. *)

val update_sub : int -> string -> pos:int -> len:int -> int
(** [update] over a substring; raises [Invalid_argument] if the range
    falls outside the string. *)
