(** A minimal JSON reader/escape helper for the resilience layer.

    Campaign checkpoints are append-only JSONL files (one JSON object
    per line); a killed run leaves at worst one torn final line, and
    resuming means re-reading every completed line. This module is the
    reader for that path — a small recursive-descent parser over the
    subset of JSON the campaigns emit (objects, arrays, strings with
    escapes, integers, floats, booleans, null). It is deliberately not
    a general-purpose JSON library: no streaming, no number-precision
    promises beyond [int]/[float], inputs are trusted checkpoint files
    we wrote ourselves. *)

type t =
  | Null
  | Bool of bool
  | Num of string  (** the raw lexeme; see {!to_int} / {!to_float} *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON value (surrounding whitespace allowed).
    Returns [Error msg] with a character position on malformed input —
    a torn checkpoint line must never raise. *)

(** {1 Accessors} — all total, returning [option] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an object; [None] otherwise. *)

val to_int : t -> int option
val to_float : t -> float option
val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON output:
    backslash, quote, and control characters (\n, \t, ..., \u00XX).
    Every JSON emitter in the repo (telemetry exporters, bench tables,
    campaign reports, metrics) routes string escaping through here. *)

val number : float -> string
(** The one float-to-JSON formatter: integral values print without a
    fraction, everything else as the shortest decimal that round-trips
    through [float_of_string]. Non-finite values print as [null] (JSON
    has no inf/nan). *)

val encode : t -> string
(** Serialize a value compactly (no added whitespace). [Num] lexemes
    pass through verbatim, so [parse |> encode] preserves number
    spellings — the bench regression gate relies on this to doctor a
    report without disturbing unrelated fields. *)
