(* The one argv loop shared by the driver binaries. Deliberately not
   Arg from the stdlib: these drivers predate it with their own
   conventions ([--flag=VALUE], optional-argument flags where a
   following word is positional, exit code 2 for usage errors) that
   Arg cannot express without fighting it. *)

type action =
  | Unit of (unit -> unit)
  | Arg of (string -> unit)
  | Opt of (string option -> unit)

type t = { name : string; metavar : string; doc : string; action : action }

let die fmt =
  Format.kfprintf
    (fun ppf ->
      Format.pp_print_newline ppf ();
      exit 2)
    Format.err_formatter fmt

let unit name ~doc f = { name; metavar = ""; doc; action = Unit f }
let string name ~metavar ~doc f = { name; metavar; doc; action = Arg f }

let int ?(min = 0) name ~metavar ~doc f =
  let parse v =
    match int_of_string_opt v with
    | Some n when n >= min -> f n
    | _ ->
        die "%s expects %s, got %s" name
          (if min >= 1 then "a positive integer" else "a non-negative integer")
          v
  in
  { name; metavar; doc; action = Arg parse }

let float ?(strictly_positive = false) name ~metavar ~doc f =
  let parse v =
    match float_of_string_opt v with
    | Some x when (if strictly_positive then x > 0. else x >= 0.) -> f x
    | _ ->
        die "%s expects %s, got %s" name
          (if strictly_positive then "a positive number" else "a non-negative number")
          v
  in
  { name; metavar; doc; action = Arg parse }

let opt_string name ~metavar ~doc f =
  { name; metavar = "[=" ^ metavar ^ "]"; doc; action = Opt f }

let left_column fl =
  match fl.action with
  | Unit _ -> fl.name
  | Arg _ -> fl.name ^ " " ^ fl.metavar
  | Opt _ -> fl.name ^ fl.metavar

let help_text ~prog ~usage flags =
  let b = Buffer.create 512 in
  Buffer.add_string b ("usage: " ^ prog ^ " " ^ usage ^ "\n\noptions:\n");
  let rows =
    List.map (fun fl -> (left_column fl, fl.doc)) flags @ [ ("--help", "show this help") ]
  in
  let width = List.fold_left (fun w (l, _) -> max w (String.length l)) 0 rows in
  List.iter
    (fun (l, doc) ->
      Buffer.add_string b
        (Printf.sprintf "  %-*s  %s\n" width l doc))
    rows;
  Buffer.contents b

let split_eq a =
  match String.index_opt a '=' with
  | Some i when i > 0 && a.[0] = '-' ->
      Some (String.sub a 0 i, String.sub a (i + 1) (String.length a - i - 1))
  | _ -> None

let parse ~prog ~usage ?positional flags args =
  let find name = List.find_opt (fun fl -> fl.name = name) flags in
  let unknown a = die "%s: unknown flag %s (try --help)" prog a in
  let rec go = function
    | [] -> ()
    | ("--help" | "-h") :: _ ->
        print_string (help_text ~prog ~usage flags);
        exit 0
    | a :: rest -> (
        match split_eq a with
        | Some (name, v) -> (
            match find name with
            | Some { action = Arg f; _ } ->
                f v;
                go rest
            | Some { action = Opt f; _ } ->
                f (Some v);
                go rest
            | Some { action = Unit _; _ } -> die "%s does not take a value" name
            | None -> unknown name)
        | None ->
            if String.length a > 1 && a.[0] = '-' then (
              match find a with
              | Some { action = Unit f; _ } ->
                  f ();
                  go rest
              | Some { action = Opt f; _ } ->
                  f None;
                  go rest
              | Some { action = Arg f; _ } -> (
                  match rest with
                  | v :: rest' ->
                      f v;
                      go rest'
                  | [] -> die "%s requires an argument" a)
              | None -> unknown a)
            else
              match positional with
              | Some f ->
                  f a;
                  go rest
              | None -> die "%s: unexpected argument %s (try --help)" prog a)
  in
  go args
