type t =
  | Null
  | Bool of bool
  | Num of string
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string * int

let fail pos msg = raise (Bad (msg, pos))

(* A cursor over the input; every parse_* consumes leading whitespace
   first, so the grammar functions never see blanks. *)
type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> fail c.i (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else fail c.i ("expected " ^ word)

let parse_string_body c =
  let b = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then fail c.i "unterminated string"
    else
      match c.s.[c.i] with
      | '"' -> c.i <- c.i + 1
      | '\\' ->
          if c.i + 1 >= String.length c.s then fail c.i "dangling escape";
          (match c.s.[c.i + 1] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if c.i + 5 >= String.length c.s then fail c.i "truncated \\u escape";
              let hex = String.sub c.s (c.i + 2) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some v -> v
                | None -> fail c.i "bad \\u escape"
              in
              (* we only emit \u00XX for control bytes; decode the
                 low byte and pass anything wider through as UTF-8 *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
              end;
              c.i <- c.i + 4
          | ch -> fail c.i (Printf.sprintf "bad escape \\%c" ch));
          c.i <- c.i + 2;
          go ()
      | ch ->
          Buffer.add_char b ch;
          c.i <- c.i + 1;
          go ()
  in
  (match peek c with Some '"' -> c.i <- c.i + 1 | _ -> fail c.i "expected string");
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.i < String.length c.s && num_char c.s.[c.i] do
    c.i <- c.i + 1
  done;
  let lexeme = String.sub c.s start (c.i - start) in
  if lexeme = "" || float_of_string_opt lexeme = None then fail start "bad number";
  Num lexeme

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.i "unexpected end of input"
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.i <- c.i + 1;
        Arr []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              items (v :: acc)
          | Some ']' ->
              c.i <- c.i + 1;
              List.rev (v :: acc)
          | _ -> fail c.i "expected ',' or ']'"
        in
        Arr (items [])
  | Some '{' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.i <- c.i + 1;
        Obj []
      end
      else
        let field () =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          (k, parse_value c)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              fields (kv :: acc)
          | Some '}' ->
              c.i <- c.i + 1;
              List.rev (kv :: acc)
          | _ -> fail c.i "expected ',' or '}'"
        in
        Obj (fields [])
  | Some _ -> parse_number c

let parse s =
  let c = { s; i = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.i <> String.length s then fail c.i "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, pos) -> Error (Printf.sprintf "%s at offset %d" msg pos)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Num n -> int_of_string_opt n
  | _ -> None

let to_float = function
  | Num n -> float_of_string_opt n
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number f =
  if f <> f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips: JSON has no precision
       promise, but our bench comparisons reparse these files *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let encode v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num n -> Buffer.add_string b n
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go x)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b
