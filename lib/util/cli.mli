(** Declarative command-line flags for the driver binaries.

    Every driver used to hand-roll the same recursive-descent match
    over [Sys.argv], each with its own drift: different unknown-flag
    messages, inconsistent [--flag=VALUE] support, no [--help]. This
    module owns that loop once. A binary declares its flags as a list
    of specs; [parse] walks the arguments, supports both
    [--flag VALUE] and [--flag=VALUE] spellings for every
    argument-taking flag, prints a generated usage page on [--help]
    (exit 0), and reports unknown flags, missing arguments and
    malformed values uniformly (exit 2).

    Validation failures inside a caller-supplied handler should go
    through {!die} so their exit status and formatting match the
    built-in errors. *)

type t
(** One flag specification. *)

val unit : string -> doc:string -> (unit -> unit) -> t
(** A bare flag: [-x], [--shrink]. Passing [--flag=V] to it is an
    error. *)

val string : string -> metavar:string -> doc:string -> (string -> unit) -> t
(** A flag with a required string argument: [--json FILE] or
    [--json=FILE]. *)

val int : ?min:int -> string -> metavar:string -> doc:string -> (int -> unit) -> t
(** A flag with a required integer argument, rejected below [min]
    (default 0) with a uniform message. *)

val float : ?strictly_positive:bool -> string -> metavar:string -> doc:string -> (float -> unit) -> t
(** A flag with a required numeric argument; non-negative by default,
    or strictly positive when [strictly_positive]. *)

val opt_string : string -> metavar:string -> doc:string -> (string option -> unit) -> t
(** A flag whose argument is optional and only attaches with [=]:
    [--trace] passes [None], [--trace=FILE] passes [Some "FILE"]
    (matching the historical [--trace]/[--metrics] spelling, where a
    following bare word is a positional argument, not a value). *)

val die : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Print the message to stderr and exit 2 — the same exit path the
    parser itself uses, for handler-level validation (unknown ABI,
    unknown fault kind, ...). *)

val help_text : prog:string -> usage:string -> t list -> string
(** The generated usage page: ["usage: <prog> <usage>"] followed by one
    aligned line per flag. [--help] is appended automatically. *)

val parse :
  prog:string ->
  usage:string ->
  ?positional:(string -> unit) ->
  t list ->
  string list ->
  unit
(** Walk the arguments against the specs. [--help]/[-h] print
    {!help_text} on stdout and exit 0. A token starting with ['-']
    (other than ["-"] alone) that matches no spec is an unknown-flag
    error. Non-flag tokens go to [positional]; without a [positional]
    handler they are an error. *)
