(* Unsigned comparisons use the sign-flip trick (compare a+min_int
   against b+min_int with the native signed comparison) instead of
   Int64.unsigned_compare: the stdlib version bottoms out in the
   polymorphic compare runtime call, which forces both operands into
   boxes. The typed [<] below compiles to a register comparison, and
   with [@inline] the flipped intermediates never leave registers —
   these sit on every bounds check the softcore executes. *)

let[@inline] ult a b = Int64.add a Int64.min_int < Int64.add b Int64.min_int
let[@inline] ugt a b = Int64.add a Int64.min_int > Int64.add b Int64.min_int
let[@inline] ule a b = not (ugt a b)
let[@inline] uge a b = not (ult a b)
let[@inline] ucompare a b = if ult a b then -1 else if a = b then 0 else 1
let[@inline] umin a b = if ult a b then a else b
let[@inline] umax a b = if ugt a b then a else b

let mask width =
  if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L

let extract x ~lo ~width =
  assert (lo >= 0 && width >= 1 && lo + width <= 64);
  Int64.logand (Int64.shift_right_logical x lo) (mask width)

let insert x ~lo ~width v =
  assert (lo >= 0 && width >= 1 && lo + width <= 64);
  let m = Int64.shift_left (mask width) lo in
  let cleared = Int64.logand x (Int64.lognot m) in
  Int64.logor cleared (Int64.logand (Int64.shift_left v lo) m)

let[@inline] is_aligned a n =
  assert (n > 0 && n land (n - 1) = 0);
  Int64.logand a (Int64.of_int (n - 1)) = 0L

let align_down a n =
  assert (n > 0 && n land (n - 1) = 0);
  Int64.logand a (Int64.lognot (Int64.of_int (n - 1)))

let align_up a n =
  let down = align_down a n in
  if down = a then a else Int64.add down (Int64.of_int n)

let[@inline] sign_extend x ~width =
  assert (width >= 1 && width <= 64);
  if width = 64 then x
  else
    let shift = 64 - width in
    Int64.shift_right (Int64.shift_left x shift) shift

let[@inline] zero_extend x ~width =
  assert (width >= 1 && width <= 64);
  Int64.logand x (mask width)

let truncate_to_width x bits = sign_extend x ~width:bits
let pp_hex ppf x = Format.fprintf ppf "0x%Lx" x
