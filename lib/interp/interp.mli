(** The C abstract machine interpreter, parameterized by pointer model.

    This is the paper's "translator for C code into a simple abstract
    machine interpreter" (§5): instantiate {!Make} with any
    {!Cheri_models.Model.S} to obtain an executable interpretation of
    the C abstract machine, then run the same program under several
    interpretations to see which idioms keep working — the experiment
    behind Table 3 (see {!Table3}). *)

type outcome =
  | Exit of int64 * string  (** main's return value (or exit code), program output *)
  | Fault of Cheri_models.Fault.t * string  (** the fault, plus output so far *)
  | Stuck of string  (** interpreter-level error: UB with no model account *)
  | Exhausted of string
      (** [max_steps] ran out — the structured hang verdict, mirroring
          {!Cheri_isa.Machine.outcome}'s [Fuel_exhausted]. Carries the
          output so far. *)

val pp_outcome : Format.formatter -> outcome -> unit

module Make (M : Cheri_models.Model.S) : sig
  val run_program :
    ?sink:Cheri_telemetry.Telemetry.Sink.t -> ?max_steps:int -> Minic.Typed.program -> outcome
  (** Execute [main]. [max_steps] (default 20M expression evaluations)
      bounds runaway programs. A live [sink] receives one
      [Custom "interp:<model>"] event describing the run's outcome
      (timestamped with the step count) and, when the model trapped, a
      [Fault] event of kind [F_model] carrying the pretty-printed
      fault. *)

  val run_source :
    ?sink:Cheri_telemetry.Telemetry.Sink.t -> ?max_steps:int -> string -> outcome
  (** Parse, type-check, and run source text. Front-end errors raise
      ({!Minic.Typecheck.Type_error} etc.); runtime problems are
      returned as outcomes. *)
end

val run_with :
  Cheri_models.Model.packed ->
  ?sink:Cheri_telemetry.Telemetry.Sink.t ->
  ?max_steps:int ->
  string ->
  outcome
(** Run source text under a packed model from {!Cheri_models.Registry}. *)

val run_all :
  ?sink:Cheri_telemetry.Telemetry.Sink.t ->
  ?max_steps:int ->
  string ->
  (string * outcome) list
(** Run under every registered pointer model; returns
    [(model name, outcome)] in Table 3 row order. *)
