(* The C abstract machine interpreter, parameterized by pointer model.

   This is the paper's "translator for C code into a simple abstract
   machine interpreter ... runs very slowly but allows us to quickly
   modify the abstract machine and run the test cases extracted from
   the idioms to see which fail" (§5). Instantiate {!Make} with any
   {!Cheri_models.Model.S} to get an executable interpretation of the
   abstract machine; run the same program under several models to see
   where it keeps working. *)

open Cheri_util
module Fault = Cheri_models.Fault
module Telemetry = Cheri_telemetry.Telemetry
module T = Minic.Typed
module L = Minic.Layout
open Minic.Ast

type outcome =
  | Exit of int64 * string  (** main's return value (or exit code), program output *)
  | Fault of Fault.t * string  (** the fault, plus output so far *)
  | Stuck of string  (** interpreter-level error: UB with no model account *)
  | Exhausted of string
      (** [max_steps] ran out: the interpreter's analogue of the
          softcore's [Fuel_exhausted] — a harness hang verdict, not a
          crash. Carries the output so far. *)

let pp_outcome ppf = function
  | Exit (code, _) -> Format.fprintf ppf "exit(%Ld)" code
  | Fault (f, _) -> Format.fprintf ppf "fault: %a" Fault.pp f
  | Stuck msg -> Format.fprintf ppf "stuck: %s" msg
  | Exhausted _ -> Format.pp_print_string ppf "step limit exhausted"

module Make (M : Cheri_models.Model.S) = struct
  (* VDirty marks an integer that went through arithmetic since it was
     derived from a pointer; models whose metadata propagation is
     compiler-driven lose track of such values (see Model.of_int). *)
  type value = VInt of int64 | VDirty of int64 | VPtr of M.ptr | VVoid

  exception Fault_exn of Fault.t
  exception Runtime of string
  exception Step_limit
  exception Return_exn of value
  exception Break_exn
  exception Continue_exn
  exception Exit_exn of int64

  type state = {
    prog : T.program;
    heap : M.heap;
    globals : (string, M.ptr) Hashtbl.t;
    strings : (string, M.ptr) Hashtbl.t;
    out : Buffer.t;
    mutable steps : int;
    max_steps : int;
  }

  let unwrap = function Ok v -> v | Error f -> raise (Fault_exn f)
  let sizeof st ty = L.size_of st.prog M.target ty
  let elem_size st ty = L.elem_size st.prog M.target ty

  (* Interned boolean results: comparisons and logical operators are a
     large share of evaluated expressions, and [VInt (if ... then 1L
     else 0L)] would otherwise allocate a fresh wrapper (plus Int64 box)
     per evaluation. *)
  let vint_zero = VInt 0L
  let vint_one = VInt 1L
  let[@inline] vbool b = if b then vint_one else vint_zero

  let truncate_for ty v =
    match ty with
    | Tint { bits; signed } ->
        if signed then Bits.sign_extend v ~width:bits else Bits.zero_extend v ~width:bits
    | _ -> v

  let as_int = function
    | VInt v | VDirty v -> v
    | VPtr _ -> raise (Runtime "expected an integer, found a pointer")
    | VVoid -> raise (Runtime "expected an integer, found void")

  let is_dirty = function VDirty _ -> true | VInt _ | VPtr _ | VVoid -> false

  let as_ptr = function
    | VPtr p -> p
    | VInt _ | VDirty _ -> raise (Runtime "expected a pointer, found an integer")
    | VVoid -> raise (Runtime "expected a pointer, found void")

  (* Const objects (string literals, const globals) must still be
     initialized once. We allocate them writable, fill them, and rely
     on the const qualifier of their C type for checking: this matches
     hardware, where the loader writes read-only segments before
     protection is enabled. To keep models honest we instead allocate
     non-const and give out const-qualified pointers. *)

  let alloc_string st s =
    match Hashtbl.find_opt st.strings s with
    | Some p -> p
    | None ->
        let n = String.length s in
        let p = unwrap (M.alloc st.heap ~size:(Int64.of_int (n + 1)) ~const:false) in
        String.iteri
          (fun i c ->
            let bp = unwrap (M.add st.heap p (Int64.of_int i)) in
            unwrap (M.store st.heap bp ~size:1 (Int64.of_int (Char.code c))))
          s;
        let last = unwrap (M.add st.heap p (Int64.of_int n)) in
        unwrap (M.store st.heap last ~size:1 0L);
        let p = if M.enforces_const then M.make_const p else p in
        Hashtbl.replace st.strings s p;
        p

  (* -- lvalues ----------------------------------------------------------- *)

  let rec lv_addr st env (lv : T.lvalue) : M.ptr =
    match lv.T.l with
    | T.Lvar name -> (
        match Hashtbl.find_opt env name with
        | Some p -> p
        | None -> raise (Runtime ("unbound local " ^ name)))
    | T.Lglobal name -> (
        match Hashtbl.find_opt st.globals name with
        | Some p -> p
        | None -> raise (Runtime ("unbound global " ^ name)))
    | T.Lderef e -> as_ptr (eval st env e)
    | T.Lfield (base, fname) ->
        let bp = lv_addr st env base in
        let off = Int64.of_int (L.field_offset st.prog M.target base.T.lty fname) in
        let fty = L.field_type st.prog base.T.lty fname in
        let size = Int64.of_int (max 1 (sizeof st fty)) in
        unwrap (M.field st.heap bp ~off ~size)

  and load_value st (p : M.ptr) (ty : ty) : value =
    match ty with
    | Tptr _ | Tintcap -> VPtr (unwrap (M.load_ptr st.heap p))
    | Tfunptr _ ->
        (* function pointers are opaque code indices, not data caps *)
        VInt (unwrap (M.load st.heap p ~size:8))
    | Tint { bits; _ } -> VInt (truncate_for ty (unwrap (M.load st.heap p ~size:(bits / 8))))
    | Tvoid -> VVoid
    | Tstruct _ | Tunion _ | Tarray _ ->
        raise (Runtime "aggregate loaded outside of aggregate assignment")

  and store_value st (p : M.ptr) (ty : ty) (v : value) : unit =
    match ty with
    | Tptr _ | Tintcap -> unwrap (M.store_ptr st.heap p (as_ptr v))
    | Tfunptr _ -> unwrap (M.store st.heap p ~size:8 (as_int v))
    | Tint { bits; _ } -> unwrap (M.store st.heap p ~size:(bits / 8) (as_int v))
    | Tvoid | Tstruct _ | Tunion _ | Tarray _ -> raise (Runtime "bad scalar store")

  (* -- expressions ------------------------------------------------------- *)

  and eval st env (e : T.expr) : value =
    st.steps <- st.steps + 1;
    if st.steps > st.max_steps then raise Step_limit;
    match e.T.e with
    | T.Num v -> VInt v
    | T.Str s -> VPtr (alloc_string st s)
    | T.Load lv -> load_value st (lv_addr st env lv) lv.T.lty
    | T.Addr_of lv ->
        let p = lv_addr st env lv in
        let p = if lv.T.lconst && M.enforces_const then M.make_const p else p in
        VPtr p
    | T.Unop (op, a) -> (
        let v = as_int (eval st env a) in
        match op with
        | Neg -> VDirty (truncate_for e.T.ty (Int64.neg v))
        | Bnot -> VDirty (truncate_for e.T.ty (Int64.lognot v))
        | Lnot -> vbool (v = 0L))
    | T.Binop (Land, a, b) ->
        vbool (as_int (eval st env a) <> 0L && as_int (eval st env b) <> 0L)
    | T.Binop (Lor, a, b) ->
        vbool (as_int (eval st env a) <> 0L || as_int (eval st env b) <> 0L)
    | T.Binop (op, a, b) ->
        let x = as_int (eval st env a) in
        let y = as_int (eval st env b) in
        VDirty (int_binop e.T.ty a.T.ty op x y)
    | T.Ptr_add { p; i; elem } ->
        let pv = as_ptr (eval st env p) in
        let iv = as_int (eval st env i) in
        let delta = Int64.mul iv (Int64.of_int (elem_size st elem)) in
        VPtr (unwrap (M.add st.heap pv delta))
    | T.Ptr_diff { a; b; elem } ->
        let pa = as_ptr (eval st env a) in
        let pb = as_ptr (eval st env b) in
        let bytes = unwrap (M.diff st.heap pa pb) in
        VInt (Int64.div bytes (Int64.of_int (elem_size st elem)))
    | T.Ptr_cmp (op, a, b) ->
        let pa = as_ptr (eval st env a) in
        let pb = as_ptr (eval st env b) in
        let c = unwrap (M.cmp st.heap pa pb) in
        let holds =
          match op with
          | Eq -> c = 0
          | Ne -> c <> 0
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0
          | _ -> raise (Runtime "bad pointer comparison operator")
        in
        vbool holds
    | T.Intcap_arith (op, a, b) ->
        let pa =
          match eval st env a with
          | VPtr p -> p
          | VInt v | VDirty v -> M.intcap_of_int st.heap v
          | VVoid -> raise (Runtime "void in intcap arithmetic")
        in
        let y = as_int (eval st env b) in
        let f x y = int_binop tlong tlong op x y in
        VPtr (unwrap (M.intcap_arith st.heap ~f pa y))
    | T.Assign (lv, rhs) -> (
        match lv.T.lty with
        | Tstruct _ | Tunion _ ->
            let src =
              match rhs.T.e with
              | T.Load src_lv -> lv_addr st env src_lv
              | _ -> raise (Runtime "aggregate assignment from non-lvalue")
            in
            let dst = lv_addr st env lv in
            unwrap (M.copy st.heap ~dst ~src ~len:(Int64.of_int (sizeof st lv.T.lty)));
            VVoid
        | _ ->
            let v = eval st env rhs in
            store_value st (lv_addr st env lv) lv.T.lty v;
            v)
    | T.Call (name, args) -> call st name (List.map (eval st env) args)
    | T.Fun_addr name -> VInt (fn_index st name)
    | T.Call_ptr (fn, args) ->
        let idx = as_int (eval st env fn) in
        let name = fn_of_index st idx in
        call st name (List.map (eval st env) args)
    | T.Builtin (b, args) -> builtin st env b (List.map (eval st env) args)
    | T.Cast inner -> cast st (eval st env inner) ~src:inner.T.ty ~dst:e.T.ty
    | T.Cond (c, a, b) ->
        if as_int (eval st env c) <> 0L then eval st env a else eval st env b
    | T.Incdec (k, lv) -> (
        let p = lv_addr st env lv in
        let old = load_value st p lv.T.lty in
        let dir = match k with Preinc | Postinc -> 1L | Predec | Postdec -> -1L in
        let updated =
          match lv.T.lty with
          | Tptr { pointee; _ } ->
              let delta = Int64.mul dir (Int64.of_int (elem_size st pointee)) in
              VPtr (unwrap (M.add st.heap (as_ptr old) delta))
          | Tintcap -> VPtr (unwrap (M.intcap_arith st.heap ~f:Int64.add (as_ptr old) dir))
          | ty -> VDirty (truncate_for ty (Int64.add (as_int old) dir))
        in
        store_value st p lv.T.lty updated;
        match k with Preinc | Predec -> updated | Postinc | Postdec -> old)
    | T.Sizeof ty -> VInt (Int64.of_int (sizeof st ty))

  and int_binop result_ty operand_ty op x y =
    let signed = match operand_ty with Tint { signed; _ } -> signed | _ -> true in
    let raw =
      match op with
      | Add -> Int64.add x y
      | Sub -> Int64.sub x y
      | Mul -> Int64.mul x y
      | Div ->
          if y = 0L then raise (Fault_exn (Fault.Invalid_pointer "division by zero"))
          else if signed then Int64.div x y
          else Int64.unsigned_div x y
      | Mod ->
          if y = 0L then raise (Fault_exn (Fault.Invalid_pointer "division by zero"))
          else if signed then Int64.rem x y
          else Int64.unsigned_rem x y
      | Shl -> Int64.shift_left x (Int64.to_int y land 63)
      | Shr ->
          if signed then Int64.shift_right x (Int64.to_int y land 63)
          else
            (* logical shift of the value truncated to its width *)
            Int64.shift_right_logical
              (match operand_ty with
              | Tint { bits; _ } -> Bits.zero_extend x ~width:bits
              | _ -> x)
              (Int64.to_int y land 63)
      | Band -> Int64.logand x y
      | Bor -> Int64.logor x y
      | Bxor -> Int64.logxor x y
      | Eq -> if x = y then 1L else 0L
      | Ne -> if x <> y then 1L else 0L
      | Lt -> if (if signed then Int64.compare x y else Bits.ucompare x y) < 0 then 1L else 0L
      | Le -> if (if signed then Int64.compare x y else Bits.ucompare x y) <= 0 then 1L else 0L
      | Gt -> if (if signed then Int64.compare x y else Bits.ucompare x y) > 0 then 1L else 0L
      | Ge -> if (if signed then Int64.compare x y else Bits.ucompare x y) >= 0 then 1L else 0L
      | Land | Lor -> raise (Runtime "logical operator in integer path")
    in
    match result_ty with Tint _ -> truncate_for result_ty raw | _ -> raw

  and cast st v ~src ~dst : value =
    match (src, dst) with
    | _, Tvoid -> VVoid
    | Tint _, Tint _ ->
        let t = truncate_for dst (as_int v) in
        if is_dirty v then VDirty t else VInt t
    | Tptr a, Tptr b ->
        let p = as_ptr v in
        let p =
          if b.pointee_const && (not a.pointee_const) && M.enforces_const then M.make_const p
          else p
        in
        VPtr p
    | Tptr _, Tint _ ->
        (* the INT idiom: pointer observed as an integer *)
        VInt (truncate_for dst (unwrap (M.to_int st.heap (as_ptr v))))
    | Tint _, Tptr _ ->
        (* the IA idiom: integer reinterpreted as a pointer *)
        VPtr (unwrap (M.of_int st.heap ~modified:(is_dirty v) (as_int v)))
    | Tptr _, Tintcap | Tintcap, Tptr _ | Tintcap, Tintcap -> v
    | Tint _, Tfunptr _ | Tfunptr _, Tfunptr _ -> v
    | Tfunptr _, Tint _ -> VInt (truncate_for dst (as_int v))
    | Tint _, Tintcap -> VPtr (M.intcap_of_int st.heap (as_int v))
    | Tintcap, Tint _ -> VInt (truncate_for dst (M.intcap_to_int st.heap (as_ptr v)))
    | _ -> raise (Runtime "unsupported cast at runtime")

  (* -- calls and builtins ------------------------------------------------- *)

  (* function "addresses": 1-based indices into the program's function
     list (0 is the null function pointer) *)
  and fn_index st name =
    let rec go i = function
      | [] -> raise (Runtime ("unknown function " ^ name))
      | (f : T.func) :: rest -> if f.T.fname = name then Int64.of_int i else go (i + 1) rest
    in
    go 1 st.prog.T.funcs

  and fn_of_index st idx =
    if idx = 0L then raise (Fault_exn (Fault.Invalid_pointer "call through a null function pointer"))
    else
      match List.nth_opt st.prog.T.funcs (Int64.to_int idx - 1) with
      | Some f -> f.T.fname
      | None -> raise (Fault_exn (Fault.Invalid_pointer "call through a corrupt function pointer"))

  and call st fname args : value =
    match T.find_func st.prog fname with
    | None -> raise (Runtime ("undefined function " ^ fname))
    | Some f ->
        let env = Hashtbl.create 16 in
        let frame = ref [] in
        List.iter2
          (fun (pname, pty) arg ->
            let p = alloc_local st frame pty false in
            (match pty with
            | Tstruct _ | Tunion _ -> raise (Runtime "struct parameters unsupported")
            | _ -> store_value st p pty arg);
            Hashtbl.replace env pname p)
          f.T.params args;
        let result =
          try
            exec_block st env frame f.T.body;
            VInt 0L
          with Return_exn v -> v
        in
        (* stack frame dies: models with temporal checking will fault on
           dangling pointers into it *)
        List.iter (fun p -> ignore (M.free st.heap p)) !frame;
        result

  and alloc_local st frame ty const =
    let size = Int64.of_int (max 1 (sizeof st ty)) in
    let p = unwrap (M.alloc st.heap ~size ~const) in
    frame := p :: !frame;
    p

  and builtin st _env b args : value =
    match (b, args) with
    | T.Bmalloc, [ size ] -> VPtr (unwrap (M.alloc st.heap ~size:(as_int size) ~const:false))
    | T.Bfree, [ p ] ->
        let p = as_ptr p in
        if not (M.is_null st.heap p) then unwrap (M.free st.heap p);
        VVoid
    | T.Bprint_int, [ v ] ->
        Buffer.add_string st.out (Int64.to_string (as_int v));
        VVoid
    | T.Bprint_char, [ v ] ->
        Buffer.add_char st.out (Char.chr (Int64.to_int (Int64.logand (as_int v) 0xffL)));
        VVoid
    | T.Bprint_str, [ p ] ->
        let p = ref (as_ptr p) in
        let continue_ = ref true in
        while !continue_ do
          let c = unwrap (M.load st.heap !p ~size:1) in
          if c = 0L then continue_ := false
          else begin
            Buffer.add_char st.out (Char.chr (Int64.to_int c));
            p := unwrap (M.add st.heap !p 1L)
          end
        done;
        VVoid
    | T.Bclock, [] -> VInt (Int64.of_int st.steps)
    | T.Bexit, [ code ] -> raise (Exit_exn (as_int code))
    | _ -> raise (Runtime "builtin arity mismatch")

  (* -- statements --------------------------------------------------------- *)

  and exec_block st env frame stmts = List.iter (exec_stmt st env frame) stmts

  and exec_stmt st env frame (s : T.stmt) =
    match s with
    | T.Expr e -> ignore (eval st env e)
    | T.Decl { name; ty; const; init } ->
        let p = alloc_local st frame ty const in
        Hashtbl.replace env name p;
        (match init with
        | Some e ->
            let v = eval st env e in
            (* initialization of a const local writes through the
               still-writable allocation; the const applies afterwards *)
            store_value st p ty v
        | None -> ());
        if const && M.enforces_const then
          Hashtbl.replace env name (M.make_const p)
    | T.If (c, a, b) ->
        if as_int (eval st env c) <> 0L then exec_block st env frame a else exec_block st env frame b
    | T.While (c, body) -> (
        try
          while as_int (eval st env c) <> 0L do
            try exec_block st env frame body with Continue_exn -> ()
          done
        with Break_exn -> ())
    | T.Dowhile (body, c) -> (
        try
          let continue_ = ref true in
          while !continue_ do
            (try exec_block st env frame body with Continue_exn -> ());
            if as_int (eval st env c) = 0L then continue_ := false
          done
        with Break_exn -> ())
    | T.For (init, cond, step, body) -> (
        Option.iter (exec_stmt st env frame) init;
        let check () = match cond with None -> true | Some c -> as_int (eval st env c) <> 0L in
        try
          while check () do
            (try exec_block st env frame body with Continue_exn -> ());
            Option.iter (fun e -> ignore (eval st env e)) step
          done
        with Break_exn -> ())
    | T.Return None -> raise (Return_exn VVoid)
    | T.Return (Some e) -> raise (Return_exn (eval st env e))
    | T.Break -> raise Break_exn
    | T.Continue -> raise Continue_exn
    | T.Block b -> exec_block st env frame b

  (* -- program ------------------------------------------------------------ *)

  let init_globals st =
    List.iter
      (fun (g : T.global) ->
        let size = Int64.of_int (max 1 (sizeof st g.T.gty)) in
        let p = unwrap (M.alloc st.heap ~size ~const:false) in
        (match g.T.ginit with
        | T.Izero -> ()
        | T.Iint v -> (
            match g.T.gty with
            | Tptr _ | Tintcap ->
                if v <> 0L then raise (Runtime "non-null constant pointer initializer");
                unwrap (M.store_ptr st.heap p M.null)
            | ty -> store_value st p ty (VInt v))
        | T.Ilist vs ->
            let elem_ty =
              match g.T.gty with
              | Tarray (t, _) -> t
              | _ -> raise (Runtime "list initializer on non-array")
            in
            let esz = sizeof st elem_ty in
            List.iteri
              (fun i v ->
                let ep = unwrap (M.add st.heap p (Int64.of_int (i * esz))) in
                store_value st ep elem_ty (VInt v))
              vs
        | T.Istr s -> (
            match g.T.gty with
            | Tarray (Tint { bits = 8; _ }, _) ->
                String.iteri
                  (fun i c ->
                    let bp = unwrap (M.add st.heap p (Int64.of_int i)) in
                    unwrap (M.store st.heap bp ~size:1 (Int64.of_int (Char.code c))))
                  s
            | Tptr _ ->
                let sp = alloc_string st s in
                unwrap (M.store_ptr st.heap p sp)
            | _ -> raise (Runtime "string initializer on bad type")));
        let p = if g.T.gconst && M.enforces_const then M.make_const p else p in
        Hashtbl.replace st.globals g.T.gname p)
      st.prog.T.globals

  (* Publish the run's visible end state: one event per run, plus the
     fault detail when the model trapped — the per-model pass/fail/fault
     stream Table 3 and the observability layer consume. *)
  let record_outcome sink steps (o : outcome) =
    if not (Telemetry.Sink.is_null sink) then begin
      let kind =
        match o with
        | Exit _ -> "exit"
        | Fault _ -> "fault"
        | Stuck _ -> "stuck"
        | Exhausted _ -> "exhausted"
      in
      (match o with
      | Fault (f, _) ->
          Telemetry.Sink.record sink ~ts:steps
            (Telemetry.Fault { pc = 0; kind = Telemetry.F_model; detail = Fault.to_string f })
      | Exit _ | Stuck _ | Exhausted _ -> ());
      Telemetry.Sink.record sink ~ts:steps
        (Telemetry.Custom
           { name = "interp:" ^ M.name; detail = Format.asprintf "%s: %a" kind pp_outcome o })
    end

  let run_program ?(sink = Telemetry.Sink.null) ?(max_steps = 20_000_000) (prog : T.program) :
      outcome =
    let st =
      {
        prog;
        heap = M.create ();
        globals = Hashtbl.create 16;
        strings = Hashtbl.create 16;
        out = Buffer.create 64;
        steps = 0;
        max_steps;
      }
    in
    let outcome =
      try
        init_globals st;
        let v = call st "main" [] in
        let code = match v with VInt v | VDirty v -> v | _ -> 0L in
        Exit (code, Buffer.contents st.out)
      with
      | Exit_exn code -> Exit (code, Buffer.contents st.out)
      | Fault_exn f -> Fault (f, Buffer.contents st.out)
      | Step_limit -> Exhausted (Buffer.contents st.out)
      | Runtime msg -> Stuck msg
      | Minic.Layout.Unknown_tag tag -> Stuck ("unknown aggregate tag " ^ tag)
    in
    record_outcome sink st.steps outcome;
    outcome

  let run_source ?sink ?max_steps src =
    run_program ?sink ?max_steps (Minic.Typecheck.compile src)
end

(* Run one source file under a packed model. *)
let run_with (m : Cheri_models.Model.packed) ?sink ?max_steps src : outcome =
  let module M = (val m) in
  let module I = Make (M) in
  I.run_source ?sink ?max_steps src

let run_all ?sink ?max_steps src : (string * outcome) list =
  List.map
    (fun m ->
      let module M = (val m : Cheri_models.Model.S) in
      (M.name, run_with m ?sink ?max_steps src))
    Cheri_models.Registry.all
