(* Reproduction of Table 3: run every idiom test case under every
   pointer model and classify the result. *)

type support =
  | Yes  (** the plain idiom works *)
  | Qualified  (** works with a caveat: only via intcap_t, or only when
                   the compiler can track the pointer — printed "(yes)" *)
  | No

let pp_support ppf = function
  | Yes -> Format.pp_print_string ppf "yes"
  | Qualified -> Format.pp_print_string ppf "(yes)"
  | No -> Format.pp_print_string ppf "no"

(* Idioms whose support is inherently conditional for a model even when
   the straightforward test passes: the paper marks these "(yes)"
   because they hold only while the scheme can still see the pointer
   (HardBound/MPX bounds propagation) or only for unmodified values
   (Strict). *)
let statically_qualified model idiom =
  match (model, idiom) with
  | "HardBound", Idiom_cases.Int_ -> true
  | "Intel MPX", (Idiom_cases.Int_ | Idiom_cases.Ia | Idiom_cases.Mask) -> true
  | "Strict", Idiom_cases.Int_ -> true
  | _ -> false

let passes outcome = match outcome with Interp.Exit (0L, _) -> true | _ -> false

let classify ?(sink = Cheri_telemetry.Telemetry.Sink.null) (m : Cheri_models.Model.packed) idiom
    : support =
  let module M = (val m) in
  let plain = passes (Interp.run_with m ~sink (Idiom_cases.source idiom)) in
  let support =
    if plain then if statically_qualified M.name idiom then Qualified else Yes
    else
      match Idiom_cases.intcap_source idiom with
      | Some src -> if passes (Interp.run_with m ~sink src) then Qualified else No
      | None -> No
  in
  if not (Cheri_telemetry.Telemetry.Sink.is_null sink) then
    Cheri_telemetry.Telemetry.Sink.record sink
      (Cheri_telemetry.Telemetry.Idiom_case
         {
           model = M.name;
           idiom = Idiom_cases.name idiom;
           result = Format.asprintf "%a" pp_support support;
         });
  support

type row = { model_name : string; cells : (Idiom_cases.idiom * support) list }

let row ?sink (e : Cheri_models.Registry.entry) : row =
  {
    model_name = e.Cheri_models.Registry.display_name;
    cells = List.map (fun i -> (i, classify ?sink e.Cheri_models.Registry.model i)) Idiom_cases.all;
  }

let table ?sink () : row list = List.map (row ?sink) Cheri_models.Registry.entries

(* The values printed in the paper, for comparison in tests and in
   EXPERIMENTS.md. *)
let paper_expectation : (string * support list) list =
  [
    ("x86/MIPS/PDP-11", [ Yes; Yes; Yes; Yes; Yes; Yes; Yes; No ]);
    ("HardBound", [ Yes; Yes; Yes; Yes; Qualified; No; No; No ]);
    ("Intel MPX", [ Yes; No; Yes; Yes; Qualified; Qualified; Qualified; No ]);
    ("Relaxed", [ Yes; Yes; Yes; Yes; Yes; Yes; Yes; No ]);
    ("Strict", [ Yes; Yes; Yes; Yes; Qualified; No; No; No ]);
    ("CHERIv2", [ No; No; No; No; Qualified; No; No; No ]);
    ("CHERIv3", [ Yes; Yes; Yes; Yes; Qualified; Yes; Yes; No ]);
  ]

(* Note: the paper prints CHERIv3's IA and MASK as plain "yes" with the
   §5.1 caveat that storing pointers in integers "is allowed only in
   places where doing so would not damage the memory-safety model" —
   i.e. via intcap_t. Our classifier reports them as Qualified because
   the plain-integer variant faults; see EXPERIMENTS.md. *)
let paper_expectation_strict_reading : (string * support list) list =
  List.map
    (fun (n, row) ->
      if n = "CHERIv3" then (n, [ Yes; Yes; Yes; Yes; Qualified; Qualified; Qualified; No ])
      else (n, row))
    paper_expectation

let print ppf () =
  let rows = table () in
  Format.fprintf ppf "%-16s" "MODEL";
  List.iter (fun i -> Format.fprintf ppf "%-11s" (Idiom_cases.name i)) Idiom_cases.all;
  Format.fprintf ppf "@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s" r.model_name;
      List.iter (fun (_, s) -> Format.fprintf ppf "%-11s" (Format.asprintf "%a" pp_support s)) r.cells;
      Format.fprintf ppf "@.")
    rows

(* Supplementary rows: idioms the paper discusses outside Table 3 —
   the Last Word pattern (§2, found only in FreeBSD libc's strlen) and
   the xor linked list (§3.5/§6). Both break even under CHERIv3. *)
let print_supplementary ppf () =
  Format.fprintf ppf "%-16s" "MODEL";
  List.iter (fun (name, _) -> Format.fprintf ppf "%-11s" name) Idiom_cases.supplementary;
  Format.fprintf ppf "@.";
  List.iter
    (fun (e : Cheri_models.Registry.entry) ->
      Format.fprintf ppf "%-16s" e.display_name;
      List.iter
        (fun (_, src) ->
          let works = passes (Interp.run_with e.model src) in
          Format.fprintf ppf "%-11s" (if works then "yes" else "no"))
        Idiom_cases.supplementary;
      Format.fprintf ppf "@.")
    Cheri_models.Registry.entries
