module Insn = Cheri_isa.Insn
module Machine = Cheri_isa.Machine
module Mem = Cheri_tagmem.Tagmem

module Builder = struct
  type t = {
    mutable code : Insn.t list;  (* reversed *)
    mutable code_len : int;
    code_labels : (string, int) Hashtbl.t;
    data : Buffer.t;
    data_labels : (string, int) Hashtbl.t;  (* offset into data buffer *)
    mutable fresh : int;
  }

  let create () =
    {
      code = [];
      code_len = 0;
      code_labels = Hashtbl.create 64;
      data = Buffer.create 256;
      data_labels = Hashtbl.create 64;
      fresh = 0;
    }

  let label t name =
    if Hashtbl.mem t.code_labels name then
      invalid_arg (Printf.sprintf "Asm.Builder.label: %s redefined" name);
    Hashtbl.replace t.code_labels name t.code_len

  let fresh_label t prefix =
    t.fresh <- t.fresh + 1;
    Printf.sprintf ".%s_%d" prefix t.fresh

  let emit t insn =
    t.code <- insn :: t.code;
    t.code_len <- t.code_len + 1

  let here t = t.code_len

  let data_label t name =
    if Hashtbl.mem t.data_labels name then
      invalid_arg (Printf.sprintf "Asm.Builder.data_label: %s redefined" name);
    Hashtbl.replace t.data_labels name (Buffer.length t.data)

  let data_bytes t s = Buffer.add_string t.data s

  let data_word t v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    Buffer.add_bytes t.data b

  let data_zeros t n = Buffer.add_string t.data (String.make n '\000')

  let data_align t n =
    let len = Buffer.length t.data in
    let padded = (len + n - 1) / n * n in
    data_zeros t (padded - len)
end

type linked = {
  code : Insn.t array;
  data : bytes;
  data_base : int64;
  code_symbols : (string * int) list;
  data_symbols : (string * int64) list;
}

exception Undefined_symbol of string

let link ?(data_base = 0x10000L) (b : Builder.t) =
  let code = Array.of_list (List.rev b.Builder.code) in
  let resolve_target = function
    | Insn.Abs _ as t -> t
    | Insn.Sym s -> (
        match Hashtbl.find_opt b.Builder.code_labels s with
        | Some i -> Insn.Abs i
        | None -> raise (Undefined_symbol s))
  in
  let resolve_imm = function
    | Insn.Imm _ as i -> i
    | Insn.Sym_addr (s, addend) -> (
        match Hashtbl.find_opt b.Builder.data_labels s with
        | Some off -> Insn.Imm (Int64.add data_base (Int64.add (Int64.of_int off) addend))
        | None -> (
            match Hashtbl.find_opt b.Builder.code_labels s with
            | Some idx -> Insn.Imm (Int64.add (Int64.of_int idx) addend)
            | None -> raise (Undefined_symbol s)))
  in
  let code = Array.map (fun i -> Insn.map_imm resolve_imm (Insn.map_target resolve_target i)) code in
  {
    code;
    data = Buffer.to_bytes b.Builder.data;
    data_base;
    code_symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.Builder.code_labels [];
    data_symbols =
      Hashtbl.fold
        (fun k v acc -> (k, Int64.add data_base (Int64.of_int v)) :: acc)
        b.Builder.data_labels [];
  }

let code_symbol l name =
  match List.assoc_opt name l.code_symbols with
  | Some i -> i
  | None -> raise (Undefined_symbol name)

let data_symbol l name =
  match List.assoc_opt name l.data_symbols with
  | Some a -> a
  | None -> raise (Undefined_symbol name)

let make_machine ?config l =
  let config =
    match config with
    | Some c -> { c with Machine.data_base = l.data_base }
    | None -> { (Machine.default_config Cheri_core.Cap_ops.V3) with data_base = l.data_base }
  in
  let m = Machine.create config ~program:(Cheri_isa.Decoded.compile l.code) in
  if Bytes.length l.data > 0 then begin
    Mem.store_bytes_i64 (Machine.mem m) ~addr:l.data_base l.data;
    Machine.reserve_data m l.data_base (Int64.of_int (Bytes.length l.data))
  end;
  m

let run_code ?config ?fuel insns =
  let b = Builder.create () in
  List.iter (Builder.emit b) insns;
  let l = link b in
  let m = make_machine ?config l in
  (Machine.run ?fuel m, m)
